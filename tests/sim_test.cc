/**
 * @file
 * Tests for the simulation engine: core timing model properties,
 * workload generator statistics and determinism, system-level
 * behaviour of the three security models, and the paper's headline
 * orderings as end-to-end properties.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "crypto/latency.hh"
#include "sim/core.hh"
#include "sim/profiles.hh"
#include "sim/system.hh"
#include "sim/workload.hh"

namespace
{

using namespace secproc;
using namespace secproc::sim;

// ------------------------------------------------------------- core model

/** Scriptable memory system: fixed latencies, records accesses. */
class FakeMemory : public MemorySystem
{
  public:
    uint64_t data_latency = 10;
    uint64_t ifetch_latency = 1;
    std::vector<uint64_t> data_accesses;

    uint64_t
    dataAccess(uint64_t vaddr, uint64_t cycle, bool) override
    {
        data_accesses.push_back(vaddr);
        return cycle + data_latency;
    }

    uint64_t
    ifetch(uint64_t, uint64_t cycle) override
    {
        return cycle + ifetch_latency;
    }
};

TraceOp
aluOp(uint8_t dep = 0)
{
    TraceOp op;
    op.cls = OpClass::IntAlu;
    op.dep1 = dep;
    return op;
}

TEST(OooCore, WidthLimitsThroughput)
{
    FakeMemory memory;
    CoreConfig config;
    config.width = 4;
    OooCore core(config, memory);
    // 400 independent single-cycle ops at width 4: ~100 cycles.
    for (int i = 0; i < 400; ++i)
        core.step(aluOp());
    EXPECT_GE(core.cycles(), 100u);
    EXPECT_LE(core.cycles(), 110u);
}

TEST(OooCore, DependenceChainSerializes)
{
    FakeMemory memory;
    OooCore core(CoreConfig{}, memory);
    // Every op depends on the previous one: 1 IPC regardless of
    // width.
    for (int i = 0; i < 300; ++i)
        core.step(aluOp(/*dep=*/1));
    EXPECT_GE(core.cycles(), 300u);
}

TEST(OooCore, IndependentLoadsOverlap)
{
    FakeMemory memory;
    memory.data_latency = 100;
    OooCore core(CoreConfig{}, memory);
    // 32 independent loads: latencies overlap inside the window, so
    // total time is far below 32 * 100.
    for (int i = 0; i < 32; ++i) {
        TraceOp op;
        op.cls = OpClass::Load;
        op.addr = 0x1000 + 64 * i;
        core.step(op);
    }
    EXPECT_LT(core.cycles(), 32u * 100u / 4);
    EXPECT_EQ(core.loads(), 32u);
}

TEST(OooCore, DependentLoadsDoNotOverlap)
{
    FakeMemory memory;
    memory.data_latency = 100;
    OooCore core(CoreConfig{}, memory);
    for (int i = 0; i < 16; ++i) {
        TraceOp op;
        op.cls = OpClass::Load;
        op.addr = 0x1000 + 64 * i;
        op.dep1 = 1; // chained
        core.step(op);
    }
    EXPECT_GE(core.cycles(), 16u * 100u);
}

TEST(OooCore, RobLimitsMemoryParallelism)
{
    FakeMemory memory;
    memory.data_latency = 1000;
    CoreConfig small_rob;
    small_rob.rob_size = 8;
    OooCore core(small_rob, memory);
    // Window of 8: at most 8 of these loads can be in flight; 64
    // loads take at least (64/8) * 1000 cycles.
    for (int i = 0; i < 64; ++i) {
        TraceOp op;
        op.cls = OpClass::Load;
        op.addr = 0x1000 + 64 * i;
        core.step(op);
    }
    EXPECT_GE(core.cycles(), 8u * 1000u);
}

TEST(OooCore, MispredictRedirectsFetch)
{
    FakeMemory memory;
    OooCore baseline(CoreConfig{}, memory);
    OooCore redirected(CoreConfig{}, memory);
    for (int i = 0; i < 100; ++i) {
        TraceOp op;
        op.cls = OpClass::Branch;
        baseline.step(op);
        op.mispredict = true;
        redirected.step(op);
    }
    EXPECT_GT(redirected.cycles(), baseline.cycles());
    EXPECT_EQ(redirected.mispredicts(), 100u);
}

TEST(OooCore, StoresDoNotBlockRetirement)
{
    FakeMemory memory;
    memory.data_latency = 1000;
    OooCore core(CoreConfig{}, memory);
    for (int i = 0; i < 100; ++i) {
        TraceOp op;
        op.cls = OpClass::Store;
        op.addr = 0x2000 + 64 * i;
        core.step(op);
    }
    EXPECT_LT(core.cycles(), 1000u)
        << "stores retire through the store buffer";
}

TEST(OooCore, ResetRestartsTiming)
{
    FakeMemory memory;
    OooCore core(CoreConfig{}, memory);
    for (int i = 0; i < 100; ++i)
        core.step(aluOp());
    core.reset();
    EXPECT_EQ(core.cycles(), 0u);
    EXPECT_EQ(core.instructions(), 0u);
}

// -------------------------------------------------------------- workloads

TEST(Workload, Deterministic)
{
    SyntheticWorkload a(benchmarkProfile("gcc"));
    SyntheticWorkload b(benchmarkProfile("gcc"));
    for (int i = 0; i < 20000; ++i) {
        const TraceOp &op_a = a.next();
        const TraceOp &op_b = b.next();
        ASSERT_EQ(op_a.cls, op_b.cls);
        ASSERT_EQ(op_a.addr, op_b.addr);
        ASSERT_EQ(op_a.dep1, op_b.dep1);
    }
}

TEST(Workload, ResetReproducesStream)
{
    SyntheticWorkload workload(benchmarkProfile("mcf"));
    std::vector<uint64_t> first;
    for (int i = 0; i < 5000; ++i)
        first.push_back(workload.next().addr);
    workload.reset();
    for (int i = 0; i < 5000; ++i)
        ASSERT_EQ(workload.next().addr, first[static_cast<size_t>(i)]);
}

TEST(Workload, MixMatchesProfile)
{
    const WorkloadProfile profile = benchmarkProfile("parser");
    SyntheticWorkload workload(profile);
    std::map<OpClass, uint64_t> counts;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[workload.next().cls];
    const double mem_frac =
        static_cast<double>(counts[OpClass::Load] +
                            counts[OpClass::Store]) /
        n;
    EXPECT_NEAR(mem_frac, profile.mem_frac, 0.01);
    const double branch_frac =
        static_cast<double>(counts[OpClass::Branch]) / n;
    EXPECT_NEAR(branch_frac, profile.branch_frac, 0.01);
}

TEST(Workload, AddressesStayInRegions)
{
    const WorkloadProfile profile = benchmarkProfile("ammp");
    SyntheticWorkload workload(profile);
    for (int i = 0; i < 100000; ++i) {
        const TraceOp &op = workload.next();
        if (op.cls != OpClass::Load && op.cls != OpClass::Store)
            continue;
        bool inside = false;
        for (const DataRegion &region : workload.profile().regions) {
            const uint64_t extent =
                region.behavior == RegionBehavior::ConflictStream
                    ? region.conflict_lines * region.conflict_stride
                    : region.footprint;
            if (op.addr >= region.base &&
                op.addr < region.base + extent) {
                inside = true;
                break;
            }
        }
        ASSERT_TRUE(inside)
            << "address " << std::hex << op.addr << " outside regions";
    }
}

TEST(Workload, ChaseLoadsAreSerialized)
{
    SyntheticWorkload workload(benchmarkProfile("mcf"));
    uint64_t serialized = 0, chase_loads = 0;
    uint64_t chase_base = 0, chase_end = 0;
    for (const DataRegion &region : workload.profile().regions) {
        if (region.behavior == RegionBehavior::Chase) {
            chase_base = region.base;
            chase_end = region.base + region.footprint;
        }
    }
    ASSERT_NE(chase_base, 0u);
    for (int i = 0; i < 100000; ++i) {
        const TraceOp &op = workload.next();
        if (op.cls == OpClass::Load && op.addr >= chase_base &&
            op.addr < chase_end) {
            ++chase_loads;
            serialized += (op.dep1 != 0);
        }
    }
    EXPECT_GT(chase_loads, 1000u);
    EXPECT_GT(static_cast<double>(serialized) /
                  static_cast<double>(chase_loads),
              0.9)
        << "chase loads must depend on their predecessor";
}

TEST(Workload, LiveLinesMatchBehaviour)
{
    SyntheticWorkload workload(benchmarkProfile("gcc"));
    const auto &regions = workload.profile().regions;
    for (size_t i = 0; i < regions.size(); ++i) {
        const auto live = workload.liveLines(i);
        if (regions[i].behavior == RegionBehavior::WriteOnce) {
            EXPECT_TRUE(live.empty());
            continue;
        }
        EXPECT_FALSE(live.empty());
        std::set<uint64_t> unique(live.begin(), live.end());
        EXPECT_EQ(unique.size(), live.size()) << "no duplicate lines";
    }
}

TEST(Workload, AllElevenBenchmarksExist)
{
    EXPECT_EQ(benchmarkNames().size(), 11u);
    for (const std::string &name : benchmarkNames()) {
        const WorkloadProfile profile = benchmarkProfile(name);
        EXPECT_EQ(profile.name, name);
        EXPECT_FALSE(profile.regions.empty());
        // Paper numbers exist for every benchmark.
        const PaperNumbers numbers = paperNumbers(name);
        EXPECT_GT(numbers.xom_slowdown, 0.0);
    }
}

// ----------------------------------------------------------- full system

SystemConfig
quickConfig(secure::SecurityModel model)
{
    auto config = paperConfig(model);
    return config;
}

uint64_t
runCycles(const std::string &bench, const SystemConfig &config,
          uint64_t instructions)
{
    SyntheticWorkload workload(benchmarkProfile(bench),
                               config.l2.line_size);
    System system(config, workload);
    system.run(instructions / 4);
    system.beginMeasurement();
    system.run(instructions);
    return system.stats().cycles;
}

TEST(SystemOrdering, XomSlowerThanBaseline)
{
    // The paper's central premise, as a property over two memory-
    // bound benchmarks.
    for (const std::string bench : {"art", "mcf"}) {
        const uint64_t base = runCycles(
            bench, quickConfig(secure::SecurityModel::Baseline),
            400000);
        const uint64_t xom = runCycles(
            bench, quickConfig(secure::SecurityModel::Xom), 400000);
        EXPECT_GT(xom, base + base / 10)
            << bench << ": XOM must cost >10%";
    }
}

TEST(SystemOrdering, OtpBeatsXom)
{
    // The paper's central result.
    for (const std::string bench : {"art", "vpr"}) {
        const uint64_t xom = runCycles(
            bench, quickConfig(secure::SecurityModel::Xom), 400000);
        const uint64_t otp = runCycles(
            bench, quickConfig(secure::SecurityModel::OtpSnc), 400000);
        EXPECT_LT(otp, xom) << bench << ": OTP+SNC must beat XOM";
    }
}

TEST(SystemOrdering, LruBeatsNoReplacementOnGcc)
{
    // Figure 5's gcc pathology: drifting working sets fill a
    // no-replacement SNC with dead entries.
    auto lru = quickConfig(secure::SecurityModel::OtpSnc);
    auto norepl = lru;
    norepl.protection.snc.allow_replacement = false;
    const uint64_t lru_cycles = runCycles("gcc", lru, 600000);
    const uint64_t norepl_cycles = runCycles("gcc", norepl, 600000);
    EXPECT_LT(lru_cycles, norepl_cycles);
}

TEST(SystemOrdering, BiggerSncHelpsMcf)
{
    // Figure 6 on the most footprint-bound benchmark.
    auto small = quickConfig(secure::SecurityModel::OtpSnc);
    small.protection.snc.capacity_bytes = 32 * 1024;
    auto large = quickConfig(secure::SecurityModel::OtpSnc);
    large.protection.snc.capacity_bytes = 128 * 1024;
    const uint64_t small_cycles = runCycles("mcf", small, 600000);
    const uint64_t large_cycles = runCycles("mcf", large, 600000);
    EXPECT_LT(large_cycles, small_cycles);
}

TEST(SystemOrdering, CryptoLatencyHurtsXomNotOtp)
{
    // Figure 10's property: XOM degrades with crypto latency, the
    // OTP fast path absorbs it.
    auto xom_fast = quickConfig(secure::SecurityModel::Xom);
    auto xom_slow = xom_fast;
    xom_slow.protection.crypto.latency =
        crypto::kStrongCipherLatency;
    auto otp_fast = quickConfig(secure::SecurityModel::OtpSnc);
    auto otp_slow = otp_fast;
    otp_slow.protection.crypto.latency =
        crypto::kStrongCipherLatency;

    const uint64_t base = runCycles(
        "art", quickConfig(secure::SecurityModel::Baseline), 400000);
    const uint64_t xf = runCycles("art", xom_fast, 400000);
    const uint64_t xs = runCycles("art", xom_slow, 400000);
    const uint64_t of = runCycles("art", otp_fast, 400000);
    const uint64_t os = runCycles("art", otp_slow, 400000);

    EXPECT_GT(xs, xf) << "102-cycle crypto must slow XOM further";
    const double otp_delta =
        std::abs(static_cast<double>(os) - static_cast<double>(of)) /
        static_cast<double>(base);
    EXPECT_LT(otp_delta, 0.05)
        << "OTP slowdown is insensitive to crypto latency";
}

TEST(System, MshrLimitEnforced)
{
    auto config = quickConfig(secure::SecurityModel::Baseline);
    config.mshrs = 1;
    const uint64_t serialized = runCycles("art", config, 200000);
    config.mshrs = 16;
    const uint64_t parallel = runCycles("art", config, 200000);
    EXPECT_LT(parallel, serialized)
        << "more MSHRs must increase miss overlap";
}

TEST(System, StatsAreConsistent)
{
    auto config = quickConfig(secure::SecurityModel::OtpSnc);
    SyntheticWorkload workload(benchmarkProfile("parser"),
                               config.l2.line_size);
    System system(config, workload);
    system.run(100000);
    system.beginMeasurement();
    system.run(200000);
    const RunStats stats = system.stats();
    EXPECT_EQ(stats.instructions, 200000u);
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_GT(stats.ipc, 0.0);
    EXPECT_LE(stats.l2_misses, stats.l2_accesses);
    EXPECT_GT(stats.data_bytes, 0u);
}

TEST(System, DeterministicAcrossRuns)
{
    const uint64_t first = runCycles(
        "vpr", quickConfig(secure::SecurityModel::OtpSnc), 300000);
    const uint64_t second = runCycles(
        "vpr", quickConfig(secure::SecurityModel::OtpSnc), 300000);
    EXPECT_EQ(first, second)
        << "identical configuration must give identical cycles";
}

/** Parameterized: every benchmark runs under every model. */
class EveryBenchEveryModel
    : public ::testing::TestWithParam<
          std::tuple<std::string, secure::SecurityModel>>
{};

TEST_P(EveryBenchEveryModel, RunsAndProducesSaneStats)
{
    const auto &[bench, model] = GetParam();
    auto config = quickConfig(model);
    SyntheticWorkload workload(benchmarkProfile(bench),
                               config.l2.line_size);
    System system(config, workload);
    system.run(60000);
    system.beginMeasurement();
    system.run(120000);
    const RunStats stats = system.stats();
    EXPECT_EQ(stats.instructions, 120000u);
    EXPECT_GT(stats.ipc, 0.05);
    EXPECT_LT(stats.ipc, 4.0);
}

std::string
matrixName(const ::testing::TestParamInfo<
           std::tuple<std::string, secure::SecurityModel>> &info)
{
    std::string name =
        std::get<0>(info.param) + "_" +
        secure::securityModelName(std::get<1>(info.param));
    for (char &c : name) {
        if (c == '-')
            c = '_';
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EveryBenchEveryModel,
    ::testing::Combine(
        ::testing::ValuesIn(benchmarkNames()),
        ::testing::Values(secure::SecurityModel::Baseline,
                          secure::SecurityModel::Xom,
                          secure::SecurityModel::OtpSnc)),
    matrixName);

} // namespace
