/**
 * @file
 * Tests for the OTA transport model: deterministic scheduling,
 * bandwidth capping, loss + retransmission, reordering — and the
 * invariant that matters to the install planes: every payload byte
 * arrives exactly once, whatever the link does.
 */

#include <gtest/gtest.h>

#include "ota/transport.hh"

namespace
{

using namespace secproc::ota;

std::vector<uint8_t>
payload(size_t size)
{
    std::vector<uint8_t> bytes(size);
    for (size_t i = 0; i < size; ++i)
        bytes[i] = static_cast<uint8_t>(i * 131 + 7);
    return bytes;
}

/** Drain the whole stream, checking byte-exact reassembly. */
std::vector<Transport::Chunk>
drain(Transport &transport, const std::vector<uint8_t> &sent)
{
    std::vector<Transport::Chunk> all;
    std::vector<uint8_t> got(sent.size(), 0);
    std::vector<bool> seen(sent.size(), false);
    uint64_t cycle = 0;
    while (!transport.complete()) {
        cycle += 1000;
        for (auto &chunk : transport.poll(cycle)) {
            for (size_t i = 0; i < chunk.bytes.size(); ++i) {
                const size_t at = chunk.offset + i;
                EXPECT_FALSE(seen.at(at)) << "byte " << at
                                          << " delivered twice";
                seen[at] = true;
                got[at] = chunk.bytes[i];
            }
            all.push_back(std::move(chunk));
        }
        if (cycle >= (1u << 30)) {
            ADD_FAILURE() << "stream never completed";
            break;
        }
    }
    EXPECT_EQ(got, sent) << "reassembled payload differs";
    return all;
}

TEST(Transport, LosslessArrivesInOrderAtTheBandwidthCap)
{
    TransportConfig config;
    config.chunk_bytes = 256;
    config.cycles_per_chunk = 100;
    Transport transport(config);
    const auto sent = payload(1000); // 4 chunks, last one short
    transport.send(sent, 50);

    EXPECT_TRUE(transport.poll(149).empty()) << "nothing before "
                                                "the first chunk time";
    const auto all = drain(transport, sent);
    ASSERT_EQ(all.size(), 4u);
    for (size_t i = 0; i < all.size(); ++i) {
        EXPECT_EQ(all[i].offset, i * 256);
        EXPECT_EQ(all[i].arrival_cycle, 50 + (i + 1) * 100u)
            << "one chunk per 100 cycles";
    }
    EXPECT_EQ(all.back().bytes.size(), 1000u - 3 * 256u);
    EXPECT_EQ(transport.chunksSent(), 4u);
    EXPECT_EQ(transport.chunksLost(), 0u);
    EXPECT_EQ(transport.retransmitPasses(), 0u);
    EXPECT_EQ(transport.completionCycle(), 450u);
}

TEST(Transport, SameSeedSameSchedule)
{
    TransportConfig config;
    config.loss_rate = 0.2;
    config.reorder_rate = 0.3;
    config.seed = 99;
    const auto sent = payload(64 * 1024);

    auto arrivals = [&](uint64_t seed) {
        TransportConfig c = config;
        c.seed = seed;
        Transport transport(c);
        transport.send(sent, 0);
        std::vector<std::pair<uint64_t, uint64_t>> out;
        for (const auto &chunk : drain(transport, sent))
            out.emplace_back(chunk.offset, chunk.arrival_cycle);
        return out;
    };

    EXPECT_EQ(arrivals(99), arrivals(99));
    EXPECT_NE(arrivals(99), arrivals(100))
        << "a different seed must shuffle the schedule";
}

TEST(Transport, LossRetransmitsEverythingEventually)
{
    TransportConfig config;
    config.chunk_bytes = 512;
    config.loss_rate = 0.25;
    config.burst_length = 3.0;
    config.seed = 7;
    Transport transport(config);
    const auto sent = payload(256 * 1024);
    transport.send(sent, 0);

    drain(transport, sent); // asserts byte-exact, exactly-once
    EXPECT_GT(transport.chunksLost(), 0u) << "25% loss must bite";
    EXPECT_GE(transport.retransmitPasses(), 1u);
    EXPECT_EQ(transport.chunksSent(),
              sent.size() / 512 + transport.chunksLost());
    // A lossy stream takes strictly longer than a lossless one.
    TransportConfig clean = config;
    clean.loss_rate = 0.0;
    Transport lossless(clean);
    lossless.send(sent, 0);
    drain(lossless, sent);
    EXPECT_GT(transport.completionCycle(),
              lossless.completionCycle());
}

TEST(Transport, ReorderingJittersButLosesNothing)
{
    TransportConfig config;
    config.chunk_bytes = 256;
    config.reorder_rate = 0.5;
    config.reorder_window = 8;
    config.seed = 21;
    Transport transport(config);
    const auto sent = payload(64 * 1024);
    transport.send(sent, 0);

    const auto all = drain(transport, sent);
    EXPECT_GT(transport.chunksReordered(), 0u);
    EXPECT_EQ(transport.chunksLost(), 0u);
    // Arrival order must genuinely differ from offset order.
    bool out_of_order = false;
    for (size_t i = 1; i < all.size(); ++i)
        out_of_order |= all[i].offset < all[i - 1].offset;
    EXPECT_TRUE(out_of_order);
    // And poll() must return chunks in arrival order regardless.
    for (size_t i = 1; i < all.size(); ++i)
        EXPECT_GE(all[i].arrival_cycle, all[i - 1].arrival_cycle);
}

TEST(Transport, EmptyPayloadIsALegalDegenerateStream)
{
    // Regression: completionCycle() used to panic after send({}) —
    // it asserted a non-empty schedule instead of falling back to
    // the send cycle. An empty stream completes at the send instant.
    TransportConfig config;
    config.chunk_bytes = 256;
    config.cycles_per_chunk = 100;
    Transport transport(config);
    transport.send({}, 777);

    EXPECT_TRUE(transport.complete());
    EXPECT_TRUE(transport.poll(1'000'000).empty());
    EXPECT_EQ(transport.completionCycle(), 777u);
    EXPECT_EQ(transport.chunksSent(), 0u);
    EXPECT_EQ(transport.nextArrivalCycle(), UINT64_MAX);

    // A fresh stream on the same transport still works after the
    // degenerate one.
    const auto sent = payload(600);
    transport.send(sent, 1000);
    EXPECT_FALSE(transport.complete());
    drain(transport, sent);
    EXPECT_EQ(transport.completionCycle(), 1000u + 3 * 100u);
}

TEST(Transport, SubChunkPayloadIsOneShortChunk)
{
    TransportConfig config;
    config.chunk_bytes = 1024;
    config.cycles_per_chunk = 50;
    Transport transport(config);
    const auto sent = payload(100); // well under one chunk
    transport.send(sent, 0);

    const auto all = drain(transport, sent);
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0].offset, 0u);
    EXPECT_EQ(all[0].bytes.size(), 100u);
    EXPECT_EQ(transport.chunksSent(), 1u);
    EXPECT_EQ(transport.completionCycle(), 50u);
}

TEST(Transport, HeldChunksAreNeverRetransmitted)
{
    // The resume path: chunks the receiver already staged before a
    // power cut are NACKed away — not transmitted, not delivered.
    TransportConfig config;
    config.chunk_bytes = 256;
    config.cycles_per_chunk = 100;
    Transport transport(config);
    const auto sent = payload(1024); // 4 chunks
    std::vector<bool> held = {true, false, true, false};
    transport.send(sent, 0, held);

    std::vector<Transport::Chunk> all;
    uint64_t cycle = 0;
    while (!transport.complete()) {
        cycle += 100;
        for (auto &chunk : transport.poll(cycle))
            all.push_back(std::move(chunk));
        ASSERT_LT(cycle, 1u << 20);
    }
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0].offset, 256u);
    EXPECT_EQ(all[1].offset, 768u);
    EXPECT_EQ(transport.chunksSkipped(), 2u);
    EXPECT_EQ(transport.chunksSent(), 2u);
    // Two transmissions at the cap: done at 200, not 400.
    EXPECT_EQ(transport.completionCycle(), 200u);

    // Everything held: nothing to send, complete at the send cycle.
    Transport resumed(config);
    resumed.send(sent, 42, std::vector<bool>(4, true));
    EXPECT_TRUE(resumed.complete());
    EXPECT_EQ(resumed.completionCycle(), 42u);
    EXPECT_EQ(resumed.chunksSkipped(), 4u);

    // A short held map treats the tail as missing.
    Transport partial(config);
    partial.send(sent, 0, {true});
    EXPECT_EQ(partial.chunksSkipped(), 1u);
    EXPECT_FALSE(partial.complete());
}

TEST(TransportDeath, RejectsBrokenConfigs)
{
    TransportConfig config;
    config.chunk_bytes = 0;
    EXPECT_DEATH_IF_SUPPORTED(
        { Transport transport(config); (void)transport; },
        "chunk size");
    TransportConfig full_loss;
    full_loss.loss_rate = 1.0;
    EXPECT_DEATH_IF_SUPPORTED(
        { Transport transport(full_loss); (void)transport; },
        "loss rate");
}

} // namespace
