/**
 * @file
 * Trace record/replay tests: bit-exact round trips, cycle-identical
 * System replays, wrap semantics, and malformed-input rejection.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "sim/profiles.hh"
#include "sim/system.hh"
#include "sim/trace_io.hh"

namespace
{

using namespace secproc;
using namespace secproc::sim;

/** Unique temp path per test; removed on destruction. */
class TempTrace
{
  public:
    explicit TempTrace(const std::string &tag)
        : path_(std::filesystem::temp_directory_path() /
                ("secproc_trace_" + tag + ".bin"))
    {}

    ~TempTrace() { std::filesystem::remove(path_); }

    std::string str() const { return path_.string(); }

  private:
    std::filesystem::path path_;
};

WorkloadProfile
traceProfile(uint64_t seed)
{
    WorkloadProfile profile;
    profile.name = "trace-test";
    profile.mem_frac = 0.35;
    profile.code_footprint = 8 * 1024;
    profile.rng_seed = seed;
    DataRegion hot;
    hot.behavior = RegionBehavior::Hot;
    hot.footprint = 32 * 1024;
    hot.weight = 0.5;
    DataRegion zipf;
    zipf.behavior = RegionBehavior::Zipf;
    zipf.footprint = 1024 * 1024;
    zipf.weight = 0.5;
    zipf.store_frac = 0.4;
    profile.regions = {hot, zipf};
    return profile;
}

TEST(TraceIo, RoundTripIsBitExact)
{
    TempTrace path("roundtrip");
    SyntheticWorkload source(traceProfile(1), 128);
    recordTrace(path.str(), source, 20'000);

    SyntheticWorkload reference(traceProfile(1), 128);
    TraceWorkload replay(path.str());
    ASSERT_EQ(replay.length(), 20'000u);
    for (int i = 0; i < 20'000; ++i) {
        const TraceOp &want = reference.next();
        const TraceOp &got = replay.next();
        ASSERT_EQ(got.cls, want.cls) << "op " << i;
        ASSERT_EQ(got.addr, want.addr) << "op " << i;
        ASSERT_EQ(got.fetch_line, want.fetch_line) << "op " << i;
        ASSERT_EQ(got.dep1, want.dep1) << "op " << i;
        ASSERT_EQ(got.dep2, want.dep2) << "op " << i;
        ASSERT_EQ(got.mispredict, want.mispredict) << "op " << i;
    }
}

TEST(TraceIo, ProfileSurvivesSerialization)
{
    TempTrace path("profile");
    SyntheticWorkload source(traceProfile(2), 128);
    recordTrace(path.str(), source, 100);

    TraceWorkload replay(path.str());
    const WorkloadProfile &original = source.profile();
    const WorkloadProfile &restored = replay.profile();
    EXPECT_EQ(restored.name, original.name);
    EXPECT_EQ(restored.rng_seed, original.rng_seed);
    EXPECT_EQ(restored.code_footprint, original.code_footprint);
    ASSERT_EQ(restored.regions.size(), original.regions.size());
    for (size_t i = 0; i < original.regions.size(); ++i) {
        EXPECT_EQ(restored.regions[i].base, original.regions[i].base);
        EXPECT_EQ(restored.regions[i].footprint,
                  original.regions[i].footprint);
        EXPECT_EQ(restored.regions[i].behavior,
                  original.regions[i].behavior);
    }
    for (size_t i = 0; i < original.regions.size(); ++i)
        EXPECT_EQ(replay.liveLines(i), source.liveLines(i));
}

TEST(TraceIo, ReplayedSystemMatchesLiveSystemCycles)
{
    // The headline property: a System driven by a recorded trace
    // must produce byte-identical timing to one driven by the live
    // generator, because preinitialization state (profile + live
    // lines) travels inside the trace.
    const uint64_t instructions = 150'000;
    TempTrace path("cycles");
    {
        SyntheticWorkload recorder(traceProfile(3), 128);
        recordTrace(path.str(), recorder, instructions);
    }

    SyntheticWorkload live(traceProfile(3), 128);
    System live_system(paperConfig(secure::SecurityModel::OtpSnc),
                       live);
    live_system.run(instructions);

    TraceWorkload replay(path.str());
    System replay_system(paperConfig(secure::SecurityModel::OtpSnc),
                         replay);
    replay_system.run(instructions);

    EXPECT_EQ(replay_system.core().cycles(),
              live_system.core().cycles());
}

TEST(TraceIo, ReplayWrapsAroundAtEnd)
{
    TempTrace path("wrap");
    SyntheticWorkload source(traceProfile(4), 128);
    recordTrace(path.str(), source, 1'000);

    TraceWorkload replay(path.str());
    std::vector<uint64_t> first_pass;
    for (int i = 0; i < 1'000; ++i)
        first_pass.push_back(replay.next().addr);
    EXPECT_EQ(replay.wraps(), 1u);
    for (int i = 0; i < 1'000; ++i)
        ASSERT_EQ(replay.next().addr, first_pass[i]) << "op " << i;
    EXPECT_EQ(replay.wraps(), 2u);

    replay.reset();
    EXPECT_EQ(replay.wraps(), 0u);
    EXPECT_EQ(replay.next().addr, first_pass[0]);
}

TEST(TraceIo, RejectsNonTraceFile)
{
    TempTrace path("garbage");
    FILE *f = std::fopen(path.str().c_str(), "wb");
    std::fputs("definitely not a trace", f);
    std::fclose(f);
    EXPECT_DEATH_IF_SUPPORTED(
        {
            TraceWorkload replay(path.str());
            (void)replay;
        },
        "not a secproc trace");
}

TEST(TraceIo, RejectsTruncatedFile)
{
    TempTrace path("truncated");
    SyntheticWorkload source(traceProfile(5), 128);
    recordTrace(path.str(), source, 500);
    // Chop the tail off.
    const auto full = std::filesystem::file_size(path.str());
    std::filesystem::resize_file(path.str(), full / 2);
    EXPECT_DEATH_IF_SUPPORTED(
        {
            TraceWorkload replay(path.str());
            (void)replay;
        },
        "truncated");
}

TEST(TraceIo, RejectsMissingFile)
{
    EXPECT_DEATH_IF_SUPPORTED(
        {
            TraceWorkload replay("/nonexistent/dir/file.bin");
            (void)replay;
        },
        "cannot open");
}

TEST(TraceIo, CompressionIsCompact)
{
    // Delta+varint encoding should keep the common op well under
    // four bytes: a 20k-op trace of a loopy workload must be far
    // smaller than the naive 24-byte-per-op encoding.
    TempTrace path("size");
    SyntheticWorkload source(benchmarkProfile("gzip"), 128);
    recordTrace(path.str(), source, 20'000);
    const auto size = std::filesystem::file_size(path.str());
    EXPECT_LT(size, 20'000u * 8)
        << "expected < 8 bytes/op, got " << size;
}

TEST(TraceIo, AllBenchmarkProfilesRoundTrip)
{
    for (const std::string &name : benchmarkNames()) {
        TempTrace path("bench_" + name);
        SyntheticWorkload source(benchmarkProfile(name), 128);
        recordTrace(path.str(), source, 2'000);
        SyntheticWorkload reference(benchmarkProfile(name), 128);
        TraceWorkload replay(path.str());
        for (int i = 0; i < 2'000; ++i) {
            const TraceOp &want = reference.next();
            const TraceOp &got = replay.next();
            ASSERT_EQ(got.addr, want.addr) << name << " op " << i;
            ASSERT_EQ(got.cls, want.cls) << name << " op " << i;
        }
    }
}

} // namespace
