/**
 * @file
 * Observability-plane tests.
 *
 * The load-bearing property is *non-perturbation*: attaching a
 * TraceSink must not change a single architectural or timing bit of
 * the simulation, and two traced runs of the same seed must export
 * byte-identical Chrome JSON. On the metrics side, snapshot/delta
 * must implement exact counter-window arithmetic (counters subtract
 * the base, gauges pass through) since System::stats() now rides on
 * it.
 */

#include <gtest/gtest.h>

#include "crypto/latency.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "ota/transport.hh"
#include "sim/profiles.hh"
#include "sim/system.hh"
#include "update/image_builder.hh"
#include "update/live_install.hh"
#include "update/update_engine.hh"
#include "util/json.hh"
#include "util/stats.hh"

namespace
{

using namespace secproc;
using namespace secproc::update;

// ----------------------------------------------------------- metrics

TEST(Metrics, SnapshotDeltaCountersSubtractGaugesPass)
{
    uint64_t count = 100;
    double level = 1.5;

    obs::MetricsRegistry registry;
    registry.counterFn("a.count", [&] { return count; });
    registry.gaugeFn("a.level", [&] { return level; });

    const obs::MetricsSnapshot base = registry.snapshot();
    count = 175;
    level = 9.25;
    const obs::MetricsSnapshot now = registry.snapshot();
    const obs::MetricsSnapshot window = now.delta(base);

    EXPECT_EQ(window.u64("a.count"), 75u);
    EXPECT_DOUBLE_EQ(window.value("a.level"), 9.25);

    // Absolute values survive a delta against the empty default
    // snapshot (the pre-beginMeasurement semantics).
    const obs::MetricsSnapshot absolute =
        now.delta(obs::MetricsSnapshot());
    EXPECT_EQ(absolute.u64("a.count"), 175u);
    EXPECT_DOUBLE_EQ(absolute.value("a.level"), 9.25);
}

TEST(Metrics, SnapshotLookupAndJson)
{
    util::Counter hits;
    ++hits;
    ++hits;

    obs::MetricsRegistry registry;
    registry.counter("cache.hits", &hits);
    registry.counterFn("cache.misses", [] { return uint64_t{7}; });

    const obs::MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.entries().size(), 2u);
    EXPECT_EQ(snap.u64("cache.hits"), 2u);
    EXPECT_EQ(snap.find("cache.nope"), nullptr);

    // Entries are name-sorted and the JSON form is one flat object.
    EXPECT_EQ(snap.entries()[0].name, "cache.hits");
    const util::Json doc = snap.toJson();
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("cache.hits").asU64(), 2u);
    EXPECT_EQ(doc.at("cache.misses").asU64(), 7u);
}

TEST(Metrics, AccumulatorAndHistogramExpand)
{
    util::Accumulator acc;
    acc.sample(10.0);
    acc.sample(20.0);
    util::Histogram hist(1.0, 4);
    hist.sample(0.5);

    obs::MetricsRegistry registry;
    registry.accumulator("wait", &acc);
    registry.histogram("lat", &hist);

    const obs::MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.u64("wait.count"), 2u);
    EXPECT_DOUBLE_EQ(snap.value("wait.mean"), 15.0);
    EXPECT_EQ(snap.u64("lat.samples"), 1u);
    EXPECT_NE(snap.find("lat.p50"), nullptr);
    EXPECT_NE(snap.find("lat.p90"), nullptr);
    EXPECT_NE(snap.find("lat.p99"), nullptr);
}

TEST(Histogram, PercentileEdges)
{
    util::Histogram empty(1.0, 4);
    EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);

    util::Histogram hist(1.0, 4);
    hist.sample(0.5); // bucket [0,1)
    hist.sample(2.5); // bucket [2,3)
    EXPECT_DOUBLE_EQ(hist.percentile(0.0), 1.0); // rank clamps to 1
    EXPECT_DOUBLE_EQ(hist.percentile(0.5), 1.0);
    EXPECT_DOUBLE_EQ(hist.percentile(1.0), 3.0);

    // Overflow samples report the histogram's upper bound.
    hist.sample(100.0);
    EXPECT_DOUBLE_EQ(hist.percentile(1.0), 4.0);
}

// ------------------------------------------------------------- trace

TEST(Trace, ChromeJsonShape)
{
    obs::TraceSink sink;
    const obs::TrackId ch = sink.track("channel.core");
    const obs::TrackId ota = sink.track("ota");
    sink.duration(ch, "read.data", 100, 260, {{"wait", 60}});
    sink.instant(ota, "chunk", 300, {{"offset", 1024}});
    EXPECT_EQ(sink.trackCount(), 2u);
    EXPECT_EQ(sink.eventCount(), 2u);

    // The export must survive a parse round trip and carry the
    // Chrome trace-event fields Perfetto keys on.
    const std::string text = sink.toChromeJson().dump(2);
    const std::optional<util::Json> parsed = util::Json::parse(text);
    ASSERT_TRUE(parsed.has_value());
    const util::Json &events = parsed->at("traceEvents");
    ASSERT_TRUE(events.isArray());

    size_t meta = 0, durations = 0, instants = 0;
    for (size_t i = 0; i < events.size(); ++i) {
        const util::Json &event = events[i];
        const std::string &ph = event.at("ph").str();
        EXPECT_NE(event.find("pid"), nullptr);
        if (ph == "M") {
            ++meta;
        } else if (ph == "X") {
            ++durations;
            EXPECT_EQ(event.at("ts").asU64(), 100u);
            EXPECT_EQ(event.at("dur").asU64(), 160u);
            EXPECT_EQ(event.at("args").at("wait").asU64(), 60u);
        } else if (ph == "i") {
            ++instants;
            EXPECT_EQ(event.at("ts").asU64(), 300u);
        }
    }
    // Process name + one thread name per track, then the events.
    EXPECT_EQ(meta, 3u);
    EXPECT_EQ(durations, 1u);
    EXPECT_EQ(instants, 1u);
}

// ------------------------------------- non-perturbation differential

constexpr uint32_t kLine = 128;
constexpr uint64_t kStagingBase = 0x4000'0000;
constexpr uint64_t kSlotSize = 1ull << 20;
constexpr uint64_t kImageBase = 0x0800'0000;
constexpr uint64_t kImageBytes = 32ull << 10;

UpdateBundle
makeBundle(ImageBuilder &vendor, const crypto::RsaPublicKey &processor,
           util::Rng &rng, uint32_t version)
{
    xom::PlainProgram program;
    program.title = "fw";
    program.entry_point = kImageBase;
    xom::PlainProgram::PlainSection text;
    text.name = ".text";
    text.vaddr = kImageBase;
    text.bytes.resize(kImageBytes, static_cast<uint8_t>(version));
    program.sections = {text};

    UpdateSpec spec;
    spec.image_version = version;
    spec.rollback_counter = version;
    spec.cipher = secure::CipherKind::Des;
    return vendor.build(program, spec, processor, rng);
}

/** Everything a traced run could possibly have perturbed. */
struct MiniRunResult
{
    sim::RunStats stats;
    uint64_t finish_cycle = 0;
    uint64_t bg_grants = 0;
    uint64_t bg_forced = 0;
    uint64_t agent_bytes = 0;
    bool install_done = false;
    std::vector<uint8_t> slot_bytes;
    std::string trace_json; ///< "" when untraced
};

/**
 * One deterministic arbiter-paced live install (lossy OTA transport,
 * gcc foreground) with tracing on or off.
 */
MiniRunResult
runMiniInstall(bool traced)
{
    util::Rng rng(0x0B5'0001);
    ImageBuilder vendor(crypto::rsaGenerate(512, rng));
    const crypto::RsaKeyPair processor = crypto::rsaGenerate(512, rng);
    secure::KeyTable keys;
    RollbackStore rollback(64);
    UpdateEngine updater(vendor.publicKey(), processor, keys, rollback,
                         StagingConfig{kStagingBase, kSlotSize});

    const sim::SystemConfig config =
        sim::paperConfig(secure::SecurityModel::OtpSnc);
    sim::SyntheticWorkload workload(sim::benchmarkProfile("gcc"),
                                    config.l2.line_size);
    sim::System system(config, workload);

    LiveInstallConfig live_config;
    live_config.line_bytes = kLine;
    live_config.pacing = InstallPacing::Arbiter;
    live_config.transport.chunk_bytes = 1024;
    live_config.transport.cycles_per_chunk = 128;
    live_config.transport.loss_rate = 0.05;
    live_config.transport.burst_length = 2.0;
    live_config.transport.retransmit_delay = 4096;
    live_config.transport.seed = 0x0F0A;
    LiveInstall live(live_config, system, updater, 1);

    obs::TraceSink trace;
    if (traced)
        system.setTraceSink(&trace);
    system.attachAgent(&live);

    const UpdateBundle bundle =
        makeBundle(vendor, processor.pub, rng, 1);
    system.beginMeasurement();
    live.start(bundle, 0);
    for (int chunk = 0; chunk < 600 && !live.done(); ++chunk)
        system.run(25'000);

    MiniRunResult result;
    result.stats = system.stats();
    result.finish_cycle = system.core().cycles();
    result.bg_grants = system.channel().backgroundGrants();
    result.bg_forced = system.channel().backgroundForcedGrants();
    result.agent_bytes = system.channel().agentBytes(live.agent());
    result.install_done = live.phase() == LiveInstallPhase::Done;
    if (result.install_done) {
        result.slot_bytes.resize(live.stagedBytesWritten());
        system.mainMemory().read(
            updater.slotBase(updater.activeSlot()),
            result.slot_bytes.data(), result.slot_bytes.size());
    }
    if (traced)
        result.trace_json = trace.toChromeJson().dump();
    return result;
}

TEST(Trace, TracedRunIsBitIdenticalToUntraced)
{
    const MiniRunResult traced = runMiniInstall(true);
    const MiniRunResult plain = runMiniInstall(false);

    ASSERT_TRUE(traced.install_done);
    ASSERT_TRUE(plain.install_done);
    EXPECT_EQ(traced.finish_cycle, plain.finish_cycle);
    EXPECT_EQ(traced.bg_grants, plain.bg_grants);
    EXPECT_EQ(traced.bg_forced, plain.bg_forced);
    EXPECT_EQ(traced.agent_bytes, plain.agent_bytes);
    EXPECT_EQ(traced.slot_bytes, plain.slot_bytes);

    EXPECT_EQ(traced.stats.instructions, plain.stats.instructions);
    EXPECT_EQ(traced.stats.cycles, plain.stats.cycles);
    EXPECT_EQ(traced.stats.l2_misses, plain.stats.l2_misses);
    EXPECT_EQ(traced.stats.l2_accesses, plain.stats.l2_accesses);
    EXPECT_EQ(traced.stats.data_bytes, plain.stats.data_bytes);
    EXPECT_EQ(traced.stats.seqnum_bytes, plain.stats.seqnum_bytes);
    EXPECT_EQ(traced.stats.fast_fills, plain.stats.fast_fills);
    EXPECT_EQ(traced.stats.slow_fills, plain.stats.slow_fills);
    EXPECT_EQ(traced.stats.snc_query_misses,
              plain.stats.snc_query_misses);

    // The traced run did actually record the unified plane.
    EXPECT_FALSE(traced.trace_json.empty());
}

TEST(Trace, TwoTracedRunsExportByteIdentically)
{
    const MiniRunResult first = runMiniInstall(true);
    const MiniRunResult second = runMiniInstall(true);
    ASSERT_FALSE(first.trace_json.empty());
    EXPECT_EQ(first.trace_json, second.trace_json);
}

TEST(Trace, ForegroundOnlyRunUnperturbed)
{
    auto run = [](bool traced) {
        const sim::SystemConfig config =
            sim::paperConfig(secure::SecurityModel::OtpSnc);
        sim::SyntheticWorkload workload(sim::benchmarkProfile("mcf"),
                                        config.l2.line_size);
        sim::System system(config, workload);
        obs::TraceSink trace;
        if (traced)
            system.setTraceSink(&trace);
        system.run(20'000);
        system.beginMeasurement();
        system.run(50'000);
        return system.stats();
    };
    const sim::RunStats traced = run(true);
    const sim::RunStats plain = run(false);
    EXPECT_EQ(traced.cycles, plain.cycles);
    EXPECT_EQ(traced.instructions, plain.instructions);
    EXPECT_EQ(traced.l2_misses, plain.l2_misses);
    EXPECT_EQ(traced.data_bytes, plain.data_bytes);
    EXPECT_EQ(traced.seqnum_bytes, plain.seqnum_bytes);
}

// --------------------------------------------- System-level registry

TEST(Metrics, SystemStatsMatchRegistrySnapshot)
{
    const sim::SystemConfig config =
        sim::paperConfig(secure::SecurityModel::OtpSnc);
    sim::SyntheticWorkload workload(sim::benchmarkProfile("gcc"),
                                    config.l2.line_size);
    sim::System system(config, workload);
    system.run(20'000);
    system.beginMeasurement();
    const obs::MetricsSnapshot base = system.metrics().snapshot();
    system.run(50'000);

    const sim::RunStats stats = system.stats();
    const obs::MetricsSnapshot window =
        system.metrics().snapshot().delta(base);
    EXPECT_EQ(stats.cycles, window.u64("core.cycles"));
    EXPECT_EQ(stats.instructions, window.u64("core.instructions"));
    EXPECT_EQ(stats.l2_misses, window.u64("l2.misses"));
    EXPECT_EQ(stats.l2_accesses, window.u64("l2.accesses"));
    EXPECT_EQ(stats.data_bytes, window.u64("channel.data_bytes"));
    EXPECT_EQ(stats.seqnum_bytes, window.u64("channel.seqnum_bytes"));
}

} // namespace
