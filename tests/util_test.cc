/**
 * @file
 * Unit tests for the util library: bit operations, RNG determinism
 * and distributions, statistics, string helpers, table rendering.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <unordered_map>

#include "util/bitops.hh"
#include "util/flat_map.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/strutil.hh"
#include "util/table.hh"

namespace
{

using namespace secproc::util;

// ----------------------------------------------------------------- bitops

TEST(BitOps, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ull << 40));
    EXPECT_FALSE(isPowerOfTwo((1ull << 40) + 1));
}

TEST(BitOps, FloorCeilLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(255), 7u);
    EXPECT_EQ(floorLog2(256), 8u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(256), 8u);
    EXPECT_EQ(ceilLog2(257), 9u);
}

TEST(BitOps, Alignment)
{
    EXPECT_EQ(alignDown(0x12345, 0x100), 0x12300u);
    EXPECT_EQ(alignUp(0x12345, 0x100), 0x12400u);
    EXPECT_EQ(alignUp(0x12300, 0x100), 0x12300u);
    EXPECT_EQ(alignDown(127, 128), 0u);
    EXPECT_EQ(alignUp(1, 128), 128u);
}

TEST(BitOps, BitsAndMask)
{
    EXPECT_EQ(bits(0xABCD, 4, 8), 0xBCu);
    EXPECT_EQ(bits(~0ull, 0, 64), ~0ull);
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(16), 0xFFFFu);
    EXPECT_EQ(mask(64), ~0ull);
}

TEST(BitOps, Rotl28)
{
    // Rotating a 28-bit value by 28 must be the identity.
    const uint32_t v = 0x0ABCDEF;
    uint32_t r = v;
    for (int i = 0; i < 28; ++i)
        r = rotl28(r, 1);
    EXPECT_EQ(r, v);
    EXPECT_EQ(rotl28(0x8000000, 1) & ~0x0FFFFFFFu, 0u)
        << "rotl28 must stay within 28 bits";
}

TEST(BitOps, EndianRoundTrip)
{
    uint8_t buf[8];
    storeBe64(buf, 0x0123456789ABCDEFull);
    EXPECT_EQ(buf[0], 0x01);
    EXPECT_EQ(buf[7], 0xEF);
    EXPECT_EQ(loadBe64(buf), 0x0123456789ABCDEFull);
    storeLe64(buf, 0x0123456789ABCDEFull);
    EXPECT_EQ(buf[0], 0xEF);
    EXPECT_EQ(loadLe64(buf), 0x0123456789ABCDEFull);
}

// ----------------------------------------------------------------- random

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next64() == b.next64());
    EXPECT_LT(same, 3);
}

TEST(Rng, RangeBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.nextRange(17), 17u);
    // All residues reachable.
    std::set<uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.nextRange(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(11);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ZipfSkewsTowardLowRanks)
{
    Rng rng(13);
    uint64_t low = 0, high = 0;
    for (int i = 0; i < 20000; ++i) {
        const uint64_t rank = rng.nextZipf(1000, 1.0);
        ASSERT_LT(rank, 1000u);
        if (rank < 10)
            ++low;
        if (rank >= 500)
            ++high;
    }
    EXPECT_GT(low, high) << "Zipf must favor popular ranks";
    EXPECT_GT(low, 20000u / 10) << "top-10 of 1000 should exceed 10%";
}

TEST(Rng, GeometricMeanRoughlyMatches)
{
    Rng rng(17);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextGeometric(0.5));
    // Mean of geometric (failures before success) = (1-p)/p = 1.
    EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(Rng, FillBytesCoversAllPositions)
{
    Rng rng(19);
    uint8_t buf[37] = {};
    rng.fillBytes(buf, sizeof(buf));
    int nonzero = 0;
    for (uint8_t b : buf)
        nonzero += (b != 0);
    EXPECT_GT(nonzero, 25) << "essentially all bytes should be random";
}

// ------------------------------------------------------------------ stats

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AccumulatorMoments)
{
    Accumulator a;
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(1.0);
    a.sample(2.0);
    a.sample(6.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_DOUBLE_EQ(a.minValue(), 1.0);
    EXPECT_DOUBLE_EQ(a.maxValue(), 6.0);
}

TEST(Stats, HistogramBucketsAndOverflow)
{
    Histogram h(10.0, 5);
    h.sample(0.0);
    h.sample(9.99);
    h.sample(10.0);
    h.sample(49.0);
    h.sample(50.0);   // overflow
    h.sample(1234.0); // overflow
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.totalSamples(), 6u);
}

TEST(Stats, HistogramMergeMatchesUnshardedFeed)
{
    // Split one sample stream across shards; the merged histogram
    // must be indistinguishable from feeding one histogram directly
    // (the sharded-fleet invariant).
    Histogram whole(10.0, 8);
    Histogram shard_a(10.0, 8), shard_b(10.0, 8);
    const double samples[] = {0.0, 5.0, 15.0, 33.3, 79.9,
                              80.0, 500.0, 42.0};
    for (size_t i = 0; i < 8; ++i) {
        whole.sample(samples[i]);
        (i % 2 == 0 ? shard_a : shard_b).sample(samples[i]);
    }
    shard_a.merge(shard_b);
    EXPECT_EQ(shard_a.totalSamples(), whole.totalSamples());
    EXPECT_EQ(shard_a.overflow(), whole.overflow());
    for (size_t i = 0; i < whole.bucketCount(); ++i)
        EXPECT_EQ(shard_a.bucket(i), whole.bucket(i));
    EXPECT_DOUBLE_EQ(shard_a.mean(), whole.mean());
    for (const double p : {0.0, 0.5, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(shard_a.percentile(p),
                         whole.percentile(p));
}

TEST(Stats, HistogramMergeWithEmptyIsIdentity)
{
    Histogram h(1.0, 4), empty(1.0, 4);
    h.sample(2.5);
    h.merge(empty);
    EXPECT_EQ(h.totalSamples(), 1u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.5);
    empty.merge(h);
    EXPECT_EQ(empty.totalSamples(), 1u);
    EXPECT_EQ(empty.bucket(2), 1u);
}

TEST(Stats, HistogramMergeRejectsMismatchedGeometry)
{
    Histogram h(10.0, 5);
    Histogram wrong_width(5.0, 5);
    Histogram wrong_count(10.0, 6);
    EXPECT_DEATH_IF_SUPPORTED(h.merge(wrong_width), "geometry");
    EXPECT_DEATH_IF_SUPPORTED(h.merge(wrong_count), "geometry");
}

TEST(Stats, StatGroupDump)
{
    Counter hits, misses;
    hits += 10;
    misses += 2;
    StatGroup group("l2");
    group.regCounter("hits", &hits);
    group.regCounter("misses", &misses);
    std::ostringstream os;
    group.dump(os);
    EXPECT_NE(os.str().find("l2.hits 10"), std::string::npos);
    EXPECT_NE(os.str().find("l2.misses 2"), std::string::npos);
}

// ---------------------------------------------------------------- strutil

TEST(StrUtil, FormatDouble)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(16.756, 1), "16.8");
}

TEST(StrUtil, FormatPercent)
{
    EXPECT_EQ(formatPercent(0.1676, 2), "16.76%");
    EXPECT_EQ(formatPercent(0.0128, 2), "1.28%");
}

TEST(StrUtil, FormatBytes)
{
    EXPECT_EQ(formatBytes(64 * 1024), "64KB");
    EXPECT_EQ(formatBytes(4ull * 1024 * 1024), "4MB");
    EXPECT_EQ(formatBytes(193), "193B");
    EXPECT_EQ(formatBytes(1536), "1536B") << "non-multiples stay exact";
}

TEST(StrUtil, HexRoundTrip)
{
    const std::vector<uint8_t> bytes = {0x01, 0x23, 0xAB, 0xFF, 0x00};
    const std::string hex = toHex(bytes.data(), bytes.size());
    EXPECT_EQ(hex, "0123abff00");
    EXPECT_EQ(fromHex(hex), bytes);
}

TEST(StrUtil, Split)
{
    const auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
}

// ------------------------------------------------------------------ table

TEST(Table, RendersAlignedColumns)
{
    Table t({"bench", "paper", "measured"});
    t.addRow({"ammp", "23.02", "21.80"});
    t.addRow({"mcf", "34.76", "33.10"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("bench"), std::string::npos);
    EXPECT_NE(out.find("ammp"), std::string::npos);
    EXPECT_NE(out.find("34.76"), std::string::npos);
    // Header separator row present.
    EXPECT_NE(out.find("|---"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}


// --------------------------------------------------------------- flat_map

TEST(FlatMap, BasicInsertFindErase)
{
    FlatMap<uint32_t> map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(0x1000), nullptr);

    map[0x1000] = 7;
    map.insert(0x2000, 9);
    EXPECT_EQ(map.size(), 2u);
    ASSERT_NE(map.find(0x1000), nullptr);
    EXPECT_EQ(*map.find(0x1000), 7u);
    EXPECT_EQ(*map.find(0x2000), 9u);
    EXPECT_TRUE(map.contains(0x2000));
    EXPECT_FALSE(map.contains(0x3000));

    map.insert(0x1000, 11); // overwrite
    EXPECT_EQ(*map.find(0x1000), 11u);
    EXPECT_EQ(map.size(), 2u);

    EXPECT_TRUE(map.erase(0x1000));
    EXPECT_FALSE(map.erase(0x1000));
    EXPECT_EQ(map.find(0x1000), nullptr);
    EXPECT_EQ(map.size(), 1u);

    map.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(0x2000), nullptr);
}

TEST(FlatMap, ZeroKeyAndDefaultConstruction)
{
    // Key 0 is a legitimate line address; operator[] must
    // default-construct on first touch like std::unordered_map.
    FlatMap<uint64_t> map;
    EXPECT_EQ(map[0], 0u);
    map[0] = 42;
    ASSERT_NE(map.find(0), nullptr);
    EXPECT_EQ(*map.find(0), 42u);
    EXPECT_TRUE(map.erase(0));
    EXPECT_EQ(map.find(0), nullptr);
}

TEST(FlatMap, DifferentialChurnAgainstStdUnorderedMap)
{
    // The simulator's tables see heavy insert/erase churn on
    // line-aligned keys. Drive both maps with the same random
    // operation stream and require identical observable behaviour,
    // which exercises growth, collisions, and backward-shift
    // deletion together.
    FlatMap<uint32_t> flat;
    std::unordered_map<uint64_t, uint32_t> ref;
    Rng rng(0xf1a7);

    for (int op = 0; op < 200'000; ++op) {
        // Line-aligned keys from a small space force probe chains.
        const uint64_t key = rng.nextRange(512) * 64;
        switch (rng.nextRange(4)) {
        case 0:
        case 1: {
            const uint32_t value = static_cast<uint32_t>(rng.next64());
            flat.insert(key, value);
            ref[key] = value;
            break;
        }
        case 2: {
            EXPECT_EQ(flat.erase(key), ref.erase(key) == 1);
            break;
        }
        case 3: {
            const uint32_t *it = flat.find(key);
            const auto ref_it = ref.find(key);
            if (ref_it == ref.end()) {
                EXPECT_EQ(it, nullptr) << "key " << key;
            } else {
                ASSERT_NE(it, nullptr) << "key " << key;
                EXPECT_EQ(*it, ref_it->second);
            }
            break;
        }
        }
        EXPECT_EQ(flat.size(), ref.size());
    }

    // Final sweep: every surviving key must agree.
    for (const auto &[key, value] : ref) {
        ASSERT_NE(flat.find(key), nullptr);
        EXPECT_EQ(*flat.find(key), value);
    }
}

TEST(FlatMap, ReserveAvoidsGrowthAndKeepsEntries)
{
    FlatMap<uint32_t> map;
    map.reserve(10'000);
    for (uint64_t i = 0; i < 10'000; ++i)
        map[i * 64] = static_cast<uint32_t>(i);
    EXPECT_EQ(map.size(), 10'000u);
    for (uint64_t i = 0; i < 10'000; ++i) {
        ASSERT_NE(map.find(i * 64), nullptr);
        EXPECT_EQ(*map.find(i * 64), static_cast<uint32_t>(i));
    }
}

TEST(FlatMap, NonTrivialValueType)
{
    // SequenceNumberCache stores std::vector slot tables.
    FlatMap<std::vector<uint32_t>> map;
    map.insert(0x40, std::vector<uint32_t>(4, 5));
    auto &slots = map[0x40];
    ASSERT_EQ(slots.size(), 4u);
    slots[2] = 99;
    EXPECT_EQ((*map.find(0x40))[2], 99u);
    EXPECT_TRUE(map.erase(0x40));
    EXPECT_EQ(map.find(0x40), nullptr);
}

} // namespace
