/**
 * @file
 * Fleet-scale staged-rollout tests: exactness of the lightweight
 * download model against the real transport, ground-truth agreement
 * of the install cost model, canary halt + rollback mechanics,
 * thread-count determinism, and a million-device convergence run.
 */

#include <gtest/gtest.h>

#include <vector>

#include "fleet/device.hh"
#include "fleet/rollout.hh"
#include "fleet/vendor.hh"
#include "ota/transport.hh"

using namespace secproc;
using namespace secproc::fleet;

namespace
{

exp::Runner
serialRunner()
{
    exp::RunnerOptions options;
    options.threads = 1;
    return exp::Runner(options);
}

exp::Runner
threadedRunner(unsigned threads)
{
    exp::RunnerOptions options;
    options.threads = threads;
    return exp::Runner(options);
}

} // namespace

// The lightweight download model claims *exactness*: same RNG draw
// sequence as ota::Transport::send, so the completion cycle equals
// completionCycle() for every link class and seed. Everything the
// fleet predicts sits on this invariant.
TEST(FleetDevice, DownloadModelMatchesTransportExactly)
{
    const uint64_t payload_bytes = 40'000;
    for (const LinkClass link : {LinkClass::Fiber,
                                 LinkClass::Broadband,
                                 LinkClass::Cellular}) {
        for (uint64_t seed = 1; seed <= 8; ++seed) {
            ota::TransportConfig config = linkTransport(link);
            config.seed = mixSeed(0xD0D0, seed);

            const DownloadSim sim =
                simulateDownload(config, payload_bytes, 321);

            ota::Transport transport(config);
            transport.send(std::vector<uint8_t>(payload_bytes),
                           321);
            EXPECT_EQ(sim.completion_cycle,
                      transport.completionCycle())
                << linkClassName(link) << " seed " << seed;
            EXPECT_EQ(sim.chunks_sent, transport.chunksSent());
            EXPECT_EQ(sim.chunks_lost, transport.chunksLost());
        }
    }
}

TEST(FleetDevice, TraitsArePureAndInDistributionRange)
{
    const FleetDistributions dist;
    for (uint64_t id = 0; id < 500; ++id) {
        const DeviceTraits a = deviceTraits(0xABCD, id, dist);
        const DeviceTraits b = deviceTraits(0xABCD, id, dist);
        EXPECT_EQ(a.seed, b.seed);
        EXPECT_EQ(a.hw_variant, b.hw_variant);
        EXPECT_EQ(a.engine_latency, b.engine_latency);
        EXPECT_EQ(a.link, b.link);
        EXPECT_EQ(a.mix, b.mix);
        EXPECT_EQ(a.power_cut_rate, b.power_cut_rate);
        EXPECT_LT(a.hw_variant, dist.variant_weights.size());
        EXPECT_TRUE(a.engine_latency == 50 ||
                    a.engine_latency == 102);
        EXPECT_GE(a.power_cut_rate, 0.0);
        EXPECT_LT(a.power_cut_rate, dist.max_power_cut_rate);
    }
}

TEST(FleetVendor, QuirkGateAndLedger)
{
    VendorConfig config;
    config.image_bytes = 8 << 10;
    VendorService vendor(config);
    EXPECT_TRUE(vendor.offersVariant(0));
    EXPECT_TRUE(vendor.offersVariant(4));
    EXPECT_FALSE(vendor.offersVariant(5)); // past the quirk table
    EXPECT_FALSE(vendor.offersVariant(100));

    const ReleaseInfo &release = vendor.publish(2, 2, 2);
    EXPECT_EQ(release.version, 2u);
    EXPECT_GT(release.framed_bytes, release.image_bytes);
    EXPECT_GT(release.cost(50).total(), 0u);
    // The strong-cipher engine is strictly slower per line.
    EXPECT_GT(release.cost(102).total(),
              release.cost(50).total());

    vendor.appendLedger({LedgerRecord{7, 2, 0,
                                      InstallOutcome::Updated, 1,
                                      12345}});
    ASSERT_EQ(vendor.ledger().size(), 1u);
    EXPECT_EQ(vendor.ledger()[0].device, 7u);

    // CDN dispatch is a closed form over queue position — shard
    // and thread scheduling cannot reorder it.
    EXPECT_EQ(vendor.dispatchCycle(1000, 0, 5), 1005u);
    EXPECT_EQ(vendor.dispatchCycle(1000, 3, 5),
              1005u + 3 * config.cdn_service_cycles);
}

// Acceptance: the embedded full-machine LiveInstall devices must
// agree with the lightweight cost model within the documented
// tolerance, and their installs must functionally activate.
TEST(FleetRollout, GroundTruthWithinDocumentedTolerance)
{
    FleetConfig config;
    config.devices = 2'000;
    config.vendor.image_bytes = 16 << 10;
    const exp::Runner runner = serialRunner();
    FleetSimulator sim(config, RolloutPolicy::canaryStaged(),
                       runner);
    const RolloutResult result = sim.run();

    ASSERT_EQ(result.ground_truth.size(), 3u);
    for (const GroundTruthReport &gt : result.ground_truth) {
        EXPECT_TRUE(gt.functional_ok)
            << "device " << gt.device << " did not activate";
        EXPECT_GT(gt.predicted_cycles, 0u);
        EXPECT_GT(gt.measured_cycles, 0u);
        EXPECT_LE(gt.rel_error, kGroundTruthTolerance)
            << "device " << gt.device << " ("
            << gt.engine_latency << "c, "
            << linkClassName(gt.link) << "): predicted "
            << gt.predicted_cycles << " vs measured "
            << gt.measured_cycles;
        EXPECT_TRUE(gt.within_tolerance);
    }
}

// Delta shipping: devices still on the factory firmware ride the
// small delta stream, so the rollout's downlink total must shrink
// against the everyone-gets-the-full-bundle counterfactual — and the
// embedded ground-truth machines prove the delta cost model against
// a real delta LiveInstall, to the same tolerance as the full path.
TEST(FleetRollout, DeltaWavesShipFewerBytesAndStayGrounded)
{
    FleetConfig config;
    config.devices = 2'000;
    config.vendor.image_bytes = 16 << 10;
    config.ship_deltas = true;
    const exp::Runner runner = serialRunner();
    FleetSimulator sim(config, RolloutPolicy::canaryStaged(),
                       runner);
    const RolloutResult result = sim.run();

    EXPECT_TRUE(result.converged);
    EXPECT_GT(result.delta_installs, 0u);
    EXPECT_LT(result.transport_bytes, result.transport_bytes_full)
        << "the delta stream saved nothing over full bundles";
    for (const WaveStats &wave : result.waves) {
        if (wave.delta_installs == 0)
            continue;
        EXPECT_LT(wave.transport_bytes, wave.transport_bytes_full)
            << "a delta-serving wave must carry fewer bytes";
    }

    ASSERT_EQ(result.ground_truth.size(), 3u);
    bool any_via_delta = false;
    for (const GroundTruthReport &gt : result.ground_truth) {
        EXPECT_TRUE(gt.functional_ok)
            << "device " << gt.device << " did not activate";
        EXPECT_TRUE(gt.within_tolerance)
            << "device " << gt.device << ": predicted "
            << gt.predicted_cycles << " vs measured "
            << gt.measured_cycles;
        any_via_delta |= gt.via_delta;
    }
    EXPECT_TRUE(any_via_delta)
        << "no ground-truth machine exercised the delta path";

    // The flag off reproduces the classic full-bundle rollout: no
    // delta traffic, and the same devices land on the release.
    FleetConfig classic = config;
    classic.ship_deltas = false;
    const RolloutResult full =
        FleetSimulator(classic, RolloutPolicy::canaryStaged(), runner)
            .run();
    EXPECT_EQ(full.delta_installs, 0u);
    EXPECT_EQ(full.transport_bytes, full.transport_bytes_full);
    EXPECT_TRUE(full.converged);
    EXPECT_EQ(full.updated, result.updated);
}

// Acceptance: a fault-heavy release must trip the automatic canary
// halt and the rollback wave must clear every device off the pulled
// release.
TEST(FleetRollout, FaultyReleaseHaltsCanaryAndRollsBack)
{
    const FleetScenario scenario = fleetScenarioFaulty();
    FleetConfig config;
    config.devices = 60'000;
    config.vendor.image_bytes = 16 << 10;
    config.dist = scenario.dist;
    const exp::Runner runner = threadedRunner(4);
    FleetSimulator sim(config, RolloutPolicy::canaryStaged(),
                       runner);
    const RolloutResult result = sim.run(
        scenario.defective_variant, scenario.defect_rate);

    // The canary wave itself must have tripped the halt...
    ASSERT_GE(result.waves.size(), 2u);
    EXPECT_TRUE(result.waves.front().halted_after);
    EXPECT_GE(result.waves.front().failure_rate,
              RolloutPolicy::canaryStaged().failure_threshold);
    EXPECT_EQ(result.halts, 1u);

    // ...the rollout must never have expanded past it...
    EXPECT_EQ(result.waves.size(), 2u);
    const WaveStats &rollback = result.waves.back();
    EXPECT_EQ(rollback.kind, "rollback");
    EXPECT_EQ(result.rollback_waves, 1u);
    // ...and the rollback wave re-targets exactly the devices the
    // pulled release reached.
    EXPECT_EQ(rollback.offered, result.waves.front().offered);
    EXPECT_EQ(rollback.failed, 0u);

    // Nobody is left on the pulled release (version 2), and the
    // rollback counter marched forward (version 3, counter 3 — not
    // a re-offer of version 1).
    EXPECT_EQ(result.final_version_counts.count(2), 0u);
    EXPECT_EQ(result.final_version_counts.at(3),
              rollback.offered);
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(sim.vendor().release(3).rollback_counter, 3u);
    EXPECT_EQ(sim.vendor().release(3).rollback_of, 2u);
    EXPECT_EQ(sim.vendor().release(3).payload_version, 1u);
}

TEST(FleetRollout, BitIdenticalAcrossThreadCountsAndRuns)
{
    const auto rollout = [](unsigned threads) {
        FleetConfig config;
        config.devices = 20'000;
        config.vendor.image_bytes = 16 << 10;
        const exp::Runner runner = threadedRunner(threads);
        FleetSimulator sim(config, RolloutPolicy::canaryStaged(),
                           runner);
        const RolloutResult result = sim.run();
        return std::make_pair(result.toJson().dump(2),
                              sim.vendor().ledger());
    };

    const auto serial = rollout(1);
    const auto threaded = rollout(4);
    const auto repeat = rollout(4);

    // Same seed, any thread count, any run: byte-identical report.
    EXPECT_EQ(serial.first, threaded.first);
    EXPECT_EQ(threaded.first, repeat.first);

    // The install-history ledger is part of the guarantee too.
    ASSERT_EQ(serial.second.size(), threaded.second.size());
    for (size_t i = 0; i < serial.second.size(); ++i) {
        const LedgerRecord &a = serial.second[i];
        const LedgerRecord &b = threaded.second[i];
        EXPECT_EQ(a.device, b.device);
        EXPECT_EQ(a.release_version, b.release_version);
        EXPECT_EQ(a.wave, b.wave);
        EXPECT_EQ(a.outcome, b.outcome);
        EXPECT_EQ(a.power_cut_retries, b.power_cut_retries);
        EXPECT_EQ(a.completed_cycle, b.completed_cycle);
    }
}

// Acceptance: a million-device staged rollout completes on one
// machine through the sharded Runner.
TEST(FleetRollout, MillionDeviceRolloutConverges)
{
    FleetConfig config;
    config.devices = 1'000'000;
    config.vendor.image_bytes = 32 << 10;
    const exp::Runner runner = threadedRunner(4);
    FleetSimulator sim(config, RolloutPolicy::canaryStaged(),
                       runner);
    const RolloutResult result = sim.run();

    EXPECT_EQ(result.devices, 1'000'000u);
    EXPECT_EQ(result.eligible + result.skipped_no_quirk,
              result.devices);
    // ~3% of the population is past the vendor's quirk table.
    EXPECT_GT(result.skipped_no_quirk, 0u);

    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.updated, result.eligible);
    EXPECT_EQ(result.failed_health, 0u);
    EXPECT_EQ(result.halts, 0u);
    // 0.5% canary at x4 growth needs at least 5 waves to cover the
    // fleet.
    EXPECT_GE(result.waves.size(), 5u);
    EXPECT_EQ(result.device_hours.totalSamples(), result.updated);
    EXPECT_GT(result.device_hours.percentile(0.99), 0.0);
    EXPECT_EQ(
        result.final_version_counts.at(2) +
            result.final_version_counts.at(1),
        result.devices);
    EXPECT_EQ(sim.vendor().ledger().size(), result.eligible);
}
