/**
 * @file
 * Multi-programming tests: compartment-isolated tasks sharing one
 * secure processor, context-switch policies for the SNC (paper
 * Section 4.3), and scheduler accounting.
 */

#include <gtest/gtest.h>

#include "secure/engines.hh"
#include "sim/multitask.hh"
#include "sim/profiles.hh"
#include "sim/system.hh"

namespace
{

using namespace secproc;
using namespace secproc::sim;

/** A compact two-region profile with the given VA offset. */
WorkloadProfile
smallProfile(uint64_t seed, uint64_t va_offset)
{
    WorkloadProfile profile;
    profile.name = "task";
    profile.mem_frac = 0.4;
    profile.code_footprint = 4 * 1024;
    profile.rng_seed = seed;
    profile.va_offset = va_offset;
    DataRegion hot;
    hot.behavior = RegionBehavior::Hot;
    hot.footprint = 64 * 1024;
    hot.weight = 0.6;
    hot.store_frac = 0.4;
    DataRegion zipf;
    zipf.behavior = RegionBehavior::Zipf;
    zipf.footprint = 2 * 1024 * 1024;
    zipf.weight = 0.4;
    zipf.store_frac = 0.4;
    profile.regions = {hot, zipf};
    return profile;
}

constexpr uint64_t kTaskStride = 1ull << 40;

TEST(Workload, VaOffsetShiftsTextAndRegions)
{
    SyntheticWorkload plain(smallProfile(1, 0), 128);
    SyntheticWorkload moved(smallProfile(1, kTaskStride), 128);
    EXPECT_EQ(moved.textBase(), plain.textBase() + kTaskStride);
    for (size_t i = 0; i < plain.profile().regions.size(); ++i) {
        EXPECT_EQ(moved.profile().regions[i].base,
                  plain.profile().regions[i].base + kTaskStride);
    }
}

TEST(Workload, VaOffsetPreservesStreamShape)
{
    // The same profile shifted by an offset must generate the same
    // op sequence, just with shifted addresses.
    SyntheticWorkload plain(smallProfile(2, 0), 128);
    SyntheticWorkload moved(smallProfile(2, kTaskStride), 128);
    for (int i = 0; i < 5000; ++i) {
        const TraceOp &a = plain.next();
        const TraceOp &b = moved.next();
        ASSERT_EQ(a.cls, b.cls);
        if (a.addr != 0)
            ASSERT_EQ(b.addr, a.addr + kTaskStride);
        if (a.fetch_line != 0)
            ASSERT_EQ(b.fetch_line, a.fetch_line + kTaskStride);
    }
}

TEST(MultiTask, SingleTaskVectorMatchesLegacyConstructor)
{
    SyntheticWorkload w1(smallProfile(3, 0), 128);
    System legacy(paperConfig(secure::SecurityModel::OtpSnc), w1);
    legacy.run(100'000);

    SyntheticWorkload w2(smallProfile(3, 0), 128);
    System vectored(paperConfig(secure::SecurityModel::OtpSnc),
                    std::vector<TaskSpec>{{&w2, 1}});
    vectored.run(100'000);

    EXPECT_EQ(legacy.core().cycles(), vectored.core().cycles());
}

TEST(MultiTask, RoundRobinSplitsInstructionsFairly)
{
    SyntheticWorkload a(smallProfile(4, 0), 128);
    SyntheticWorkload b(smallProfile(5, kTaskStride), 128);
    MultiTaskConfig mt;
    mt.quantum = 50'000;
    MultiTaskSystem multi(paperConfig(secure::SecurityModel::OtpSnc),
                          {{&a, 1}, {&b, 2}}, mt);
    multi.run(400'000);

    EXPECT_EQ(multi.totalInstructions(), 400'000u);
    EXPECT_EQ(multi.taskStats()[0].instructions, 200'000u);
    EXPECT_EQ(multi.taskStats()[1].instructions, 200'000u);
    EXPECT_EQ(multi.system().contextSwitches(), 7u);
    EXPECT_GT(multi.taskStats()[0].active_cycles, 0u);
    EXPECT_GT(multi.taskStats()[1].active_cycles, 0u);
}

TEST(MultiTask, FlushPolicySpillsSncEntries)
{
    SyntheticWorkload a(smallProfile(6, 0), 128);
    SyntheticWorkload b(smallProfile(7, kTaskStride), 128);
    MultiTaskConfig mt;
    mt.quantum = 50'000;
    mt.policy = SncSwitchPolicy::Flush;
    MultiTaskSystem multi(paperConfig(secure::SecurityModel::OtpSnc),
                          {{&a, 1}, {&b, 2}}, mt);
    multi.run(300'000);
    EXPECT_GT(multi.system().switchFlushSpills(), 0u);
}

TEST(MultiTask, TagPolicyNeverSpillsOnSwitch)
{
    SyntheticWorkload a(smallProfile(6, 0), 128);
    SyntheticWorkload b(smallProfile(7, kTaskStride), 128);
    MultiTaskConfig mt;
    mt.quantum = 50'000;
    mt.policy = SncSwitchPolicy::Tag;
    MultiTaskSystem multi(paperConfig(secure::SecurityModel::OtpSnc),
                          {{&a, 1}, {&b, 2}}, mt);
    multi.run(300'000);
    EXPECT_EQ(multi.system().switchFlushSpills(), 0u);
}

TEST(MultiTask, FlushCostsCyclesVersusTag)
{
    auto run_policy = [](SncSwitchPolicy policy) {
        SyntheticWorkload a(smallProfile(8, 0), 128);
        SyntheticWorkload b(smallProfile(9, kTaskStride), 128);
        MultiTaskConfig mt;
        mt.quantum = 25'000;
        mt.policy = policy;
        MultiTaskSystem multi(
            paperConfig(secure::SecurityModel::OtpSnc),
            {{&a, 1}, {&b, 2}}, mt);
        multi.run(500'000);
        return multi.system().core().cycles();
    };
    const uint64_t tag = run_policy(SncSwitchPolicy::Tag);
    const uint64_t flush = run_policy(SncSwitchPolicy::Flush);
    EXPECT_GT(flush, tag)
        << "flushing the SNC every switch must cost cycles";
}

TEST(MultiTask, CompartmentsUseDistinctKeys)
{
    // The same (line, seqnum) plan encrypted by two compartments must
    // produce different ciphertext (per-compartment keys), otherwise
    // one vendor's key would decrypt another vendor's software.
    SystemConfig config = paperConfig(secure::SecurityModel::OtpSnc);
    config.functional = true;
    SyntheticWorkload a(smallProfile(10, 0), 128);
    SyntheticWorkload b(smallProfile(10, kTaskStride), 128);
    System system(config, {{&a, 1}, {&b, 2}});

    secure::EvictPlan plan;
    plan.line_va = 0x1000;
    plan.seqnum = 1;
    plan.state = secure::LineCipherState::Otp;
    std::vector<uint8_t> one(128, 0xAB);
    std::vector<uint8_t> two(128, 0xAB);
    system.engine().setCompartment(1);
    system.engine().applyEvict(plan, one);
    system.engine().setCompartment(2);
    system.engine().applyEvict(plan, two);
    EXPECT_NE(one, two)
        << "identical plaintext + plan, different compartments: "
           "ciphertext must differ";
}

TEST(MultiTask, SwitchToTaskValidatesIndex)
{
    SyntheticWorkload a(smallProfile(11, 0), 128);
    System system(paperConfig(secure::SecurityModel::OtpSnc),
                  std::vector<TaskSpec>{{&a, 1}});
    EXPECT_DEATH_IF_SUPPORTED(
        system.switchToTask(3, SncSwitchPolicy::Tag), "no task");
}

TEST(MultiTask, EmptyTaskSetIsFatal)
{
    EXPECT_DEATH_IF_SUPPORTED(
        {
            System system(paperConfig(secure::SecurityModel::OtpSnc),
                          std::vector<TaskSpec>{});
            (void)system;
        },
        "at least one task");
}

TEST(MultiTask, BaselineAndXomModelsRunMultiprogrammed)
{
    for (const auto model : {secure::SecurityModel::Baseline,
                             secure::SecurityModel::Xom}) {
        SyntheticWorkload a(smallProfile(12, 0), 128);
        SyntheticWorkload b(smallProfile(13, kTaskStride), 128);
        MultiTaskConfig mt;
        mt.quantum = 50'000;
        MultiTaskSystem multi(paperConfig(model), {{&a, 1}, {&b, 2}},
                              mt);
        multi.run(200'000);
        EXPECT_GT(multi.system().core().cycles(), 0u);
    }
}

} // namespace
