/**
 * @file
 * Property-based sweeps over the whole design space.
 *
 * Where the unit tests pin single behaviours, these tests assert the
 * *relations* the paper's argument rests on, across parameter grids:
 * engine fill-cost identities over (memory, crypto) latency pairs,
 * the machine ordering baseline <= SNC-LRU <= SNC-NoRepl <= XOM on
 * every benchmark profile, monotonicity in SNC capacity and crypto
 * latency, and model-based equivalence of the cache and SNC against
 * tiny reference implementations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <tuple>

#include "crypto/latency.hh"
#include "mem/cache.hh"
#include "mem/memory_channel.hh"
#include "secure/engines.hh"
#include "sim/profiles.hh"
#include "sim/system.hh"
#include "util/random.hh"

namespace
{

using namespace secproc;
using namespace secproc::sim;
using secproc::util::Rng;

// ================================================ engine cost identities

/** (memory latency, crypto latency). */
using LatencyPair = std::tuple<uint32_t, uint32_t>;

class EngineCosts : public ::testing::TestWithParam<LatencyPair>
{
  protected:
    EngineCosts()
    {
        std::vector<uint8_t> key(8, 0x42);
        keys_.install(1, secure::CipherKind::Des, key);
    }

    /** A fresh channel with pure latencies (no bus occupancy). */
    mem::MemoryChannel
    makeChannel() const
    {
        mem::ChannelConfig config;
        config.access_latency = std::get<0>(GetParam());
        config.transfer_cycles = 0;
        config.small_transfer_cycles = 0;
        return mem::MemoryChannel(config);
    }

    secure::ProtectionConfig
    makeConfig(secure::SecurityModel model) const
    {
        secure::ProtectionConfig config;
        config.model = model;
        config.crypto.latency = std::get<1>(GetParam());
        config.crypto.initiation_interval = 1;
        config.snc.l2_line_size = 128;
        config.line_size = 128;
        return config;
    }

    secure::KeyTable keys_;
};

TEST_P(EngineCosts, XomFillIsMemoryPlusCrypto)
{
    const auto [m, c] = GetParam();
    auto channel = makeChannel();
    secure::XomEngine engine(makeConfig(secure::SecurityModel::Xom),
                             channel, keys_);
    engine.planEvict(0x1000, mem::RegionKind::Protected); // Direct now
    const auto fill = engine.lineFill(0x1000, /*cycle=*/100'000, false,
                                      mem::RegionKind::Protected);
    EXPECT_EQ(fill.ready_cycle, 100'000 + m + c);
}

TEST_P(EngineCosts, OtpFastPathIsMaxPlusOne)
{
    const auto [m, c] = GetParam();
    auto channel = makeChannel();
    secure::OtpEngine engine(makeConfig(secure::SecurityModel::OtpSnc),
                             channel, keys_);
    engine.planEvict(0x1000, mem::RegionKind::Protected); // SNC entry
    const auto fill = engine.lineFill(0x1000, 100'000, false,
                                      mem::RegionKind::Protected);
    EXPECT_TRUE(fill.fast_path);
    EXPECT_EQ(fill.ready_cycle, 100'000 + std::max(m, c) + 1);
}

TEST_P(EngineCosts, InstructionFetchAlwaysFast)
{
    const auto [m, c] = GetParam();
    auto channel = makeChannel();
    secure::OtpEngine engine(makeConfig(secure::SecurityModel::OtpSnc),
                             channel, keys_);
    const auto fill = engine.lineFill(0x4000, 100'000, /*ifetch=*/true,
                                      mem::RegionKind::Protected);
    EXPECT_TRUE(fill.fast_path);
    EXPECT_EQ(fill.ready_cycle, 100'000 + std::max(m, c) + 1);
}

TEST_P(EngineCosts, OtpQueryMissSerialCost)
{
    const auto [m, c] = GetParam();
    auto channel = makeChannel();
    secure::OtpEngine engine(makeConfig(secure::SecurityModel::OtpSnc),
                             channel, keys_);
    engine.planEvict(0x1000, mem::RegionKind::Protected);
    engine.flushSnc(0); // seqnum now only in the in-memory table
    const auto fill = engine.lineFill(0x1000, 100'000, false,
                                      mem::RegionKind::Protected);
    EXPECT_TRUE(fill.snc_query_miss);
    // Algorithm 1 (serial): seqnum fetch (m) + seqnum decrypt (c),
    // then pad generation (another c) overlaps the line fetch (m):
    // ready = max(2m + c, m + 2c) + 1.
    const uint64_t expected =
        std::max(2 * m + c, m + 2 * c) + 1;
    EXPECT_EQ(fill.ready_cycle, 100'000 + expected);
}

TEST_P(EngineCosts, OtpQueryMissParallelFetchIsNoSlower)
{
    const auto [m, c] = GetParam();
    auto serial_channel = makeChannel();
    auto config = makeConfig(secure::SecurityModel::OtpSnc);
    secure::OtpEngine serial(config, serial_channel, keys_);
    serial.planEvict(0x1000, mem::RegionKind::Protected);
    serial.flushSnc(0);
    const auto slow = serial.lineFill(0x1000, 100'000, false,
                                      mem::RegionKind::Protected);

    auto parallel_channel = makeChannel();
    config.parallel_seqnum_fetch = true;
    secure::OtpEngine parallel(config, parallel_channel, keys_);
    parallel.planEvict(0x1000, mem::RegionKind::Protected);
    parallel.flushSnc(0);
    const auto fast = parallel.lineFill(0x1000, 100'000, false,
                                        mem::RegionKind::Protected);
    EXPECT_LE(fast.ready_cycle, slow.ready_cycle);
    (void)m;
    (void)c;
}

TEST_P(EngineCosts, BaselineFillIsMemoryOnly)
{
    const auto [m, c] = GetParam();
    auto channel = makeChannel();
    secure::BaselineEngine engine(
        makeConfig(secure::SecurityModel::Baseline), channel, keys_);
    const auto fill = engine.lineFill(0x1000, 100'000, false,
                                      mem::RegionKind::Protected);
    EXPECT_EQ(fill.ready_cycle, 100'000 + m);
    (void)c;
}

INSTANTIATE_TEST_SUITE_P(
    LatencyGrid, EngineCosts,
    ::testing::Combine(::testing::Values(50u, 100u, 200u),
                       ::testing::Values(25u, 50u, 102u, 200u)),
    [](const auto &info) {
        return "mem" + std::to_string(std::get<0>(info.param)) +
               "_crypto" + std::to_string(std::get<1>(info.param));
    });

// ============================================== whole-machine orderings

class MachineOrdering : public ::testing::TestWithParam<std::string>
{
  protected:
    static uint64_t
    cyclesFor(const std::string &bench, const SystemConfig &config)
    {
        SyntheticWorkload workload(benchmarkProfile(bench),
                                   config.l2.line_size);
        System system(config, workload);
        system.run(300'000);
        return system.core().cycles();
    }
};

TEST_P(MachineOrdering, BaselineLruNoreplXom)
{
    const std::string bench = GetParam();
    const uint64_t base =
        cyclesFor(bench, paperConfig(secure::SecurityModel::Baseline));
    auto lru_config = paperConfig(secure::SecurityModel::OtpSnc);
    const uint64_t lru = cyclesFor(bench, lru_config);
    auto norepl_config = paperConfig(secure::SecurityModel::OtpSnc);
    norepl_config.protection.snc.allow_replacement = false;
    const uint64_t norepl = cyclesFor(bench, norepl_config);
    const uint64_t xom =
        cyclesFor(bench, paperConfig(secure::SecurityModel::Xom));

    // The paper's Figure 5 ordering, with a 1% slack for runs where
    // two machines are effectively tied.
    EXPECT_LE(base, lru);
    EXPECT_LE(lru, norepl + norepl / 100);
    EXPECT_LE(norepl, xom + xom / 100);
}

TEST_P(MachineOrdering, SlowdownShrinksWithSncCapacity)
{
    const std::string bench = GetParam();
    const uint64_t base =
        cyclesFor(bench, paperConfig(secure::SecurityModel::Baseline));
    uint64_t previous = ~0ull;
    for (const uint64_t kb : {32ull, 64ull, 128ull}) {
        auto config = paperConfig(secure::SecurityModel::OtpSnc);
        config.protection.snc.capacity_bytes = kb * 1024;
        const uint64_t cycles = cyclesFor(bench, config);
        EXPECT_GE(base, 1u);
        EXPECT_LE(cycles, previous + previous / 100)
            << bench << " at " << kb << "KB";
        previous = cycles;
    }
}

TEST_P(MachineOrdering, OtpInsensitiveToCryptoLatencyXomIsNot)
{
    const std::string bench = GetParam();
    const uint64_t base =
        cyclesFor(bench, paperConfig(secure::SecurityModel::Baseline));

    auto xom50 = paperConfig(secure::SecurityModel::Xom);
    auto xom102 = paperConfig(secure::SecurityModel::Xom);
    xom102.protection.crypto.latency =
        crypto::kStrongCipherLatency;
    const uint64_t x50 = cyclesFor(bench, xom50);
    const uint64_t x102 = cyclesFor(bench, xom102);
    EXPECT_GE(x102, x50) << "longer crypto cannot speed XOM up";

    auto otp50 = paperConfig(secure::SecurityModel::OtpSnc);
    auto otp102 = paperConfig(secure::SecurityModel::OtpSnc);
    otp102.protection.crypto.latency =
        crypto::kStrongCipherLatency;
    const uint64_t o50 = cyclesFor(bench, otp50);
    const uint64_t o102 = cyclesFor(bench, otp102);

    // Figure 10's claim: the OTP fast path is max(mem, crypto) + 1,
    // so moving crypto from 50 to 102 (vs 100-cycle memory) shifts
    // OTP by at most a few points while XOM pays the full delta on
    // every fill. Slowdown deltas, in percent of baseline:
    const double otp_delta = 100.0 *
        (static_cast<double>(o102) - static_cast<double>(o50)) /
        static_cast<double>(base);
    const double xom_delta = 100.0 *
        (static_cast<double>(x102) - static_cast<double>(x50)) /
        static_cast<double>(base);
    EXPECT_LE(otp_delta, 5.0) << bench;
    if (xom_delta > 2.0) {
        EXPECT_GT(xom_delta, otp_delta)
            << "memory-bound " << bench
            << ": XOM must suffer more from slower crypto";
    }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, MachineOrdering,
                         ::testing::ValuesIn(benchmarkNames()),
                         [](const auto &info) { return info.param; });

// ======================================== cache vs reference LRU model

struct CacheGeometry
{
    uint64_t size_bytes;
    uint32_t assoc; // 0 = fully associative
    uint32_t line_size;
};

class CacheModelEquivalence
    : public ::testing::TestWithParam<CacheGeometry>
{};

/** Minimal reference: per-set LRU lists with linear search. */
class ReferenceCache
{
  public:
    explicit ReferenceCache(const CacheGeometry &geometry)
        : geometry_(geometry)
    {
        const uint64_t lines = geometry.size_bytes / geometry.line_size;
        ways_ = geometry.assoc == 0 ? lines : geometry.assoc;
        sets_.resize(lines / ways_);
    }

    bool
    access(uint64_t addr)
    {
        auto &set = setFor(addr);
        const uint64_t line = addr / geometry_.line_size;
        const auto it = std::find(set.begin(), set.end(), line);
        if (it == set.end())
            return false;
        set.erase(it);
        set.push_front(line);
        return true;
    }

    /** @return displaced line number, or ~0 if none. */
    uint64_t
    fill(uint64_t addr)
    {
        auto &set = setFor(addr);
        const uint64_t line = addr / geometry_.line_size;
        const auto it = std::find(set.begin(), set.end(), line);
        if (it != set.end()) {
            set.erase(it);
            set.push_front(line);
            return ~0ull;
        }
        uint64_t victim = ~0ull;
        if (set.size() == ways_) {
            victim = set.back();
            set.pop_back();
        }
        set.push_front(line);
        return victim;
    }

  private:
    std::list<uint64_t> &
    setFor(uint64_t addr)
    {
        const uint64_t line = addr / geometry_.line_size;
        return sets_[line % sets_.size()];
    }

    CacheGeometry geometry_;
    uint64_t ways_;
    std::vector<std::list<uint64_t>> sets_;
};

TEST_P(CacheModelEquivalence, RandomStreamMatchesReference)
{
    const CacheGeometry geometry = GetParam();
    mem::CacheConfig config;
    config.size_bytes = geometry.size_bytes;
    config.assoc = geometry.assoc;
    config.line_size = geometry.line_size;
    config.policy = mem::ReplacementPolicy::Lru;
    mem::Cache cache(config);
    ReferenceCache reference(geometry);

    Rng rng(geometry.size_bytes ^ geometry.line_size);
    const uint64_t span = geometry.size_bytes * 4;
    for (int i = 0; i < 20'000; ++i) {
        const uint64_t addr = rng.nextRange(span);
        const bool hit = cache.access(addr, /*write=*/false);
        const bool ref_hit = reference.access(addr);
        ASSERT_EQ(hit, ref_hit) << "op " << i << " addr " << addr;
        if (!hit) {
            const auto victim = cache.fill(addr, false, 0);
            const uint64_t ref_victim = reference.fill(addr);
            ASSERT_TRUE(victim.has_value());
            if (ref_victim == ~0ull) {
                ASSERT_FALSE(victim->valid) << "op " << i;
            } else {
                ASSERT_TRUE(victim->valid) << "op " << i;
                ASSERT_EQ(victim->line_addr / geometry.line_size,
                          ref_victim)
                    << "op " << i;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheModelEquivalence,
    ::testing::Values(CacheGeometry{1024, 1, 64},
                      CacheGeometry{4096, 4, 64},
                      CacheGeometry{8192, 0, 128},
                      CacheGeometry{2048, 2, 32},
                      CacheGeometry{64 * 1024, 32, 128}),
    [](const auto &info) {
        return std::to_string(info.param.size_bytes) + "B_" +
               std::to_string(info.param.assoc) + "w_" +
               std::to_string(info.param.line_size) + "l";
    });

// ===================================== workload generator properties

class WorkloadProperties : public ::testing::TestWithParam<std::string>
{};

TEST_P(WorkloadProperties, DeterministicAcrossInstances)
{
    SyntheticWorkload a(benchmarkProfile(GetParam()), 128);
    SyntheticWorkload b(benchmarkProfile(GetParam()), 128);
    for (int i = 0; i < 20'000; ++i) {
        const TraceOp &x = a.next();
        const TraceOp &y = b.next();
        ASSERT_EQ(x.cls, y.cls);
        ASSERT_EQ(x.addr, y.addr);
        ASSERT_EQ(x.fetch_line, y.fetch_line);
        ASSERT_EQ(x.dep1, y.dep1);
        ASSERT_EQ(x.mispredict, y.mispredict);
    }
}

TEST_P(WorkloadProperties, ResetReplaysTheSameStream)
{
    SyntheticWorkload workload(benchmarkProfile(GetParam()), 128);
    std::vector<uint64_t> first;
    for (int i = 0; i < 5'000; ++i)
        first.push_back(workload.next().addr);
    workload.reset();
    for (int i = 0; i < 5'000; ++i)
        ASSERT_EQ(workload.next().addr, first[i]) << "op " << i;
}

TEST_P(WorkloadProperties, MemFractionApproximatelyRespected)
{
    SyntheticWorkload workload(benchmarkProfile(GetParam()), 128);
    const double target = workload.profile().mem_frac;
    uint64_t mem = 0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i) {
        const OpClass cls = workload.next().cls;
        mem += cls == OpClass::Load || cls == OpClass::Store;
    }
    const double measured = static_cast<double>(mem) / n;
    EXPECT_NEAR(measured, target, 0.05) << GetParam();
}

TEST_P(WorkloadProperties, AddressesStayInsideDeclaredRegions)
{
    SyntheticWorkload workload(benchmarkProfile(GetParam()), 128);
    const auto &regions = workload.profile().regions;
    for (int i = 0; i < 50'000; ++i) {
        const TraceOp &op = workload.next();
        if (op.cls != OpClass::Load && op.cls != OpClass::Store)
            continue;
        bool inside = false;
        for (const DataRegion &region : regions) {
            uint64_t extent = region.footprint;
            if (region.behavior == RegionBehavior::ConflictStream) {
                extent = std::max(extent, region.conflict_lines *
                                              region.conflict_stride);
            }
            if (op.addr >= region.base &&
                op.addr < region.base + extent) {
                inside = true;
                break;
            }
        }
        ASSERT_TRUE(inside)
            << GetParam() << " op " << i << " addr " << op.addr;
    }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadProperties,
                         ::testing::ValuesIn(benchmarkNames()),
                         [](const auto &info) { return info.param; });

} // namespace
