/**
 * @file
 * End-to-end integration tests: the full system in *functional*
 * mode, where real bytes move through real crypto between the
 * on-chip plaintext world and the ciphertext DRAM image, while the
 * timing model runs alongside. Verifies the two planes never
 * diverge and that the paper's security properties hold for a
 * complete running machine, not just isolated components.
 */

#include <gtest/gtest.h>

#include "crypto/block_cipher.hh"
#include "sim/profiles.hh"
#include "sim/system.hh"

namespace
{

using namespace secproc;
using namespace secproc::sim;

/** A small functional-friendly workload (compact footprints). */
WorkloadProfile
tinyProfile(uint64_t seed)
{
    WorkloadProfile profile;
    profile.name = "tiny";
    profile.mem_frac = 0.4;
    profile.code_footprint = 4 * 1024;
    profile.rng_seed = seed;
    DataRegion hot;
    hot.behavior = RegionBehavior::Hot;
    hot.footprint = 64 * 1024;
    hot.weight = 0.7;
    hot.store_frac = 0.4;
    DataRegion stream;
    stream.behavior = RegionBehavior::Stream;
    stream.footprint = 512 * 1024;
    stream.weight = 0.3;
    stream.store_frac = 0.3;
    stream.stride = 64;
    profile.regions = {hot, stream};
    return profile;
}

SystemConfig
functionalConfig(secure::SecurityModel model,
                 secure::CipherKind cipher = secure::CipherKind::Des)
{
    SystemConfig config = paperConfig(model);
    config.functional = true;
    config.cipher = cipher;
    return config;
}

TEST(FunctionalSystem, RunsWithRealCrypto)
{
    for (const secure::SecurityModel model :
         {secure::SecurityModel::Baseline, secure::SecurityModel::Xom,
          secure::SecurityModel::OtpSnc}) {
        SyntheticWorkload workload(tinyProfile(1), 128);
        System system(functionalConfig(model), workload);
        system.run(40000);
        EXPECT_GT(system.core().cycles(), 0u)
            << secure::securityModelName(model);
    }
}

TEST(FunctionalSystem, MemoryImageIsCiphertextUnderOtp)
{
    SyntheticWorkload workload(tinyProfile(2), 128);
    System system(functionalConfig(secure::SecurityModel::OtpSnc),
                  workload);
    system.run(60000);

    // Scan the DRAM image of the (pre-initialized, all-zero content)
    // stream region: under OTP the ciphertext of zero-filled lines
    // must show no repeated 8-byte blocks.
    const DataRegion &stream = workload.profile().regions[1];
    uint64_t repeats = 0;
    for (uint64_t off = 0; off < 64 * 1024; off += 128) {
        const uint64_t pa =
            system.virtualMemory().translate(1, stream.base + off);
        const auto line = system.mainMemory().readLine(pa, 128);
        repeats +=
            crypto::countRepeatedBlocks(line.data(), line.size(), 8);
    }
    EXPECT_EQ(repeats, 0u)
        << "one-time pads must de-correlate identical plaintext";
}

TEST(FunctionalSystem, MemoryImageLeaksPatternsUnderXom)
{
    SyntheticWorkload workload(tinyProfile(3), 128);
    System system(functionalConfig(secure::SecurityModel::Xom),
                  workload);
    system.run(60000);

    // The same scan under XOM: zero-filled lines encrypt to 16
    // identical ECB blocks each (paper Section 3.4's leak).
    const DataRegion &stream = workload.profile().regions[1];
    uint64_t repeats = 0;
    for (uint64_t off = 0; off < 64 * 1024; off += 128) {
        const uint64_t pa =
            system.virtualMemory().translate(1, stream.base + off);
        const auto line = system.mainMemory().readLine(pa, 128);
        repeats +=
            crypto::countRepeatedBlocks(line.data(), line.size(), 8);
    }
    EXPECT_GT(repeats, 1000u);
}

TEST(FunctionalSystem, TimingMatchesTimingOnlyRun)
{
    // Functional byte movement must not perturb timing: the same
    // workload under functional and timing-only configuration gives
    // identical cycle counts.
    SyntheticWorkload functional_workload(tinyProfile(4), 128);
    auto functional = functionalConfig(secure::SecurityModel::OtpSnc);
    System functional_system(functional, functional_workload);
    functional_system.run(50000);

    SyntheticWorkload timing_workload(tinyProfile(4), 128);
    auto timing = functional;
    timing.functional = false;
    System timing_system(timing, timing_workload);
    timing_system.run(50000);

    EXPECT_EQ(functional_system.core().cycles(),
              timing_system.core().cycles());
}

TEST(FunctionalSystem, AesCipherWorksEndToEnd)
{
    SyntheticWorkload workload(tinyProfile(5), 128);
    System system(functionalConfig(secure::SecurityModel::OtpSnc,
                                   secure::CipherKind::Aes128),
                  workload);
    system.run(30000);
    EXPECT_GT(system.core().cycles(), 0u);
}

TEST(FunctionalSystem, TamperingChangesDecodedData)
{
    // Corrupt one ciphertext byte in DRAM mid-run; the system keeps
    // running (no integrity engine configured) but the image no
    // longer decodes to what was stored — privacy without integrity,
    // exactly the paper's scope.
    SyntheticWorkload workload(tinyProfile(6), 128);
    System system(functionalConfig(secure::SecurityModel::OtpSnc),
                  workload);
    system.run(30000);

    const DataRegion &hot = workload.profile().regions[0];
    const uint64_t pa = system.virtualMemory().translate(1, hot.base);
    const auto before = system.mainMemory().readLine(pa, 128);
    system.mainMemory().corruptByte(pa + 7, 0xFF);
    const auto after = system.mainMemory().readLine(pa, 128);
    EXPECT_NE(before, after);
    system.run(30000); // must not crash
}

TEST(FunctionalSystem, SequenceNumbersAdvanceInDram)
{
    // Re-encrypted writebacks leave fresh ciphertext in DRAM —
    // observed on the real memory image of the full system. A single
    // fixed line may stay L2-resident for the whole window, so scan
    // every data line and require that a healthy fraction of the
    // stream region (which cycles through the 256KB L2) changed.
    SyntheticWorkload workload(tinyProfile(7), 128);
    System system(functionalConfig(secure::SecurityModel::OtpSnc),
                  workload);

    auto snapshot = [&] {
        std::vector<std::vector<uint8_t>> lines;
        for (const DataRegion &region : workload.profile().regions) {
            for (uint64_t off = 0; off < region.footprint; off += 128) {
                const uint64_t pa = system.virtualMemory().translate(
                    1, region.base + off);
                lines.push_back(system.mainMemory().readLine(pa, 128));
            }
        }
        return lines;
    };

    const auto first = snapshot();
    system.run(200000); // several passes over the stream region
    const auto second = snapshot();

    ASSERT_EQ(first.size(), second.size());
    uint64_t changed = 0;
    for (size_t i = 0; i < first.size(); ++i)
        changed += first[i] != second[i];
    EXPECT_GT(changed, 100u)
        << "fresh sequence numbers must refresh DRAM ciphertext";
}

TEST(FunctionalSystem, DeterministicImage)
{
    // The entire functional machine is deterministic: two identical
    // runs produce byte-identical DRAM images.
    auto run_hash = [] {
        SyntheticWorkload workload(tinyProfile(8), 128);
        System system(functionalConfig(secure::SecurityModel::OtpSnc),
                      workload);
        system.run(50000);
        const DataRegion &hot = workload.profile().regions[0];
        uint64_t hash = 1469598103934665603ull;
        for (uint64_t off = 0; off < hot.footprint; off += 128) {
            const uint64_t pa =
                system.virtualMemory().translate(1, hot.base + off);
            const auto line = system.mainMemory().readLine(pa, 128);
            for (uint8_t b : line)
                hash = (hash ^ b) * 1099511628211ull;
        }
        return hash;
    };
    EXPECT_EQ(run_hash(), run_hash());
}

} // namespace
