/**
 * @file
 * Sectored Sequence Number Cache tests: one directory tag covering
 * several consecutive L2 lines' sequence numbers (tag-area saving +
 * spatial prefetch), including the engine-level cofetch behaviour.
 */

#include <gtest/gtest.h>

#include "mem/memory_channel.hh"
#include "secure/engines.hh"
#include "secure/snc.hh"

namespace
{

using namespace secproc;
using namespace secproc::secure;

SncConfig
sectoredConfig(uint32_t sector_lines, uint64_t capacity = 4 * 1024)
{
    SncConfig config;
    config.capacity_bytes = capacity;
    config.bytes_per_entry = 2;
    config.assoc = 0; // fully associative
    config.allow_replacement = true;
    config.l2_line_size = 128;
    config.sector_lines = sector_lines;
    return config;
}

TEST(SncSector, GeometryAccounting)
{
    const SncConfig config = sectoredConfig(4);
    EXPECT_EQ(config.entries(), 2048u);
    EXPECT_EQ(config.sectors(), 512u);
    EXPECT_EQ(config.sectorSpan(), 512u);
}

TEST(SncSector, EntriesMustDivideIntoSectors)
{
    SncConfig config = sectoredConfig(3); // 2048 % 3 != 0
    EXPECT_DEATH_IF_SUPPORTED(
        {
            SequenceNumberCache snc(config);
            (void)snc;
        },
        "multiple of the sector size");
}

TEST(SncSector, NeighbourSlotIsEmptyAfterSingleInstall)
{
    SequenceNumberCache snc(sectoredConfig(4));
    const auto install = snc.install(0x1000, 7);
    EXPECT_TRUE(install.installed);
    EXPECT_EQ(snc.query(0x1000), std::optional<uint32_t>{7});
    // Same sector, different line: tag present, slot empty -> miss.
    EXPECT_FALSE(snc.query(0x1080).has_value());
    EXPECT_FALSE(snc.contains(0x1080));
    EXPECT_EQ(snc.occupancy(), 1u);
    EXPECT_EQ(snc.sectorOccupancy(), 1u);
}

TEST(SncSector, InstallReportsCofetchedNeighbours)
{
    SequenceNumberCache snc(sectoredConfig(4));
    const auto install = snc.install(0x1080, 9);
    // Sector base 0x1000, span 0x200: neighbours are the other three.
    EXPECT_EQ(install.cofetched.size(), 3u);
    for (const uint64_t line : {0x1000ull, 0x1100ull, 0x1180ull}) {
        EXPECT_NE(std::find(install.cofetched.begin(),
                            install.cofetched.end(), line),
                  install.cofetched.end());
    }
}

TEST(SncSector, SetEntryPopulatesResidentSector)
{
    SequenceNumberCache snc(sectoredConfig(4));
    snc.install(0x1000, 7);
    EXPECT_TRUE(snc.setEntry(0x1080, 11));
    EXPECT_EQ(snc.query(0x1080), std::optional<uint32_t>{11});
    EXPECT_EQ(snc.occupancy(), 2u);
    EXPECT_EQ(snc.sectorOccupancy(), 1u);
    // Non-resident sector: refused.
    EXPECT_FALSE(snc.setEntry(0x9000, 1));
}

TEST(SncSector, SecondInstallInSectorDisplacesNothing)
{
    SequenceNumberCache snc(sectoredConfig(4));
    snc.install(0x1000, 7);
    const auto install = snc.install(0x1080, 9);
    EXPECT_TRUE(install.installed);
    EXPECT_FALSE(install.victim_valid);
    EXPECT_TRUE(install.victims.empty());
    EXPECT_TRUE(install.cofetched.empty());
}

TEST(SncSector, VictimSectorSpillsEveryPopulatedEntry)
{
    // Two-sector directory: 4 entries, 2 lines per sector.
    SncConfig config = sectoredConfig(2, /*capacity=*/8);
    SequenceNumberCache snc(config);
    ASSERT_EQ(config.sectors(), 2u);

    snc.install(0x0000, 1);
    snc.setEntry(0x0080, 2); // sector 0 fully populated
    snc.install(0x0100, 3);  // sector 1, one slot

    // A third sector displaces the LRU sector (sector 0): both its
    // entries must come back for spilling.
    const auto install = snc.install(0x0200, 4);
    EXPECT_TRUE(install.installed);
    ASSERT_EQ(install.victims.size(), 2u);
    EXPECT_EQ(install.victims[0].line_va, 0x0000u);
    EXPECT_EQ(install.victims[0].seqnum, 1u);
    EXPECT_EQ(install.victims[1].line_va, 0x0080u);
    EXPECT_EQ(install.victims[1].seqnum, 2u);
    EXPECT_EQ(snc.spills(), 2u);
}

TEST(SncSector, IncrementOnEmptySlotIsUpdateMiss)
{
    SequenceNumberCache snc(sectoredConfig(4));
    snc.install(0x1000, 7);
    EXPECT_FALSE(snc.increment(0x1080).has_value());
    EXPECT_EQ(snc.updateMisses(), 1u);
    EXPECT_EQ(snc.increment(0x1000), std::optional<uint32_t>{8});
}

TEST(SncSector, FlushReturnsAllPopulatedEntries)
{
    SequenceNumberCache snc(sectoredConfig(4));
    snc.install(0x1000, 1);
    snc.setEntry(0x1100, 2);
    snc.install(0x5000, 3);
    auto entries = snc.flush();
    EXPECT_EQ(entries.size(), 3u);
    EXPECT_EQ(snc.occupancy(), 0u);
    EXPECT_EQ(snc.sectorOccupancy(), 0u);
    EXPECT_FALSE(snc.query(0x1000).has_value());
}

// --------------------------------------------- engine-level cofetch

class SectoredEngine : public ::testing::TestWithParam<uint32_t>
{
  protected:
    SectoredEngine()
        : channel_(mem::ChannelConfig{}),
          config_(makeConfig(GetParam())),
          engine_(config_, channel_, keys_)
    {
        std::vector<uint8_t> key(8, 0x42);
        keys_.install(1, CipherKind::Des, key);
    }

    static ProtectionConfig
    makeConfig(uint32_t sector_lines)
    {
        ProtectionConfig config;
        config.model = SecurityModel::OtpSnc;
        config.snc.capacity_bytes = 1024; // 512 entries
        config.snc.bytes_per_entry = 2;
        config.snc.sector_lines = sector_lines;
        config.snc.l2_line_size = 128;
        config.line_size = 128;
        return config;
    }

    mem::MemoryChannel channel_;
    KeyTable keys_;
    ProtectionConfig config_;
    OtpEngine engine_;
};

TEST_P(SectoredEngine, WritebackThenReadRoundTrips)
{
    // Evict (creates the seqnum), then fill: the seqnum must come
    // back identical whatever the sector geometry.
    for (uint64_t line = 0; line < 32; ++line) {
        const uint64_t va = 0x10000 + line * 128;
        const EvictPlan evict =
            engine_.planEvict(va, mem::RegionKind::Protected);
        EXPECT_EQ(evict.state, LineCipherState::Otp);
        const FillPlan fill =
            engine_.planFill(va, false, mem::RegionKind::Protected);
        EXPECT_EQ(fill.seqnum, evict.seqnum)
            << "line " << line << " sector " << GetParam();
    }
}

TEST_P(SectoredEngine, EvictedSeqnumsSurviveSncThrash)
{
    // Write back twice as many lines as the SNC holds, then read
    // them all back: every seqnum must be recoverable (from the SNC
    // or the spill table), and OTP state must be consistent.
    const uint64_t lines = 1024; // SNC holds 512
    std::vector<uint32_t> expected(lines);
    for (uint64_t i = 0; i < lines; ++i) {
        const uint64_t va = 0x40000 + i * 128;
        expected[i] =
            engine_.planEvict(va, mem::RegionKind::Protected).seqnum;
    }
    for (uint64_t i = 0; i < lines; ++i) {
        const uint64_t va = 0x40000 + i * 128;
        const FillPlan fill =
            engine_.planFill(va, false, mem::RegionKind::Protected);
        ASSERT_EQ(fill.state, LineCipherState::Otp);
        EXPECT_EQ(fill.seqnum, expected[i]) << "line " << i;
    }
}

TEST_P(SectoredEngine, SequentialQueryMissesShrinkWithSectoring)
{
    // Populate the spill table with many lines, flush the SNC, then
    // walk the lines sequentially: each sector miss cofetches the
    // neighbours, so larger sectors must produce fewer query misses.
    const uint64_t lines = 256;
    for (uint64_t i = 0; i < lines; ++i)
        engine_.planEvict(0x80000 + i * 128, mem::RegionKind::Protected);
    engine_.flushSnc(0);

    for (uint64_t i = 0; i < lines; ++i)
        engine_.planFill(0x80000 + i * 128, false,
                         mem::RegionKind::Protected);

    const uint64_t misses = engine_.snc().queryMisses();
    // Exactly one miss per sector (the walk is sequential and the
    // SNC is big enough to keep the walked sectors resident).
    EXPECT_EQ(misses, lines / GetParam());
}

INSTANTIATE_TEST_SUITE_P(SectorSizes, SectoredEngine,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto &info) {
                             return "lines" +
                                    std::to_string(info.param);
                         });

} // namespace
