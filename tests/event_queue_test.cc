/**
 * @file
 * Event-kernel scheduler unit tests: EventQueue ordering and
 * cancellation semantics, the arbiter's starvation-bound event
 * estimate, and System-level wakeup lifecycle (reset() drains the
 * heap).
 */

#include <gtest/gtest.h>

#include "mem/memory_channel.hh"
#include "sim/event_queue.hh"
#include "sim/profiles.hh"
#include "sim/system.hh"
#include "update/install_timing.hh"

using namespace secproc;
using sim::EventQueue;
using sim::kNeverCycle;

TEST(EventQueueTest, PopsInCycleOrder)
{
    EventQueue queue;
    queue.schedule(30, 3);
    queue.schedule(10, 1);
    queue.schedule(20, 2);

    EXPECT_EQ(queue.nextCycle(), 10u);
    ASSERT_EQ(queue.armed(), 3u);

    const auto first = queue.popDue(100);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->cycle, 10u);
    EXPECT_EQ(first->tag, 1u);

    const auto second = queue.popDue(100);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->cycle, 20u);
    EXPECT_EQ(second->tag, 2u);

    const auto third = queue.popDue(100);
    ASSERT_TRUE(third.has_value());
    EXPECT_EQ(third->cycle, 30u);
    EXPECT_EQ(third->tag, 3u);

    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.nextCycle(), kNeverCycle);
}

TEST(EventQueueTest, EqualCyclesPopInArmingOrder)
{
    // The pump order at a shared boundary must be the arming
    // (attach) order, or the event kernel's channel interleaving
    // would diverge from the legacy every-step pump.
    EventQueue queue;
    for (uint64_t tag = 0; tag < 8; ++tag)
        queue.schedule(42, tag);
    for (uint64_t tag = 0; tag < 8; ++tag) {
        const auto wakeup = queue.popDue(42);
        ASSERT_TRUE(wakeup.has_value());
        EXPECT_EQ(wakeup->cycle, 42u);
        EXPECT_EQ(wakeup->tag, tag);
    }
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, PopDueRespectsNow)
{
    EventQueue queue;
    queue.schedule(50, 1);
    EXPECT_FALSE(queue.popDue(49).has_value());
    EXPECT_EQ(queue.armed(), 1u);
    const auto due = queue.popDue(50);
    ASSERT_TRUE(due.has_value());
    EXPECT_EQ(due->tag, 1u);
}

TEST(EventQueueTest, CancelledWakeupNeverSurfaces)
{
    EventQueue queue;
    const auto keep = queue.schedule(10, 1);
    const auto drop = queue.schedule(5, 2);
    (void)keep;

    EXPECT_TRUE(queue.cancel(drop));
    EXPECT_FALSE(queue.cancel(drop)) << "double cancel must report dead";
    EXPECT_EQ(queue.armed(), 1u);

    // The cancelled entry sat at the heap top; nextCycle must purge
    // it rather than report the dead 5.
    EXPECT_EQ(queue.nextCycle(), 10u);
    const auto wakeup = queue.popDue(100);
    ASSERT_TRUE(wakeup.has_value());
    EXPECT_EQ(wakeup->tag, 1u);
    EXPECT_FALSE(queue.popDue(100).has_value());
}

TEST(EventQueueTest, RearmMovesWakeup)
{
    EventQueue queue;
    auto token = queue.schedule(100, 7);
    token = queue.rearm(token, 20, 7);
    EXPECT_EQ(queue.armed(), 1u);
    EXPECT_EQ(queue.nextCycle(), 20u);

    const auto wakeup = queue.popDue(20);
    ASSERT_TRUE(wakeup.has_value());
    EXPECT_EQ(wakeup->cycle, 20u);
    EXPECT_EQ(wakeup->tag, 7u);
    EXPECT_FALSE(queue.cancel(token)) << "popped token is dead";
}

TEST(EventQueueTest, NeverCycleArmsButNeverSurfaces)
{
    EventQueue queue;
    const auto token = queue.schedule(kNeverCycle, 9);
    EXPECT_EQ(queue.nextCycle(), kNeverCycle);
    EXPECT_FALSE(queue.popDue(UINT64_MAX - 1).has_value());
    // The token is still live: a later rearm can make it real.
    const auto rearmed = queue.rearm(token, 3, 9);
    EXPECT_EQ(queue.nextCycle(), 3u);
    const auto wakeup = queue.popDue(3);
    ASSERT_TRUE(wakeup.has_value());
    EXPECT_EQ(wakeup->token, rearmed);
}

TEST(EventQueueTest, ClearDropsEverything)
{
    EventQueue queue;
    queue.schedule(1, 1);
    queue.schedule(2, 2);
    queue.clear();
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.nextCycle(), kNeverCycle);
    EXPECT_FALSE(queue.popDue(UINT64_MAX - 1).has_value());
}

TEST(EventQueueTest, CancelReArmStress)
{
    // Deterministic churn: cancel every other wakeup, re-arm at a
    // shifted cycle, and verify the survivors pop in exactly
    // (cycle, arming) order.
    EventQueue queue;
    std::vector<EventQueue::Token> tokens;
    for (uint64_t i = 0; i < 64; ++i)
        tokens.push_back(queue.schedule(1000 - i, i));
    for (uint64_t i = 0; i < 64; i += 2)
        tokens[i] = queue.rearm(tokens[i], 2000 + i, i);
    EXPECT_EQ(queue.armed(), 64u);

    // Odd tags pop first (cycles 937..999 descending tag), then the
    // re-armed even tags in re-arm order.
    uint64_t last_cycle = 0;
    uint64_t popped = 0;
    while (const auto wakeup = queue.popDue(UINT64_MAX - 1)) {
        EXPECT_GE(wakeup->cycle, last_cycle);
        last_cycle = wakeup->cycle;
        ++popped;
    }
    EXPECT_EQ(popped, 64u);
}

/**
 * The arbiter's event estimate: with the bus saturated by foreground
 * reads, a queued background transaction's only threshold is the
 * starvation bound — nextArbiterEventCycle() must report exactly
 * request_cycle + bg_starvation_bound, polls before that cycle must
 * not grant, and the poll at that cycle must (as a forced grant).
 */
TEST(ArbiterEventTest, StarvationBoundFiresExactly)
{
    mem::ChannelConfig config;
    config.access_latency = 100;
    config.transfer_cycles = 16;
    config.bg_starvation_bound = 512;
    mem::MemoryChannel channel(config);
    const mem::AgentId agent = channel.registerAgent("bg");

    // Saturate the bus far past the horizon of interest so no idle
    // gap ever fits the background transfer.
    for (int i = 0; i < 200; ++i)
        channel.scheduleRead(0, mem::Traffic::DataFill);

    const uint64_t request = 100;
    ASSERT_GT(channel.busyUntil(), request +
                                       config.bg_starvation_bound +
                                       config.transfer_cycles);
    channel.requestBackground(request, mem::Traffic::UpdateFill,
                              /*write=*/false, /*small=*/false, 0,
                              agent);
    const uint64_t deadline = request + config.bg_starvation_bound;
    EXPECT_EQ(channel.nextArbiterEventCycle(), deadline);

    EXPECT_FALSE(channel.pollBackground(agent, deadline - 1).has_value())
        << "granted before the starvation bound expired";
    EXPECT_EQ(channel.backgroundForcedGrants(), 0u);

    const auto done = channel.pollBackground(agent, deadline);
    ASSERT_TRUE(done.has_value())
        << "starvation-bound grant did not fire at the deadline";
    EXPECT_EQ(channel.backgroundForcedGrants(), 1u);
    EXPECT_GE(*done, deadline);
}

/** System::reset() must drain the event kernel's pending wakeups. */
TEST(SystemWakeupTest, ResetDrainsPendingWakeups)
{
    sim::SystemConfig config =
        sim::paperConfig(secure::SecurityModel::OtpSnc);
    sim::WorkloadProfile profile = sim::benchmarkProfile("gcc");
    sim::SyntheticWorkload workload(profile, config.l2.line_size);
    sim::System system(config, workload);
    system.setKernelMode(sim::KernelMode::Event);

    update::InstallTimingConfig itc;
    itc.line_bytes = config.l2.line_size;
    itc.pacing = update::InstallPacing::Arbiter;
    update::InstallTiming timing(itc, system.channel(),
                                 system.cryptoEngine());
    timing.start(update::InstallPlan::fromImageBytes(
                     256 << 10, config.l2.line_size),
                 0, /*repeat=*/true);
    system.attachAgent(&timing);

    system.run(20'000);
    EXPECT_GT(system.pendingWakeups(), 0u)
        << "a repeating install must keep a wakeup armed";

    system.reset();
    EXPECT_EQ(system.pendingWakeups(), 0u)
        << "reset() must drain the wakeup heap";

    // The machine keeps running after the reset (fresh wakeups are
    // armed by the next run()).
    system.run(20'000);
    SUCCEED();
}
