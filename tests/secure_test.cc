/**
 * @file
 * Tests for the secure layer: SNC policies and statistics, the three
 * protection engines' timing equations (the paper's core claims),
 * functional encrypt/decrypt round trips, and plan/apply coherence.
 */

#include <gtest/gtest.h>

#include "mem/memory_channel.hh"
#include "secure/engines.hh"
#include "secure/key_table.hh"
#include "secure/protection_engine.hh"
#include "secure/snc.hh"
#include "util/random.hh"

namespace
{

using namespace secproc::secure;
using secproc::mem::ChannelConfig;
using secproc::mem::MemoryChannel;
using secproc::mem::RegionKind;
using secproc::mem::Traffic;
using secproc::util::Rng;

constexpr uint32_t kLine = 128;

// -------------------------------------------------------------------- SNC

SncConfig
tinySnc(bool lru = true, uint32_t assoc = 0)
{
    SncConfig config;
    config.capacity_bytes = 16; // 8 entries
    config.bytes_per_entry = 2;
    config.assoc = assoc;
    config.allow_replacement = lru;
    config.l2_line_size = kLine;
    return config;
}

TEST(Snc, GeometryMatchesPaper)
{
    SncConfig config;
    config.capacity_bytes = 64 * 1024;
    config.bytes_per_entry = 2;
    EXPECT_EQ(config.entries(), 32u * 1024) << "64KB / 2B = 32K numbers";
    EXPECT_EQ(config.coverageBytes(), 4ull * 1024 * 1024)
        << "covering 32K L2 lines = 4MB (paper Section 5.1)";
    EXPECT_EQ(config.maxSeqnum(), 0xFFFFu);
}

TEST(Snc, QueryMissThenInstallThenHit)
{
    SequenceNumberCache snc(tinySnc());
    EXPECT_FALSE(snc.query(0x1000).has_value());
    EXPECT_EQ(snc.queryMisses(), 1u);
    const auto install = snc.install(0x1000, 5);
    EXPECT_TRUE(install.installed);
    EXPECT_FALSE(install.victim_valid);
    const auto seqnum = snc.query(0x1000);
    ASSERT_TRUE(seqnum.has_value());
    EXPECT_EQ(*seqnum, 5u);
    EXPECT_EQ(snc.queryHits(), 1u);
}

TEST(Snc, IncrementAdvancesSeqnum)
{
    SequenceNumberCache snc(tinySnc());
    snc.install(0x2000, 0);
    EXPECT_EQ(*snc.increment(0x2000), 1u);
    EXPECT_EQ(*snc.increment(0x2000), 2u);
    EXPECT_EQ(*snc.query(0x2000), 2u);
    EXPECT_EQ(snc.updateHits(), 2u);
}

TEST(Snc, IncrementMissCounts)
{
    SequenceNumberCache snc(tinySnc());
    EXPECT_FALSE(snc.increment(0x3000).has_value());
    EXPECT_EQ(snc.updateMisses(), 1u);
}

TEST(Snc, LruSpillsVictim)
{
    SequenceNumberCache snc(tinySnc()); // 8 entries, fully assoc
    for (uint64_t i = 0; i < 8; ++i)
        snc.install(i * kLine, static_cast<uint32_t>(i));
    // Touch entry 0 so entry for line 1 is LRU.
    snc.query(0);
    const auto install = snc.install(100 * kLine, 42);
    EXPECT_TRUE(install.installed);
    ASSERT_TRUE(install.victim_valid);
    EXPECT_EQ(install.victim_line, 1u * kLine);
    EXPECT_EQ(install.victim_seqnum, 1u);
    EXPECT_EQ(snc.spills(), 1u);
}

TEST(Snc, NoReplacementRefusesWhenFull)
{
    SequenceNumberCache snc(tinySnc(/*lru=*/false));
    for (uint64_t i = 0; i < 8; ++i)
        EXPECT_TRUE(snc.install(i * kLine, 1).installed);
    EXPECT_FALSE(snc.install(99 * kLine, 1).installed);
    EXPECT_EQ(snc.rejectedInstalls(), 1u);
    // All original entries intact.
    for (uint64_t i = 0; i < 8; ++i)
        EXPECT_TRUE(snc.contains(i * kLine));
}

TEST(Snc, OverflowWrapsAndCounts)
{
    SncConfig config = tinySnc();
    config.bytes_per_entry = 1; // max seqnum 255
    SequenceNumberCache snc(config);
    snc.install(0, 255);
    EXPECT_EQ(*snc.increment(0), 1u) << "wraps to 1, not 0";
    EXPECT_EQ(snc.overflows(), 1u);
}

TEST(Snc, FlushReturnsAllEntries)
{
    SequenceNumberCache snc(tinySnc());
    snc.install(0 * kLine, 3);
    snc.install(1 * kLine, 7);
    const auto entries = snc.flush();
    EXPECT_EQ(entries.size(), 2u);
    EXPECT_EQ(snc.occupancy(), 0u);
    EXPECT_FALSE(snc.contains(0));
}

TEST(Snc, SetAssociativeConflicts)
{
    // 8 entries, 2-way -> 4 sets. Lines spaced 4 lines apart share a
    // set; the third conflicting install evicts under LRU.
    SequenceNumberCache snc(tinySnc(/*lru=*/true, /*assoc=*/2));
    snc.install(0 * 4 * kLine, 1);
    snc.install(1 * 4 * kLine, 2);
    const auto install = snc.install(2 * 4 * kLine, 3);
    EXPECT_TRUE(install.installed);
    EXPECT_TRUE(install.victim_valid)
        << "conflict in a 2-way set must spill";
    // A fully associative SNC with the same pattern has no victim.
    SequenceNumberCache full(tinySnc(/*lru=*/true, /*assoc=*/0));
    full.install(0 * 4 * kLine, 1);
    full.install(1 * 4 * kLine, 2);
    EXPECT_FALSE(full.install(2 * 4 * kLine, 3).victim_valid);
}

// -------------------------------------------------------------- key table

TEST(KeyTableValidation, AcceptsCorrectKeyLengths)
{
    KeyTable keys;
    keys.install(1, CipherKind::Des, std::vector<uint8_t>(8, 0x11));
    keys.install(2, CipherKind::TripleDes,
                 std::vector<uint8_t>(24, 0x22));
    keys.install(3, CipherKind::Aes128,
                 std::vector<uint8_t>(16, 0x33));
    EXPECT_EQ(keys.size(), 3u);
    EXPECT_NE(keys.cipher(1), nullptr);
    EXPECT_NE(keys.cipher(2), nullptr);
    EXPECT_NE(keys.cipher(3), nullptr);
}

TEST(KeyTableValidation, RejectsMalformedKeyLengths)
{
    // A key of the wrong length (e.g. a truncated RSA capsule
    // payload) must die at the boundary, not build a bad cipher.
    KeyTable keys;
    EXPECT_EXIT(keys.install(1, CipherKind::Des,
                             std::vector<uint8_t>(7, 0x11)),
                ::testing::ExitedWithCode(1), "needs 8");
    EXPECT_EXIT(keys.install(1, CipherKind::Des,
                             std::vector<uint8_t>(16, 0x11)),
                ::testing::ExitedWithCode(1), "needs 8");
    EXPECT_EXIT(keys.install(1, CipherKind::TripleDes,
                             std::vector<uint8_t>(8, 0x11)),
                ::testing::ExitedWithCode(1), "needs 24");
    EXPECT_EXIT(keys.install(1, CipherKind::Aes128,
                             std::vector<uint8_t>(0)),
                ::testing::ExitedWithCode(1), "needs 16");
}

TEST(KeyTableValidation, RejectsReservedNullCompartment)
{
    KeyTable keys;
    EXPECT_EXIT(keys.install(0, CipherKind::Des,
                             std::vector<uint8_t>(8, 0x11)),
                ::testing::ExitedWithCode(1), "reserved");
}

// ---------------------------------------------------------------- engines

struct EngineHarness
{
    MemoryChannel channel;
    KeyTable keys;
    std::unique_ptr<ProtectionEngine> engine;

    explicit EngineHarness(SecurityModel model,
                           bool allow_replacement = true,
                           uint32_t crypto_latency =
                               secproc::crypto::kPaperCryptoLatency)
        : channel(ChannelConfig{})
    {
        keys.install(1, CipherKind::Des,
                     {0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xCD, 0xFF});
        ProtectionConfig config;
        config.model = model;
        config.crypto.latency = crypto_latency;
        config.line_size = kLine;
        config.snc.l2_line_size = kLine;
        config.snc.capacity_bytes = 1024; // 512 entries
        config.snc.allow_replacement = allow_replacement;
        engine = makeProtectionEngine(config, channel, keys);
    }
};

// The paper's headline timing equations, stated as exact tests
// (100-cycle memory, 16-cycle transfer already inside the 100,
// 50-cycle crypto, 1-cycle XOR):

TEST(EngineTiming, BaselineFillIsMemoryLatency)
{
    EngineHarness h(SecurityModel::Baseline);
    const auto result =
        h.engine->lineFill(0x1000 * kLine, 0, false,
                           RegionKind::Protected);
    EXPECT_EQ(result.ready_cycle, 100u);
}

TEST(EngineTiming, XomFillSerializesCrypto)
{
    EngineHarness h(SecurityModel::Xom);
    // Make the line encrypted first (evict it once).
    h.engine->lineEvict(0x1000 * kLine, 0, RegionKind::Protected);
    const auto result = h.engine->lineFill(0x1000 * kLine, 1000, false,
                                           RegionKind::Protected);
    EXPECT_EQ(result.ready_cycle, 1000u + 100 + 50)
        << "XOM: memory + crypto (paper Section 3.1)";
}

TEST(EngineTiming, XomInstructionFetchAlsoPaysCrypto)
{
    EngineHarness h(SecurityModel::Xom);
    const auto result = h.engine->lineFill(0x4000 * kLine, 0, true,
                                           RegionKind::Protected);
    EXPECT_EQ(result.ready_cycle, 150u);
}

TEST(EngineTiming, OtpInstructionFetchIsFast)
{
    EngineHarness h(SecurityModel::OtpSnc);
    const auto result = h.engine->lineFill(0x4000 * kLine, 0, true,
                                           RegionKind::Protected);
    EXPECT_EQ(result.ready_cycle, 101u)
        << "max(100, 50) + 1 (paper Section 3.2)";
    EXPECT_TRUE(result.fast_path);
}

TEST(EngineTiming, OtpQueryHitIsFast)
{
    EngineHarness h(SecurityModel::OtpSnc);
    // Write the line back once so it is OTP-encrypted with its
    // seqnum resident in the SNC.
    h.engine->lineEvict(0x2000 * kLine, 0, RegionKind::Protected);
    const auto result = h.engine->lineFill(0x2000 * kLine, 5000, false,
                                           RegionKind::Protected);
    EXPECT_EQ(result.ready_cycle, 5000u + 101);
    EXPECT_TRUE(result.fast_path);
    EXPECT_FALSE(result.snc_query_miss);
}

TEST(EngineTiming, OtpSlowCryptoStillFastPath)
{
    // Figure 10's central claim: with a 102-cycle crypto unit the
    // OTP fill costs max(100, 102) + 1 = 103, not 202.
    EngineHarness h(SecurityModel::OtpSnc, true, /*crypto=*/102);
    h.engine->lineEvict(0x2000 * kLine, 0, RegionKind::Protected);
    const auto result = h.engine->lineFill(0x2000 * kLine, 5000, false,
                                           RegionKind::Protected);
    EXPECT_EQ(result.ready_cycle, 5000u + 102 + 1);

    EngineHarness x(SecurityModel::Xom, true, /*crypto=*/102);
    x.engine->lineEvict(0x2000 * kLine, 0, RegionKind::Protected);
    const auto xom = x.engine->lineFill(0x2000 * kLine, 5000, false,
                                        RegionKind::Protected);
    EXPECT_EQ(xom.ready_cycle, 5000u + 100 + 102);
}

TEST(EngineTiming, OtpQueryMissPaysSeqnumFetch)
{
    EngineHarness h(SecurityModel::OtpSnc);
    auto *otp = dynamic_cast<OtpEngine *>(h.engine.get());
    ASSERT_NE(otp, nullptr);

    // Fill the 512-entry SNC with other lines to evict our target.
    h.engine->lineEvict(0x9000 * kLine, 0, RegionKind::Protected);
    for (uint64_t i = 1; i <= 512; ++i)
        h.engine->lineEvict((0x9000 + i) * kLine, 0,
                            RegionKind::Protected);
    EXPECT_FALSE(otp->snc().contains(0x9000 * kLine));

    const uint64_t start = 100000;
    const auto result = h.engine->lineFill(0x9000 * kLine, start, false,
                                           RegionKind::Protected);
    EXPECT_TRUE(result.snc_query_miss);
    // Serial policy (Algorithm 1): seqnum fetch (100) + decrypt (50),
    // then line fetch (100) overlapping pad generation (50), + XOR.
    EXPECT_EQ(result.ready_cycle, start + 100 + 50 + 100 + 1);
}

TEST(EngineTiming, OtpNoReplacementFallsBackToXomPath)
{
    EngineHarness h(SecurityModel::OtpSnc, /*allow_replacement=*/false);
    // Exhaust the 512 SNC entries.
    for (uint64_t i = 0; i < 512; ++i)
        h.engine->lineEvict(i * kLine, 0, RegionKind::Protected);
    // This line misses the full SNC: it is direct-encrypted.
    h.engine->lineEvict(0x9000 * kLine, 0, RegionKind::Protected);

    const uint64_t start = 100000;
    const auto result = h.engine->lineFill(0x9000 * kLine, start, false,
                                           RegionKind::Protected);
    EXPECT_EQ(result.ready_cycle, start + 100 + 50)
        << "no-replacement overflow lines take the XOM path";

    // A line that did get an entry stays on the fast path.
    const auto fast = h.engine->lineFill(0 * kLine, start + 1000, false,
                                         RegionKind::Protected);
    EXPECT_EQ(fast.ready_cycle, start + 1000 + 101);
}

TEST(EngineTiming, UnwrittenLinesFillPlain)
{
    for (SecurityModel model :
         {SecurityModel::Baseline, SecurityModel::Xom,
          SecurityModel::OtpSnc}) {
        EngineHarness h(model);
        const auto result = h.engine->lineFill(
            0x7777 * kLine, 0, false, RegionKind::Protected);
        EXPECT_EQ(result.ready_cycle, 100u)
            << "first touch (OS zero-fill) is plain under "
            << h.engine->name();
    }
}

TEST(EngineTiming, PlaintextRegionSkipsCrypto)
{
    EngineHarness h(SecurityModel::OtpSnc);
    h.engine->lineEvict(0x100 * kLine, 0, RegionKind::Plaintext);
    const auto result = h.engine->lineFill(0x100 * kLine, 1000, false,
                                           RegionKind::Plaintext);
    EXPECT_EQ(result.ready_cycle, 1100u);
    EXPECT_EQ(h.engine->plainFills(), 1u);
}

TEST(EngineTiming, SharedRegionUsesDirectEncryption)
{
    EngineHarness h(SecurityModel::OtpSnc);
    h.engine->lineEvict(0x200 * kLine, 0, RegionKind::Shared);
    const auto result = h.engine->lineFill(0x200 * kLine, 1000, false,
                                           RegionKind::Shared);
    EXPECT_EQ(result.ready_cycle, 1000u + 150)
        << "synonym data is excluded from OTP (paper Section 4)";
}

TEST(EngineTraffic, SeqnumSpillsAreAccounted)
{
    EngineHarness h(SecurityModel::OtpSnc);
    // 512-entry SNC; 600 distinct dirty lines force 88 spills.
    for (uint64_t i = 0; i < 600; ++i)
        h.engine->lineEvict((0x100 + i) * kLine, i * 10,
                            RegionKind::Protected);
    EXPECT_EQ(h.channel.transactions(Traffic::SeqnumWriteback), 88u);
    EXPECT_GT(h.channel.seqnumBytes(), 0u);
}

// ------------------------------------------------ functional round trips

TEST(EngineFunctional, OtpEncryptDecryptRoundTrip)
{
    EngineHarness h(SecurityModel::OtpSnc);
    Rng rng(42);
    std::vector<uint8_t> plain(kLine);
    rng.fillBytes(plain.data(), plain.size());

    const uint64_t line_va = 0x5000 * kLine;
    auto image = plain;
    h.engine->encryptLine(line_va, RegionKind::Protected, image);
    EXPECT_NE(image, plain) << "memory image must be ciphertext";

    h.engine->decryptLine(line_va, false, RegionKind::Protected, image);
    EXPECT_EQ(image, plain);
}

TEST(EngineFunctional, OtpSeqnumAdvanceChangesCiphertext)
{
    EngineHarness h(SecurityModel::OtpSnc);
    std::vector<uint8_t> plain(kLine, 0x77);
    const uint64_t line_va = 0x6000 * kLine;

    auto first = plain;
    h.engine->encryptLine(line_va, RegionKind::Protected, first);
    auto second = plain;
    h.engine->encryptLine(line_va, RegionKind::Protected, second);
    EXPECT_NE(first, second)
        << "same data, same address, different write -> different "
           "ciphertext (the paper's Section 3.4 requirement)";
    // And the latest image still decrypts correctly.
    h.engine->decryptLine(line_va, false, RegionKind::Protected, second);
    EXPECT_EQ(second, plain);
}

TEST(EngineFunctional, XomSameDataSameCiphertext)
{
    // The XOM weakness the paper points out: equal plaintext at the
    // same location re-encrypts identically.
    EngineHarness h(SecurityModel::Xom);
    std::vector<uint8_t> plain(kLine, 0x42);
    const uint64_t line_va = 0x6000 * kLine;
    auto first = plain;
    h.engine->encryptLine(line_va, RegionKind::Protected, first);
    auto second = plain;
    h.engine->encryptLine(line_va, RegionKind::Protected, second);
    EXPECT_EQ(first, second);
}

TEST(EngineFunctional, XomRoundTrip)
{
    EngineHarness h(SecurityModel::Xom);
    Rng rng(43);
    std::vector<uint8_t> plain(kLine);
    rng.fillBytes(plain.data(), plain.size());
    const uint64_t line_va = 0x5100 * kLine;
    auto image = plain;
    h.engine->encryptLine(line_va, RegionKind::Protected, image);
    EXPECT_NE(image, plain);
    h.engine->decryptLine(line_va, false, RegionKind::Protected, image);
    EXPECT_EQ(image, plain);
}

TEST(EngineFunctional, InstructionDecryptionUsesVaSeed)
{
    // The loader encrypts text with seqnum 0 seeds; an ifetch plan
    // must reproduce the identical pad.
    EngineHarness h(SecurityModel::OtpSnc);
    Rng rng(44);
    std::vector<uint8_t> text(kLine);
    rng.fillBytes(text.data(), text.size());
    const uint64_t line_va = 0x400000;

    // Vendor side: OTP with seed(line, 0).
    auto image = text;
    h.engine->applyEvict(
        [&] {
            EvictPlan plan;
            plan.line_va = line_va;
            plan.state = LineCipherState::Otp;
            plan.seqnum = 0;
            return plan;
        }(),
        image);
    EXPECT_NE(image, text);

    // Processor side: ifetch fill.
    h.engine->decryptLine(line_va, /*ifetch=*/true,
                          RegionKind::Protected, image);
    EXPECT_EQ(image, text);
}

TEST(EngineFunctional, CompartmentKeysIsolatePrograms)
{
    EngineHarness h(SecurityModel::OtpSnc);
    h.keys.install(2, CipherKind::Des,
                   {0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF});
    std::vector<uint8_t> plain(kLine, 0x5A);
    const uint64_t line_va = 0x8000 * kLine;

    auto image = plain;
    h.engine->encryptLine(line_va, RegionKind::Protected, image);

    // Another compartment reading the same image decodes garbage.
    h.engine->setCompartment(2);
    auto stolen = image;
    // Direct apply with the same plan shape but the wrong key.
    FillPlan plan;
    plan.line_va = line_va;
    plan.state = LineCipherState::Otp;
    plan.seqnum = 1;
    h.engine->applyFill(plan, stolen);
    EXPECT_NE(stolen, plain)
        << "program data must not decrypt under another compartment";
}

TEST(EngineState, LineStateTransitions)
{
    EngineHarness h(SecurityModel::OtpSnc);
    const uint64_t line_va = 0xA000 * kLine;
    EXPECT_EQ(h.engine->lineState(line_va), LineCipherState::Unwritten);
    h.engine->lineEvict(line_va, 0, RegionKind::Protected);
    EXPECT_EQ(h.engine->lineState(line_va), LineCipherState::Otp);

    EngineHarness x(SecurityModel::Xom);
    x.engine->lineEvict(line_va, 0, RegionKind::Protected);
    EXPECT_EQ(x.engine->lineState(line_va), LineCipherState::Direct);
}

TEST(EngineState, ResetClearsEverything)
{
    EngineHarness h(SecurityModel::OtpSnc);
    auto *otp = dynamic_cast<OtpEngine *>(h.engine.get());
    h.engine->lineEvict(0xB000 * kLine, 0, RegionKind::Protected);
    EXPECT_EQ(otp->snc().occupancy(), 1u);
    h.engine->reset();
    EXPECT_EQ(otp->snc().occupancy(), 0u);
    EXPECT_EQ(h.engine->lineState(0xB000 * kLine),
              LineCipherState::Unwritten);
}

TEST(EngineState, FlushSncSpillsToMemoryTable)
{
    EngineHarness h(SecurityModel::OtpSnc);
    auto *otp = dynamic_cast<OtpEngine *>(h.engine.get());
    h.engine->lineEvict(0xC000 * kLine, 0, RegionKind::Protected);
    EXPECT_EQ(otp->flushSnc(100), 1u);
    EXPECT_EQ(otp->snc().occupancy(), 0u);

    // The line is still decryptable: query miss fetches the spilled
    // sequence number from the in-memory table.
    const auto result = h.engine->lineFill(0xC000 * kLine, 1000, false,
                                           RegionKind::Protected);
    EXPECT_TRUE(result.snc_query_miss);
    EXPECT_EQ(result.ready_cycle, 1000u + 251);
}

} // namespace
