/**
 * @file
 * Tests for the software-protection toolchain: image serialization,
 * the vendor -> processor flow (the paper's Section 2 lifecycle),
 * the secure loader, and the attack suite — including the paper's
 * security arguments as executable checks.
 */

#include <gtest/gtest.h>

#include "crypto/rsa.hh"
#include "mem/main_memory.hh"
#include "mem/virtual_memory.hh"
#include "secure/engines.hh"
#include "secure/integrity.hh"
#include "secure/key_table.hh"
#include "xom/attack_sim.hh"
#include "xom/program_image.hh"
#include "xom/secure_loader.hh"
#include "xom/vendor_tool.hh"

namespace
{

using namespace secproc;
using namespace secproc::xom;

constexpr uint32_t kLine = 128;

/** A complete simulated platform: one processor + its loader. */
struct Platform
{
    util::Rng rng;
    crypto::RsaKeyPair processor;
    mem::MainMemory memory;
    mem::VirtualMemory vm;
    secure::KeyTable keys;
    mem::MemoryChannel channel;
    std::unique_ptr<secure::ProtectionEngine> engine;
    std::unique_ptr<SecureLoader> loader;

    explicit Platform(uint64_t seed,
                      secure::SecurityModel model =
                          secure::SecurityModel::OtpSnc)
        : rng(seed)
    {
        processor = crypto::rsaGenerate(384, rng);
        secure::ProtectionConfig config;
        config.model = model;
        config.line_size = kLine;
        config.snc.l2_line_size = kLine;
        engine = secure::makeProtectionEngine(config, channel, keys);
        loader = std::make_unique<SecureLoader>(processor.priv, keys);
    }
};

PlainProgram
demoProgram(util::Rng &rng)
{
    PlainProgram program;
    program.title = "demo";
    program.entry_point = 0x400000;

    PlainProgram::PlainSection text;
    text.name = ".text";
    text.vaddr = 0x400000;
    text.bytes.resize(4 * kLine);
    rng.fillBytes(text.bytes.data(), text.bytes.size());

    PlainProgram::PlainSection data;
    data.name = ".data";
    data.vaddr = 0x600000;
    data.bytes.resize(2 * kLine);
    rng.fillBytes(data.bytes.data(), data.bytes.size());

    PlainProgram::PlainSection lib;
    lib.name = ".sharedlib";
    lib.vaddr = 0x7000000;
    lib.bytes.resize(kLine);
    rng.fillBytes(lib.bytes.data(), lib.bytes.size());
    lib.shared = true;

    program.sections = {text, data, lib};
    return program;
}

// ------------------------------------------------------------- image I/O

TEST(ProgramImage, SerializeRoundTrip)
{
    util::Rng rng(1);
    Platform platform(2);
    const ProgramImage image =
        vendorProtect(demoProgram(rng), VendorScheme::Otp,
                      secure::CipherKind::Des, platform.processor.pub,
                      rng, kLine);

    const auto bytes = image.serialize();
    const ProgramImage back = ProgramImage::deserialize(bytes);
    EXPECT_EQ(back.title, image.title);
    EXPECT_EQ(back.entry_point, image.entry_point);
    EXPECT_EQ(back.key_capsule, image.key_capsule);
    ASSERT_EQ(back.sections.size(), image.sections.size());
    for (size_t i = 0; i < image.sections.size(); ++i) {
        EXPECT_EQ(back.sections[i].name, image.sections[i].name);
        EXPECT_EQ(back.sections[i].vaddr, image.sections[i].vaddr);
        EXPECT_EQ(back.sections[i].bytes, image.sections[i].bytes);
    }
}

TEST(ProgramImage, VendorEncryptsProtectedSectionsOnly)
{
    util::Rng rng(3);
    Platform platform(4);
    const PlainProgram plain = demoProgram(rng);
    const ProgramImage image =
        vendorProtect(plain, VendorScheme::Otp,
                      secure::CipherKind::Des, platform.processor.pub,
                      rng, kLine);

    EXPECT_NE(image.sections[0].bytes, plain.sections[0].bytes)
        << "text must be ciphertext";
    EXPECT_NE(image.sections[1].bytes, plain.sections[1].bytes)
        << "data must be ciphertext";
    EXPECT_EQ(image.sections[2].bytes, plain.sections[2].bytes)
        << "shared library stays plaintext (paper Section 4.3)";
}

// ---------------------------------------------------- vendor -> processor

TEST(Lifecycle, LoadAndFetchRoundTrip)
{
    util::Rng rng(5);
    Platform platform(6);
    const PlainProgram plain = demoProgram(rng);
    const ProgramImage image =
        vendorProtect(plain, VendorScheme::Otp,
                      secure::CipherKind::Des, platform.processor.pub,
                      rng, kLine);

    const LoadResult result = platform.loader->load(
        image, 1, platform.memory, platform.vm, 1, *platform.engine);
    ASSERT_TRUE(result.success) << result.error;
    EXPECT_EQ(result.entry_point, 0x400000u);

    // Instruction fetch decrypts the first text line back to the
    // plaintext the vendor started from.
    const auto line = platform.loader->fetchLine(
        0x400000, platform.memory, platform.vm, 1, *platform.engine,
        /*ifetch=*/true);
    const std::vector<uint8_t> expected(
        plain.sections[0].bytes.begin(),
        plain.sections[0].bytes.begin() + kLine);
    EXPECT_EQ(line, expected);

    // Data fetch decrypts the initialized data.
    const auto data_line = platform.loader->fetchLine(
        0x600000, platform.memory, platform.vm, 1, *platform.engine,
        /*ifetch=*/false);
    const std::vector<uint8_t> expected_data(
        plain.sections[1].bytes.begin(),
        plain.sections[1].bytes.begin() + kLine);
    EXPECT_EQ(data_line, expected_data);

    // Plaintext shared library reads back unchanged.
    const auto lib_line = platform.loader->fetchLine(
        0x7000000, platform.memory, platform.vm, 1, *platform.engine,
        /*ifetch=*/false);
    EXPECT_EQ(lib_line, plain.sections[2].bytes);
}

TEST(Lifecycle, WrongProcessorCannotLoad)
{
    // The anti-piracy core of XOM: an image keyed to processor A
    // fails to load on processor B.
    util::Rng rng(7);
    Platform processor_a(8);
    Platform processor_b(9);
    const ProgramImage image =
        vendorProtect(demoProgram(rng), VendorScheme::Otp,
                      secure::CipherKind::Des,
                      processor_a.processor.pub, rng, kLine);

    const LoadResult result = processor_b.loader->load(
        image, 1, processor_b.memory, processor_b.vm, 1,
        *processor_b.engine);
    EXPECT_FALSE(result.success);
    EXPECT_FALSE(result.error.empty());
}

TEST(Lifecycle, TamperedCapsuleRejected)
{
    util::Rng rng(10);
    Platform platform(11);
    ProgramImage image =
        vendorProtect(demoProgram(rng), VendorScheme::Otp,
                      secure::CipherKind::Des, platform.processor.pub,
                      rng, kLine);
    image.key_capsule[4] ^= 0x80;
    const LoadResult result = platform.loader->load(
        image, 1, platform.memory, platform.vm, 1, *platform.engine);
    EXPECT_FALSE(result.success);
}

TEST(Lifecycle, XomSchemeAlsoRoundTrips)
{
    util::Rng rng(12);
    Platform platform(13, secure::SecurityModel::Xom);
    const PlainProgram plain = demoProgram(rng);
    const ProgramImage image =
        vendorProtect(plain, VendorScheme::Xom,
                      secure::CipherKind::Des, platform.processor.pub,
                      rng, kLine);
    const LoadResult result = platform.loader->load(
        image, 1, platform.memory, platform.vm, 1, *platform.engine);
    ASSERT_TRUE(result.success) << result.error;
    const auto line = platform.loader->fetchLine(
        0x400000, platform.memory, platform.vm, 1, *platform.engine,
        /*ifetch=*/true);
    const std::vector<uint8_t> expected(
        plain.sections[0].bytes.begin(),
        plain.sections[0].bytes.begin() + kLine);
    EXPECT_EQ(line, expected);
}

TEST(Lifecycle, AesImagesSupported)
{
    util::Rng rng(14);
    Platform platform(15);
    const PlainProgram plain = demoProgram(rng);
    const ProgramImage image =
        vendorProtect(plain, VendorScheme::Otp,
                      secure::CipherKind::Aes128,
                      platform.processor.pub, rng, kLine);
    const LoadResult result = platform.loader->load(
        image, 1, platform.memory, platform.vm, 1, *platform.engine);
    ASSERT_TRUE(result.success) << result.error;
    const auto line = platform.loader->fetchLine(
        0x400000, platform.memory, platform.vm, 1, *platform.engine,
        true);
    EXPECT_EQ(line, std::vector<uint8_t>(
                        plain.sections[0].bytes.begin(),
                        plain.sections[0].bytes.begin() + kLine));
}

TEST(Lifecycle, VendorSeedMatchesEngineSeed)
{
    // The vendor must pre-compute exactly the pads the processor
    // regenerates; this pins the seed layout contract.
    EXPECT_EQ(vendorSeed(0x400000, 0, 128),
              (uint64_t{0x400000 / 128} << 24));
    EXPECT_EQ(vendorSeed(0x400000, 7, 128),
              (uint64_t{0x400000 / 128} << 24) | (7u << 8));
}

// ----------------------------------------------------------------- attacks

struct AttackRig
{
    Platform platform;
    mem::Asid asid = 1;

    explicit AttackRig(uint64_t seed,
                       secure::SecurityModel model =
                           secure::SecurityModel::OtpSnc)
        : platform(seed, model)
    {
        platform.keys.install(
            1, secure::CipherKind::Des,
            {0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xCD, 0xFF});
    }
};

TEST(Attacks, SplicingDefeatedByOtp)
{
    AttackRig rig(20);
    const auto outcome = splicingAttack(
        *rig.platform.engine, rig.platform.memory, rig.platform.vm,
        rig.asid, 0x10000, 0x20000);
    EXPECT_FALSE(outcome.succeeded) << outcome.detail;
}

TEST(Attacks, SplicingSucceedsAgainstEcbXom)
{
    // The paper's Section 3.4 motivation: under direct encryption,
    // ciphertext is position-independent, so splicing transplants
    // valid plaintext.
    AttackRig rig(21, secure::SecurityModel::Xom);
    const auto outcome = splicingAttack(
        *rig.platform.engine, rig.platform.memory, rig.platform.vm,
        rig.asid, 0x10000, 0x20000);
    EXPECT_TRUE(outcome.succeeded) << outcome.detail;
}

TEST(Attacks, ReplayCorruptedByFreshSeqnum)
{
    AttackRig rig(22);
    const auto outcome = replayAttack(
        *rig.platform.engine, rig.platform.memory, rig.platform.vm,
        rig.asid, 0x30000);
    EXPECT_FALSE(outcome.succeeded) << outcome.detail;
}

TEST(Attacks, ReplaySucceedsAgainstXom)
{
    // Without sequence numbers, restoring stale ciphertext restores
    // stale plaintext undetected (the replay attack the paper defers
    // to Gassend et al.).
    AttackRig rig(23, secure::SecurityModel::Xom);
    const auto outcome = replayAttack(
        *rig.platform.engine, rig.platform.memory, rig.platform.vm,
        rig.asid, 0x30000);
    EXPECT_TRUE(outcome.succeeded) << outcome.detail;
}

TEST(Attacks, SpoofingCorruptsSilentlyWithoutIntegrity)
{
    AttackRig rig(24);
    const auto outcome = spoofingAttack(
        *rig.platform.engine, rig.platform.memory, rig.platform.vm,
        rig.asid, 0x40000);
    EXPECT_FALSE(outcome.succeeded)
        << "corruption must change the plaintext";
}

TEST(Attacks, PatternLeakEcbVsOtp)
{
    // A memory full of repeated values: ECB leaks the repetition,
    // OTP does not (paper Section 3.4).
    AttackRig otp_rig(25);
    AttackRig xom_rig(26, secure::SecurityModel::Xom);

    const std::vector<uint8_t> repeated(kLine, 0x00);
    for (uint64_t i = 0; i < 16; ++i) {
        const uint64_t line_va = 0x50000 + i * kLine;
        for (AttackRig *rig : {&otp_rig, &xom_rig}) {
            auto bytes = repeated;
            rig->platform.engine->encryptLine(
                line_va, mem::RegionKind::Protected, bytes);
            rig->platform.memory.write(
                rig->platform.vm.translate(rig->asid, line_va),
                bytes.data(), bytes.size());
        }
    }
    const uint64_t xom_repeats = patternLeak(
        xom_rig.platform.memory,
        xom_rig.platform.vm.translate(xom_rig.asid, 0x50000) , 0, 8);
    (void)xom_repeats;

    // Compare across the whole region (contiguous physical pages).
    uint64_t otp_leak = 0, xom_leak = 0;
    for (uint64_t i = 0; i < 16; ++i) {
        const uint64_t line_va = 0x50000 + i * kLine;
        otp_leak += patternLeak(
            otp_rig.platform.memory,
            otp_rig.platform.vm.translate(otp_rig.asid, line_va),
            kLine, 8);
        xom_leak += patternLeak(
            xom_rig.platform.memory,
            xom_rig.platform.vm.translate(xom_rig.asid, line_va),
            kLine, 8);
    }
    EXPECT_EQ(otp_leak, 0u) << "OTP ciphertext must have no repeats";
    EXPECT_GT(xom_leak, 200u)
        << "ECB of a zero-filled region repeats massively";
}

// ------------------------------------------------- integrity composition

TEST(Integrity, MacDetectsSpoofing)
{
    secure::IntegrityConfig config;
    config.mode = secure::IntegrityMode::MacBlocking;
    secure::IntegrityEngine integrity(config);
    integrity.setMacKey({0x01, 0x02, 0x03, 0x04});

    std::vector<uint8_t> ciphertext(kLine, 0x77);
    integrity.storeMac(0x1000,
                       integrity.computeMac(0x1000, 3, ciphertext));
    EXPECT_TRUE(integrity.verifyMac(0x1000, 3, ciphertext));

    ciphertext[5] ^= 1;
    EXPECT_FALSE(integrity.verifyMac(0x1000, 3, ciphertext))
        << "one flipped ciphertext bit must be detected";
}

TEST(Integrity, MacDetectsReplayViaSeqnum)
{
    // Stale ciphertext + stale MAC still fail because the verifier
    // uses the *current* sequence number from inside the boundary.
    secure::IntegrityConfig config;
    config.mode = secure::IntegrityMode::MacBlocking;
    secure::IntegrityEngine integrity(config);
    integrity.setMacKey({0xAA, 0xBB});

    const std::vector<uint8_t> v1(kLine, 0x11);
    const auto stale_mac = integrity.computeMac(0x2000, 1, v1);
    integrity.storeMac(0x2000, stale_mac);

    // Program writes v2 with seqnum 2.
    const std::vector<uint8_t> v2(kLine, 0x22);
    integrity.storeMac(0x2000, integrity.computeMac(0x2000, 2, v2));

    // Adversary restores stale data AND stale MAC.
    integrity.corruptStoredMac(0x2000, stale_mac);
    EXPECT_FALSE(integrity.verifyMac(0x2000, 2, v1))
        << "verification against seqnum 2 rejects the seqnum-1 pair";
}

TEST(Integrity, MacDetectsSplicing)
{
    secure::IntegrityConfig config;
    config.mode = secure::IntegrityMode::MacBlocking;
    secure::IntegrityEngine integrity(config);
    integrity.setMacKey({0x42});

    const std::vector<uint8_t> line_a(kLine, 0xA0);
    integrity.storeMac(0xA000, integrity.computeMac(0xA000, 1, line_a));
    // Copy A's data and MAC to address B: address binding fails.
    integrity.storeMac(0xB000, *integrity.storedMac(0xA000));
    EXPECT_FALSE(integrity.verifyMac(0xB000, 1, line_a));
}

TEST(Integrity, TimingModesOrdering)
{
    mem::MemoryChannel channel;
    auto run = [&channel](secure::IntegrityMode mode) {
        secure::IntegrityConfig config;
        config.mode = mode;
        secure::IntegrityEngine engine(config);
        channel.reset();
        uint64_t total = 0;
        for (int i = 0; i < 50; ++i) {
            const uint64_t cycle = static_cast<uint64_t>(i) * 500;
            const uint64_t arrival = cycle + 100;
            total += engine.verifyFill(0x1000 + i * 128, cycle,
                                       arrival, channel) -
                     arrival;
        }
        return total;
    };

    const uint64_t none = run(secure::IntegrityMode::None);
    const uint64_t speculative =
        run(secure::IntegrityMode::MacSpeculative);
    const uint64_t blocking = run(secure::IntegrityMode::MacBlocking);
    EXPECT_EQ(none, 0u);
    EXPECT_EQ(speculative, 0u)
        << "speculative MACs keep data off the critical path";
    EXPECT_GT(blocking, 0u);
}

TEST(Integrity, MerkleNodeCacheTruncatesWalks)
{
    secure::IntegrityConfig config;
    config.mode = secure::IntegrityMode::MerkleCached;
    config.node_cache_bytes = 64 * 1024;
    secure::IntegrityEngine engine(config);
    mem::MemoryChannel channel;

    // Repeated fills of nearby lines share tree paths: after the
    // first walk, verification terminates at cached nodes.
    uint64_t first = 0, later = 0;
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 8; ++i) {
            const uint64_t cycle =
                static_cast<uint64_t>(round * 8 + i) * 1000;
            const uint64_t arrival = cycle + 100;
            const uint64_t done = engine.verifyFill(
                0x1000 + i * 128, cycle, arrival, channel);
            if (round == 0)
                first += done - arrival;
            else if (round == 9)
                later += done - arrival;
        }
    }
    EXPECT_LT(later, first)
        << "a warm node cache must shorten verification";
    EXPECT_GT(engine.nodeCacheHits(), 0u);
}

} // namespace
