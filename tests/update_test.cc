/**
 * @file
 * Tests for the secure software-update and attestation subsystem:
 * manifest/bundle serialization, the vendor build -> processor
 * verify/install round trip, the rejection family (tampered image,
 * downgrade, wrong processor, bad signature, interrupted staging),
 * rollback counter monotonicity and attestation quotes.
 */

#include <gtest/gtest.h>

#include "crypto/rsa.hh"
#include "mem/main_memory.hh"
#include "mem/virtual_memory.hh"
#include "secure/engines.hh"
#include "secure/key_table.hh"
#include "update/attestation.hh"
#include "update/image_builder.hh"
#include "update/manifest.hh"
#include "update/rollback_store.hh"
#include "update/update_engine.hh"
#include "util/serialize.hh"
#include "xom/secure_loader.hh"
#include "xom/vendor_tool.hh"

namespace
{

using namespace secproc;
using namespace secproc::update;

constexpr uint32_t kLine = 128;

/** A fielded device: processor identity + update machinery. */
struct Device
{
    util::Rng rng;
    crypto::RsaKeyPair processor;
    crypto::RsaKeyPair attestation;
    mem::MainMemory memory;
    mem::VirtualMemory vm;
    secure::KeyTable keys;
    mem::MemoryChannel channel;
    std::unique_ptr<secure::ProtectionEngine> engine;
    RollbackStore rollback;
    std::unique_ptr<UpdateEngine> updater;

    Device(uint64_t seed, const crypto::RsaPublicKey &vendor_key)
        : rng(seed)
    {
        processor = crypto::rsaGenerate(512, rng);
        attestation = crypto::rsaGenerate(512, rng);
        secure::ProtectionConfig config;
        config.model = secure::SecurityModel::OtpSnc;
        config.line_size = kLine;
        config.snc.l2_line_size = kLine;
        engine = secure::makeProtectionEngine(config, channel, keys);
        updater = std::make_unique<UpdateEngine>(vendor_key, processor,
                                                 keys, rollback);
        updater->setAttestationKey(attestation);
    }
};

/** The vendor: signing identity + release pipeline. */
struct Vendor
{
    util::Rng rng;
    ImageBuilder builder;

    explicit Vendor(uint64_t seed)
        : rng(seed), builder(crypto::rsaGenerate(512, rng))
    {}

    UpdateBundle
    release(const crypto::RsaPublicKey &processor, uint32_t version,
            uint64_t counter, const std::string &title = "firmware")
    {
        xom::PlainProgram program;
        program.title = title;
        program.entry_point = 0x400000;
        xom::PlainProgram::PlainSection text;
        text.name = ".text";
        text.vaddr = 0x400000;
        // Version-dependent payload so every release differs.
        text.bytes.resize(4 * kLine,
                          static_cast<uint8_t>(0xC0 + version));
        rng.fillBytes(text.bytes.data(), 2 * kLine);
        xom::PlainProgram::PlainSection data;
        data.name = ".data";
        data.vaddr = 0x600000;
        data.bytes.resize(2 * kLine,
                          static_cast<uint8_t>(version));
        program.sections = {text, data};

        UpdateSpec spec;
        spec.image_version = version;
        spec.rollback_counter = counter;
        return builder.build(program, spec, processor, rng);
    }
};

// ------------------------------------------------------------ round trip

TEST(UpdateRoundTrip, BuildVerifyInstallRun)
{
    Vendor vendor(1);
    Device device(2, vendor.builder.publicKey());

    const UpdateBundle bundle =
        vendor.release(device.processor.pub, 1, 1);
    const VerifyResult admission = device.updater->verify(bundle);
    ASSERT_TRUE(admission.ok()) << admission.detail;

    const InstallResult installed = device.updater->install(
        bundle, 1, device.memory, device.vm, 1, *device.engine);
    ASSERT_TRUE(installed.ok()) << installed.detail;
    EXPECT_EQ(installed.entry_point, 0x400000u);
    EXPECT_EQ(installed.slot, 0u) << "first install lands in slot A";

    // The program must actually run under the protection engine:
    // demand fetches through the loader path decrypt to plaintext.
    xom::SecureLoader loader(device.processor.priv, device.keys);
    const auto line =
        loader.fetchLine(0x400000 + 2 * kLine, device.memory,
                         device.vm, 1, *device.engine, true);
    EXPECT_EQ(line, std::vector<uint8_t>(kLine, 0xC0 + 1))
        << "fetched text must decrypt to the vendor's plaintext";

    EXPECT_EQ(device.rollback.current("firmware"), 1u);
    ASSERT_NE(device.updater->compartmentManifest(1), nullptr);
    EXPECT_EQ(device.updater->compartmentManifest(1)->image_version,
              1u);
}

TEST(UpdateRoundTrip, SequentialUpdatesAlternateSlots)
{
    Vendor vendor(3);
    Device device(4, vendor.builder.publicKey());

    const auto v1 = device.updater->install(
        vendor.release(device.processor.pub, 1, 1), 1, device.memory,
        device.vm, 1, *device.engine);
    ASSERT_TRUE(v1.ok()) << v1.detail;
    EXPECT_EQ(v1.slot, 0u);

    const auto v2 = device.updater->install(
        vendor.release(device.processor.pub, 2, 2), 1, device.memory,
        device.vm, 1, *device.engine);
    ASSERT_TRUE(v2.ok()) << v2.detail;
    EXPECT_EQ(v2.slot, 1u) << "second install lands in slot B";
    EXPECT_EQ(device.rollback.current("firmware"), 2u);

    // The new text is what fetches decrypt to now.
    xom::SecureLoader loader(device.processor.priv, device.keys);
    const auto line =
        loader.fetchLine(0x400000 + 2 * kLine, device.memory,
                         device.vm, 1, *device.engine, true);
    EXPECT_EQ(line, std::vector<uint8_t>(kLine, 0xC0 + 2));
}

TEST(UpdateRoundTrip, BundleSerializationRoundTrips)
{
    Vendor vendor(5);
    util::Rng rng(6);
    const auto processor = crypto::rsaGenerate(512, rng);
    const UpdateBundle bundle = vendor.release(processor.pub, 7, 9);

    const auto back = UpdateBundle::deserialize(bundle.serialize());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->manifest.serialize(), bundle.manifest.serialize());
    EXPECT_EQ(back->signature, bundle.signature);
    EXPECT_EQ(back->image.serialize(), bundle.image.serialize());
    EXPECT_EQ(back->manifest.image_version, 7u);
    EXPECT_EQ(back->manifest.rollback_counter, 9u);
}

TEST(UpdateRoundTrip, ManifestDescribesImage)
{
    Vendor vendor(7);
    util::Rng rng(8);
    const auto processor = crypto::rsaGenerate(512, rng);
    const UpdateBundle bundle = vendor.release(processor.pub, 1, 1);
    const UpdateManifest &m = bundle.manifest;

    EXPECT_EQ(m.processor_id, processorId(processor.pub));
    ASSERT_EQ(m.sections.size(), bundle.image.sections.size());
    for (size_t i = 0; i < m.sections.size(); ++i) {
        EXPECT_EQ(m.sections[i].digest,
                  sha256Digest(bundle.image.sections[i].bytes));
    }
    EXPECT_EQ(m.image_digest, sha256Digest(bundle.image.serialize()));
}

// ------------------------------------------------------ rejection family

TEST(UpdateRejection, TamperedSectionIsDigestMismatch)
{
    Vendor vendor(10);
    Device device(11, vendor.builder.publicKey());

    UpdateBundle bundle = vendor.release(device.processor.pub, 1, 1);
    bundle.image.sections[0].bytes[17] ^= 0x01; // one flipped bit

    const VerifyResult result = device.updater->verify(bundle);
    EXPECT_EQ(result.status, UpdateStatus::DigestMismatch)
        << result.detail;

    const InstallResult installed = device.updater->install(
        bundle, 1, device.memory, device.vm, 1, *device.engine);
    EXPECT_EQ(installed.status, UpdateStatus::DigestMismatch);
    EXPECT_EQ(device.rollback.current("firmware"), 0u)
        << "a rejected update must not burn the counter";
}

TEST(UpdateRejection, TamperedCapsuleIsDigestMismatch)
{
    Vendor vendor(12);
    Device device(13, vendor.builder.publicKey());
    UpdateBundle bundle = vendor.release(device.processor.pub, 1, 1);
    bundle.image.key_capsule[3] ^= 0x80;
    EXPECT_EQ(device.updater->verify(bundle).status,
              UpdateStatus::DigestMismatch);
}

TEST(UpdateRejection, ResignedDowngradeIsRollback)
{
    Vendor vendor(14);
    Device device(15, vendor.builder.publicKey());

    // Take v2 (counter 2) live first.
    const auto v2 = device.updater->install(
        vendor.release(device.processor.pub, 2, 2), 1, device.memory,
        device.vm, 1, *device.engine);
    ASSERT_TRUE(v2.ok()) << v2.detail;

    // A *correctly signed* release with a lower counter — the
    // strongest downgrade attempt: nothing is forged, it is simply
    // old. The counter, not the signature, must kill it.
    const UpdateBundle old_release =
        vendor.release(device.processor.pub, 1, 1);
    const VerifyResult result = device.updater->verify(old_release);
    EXPECT_EQ(result.status, UpdateStatus::Rollback) << result.detail;

    // Equal counter (replay of the installed release) also fails.
    const UpdateBundle replay =
        vendor.release(device.processor.pub, 2, 2);
    EXPECT_EQ(device.updater->verify(replay).status,
              UpdateStatus::Rollback);
}

TEST(UpdateRejection, OtherProcessorsImageIsWrongProcessor)
{
    Vendor vendor(16);
    Device device_a(17, vendor.builder.publicKey());
    Device device_b(18, vendor.builder.publicKey());

    const UpdateBundle for_b =
        vendor.release(device_b.processor.pub, 1, 1);
    const VerifyResult result = device_a.updater->verify(for_b);
    EXPECT_EQ(result.status, UpdateStatus::WrongProcessor)
        << result.detail;
}

TEST(UpdateRejection, ForgedSignatureIsBadSignature)
{
    Vendor vendor(19);
    Vendor impostor(20);
    Device device(21, vendor.builder.publicKey());

    // An impostor with its own key signs an image for our processor.
    UpdateBundle forged =
        impostor.release(device.processor.pub, 1, 1);
    EXPECT_EQ(device.updater->verify(forged).status,
              UpdateStatus::BadSignature);

    // A manifest edited after genuine signing also fails.
    UpdateBundle edited = vendor.release(device.processor.pub, 1, 1);
    edited.manifest.rollback_counter = 99;
    EXPECT_EQ(device.updater->verify(edited).status,
              UpdateStatus::BadSignature);

    // A corrupted signature fails.
    UpdateBundle corrupted =
        vendor.release(device.processor.pub, 1, 1);
    corrupted.signature[5] ^= 0x10;
    EXPECT_EQ(device.updater->verify(corrupted).status,
              UpdateStatus::BadSignature);
}

TEST(UpdateRejection, TruncatedBundleIsMalformed)
{
    Vendor vendor(22);
    util::Rng rng(23);
    const auto processor = crypto::rsaGenerate(512, rng);
    auto bytes = vendor.release(processor.pub, 1, 1).serialize();
    bytes.resize(bytes.size() / 2);
    EXPECT_FALSE(UpdateBundle::deserialize(bytes).has_value());
}

TEST(UpdateRejection, SelfConsistentGarbageImageIsMalformedNotFatal)
{
    // An attacker who controls the whole bundle can make the
    // manifest's image digest match arbitrary non-image bytes (no
    // signature needed for self-consistency). Parsing must reject
    // this cleanly rather than dying in the image parser.
    util::Rng rng(24);
    std::vector<uint8_t> garbage(256);
    rng.fillBytes(garbage.data(), garbage.size());

    UpdateManifest manifest;
    manifest.title = "evil";
    manifest.image_digest = sha256Digest(garbage);

    // Hand-frame the bundle exactly as serialize() would, but with
    // the garbage bytes where the image blob belongs.
    std::vector<uint8_t> crafted;
    const auto manifest_bytes = manifest.serialize();
    auto put_u32 = [&crafted](uint32_t v) {
        for (int i = 0; i < 4; ++i)
            crafted.push_back(static_cast<uint8_t>(v >> (8 * i)));
    };
    put_u32(0x53505542); // "SPUB"
    put_u32(static_cast<uint32_t>(manifest_bytes.size()));
    crafted.insert(crafted.end(), manifest_bytes.begin(),
                   manifest_bytes.end());
    put_u32(2);
    crafted.push_back(0xAA);
    crafted.push_back(0xBB);
    put_u32(static_cast<uint32_t>(garbage.size()));
    crafted.insert(crafted.end(), garbage.begin(), garbage.end());

    EXPECT_FALSE(UpdateBundle::deserialize(crafted).has_value());
}

TEST(UpdateRejection, TamperedEntryPointIsDigestMismatch)
{
    // The per-section digests do not cover image-level fields; the
    // whole-image digest must catch edits to them.
    Vendor vendor(25);
    Device device(26, vendor.builder.publicKey());
    UpdateBundle bundle = vendor.release(device.processor.pub, 1, 1);
    bundle.image.entry_point = 0xDEAD0000;
    EXPECT_EQ(device.updater->verify(bundle).status,
              UpdateStatus::DigestMismatch);

    // Flipping a section's encryption mode (e.g. to Plaintext) is
    // also caught even though section digests cover only the bytes.
    UpdateBundle downgraded =
        vendor.release(device.processor.pub, 1, 1);
    downgraded.image.sections[0].encryption =
        xom::SectionEncryption::Plaintext;
    EXPECT_EQ(device.updater->verify(downgraded).status,
              UpdateStatus::DigestMismatch);
}

TEST(UpdateRejection, AbsurdLineSizeIsMalformed)
{
    Vendor vendor(27);
    Device device(28, vendor.builder.publicKey());
    UpdateBundle bundle = vendor.release(device.processor.pub, 1, 1);
    bundle.manifest.line_size = 0;
    EXPECT_EQ(device.updater->verify(bundle).status,
              UpdateStatus::MalformedBundle);
    bundle.manifest.line_size = 96; // not a power of two
    EXPECT_EQ(device.updater->verify(bundle).status,
              UpdateStatus::MalformedBundle);
}

TEST(UpdateRejection, UnknownCipherKindIsMalformedNotFatal)
{
    // Regression: the cipher field used to be cast straight from the
    // untrusted u32 into secure::CipherKind, surviving parse with an
    // out-of-range value and panicking later inside makeCipher().
    // It must die at deserialize as a malformed manifest.
    Vendor vendor(53);
    util::Rng rng(54);
    const auto processor = crypto::rsaGenerate(512, rng);
    const UpdateBundle bundle = vendor.release(processor.pub, 1, 1);

    std::vector<uint8_t> bytes = bundle.manifest.serialize();
    // Manifest layout: magic u32 | format u32 | title (u32 len +
    // bytes) | image_version u32 | rollback u64 | processor_id[32] |
    // cipher u32 | ...
    const size_t cipher_off =
        4 + 4 + 4 + bundle.manifest.title.size() + 4 + 8 + 32;
    ASSERT_LT(cipher_off + 4, bytes.size());
    ASSERT_TRUE(UpdateManifest::deserialize(bytes).has_value())
        << "the unpatched manifest must parse";

    for (const uint32_t evil : {99u, 3u, 0xFFFF'FFFFu}) {
        std::vector<uint8_t> patched = bytes;
        for (int i = 0; i < 4; ++i)
            patched[cipher_off + i] =
                static_cast<uint8_t>(evil >> (8 * i));
        EXPECT_FALSE(UpdateManifest::deserialize(patched).has_value())
            << "cipher kind " << evil << " parsed";
    }
}

TEST(UpdateRejection, ImageLengthPastU32IsNotTruncated)
{
    // Regression: the image blob's length used to be framed as a u32
    // cast of a u64 size, so a crafted length of 2^32 + N read back
    // as N and "parsed" with silent wraparound. The u64 framing must
    // reject any claimed length the buffer cannot back.
    Vendor vendor(55);
    util::Rng rng(56);
    const auto processor = crypto::rsaGenerate(512, rng);
    const UpdateBundle bundle = vendor.release(processor.pub, 1, 1);

    const std::vector<uint8_t> manifest_bytes =
        bundle.manifest.serialize();
    const std::vector<uint8_t> tail(16, 0xEE);

    auto craft = [&](uint64_t claimed_image_len) {
        std::vector<uint8_t> out;
        util::putU32(out, 0x53505542); // "SPUB"
        util::putBlob(out, manifest_bytes);
        util::putBlob(out, bundle.signature);
        util::putU64(out, claimed_image_len);
        out.insert(out.end(), tail.begin(), tail.end());
        return out;
    };

    // The wraparound probe: 2^32 + 16 with 16 bytes present. A u32
    // frame would have read this as a 16-byte image.
    EXPECT_FALSE(UpdateBundle::deserialize(
                     craft((1ull << 32) + tail.size()))
                     .has_value());
    // Boundary neighbours on both sides of the u32 range.
    EXPECT_FALSE(UpdateBundle::deserialize(craft(1ull << 32))
                     .has_value());
    EXPECT_FALSE(UpdateBundle::deserialize(craft(0xFFFF'FFFFull))
                     .has_value());

    // Control: a genuine bundle still frames and parses, and its
    // size query matches the serializer exactly.
    EXPECT_EQ(bundle.serializedSize(), bundle.serialize().size());
    EXPECT_TRUE(
        UpdateBundle::deserialize(bundle.serialize()).has_value());
}

// ------------------------------------------------- interrupted install

TEST(UpdateStaging, InterruptedStagingKeepsOldImageLive)
{
    Vendor vendor(30);
    Device device(31, vendor.builder.publicKey());

    const auto v1 = device.updater->install(
        vendor.release(device.processor.pub, 1, 1), 1, device.memory,
        device.vm, 1, *device.engine);
    ASSERT_TRUE(v1.ok()) << v1.detail;

    // Stage v2 but "lose power" mid-write: corrupt the staged copy
    // in untrusted memory before activation.
    const UpdateBundle v2 = vendor.release(device.processor.pub, 2, 2);
    const VerifyResult staged =
        device.updater->stage(v2, device.memory);
    ASSERT_TRUE(staged.ok()) << staged.detail;

    const uint64_t slot_base = 0x4000'0000 +
                               device.updater->stagingSlot() *
                                   (8ull << 20);
    for (uint64_t off = 200; off < 260; ++off)
        device.memory.corruptByte(slot_base + off, 0xFF);

    const InstallResult activated = device.updater->activate(
        1, device.memory, device.vm, 1, *device.engine);
    EXPECT_EQ(activated.status, UpdateStatus::StagingCorrupt)
        << activated.detail;

    // Old image still active, counter not burned, v1 still runs.
    EXPECT_EQ(device.updater->activeSlot(), 0u);
    EXPECT_EQ(device.rollback.current("firmware"), 1u);
    ASSERT_TRUE(device.updater->activeManifest().has_value());
    EXPECT_EQ(device.updater->activeManifest()->image_version, 1u);

    // Recovery: re-stage the same bundle cleanly and activate.
    ASSERT_TRUE(device.updater->stage(v2, device.memory).ok());
    const InstallResult retried = device.updater->activate(
        1, device.memory, device.vm, 1, *device.engine);
    ASSERT_TRUE(retried.ok()) << retried.detail;
    EXPECT_EQ(device.rollback.current("firmware"), 2u);
}

TEST(UpdateStaging, ActivateWithoutStageIsNothingStaged)
{
    Vendor vendor(32);
    Device device(33, vendor.builder.publicKey());
    const InstallResult result = device.updater->activate(
        1, device.memory, device.vm, 1, *device.engine);
    EXPECT_EQ(result.status, UpdateStatus::NothingStaged);
}

// ------------------------------------------------------- rollback store

TEST(RollbackStoreTest, CountersAreMonotonic)
{
    RollbackStore store;
    EXPECT_EQ(store.current("app"), 0u);
    EXPECT_TRUE(store.wouldAccept("app", 1));
    EXPECT_FALSE(store.wouldAccept("app", 0));

    store.commit("app", 5);
    EXPECT_EQ(store.current("app"), 5u);
    EXPECT_FALSE(store.wouldAccept("app", 5));
    EXPECT_FALSE(store.wouldAccept("app", 4));
    EXPECT_TRUE(store.wouldAccept("app", 6));

    // Independent titles do not interfere.
    EXPECT_TRUE(store.wouldAccept("other", 1));
}

TEST(UpdateRejection, FullCounterBankIsItsOwnStatus)
{
    Vendor vendor(29);
    Device device(34, vendor.builder.publicKey());
    // Shrink the device's fuse bank to one slot.
    RollbackStore tiny(1);
    UpdateEngine updater(vendor.builder.publicKey(), device.processor,
                         device.keys, tiny);

    const auto first = updater.install(
        vendor.release(device.processor.pub, 1, 1, "app-one"), 1,
        device.memory, device.vm, 1, *device.engine);
    ASSERT_TRUE(first.ok()) << first.detail;

    // A fresh title with a perfectly fine counter must be reported
    // as bank exhaustion, not as a (nonsensical) rollback.
    const VerifyResult second = updater.verify(
        vendor.release(device.processor.pub, 1, 1, "app-two"));
    EXPECT_EQ(second.status, UpdateStatus::CounterBankFull)
        << second.detail;

    // The existing title still upgrades.
    EXPECT_TRUE(updater
                    .verify(vendor.release(device.processor.pub, 2, 2,
                                           "app-one"))
                    .ok());
}

TEST(UpdateRejection, OversizedBundleIsTooLargeNotFatal)
{
    Vendor vendor(35);
    Device device(36, vendor.builder.publicKey());
    // A staging slot too small for even a minimal bundle.
    RollbackStore rollback;
    UpdateEngine updater(vendor.builder.publicKey(), device.processor,
                         device.keys, rollback,
                         StagingConfig{0x4000'0000, 512});

    const VerifyResult result = updater.verify(
        vendor.release(device.processor.pub, 1, 1));
    EXPECT_EQ(result.status, UpdateStatus::TooLarge) << result.detail;
}

TEST(RollbackStoreTest, CapacityBoundsFreshTitles)
{
    RollbackStore store(2);
    store.commit("a", 1);
    store.commit("b", 1);
    EXPECT_FALSE(store.wouldAccept("c", 1))
        << "fuse bank is full for new titles";
    EXPECT_TRUE(store.wouldAccept("a", 2))
        << "existing titles still advance";
}

TEST(RollbackStoreTest, SerializationSurvivesReboot)
{
    RollbackStore store(16);
    store.commit("boot", 3);
    store.commit("app", 41);

    const auto rebooted = RollbackStore::deserialize(store.serialize());
    ASSERT_TRUE(rebooted.has_value());
    EXPECT_EQ(rebooted->current("boot"), 3u);
    EXPECT_EQ(rebooted->current("app"), 41u);
    EXPECT_EQ(rebooted->capacity(), 16u);

    // Corrupt persistence is refused, not trusted.
    auto bytes = store.serialize();
    bytes.resize(bytes.size() - 3);
    EXPECT_FALSE(RollbackStore::deserialize(bytes).has_value());
}

// --------------------------------------------------------- attestation

TEST(Attestation, QuoteProvesActiveImage)
{
    Vendor vendor(40);
    Device device(41, vendor.builder.publicKey());
    const auto installed = device.updater->install(
        vendor.release(device.processor.pub, 3, 7), 1, device.memory,
        device.vm, 1, *device.engine);
    ASSERT_TRUE(installed.ok()) << installed.detail;

    Digest nonce = {};
    device.rng.fillBytes(nonce.data(), nonce.size());
    const AttestationQuote quote = attest(*device.updater, 1, nonce);

    EXPECT_TRUE(verifyQuote(device.attestation.pub, quote, nonce));
    EXPECT_EQ(quote.report.image_version, 3u);
    EXPECT_EQ(quote.report.rollback_counter, 7u);
    EXPECT_EQ(quote.report.title, "firmware");
}

TEST(Attestation, StaleNonceAndTamperedReportRejected)
{
    Vendor vendor(42);
    Device device(43, vendor.builder.publicKey());
    ASSERT_TRUE(device.updater
                    ->install(vendor.release(device.processor.pub, 1,
                                             1),
                              1, device.memory, device.vm, 1,
                              *device.engine)
                    .ok());

    Digest nonce = {};
    nonce[0] = 0xAB;
    AttestationQuote quote = attest(*device.updater, 1, nonce);

    Digest other_nonce = nonce;
    other_nonce[0] ^= 1;
    EXPECT_FALSE(verifyQuote(device.attestation.pub, quote, other_nonce))
        << "replayed quote must fail a fresh challenge";

    // Claiming a different version breaks the signature.
    quote.report.image_version = 99;
    EXPECT_FALSE(verifyQuote(device.attestation.pub, quote, nonce));
}

TEST(Attestation, QuoteBindsToProcessorIdentity)
{
    Vendor vendor(44);
    Device device_a(45, vendor.builder.publicKey());
    Device device_b(46, vendor.builder.publicKey());
    ASSERT_TRUE(device_a.updater
                    ->install(vendor.release(device_a.processor.pub, 1,
                                             1),
                              1, device_a.memory, device_a.vm, 1,
                              *device_a.engine)
                    .ok());

    const Digest nonce = {};
    const AttestationQuote quote = attest(*device_a.updater, 1, nonce);
    EXPECT_TRUE(verifyQuote(device_a.attestation.pub, quote, nonce));
    EXPECT_FALSE(verifyQuote(device_b.attestation.pub, quote, nonce))
        << "a quote must not verify as another processor";
}

TEST(Attestation, QuoteSignedByAttestationKeyNotUnwrapKey)
{
    // Sign/decrypt key separation: the capsule-unwrap key pair's
    // padding check is an observable decryption oracle, so quotes
    // must never verify under it.
    Vendor vendor(49);
    Device device(52, vendor.builder.publicKey());
    ASSERT_TRUE(device.updater
                    ->install(vendor.release(device.processor.pub, 1,
                                             1),
                              1, device.memory, device.vm, 1,
                              *device.engine)
                    .ok());

    const Digest nonce = {};
    const AttestationQuote quote = attest(*device.updater, 1, nonce);
    EXPECT_TRUE(verifyQuote(device.attestation.pub, quote, nonce));
    EXPECT_FALSE(verifyQuote(device.processor.pub, quote, nonce))
        << "quote must not be a signature under the unwrap key";
    // Identity in the report remains the capsule-key fingerprint.
    EXPECT_EQ(quote.report.processor_id,
              processorId(device.processor.pub));
}

TEST(Attestation, HmacBindingWorksWithSharedKey)
{
    Vendor vendor(47);
    Device device(48, vendor.builder.publicKey());
    ASSERT_TRUE(device.updater
                    ->install(vendor.release(device.processor.pub, 1,
                                             1),
                              1, device.memory, device.vm, 1,
                              *device.engine)
                    .ok());

    const std::vector<uint8_t> session_key = {0x01, 0x02, 0x03, 0x04};
    const Digest nonce = {};
    const AttestationQuote quote =
        attest(*device.updater, 1, nonce, session_key);

    EXPECT_TRUE(verifyQuoteMac(session_key, quote, nonce));
    const std::vector<uint8_t> wrong_key = {0x0A, 0x0B};
    EXPECT_FALSE(verifyQuoteMac(wrong_key, quote, nonce));
}

// ------------------------------------------------- multi-compartment

TEST(MultiCompartment, IndependentTitlesUpdateIndependently)
{
    Vendor vendor(50);
    Device device(51, vendor.builder.publicKey());

    const auto app1 = device.updater->install(
        vendor.release(device.processor.pub, 1, 1, "app-one"), 1,
        device.memory, device.vm, 1, *device.engine);
    ASSERT_TRUE(app1.ok()) << app1.detail;
    const auto app2 = device.updater->install(
        vendor.release(device.processor.pub, 4, 4, "app-two"), 2,
        device.memory, device.vm, 2, *device.engine);
    ASSERT_TRUE(app2.ok()) << app2.detail;

    EXPECT_EQ(device.rollback.current("app-one"), 1u);
    EXPECT_EQ(device.rollback.current("app-two"), 4u);
    EXPECT_EQ(device.keys.size(), 2u);

    // app-one can still move 1 -> 2 even though app-two is at 4.
    const auto upgraded = device.updater->install(
        vendor.release(device.processor.pub, 2, 2, "app-one"), 1,
        device.memory, device.vm, 1, *device.engine);
    ASSERT_TRUE(upgraded.ok()) << upgraded.detail;

    // Per-compartment attestation sees the right images.
    const Digest nonce = {};
    EXPECT_EQ(attest(*device.updater, 1, nonce).report.title,
              "app-one");
    EXPECT_EQ(attest(*device.updater, 2, nonce).report.title,
              "app-two");
    EXPECT_EQ(attest(*device.updater, 1, nonce).report.image_version,
              2u);
}

} // namespace
