/**
 * @file
 * Delta-update tests (DFU-grade OTA).
 *
 * The headline property is differential: a delta-reconstructed
 * install must leave the device byte-identical to a full-bundle
 * install of the same release — slot bytes, active manifest and
 * rollback counter — on both the pure functional engine and the
 * unified cycle plane. Around it: wire-format round trips, the
 * shipping-size win deltas exist for, BaseMismatch as a clean
 * fall-back-to-full signal (never a crash), tampered patch ops dying
 * at the signed-manifest checks, the serializer-derived framed-size
 * gate, and the staging journal's resume semantics.
 */

#include <gtest/gtest.h>

#include "crypto/latency.hh"
#include "ota/transport.hh"
#include "sim/profiles.hh"
#include "sim/system.hh"
#include "update/delta.hh"
#include "update/image_builder.hh"
#include "update/live_install.hh"
#include "update/staging_journal.hh"
#include "update/update_engine.hh"

namespace
{

using namespace secproc;
using namespace secproc::update;

constexpr uint32_t kLine = 128;
constexpr uint64_t kStagingBase = 0x4000'0000;
constexpr uint64_t kSlotSize = 2ull << 20;
constexpr uint64_t kImageBase = 0x0800'0000;

/** Vendor + processor key material shared by every rig of a test. */
struct KeyRing
{
    util::Rng rng;
    ImageBuilder vendor;
    crypto::RsaKeyPair processor;

    explicit KeyRing(uint64_t seed)
        : rng(seed), vendor(crypto::rsaGenerate(512, rng)),
          processor(crypto::rsaGenerate(512, rng))
    {}
};

/**
 * Program bytes of payload generation @p generation: generation 1 is
 * fresh random, each later generation rewrites @p change_fraction of
 * its predecessor's 64-byte blocks — the similarity a delta exploits.
 */
xom::PlainProgram
makeProgram(uint64_t seed, uint64_t image_bytes, uint32_t generation,
            double change_fraction)
{
    constexpr uint64_t kBlock = 64;
    xom::PlainProgram program;
    program.title = "fw";
    program.entry_point = kImageBase;
    xom::PlainProgram::PlainSection text;
    text.name = ".text";
    text.vaddr = kImageBase;
    text.bytes.resize(image_bytes);
    util::Rng fill(seed ^ 0xF111);
    for (auto &byte : text.bytes)
        byte = static_cast<uint8_t>(fill.nextRange(256));

    const uint64_t blocks = (image_bytes + kBlock - 1) / kBlock;
    const auto changed = static_cast<uint64_t>(
        static_cast<double>(blocks) * change_fraction);
    for (uint32_t gen = 2; gen <= generation; ++gen) {
        util::Rng mutate(seed ^ (0xD1FFull + gen));
        for (uint64_t c = 0; c < changed; ++c) {
            const uint64_t block = mutate.nextRange(blocks);
            for (uint64_t i = block * kBlock;
                 i < std::min(block * kBlock + kBlock, image_bytes);
                 ++i)
                text.bytes[i] =
                    static_cast<uint8_t>(mutate.nextRange(256));
        }
    }
    program.sections = {text};
    return program;
}

/** A base release, its successor, and the delta between them. */
struct ReleasePair
{
    UpdateBundle base;
    UpdateBundle next;
    DeltaBundle delta;
};

/**
 * Build a delta-friendly release pair: the successor reuses the
 * base's RNG stream (same symmetric key, so unchanged plaintext
 * lines keep their ciphertext) and signs the base image's digest
 * into its manifest.
 */
ReleasePair
makePair(KeyRing &ring, uint64_t image_bytes, double change_fraction,
         uint64_t key_seed)
{
    UpdateSpec spec;
    spec.image_version = 1;
    spec.rollback_counter = 1;
    spec.cipher = secure::CipherKind::Des;
    spec.line_size = kLine;

    ReleasePair pair;
    util::Rng rng_base(key_seed);
    pair.base = ring.vendor.build(
        makeProgram(key_seed, image_bytes, 1, change_fraction), spec,
        ring.processor.pub, rng_base);

    spec.image_version = 2;
    spec.rollback_counter = 2;
    spec.base_digest = sha256DigestOfImage(pair.base.image);
    util::Rng rng_next(key_seed);
    pair.next = ring.vendor.build(
        makeProgram(key_seed, image_bytes, 2, change_fraction), spec,
        ring.processor.pub, rng_next);

    pair.delta = ring.vendor.buildDelta(pair.base, pair.next);
    return pair;
}

/** The pure-functional device (zero simulated cycles). */
struct FunctionalRig
{
    secure::KeyTable keys;
    mem::MemoryChannel channel;
    std::unique_ptr<secure::ProtectionEngine> engine;
    mem::MainMemory memory;
    mem::VirtualMemory vm;
    RollbackStore rollback{64};
    std::unique_ptr<UpdateEngine> updater;

    explicit FunctionalRig(KeyRing &ring)
    {
        secure::ProtectionConfig config;
        config.line_size = kLine;
        config.snc.l2_line_size = kLine;
        engine = secure::makeProtectionEngine(config, channel, keys);
        updater = std::make_unique<UpdateEngine>(
            ring.vendor.publicKey(), ring.processor, keys, rollback,
            StagingConfig{kStagingBase, kSlotSize});
    }

    bool install(const UpdateBundle &bundle)
    {
        return updater->install(bundle, 1, memory, vm, 1, *engine)
            .ok();
    }

    /** Framed slot contents of the active slot. */
    std::vector<uint8_t> activeSlotBytes(uint64_t framed_size)
    {
        std::vector<uint8_t> bytes(framed_size);
        memory.read(updater->slotBase(updater->activeSlot()),
                    bytes.data(), bytes.size());
        return bytes;
    }
};

// ------------------------------------------------------- wire format

TEST(DeltaBundle, SerializeRoundTrips)
{
    KeyRing ring(0xDE17A);
    const ReleasePair pair = makePair(ring, 32ull << 10, 0.10, 0xAB);

    const std::vector<uint8_t> bytes = pair.delta.serialize();
    EXPECT_EQ(bytes.size(), pair.delta.serializedSize());

    const auto parsed = DeltaBundle::deserialize(bytes);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->serialize(), bytes);
    EXPECT_EQ(parsed->manifest.serialize(),
              pair.delta.manifest.serialize());
    EXPECT_EQ(parsed->signature, pair.delta.signature);
}

TEST(DeltaBundle, TruncationIsRejectedNotFatal)
{
    KeyRing ring(0xDE17B);
    const ReleasePair pair = makePair(ring, 8ull << 10, 0.10, 0xAC);
    const std::vector<uint8_t> bytes = pair.delta.serialize();

    // Every prefix must parse to nullopt or to a structurally valid
    // bundle — never crash. Stride keeps the loop fast; the first and
    // last few bytes are the interesting edges, so cover them exactly.
    for (size_t cut = 0; cut < bytes.size();
         cut += (cut < 64 || cut + 64 > bytes.size()) ? 1 : 997) {
        const std::vector<uint8_t> prefix(bytes.begin(),
                                          bytes.begin() + cut);
        EXPECT_FALSE(DeltaBundle::deserialize(prefix).has_value())
            << "truncated delta at " << cut << " bytes parsed";
    }
}

TEST(DeltaBundle, ShipsFarFewerBytesForSmallChanges)
{
    KeyRing ring(0xDE17C);
    const ReleasePair pair = makePair(ring, 256ull << 10, 0.10, 0xAD);

    // A 10%-changed release must ship well under half the full
    // bundle (in practice ~15%: literals + manifest + capsule + op
    // framing).
    EXPECT_LT(pair.delta.serializedSize(),
              pair.next.serializedSize() / 2)
        << "delta=" << pair.delta.serializedSize()
        << " full=" << pair.next.serializedSize();
    EXPECT_GT(pair.delta.literalBytes(), 0u);
}

// ----------------------------------------------- satellite: framing

TEST(UpdateEngine, FramedSizeDerivesFromTheSerializer)
{
    KeyRing ring(0xDE17D);
    const ReleasePair pair = makePair(ring, 16ull << 10, 0.10, 0xAE);

    // The slot-fit gate in verify() must cost exactly what the
    // serializer produces — for full bundles and for a
    // delta-reconstructed bundle alike.
    EXPECT_EQ(pair.next.serializedSize(),
              pair.next.serialize().size());
    EXPECT_EQ(frameBundle(pair.next).size(),
              kSlotHeaderBytes + pair.next.serializedSize());
    EXPECT_EQ(frameBundle(pair.next),
              frameBundleBytes(pair.next.serialize()));

    FunctionalRig rig(ring);
    ASSERT_TRUE(rig.install(pair.base));
    const auto rec =
        rig.updater->reconstructDelta(pair.delta, rig.memory);
    ASSERT_TRUE(rec.result.ok()) << rec.result.detail;
    EXPECT_EQ(rec.bundle->serializedSize(),
              rec.bundle->serialize().size());
    EXPECT_EQ(frameBundle(*rec.bundle).size(),
              kSlotHeaderBytes + rec.bundle->serializedSize());
}

// ------------------------------------------------------ differential

TEST(Delta, ReconstructionIsByteIdenticalToFullInstall)
{
    KeyRing ring(0xDE17E);
    const ReleasePair pair = makePair(ring, 64ull << 10, 0.10, 0xAF);

    FunctionalRig full(ring);
    ASSERT_TRUE(full.install(pair.base));
    ASSERT_TRUE(full.install(pair.next));

    FunctionalRig delta(ring);
    ASSERT_TRUE(delta.install(pair.base));
    const VerifyResult staged =
        delta.updater->stageDelta(pair.delta, delta.memory);
    ASSERT_TRUE(staged.ok()) << staged.detail;
    ASSERT_TRUE(delta.updater
                    ->activate(1, delta.memory, delta.vm, 1,
                               *delta.engine)
                    .ok());

    // The reconstructed device is indistinguishable from the
    // full-bundle one: same active slot, same slot bytes, same
    // manifest, same counter.
    const uint64_t framed_size =
        kSlotHeaderBytes + pair.next.serializedSize();
    EXPECT_EQ(delta.updater->activeSlot(), full.updater->activeSlot());
    EXPECT_EQ(delta.activeSlotBytes(framed_size),
              full.activeSlotBytes(framed_size));
    EXPECT_EQ(delta.updater->activeManifest()->serialize(),
              full.updater->activeManifest()->serialize());
    EXPECT_EQ(delta.rollback.current("fw"),
              full.rollback.current("fw"));
}

// ----------------------------------------------- fallback + tampering

TEST(Delta, BaseMismatchIsACleanFallbackSignal)
{
    KeyRing ring(0xDE17F);
    const ReleasePair pair = makePair(ring, 16ull << 10, 0.10, 0xB0);

    // No active image at all: the device needs the full bundle.
    FunctionalRig fresh(ring);
    EXPECT_EQ(fresh.updater->stageDelta(pair.delta, fresh.memory)
                  .status,
              UpdateStatus::BaseMismatch);

    // Wrong base installed (a different generation's bytes).
    FunctionalRig wrong(ring);
    UpdateSpec spec;
    spec.image_version = 1;
    spec.rollback_counter = 1;
    spec.cipher = secure::CipherKind::Des;
    spec.line_size = kLine;
    util::Rng other_rng(0xCAFE);
    const UpdateBundle other = ring.vendor.build(
        makeProgram(0xCAFE, 16ull << 10, 1, 0.10), spec,
        ring.processor.pub, other_rng);
    ASSERT_TRUE(wrong.install(other));
    EXPECT_EQ(wrong.updater->stageDelta(pair.delta, wrong.memory)
                  .status,
              UpdateStatus::BaseMismatch);

    // The defined fallback always works: the full bundle installs on
    // the very device that just refused the delta.
    EXPECT_TRUE(wrong.install(pair.next));
}

TEST(Delta, TamperedPatchInputIsRejectedNotTrusted)
{
    KeyRing ring(0xDE180);
    const ReleasePair pair = makePair(ring, 16ull << 10, 0.10, 0xB1);

    FunctionalRig rig(ring);
    ASSERT_TRUE(rig.install(pair.base));

    // A flipped literal byte survives the bounds checks but dies on
    // the signed digests of the reconstructed image.
    {
        DeltaBundle tampered = pair.delta;
        bool flipped = false;
        for (auto &section : tampered.sections) {
            for (auto &op : section.ops) {
                if (op.kind == DeltaOp::Kind::Literal &&
                    !op.literal.empty()) {
                    op.literal[op.literal.size() / 2] ^= 0xFF;
                    flipped = true;
                    break;
                }
            }
            if (flipped)
                break;
        }
        ASSERT_TRUE(flipped);
        EXPECT_EQ(rig.updater->reconstructDelta(tampered, rig.memory)
                      .result.status,
                  UpdateStatus::DigestMismatch);
    }

    // A copy range pushed past the base section is caught by the
    // bounds checks before any bytes move.
    {
        DeltaBundle tampered = pair.delta;
        bool bent = false;
        for (auto &section : tampered.sections) {
            for (auto &op : section.ops) {
                if (op.kind == DeltaOp::Kind::Copy) {
                    op.src_offset = ~0ull - op.length;
                    bent = true;
                    break;
                }
            }
            if (bent)
                break;
        }
        ASSERT_TRUE(bent);
        EXPECT_EQ(rig.updater->reconstructDelta(tampered, rig.memory)
                      .result.status,
                  UpdateStatus::MalformedBundle);
    }

    // A forged signature never reaches the patch ops at all.
    {
        DeltaBundle tampered = pair.delta;
        tampered.signature[0] ^= 0x01;
        EXPECT_EQ(rig.updater->reconstructDelta(tampered, rig.memory)
                      .result.status,
                  UpdateStatus::BadSignature);
    }

    // The untampered delta still installs after all those refusals —
    // nothing above changed device state.
    EXPECT_TRUE(rig.updater->stageDelta(pair.delta, rig.memory).ok());
}

// -------------------------------------------------- staging journal

TEST(StagingJournal, ResumeKeepsOnlyMatchingRecords)
{
    StagingJournal journal;
    Digest digest{};
    digest[0] = 0xAA;

    // Fresh record: nothing marked.
    EXPECT_FALSE(journal.begin(0, digest, 10'000, 1024));
    EXPECT_EQ(journal.chunkCount(0), 10u);
    EXPECT_EQ(journal.completedBytes(0), 0u);

    journal.markChunk(0, 0);
    journal.markChunk(0, 3);
    journal.markChunk(0, 9); // tail chunk: 10'000 - 9*1024 bytes
    EXPECT_TRUE(journal.chunkDone(0, 3));
    EXPECT_FALSE(journal.chunkDone(0, 4));
    EXPECT_EQ(journal.completedBytes(0),
              1024u + 1024u + (10'000u - 9u * 1024u));

    // Same identity resumes with the bitmap intact...
    EXPECT_TRUE(journal.begin(0, digest, 10'000, 1024));
    EXPECT_TRUE(journal.chunkDone(0, 0));

    // ...and survives a simulated reboot.
    const auto rebooted =
        StagingJournal::deserialize(journal.serialize());
    ASSERT_TRUE(rebooted.has_value());
    EXPECT_TRUE(rebooted->chunkDone(0, 3));
    EXPECT_EQ(rebooted->completedBytes(0),
              journal.completedBytes(0));

    // Any identity mismatch resets: different payload digest...
    Digest other = digest;
    other[1] = 0xBB;
    StagingJournal fresh = *rebooted;
    EXPECT_FALSE(fresh.begin(0, other, 10'000, 1024));
    EXPECT_FALSE(fresh.chunkDone(0, 0));

    // ...different size or granularity.
    StagingJournal resized = *rebooted;
    EXPECT_FALSE(resized.begin(0, digest, 12'000, 1024));
    StagingJournal rechunked = *rebooted;
    EXPECT_FALSE(rechunked.begin(0, digest, 10'000, 512));

    // Slots are independent; clear() drops one record only.
    journal.begin(1, other, 4'000, 1024);
    journal.clear(1);
    EXPECT_FALSE(journal.active(1));
    EXPECT_TRUE(journal.active(0));
}

// ------------------------------------------------------ cycle plane

/** A full machine with a LiveInstall agent attached. */
struct LiveRig
{
    sim::SystemConfig config;
    sim::WorkloadProfile profile;
    std::unique_ptr<sim::SyntheticWorkload> workload;
    std::unique_ptr<sim::System> system;
    secure::KeyTable update_keys;
    RollbackStore rollback{64};
    StagingJournal journal;
    std::unique_ptr<UpdateEngine> updater;
    std::unique_ptr<LiveInstall> live;

    explicit LiveRig(KeyRing &ring)
        : config(sim::paperConfig(secure::SecurityModel::OtpSnc)),
          profile(sim::benchmarkProfile("gcc"))
    {
        workload = std::make_unique<sim::SyntheticWorkload>(
            profile, config.l2.line_size);
        system = std::make_unique<sim::System>(config, *workload);
        updater = std::make_unique<UpdateEngine>(
            ring.vendor.publicKey(), ring.processor, update_keys,
            rollback, StagingConfig{kStagingBase, kSlotSize});
        updater->setJournal(&journal);

        LiveInstallConfig live_config;
        live_config.line_bytes = kLine;
        live_config.pacing = InstallPacing::Arbiter;
        live_config.transport.chunk_bytes = 1024;
        live_config.transport.cycles_per_chunk = 64;
        live = std::make_unique<LiveInstall>(live_config, *system,
                                             *updater, 1);
        system->attachAgent(live.get());
    }

    bool runToCompletion()
    {
        for (int chunk = 0; chunk < 600 && !live->done(); ++chunk)
            system->run(25'000);
        return live->done();
    }
};

TEST(Delta, LiveDeltaInstallLandsIdenticalBytes)
{
    KeyRing ring(0xDE181);
    const ReleasePair pair = makePair(ring, 64ull << 10, 0.10, 0xB2);

    // Functional full-bundle reference.
    FunctionalRig reference(ring);
    ASSERT_TRUE(reference.install(pair.base));
    ASSERT_TRUE(reference.install(pair.next));

    // Live machine: base installed functionally, successor shipped
    // as a delta through the unified plane.
    LiveRig rig(ring);
    ASSERT_TRUE(rig.updater
                    ->install(pair.base, 1, rig.system->mainMemory(),
                              rig.system->virtualMemory(), 1,
                              rig.system->engine())
                    .ok());
    rig.live->startDelta(pair.delta, rig.system->core().cycles());
    ASSERT_TRUE(rig.runToCompletion());
    ASSERT_EQ(rig.live->phase(), LiveInstallPhase::Done)
        << (rig.live->result() ? rig.live->result()->detail
                               : rig.live->admission()->detail);

    // The delta stream on the wire is the small thing; the staged
    // slot holds the full reconstructed bundle.
    const uint64_t framed_full =
        kSlotHeaderBytes + pair.next.serializedSize();
    const uint64_t framed_delta =
        kSlotHeaderBytes + pair.delta.serializedSize();
    EXPECT_LT(framed_delta, framed_full / 2);
    EXPECT_EQ(rig.live->stagedBytesWritten(), framed_full);

    EXPECT_EQ(rig.updater->activeSlot(),
              reference.updater->activeSlot());
    std::vector<uint8_t> got(framed_full);
    rig.system->mainMemory().read(
        rig.updater->slotBase(rig.updater->activeSlot()), got.data(),
        got.size());
    EXPECT_EQ(got, reference.activeSlotBytes(framed_full));
    EXPECT_EQ(rig.updater->activeManifest()->serialize(),
              reference.updater->activeManifest()->serialize());
    EXPECT_EQ(rig.rollback.current("fw"),
              reference.rollback.current("fw"));

    // Activation success retired the journal record for the slot.
    EXPECT_FALSE(rig.journal.active(rig.updater->activeSlot()));
}

TEST(Delta, LiveBaseMismatchFailsSoCallerCanFallBack)
{
    KeyRing ring(0xDE182);
    const ReleasePair pair = makePair(ring, 16ull << 10, 0.10, 0xB3);

    // Nothing installed: the delta admission must render
    // BaseMismatch and fail the install without touching state.
    LiveRig rig(ring);
    rig.live->startDelta(pair.delta, 0);
    ASSERT_TRUE(rig.runToCompletion());
    EXPECT_EQ(rig.live->phase(), LiveInstallPhase::Failed);
    ASSERT_TRUE(rig.live->admission().has_value());
    EXPECT_EQ(rig.live->admission()->status,
              UpdateStatus::BaseMismatch);
    EXPECT_EQ(rig.live->stagedBytesWritten(), 0u);

    // The fallback the verdict asks for: the full bundle lands on
    // the same machine (base first — the counter is monotonic).
    rig.live->start(pair.base, rig.system->core().cycles());
    ASSERT_TRUE(rig.runToCompletion());
    ASSERT_EQ(rig.live->phase(), LiveInstallPhase::Done);
    rig.live->start(pair.next, rig.system->core().cycles());
    ASSERT_TRUE(rig.runToCompletion());
    EXPECT_EQ(rig.live->phase(), LiveInstallPhase::Done);
}

} // namespace
