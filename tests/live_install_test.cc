/**
 * @file
 * Unified-plane install tests.
 *
 * The tentpole property: one System run advances real bytes and real
 * cycles together, and the two planes can never disagree — for every
 * (image size x cipher x engine latency) cell, LiveInstall's final
 * slot bytes, active manifest and rollback counter are byte-identical
 * to a pure functional UpdateEngine run of the same bundle. On the
 * cycle side, the arbiter-paced install must cost the foreground
 * strictly less than the PR-4 fixed pacing at both engine latencies.
 */

#include <gtest/gtest.h>

#include "crypto/latency.hh"
#include "exp/runner.hh"
#include "ota/transport.hh"
#include "sim/profiles.hh"
#include "sim/system.hh"
#include "update/image_builder.hh"
#include "update/install_timing.hh"
#include "update/live_install.hh"
#include "update/update_engine.hh"

namespace
{

using namespace secproc;
using namespace secproc::update;

constexpr uint32_t kLine = 128;
constexpr uint64_t kStagingBase = 0x4000'0000;
constexpr uint64_t kSlotSize = 1ull << 20;
/** Installed image lives far above every workload footprint, so
 *  activation's line-state registration cannot perturb the
 *  foreground's fill timing. */
constexpr uint64_t kImageBase = 0x0800'0000;

secure::CipherKind
cipherFor(const std::string &bench)
{
    return bench == "aes128" ? secure::CipherKind::Aes128
                             : secure::CipherKind::Des;
}

/** Vendor + processor key material, shared by both planes' rigs. */
struct KeyRing
{
    util::Rng rng;
    ImageBuilder vendor;
    crypto::RsaKeyPair processor;

    explicit KeyRing(uint64_t seed)
        : rng(seed), vendor(crypto::rsaGenerate(512, rng)),
          processor(crypto::rsaGenerate(512, rng))
    {}
};

UpdateBundle
makeBundle(KeyRing &keys, uint32_t version, uint64_t image_bytes,
           secure::CipherKind cipher)
{
    xom::PlainProgram program;
    program.title = "fw";
    program.entry_point = kImageBase;
    xom::PlainProgram::PlainSection text;
    text.name = ".text";
    text.vaddr = kImageBase;
    text.bytes.resize(image_bytes, static_cast<uint8_t>(version));
    program.sections = {text};

    UpdateSpec spec;
    spec.image_version = version;
    spec.rollback_counter = version;
    spec.cipher = cipher;
    return keys.vendor.build(program, spec, keys.processor.pub,
                             keys.rng);
}

/** The pure-functional reference device (zero simulated cycles). */
struct FunctionalRig
{
    secure::KeyTable keys;
    mem::MemoryChannel channel;
    std::unique_ptr<secure::ProtectionEngine> engine;
    mem::MainMemory memory;
    mem::VirtualMemory vm;
    RollbackStore rollback{64};
    std::unique_ptr<UpdateEngine> updater;

    explicit FunctionalRig(KeyRing &ring)
    {
        secure::ProtectionConfig config;
        config.line_size = kLine;
        config.snc.l2_line_size = kLine;
        engine = secure::makeProtectionEngine(config, channel, keys);
        updater = std::make_unique<UpdateEngine>(
            ring.vendor.publicKey(), ring.processor, keys, rollback,
            StagingConfig{kStagingBase, kSlotSize});
    }
};

/** A full machine with a LiveInstall agent attached. */
struct LiveRig
{
    sim::SystemConfig config;
    sim::WorkloadProfile profile;
    std::unique_ptr<sim::SyntheticWorkload> workload;
    std::unique_ptr<sim::System> system;
    secure::KeyTable update_keys;
    RollbackStore rollback{64};
    std::unique_ptr<UpdateEngine> updater;
    std::unique_ptr<LiveInstall> live;

    LiveRig(KeyRing &ring, uint32_t crypto_latency,
            const LiveInstallConfig &live_config)
        : config(sim::paperConfig(secure::SecurityModel::OtpSnc)),
          profile(sim::benchmarkProfile("gcc"))
    {
        config.protection.crypto.latency = crypto_latency;
        workload = std::make_unique<sim::SyntheticWorkload>(
            profile, config.l2.line_size);
        system = std::make_unique<sim::System>(config, *workload);
        updater = std::make_unique<UpdateEngine>(
            ring.vendor.publicKey(), ring.processor, update_keys,
            rollback, StagingConfig{kStagingBase, kSlotSize});
        live = std::make_unique<LiveInstall>(live_config, *system,
                                             *updater, 1);
        system->attachAgent(live.get());
    }

    /** Run until the install lands (or a generous cap trips). */
    bool
    runToCompletion()
    {
        for (int chunk = 0; chunk < 600 && !live->done(); ++chunk)
            system->run(25'000);
        return live->done();
    }
};

LiveInstallConfig
liveConfig(ota::TransportConfig transport,
           InstallPacing pacing = InstallPacing::Arbiter)
{
    LiveInstallConfig config;
    config.line_bytes = kLine;
    config.pacing = pacing;
    config.transport = transport;
    return config;
}

ota::TransportConfig
lossyTransport()
{
    ota::TransportConfig transport;
    transport.chunk_bytes = 1024;
    transport.cycles_per_chunk = 256;
    transport.loss_rate = 0.10;
    transport.burst_length = 2.0;
    transport.reorder_rate = 0.15;
    transport.retransmit_delay = 4096;
    transport.seed = 0xD15C;
    return transport;
}

ota::TransportConfig
fastTransport()
{
    ota::TransportConfig transport;
    transport.chunk_bytes = 1024;
    transport.cycles_per_chunk = 64;
    return transport;
}

// -------------------------------------------------------- differential

/**
 * One differential cell: a live (timed, lossy-transport,
 * arbiter-paced) install and a pure functional install of the same
 * bundle must land byte-identical device state.
 */
exp::CellOutput
differentialCell(uint64_t image_bytes, uint32_t crypto_latency,
                 const std::string &bench, uint64_t key_seed)
{
    KeyRing ring(key_seed);
    const secure::CipherKind cipher = cipherFor(bench);
    const UpdateBundle bundle =
        makeBundle(ring, 2, image_bytes, cipher);

    // Pure functional reference: install v1 then v2.
    FunctionalRig reference(ring);
    exp::CellOutput cell;
    cell.measured = 0.0;
    if (!reference.updater
             ->install(makeBundle(ring, 1, image_bytes, cipher), 1,
                       reference.memory, reference.vm, 1,
                       *reference.engine)
             .ok())
        return cell;
    if (!reference.updater
             ->install(bundle, 1, reference.memory, reference.vm, 1,
                       *reference.engine)
             .ok())
        return cell;

    // Live machine: same v1 baseline functionally, then v2 through
    // the unified plane while the foreground runs.
    LiveRig rig(ring, crypto_latency, liveConfig(lossyTransport()));
    if (!rig.updater
             ->install(makeBundle(ring, 1, image_bytes, cipher), 1,
                       rig.system->mainMemory(),
                       rig.system->virtualMemory(), 1,
                       rig.system->engine())
             .ok())
        return cell;
    rig.live->start(bundle, rig.system->core().cycles());
    if (!rig.runToCompletion())
        return cell;
    cell.extras.emplace_back(
        "install_ok",
        rig.live->phase() == LiveInstallPhase::Done ? 1.0 : 0.0);
    cell.extras.emplace_back(
        "retransmit_passes",
        static_cast<double>(rig.live->transport().retransmitPasses()));
    if (rig.live->phase() != LiveInstallPhase::Done)
        return cell;

    // The planes can never disagree: slot bytes, manifest, counter.
    const uint64_t framed_size =
        kSlotHeaderBytes + bundle.serialize().size();
    const uint32_t slot = reference.updater->activeSlot();
    if (rig.updater->activeSlot() != slot)
        return cell;
    std::vector<uint8_t> want(framed_size);
    std::vector<uint8_t> got(framed_size);
    reference.memory.read(reference.updater->slotBase(slot),
                          want.data(), want.size());
    rig.system->mainMemory().read(rig.updater->slotBase(slot),
                                  got.data(), got.size());
    const bool bytes_match = want == got;
    const bool manifest_match =
        rig.updater->activeManifest().has_value() &&
        reference.updater->activeManifest().has_value() &&
        rig.updater->activeManifest()->serialize() ==
            reference.updater->activeManifest()->serialize();
    const bool counter_match =
        rig.rollback.current("fw") ==
        reference.rollback.current("fw");
    cell.extras.emplace_back("bytes_match", bytes_match ? 1.0 : 0.0);
    cell.extras.emplace_back("manifest_match",
                             manifest_match ? 1.0 : 0.0);
    cell.extras.emplace_back("counter_match",
                             counter_match ? 1.0 : 0.0);
    cell.measured =
        bytes_match && manifest_match && counter_match ? 100.0 : 0.0;
    return cell;
}

TEST(LiveInstallDifferential, PlanesNeverDisagree)
{
    struct Variant
    {
        const char *label;
        uint64_t image_bytes;
        uint32_t crypto_latency;
    };
    const Variant variants[] = {
        {"8KB-c50", 8ull << 10, crypto::kPaperCryptoLatency},
        {"8KB-c102", 8ull << 10, crypto::kStrongCipherLatency},
        {"32KB-c50", 32ull << 10, crypto::kPaperCryptoLatency},
        {"32KB-c102", 32ull << 10, crypto::kStrongCipherLatency},
    };

    exp::ExperimentSpec spec;
    spec.name = "live_install_differential";
    spec.title = "Unified-plane vs pure-functional installs";
    spec.subtitle = "% of device state identical (must be 100)";
    spec.benchmarks = {"des", "aes128"};
    uint64_t seed = 0x11FE;
    for (const Variant &variant : variants) {
        const uint64_t key_seed = seed++;
        spec.addCustom(
            variant.label,
            [variant, key_seed](const std::string &bench,
                                const exp::RunOptions &) {
                return differentialCell(variant.image_bytes,
                                        variant.crypto_latency, bench,
                                        key_seed);
            });
    }

    exp::RunnerOptions runner;
    runner.threads = 2;
    const exp::Report report = exp::Runner(runner).run(spec);
    size_t checked = 0;
    for (const exp::CellResult &cell : report.cells()) {
        ASSERT_TRUE(cell.measured.has_value());
        EXPECT_DOUBLE_EQ(*cell.measured, 100.0)
            << cell.variant << "/" << cell.bench
            << ": the functional and cycle planes disagree";
        ++checked;
    }
    EXPECT_EQ(checked, 8u);
}

// ------------------------------------------------- unified verdicts

TEST(LiveInstall, OneRunRendersBothVerdicts)
{
    KeyRing ring(0x77AA);
    const UpdateBundle bundle =
        makeBundle(ring, 1, 16ull << 10, secure::CipherKind::Des);

    // Baseline: the same machine with nothing installing.
    sim::SystemConfig config =
        sim::paperConfig(secure::SecurityModel::OtpSnc);
    sim::SyntheticWorkload alone_workload(
        sim::benchmarkProfile("gcc"), config.l2.line_size);
    sim::System alone(config, alone_workload);
    alone.run(400'000);

    LiveRig rig(ring, crypto::kPaperCryptoLatency,
                liveConfig(lossyTransport()));
    rig.live->start(bundle, 0);
    rig.system->run(400'000);

    // Functional verdict from the very same run...
    ASSERT_EQ(rig.live->phase(), LiveInstallPhase::Done)
        << "install did not land within the run";
    ASSERT_TRUE(rig.live->result().has_value());
    EXPECT_TRUE(rig.live->result()->ok());
    EXPECT_TRUE(rig.live->admission()->ok());
    EXPECT_EQ(rig.rollback.current("fw"), 1u);
    EXPECT_GT(rig.live->activatedAt(), 0u);
    EXPECT_EQ(rig.live->stagedBytesWritten(),
              kSlotHeaderBytes + bundle.serialize().size());

    // ...and the cycle verdict: the install cost the foreground
    // cycles, attributed to the installer's channel agents.
    EXPECT_GT(rig.system->core().cycles(), alone.core().cycles());
    EXPECT_GT(rig.system->channel().agentBytes(rig.live->agent()), 0u);
    EXPECT_GT(rig.system->channel().agentBytes(rig.live->dmaAgent()),
              0u);
    EXPECT_GT(rig.system->channel().agentStallCycles(
                  rig.live->agent()),
              0u)
        << "an arbiter-paced install must have queued behind the "
           "foreground at least once";
    rig.system->channel().assertFullyAttributed();
}

/** Foreground cycles for a 400k-instruction gcc run under a given
 *  install regime. */
uint64_t
foregroundCycles(uint32_t crypto_latency, const char *mode)
{
    sim::SystemConfig config =
        sim::paperConfig(secure::SecurityModel::OtpSnc);
    config.protection.crypto.latency = crypto_latency;
    sim::SyntheticWorkload workload(sim::benchmarkProfile("gcc"),
                                    config.l2.line_size);
    sim::System system(config, workload);

    // Fixed pacing: the PR-4 InstallTiming replay, repeating 256KB
    // installs for the whole run.
    InstallTimingConfig itc;
    itc.line_bytes = config.l2.line_size;
    InstallTiming fixed(itc, system.channel(), system.cryptoEngine());

    // Self-throttled: the unified-plane agent, same 256KB image.
    KeyRing ring(0x5EED);
    secure::KeyTable update_keys;
    RollbackStore rollback(64);
    UpdateEngine updater(ring.vendor.publicKey(), ring.processor,
                         update_keys, rollback,
                         StagingConfig{kStagingBase, kSlotSize});
    LiveInstall live(liveConfig(fastTransport()), system, updater, 1);

    const uint64_t image_bytes = 256ull << 10;
    const bool live_mode = std::string(mode) == "live";
    uint32_t version = 1;
    if (std::string(mode) == "fixed") {
        fixed.start(InstallPlan::fromImageBytes(
                        image_bytes, config.l2.line_size),
                    0, /*repeat=*/true);
        system.attachAgent(&fixed);
    } else if (live_mode) {
        live.start(makeBundle(ring, version++, image_bytes,
                              secure::CipherKind::Des),
                   0);
        system.attachAgent(&live);
    }

    // Continuous pressure on both sides: the fixed replay repeats by
    // itself; the live agent is restarted with the next version the
    // moment an install lands, so the comparison is steady-state
    // against steady-state.
    auto run = [&](uint64_t instructions) {
        for (uint64_t ran = 0; ran < instructions; ran += 10'000) {
            system.run(10'000);
            if (live_mode && live.done()) {
                EXPECT_EQ(live.phase(), LiveInstallPhase::Done);
                live.start(makeBundle(ring, version++, image_bytes,
                                      secure::CipherKind::Des),
                           system.core().cycles());
            }
        }
    };
    run(100'000);
    system.beginMeasurement();
    run(400'000);
    return system.stats().cycles;
}

TEST(LiveInstall, ArbiterThrottlesBelowFixedPace)
{
    // The acceptance criterion: at both engine latencies, the
    // self-throttled 256KB install costs the foreground strictly
    // less than PR 4's fixed pacing.
    for (const uint32_t latency :
         {crypto::kPaperCryptoLatency, crypto::kStrongCipherLatency}) {
        const uint64_t alone = foregroundCycles(latency, "none");
        const uint64_t fixed = foregroundCycles(latency, "fixed");
        const uint64_t live = foregroundCycles(latency, "live");
        const double fixed_slowdown =
            100.0 * (static_cast<double>(fixed) /
                         static_cast<double>(alone) -
                     1.0);
        const double live_slowdown =
            100.0 * (static_cast<double>(live) /
                         static_cast<double>(alone) -
                     1.0);
        EXPECT_GT(fixed_slowdown, 0.0) << "c" << latency;
        EXPECT_GE(live_slowdown, 0.0) << "c" << latency;
        EXPECT_LT(live_slowdown, fixed_slowdown)
            << "c" << latency
            << ": the arbiter-paced install must undercut fixed "
               "pacing";
    }
}

TEST(LiveInstall, SystemResetDropsInFlightWork)
{
    KeyRing ring(0xABCD);
    const UpdateBundle bundle =
        makeBundle(ring, 1, 32ull << 10, secure::CipherKind::Des);
    LiveRig rig(ring, crypto::kPaperCryptoLatency,
                liveConfig(fastTransport()));
    rig.live->start(bundle, 0);

    // Run until the slot is partially written: 500-instruction steps
    // cannot cover the whole stage stream's bus time, so the cut
    // lands mid-stage with a genuinely torn slot.
    while (rig.live->stagedBytesWritten() == 0 &&
           rig.system->core().cycles() < 2'000'000)
        rig.system->run(500);
    ASSERT_FALSE(rig.live->done());
    ASSERT_EQ(rig.live->phase(), LiveInstallPhase::Stage);
    ASSERT_LT(rig.live->stagedBytesWritten(),
              kSlotHeaderBytes + bundle.serialize().size())
        << "the cut must leave a torn slot";

    rig.system->reset();
    EXPECT_TRUE(rig.live->done()) << "reset abandons the install";
    EXPECT_EQ(rig.system->channel().backgroundQueued(), 0u);
    EXPECT_EQ(rig.system->channel().busyUntil(), 0u);
    EXPECT_EQ(rig.system->cryptoEngine().busyUntil(), 0u);
    rig.system->channel().assertFullyAttributed();

    // The device recovers: a clean functional re-install of the
    // same bundle (nothing was committed) succeeds.
    EXPECT_FALSE(rig.updater->stagedPending());
    EXPECT_TRUE(rig.updater
                    ->install(bundle, 1, rig.system->mainMemory(),
                              rig.system->virtualMemory(), 1,
                              rig.system->engine())
                    .ok());

    // And the agent can start a fresh install afterwards.
    rig.live->start(makeBundle(ring, 2, 8ull << 10,
                               secure::CipherKind::Des),
                    rig.system->core().cycles());
    EXPECT_TRUE(rig.runToCompletion());
    EXPECT_EQ(rig.live->phase(), LiveInstallPhase::Done);
}

} // namespace
