/**
 * @file
 * Differential tests for the flattened memory plane.
 *
 * Each flat structure that replaced a hash-map layout is run against
 * the retired layout's semantics (std::unordered_map references)
 * under randomized workloads: sparse, dense and high-bit index
 * patterns, rebase/share aliasing, clears and context-switch storms.
 * The micro-TLB tests run with SECPROC_TLB_VERIFY=1 so every TLB hit
 * is re-walked against the radix structures — a stale entry after a
 * rebase/share/addRegion is a fatal, not a silent wrong answer.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mem/main_memory.hh"
#include "mem/virtual_memory.hh"
#include "secure/integrity.hh"
#include "util/radix_array.hh"
#include "util/random.hh"

namespace
{

using namespace secproc;
using mem::Asid;
using mem::MainMemory;
using mem::Region;
using mem::RegionKind;
using mem::VirtualMemory;

/**
 * Index generator covering the patterns that broke (or would break)
 * hash layouts: dense sequential runs, mid-range sparse scatter, and
 * high-bit addresses (mmap-style VAs, synthetic proxies >= 2^40 that
 * land in the RadixArray overflow directory).
 */
uint64_t
mixedIndex(util::Rng &rng)
{
    switch (rng.nextRange(4)) {
      case 0: return rng.nextRange(4096);                   // dense
      case 1: return rng.nextRange(1 << 24);                // sparse
      case 2: return (1ull << 40) + rng.nextRange(1 << 16); // overflow
      default: // very high bits (group well past the dense directory)
        return (1ull << 60) + rng.nextRange(1 << 20);
    }
}

// --------------------------------------------------------- RadixArray

TEST(RadixArrayDifferential, RandomOpsMatchUnorderedMap)
{
    util::RadixArray<uint64_t> flat;
    std::unordered_map<uint64_t, uint64_t> reference;
    util::Rng rng(0xF1A7);

    for (int op = 0; op < 50'000; ++op) {
        const uint64_t index = mixedIndex(rng);
        switch (rng.nextRange(8)) {
          case 0: { // erase
            const bool erased_flat = flat.erase(index);
            const bool erased_ref = reference.erase(index) > 0;
            ASSERT_EQ(erased_flat, erased_ref) << "index " << index;
            break;
          }
          case 1: { // rare full clear
            if (rng.nextRange(1000) == 0) {
                flat.clear();
                reference.clear();
            }
            break;
          }
          default: { // insert/overwrite (value 0 must be storable)
            const uint64_t value = rng.nextRange(4);
            flat.insert(index, value);
            reference[index] = value;
            break;
          }
        }
        const uint64_t *found = flat.find(index);
        const auto it = reference.find(index);
        ASSERT_EQ(found != nullptr, it != reference.end())
            << "index " << index;
        if (found != nullptr) {
            ASSERT_EQ(*found, it->second) << "index " << index;
        }
        ASSERT_EQ(flat.size(), reference.size());
    }
}

TEST(RadixArrayDifferential, ForEachIsAscendingAndComplete)
{
    util::RadixArray<uint64_t> flat;
    std::unordered_map<uint64_t, uint64_t> reference;
    util::Rng rng(0xF1A8);
    for (int i = 0; i < 20'000; ++i) {
        const uint64_t index = mixedIndex(rng);
        flat.insert(index, index * 3);
        reference[index] = index * 3;
    }

    uint64_t last = 0;
    bool first = true;
    size_t visited = 0;
    flat.forEach([&](uint64_t index, const uint64_t &value) {
        if (!first) {
            ASSERT_GT(index, last);
        }
        first = false;
        last = index;
        ++visited;
        const auto it = reference.find(index);
        ASSERT_NE(it, reference.end()) << "index " << index;
        ASSERT_EQ(value, it->second);
    });
    ASSERT_EQ(visited, reference.size());
}

// --------------------------------------------------------- MainMemory

TEST(MainMemoryDifferential, RandomReadWriteMatchesByteMap)
{
    MainMemory memory;
    std::unordered_map<uint64_t, uint8_t> reference; // written bytes
    util::Rng rng(0x3E3);

    auto random_base = [&rng]() -> uint64_t {
        switch (rng.nextRange(3)) {
          case 0: return rng.nextRange(1 << 20);            // dense
          case 1: return rng.nextRange(1ull << 34);         // sparse
          // Page numbers past the dense directory (overflow path).
          default: return (1ull << 44) + rng.nextRange(1 << 22);
        }
    };

    std::vector<uint8_t> buffer(256);
    for (int op = 0; op < 6'000; ++op) {
        // Length chosen to regularly straddle page boundaries.
        const uint64_t base = random_base();
        const size_t len = 1 + rng.nextRange(buffer.size());
        if (rng.nextRange(2) == 0) {
            rng.fillBytes(buffer.data(), len);
            memory.write(base, buffer.data(), len);
            for (size_t i = 0; i < len; ++i)
                reference[base + i] = buffer[i];
        } else {
            memory.read(base, buffer.data(), len);
            for (size_t i = 0; i < len; ++i) {
                const auto it = reference.find(base + i);
                const uint8_t want =
                    it == reference.end() ? 0 : it->second;
                ASSERT_EQ(buffer[i], want)
                    << "addr " << std::hex << base + i;
            }
        }
    }
    ASSERT_GT(memory.residentPages(), 0u);
    ASSERT_GE(memory.arenaBytesReserved(),
              memory.residentPages() * MainMemory::kPageSize);
    ASSERT_FALSE(reference.empty());

    memory.clear();
    ASSERT_EQ(memory.residentPages(), 0u);
    uint8_t byte = 0xFF;
    memory.read(reference.begin()->first, &byte, 1);
    ASSERT_EQ(byte, 0); // everything reads as zero after clear
}

// --------------------------------------------------------- PageKeyHash

TEST(PageKeyHash, OldPackingCollidesNewMixDoesNot)
{
    using PageKey = VirtualMemory::PageKey;
    const VirtualMemory::PageKeyHash hash;

    // The retired hash packed the pair as (asid << 48) ^ vpn, which
    // collides whenever two keys differ only in vpn bits >= 48 that
    // mirror the asid difference. Construct such pairs and require
    // the mix64-based hash to separate every one of them.
    util::Rng rng(0x4A5);
    for (int i = 0; i < 10'000; ++i) {
        const Asid asid_a = static_cast<Asid>(rng.nextRange(1 << 16));
        const Asid asid_b = static_cast<Asid>(rng.nextRange(1 << 16));
        const uint64_t vpn_a = rng.next64() >> 2; // high bits set
        const uint64_t vpn_b =
            vpn_a ^ (static_cast<uint64_t>(asid_a ^ asid_b) << 48);
        const PageKey a{asid_a, vpn_a};
        const PageKey b{asid_b, vpn_b};
        if (a == b)
            continue;
        const uint64_t old_a =
            (static_cast<uint64_t>(asid_a) << 48) ^ vpn_a;
        const uint64_t old_b =
            (static_cast<uint64_t>(asid_b) << 48) ^ vpn_b;
        ASSERT_EQ(old_a, old_b); // the old packing collides...
        ASSERT_NE(hash(a), hash(b)); // ...the mix-based hash must not
    }

    // And no collisions at all across a large sampled key set (a
    // 64-bit hash colliding on 100k random keys would be ~2^-33).
    std::unordered_set<size_t> seen;
    for (int i = 0; i < 100'000; ++i) {
        const PageKey key{static_cast<Asid>(rng.nextRange(1 << 16)),
                          rng.next64()};
        ASSERT_TRUE(seen.insert(hash(key)).second);
    }
}

// ------------------------------------------------------ VirtualMemory

/**
 * Reference model of the retired unordered_map page-table layout,
 * mirroring VirtualMemory's allocation discipline exactly: frames
 * handed out from a counter on first touch, rebase re-frames in
 * ascending vpn order.
 */
struct ReferenceVm
{
    using PageKey = VirtualMemory::PageKey;
    std::unordered_map<PageKey, uint64_t, VirtualMemory::PageKeyHash>
        frames;
    uint64_t next_frame = 1;

    uint64_t
    translate(Asid asid, uint64_t vaddr)
    {
        const PageKey key{asid, vaddr / VirtualMemory::kPageSize};
        auto [it, inserted] = frames.try_emplace(key, 0);
        if (inserted)
            it->second = next_frame++;
        return it->second * VirtualMemory::kPageSize +
               vaddr % VirtualMemory::kPageSize;
    }

    void
    rebase(Asid asid)
    {
        std::vector<uint64_t> vpns;
        for (const auto &[key, frame] : frames) {
            if (key.asid == asid)
                vpns.push_back(key.vpn);
        }
        std::sort(vpns.begin(), vpns.end());
        for (const uint64_t vpn : vpns)
            frames[PageKey{asid, vpn}] = next_frame++;
    }

    void
    share(Asid asid_a, uint64_t vaddr_a, Asid asid_b, uint64_t vaddr_b,
          uint64_t length)
    {
        const uint64_t pages =
            (length + VirtualMemory::kPageSize - 1) /
            VirtualMemory::kPageSize;
        for (uint64_t i = 0; i < pages; ++i) {
            const uint64_t frame =
                translate(asid_a,
                          vaddr_a + i * VirtualMemory::kPageSize) /
                VirtualMemory::kPageSize;
            frames[PageKey{asid_b,
                           vaddr_b / VirtualMemory::kPageSize + i}] =
                frame;
        }
    }
};

/** TLB verification on: every hit is cross-checked against a walk. */
VirtualMemory
verifiedVm()
{
    setenv("SECPROC_TLB_VERIFY", "1", 1);
    return VirtualMemory();
}

TEST(VirtualMemoryDifferential, StormMatchesReferenceModel)
{
    VirtualMemory vm = verifiedVm();
    ReferenceVm reference;
    util::Rng rng(0x7151);

    // Context-switch storm: a handful of ASIDs interleaved over
    // overlapping vpn sets (so TLB slots are contended across ASIDs),
    // with random rebases mixed in.
    constexpr Asid kAsids = 8;
    auto random_vaddr = [&rng]() -> uint64_t {
        switch (rng.nextRange(3)) {
          case 0: return rng.nextRange(1 << 22);     // dense pages
          case 1: return rng.nextRange(1ull << 32);  // sparse
          default: // high-bit vpns (page-table overflow directory)
            return (1ull << 61) + rng.nextRange(1ull << 24);
        }
    };

    for (int op = 0; op < 60'000; ++op) {
        const Asid asid = static_cast<Asid>(rng.nextRange(kAsids));
        if (rng.nextRange(2000) == 0) {
            vm.rebase(asid);
            reference.rebase(asid);
            continue;
        }
        const uint64_t vaddr = random_vaddr();
        ASSERT_EQ(vm.translate(asid, vaddr),
                  reference.translate(asid, vaddr))
            << "asid " << asid << " vaddr " << std::hex << vaddr;
    }
    ASSERT_EQ(vm.allocatedFrames(), reference.next_frame);
    ASSERT_GT(vm.tlbHits(), 0u);
    ASSERT_GT(vm.tlbMisses(), 0u);
}

TEST(VirtualMemoryDifferential, ProbeNeverAllocates)
{
    VirtualMemory vm = verifiedVm();
    ReferenceVm reference;
    util::Rng rng(0x7152);

    for (int op = 0; op < 20'000; ++op) {
        const Asid asid = static_cast<Asid>(rng.nextRange(4));
        const uint64_t vaddr = rng.nextRange(1ull << 34);
        if (rng.nextRange(2) == 0) {
            ASSERT_EQ(vm.translate(asid, vaddr),
                      reference.translate(asid, vaddr));
        } else {
            const auto got = vm.probeTranslate(asid, vaddr);
            const auto key = VirtualMemory::PageKey{
                asid, vaddr / VirtualMemory::kPageSize};
            const auto it = reference.frames.find(key);
            ASSERT_EQ(got.has_value(), it != reference.frames.end());
            if (got.has_value()) {
                ASSERT_EQ(*got,
                          it->second * VirtualMemory::kPageSize +
                              vaddr % VirtualMemory::kPageSize);
            }
        }
    }
    ASSERT_EQ(vm.allocatedFrames(), reference.next_frame);
}

TEST(VirtualMemoryDifferential, ShareAliasesAndRebaseRestoresDistinct)
{
    VirtualMemory vm = verifiedVm();
    ReferenceVm reference;
    constexpr uint64_t kLen = 4 * VirtualMemory::kPageSize;
    const uint64_t base_a = 0x10'0000;
    const uint64_t base_b = 0x90'0000;

    // Touch one side first so share() aliases existing frames.
    vm.translate(1, base_a);
    reference.translate(1, base_a);
    vm.share(1, base_a, 2, base_b, kLen);
    reference.share(1, base_a, 2, base_b, kLen);

    for (uint64_t off = 0; off < kLen; off += 64) {
        ASSERT_EQ(vm.translate(1, base_a + off),
                  vm.translate(2, base_b + off));
        ASSERT_EQ(vm.translate(1, base_a + off),
                  reference.translate(1, base_a + off));
    }
    EXPECT_EQ(vm.regionKind(1, base_a), RegionKind::Shared);
    EXPECT_EQ(vm.regionKind(2, base_b + kLen - 1), RegionKind::Shared);
    // Outside the shared window the default attribute holds.
    EXPECT_EQ(vm.regionKind(2, base_b + kLen), RegionKind::Protected);

    // Rebasing one side re-frames it; the other keeps its frames, so
    // the alias is broken exactly as the unordered_map layout did it.
    vm.rebase(2);
    reference.rebase(2);
    for (uint64_t off = 0; off < kLen; off += VirtualMemory::kPageSize) {
        ASSERT_EQ(vm.translate(2, base_b + off),
                  reference.translate(2, base_b + off));
        ASSERT_NE(vm.translate(1, base_a + off),
                  vm.translate(2, base_b + off));
    }
}

// ---------------------------------------------------------- micro-TLB

TEST(MicroTlb, RebaseInvalidatesCachedTranslation)
{
    VirtualMemory vm = verifiedVm();
    const uint64_t vaddr = 0x40'0000;
    const uint64_t before = vm.translate(3, vaddr);
    // Hit the TLB (verified against the walk by SECPROC_TLB_VERIFY).
    ASSERT_EQ(vm.translate(3, vaddr), before);
    ASSERT_GT(vm.tlbHits(), 0u);

    vm.rebase(3);
    // A stale TLB entry would either fatal under verification or
    // return the old frame; the fresh walk must see the new one.
    const uint64_t after = vm.translate(3, vaddr);
    ASSERT_NE(after, before);
    ASSERT_EQ(after % VirtualMemory::kPageSize,
              vaddr % VirtualMemory::kPageSize);
}

TEST(MicroTlb, ShareInvalidatesTargetTranslation)
{
    VirtualMemory vm = verifiedVm();
    const uint64_t base_a = 0x100'0000;
    const uint64_t base_b = 0x200'0000;
    const uint64_t before_b = vm.translate(5, base_b);
    ASSERT_EQ(vm.translate(5, base_b), before_b); // cached

    vm.share(4, base_a, 5, base_b, VirtualMemory::kPageSize);
    const uint64_t after_b = vm.translate(5, base_b);
    ASSERT_NE(after_b, before_b); // remapped to asid 4's frame
    ASSERT_EQ(after_b, vm.translate(4, base_a));
}

TEST(MicroTlb, AddRegionInvalidatesCachedKind)
{
    VirtualMemory vm = verifiedVm();
    const uint64_t vaddr = 0x300'0000;
    vm.translate(6, vaddr);
    // Cache the attribute (whole page is currently unmapped-by-
    // regions, so the default Protected kind is cacheable).
    ASSERT_EQ(vm.regionKind(6, vaddr), RegionKind::Protected);
    ASSERT_EQ(vm.regionKind(6, vaddr), RegionKind::Protected);

    vm.addRegion(6, Region{"lib", vaddr - VirtualMemory::kPageSize,
                           vaddr + 4 * VirtualMemory::kPageSize,
                           RegionKind::Plaintext});
    // A stale cached kind here is a security bug (wrong seed class);
    // with SECPROC_TLB_VERIFY=1 a stale hit would fatal.
    ASSERT_EQ(vm.regionKind(6, vaddr), RegionKind::Plaintext);
}

// ------------------------------------------------------ MAC flat table

TEST(MacTableDifferential, MatchesUnorderedMapReference)
{
    secure::IntegrityConfig config;
    config.mode = secure::IntegrityMode::MacBlocking;
    secure::IntegrityEngine engine(config);
    engine.setMacKey(std::vector<uint8_t>(32, 0xA5));

    std::unordered_map<uint64_t, secure::LineMac> reference;
    util::Rng rng(0x3AC);

    auto random_line = [&rng, &config]() -> uint64_t {
        uint64_t line = 0;
        switch (rng.nextRange(3)) {
          case 0: line = rng.nextRange(1 << 16); break;      // dense
          case 1: line = rng.nextRange(1 << 26); break;      // sparse
          // Line indices past the dense directory (overflow path).
          default: line = (1ull << 41) + rng.nextRange(1 << 18);
        }
        return line * config.line_size;
    };

    std::vector<uint8_t> line_bytes(config.line_size);
    for (int op = 0; op < 30'000; ++op) {
        const uint64_t line_va = random_line();
        switch (rng.nextRange(3)) {
          case 0: { // store (evict path), possibly overwriting
            rng.fillBytes(line_bytes.data(), line_bytes.size());
            const secure::LineMac mac = engine.computeMac(
                line_va, static_cast<uint32_t>(rng.nextRange(16)),
                line_bytes);
            engine.storeMac(line_va, mac);
            reference[line_va] = mac;
            break;
          }
          case 1: { // adversary overwrite
            secure::LineMac mac{};
            rng.fillBytes(mac.data(), mac.size());
            engine.corruptStoredMac(line_va, mac);
            reference[line_va] = mac;
            break;
          }
          default: { // lookup
            const auto got = engine.storedMac(line_va);
            const auto it = reference.find(line_va);
            ASSERT_EQ(got.has_value(), it != reference.end())
                << "line " << std::hex << line_va;
            if (got.has_value()) {
                ASSERT_EQ(*got, it->second);
            }
            break;
          }
        }
    }
}

TEST(MacTableDifferential, VerifyMacBindsLineSeqnumAndBytes)
{
    secure::IntegrityConfig config;
    config.mode = secure::IntegrityMode::MacBlocking;
    secure::IntegrityEngine engine(config);
    engine.setMacKey(std::vector<uint8_t>(32, 0x5A));

    util::Rng rng(0x3AD);
    std::vector<uint8_t> bytes(config.line_size);
    rng.fillBytes(bytes.data(), bytes.size());

    const uint64_t line_va = (1ull << 40) + 7 * config.line_size;
    engine.storeMac(line_va, engine.computeMac(line_va, 3, bytes));

    EXPECT_TRUE(engine.verifyMac(line_va, 3, bytes));
    EXPECT_FALSE(engine.verifyMac(line_va, 4, bytes)); // replay
    EXPECT_FALSE(engine.verifyMac(line_va + config.line_size, 3,
                                  bytes)); // splice
    bytes[0] ^= 1;
    EXPECT_FALSE(engine.verifyMac(line_va, 3, bytes)); // tamper
}

} // namespace
