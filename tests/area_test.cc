/**
 * @file
 * Tests for the CactiLite area model, including the paper's Section
 * 5.4 equal-area claim that justifies Figure 8's configurations.
 */

#include <gtest/gtest.h>

#include "area/cacti_lite.hh"

namespace
{

using namespace secproc::area;

TEST(CactiLite, AreaGrowsWithCapacity)
{
    EXPECT_LT(cacheArea(128 * 1024, 4, 128),
              cacheArea(256 * 1024, 4, 128));
    EXPECT_LT(cacheArea(256 * 1024, 4, 128),
              cacheArea(512 * 1024, 4, 128));
}

TEST(CactiLite, AreaGrowsWithAssociativity)
{
    EXPECT_LT(cacheArea(256 * 1024, 2, 128),
              cacheArea(256 * 1024, 8, 128));
}

TEST(CactiLite, SmallerLinesCostMoreTags)
{
    // Same capacity, finer lines -> more tag entries -> more area.
    EXPECT_LT(cacheArea(256 * 1024, 4, 128),
              cacheArea(256 * 1024, 4, 32));
}

TEST(CactiLite, PaperOrderingHolds)
{
    // Section 5.4: 256KB-4w L2 + 64KB-32w SNC sits between a
    // 320KB-5w and a 384KB-6w L2.
    const double combined = cacheArea(256 * 1024, 4, 128) +
                            sncArea(64 * 1024, 32);
    EXPECT_GT(combined, cacheArea(320 * 1024, 5, 128));
    EXPECT_LT(combined, cacheArea(384 * 1024, 6, 128));
    EXPECT_TRUE(paperAreaOrderingHolds());
}

TEST(CactiLite, SncAreaScalesWithCapacity)
{
    EXPECT_LT(sncArea(32 * 1024, 32), sncArea(64 * 1024, 32));
    EXPECT_LT(sncArea(64 * 1024, 32), sncArea(128 * 1024, 32));
}

TEST(CactiLite, FullyAssociativeSncCostsMoreThanSetAssociative)
{
    // CAM match lines make full associativity the expensive option —
    // the motivation for Figure 7's 32-way experiment.
    EXPECT_GT(sncArea(64 * 1024, 0), sncArea(64 * 1024, 32));
}

TEST(CactiLite, SncIsCheaperThanEquivalentL2Capacity)
{
    // The 64KB SNC must cost much less than 128KB of extra L2, or
    // the paper's area argument would collapse.
    const double snc = sncArea(64 * 1024, 32);
    const double extra_l2 = cacheArea(384 * 1024, 6, 128) -
                            cacheArea(256 * 1024, 4, 128);
    EXPECT_LT(snc, extra_l2);
}

TEST(CactiLite, RejectsDegenerateGeometry)
{
    SramGeometry geometry;
    geometry.capacity_bytes = 0;
    EXPECT_DEATH_IF_SUPPORTED({ sramArea(geometry); }, "empty SRAM");
}

} // namespace
