/**
 * @file
 * Tests for the declarative experiment API (src/exp/) and the JSON
 * document model backing its reports: spec construction, slowdown
 * math, JSON round-trips, checked environment parsing, and the
 * parallel runner's bit-identical-to-serial guarantee.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "exp/cell_cache.hh"
#include "exp/cli.hh"
#include "exp/runner.hh"
#include "sim/profiles.hh"
#include "util/json.hh"
#include "util/strutil.hh"

using namespace secproc;

namespace
{

/** Tiny run lengths so grid tests stay fast. */
exp::RunOptions
quickOptions()
{
    exp::RunOptions options;
    options.warmup_instructions = 2'000;
    options.measure_instructions = 10'000;
    return options;
}

/** A small 2-variant x 3-benchmark grid. */
exp::ExperimentSpec
quickSpec()
{
    exp::ExperimentSpec spec;
    spec.name = "exp_test_grid";
    spec.title = "test grid";
    spec.benchmarks = {"gcc", "mcf", "art"};
    spec.options = quickOptions();
    spec.addBaseline("baseline", [](const std::string &) {
        return sim::paperConfig(secure::SecurityModel::Baseline);
    });
    spec.add(
        "XOM",
        [](const std::string &) {
            return sim::paperConfig(secure::SecurityModel::Xom);
        },
        [](const std::string &bench) {
            return sim::paperNumbers(bench).xom_slowdown;
        });
    spec.add("SNC-LRU", [](const std::string &) {
        return sim::paperConfig(secure::SecurityModel::OtpSnc);
    });
    return spec;
}

void
expectSameStats(const sim::RunStats &a, const sim::RunStats &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l2_misses, b.l2_misses);
    EXPECT_EQ(a.l2_accesses, b.l2_accesses);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.data_bytes, b.data_bytes);
    EXPECT_EQ(a.seqnum_bytes, b.seqnum_bytes);
    EXPECT_EQ(a.fast_fills, b.fast_fills);
    EXPECT_EQ(a.slow_fills, b.slow_fills);
    EXPECT_EQ(a.snc_query_misses, b.snc_query_misses);
}

TEST(ExperimentSpec, BenchmarkListDefaultsToAllProfiles)
{
    exp::ExperimentSpec spec;
    EXPECT_EQ(spec.benchmarkList(), sim::benchmarkNames());
    EXPECT_EQ(spec.benchmarkList().size(), 11u);

    spec.benchmarks = {"gcc"};
    ASSERT_EQ(spec.benchmarkList().size(), 1u);
    EXPECT_EQ(spec.benchmarkList()[0], "gcc");
}

TEST(ExperimentSpec, AddHelpersWireLabelsAndBaseline)
{
    exp::ExperimentSpec spec = quickSpec();
    ASSERT_EQ(spec.variants.size(), 3u);
    EXPECT_EQ(spec.baseline_label, "baseline");
    EXPECT_EQ(spec.variants[0].label, "baseline");
    EXPECT_EQ(spec.variants[1].label, "XOM");
    EXPECT_TRUE(static_cast<bool>(spec.variants[1].paper));
    EXPECT_FALSE(static_cast<bool>(spec.variants[2].paper));
}

TEST(ExperimentSpec, SlowdownMath)
{
    // 250 cycles over a 200-cycle baseline is +25%.
    EXPECT_DOUBLE_EQ(exp::slowdownPct(200, 250), 25.0);
    EXPECT_DOUBLE_EQ(exp::slowdownPct(400, 300), -25.0);
    EXPECT_DOUBLE_EQ(exp::slowdownPct(1000, 1000), 0.0);
    // Degenerate baseline reports no slowdown rather than dividing.
    EXPECT_DOUBLE_EQ(exp::slowdownPct(0, 123), 0.0);
}

TEST(ExperimentSpec, CellSeedIsPositionalAndNonZero)
{
    const uint64_t a = exp::cellSeed(7, 0, 0);
    EXPECT_EQ(a, exp::cellSeed(7, 0, 0));
    EXPECT_NE(a, exp::cellSeed(7, 0, 1));
    EXPECT_NE(a, exp::cellSeed(7, 1, 0));
    EXPECT_NE(a, exp::cellSeed(8, 0, 0));
    for (size_t v = 0; v < 4; ++v)
        for (size_t b = 0; b < 4; ++b)
            EXPECT_NE(exp::cellSeed(0, v, b), 0u);
}

TEST(ExperimentEnv, CheckedParsingAcceptsNumbers)
{
    EXPECT_EQ(util::parseU64("0", "x"), 0u);
    EXPECT_EQ(util::parseU64("4000000", "x"), 4'000'000u);
    EXPECT_EQ(util::parseU64("18446744073709551615", "x"),
              UINT64_MAX);
}

using ExperimentEnvDeathTest = ::testing::Test;

TEST(ExperimentEnvDeathTest, MalformedWarmupIsFatal)
{
    EXPECT_EXIT(
        {
            setenv("SECPROC_WARMUP", "3 million", 1);
            exp::RunOptions::fromEnvironment();
        },
        ::testing::ExitedWithCode(1), "SECPROC_WARMUP");
}

TEST(ExperimentEnvDeathTest, OverflowingMeasureIsFatal)
{
    EXPECT_EXIT(
        {
            setenv("SECPROC_MEASURE", "99999999999999999999999", 1);
            exp::RunOptions::fromEnvironment();
        },
        ::testing::ExitedWithCode(1), "overflows");
}

TEST(ExperimentEnvDeathTest, EmptyThreadsIsFatal)
{
    EXPECT_EXIT(
        {
            setenv("SECPROC_THREADS", "", 1);
            exp::RunnerOptions::fromEnvironment();
        },
        ::testing::ExitedWithCode(1), "SECPROC_THREADS");
}

TEST(Json, ScalarsAndAggregates)
{
    util::Json doc = util::Json::object();
    doc.set("flag", true);
    doc.set("count", uint64_t{123456789012345});
    doc.set("pi", 3.5);
    doc.set("name", "se\"cure\n");
    util::Json list = util::Json::array();
    list.push(1);
    list.push(util::Json());
    doc.set("list", std::move(list));

    EXPECT_TRUE(doc.at("flag").boolean());
    EXPECT_EQ(doc.at("count").asU64(), 123456789012345u);
    EXPECT_DOUBLE_EQ(doc.at("pi").number(), 3.5);
    EXPECT_EQ(doc.at("list").size(), 2u);
    EXPECT_TRUE(doc.at("list")[1].isNull());
    EXPECT_EQ(doc.find("missing"), nullptr);

    // Integral numbers print without a decimal point.
    EXPECT_EQ(util::Json(uint64_t{42}).dump(), "42");
    EXPECT_EQ(util::Json(3.5).dump(), "3.5");
}

TEST(Json, RoundTripPreservesStructure)
{
    util::Json doc = util::Json::object();
    doc.set("experiment", "fig05");
    doc.set("cycles", uint64_t{17'179'869'184});
    doc.set("ipc", 1.625);
    doc.set("escaped", "tab\there \"quoted\" back\\slash");
    util::Json cells = util::Json::array();
    for (int i = 0; i < 3; ++i) {
        util::Json cell = util::Json::object();
        cell.set("index", i);
        cell.set("ok", i % 2 == 0);
        cells.push(std::move(cell));
    }
    doc.set("cells", std::move(cells));

    for (const int indent : {-1, 2}) {
        const std::string text = doc.dump(indent);
        const auto parsed = util::Json::parse(text);
        ASSERT_TRUE(parsed.has_value()) << text;
        EXPECT_TRUE(*parsed == doc) << text;
    }
}

TEST(Json, ParserRejectsMalformedInput)
{
    EXPECT_FALSE(util::Json::parse("").has_value());
    EXPECT_FALSE(util::Json::parse("{").has_value());
    EXPECT_FALSE(util::Json::parse("[1,]").has_value());
    EXPECT_FALSE(util::Json::parse("{\"a\":1,}").has_value());
    EXPECT_FALSE(util::Json::parse("\"unterminated").has_value());
    EXPECT_FALSE(util::Json::parse("nul").has_value());
    EXPECT_FALSE(util::Json::parse("1 2").has_value());
    EXPECT_FALSE(util::Json::parse("1e999").has_value());
    EXPECT_FALSE(util::Json::parse("{\"a\" 1}").has_value());
}

TEST(Json, ParsesStandardDocuments)
{
    const auto doc = util::Json::parse(
        "  {\"a\": [1, 2.5, -3e2, true, false, null], "
        "\"b\": {\"nested\": \"x\\u0041y\"}} ");
    ASSERT_TRUE(doc.has_value());
    EXPECT_DOUBLE_EQ(doc->at("a")[2].number(), -300.0);
    EXPECT_EQ(doc->at("b").at("nested").str(), "xAy");
}

TEST(Runner, GridRunsEveryCellAndComputesSlowdowns)
{
    const exp::ExperimentSpec spec = quickSpec();
    exp::RunnerOptions options;
    options.threads = 1;
    const exp::Report report = exp::Runner(options).run(spec);

    EXPECT_EQ(report.cells().size(), 9u);
    const exp::CellResult *base = report.find("baseline", "gcc");
    const exp::CellResult *xom = report.find("XOM", "gcc");
    ASSERT_NE(base, nullptr);
    ASSERT_NE(xom, nullptr);
    EXPECT_GT(base->stats.cycles, 0u);

    // The baseline variant reports no value; models report the
    // hand-computable slowdown vs the baseline cell.
    EXPECT_FALSE(base->measured.has_value());
    ASSERT_TRUE(xom->measured.has_value());
    EXPECT_DOUBLE_EQ(
        *xom->measured,
        exp::slowdownPct(base->stats.cycles, xom->stats.cycles));
    ASSERT_TRUE(xom->paper.has_value());
    EXPECT_DOUBLE_EQ(*xom->paper,
                     sim::paperNumbers("gcc").xom_slowdown);
}

TEST(Runner, ParallelGridIsBitIdenticalToSerial)
{
    const exp::ExperimentSpec spec = quickSpec();

    exp::RunnerOptions serial;
    serial.threads = 1;
    exp::RunnerOptions parallel;
    parallel.threads = 4;
    const exp::Report a = exp::Runner(serial).run(spec);
    const exp::Report b = exp::Runner(parallel).run(spec);

    ASSERT_EQ(a.cells().size(), b.cells().size());
    for (size_t i = 0; i < a.cells().size(); ++i) {
        const exp::CellResult &ca = a.cells()[i];
        const exp::CellResult &cb = b.cells()[i];
        EXPECT_EQ(ca.variant, cb.variant);
        EXPECT_EQ(ca.bench, cb.bench);
        expectSameStats(ca.stats, cb.stats);
        EXPECT_EQ(ca.measured, cb.measured);
    }
}

TEST(Runner, SpecSeedOverridesAreThreadCountInvariant)
{
    exp::ExperimentSpec spec = quickSpec();
    spec.seed = 12345;

    exp::RunnerOptions serial;
    serial.threads = 1;
    exp::RunnerOptions parallel;
    parallel.threads = 3;
    const exp::Report a = exp::Runner(serial).run(spec);
    const exp::Report b = exp::Runner(parallel).run(spec);
    for (size_t i = 0; i < a.cells().size(); ++i)
        expectSameStats(a.cells()[i].stats, b.cells()[i].stats);

    // And the seed actually changes the workload stream.
    exp::ExperimentSpec unseeded = quickSpec();
    const exp::Report c = exp::Runner(serial).run(unseeded);
    EXPECT_NE(a.cells()[0].stats.cycles, c.cells()[0].stats.cycles);
}

TEST(Runner, ForEachCoversEveryIndexOnce)
{
    exp::RunnerOptions options;
    options.threads = 4;
    const exp::Runner runner(options);
    std::vector<int> hits(100, 0);
    runner.forEach(hits.size(), [&hits](size_t i) { hits[i]++; });
    for (const int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(Report, JsonDocumentRoundTripsAndMatchesCells)
{
    exp::ExperimentSpec spec = quickSpec();
    exp::RunnerOptions options;
    options.threads = 2;
    const exp::Report report = exp::Runner(options).run(spec);

    const util::Json doc = report.toJson();
    const auto parsed = util::Json::parse(doc.dump(2));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(*parsed == doc);

    EXPECT_EQ(parsed->at("schema_version").asU64(), 1u);
    EXPECT_EQ(parsed->at("experiment").str(), "exp_test_grid");
    EXPECT_EQ(parsed->at("options").at("threads").asU64(), 2u);
    EXPECT_EQ(parsed->at("options").at("warmup_instructions").asU64(),
              2'000u);
    EXPECT_EQ(parsed->at("benchmarks").size(), 3u);
    EXPECT_EQ(parsed->at("variants").size(), 3u);
    ASSERT_EQ(parsed->at("cells").size(), report.cells().size());

    for (size_t i = 0; i < report.cells().size(); ++i) {
        const exp::CellResult &cell = report.cells()[i];
        const util::Json &json_cell = parsed->at("cells")[i];
        EXPECT_EQ(json_cell.at("variant").str(), cell.variant);
        EXPECT_EQ(json_cell.at("bench").str(), cell.bench);
        EXPECT_EQ(json_cell.at("stats").at("cycles").asU64(),
                  cell.stats.cycles);
        EXPECT_EQ(json_cell.find("measured") != nullptr,
                  cell.measured.has_value());
    }
}

TEST(CellCache, DigestSeparatesConfigsAndMatchesEqualOnes)
{
    const sim::SystemConfig a =
        sim::paperConfig(secure::SecurityModel::OtpSnc);
    sim::SystemConfig b = a;
    EXPECT_EQ(exp::configDigest(a), exp::configDigest(b));

    // A deep field no coarse key would notice must change the digest.
    b.protection.snc.sector_lines = 4;
    EXPECT_NE(exp::configDigest(a), exp::configDigest(b));

    sim::SystemConfig c = a;
    c.channel.bg_starvation_bound += 1;
    EXPECT_NE(exp::configDigest(a), exp::configDigest(c));

    sim::SystemConfig d = a;
    d.core.blocking_loads = true;
    EXPECT_NE(exp::configDigest(a), exp::configDigest(d));
}

TEST(CellCache, SecondRequestIsAHitAndBitIdentical)
{
    exp::clearCellCache();
    const sim::SystemConfig config =
        sim::paperConfig(secure::SecurityModel::Baseline);
    const exp::RunOptions options = quickOptions();

    const sim::RunStats direct =
        exp::runCell("gcc", config, options);
    const sim::RunStats first =
        exp::cachedRunCell("gcc", config, options);
    const sim::RunStats second =
        exp::cachedRunCell("gcc", config, options);

    expectSameStats(direct, first);
    expectSameStats(first, second);
    const exp::CellCacheStats stats = exp::cellCacheStats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.hits, 1u);
}

TEST(CellCache, DistinctSeedsAndConfigsAreDistinctCells)
{
    exp::clearCellCache();
    const sim::SystemConfig config =
        sim::paperConfig(secure::SecurityModel::Baseline);
    const exp::RunOptions options = quickOptions();

    exp::cachedRunCell("gcc", config, options, /*seed=*/1);
    exp::cachedRunCell("gcc", config, options, /*seed=*/2);
    sim::SystemConfig other = config;
    other.protection.crypto.latency += 1;
    exp::cachedRunCell("gcc", other, options, /*seed=*/1);

    const exp::CellCacheStats stats = exp::cellCacheStats();
    EXPECT_EQ(stats.entries, 3u);
    EXPECT_EQ(stats.hits, 0u);
}

/**
 * The satellite fix under test: mutating SECPROC_WARMUP /
 * SECPROC_MEASURE between runs must invalidate the cache even when
 * the caller reuses a RunOptions value built before the change —
 * the live environment strings are part of the key.
 */
TEST(CellCache, EnvOverridesInvalidateTheCache)
{
    unsetenv("SECPROC_WARMUP");
    unsetenv("SECPROC_MEASURE");
    exp::clearCellCache();
    const sim::SystemConfig config =
        sim::paperConfig(secure::SecurityModel::Baseline);
    const exp::RunOptions stale = quickOptions();

    exp::cachedRunCell("gcc", config, stale);
    EXPECT_EQ(exp::cellCacheStats().entries, 1u);

    // Same stale options, changed environment: must miss, not serve
    // the entry computed under the old overrides.
    setenv("SECPROC_WARMUP", "5000", 1);
    exp::cachedRunCell("gcc", config, stale);
    EXPECT_EQ(exp::cellCacheStats().entries, 2u);

    setenv("SECPROC_MEASURE", "20000", 1);
    exp::cachedRunCell("gcc", config, stale);
    EXPECT_EQ(exp::cellCacheStats().entries, 3u);

    // Restoring the environment restores the original key: a hit.
    unsetenv("SECPROC_WARMUP");
    unsetenv("SECPROC_MEASURE");
    const exp::CellCacheStats before = exp::cellCacheStats();
    exp::cachedRunCell("gcc", config, stale);
    const exp::CellCacheStats after = exp::cellCacheStats();
    EXPECT_EQ(after.entries, before.entries);
    EXPECT_EQ(after.hits, before.hits + 1);
    exp::clearCellCache();
}

TEST(Report, AverageMatchesHandComputedMean)
{
    exp::ExperimentSpec spec = quickSpec();
    exp::RunnerOptions options;
    options.threads = 2;
    const exp::Report report = exp::Runner(options).run(spec);

    double sum = 0.0;
    for (const std::string &bench : spec.benchmarkList())
        sum += *report.find("XOM", bench)->measured;
    ASSERT_TRUE(report.average("XOM").has_value());
    EXPECT_DOUBLE_EQ(*report.average("XOM"), sum / 3.0);
    EXPECT_FALSE(report.average("baseline").has_value());
}

} // namespace
