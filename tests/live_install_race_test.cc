/**
 * @file
 * Concurrent-update race matrix (ROADMAP scenario item).
 *
 * A live install races everything the machine does: context switches
 * flush the SNC and swap compartments mid-stream, and power can die
 * at any cycle of the install. The A/B invariant must hold at every
 * interleaving: after a cut the device is in {previous image active,
 * new image active} — never a torn state — and a clean re-stage
 * always recovers.
 *
 * Expressed as an ExperimentSpec so the sweep parallelizes through
 * the standard Runner: variants are (scenario x transport pattern) —
 * power cuts at N evenly spaced install cycles under lossless /
 * burst-loss / reordering downlinks, and context-switch storms under
 * the same links — benchmarks are cipher kinds, and each cell's
 * measured value is the percentage of trials that landed in an
 * allowed state. Anything under 100 is a torn image.
 */

#include <gtest/gtest.h>

#include "crypto/latency.hh"
#include "exp/runner.hh"
#include "ota/transport.hh"
#include "sim/profiles.hh"
#include "sim/system.hh"
#include "update/image_builder.hh"
#include "update/live_install.hh"
#include "update/staging_journal.hh"
#include "update/update_engine.hh"

namespace
{

using namespace secproc;
using namespace secproc::update;

constexpr uint32_t kLine = 128;
constexpr uint64_t kStagingBase = 0x4000'0000;
constexpr uint64_t kSlotSize = 1ull << 20;
constexpr uint64_t kImageBase = 0x0800'0000;
constexpr uint64_t kImageBytes = 8ull << 10;
/** Evenly spaced injection points per cell. */
constexpr int kInjectionPoints = 6;

secure::CipherKind
cipherFor(const std::string &bench)
{
    return bench == "aes128" ? secure::CipherKind::Aes128
                             : secure::CipherKind::Des;
}

enum class Scenario
{
    PowerCut,
    ContextSwitch,
    JournalResume,
};

struct KeyRing
{
    util::Rng rng;
    ImageBuilder vendor;
    crypto::RsaKeyPair processor;

    explicit KeyRing(uint64_t seed)
        : rng(seed), vendor(crypto::rsaGenerate(512, rng)),
          processor(crypto::rsaGenerate(512, rng))
    {}
};

UpdateBundle
makeBundle(KeyRing &ring, uint32_t version, secure::CipherKind cipher)
{
    xom::PlainProgram program;
    program.title = "fw";
    program.entry_point = kImageBase;
    xom::PlainProgram::PlainSection text;
    text.name = ".text";
    text.vaddr = kImageBase;
    text.bytes.resize(kImageBytes, static_cast<uint8_t>(version));
    program.sections = {text};

    UpdateSpec spec;
    spec.image_version = version;
    spec.rollback_counter = version;
    spec.cipher = cipher;
    return ring.vendor.build(program, spec, ring.processor.pub,
                             ring.rng);
}

/** A compact second task so context switches have somewhere to go. */
sim::WorkloadProfile
sideProfile()
{
    sim::WorkloadProfile profile;
    profile.name = "side";
    profile.mem_frac = 0.35;
    profile.code_footprint = 4 * 1024;
    profile.rng_seed = 0xFACE;
    profile.va_offset = 1ull << 40;
    sim::DataRegion hot;
    hot.behavior = sim::RegionBehavior::Hot;
    hot.footprint = 64 * 1024;
    hot.weight = 0.7;
    hot.store_frac = 0.4;
    profile.regions = {hot};
    return profile;
}

/** One machine with a live install racing the given scenario. */
struct RaceRig
{
    sim::SystemConfig config;
    sim::WorkloadProfile fg_profile;
    sim::WorkloadProfile side_profile;
    std::unique_ptr<sim::SyntheticWorkload> foreground;
    std::unique_ptr<sim::SyntheticWorkload> side;
    std::unique_ptr<sim::System> system;
    secure::KeyTable update_keys;
    RollbackStore rollback{64};
    std::unique_ptr<UpdateEngine> updater;
    std::unique_ptr<LiveInstall> live;

    RaceRig(KeyRing &ring, const ota::TransportConfig &transport,
            bool two_tasks)
        : config(sim::paperConfig(secure::SecurityModel::OtpSnc)),
          fg_profile(sim::benchmarkProfile("gcc")),
          side_profile(sideProfile())
    {
        foreground = std::make_unique<sim::SyntheticWorkload>(
            fg_profile, config.l2.line_size);
        std::vector<sim::TaskSpec> tasks{{foreground.get(), 1}};
        if (two_tasks) {
            side = std::make_unique<sim::SyntheticWorkload>(
                side_profile, config.l2.line_size);
            tasks.push_back({side.get(), 2});
        }
        system = std::make_unique<sim::System>(config, tasks);
        updater = std::make_unique<UpdateEngine>(
            ring.vendor.publicKey(), ring.processor, update_keys,
            rollback, StagingConfig{kStagingBase, kSlotSize});

        LiveInstallConfig live_config;
        live_config.line_bytes = kLine;
        live_config.pacing = InstallPacing::Arbiter;
        live_config.transport = transport;
        live = std::make_unique<LiveInstall>(live_config, *system,
                                             *updater, 1);
        system->attachAgent(live.get());
    }

    bool
    installFunctionally(const UpdateBundle &bundle)
    {
        return updater
            ->install(bundle, 1, system->mainMemory(),
                      system->virtualMemory(), 1, system->engine())
            .ok();
    }

    uint32_t
    activeVersion() const
    {
        const UpdateManifest *manifest =
            updater->compartmentManifest(1);
        return manifest == nullptr ? 0 : manifest->image_version;
    }

    /** Active slot bytes must be exactly the framed active bundle. */
    bool
    activeSlotIntact(const std::vector<uint8_t> &framed) const
    {
        std::vector<uint8_t> got(framed.size());
        system->mainMemory().read(
            updater->slotBase(updater->activeSlot()), got.data(),
            got.size());
        return got == framed;
    }
};

/** How long this cell's undisturbed install takes, start to Done. */
uint64_t
dryRunInstallCycles(KeyRing &ring, const UpdateBundle &v1,
                    const UpdateBundle &v2,
                    const ota::TransportConfig &transport)
{
    RaceRig rig(ring, transport, /*two_tasks=*/false);
    if (!rig.installFunctionally(v1))
        return 0;
    rig.live->start(v2, 0);
    for (int i = 0; i < 2000 && !rig.live->done(); ++i)
        rig.system->run(2'000);
    if (rig.live->phase() != LiveInstallPhase::Done)
        return 0;
    return rig.live->installCycles();
}

/**
 * One power-cut trial: cut at @p cut_cycle, then check the A/B
 * invariant and that a fresh install recovers the device.
 */
bool
powerCutTrial(KeyRing &ring, const UpdateBundle &v1,
              const UpdateBundle &v2,
              const std::vector<uint8_t> &framed_v1,
              const std::vector<uint8_t> &framed_v2,
              const ota::TransportConfig &transport,
              uint64_t cut_cycle, secure::CipherKind cipher)
{
    RaceRig rig(ring, transport, /*two_tasks=*/false);
    if (!rig.installFunctionally(v1))
        return false;
    rig.live->start(v2, rig.system->core().cycles());
    while (!rig.live->done() &&
           rig.system->core().cycles() < cut_cycle)
        rig.system->run(200);

    // Power dies here: in-flight timing work vanishes, memory and
    // the device's persistent update state stay as they are.
    rig.system->reset();
    if (rig.system->channel().backgroundQueued() != 0)
        return false;

    // Reboot: whatever the cut left behind, the device must be on
    // v1 or v2 — and the active slot must hold exactly the framed
    // bytes of whichever version it claims.
    uint32_t version = rig.activeVersion();
    if (version != 1 && version != 2)
        return false;
    if (rig.rollback.current("fw") != version)
        return false;

    // The boot path tries to take any staged update live; a torn
    // slot must be refused, a fully staged one may activate.
    const InstallResult resumed = rig.updater->activate(
        1, rig.system->mainMemory(), rig.system->virtualMemory(), 1,
        rig.system->engine());
    version = rig.activeVersion();
    if (resumed.ok() && version != 2)
        return false;
    if (!resumed.ok() && version != 1 && version != 2)
        return false;
    if (!rig.activeSlotIntact(version == 2 ? framed_v2 : framed_v1))
        return false;

    // Recovery: a clean re-stage of the next version always lands.
    const UpdateBundle v3 = makeBundle(ring, 3, cipher);
    if (!rig.installFunctionally(v3))
        return false;
    return rig.activeVersion() == 3;
}

/**
 * One context-switch trial: storm switches at the injection points
 * while the install runs to completion; both planes must still
 * agree.
 */
bool
contextSwitchTrial(KeyRing &ring, const UpdateBundle &v1,
                   const UpdateBundle &v2,
                   const std::vector<uint8_t> &framed_v2,
                   const ota::TransportConfig &transport,
                   uint64_t install_cycles)
{
    RaceRig rig(ring, transport, /*two_tasks=*/true);
    if (!rig.installFunctionally(v1))
        return false;
    rig.live->start(v2, rig.system->core().cycles());

    uint64_t switches_done = 0;
    const uint64_t start = rig.system->core().cycles();
    for (int i = 0; i < 4000 && !rig.live->done(); ++i) {
        rig.system->run(500);
        const uint64_t elapsed = rig.system->core().cycles() - start;
        const uint64_t due = std::min<uint64_t>(
            kInjectionPoints,
            (kInjectionPoints + 1) * elapsed /
                std::max<uint64_t>(install_cycles, 1));
        while (switches_done < due) {
            // Alternate tasks and policies: Flush exercises the SNC
            // spill path while the installer holds channel grants.
            rig.system->switchToTask(
                (switches_done + 1) % rig.system->taskCount(),
                switches_done % 2 == 0 ? sim::SncSwitchPolicy::Flush
                                       : sim::SncSwitchPolicy::Tag);
            ++switches_done;
        }
    }

    if (rig.live->phase() != LiveInstallPhase::Done)
        return false;
    if (switches_done == 0)
        return false;
    if (rig.activeVersion() != 2 || rig.rollback.current("fw") != 2)
        return false;
    return rig.activeSlotIntact(framed_v2);
}

/**
 * One journal-resume trial: cut power at two successive mid-stage
 * points, re-attempting the SAME bundle each time with the staging
 * journal persisted across the cuts (serialize round-trip, like the
 * rollback store). A resume must be a resume, not a restart: every
 * attempt writes only the lines the previous cut had not reached —
 * the three attempts sum to exactly one framed bundle, never more —
 * already-staged chunks are NACKed out of the downlink instead of
 * re-transmitted, and the remaining work strictly decreases across
 * each cut. The final image must match an uninterrupted install and
 * activation must retire the journal record.
 */
bool
journalResumeTrial(KeyRing &ring, const UpdateBundle &v1,
                   const UpdateBundle &v2,
                   const std::vector<uint8_t> &framed_v2,
                   const ota::TransportConfig &transport, int point)
{
    RaceRig rig(ring, transport, /*two_tasks=*/false);
    StagingJournal journal;
    rig.updater->setJournal(&journal);
    if (!rig.installFunctionally(v1))
        return false;
    const uint32_t slot = rig.updater->stagingSlot();

    const uint64_t total = framed_v2.size();
    // Stage writes drain fast once admission ends (the downlink, not
    // the slot, bounds the install), so step at fine granularity to
    // observe a genuinely partial stage.
    auto runUntilStaged = [&](uint64_t target) {
        for (int i = 0; i < 500000 && !rig.live->done() &&
                        rig.live->stagedBytesWritten() < target;
             ++i)
            rig.system->run(1);
        return rig.live->stagedBytesWritten();
    };

    // First cut: an injection-point fraction of the staged bytes.
    rig.live->start(v2, rig.system->core().cycles());
    const uint64_t s1 = runUntilStaged(total * (point + 1) / 4);
    if (rig.live->done() || s1 == 0 || s1 >= total)
        return false; // the cut must land mid-stage
    rig.system->reset();

    // The journal survives the reboot through its serialized image.
    const auto persisted =
        StagingJournal::deserialize(journal.serialize());
    if (!persisted.has_value())
        return false;
    journal = *persisted;

    // Second attempt resumes past the journaled lines; cut it again
    // halfway through what remains.
    rig.live->start(v2, rig.system->core().cycles());
    const uint64_t s2 = runUntilStaged((total - s1) / 2);
    const uint64_t skipped2 = rig.live->transport().chunksSkipped();
    if (rig.live->done() || s2 == 0 || s1 + s2 >= total)
        return false;
    if (skipped2 == 0)
        return false; // staged chunks must be NACKed, not re-sent
    rig.system->reset();

    // Third attempt runs to completion.
    rig.live->start(v2, rig.system->core().cycles());
    for (int i = 0; i < 4000 && !rig.live->done(); ++i)
        rig.system->run(2'000);
    if (rig.live->phase() != LiveInstallPhase::Done)
        return false;
    if (rig.live->transport().chunksSkipped() <= skipped2)
        return false; // remaining downlink work strictly decreased
    // Resume, not restart: the attempts cover each payload byte
    // exactly once between them.
    if (s1 + s2 + rig.live->stagedBytesWritten() != total)
        return false;
    if (rig.activeVersion() != 2 || rig.rollback.current("fw") != 2)
        return false;
    if (journal.active(slot))
        return false; // activation must retire the record
    return rig.activeSlotIntact(framed_v2);
}

struct Pattern
{
    const char *label;
    Scenario scenario;
    ota::TransportConfig transport;
};

std::vector<Pattern>
patterns()
{
    ota::TransportConfig lossless;
    lossless.chunk_bytes = 1024;
    lossless.cycles_per_chunk = 256;

    ota::TransportConfig burst = lossless;
    burst.loss_rate = 0.15;
    burst.burst_length = 3.0;
    burst.retransmit_delay = 4096;
    burst.seed = 0xB0B;

    ota::TransportConfig reorder = lossless;
    reorder.reorder_rate = 0.30;
    reorder.reorder_window = 6;
    reorder.loss_rate = 0.05;
    reorder.seed = 0x0DD;

    return {
        {"powercut-lossless", Scenario::PowerCut, lossless},
        {"powercut-burst", Scenario::PowerCut, burst},
        {"powercut-reorder", Scenario::PowerCut, reorder},
        {"ctxswitch-lossless", Scenario::ContextSwitch, lossless},
        {"ctxswitch-burst", Scenario::ContextSwitch, burst},
        {"resume-lossless", Scenario::JournalResume, lossless},
        {"resume-burst", Scenario::JournalResume, burst},
    };
}

exp::CellOutput
raceCell(const Pattern &pattern, const std::string &bench,
         uint64_t key_seed)
{
    KeyRing ring(key_seed);
    const secure::CipherKind cipher = cipherFor(bench);
    const UpdateBundle v1 = makeBundle(ring, 1, cipher);
    const UpdateBundle v2 = makeBundle(ring, 2, cipher);
    const std::vector<uint8_t> framed_v1 =
        frameBundleBytes(v1.serialize());
    const std::vector<uint8_t> framed_v2 =
        frameBundleBytes(v2.serialize());

    exp::CellOutput cell;
    const uint64_t install_cycles =
        dryRunInstallCycles(ring, v1, v2, pattern.transport);
    cell.extras.emplace_back("install_cycles",
                             static_cast<double>(install_cycles));
    if (install_cycles == 0) {
        cell.measured = 0.0;
        return cell;
    }

    uint64_t trials = 0;
    uint64_t survived = 0;
    if (pattern.scenario == Scenario::PowerCut) {
        for (int k = 0; k < kInjectionPoints; ++k) {
            const uint64_t cut =
                install_cycles * (k + 1) / (kInjectionPoints + 1);
            ++trials;
            survived += powerCutTrial(ring, v1, v2, framed_v1,
                                      framed_v2, pattern.transport,
                                      cut, cipher);
        }
    } else if (pattern.scenario == Scenario::JournalResume) {
        for (int k = 0; k < 3; ++k) {
            ++trials;
            survived += journalResumeTrial(ring, v1, v2, framed_v2,
                                           pattern.transport, k);
        }
    } else {
        ++trials;
        survived += contextSwitchTrial(ring, v1, v2, framed_v2,
                                       pattern.transport,
                                       install_cycles);
    }

    cell.extras.emplace_back("trials", static_cast<double>(trials));
    cell.measured = 100.0 * static_cast<double>(survived) /
                    static_cast<double>(trials);
    return cell;
}

TEST(LiveInstallRaceMatrix, AlwaysLandsInAnAllowedState)
{
    exp::ExperimentSpec spec;
    spec.name = "live_install_race_matrix";
    spec.title = "Concurrent-update race matrix";
    spec.subtitle = "% of interleavings in {previous, new} (must "
                    "be 100)";
    spec.benchmarks = {"des", "aes128"};
    uint64_t seed = 0x0ACE;
    for (const Pattern &pattern : patterns()) {
        const uint64_t key_seed = ++seed;
        spec.addCustom(pattern.label,
                       [pattern, key_seed](const std::string &bench,
                                           const exp::RunOptions &) {
                           return raceCell(pattern, bench, key_seed);
                       });
    }

    exp::RunnerOptions runner;
    runner.threads = 2;
    const exp::Report report = exp::Runner(runner).run(spec);

    size_t checked = 0;
    for (const exp::CellResult &cell : report.cells()) {
        ASSERT_TRUE(cell.measured.has_value());
        EXPECT_DOUBLE_EQ(*cell.measured, 100.0)
            << cell.variant << "/" << cell.bench
            << " reached a torn or unrecoverable state";
        ++checked;
    }
    EXPECT_EQ(checked, 14u);
}

} // namespace
