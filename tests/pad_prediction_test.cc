/**
 * @file
 * Pad-prediction unit tests (extension A11): sequential pre-
 * generation of one-time pads, pad-buffer bounds, and the timing
 * win when the crypto engine is slower than memory.
 */

#include <gtest/gtest.h>

#include "mem/memory_channel.hh"
#include "secure/engines.hh"

namespace
{

using namespace secproc;
using namespace secproc::secure;

class PadPrediction : public ::testing::Test
{
  protected:
    PadPrediction()
    {
        std::vector<uint8_t> key(8, 0x42);
        keys_.install(1, CipherKind::Des, key);
    }

    static mem::ChannelConfig
    channelConfig(uint32_t mem_latency)
    {
        mem::ChannelConfig config;
        config.access_latency = mem_latency;
        config.transfer_cycles = 0;
        config.small_transfer_cycles = 0;
        return config;
    }

    static ProtectionConfig
    engineConfig(uint32_t crypto_latency, bool prediction)
    {
        ProtectionConfig config;
        config.model = SecurityModel::OtpSnc;
        config.crypto.latency = crypto_latency;
        config.snc.l2_line_size = 128;
        config.line_size = 128;
        config.pad_prediction = prediction;
        return config;
    }

    KeyTable keys_;
};

TEST_F(PadPrediction, SequentialFillsHitThePadBuffer)
{
    // Memory 40, crypto 100: without prediction every fast-path fill
    // costs max(40, 100) + 1 = 101; with prediction the pad for line
    // X+1 starts during X's fill, so the next sequential fill costs
    // 40 + 1 as long as the gap between fills exceeds the engine's
    // remaining work.
    mem::MemoryChannel channel(channelConfig(40));
    OtpEngine engine(engineConfig(100, true), channel, keys_);

    // Give lines 0..7 sequence numbers (writebacks).
    for (uint64_t i = 0; i < 8; ++i)
        engine.planEvict(0x10000 + i * 128, mem::RegionKind::Protected);

    // Demand-fill them sequentially, 1000 cycles apart.
    uint64_t cycle = 10'000;
    const auto first = engine.lineFill(0x10000, cycle, false,
                                       mem::RegionKind::Protected);
    EXPECT_EQ(first.ready_cycle, cycle + 100 + 1)
        << "first fill has no prediction to use";

    for (uint64_t i = 1; i < 8; ++i) {
        cycle += 1000;
        const auto fill =
            engine.lineFill(0x10000 + i * 128, cycle, false,
                            mem::RegionKind::Protected);
        EXPECT_EQ(fill.ready_cycle, cycle + 40 + 1)
            << "line " << i << ": predicted pad should be ready";
    }
    EXPECT_EQ(engine.padPredictionHits(), 7u);
    EXPECT_GE(engine.padPredictions(), 7u);
}

TEST_F(PadPrediction, DisabledByDefault)
{
    mem::MemoryChannel channel(channelConfig(40));
    OtpEngine engine(engineConfig(100, false), channel, keys_);
    for (uint64_t i = 0; i < 4; ++i)
        engine.planEvict(0x10000 + i * 128, mem::RegionKind::Protected);
    uint64_t cycle = 10'000;
    for (uint64_t i = 0; i < 4; ++i) {
        const auto fill =
            engine.lineFill(0x10000 + i * 128, cycle, false,
                            mem::RegionKind::Protected);
        EXPECT_EQ(fill.ready_cycle, cycle + 100 + 1);
        cycle += 1000;
    }
    EXPECT_EQ(engine.padPredictions(), 0u);
    EXPECT_EQ(engine.padPredictionHits(), 0u);
}

TEST_F(PadPrediction, InstructionStreamsPredict)
{
    // Instruction lines always use seqnum 0, so the next line's seed
    // is always known: a sequential ifetch stream hits from line 2.
    mem::MemoryChannel channel(channelConfig(40));
    OtpEngine engine(engineConfig(100, true), channel, keys_);
    uint64_t cycle = 10'000;
    const auto first = engine.lineFill(0x400000, cycle, true,
                                       mem::RegionKind::Protected);
    EXPECT_EQ(first.ready_cycle, cycle + 101);
    for (int i = 1; i < 5; ++i) {
        cycle += 1000;
        const auto fill =
            engine.lineFill(0x400000 + i * 128, cycle, true,
                            mem::RegionKind::Protected);
        EXPECT_EQ(fill.ready_cycle, cycle + 41) << "line " << i;
    }
}

TEST_F(PadPrediction, NoPredictionWithoutOnChipSeqnum)
{
    // The neighbour's sequence number is off chip (flushed): a
    // prediction would need a metadata fetch, so none is made.
    mem::MemoryChannel channel(channelConfig(40));
    OtpEngine engine(engineConfig(100, true), channel, keys_);
    engine.planEvict(0x10000, mem::RegionKind::Protected);
    engine.planEvict(0x10080, mem::RegionKind::Protected);
    engine.flushSnc(0);

    // Query-miss fill of line 0 (seqnum fetched back): its neighbour
    // is *also* off chip at plan time, so no prediction for it.
    engine.lineFill(0x10000, 10'000, false, mem::RegionKind::Protected);
    EXPECT_EQ(engine.padPredictions(), 0u);
}

TEST_F(PadPrediction, BackToBackFillsExposeEnginePipelining)
{
    // Fills 1 cycle apart: the prediction for line X+1 was issued at
    // X's fill cycle and the engine is pipelined, so the pad is
    // ready only crypto_latency after it started — the win shrinks
    // but never goes negative.
    mem::MemoryChannel channel(channelConfig(40));
    OtpEngine engine(engineConfig(100, true), channel, keys_);
    for (uint64_t i = 0; i < 4; ++i)
        engine.planEvict(0x20000 + i * 128, mem::RegionKind::Protected);

    uint64_t cycle = 10'000;
    uint64_t previous_ready = 0;
    for (uint64_t i = 0; i < 4; ++i) {
        const auto fill =
            engine.lineFill(0x20000 + i * 128, cycle, false,
                            mem::RegionKind::Protected);
        EXPECT_GE(fill.ready_cycle, cycle + 41);
        EXPECT_LE(fill.ready_cycle, cycle + 101);
        EXPECT_GE(fill.ready_cycle, previous_ready);
        previous_ready = fill.ready_cycle;
        cycle += 1;
    }
}

TEST_F(PadPrediction, BufferIsBounded)
{
    mem::MemoryChannel channel(channelConfig(40));
    ProtectionConfig config = engineConfig(100, true);
    config.pad_buffer_entries = 4;
    OtpEngine engine(config, channel, keys_);

    for (uint64_t i = 0; i < 64; ++i)
        engine.planEvict(0x30000 + i * 128, mem::RegionKind::Protected);
    // 64 scattered fills, each predicting its neighbour: the buffer
    // holds at most 4 predictions, old ones are forgotten, and the
    // engine never crashes or grows without bound.
    uint64_t cycle = 10'000;
    for (uint64_t i = 0; i < 64; i += 2) {
        engine.lineFill(0x30000 + i * 128, cycle, false,
                        mem::RegionKind::Protected);
        cycle += 500;
    }
    EXPECT_GT(engine.padPredictions(), 0u);
}

TEST_F(PadPrediction, PredictionNeverChangesFunctionalBytes)
{
    // applyFill is driven purely by (line, seqnum): identical plans
    // must decrypt identically whether or not prediction is on.
    mem::MemoryChannel channel_a(channelConfig(40));
    mem::MemoryChannel channel_b(channelConfig(40));
    OtpEngine with(engineConfig(100, true), channel_a, keys_);
    OtpEngine without(engineConfig(100, false), channel_b, keys_);

    for (OtpEngine *engine : {&with, &without})
        engine->planEvict(0x40000, mem::RegionKind::Protected);

    FillPlan plan_a = with.planFill(0x40000, false,
                                    mem::RegionKind::Protected);
    FillPlan plan_b = without.planFill(0x40000, false,
                                       mem::RegionKind::Protected);
    std::vector<uint8_t> bytes_a(128, 0x5A);
    std::vector<uint8_t> bytes_b(128, 0x5A);
    with.applyFill(plan_a, bytes_a);
    without.applyFill(plan_b, bytes_b);
    EXPECT_EQ(bytes_a, bytes_b);
}

} // namespace
