/**
 * @file
 * Tests for the cycle-plane install replay: plan derivation from
 * real bundles, idle-machine replay timing, and — the point of the
 * whole subsystem — foreground interference that scales with the
 * crypto engine's latency because install and workload share one
 * engine and one memory channel.
 */

#include <gtest/gtest.h>

#include "crypto/latency.hh"
#include "sim/profiles.hh"
#include "sim/system.hh"
#include "update/image_builder.hh"
#include "update/install_timing.hh"
#include "update/update_engine.hh"
#include "util/random.hh"

namespace
{

using namespace secproc;
using namespace secproc::update;

constexpr uint32_t kLine = 128;

InstallTimingConfig
timingConfig()
{
    InstallTimingConfig config;
    config.line_bytes = kLine;
    return config;
}

// ------------------------------------------------------------------ plans

TEST(InstallPlan, FromImageBytes)
{
    const InstallPlan plan =
        InstallPlan::fromImageBytes(64 * kLine, kLine);
    EXPECT_EQ(plan.load_lines, 64u);
    EXPECT_EQ(plan.stage_lines, 65u) << "one line of framing overhead";
    EXPECT_EQ(plan.verify_lines, plan.stage_lines);
}

TEST(InstallPlan, FromBundleMatchesSerializedSize)
{
    util::Rng rng(7);
    const crypto::RsaKeyPair vendor = crypto::rsaGenerate(512, rng);
    const crypto::RsaKeyPair processor = crypto::rsaGenerate(512, rng);
    ImageBuilder builder(vendor);

    xom::PlainProgram program;
    program.title = "fw";
    program.entry_point = 0x400000;
    xom::PlainProgram::PlainSection text;
    text.name = ".text";
    text.vaddr = 0x400000;
    text.bytes.resize(32 * kLine, 0x5A);
    program.sections = {text};

    UpdateSpec spec;
    spec.image_version = 1;
    spec.rollback_counter = 1;
    const UpdateBundle bundle =
        builder.build(program, spec, processor.pub, rng);

    const InstallPlan plan = InstallPlan::fromBundle(bundle, kLine);
    const uint64_t bundle_lines =
        (bundle.serialize().size() + kSlotHeaderBytes + kLine - 1) /
        kLine;
    EXPECT_EQ(plan.stage_lines, bundle_lines);
    EXPECT_EQ(plan.verify_lines, bundle_lines);
    EXPECT_EQ(plan.load_lines,
              (bundle.image.totalBytes() + kLine - 1) / kLine);
    EXPECT_GE(plan.stage_lines, plan.load_lines)
        << "the staged bundle wraps the image";
}

// ----------------------------------------------------------- idle replay

TEST(InstallTiming, IdleReplayScalesWithImageSize)
{
    mem::ChannelConfig channel_config;
    crypto::CryptoEngineConfig engine_config;

    auto replayCycles = [&](uint64_t image_bytes) {
        mem::MemoryChannel channel(channel_config);
        crypto::CryptoEngineModel engine(engine_config);
        InstallTiming timing(timingConfig(), channel, engine);
        timing.start(InstallPlan::fromImageBytes(image_bytes, kLine),
                     0);
        const uint64_t end = timing.replay();
        EXPECT_TRUE(timing.done());
        EXPECT_EQ(timing.installsCompleted(), 1u);
        EXPECT_EQ(timing.lastInstallCycles(), end);
        return end;
    };

    const uint64_t small = replayCycles(64 * kLine);
    const uint64_t large = replayCycles(512 * kLine);
    EXPECT_GT(small, 0u);
    EXPECT_GT(large, 4 * small)
        << "8x the image must cost well over 4x the cycles";
}

TEST(InstallTiming, ReplayMovesAttributedTraffic)
{
    mem::MemoryChannel channel{mem::ChannelConfig{}};
    crypto::CryptoEngineModel engine{crypto::CryptoEngineConfig{}};
    InstallTiming timing(timingConfig(), channel, engine);

    const InstallPlan plan = InstallPlan::fromImageBytes(64 * kLine,
                                                        kLine);
    timing.start(plan, 0);
    timing.replay();

    // Two verification passes read the staged lines; stage + load
    // write them.
    EXPECT_EQ(channel.transactions(mem::Traffic::UpdateFill),
              2 * plan.verify_lines);
    EXPECT_EQ(channel.transactions(mem::Traffic::UpdateWriteback),
              plan.stage_lines + plan.load_lines);
    EXPECT_EQ(channel.agentBytes(timing.agent()),
              channel.updateBytes());
    EXPECT_EQ(channel.agentBytes(mem::kCoreAgent), 0u);
    channel.assertFullyAttributed();

    // Digest per verified line + three signature-class reservations
    // (admission, re-verify, capsule unwrap) + the attestation quote.
    const InstallTimingConfig config = timingConfig();
    EXPECT_EQ(engine.reservedOperations(),
              2 * plan.verify_lines + 3 * config.signature_engine_ops +
                  config.attest_engine_ops);
}

TEST(InstallTiming, AdvanceIsSelfPacedAndMonotonic)
{
    mem::MemoryChannel channel{mem::ChannelConfig{}};
    crypto::CryptoEngineModel engine{crypto::CryptoEngineConfig{}};
    InstallTiming timing(timingConfig(), channel, engine);
    timing.start(InstallPlan::fromImageBytes(16 * kLine, kLine), 0);

    // Advancing a little at a time must make monotonic progress and
    // finish; transactions issued so far never exceed what the
    // elapsed cycles allow.
    uint64_t issued_at_half = 0;
    for (uint64_t now = 0; !timing.done() && now < 1'000'000;
         now += 100) {
        timing.advance(now);
        if (now == 5'000)
            issued_at_half = channel.agentTransactions(timing.agent());
    }
    EXPECT_TRUE(timing.done());
    EXPECT_GT(issued_at_half, 0u);
    EXPECT_LT(issued_at_half,
              channel.agentTransactions(timing.agent()))
        << "work must still be pending mid-replay";
}

// ------------------------------------------------------- interference

uint64_t
foregroundCycles(uint32_t crypto_latency, bool background_install)
{
    sim::SystemConfig config =
        sim::paperConfig(secure::SecurityModel::OtpSnc);
    config.protection.crypto.latency = crypto_latency;

    sim::WorkloadProfile profile = sim::benchmarkProfile("gcc");
    sim::SyntheticWorkload workload(profile, config.l2.line_size);
    sim::System system(config, workload);

    InstallTimingConfig itc;
    itc.line_bytes = config.l2.line_size;
    InstallTiming timing(itc, system.channel(), system.cryptoEngine());
    if (background_install) {
        timing.start(InstallPlan::fromImageBytes(1ull << 20,
                                                 config.l2.line_size),
                     0, /*repeat=*/true);
        system.attachAgent(&timing);
    }

    system.run(50'000);
    system.beginMeasurement();
    system.run(200'000);
    return system.stats().cycles;
}

TEST(InstallTiming, BackgroundInstallSlowsForeground)
{
    const uint64_t alone =
        foregroundCycles(crypto::kPaperCryptoLatency, false);
    const uint64_t contended =
        foregroundCycles(crypto::kPaperCryptoLatency, true);
    EXPECT_GT(contended, alone)
        << "a streaming install must cost the foreground something";
}

TEST(InstallTiming, InterferenceGrowsWithEngineLatency)
{
    // The acceptance criterion of the cycle-plane refactor: because
    // install digesting holds the *shared* engine for a whole line
    // time, a 102-cycle engine hurts the foreground more than the
    // 50-cycle engine — the contention is engine-latency sensitive,
    // not just bus sensitive.
    const double slow50 = 100.0 *
        (static_cast<double>(foregroundCycles(
             crypto::kPaperCryptoLatency, true)) /
             static_cast<double>(foregroundCycles(
                 crypto::kPaperCryptoLatency, false)) -
         1.0);
    const double slow102 = 100.0 *
        (static_cast<double>(foregroundCycles(
             crypto::kStrongCipherLatency, true)) /
             static_cast<double>(foregroundCycles(
                 crypto::kStrongCipherLatency, false)) -
         1.0);
    EXPECT_GT(slow50, 0.0);
    EXPECT_GT(slow102, slow50)
        << "102-cycle engine: slowdown " << slow102
        << "% must exceed the 50-cycle engine's " << slow50 << "%";
}

TEST(InstallTiming, CoreOnlyRunsAreUntouchedByAttachableAgents)
{
    // Constructing a System after the refactor, with no agent
    // attached, must behave exactly like the pre-refactor machine:
    // same cycles, same channel traffic split.
    sim::SystemConfig config =
        sim::paperConfig(secure::SecurityModel::OtpSnc);
    sim::WorkloadProfile profile = sim::benchmarkProfile("mcf");

    auto runOnce = [&]() {
        sim::SyntheticWorkload workload(profile, config.l2.line_size);
        sim::System system(config, workload);
        system.run(20'000);
        system.beginMeasurement();
        system.run(80'000);
        return system.stats();
    };
    const sim::RunStats a = runOnce();
    const sim::RunStats b = runOnce();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.data_bytes, b.data_bytes);
    EXPECT_EQ(a.seqnum_bytes, b.seqnum_bytes);
}

} // namespace
