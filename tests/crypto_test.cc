/**
 * @file
 * Known-answer and property tests for the crypto substrate:
 * DES/3DES/AES-128 FIPS vectors, SHA-1/SHA-256 vectors, HMAC,
 * BigInt arithmetic, RSA round trips, one-time-pad helpers and the
 * crypto engine latency model.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "crypto/aes128.hh"
#include "crypto/bigint.hh"
#include "crypto/block_cipher.hh"
#include "crypto/des.hh"
#include "crypto/latency.hh"
#include "crypto/rsa.hh"
#include "crypto/sha.hh"
#include "crypto/triple_des.hh"
#include "util/random.hh"
#include "util/strutil.hh"

namespace
{

using namespace secproc::crypto;
using secproc::util::fromHex;
using secproc::util::Rng;
using secproc::util::toHex;

// -------------------------------------------------------------------- DES

struct DesVector
{
    const char *key;
    const char *plain;
    const char *cipher;
};

/** Classic published single-DES known-answer vectors. */
const DesVector kDesVectors[] = {
    // Textbook vector (Stallings).
    {"133457799bbcdff1", "0123456789abcdef", "85e813540f0ab405"},
    // "Their" famous all-zero-output vector.
    {"0e329232ea6d0d73", "8787878787878787", "0000000000000000"},
    // Weak-key identity checks are separate; these are standard KATs.
    {"0101010101010101", "95f8a5e5dd31d900", "8000000000000000"},
    {"8001010101010101", "0000000000000000", "95a8d72813daa94d"},
    {"7ca110454a1a6e57", "01a1d6d039776742", "690f5b0d9a26939b"},
};

class DesKnownAnswer : public ::testing::TestWithParam<DesVector>
{};

TEST_P(DesKnownAnswer, EncryptMatchesVector)
{
    const auto &[key_hex, plain_hex, cipher_hex] = GetParam();
    Des des(fromHex(key_hex).data());
    const auto plain = fromHex(plain_hex);
    uint8_t out[8];
    des.encryptBlock(plain.data(), out);
    EXPECT_EQ(toHex(out, 8), cipher_hex);
}

TEST_P(DesKnownAnswer, DecryptInvertsVector)
{
    const auto &[key_hex, plain_hex, cipher_hex] = GetParam();
    Des des(fromHex(key_hex).data());
    const auto cipher = fromHex(cipher_hex);
    uint8_t out[8];
    des.decryptBlock(cipher.data(), out);
    EXPECT_EQ(toHex(out, 8), plain_hex);
}

INSTANTIATE_TEST_SUITE_P(FipsVectors, DesKnownAnswer,
                         ::testing::ValuesIn(kDesVectors));

TEST(Des, RoundTripRandomBlocks)
{
    Rng rng(101);
    uint8_t key[8];
    rng.fillBytes(key, 8);
    Des des(key);
    for (int i = 0; i < 200; ++i) {
        uint8_t plain[8], cipher[8], back[8];
        rng.fillBytes(plain, 8);
        des.encryptBlock(plain, cipher);
        des.decryptBlock(cipher, back);
        ASSERT_EQ(std::memcmp(plain, back, 8), 0);
        ASSERT_NE(std::memcmp(plain, cipher, 8), 0)
            << "ciphertext must differ from plaintext";
    }
}

TEST(Des, Uint64Interface)
{
    Des des(uint64_t{0x133457799BBCDFF1ull});
    EXPECT_EQ(des.encrypt64(0x0123456789ABCDEFull),
              0x85E813540F0AB405ull);
    EXPECT_EQ(des.decrypt64(0x85E813540F0AB405ull),
              0x0123456789ABCDEFull);
}

TEST(Des, InPlaceBlockAliasing)
{
    Des des(uint64_t{0x133457799BBCDFF1ull});
    auto buf = fromHex("0123456789abcdef");
    des.encryptBlock(buf.data(), buf.data());
    EXPECT_EQ(toHex(buf.data(), 8), "85e813540f0ab405");
    des.decryptBlock(buf.data(), buf.data());
    EXPECT_EQ(toHex(buf.data(), 8), "0123456789abcdef");
}

TEST(Des, AvalancheOnePlaintextBit)
{
    Des des(uint64_t{0x133457799BBCDFF1ull});
    const uint64_t c0 = des.encrypt64(0);
    const uint64_t c1 = des.encrypt64(1);
    const int flipped = std::popcount(c0 ^ c1);
    EXPECT_GT(flipped, 16) << "DES avalanche should flip ~32 bits";
    EXPECT_LT(flipped, 48);
}

// ------------------------------------------------------------------- 3DES

TEST(TripleDes, DegeneratesToSingleDesWithEqualKeys)
{
    const auto key = fromHex("133457799bbcdff1");
    std::vector<uint8_t> triple_key;
    for (int i = 0; i < 3; ++i)
        triple_key.insert(triple_key.end(), key.begin(), key.end());
    TripleDes tdes(triple_key.data());
    Des des(key.data());

    Rng rng(7);
    for (int i = 0; i < 50; ++i) {
        uint8_t plain[8], c1[8], c2[8];
        rng.fillBytes(plain, 8);
        tdes.encryptBlock(plain, c1);
        des.encryptBlock(plain, c2);
        ASSERT_EQ(std::memcmp(c1, c2, 8), 0);
    }
}

TEST(TripleDes, RoundTripDistinctKeys)
{
    Rng rng(8);
    uint8_t key[24];
    rng.fillBytes(key, 24);
    TripleDes tdes(key);
    for (int i = 0; i < 100; ++i) {
        uint8_t plain[8], cipher[8], back[8];
        rng.fillBytes(plain, 8);
        tdes.encryptBlock(plain, cipher);
        tdes.decryptBlock(cipher, back);
        ASSERT_EQ(std::memcmp(plain, back, 8), 0);
    }
}

// -------------------------------------------------------------------- AES

TEST(Aes128, Fips197AppendixC)
{
    const auto key = fromHex("000102030405060708090a0b0c0d0e0f");
    const auto plain = fromHex("00112233445566778899aabbccddeeff");
    Aes128 aes(key.data());
    uint8_t out[16];
    aes.encryptBlock(plain.data(), out);
    EXPECT_EQ(toHex(out, 16), "69c4e0d86a7b0430d8cdb78070b4c55a");
    uint8_t back[16];
    aes.decryptBlock(out, back);
    EXPECT_EQ(toHex(back, 16), toHex(plain.data(), 16));
}

TEST(Aes128, Fips197AppendixBVector)
{
    const auto key = fromHex("2b7e151628aed2a6abf7158809cf4f3c");
    const auto plain = fromHex("3243f6a8885a308d313198a2e0370734");
    Aes128 aes(key.data());
    uint8_t out[16];
    aes.encryptBlock(plain.data(), out);
    EXPECT_EQ(toHex(out, 16), "3925841d02dc09fbdc118597196a0b32");
}

TEST(Aes128, RoundTripRandomBlocks)
{
    Rng rng(303);
    uint8_t key[16];
    rng.fillBytes(key, 16);
    Aes128 aes(key);
    for (int i = 0; i < 200; ++i) {
        uint8_t plain[16], cipher[16], back[16];
        rng.fillBytes(plain, 16);
        aes.encryptBlock(plain, cipher);
        aes.decryptBlock(cipher, back);
        ASSERT_EQ(std::memcmp(plain, back, 16), 0);
    }
}

TEST(Aes128, KeySensitivity)
{
    const auto key1 = fromHex("000102030405060708090a0b0c0d0e0f");
    auto key2 = key1;
    key2[15] ^= 1;
    Aes128 a(key1.data()), b(key2.data());
    uint8_t plain[16] = {}, c1[16], c2[16];
    a.encryptBlock(plain, c1);
    b.encryptBlock(plain, c2);
    EXPECT_NE(std::memcmp(c1, c2, 16), 0);
}

// ------------------------------------------------------------------ modes

TEST(Modes, EcbLeaksRepeatedBlocksOtpDoesNot)
{
    // This is the paper's Section 3.4 observation in miniature: the
    // memory holds many repeated values; ECB (XOM direct encryption)
    // preserves the repetition, OTP with per-address seeds removes it.
    Des des(uint64_t{0x0123456789ABCDEFull});
    std::vector<uint8_t> repeated(128, 0); // a zero-filled cache line

    auto ecb = repeated;
    ecbEncrypt(des, ecb.data(), ecb.size());
    EXPECT_EQ(countRepeatedBlocks(ecb.data(), ecb.size(), 8), 15u)
        << "16 identical plaintext blocks leave 15 repeats under ECB";

    auto otp = repeated;
    otpTransform(des, /*seed=*/0x1000, otp.data(), otp.size());
    EXPECT_EQ(countRepeatedBlocks(otp.data(), otp.size(), 8), 0u)
        << "counter-mode pads de-correlate identical blocks";
}

TEST(Modes, EcbRoundTrip)
{
    Des des(uint64_t{0xA5A5A5A55A5A5A5Aull});
    Rng rng(5);
    std::vector<uint8_t> data(256);
    rng.fillBytes(data.data(), data.size());
    auto copy = data;
    ecbEncrypt(des, data.data(), data.size());
    EXPECT_NE(data, copy);
    ecbDecrypt(des, data.data(), data.size());
    EXPECT_EQ(data, copy);
}

TEST(Modes, OtpIsAnInvolution)
{
    Aes128 aes(fromHex("000102030405060708090a0b0c0d0e0f").data());
    Rng rng(6);
    std::vector<uint8_t> data(128);
    rng.fillBytes(data.data(), data.size());
    auto copy = data;
    otpTransform(aes, 42, data.data(), data.size());
    EXPECT_NE(data, copy);
    otpTransform(aes, 42, data.data(), data.size());
    EXPECT_EQ(data, copy);
}

TEST(Modes, DifferentSeedsGiveUnrelatedPads)
{
    Des des(uint64_t{0x1122334455667788ull});
    uint8_t pad1[128], pad2[128];
    generatePad(des, 1000, pad1, sizeof(pad1));
    generatePad(des, 1001, pad2, sizeof(pad2));
    EXPECT_NE(std::memcmp(pad1, pad2, sizeof(pad1)), 0);
    // Sequential seeds must not shift-align either (paper Section 3.4:
    // E(addr) and E(addr+1) are completely unrelated).
    EXPECT_NE(std::memcmp(pad1 + 8, pad2, sizeof(pad1) - 8), 0);
}

TEST(Modes, PadIsDeterministicPerSeed)
{
    Des des(uint64_t{0x1122334455667788ull});
    uint8_t pad1[64], pad2[64];
    generatePad(des, 77, pad1, sizeof(pad1));
    generatePad(des, 77, pad2, sizeof(pad2));
    EXPECT_EQ(std::memcmp(pad1, pad2, sizeof(pad1)), 0);
}

// -------------------------------------------------------------------- SHA

TEST(Sha1, KnownVectors)
{
    auto d = Sha1::digest(reinterpret_cast<const uint8_t *>("abc"), 3);
    EXPECT_EQ(toHex(d.data(), d.size()),
              "a9993e364706816aba3e25717850c26c9cd0d89d");

    const std::string empty;
    d = Sha1::digest(reinterpret_cast<const uint8_t *>(empty.data()), 0);
    EXPECT_EQ(toHex(d.data(), d.size()),
              "da39a3ee5e6b4b0d3255bfef95601890afd80709");

    const std::string msg =
        "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
    d = Sha1::digest(reinterpret_cast<const uint8_t *>(msg.data()),
                     msg.size());
    EXPECT_EQ(toHex(d.data(), d.size()),
              "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha256, KnownVectors)
{
    auto d = Sha256::digest(reinterpret_cast<const uint8_t *>("abc"), 3);
    EXPECT_EQ(toHex(d.data(), d.size()),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");

    d = Sha256::digest(nullptr, 0);
    EXPECT_EQ(toHex(d.data(), d.size()),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
}

struct ShaVector
{
    const char *message_hex;
    const char *digest_hex;
};

/** NIST CAVP SHA-256 short-message known answers (byte-oriented). */
const ShaVector kSha256ShortMessages[] = {
    {"d3", "28969cdfa74a12c82f3bad960b0b000aca2ac329deea5c2328ebc6f2ba9802c1"},
    {"11af", "5ca7133fa735326081558ac312c620eeca9970d1e70a4b95533d956f072d1f98"},
    {"b4190e", "dff2e73091f6c05e528896c4c831b9448653dc2ff043528f6769437bc7b975c2"},
    {"74ba2521", "b16aa56be3880d18cd41e68384cf1ec8c17680c45a02b1575dc1518923ae8b0e"},
    {"c299209682", "f0887fe961c9cd3beab957e8222494abb969b1ce4c6557976df8b0f6d20e9166"},
    {"e1dc724d5621", "eca0a060b489636225b4fa64d267dabbe44273067ac679f20820bddc6b6a90ac"},
    {"06e076f5a442d5", "3fd877e27450e6bbd5d74bb82f9870c64c66e109418baa8e6bbcff355e287926"},
    {"5738c929c4f4ccb6", "963bb88f27f512777aab6c8b1a02c70ec0ad651d428f870036e1917120fb48bf"},
    {"3334c58075d3f4139e", "078da3d77ed43bd3037a433fd0341855023793f9afd08b4b08ea1e5597ceef20"},
    {"74cb9381d89f5aa73368", "73d6fad1caaa75b43b21733561fd3958bdc555194a037c2addec19dc2d7a52bd"},
};

class Sha256ShortMessage : public ::testing::TestWithParam<ShaVector>
{};

TEST_P(Sha256ShortMessage, MatchesNistVector)
{
    const auto &[message_hex, digest_hex] = GetParam();
    const auto message = fromHex(message_hex);
    const auto d = Sha256::digest(message.data(), message.size());
    EXPECT_EQ(toHex(d.data(), d.size()), digest_hex);
}

INSTANTIATE_TEST_SUITE_P(NistCavp, Sha256ShortMessage,
                         ::testing::ValuesIn(kSha256ShortMessages));

TEST(Sha256, IncrementalMatchesOneShot)
{
    Rng rng(9);
    std::vector<uint8_t> data(1000);
    rng.fillBytes(data.data(), data.size());
    const auto expect = Sha256::digest(data.data(), data.size());

    Sha256 hasher;
    size_t off = 0;
    const size_t chunks[] = {1, 63, 64, 65, 500, 307};
    for (size_t chunk : chunks) {
        hasher.update(data.data() + off, chunk);
        off += chunk;
    }
    ASSERT_EQ(off, data.size());
    std::array<uint8_t, Sha256::kDigestSize> got;
    hasher.final(got.data());
    EXPECT_EQ(got, expect);
}

/**
 * Differential pin for the SHA-NI compression path: on hardware that
 * has it, the vectorized multi-block compressor must transform
 * arbitrary chaining states exactly like the portable scalar code,
 * for every block count the bulk update() path can issue.
 */
TEST(Sha256, HardwareCompressMatchesScalar)
{
    if (!detail::sha256CpuHasShaNi())
        GTEST_SKIP() << "no SHA-NI on this host";

    Rng rng(0x5AA5);
    for (size_t blocks = 1; blocks <= 8; ++blocks) {
        for (int trial = 0; trial < 25; ++trial) {
            uint32_t state_scalar[8];
            for (uint32_t &word : state_scalar)
                word = static_cast<uint32_t>(rng.next64());
            uint32_t state_hw[8];
            std::memcpy(state_hw, state_scalar, sizeof state_hw);

            std::vector<uint8_t> data(blocks * 64);
            rng.fillBytes(data.data(), data.size());

            detail::sha256CompressScalar(state_scalar, data.data(),
                                         blocks);
            detail::sha256CompressHw(state_hw, data.data(), blocks);
            ASSERT_EQ(std::memcmp(state_scalar, state_hw,
                                  sizeof state_scalar),
                      0)
                << "diverged at blocks=" << blocks
                << " trial=" << trial;
        }
    }
}

/** SECPROC_SHA256=scalar pins the portable path process-wide. */
TEST(Sha256, DispatchMatchesProbeUnlessForcedScalar)
{
    // The dispatch latches on first use; the availability report
    // must agree with the CPU probe unless the environment forced
    // the scalar path.
    const char *forced = getenv("SECPROC_SHA256");
    if (forced != nullptr && std::string(forced) == "scalar")
        EXPECT_FALSE(sha256HardwareAvailable());
    else
        EXPECT_EQ(sha256HardwareAvailable(),
                  detail::sha256CpuHasShaNi());
}

TEST(Hmac, Rfc4231Case1)
{
    std::vector<uint8_t> key(20, 0x0b);
    const std::string msg = "Hi There";
    const auto mac = hmacSha256(
        key.data(), key.size(),
        reinterpret_cast<const uint8_t *>(msg.data()), msg.size());
    EXPECT_EQ(toHex(mac.data(), mac.size()),
              "b0344c61d8db38535ca8afceaf0bf12b"
              "881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2)
{
    const std::string key = "Jefe";
    const std::string msg = "what do ya want for nothing?";
    const auto mac = hmacSha256(
        reinterpret_cast<const uint8_t *>(key.data()), key.size(),
        reinterpret_cast<const uint8_t *>(msg.data()), msg.size());
    EXPECT_EQ(toHex(mac.data(), mac.size()),
              "5bdcc146bf60754e6a042426089575c7"
              "5a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3CombinedKeyAndData)
{
    const std::vector<uint8_t> key(20, 0xaa);
    const std::vector<uint8_t> msg(50, 0xdd);
    const auto mac =
        hmacSha256(key.data(), key.size(), msg.data(), msg.size());
    EXPECT_EQ(toHex(mac.data(), mac.size()),
              "773ea91e36800e46854db8ebd09181a7"
              "2959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case4TwentyFiveByteKey)
{
    const auto key =
        fromHex("0102030405060708090a0b0c0d0e0f10111213141516171819");
    const std::vector<uint8_t> msg(50, 0xcd);
    const auto mac =
        hmacSha256(key.data(), key.size(), msg.data(), msg.size());
    EXPECT_EQ(toHex(mac.data(), mac.size()),
              "82558a389a443c0ea4cc819899f2083a"
              "85f0faa3e578f8077a2e3ff46729665b");
}

TEST(Hmac, Rfc4231Case6KeyLargerThanBlock)
{
    // 131-byte key: exercises the hash-the-key-down path.
    const std::vector<uint8_t> key(131, 0xaa);
    const std::string msg =
        "Test Using Larger Than Block-Size Key - Hash Key First";
    const auto mac = hmacSha256(
        key.data(), key.size(),
        reinterpret_cast<const uint8_t *>(msg.data()), msg.size());
    EXPECT_EQ(toHex(mac.data(), mac.size()),
              "60e431591ee0b67f0d8a26aacbf5b77f"
              "8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, Rfc4231Case7KeyAndDataLargerThanBlock)
{
    const std::vector<uint8_t> key(131, 0xaa);
    const std::string msg =
        "This is a test using a larger than block-size key and a "
        "larger than block-size data. The key needs to be hashed "
        "before being used by the HMAC algorithm.";
    const auto mac = hmacSha256(
        key.data(), key.size(),
        reinterpret_cast<const uint8_t *>(msg.data()), msg.size());
    EXPECT_EQ(toHex(mac.data(), mac.size()),
              "9b09ffa71b942fcb27635fbcd5b0e944"
              "bfdc63644f0713938a7f51535c3a35e2");
}

// ----------------------------------------------------------------- BigInt

TEST(BigInt, HexRoundTrip)
{
    const std::string hex = "123456789abcdef0fedcba9876543210";
    EXPECT_EQ(BigInt::fromHex(hex).toHex(), hex);
    EXPECT_EQ(BigInt().toHex(), "0");
    EXPECT_EQ(BigInt(0xABCDu).toHex(), "abcd");
}

TEST(BigInt, AddSubProperty)
{
    Rng rng(21);
    for (int i = 0; i < 100; ++i) {
        const BigInt a = BigInt::randomBits(200, rng);
        const BigInt b = BigInt::randomBits(150, rng);
        EXPECT_EQ((a + b) - b, a);
        EXPECT_EQ((a + b) - a, b);
        EXPECT_TRUE(a + b >= a);
    }
}

TEST(BigInt, MulDivProperty)
{
    Rng rng(22);
    for (int i = 0; i < 50; ++i) {
        const BigInt a = BigInt::randomBits(180, rng);
        const BigInt b = BigInt::randomBits(90, rng);
        const auto [q, r] = a.divmod(b);
        EXPECT_TRUE(r < b);
        EXPECT_EQ(q * b + r, a);
    }
}

TEST(BigInt, ShiftConsistency)
{
    Rng rng(23);
    for (int i = 0; i < 50; ++i) {
        const BigInt a = BigInt::randomBits(100, rng);
        for (unsigned s : {1u, 13u, 64u, 65u, 127u}) {
            EXPECT_EQ((a << s) >> s, a);
            EXPECT_EQ(a << s, a * (BigInt(1) << s));
        }
    }
}

TEST(BigInt, BitLength)
{
    EXPECT_EQ(BigInt().bitLength(), 0u);
    EXPECT_EQ(BigInt(1).bitLength(), 1u);
    EXPECT_EQ(BigInt(255).bitLength(), 8u);
    EXPECT_EQ(BigInt(256).bitLength(), 9u);
    EXPECT_EQ((BigInt(1) << 200).bitLength(), 201u);
}

TEST(BigInt, ModExpSmallKnownValues)
{
    // 4^13 mod 497 = 445 (classic example).
    EXPECT_EQ(BigInt(4).modExp(BigInt(13), BigInt(497)), BigInt(445));
    // Fermat: a^(p-1) = 1 mod p.
    EXPECT_EQ(BigInt(7).modExp(BigInt(1000002), BigInt(1000003)),
              BigInt(1));
}

TEST(BigInt, ModInverse)
{
    Rng rng(24);
    const BigInt m = BigInt::randomPrime(64, rng);
    for (int i = 0; i < 20; ++i) {
        const BigInt a = BigInt(2) + BigInt::randomBelow(m - BigInt(3),
                                                         rng);
        const BigInt inv = a.modInverse(m);
        EXPECT_EQ((a * inv) % m, BigInt(1));
    }
}

TEST(BigInt, PrimalityKnownValues)
{
    Rng rng(25);
    EXPECT_TRUE(BigInt(2).isProbablePrime(rng));
    EXPECT_TRUE(BigInt(97).isProbablePrime(rng));
    EXPECT_TRUE(BigInt(1000003).isProbablePrime(rng));
    EXPECT_FALSE(BigInt(1000001).isProbablePrime(rng)); // 101*9901
    EXPECT_FALSE(BigInt(561).isProbablePrime(rng)); // Carmichael
    EXPECT_FALSE(BigInt(1).isProbablePrime(rng));
    EXPECT_FALSE(BigInt().isProbablePrime(rng));
    // 2^61 - 1 is a Mersenne prime.
    EXPECT_TRUE(BigInt((1ull << 61) - 1).isProbablePrime(rng));
}

TEST(BigInt, RandomPrimeHasExactBitLength)
{
    Rng rng(26);
    for (unsigned bits : {32u, 48u, 96u}) {
        const BigInt p = BigInt::randomPrime(bits, rng);
        EXPECT_EQ(p.bitLength(), bits);
        EXPECT_TRUE(p.isProbablePrime(rng));
    }
}

// ------------------------------------------- BigInt fast-path differentials
//
// The optimized paths (Karatsuba multiply, Knuth-D divmod, Montgomery
// modExp) must be bit-identical to the retained schoolbook reference
// implementations. Together these loops cross-check well over 1000
// randomized cases spanning 512/1024/2048-bit (and larger) operands.

TEST(BigIntDifferential, MulMatchesSchoolbook)
{
    Rng rng(41);
    for (int i = 0; i < 400; ++i) {
        // Spans both sides of kKaratsubaThresholdLimbs (48 limbs =
        // 3072 bits), including asymmetric operand sizes.
        const unsigned abits =
            64 + static_cast<unsigned>(rng.next64() % 4100);
        const unsigned bbits =
            64 + static_cast<unsigned>(rng.next64() % 4100);
        const BigInt a = BigInt::randomBits(abits, rng);
        const BigInt b = BigInt::randomBits(bbits, rng);
        ASSERT_EQ(a * b, BigInt::mulSchoolbook(a, b))
            << "abits=" << abits << " bbits=" << bbits;
    }
}

TEST(BigIntDifferential, MulKaratsubaBoundarySizes)
{
    Rng rng(42);
    const unsigned t =
        static_cast<unsigned>(BigInt::kKaratsubaThresholdLimbs);
    for (unsigned limbs : {t - 1, t, t + 1, 2 * t, 2 * t + 3}) {
        const BigInt a = BigInt::randomBits(64 * limbs, rng);
        const BigInt b = BigInt::randomBits(64 * limbs - 17, rng);
        EXPECT_EQ(a * b, BigInt::mulSchoolbook(a, b))
            << "limbs=" << limbs;
        // Operands with many zero limbs stress the split/trim logic.
        const BigInt sparse = BigInt(1) << (64 * limbs - 1);
        EXPECT_EQ(a * sparse, BigInt::mulSchoolbook(a, sparse));
    }
}

TEST(BigIntDifferential, DivmodMatchesSchoolbook)
{
    Rng rng(43);
    for (int i = 0; i < 400; ++i) {
        const unsigned abits =
            64 + static_cast<unsigned>(rng.next64() % 2100);
        const unsigned bbits =
            1 + static_cast<unsigned>(rng.next64() % abits);
        const BigInt a = BigInt::randomBits(abits, rng);
        const BigInt b = BigInt::randomBits(bbits, rng);
        const auto [q, r] = a.divmod(b);
        const auto [qs, rs] = a.divmodSchoolbook(b);
        ASSERT_EQ(q, qs) << "abits=" << abits << " bbits=" << bbits;
        ASSERT_EQ(r, rs);
        ASSERT_EQ(q * b + r, a);
        ASSERT_TRUE(r < b);
    }
}

TEST(BigIntDifferential, DivmodQuotientCorrectionPath)
{
    // The base-2^32 add-back case from the classic Algorithm D test
    // suites, widened to 64-bit limbs: the two-limb trial quotient
    // overestimates and the quotient-correction (add-back) branch
    // must fire. No panic machinery may run on this path.
    const BigInt u = BigInt::fromHex(
        "8000000000000000" "fffffffffffffffe" "0000000000000000");
    const BigInt v =
        BigInt::fromHex("8000000000000000" "ffffffffffffffff");
    const auto [q, r] = u.divmod(v);
    const auto [qs, rs] = u.divmodSchoolbook(v);
    EXPECT_EQ(q, qs);
    EXPECT_EQ(r, rs);
    EXPECT_EQ(q * v + r, u);
    EXPECT_TRUE(r < v);

    // Divisors just below a power of two keep the estimate maximally
    // optimistic; sweep dividends around multiples of the divisor.
    Rng rng(44);
    for (int i = 0; i < 64; ++i) {
        const BigInt d =
            (BigInt(1) << 192) - BigInt(1 + (rng.next64() & 0xFF));
        const BigInt k = BigInt::randomBits(130, rng);
        for (const BigInt &a :
             {d * k, d * k + BigInt(1), d * k - BigInt(1),
              d * k + d - BigInt(1)}) {
            const auto [q2, r2] = a.divmod(d);
            const auto [q2s, r2s] = a.divmodSchoolbook(d);
            ASSERT_EQ(q2, q2s);
            ASSERT_EQ(r2, r2s);
        }
    }
}

TEST(BigIntDifferential, MontgomeryMulMatchesPlainReduction)
{
    Rng rng(45);
    for (unsigned bits : {512u, 1024u, 2048u}) {
        for (int i = 0; i < 100; ++i) {
            BigInt n = BigInt::randomBits(bits, rng);
            if (!n.isOdd())
                n = n + BigInt(1);
            const MontgomeryCtx ctx(n);
            const BigInt a = BigInt::randomBelow(n, rng);
            const BigInt b = BigInt::randomBelow(n, rng);
            ASSERT_EQ(ctx.fromMont(ctx.mul(ctx.toMont(a),
                                           ctx.toMont(b))),
                      (a * b) % n)
                << "bits=" << bits;
            ASSERT_EQ(ctx.fromMont(ctx.toMont(a)), a);
        }
    }
}

TEST(BigIntDifferential, ModExpMatchesSchoolbook)
{
    Rng rng(46);
    for (unsigned bits : {512u, 1024u, 2048u}) {
        for (int i = 0; i < 12; ++i) {
            const BigInt m = BigInt::randomBits(bits, rng);
            const BigInt base = BigInt::randomBits(bits + 13, rng);
            const BigInt exp = BigInt::randomBits(
                1 + static_cast<unsigned>(rng.next64() % 48), rng);
            // Covers both parities of m: the Montgomery path for odd
            // moduli and the windowed divmod fallback for even ones.
            ASSERT_EQ(base.modExp(exp, m),
                      base.modExpSchoolbook(exp, m))
                << "bits=" << bits << " odd=" << m.isOdd();
        }
    }
}

TEST(BigInt, ModExpEdgeCases)
{
    const BigInt m = BigInt::fromHex("facefeed12345677");
    const BigInt even = BigInt::fromHex("facefeed12345678");
    // Zero exponent is 1 mod m on every path.
    EXPECT_EQ(BigInt(5).modExp(BigInt(0), m), BigInt(1));
    EXPECT_EQ(BigInt(5).modExp(BigInt(0), even), BigInt(1));
    EXPECT_EQ(BigInt(5).modExpSchoolbook(BigInt(0), m), BigInt(1));
    // Modulus 1 collapses everything to zero.
    EXPECT_EQ(BigInt(5).modExp(BigInt(12345), BigInt(1)), BigInt());
    EXPECT_EQ(BigInt(5).modExp(BigInt(0), BigInt(1)), BigInt());
    EXPECT_EQ(BigInt(5).modExpSchoolbook(BigInt(12345), BigInt(1)),
              BigInt());
    // Zero base with a non-zero exponent.
    EXPECT_EQ(BigInt(0).modExp(BigInt(977), m), BigInt());
    EXPECT_EQ(BigInt(0).modExp(BigInt(977), even), BigInt());
    // Base larger than the modulus is reduced first.
    Rng rng(47);
    const BigInt big = BigInt::randomBits(300, rng);
    EXPECT_EQ(big.modExp(BigInt(3), m), (big % m).modExp(BigInt(3), m));
    // Power-of-two modulus exercises the even fallback's trims.
    const BigInt pow2 = BigInt(1) << 128;
    EXPECT_EQ(BigInt(3).modExp(BigInt(129), pow2),
              BigInt(3).modExpSchoolbook(BigInt(129), pow2));
    // Exponent bit lengths around the 4-bit window boundaries.
    for (unsigned ebits : {1u, 3u, 4u, 5u, 8u, 9u, 63u, 64u, 65u}) {
        const BigInt e = BigInt::randomBits(ebits, rng);
        EXPECT_EQ(BigInt(7).modExp(e, m),
                  BigInt(7).modExpSchoolbook(e, m))
            << "ebits=" << ebits;
    }
}

TEST(BigIntDeath, ExplicitFailureModes)
{
    const BigInt x = BigInt::fromHex("1234567890abcdef00");
    EXPECT_DEATH_IF_SUPPORTED(x.divmod(BigInt(0)),
                              "division by zero");
    EXPECT_DEATH_IF_SUPPORTED(x.divmodSchoolbook(BigInt(0)),
                              "division by zero");
    EXPECT_DEATH_IF_SUPPORTED(x.modExp(BigInt(3), BigInt(0)),
                              "modulus must be non-zero");
    EXPECT_DEATH_IF_SUPPORTED(x.modExpSchoolbook(BigInt(3), BigInt(0)),
                              "modulus must be non-zero");
    EXPECT_DEATH_IF_SUPPORTED(BigInt(1) - BigInt(2),
                              "subtraction underflow");
    EXPECT_DEATH_IF_SUPPORTED(MontgomeryCtx(BigInt(10)), "odd");
    EXPECT_DEATH_IF_SUPPORTED(MontgomeryCtx(BigInt(1)), "odd");
}

TEST(MontgomeryCtx, KnownValuesAndDomainRoundTrip)
{
    const BigInt n = BigInt::fromHex("10000000000000000000000001");
    const MontgomeryCtx ctx(n);
    EXPECT_EQ(ctx.modulus(), n);
    // 4^13 mod 497 via a context on a different modulus size.
    const MontgomeryCtx small(BigInt(497));
    EXPECT_EQ(small.modExp(BigInt(4), BigInt(13)), BigInt(445));
    // Multiplying by the Montgomery form of 1 is the identity.
    Rng rng(48);
    for (int i = 0; i < 20; ++i) {
        const BigInt a = BigInt::randomBelow(n, rng);
        const BigInt am = ctx.toMont(a);
        EXPECT_EQ(ctx.mul(am, ctx.toMont(BigInt(1))), am);
        EXPECT_EQ(ctx.modExp(a, BigInt(1)), a);
    }
}

// -------------------------------------------------------------------- RSA

TEST(Rsa, RoundTripRaw)
{
    Rng rng(31);
    const auto pair = rsaGenerate(384, rng);
    for (int i = 0; i < 5; ++i) {
        const BigInt m = BigInt::randomBelow(pair.pub.n, rng);
        const BigInt c = rsaEncryptRaw(pair.pub, m);
        EXPECT_NE(c, m);
        EXPECT_EQ(rsaDecryptRaw(pair.priv, c), m);
    }
}

TEST(Rsa, WrapUnwrapKeyCapsule)
{
    Rng rng(32);
    const auto pair = rsaGenerate(384, rng);
    const std::vector<uint8_t> des_key =
        fromHex("133457799bbcdff1");
    const auto capsule = rsaWrap(pair.pub, des_key, rng);
    const auto back = rsaUnwrap(pair.priv, capsule);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, des_key);
}

TEST(Rsa, WrongProcessorCannotUnwrap)
{
    // The core XOM property: software keyed to CPU A does not run on
    // CPU B because B's private key cannot unwrap the capsule.
    Rng rng(33);
    const auto cpu_a = rsaGenerate(384, rng);
    const auto cpu_b = rsaGenerate(384, rng);
    const std::vector<uint8_t> key = fromHex("0123456789abcdef");
    const auto capsule = rsaWrap(cpu_a.pub, key, rng);
    const auto result = rsaUnwrap(cpu_b.priv, capsule);
    if (result.has_value()) {
        EXPECT_NE(*result, key) << "capsule must not open to the key";
    }
}

TEST(Rsa, TamperedCapsuleRejectedOrGarbage)
{
    Rng rng(34);
    const auto pair = rsaGenerate(384, rng);
    const std::vector<uint8_t> key = fromHex("00112233445566778899aabb");
    auto capsule = rsaWrap(pair.pub, key, rng);
    capsule[capsule.size() / 2] ^= 0x40;
    const auto result = rsaUnwrap(pair.priv, capsule);
    if (result.has_value()) {
        EXPECT_NE(*result, key);
    }
}

TEST(Rsa, SignVerifyDigest)
{
    Rng rng(35);
    const auto pair = rsaGenerate(384, rng);
    std::vector<uint8_t> digest(32);
    rng.fillBytes(digest.data(), digest.size());

    const auto signature = rsaSignDigest(pair.priv, digest);
    EXPECT_TRUE(rsaVerifyDigest(pair.pub, digest, signature));

    // Signatures are deterministic (type-01 padding, no salt).
    EXPECT_EQ(rsaSignDigest(pair.priv, digest), signature);
}

TEST(Rsa, SignatureRejectsTampering)
{
    Rng rng(36);
    const auto pair = rsaGenerate(384, rng);
    std::vector<uint8_t> digest(32);
    rng.fillBytes(digest.data(), digest.size());
    const auto signature = rsaSignDigest(pair.priv, digest);

    auto other_digest = digest;
    other_digest[0] ^= 1;
    EXPECT_FALSE(rsaVerifyDigest(pair.pub, other_digest, signature));

    auto broken_signature = signature;
    broken_signature[7] ^= 0x20;
    EXPECT_FALSE(rsaVerifyDigest(pair.pub, digest, broken_signature));

    EXPECT_FALSE(rsaVerifyDigest(pair.pub, digest, {}));
}

TEST(Rsa, SignatureBoundToKey)
{
    Rng rng(37);
    const auto alice = rsaGenerate(384, rng);
    const auto mallory = rsaGenerate(384, rng);
    std::vector<uint8_t> digest(32);
    rng.fillBytes(digest.data(), digest.size());

    const auto signature = rsaSignDigest(mallory.priv, digest);
    EXPECT_FALSE(rsaVerifyDigest(alice.pub, digest, signature))
        << "a signature under another key must not verify";
}

// Known-answer vector generated independently with Python's pow()
// (pure-python Miller-Rabin key generation, seed 20260730): a fixed
// 1024-bit key, digest, and the expected deterministic type-01
// signature. Pins the Montgomery path to an external reference, not
// just to our own schoolbook code.
TEST(Rsa, SignKnownAnswer1024)
{
    RsaPrivateKey priv(
        BigInt::fromHex(
            "d7dcfa22c2a489ff1718d6c02f3a85c73a3aeaae980842da4005d19a"
            "cbb44304490341050cfc6092290c55271ca117f7ea23d6b1132b541a"
            "f5d58c1d9073478893db15004f46df6bedbb3fac5508e768467de0c0"
            "4ed0610087c83a57991724cff793e08f3787c1c4e0d75d9a910d86e4"
            "107d97321bdc30125bb11a49aaf6f9a3"),
        BigInt::fromHex(
            "1527e41ffa019440baebc5484a98aab9cedc2d59f52e8216cfc58238"
            "70947728f95ae7496e6f61ab917852f4255b287534ae54814046b3d4"
            "7c997445057e36d95eb7c1792e90bf4bd1db39639c09cef92875201b"
            "c01b93f24faafb1800ccb6ce986e35c67360f6bed6cab0bee1f79e24"
            "148db94904089601159f3ca236452171"));
    const RsaPublicKey pub(priv.n, BigInt(0x10001));
    const auto digest = fromHex(
        "2ecd23bd1b95c236a642ddb3f10ad2694bfc0b293c8e4b8c9b74eed1"
        "3136250f");
    const auto expected = fromHex(
        "c03a9aa161d9ef0d7ac2e0a37539247819c8ccccef92e9ef1ea6bdee"
        "3528b985c1224aaca66bf4dc493083c7be5a422584cb40bd574d0910"
        "925d9e7e9ee0a0aa9875f75c17626f03802c0871685b75575533b725"
        "ea50fcae934fe6056856097a566990f9c429ad013933a99eefa3b7f2"
        "4107fd2b5f5426a69ff89ae144b425bd");

    EXPECT_EQ(rsaSignDigest(priv, digest), expected);
    EXPECT_TRUE(rsaVerifyDigest(pub, digest, expected));

    auto wrong = digest;
    wrong[31] ^= 1;
    EXPECT_FALSE(rsaVerifyDigest(pub, wrong, expected));

    // The schoolbook engine reproduces the same signature bits.
    const size_t k = (pub.n.bitLength() + 7) / 8;
    const auto block = rsaType01Block(digest, k);
    const BigInt m = BigInt::fromBytes(block.data(), block.size());
    EXPECT_EQ(m.modExpSchoolbook(priv.d, priv.n).toBytes(k), expected);
}

TEST(Rsa, MontgomeryContextIsCachedPerKey)
{
    Rng rng(38);
    const auto pair = rsaGenerate(384, rng);
    const auto ctx = pair.priv.montCtx();
    ASSERT_NE(ctx, nullptr);
    EXPECT_EQ(pair.priv.montCtx(), ctx) << "second use must reuse";
    EXPECT_EQ(ctx->modulus(), pair.priv.n);

    // Copies start with a cold cache (so copying never races a lazy
    // init of the source) and rebuild their own context on first use.
    const RsaPrivateKey copy = pair.priv;
    const auto copy_ctx = copy.montCtx();
    ASSERT_NE(copy_ctx, nullptr);
    EXPECT_NE(copy_ctx, ctx);
    EXPECT_EQ(copy_ctx->modulus(), pair.priv.n);
    EXPECT_EQ(copy.montCtx(), copy_ctx);

    // An even (invalid) modulus yields no context rather than a bad
    // one; modExp callers fall back to the generic path.
    const RsaPublicKey even_key(BigInt(0x10000), BigInt(3));
    EXPECT_EQ(even_key.montCtx(), nullptr);
}

// ---------------------------------------------------------- latency model

TEST(CryptoLatency, FlatLatency)
{
    CryptoEngineModel model({.latency = kPaperCryptoLatency,
                             .initiation_interval = 1});
    EXPECT_EQ(model.schedule(100), 150u);
    EXPECT_EQ(model.latency(), 50u);
}

TEST(CryptoLatency, PipelinedBackToBack)
{
    CryptoEngineModel model({.latency = kPaperCryptoLatency,
                             .initiation_interval = 1});
    // Fully pipelined engine: requests in consecutive cycles complete
    // in consecutive cycles.
    EXPECT_EQ(model.schedule(10), 60u);
    EXPECT_EQ(model.schedule(10), 61u);
    EXPECT_EQ(model.schedule(10), 62u);
    EXPECT_EQ(model.operations(), 3u);
}

TEST(CryptoLatency, NonPipelinedSerializes)
{
    CryptoEngineModel model({.latency = kPaperCryptoLatency,
                             .initiation_interval = 50});
    EXPECT_EQ(model.schedule(0), 50u);
    EXPECT_EQ(model.schedule(0), 100u);
    EXPECT_EQ(model.schedule(200), 250u);
}

TEST(CryptoLatency, ReserveOccupiesWholeOperation)
{
    CryptoEngineModel model({.latency = kPaperCryptoLatency,
                             .initiation_interval = 1});
    // A bulk reservation holds the engine for the full latency, not
    // just an issue slot.
    EXPECT_EQ(model.reserve(100), 150u);
    EXPECT_EQ(model.busyUntil(), 150u);
    // Pipelined work issued meanwhile queues behind the reservation.
    EXPECT_EQ(model.schedule(120), 200u);
    EXPECT_EQ(model.reservedOperations(), 1u);
    EXPECT_EQ(model.operations(), 2u);
}

TEST(CryptoLatency, ReserveBatchesBackToBack)
{
    CryptoEngineModel model({.latency = 10, .initiation_interval = 1});
    EXPECT_EQ(model.reserve(0, 4), 40u);
    EXPECT_EQ(model.reserve(15, 2), 60u); // queues behind the first
    EXPECT_EQ(model.reservedOperations(), 6u);
}

TEST(CryptoLatency, ResetClearsOccupancy)
{
    CryptoEngineModel model({.latency = 10, .initiation_interval = 10});
    model.schedule(0);
    model.reset();
    EXPECT_EQ(model.schedule(0), 10u);
    EXPECT_EQ(model.operations(), 1u);
}

} // namespace
