/**
 * @file
 * Unit tests for the memory substrate: set-associative cache
 * behaviour and policies, functional main memory, the memory channel
 * timing model and traffic accounting, virtual memory and regions.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/main_memory.hh"
#include "mem/memory_channel.hh"
#include "mem/on_chip_store.hh"
#include "mem/virtual_memory.hh"

namespace
{

using namespace secproc::mem;

// ------------------------------------------------------------------ cache

CacheConfig
smallCache(ReplacementPolicy policy = ReplacementPolicy::Lru,
           uint32_t assoc = 2)
{
    CacheConfig config;
    config.name = "test";
    config.size_bytes = 1024; // 16 lines
    config.line_size = 64;
    config.assoc = assoc;
    config.policy = policy;
    return config;
}

TEST(Cache, MissThenHit)
{
    Cache cache(smallCache());
    EXPECT_FALSE(cache.access(0x100, false));
    cache.fill(0x100, false, 0);
    EXPECT_TRUE(cache.access(0x100, false));
    EXPECT_TRUE(cache.access(0x13F, false)) << "same line, last byte";
    EXPECT_FALSE(cache.access(0x140, false)) << "next line";
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    // 2-way: two lines mapping to the same set, then a third.
    Cache cache(smallCache());
    const uint64_t set_stride = 64 * 8; // 8 sets
    cache.fill(0 * set_stride, false, 1);
    cache.fill(1 * set_stride, false, 2);
    // Touch the first so the second becomes LRU.
    EXPECT_TRUE(cache.access(0, false));
    const auto victim = cache.fill(2 * set_stride, false, 3);
    ASSERT_TRUE(victim.has_value());
    ASSERT_TRUE(victim->valid);
    EXPECT_EQ(victim->line_addr, 1 * set_stride);
    EXPECT_EQ(victim->meta, 2u);
    EXPECT_TRUE(cache.probe(0));
    EXPECT_FALSE(cache.probe(1 * set_stride));
}

TEST(Cache, FifoIgnoresTouches)
{
    Cache cache(smallCache(ReplacementPolicy::Fifo));
    const uint64_t set_stride = 64 * 8;
    cache.fill(0 * set_stride, false, 0);
    cache.fill(1 * set_stride, false, 0);
    // Touching the oldest must not save it under FIFO.
    EXPECT_TRUE(cache.access(0, false));
    const auto victim = cache.fill(2 * set_stride, false, 0);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->line_addr, 0u) << "FIFO evicts insertion order";
}

TEST(Cache, NoReplacementRejectsWhenFull)
{
    Cache cache(smallCache(ReplacementPolicy::NoReplacement));
    const uint64_t set_stride = 64 * 8;
    EXPECT_TRUE(cache.fill(0 * set_stride, false, 0).has_value());
    EXPECT_TRUE(cache.fill(1 * set_stride, false, 0).has_value());
    EXPECT_FALSE(cache.fill(2 * set_stride, false, 0).has_value());
    EXPECT_EQ(cache.rejectedFills(), 1u);
    // Both residents survive.
    EXPECT_TRUE(cache.probe(0));
    EXPECT_TRUE(cache.probe(set_stride));
}

TEST(Cache, DirtyTrackingAndWritebacks)
{
    Cache cache(smallCache());
    cache.fill(0x000, false, 0);
    cache.access(0x000, /*write=*/true);
    const uint64_t set_stride = 64 * 8;
    cache.fill(1 * set_stride, false, 0);
    const auto victim = cache.fill(2 * set_stride, false, 0);
    ASSERT_TRUE(victim.has_value());
    EXPECT_TRUE(victim->valid);
    EXPECT_TRUE(victim->dirty) << "written line must evict dirty";
    EXPECT_EQ(cache.dirtyEvictions(), 1u);
}

TEST(Cache, FullyAssociativeUsesWholeCapacity)
{
    Cache cache(smallCache(ReplacementPolicy::Lru, /*assoc=*/0));
    // 16 lines at wild addresses all fit.
    for (uint64_t i = 0; i < 16; ++i) {
        const auto victim = cache.fill(i * 0x10000, false, 0);
        ASSERT_TRUE(victim.has_value());
        EXPECT_FALSE(victim->valid) << "no eviction while space remains";
    }
    EXPECT_EQ(cache.occupancy(), 16u);
    const auto victim = cache.fill(99 * 0x10000, false, 0);
    ASSERT_TRUE(victim.has_value());
    EXPECT_TRUE(victim->valid);
}

TEST(Cache, RefillOfResidentLineKeepsDirtyAndUpdatesMeta)
{
    Cache cache(smallCache());
    cache.fill(0x40, true, 7);
    const auto victim = cache.fill(0x40, false, 9);
    ASSERT_TRUE(victim.has_value());
    EXPECT_FALSE(victim->valid) << "refill displaces nothing";
    EXPECT_EQ(*cache.meta(0x40), 9u);
    const Victim inval = cache.invalidate(0x40);
    EXPECT_TRUE(inval.dirty) << "dirty bit must survive the refill";
}

TEST(Cache, InvalidateAllReturnsEverything)
{
    Cache cache(smallCache());
    cache.fill(0x000, true, 0);
    cache.fill(0x400, false, 0);
    const auto victims = cache.invalidateAll();
    EXPECT_EQ(victims.size(), 2u);
    EXPECT_EQ(cache.occupancy(), 0u);
    EXPECT_FALSE(cache.probe(0x000));
}

TEST(Cache, MetaRoundTrip)
{
    Cache cache(smallCache());
    cache.fill(0x80, false, 0xDEAD);
    EXPECT_EQ(*cache.meta(0x80), 0xDEADu);
    EXPECT_TRUE(cache.setMeta(0x80, 0xBEEF));
    EXPECT_EQ(*cache.meta(0x80), 0xBEEFu);
    EXPECT_FALSE(cache.meta(0x9999).has_value());
    EXPECT_FALSE(cache.setMeta(0x9999, 1));
}

TEST(Cache, GeometryValidation)
{
    CacheConfig config = smallCache();
    config.line_size = 48; // not a power of two
    EXPECT_DEATH_IF_SUPPORTED({ Cache cache(config); (void)cache; },
                              "power of two");
}

/** Parameterized sweep: occupancy never exceeds capacity and eviction
 *  count matches fills minus capacity across shapes. */
class CacheSweep
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>>
{};

TEST_P(CacheSweep, CapacityInvariant)
{
    const auto [assoc, line_size] = GetParam();
    CacheConfig config;
    config.size_bytes = 8 * 1024;
    config.assoc = assoc;
    config.line_size = line_size;
    Cache cache(config);
    const uint64_t lines = config.numLines();

    secproc::util::Rng rng(99);
    uint64_t accepted = 0;
    for (int i = 0; i < 5000; ++i) {
        const uint64_t addr = rng.nextRange(1 << 20) * line_size;
        if (!cache.access(addr, false)) {
            const auto victim = cache.fill(addr, false, 0);
            accepted += victim.has_value();
        }
        ASSERT_LE(cache.occupancy(), lines);
    }
    EXPECT_EQ(cache.evictions() + cache.occupancy(), accepted);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheSweep,
    ::testing::Combine(::testing::Values(0u, 1u, 2u, 4u, 8u),
                       ::testing::Values(32u, 64u, 128u)));

// ---------------------------------------------------------- main memory

TEST(MainMemory, ZeroFillSemantics)
{
    MainMemory memory;
    uint8_t buf[16];
    memory.read(0x123456, buf, sizeof(buf));
    for (uint8_t b : buf)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(memory.residentPages(), 0u) << "reads must not allocate";
}

TEST(MainMemory, WriteReadRoundTrip)
{
    MainMemory memory;
    const std::vector<uint8_t> line = {1, 2, 3, 4, 5, 6, 7, 8};
    memory.write(0x1000, line.data(), line.size());
    uint8_t buf[8];
    memory.read(0x1000, buf, sizeof(buf));
    EXPECT_EQ(std::vector<uint8_t>(buf, buf + 8), line);
}

TEST(MainMemory, CrossPageAccess)
{
    MainMemory memory;
    std::vector<uint8_t> data(256);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i);
    const uint64_t addr = MainMemory::kPageSize - 100;
    memory.write(addr, data.data(), data.size());
    std::vector<uint8_t> back(256);
    memory.read(addr, back.data(), back.size());
    EXPECT_EQ(back, data);
    EXPECT_EQ(memory.residentPages(), 2u);
}

TEST(MainMemory, CorruptByteFlipsExactBit)
{
    MainMemory memory;
    const std::vector<uint8_t> line(64, 0xAA);
    memory.writeLine(0x2000, line);
    memory.corruptByte(0x2010, 0x01);
    const auto back = memory.readLine(0x2000, 64);
    EXPECT_EQ(back[0x10], 0xAB);
    EXPECT_EQ(back[0x11], 0xAA);
}

// --------------------------------------------------------------- channel

ChannelConfig
fastChannel()
{
    ChannelConfig config;
    config.access_latency = 100;
    config.transfer_cycles = 16;
    config.small_transfer_cycles = 2;
    config.write_buffer_entries = 4;
    return config;
}

TEST(MemoryChannel, ReadLatency)
{
    MemoryChannel channel(fastChannel());
    EXPECT_EQ(channel.scheduleRead(0, Traffic::DataFill), 100u);
    // Second read queues behind the first transfer.
    EXPECT_EQ(channel.scheduleRead(0, Traffic::DataFill), 116u);
    // A read far in the future sees an idle bus.
    EXPECT_EQ(channel.scheduleRead(1000, Traffic::DataFill), 1100u);
}

TEST(MemoryChannel, SmallTransfersOccupyLess)
{
    MemoryChannel channel(fastChannel());
    channel.scheduleRead(0, Traffic::SeqnumFetch, /*small=*/true);
    EXPECT_EQ(channel.scheduleRead(0, Traffic::DataFill), 102u)
        << "seqnum transfer holds the bus for only 2 cycles";
}

TEST(MemoryChannel, WritesDrainIntoIdleGaps)
{
    MemoryChannel channel(fastChannel());
    channel.enqueueWrite(0, Traffic::DataWriteback);
    channel.enqueueWrite(0, Traffic::DataWriteback);
    // Huge idle gap: both writes drain before this read, which then
    // sees a free bus.
    EXPECT_EQ(channel.scheduleRead(500, Traffic::DataFill), 600u);
    EXPECT_EQ(channel.bytes(Traffic::DataWriteback),
              2u * channel.config().line_bytes);
}

TEST(MemoryChannel, SaturatedWriteBufferStallsReads)
{
    MemoryChannel channel(fastChannel());
    // Fill the 4-entry buffer with writes that are ready immediately.
    for (int i = 0; i < 4; ++i)
        channel.enqueueWrite(0, Traffic::DataWriteback);
    // A read at cycle 0 has no idle gap; forced drains push it back.
    const uint64_t ready = channel.scheduleRead(0, Traffic::DataFill);
    EXPECT_GT(ready, 100u) << "forced drains must delay the read";
}

TEST(MemoryChannel, TrafficAttribution)
{
    MemoryChannel channel(fastChannel());
    channel.scheduleRead(0, Traffic::DataFill);
    channel.enqueueWrite(0, Traffic::DataWriteback);
    channel.scheduleRead(0, Traffic::SeqnumFetch, true);
    channel.enqueueWrite(0, Traffic::SeqnumWriteback, true);
    EXPECT_EQ(channel.dataBytes(), 256u);
    EXPECT_EQ(channel.seqnumBytes(), 16u);
    EXPECT_EQ(channel.transactions(Traffic::SeqnumFetch), 1u);
    channel.reset();
    EXPECT_EQ(channel.dataBytes(), 0u);
}

TEST(MemoryChannel, PerAgentAttribution)
{
    MemoryChannel channel(fastChannel());
    EXPECT_EQ(channel.agentCount(), 1u);
    EXPECT_EQ(channel.agentName(kCoreAgent), "core");

    const AgentId updater = channel.registerAgent("updater");
    EXPECT_EQ(channel.agentCount(), 2u);
    EXPECT_EQ(channel.agentName(updater), "updater");

    channel.scheduleRead(0, Traffic::DataFill); // core by default
    channel.scheduleRead(0, Traffic::UpdateFill, false, 0, updater);
    channel.enqueueWrite(0, Traffic::UpdateWriteback, false, 0,
                         updater);

    const uint32_t line = channel.config().line_bytes;
    EXPECT_EQ(channel.agentBytes(kCoreAgent), line);
    EXPECT_EQ(channel.agentBytes(updater), 2u * line);
    EXPECT_EQ(channel.agentBytes(updater, Traffic::UpdateFill), line);
    EXPECT_EQ(channel.agentTransactions(updater), 2u);
    EXPECT_EQ(channel.updateBytes(), 2u * line);
    // Update traffic never pollutes the Figure 9 accounting.
    EXPECT_EQ(channel.dataBytes(), line);
    EXPECT_EQ(channel.seqnumBytes(), 0u);

    channel.reset();
    EXPECT_EQ(channel.agentBytes(updater), 0u);
    EXPECT_EQ(channel.agentCount(), 2u) << "agents survive reset";
}

TEST(MemoryChannel, AgentsShareOneBus)
{
    MemoryChannel channel(fastChannel());
    const AgentId updater = channel.registerAgent("updater");
    // The updater's transfer occupies the same scalar bus horizon,
    // so the core's read queues behind it exactly as a second core
    // read would.
    channel.scheduleRead(0, Traffic::UpdateFill, false, 0, updater);
    EXPECT_EQ(channel.scheduleRead(0, Traffic::DataFill), 116u);
}

TEST(MemoryChannel, EveryCategoryIsGroupedAndNamed)
{
    MemoryChannel channel(fastChannel());
    const auto count = static_cast<size_t>(Traffic::NumCategories);
    for (size_t i = 0; i < count; ++i)
        channel.scheduleRead(0, static_cast<Traffic>(i));
    // No category may be silently dropped from the grouped
    // accessors; a mismatch panics with the missing byte count.
    channel.assertFullyAttributed();
    EXPECT_EQ(channel.totalBytes(),
              count * channel.config().line_bytes);
    const auto rows = channel.byCategory();
    ASSERT_EQ(rows.size(), count);
    for (const auto &row : rows) {
        EXPECT_NE(row.name, "unknown");
        EXPECT_EQ(row.transactions, 1u);
    }
}

TEST(MemoryChannelDeath, UnknownAgentPanics)
{
    MemoryChannel channel(fastChannel());
    EXPECT_DEATH_IF_SUPPORTED(
        channel.scheduleRead(0, Traffic::DataFill, false, 0,
                             AgentId{7}),
        "unregistered channel agent");
}

// --------------------------------------------------------------- arbiter

/** Core read stream timings with and without arbiter traffic. */
std::vector<uint64_t>
coreReadTimeline(MemoryChannel &channel, int reads)
{
    std::vector<uint64_t> arrivals;
    uint64_t cycle = 0;
    for (int i = 0; i < reads; ++i) {
        const uint64_t ready =
            channel.scheduleRead(cycle, Traffic::DataFill, false,
                                 uint64_t(i) * 128);
        arrivals.push_back(ready);
        channel.enqueueWrite(ready, Traffic::DataWriteback);
        cycle = ready + 7; // some compute between misses
    }
    return arrivals;
}

TEST(MemoryChannelArbiter, IdleBackgroundAgentIsFree)
{
    // The satellite property: registering a background agent that
    // never issues anything must leave every core latency
    // bit-identical to the agent-free channel.
    MemoryChannel plain(fastChannel());
    const auto baseline = coreReadTimeline(plain, 200);

    MemoryChannel with_agent(fastChannel());
    const AgentId idle = with_agent.registerAgent("idle_updater");
    const auto timeline = coreReadTimeline(with_agent, 200);
    EXPECT_EQ(timeline, baseline);
    EXPECT_EQ(with_agent.agentBytes(idle), 0u);
    EXPECT_EQ(with_agent.backgroundGrants(), 0u);
    with_agent.assertFullyAttributed();
}

TEST(MemoryChannelArbiter, GrantsIntoIdleGapsWithoutDelayingCore)
{
    MemoryChannel channel(fastChannel());
    const AgentId bg = channel.registerAgent("updater");

    // Request at cycle 0; the bus is idle, but the grant only lands
    // once enough bus time has provably passed unused.
    channel.requestBackground(0, Traffic::UpdateFill, false, false, 0,
                              bg);
    EXPECT_FALSE(channel.pollBackground(bg, 0).has_value());
    EXPECT_FALSE(channel.pollBackground(bg, 15).has_value())
        << "transfer has not fit into elapsed idle time yet";
    const auto done = channel.pollBackground(bg, 16);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(*done, 100u) << "read data arrives access_latency "
                              "after its cycle-0 start";
    EXPECT_EQ(channel.agentStallCycles(bg), 0u);

    // The grant only used bus time the core had provably left idle:
    // a core read at cycle 16 starts immediately (no delay at all).
    EXPECT_EQ(channel.scheduleRead(16, Traffic::DataFill), 116u);
}

TEST(MemoryChannelArbiter, StarvationBoundHoldsUnderSaturation)
{
    ChannelConfig config = fastChannel();
    config.bg_starvation_bound = 512;
    MemoryChannel channel(config);
    const AgentId bg = channel.registerAgent("updater");

    // Saturating foreground: back-to-back core reads with no idle
    // gap, polled the way a System pumps its agents.
    channel.requestBackground(0, Traffic::UpdateFill, false, false, 0,
                              bg);
    uint64_t cycle = 0;
    std::optional<uint64_t> granted;
    std::vector<uint64_t> core_arrivals;
    while (!granted.has_value() && cycle < 10'000) {
        const uint64_t ready =
            channel.scheduleRead(cycle, Traffic::DataFill);
        core_arrivals.push_back(ready);
        cycle = ready - config.access_latency +
                config.transfer_cycles; // issue rate = bus rate
        granted = channel.pollBackground(bg, cycle);
    }
    ASSERT_TRUE(granted.has_value())
        << "background work starved forever under core saturation";
    // The wait is real (the core owned the bus until the bound hit)
    // but bounded.
    EXPECT_GE(channel.agentMaxStallCycles(bg),
              uint64_t{config.bg_starvation_bound} -
                  config.transfer_cycles);
    EXPECT_LE(channel.agentMaxStallCycles(bg),
              uint64_t{config.bg_starvation_bound} +
                  2 * config.transfer_cycles);
    EXPECT_EQ(channel.backgroundForcedGrants(), 1u);
    EXPECT_EQ(channel.agentStallCycles(bg),
              channel.agentMaxStallCycles(bg));
    channel.assertFullyAttributed();
}

TEST(MemoryChannelArbiter, QueueOrderIsFairAmongBackgroundAgents)
{
    MemoryChannel channel(fastChannel());
    const AgentId first = channel.registerAgent("updater");
    const AgentId second = channel.registerAgent("dma");
    channel.requestBackground(0, Traffic::UpdateFill, false, false, 0,
                              first);
    channel.requestBackground(0, Traffic::UpdateWriteback, true, false,
                              0, second);
    // Both fit into a long idle stretch: grant order is queue order,
    // and the write completes at its last bus cycle (no access
    // latency).
    const auto read_done = channel.pollBackground(first, 1000);
    const auto write_done = channel.pollBackground(second, 1000);
    ASSERT_TRUE(read_done.has_value());
    ASSERT_TRUE(write_done.has_value());
    EXPECT_EQ(*read_done, 100u);
    EXPECT_EQ(*write_done, 32u) << "write occupies [16,32) behind "
                                   "the read's transfer";
    channel.assertFullyAttributed();
}

TEST(MemoryChannelArbiter, ResetDropsQueuedWork)
{
    MemoryChannel channel(fastChannel());
    const AgentId bg = channel.registerAgent("updater");
    channel.requestBackground(0, Traffic::UpdateFill, false, false, 0,
                              bg);
    EXPECT_EQ(channel.backgroundQueued(), 1u);
    channel.reset();
    EXPECT_EQ(channel.backgroundQueued(), 0u);
    EXPECT_FALSE(channel.pollBackground(bg, 1'000'000).has_value())
        << "a machine reset leaves no in-flight work";
    // The agent can request again after the reset.
    channel.requestBackground(0, Traffic::UpdateFill, false, false, 0,
                              bg);
    EXPECT_TRUE(channel.pollBackground(bg, 1000).has_value());
    channel.assertFullyAttributed();
}

TEST(MemoryChannelArbiterDeath, CoreAndDoubleRequestsPanic)
{
    MemoryChannel channel(fastChannel());
    const AgentId bg = channel.registerAgent("updater");
    EXPECT_DEATH_IF_SUPPORTED(
        channel.requestBackground(0, Traffic::DataFill, false, false,
                                  0, kCoreAgent),
        "does not arbitrate against itself");
    channel.requestBackground(0, Traffic::UpdateFill, false, false, 0,
                              bg);
    EXPECT_DEATH_IF_SUPPORTED(
        channel.requestBackground(0, Traffic::UpdateFill, false,
                                  false, 0, bg),
        "outstanding background request");
}

// -------------------------------------------------------- virtual memory

TEST(VirtualMemory, StableTranslation)
{
    VirtualMemory vm;
    const uint64_t pa1 = vm.translate(1, 0x10000);
    EXPECT_EQ(vm.translate(1, 0x10000), pa1);
    EXPECT_EQ(vm.translate(1, 0x10008), pa1 + 8);
    EXPECT_NE(vm.translate(1, 0x20000), pa1);
}

TEST(VirtualMemory, AsidsAreIsolated)
{
    VirtualMemory vm;
    const uint64_t pa1 = vm.translate(1, 0x10000);
    const uint64_t pa2 = vm.translate(2, 0x10000);
    EXPECT_NE(pa1, pa2) << "same VA in different tasks, different PA";
}

TEST(VirtualMemory, ProbeDoesNotAllocate)
{
    VirtualMemory vm;
    EXPECT_FALSE(vm.probeTranslate(1, 0x5000).has_value());
    vm.translate(1, 0x5000);
    EXPECT_TRUE(vm.probeTranslate(1, 0x5000).has_value());
}

TEST(VirtualMemory, SharedSegmentsAlias)
{
    VirtualMemory vm;
    vm.share(1, 0x100000, 2, 0x400000, 2 * VirtualMemory::kPageSize);
    EXPECT_EQ(vm.translate(1, 0x100010), vm.translate(2, 0x400010));
    EXPECT_EQ(vm.regionKind(1, 0x100000), RegionKind::Shared);
    EXPECT_EQ(vm.regionKind(2, 0x400FFF), RegionKind::Shared);
    EXPECT_EQ(vm.regionKind(1, 0x900000), RegionKind::Protected);
}

TEST(VirtualMemory, PlaintextRegions)
{
    VirtualMemory vm;
    vm.addRegion(1, Region{"libc", 0x7000000, 0x7100000,
                           RegionKind::Plaintext});
    EXPECT_EQ(vm.regionKind(1, 0x7000000), RegionKind::Plaintext);
    EXPECT_EQ(vm.regionKind(1, 0x70FFFFF), RegionKind::Plaintext);
    EXPECT_EQ(vm.regionKind(1, 0x7100000), RegionKind::Protected);
}

TEST(VirtualMemory, RebaseChangesPhysicalNotVirtual)
{
    VirtualMemory vm;
    const uint64_t before = vm.translate(1, 0x30000);
    vm.rebase(1);
    const uint64_t after = vm.translate(1, 0x30000);
    EXPECT_NE(before, after)
        << "context switch relocates physical placement";
}

// --------------------------------------------------------- on-chip store

TEST(OnChipStore, InstallPeekRemove)
{
    OnChipStore store(64);
    std::vector<uint8_t> line(64, 0x5A);
    store.install(0x1000, line);
    ASSERT_NE(store.peek(0x1000), nullptr);
    EXPECT_EQ(store.peek(0x1000)[0], 0x5A);
    store.peekMutable(0x1000)[0] = 0x11;
    std::vector<uint8_t> removed(64, 0);
    ASSERT_TRUE(store.removeInto(0x1000, removed));
    EXPECT_EQ(removed[0], 0x11);
    EXPECT_EQ(store.peek(0x1000), nullptr);
    EXPECT_FALSE(store.removeInto(0x1000, removed));
}

TEST(OnChipStore, ArenaSlotsAreRecycled)
{
    OnChipStore store(64);
    std::vector<uint8_t> line(64, 0xFF);
    std::vector<uint8_t> out(64, 0);
    store.install(0x1000, line);
    ASSERT_TRUE(store.removeInto(0x1000, out));
    // A recycled slot must come back zeroed before the new install
    // copies over it; installing then peeking shows the new bytes.
    std::vector<uint8_t> other(64, 0x21);
    store.install(0x2000, other);
    ASSERT_NE(store.peek(0x2000), nullptr);
    EXPECT_EQ(store.peek(0x2000)[63], 0x21);
    EXPECT_EQ(store.residentLines(), 1u);
}

} // namespace
