/**
 * @file
 * Tests for register-file protection across OS interrupts: mutating
 * per-event pads, tamper/replay detection, and the Direct vs
 * OtpPremade timing difference.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "crypto/des.hh"
#include "secure/interrupt_guard.hh"

namespace
{

using namespace secproc;
using namespace secproc::secure;

class InterruptGuardTest : public ::testing::Test
{
  protected:
    InterruptGuardTest() : cipher_(uint64_t{0x0123456789ABCDEFull}) {}

    InterruptGuard
    makeGuard(RegisterSaveMode mode, uint32_t regs = 16)
    {
        InterruptGuardConfig config;
        config.mode = mode;
        config.num_registers = regs;
        config.crypto.latency = crypto::kPaperCryptoLatency;
        config.base_cost = 30;
        return InterruptGuard(config, cipher_);
    }

    std::vector<uint64_t>
    sampleRegisters(uint32_t count, uint64_t salt = 0)
    {
        std::vector<uint64_t> regs(count);
        for (uint32_t i = 0; i < count; ++i)
            regs[i] = 0x1111'2222'3333'4444ull * (i + 1) + salt;
        return regs;
    }

    crypto::Des cipher_;
};

TEST_F(InterruptGuardTest, SaveRestoreRoundTrip)
{
    auto guard = makeGuard(RegisterSaveMode::OtpPremade);
    const auto regs = sampleRegisters(16);
    const RegisterSave saved = guard.save(regs);
    const auto restored = guard.restore(saved);
    ASSERT_TRUE(restored.has_value());
    EXPECT_EQ(*restored, regs);
    EXPECT_EQ(guard.detections(), 0u);
}

TEST_F(InterruptGuardTest, ImageIsNotPlaintext)
{
    auto guard = makeGuard(RegisterSaveMode::OtpPremade);
    const auto regs = sampleRegisters(16);
    const RegisterSave saved = guard.save(regs);
    std::vector<uint8_t> plain(saved.image.size(), 0);
    for (size_t i = 0; i < regs.size(); ++i)
        std::memcpy(plain.data() + i * 8, &regs[i], 8);
    EXPECT_NE(saved.image, plain);
}

TEST_F(InterruptGuardTest, IdenticalRegistersGiveFreshCiphertext)
{
    // The Section 3.4 requirement: the seed mutates per event, so
    // two saves of the same register values never share ciphertext
    // (a constant seed would leak E(r) XOR E(r')).
    auto guard = makeGuard(RegisterSaveMode::OtpPremade);
    const auto regs = sampleRegisters(16);
    const RegisterSave first = guard.save(regs);
    const RegisterSave second = guard.save(regs);
    EXPECT_NE(first.image, second.image);
    EXPECT_NE(first.event_id, second.event_id);
}

TEST_F(InterruptGuardTest, TamperedImageIsDetected)
{
    auto guard = makeGuard(RegisterSaveMode::OtpPremade);
    RegisterSave saved = guard.save(sampleRegisters(16));
    saved.image[3] ^= 0x40; // the malicious OS edits a register
    EXPECT_FALSE(guard.restore(saved).has_value());
    EXPECT_EQ(guard.detections(), 1u);
}

TEST_F(InterruptGuardTest, TamperedMacIsDetected)
{
    auto guard = makeGuard(RegisterSaveMode::OtpPremade);
    RegisterSave saved = guard.save(sampleRegisters(16));
    saved.mac[0] ^= 1;
    EXPECT_FALSE(guard.restore(saved).has_value());
}

TEST_F(InterruptGuardTest, ReplayedOldSaveIsDetected)
{
    // An authentic-but-stale save must not resume: replaying it
    // would roll the program state back (Section 2.2's replay
    // attack applied to the register file).
    auto guard = makeGuard(RegisterSaveMode::OtpPremade);
    const RegisterSave old_save = guard.save(sampleRegisters(16, 1));
    const RegisterSave new_save = guard.save(sampleRegisters(16, 2));
    EXPECT_FALSE(guard.restore(old_save).has_value());
    EXPECT_EQ(guard.detections(), 1u);
    EXPECT_TRUE(guard.restore(new_save).has_value());
}

TEST_F(InterruptGuardTest, DirectSavePaysCryptoLatency)
{
    auto guard = makeGuard(RegisterSaveMode::Direct);
    // base_cost 30 + latency 50.
    EXPECT_EQ(guard.scheduleSave(1000), 1000 + 30 + 50u);
    EXPECT_EQ(guard.scheduleRestore(2000), 2000 + 30 + 50u);
}

TEST_F(InterruptGuardTest, PremadeSaveCostsOneXor)
{
    auto guard = makeGuard(RegisterSaveMode::OtpPremade);
    // First save: no pad has been pre-generated yet at cycle 0, but
    // pad_ready_ starts at 0, so the save is base + 1.
    EXPECT_EQ(guard.scheduleSave(1000), 1000 + 30 + 1u);
}

TEST_F(InterruptGuardTest, PremadeBackToBackExposesPadWait)
{
    auto guard = makeGuard(RegisterSaveMode::OtpPremade);
    guard.scheduleSave(1000);
    // Restore at 1100: resume at 1131, next pad ready at 1131+50.
    const uint64_t resumed = guard.scheduleRestore(1100);
    EXPECT_EQ(resumed, 1100 + 30 + 1u);
    // An interrupt immediately after resume waits for the pad.
    const uint64_t hasty = guard.scheduleSave(resumed);
    EXPECT_EQ(hasty, resumed + 30 + 50 + 1u);
    // One far in the future does not.
    const uint64_t relaxed = guard.scheduleSave(resumed + 10'000);
    EXPECT_EQ(relaxed, resumed + 10'000 + 30 + 1u);
}

TEST_F(InterruptGuardTest, EventCountsAccumulate)
{
    auto guard = makeGuard(RegisterSaveMode::Direct);
    for (int i = 0; i < 5; ++i)
        guard.scheduleSave(i * 1000);
    EXPECT_EQ(guard.events(), 5u);
}

TEST_F(InterruptGuardTest, WrongRegisterCountIsFatal)
{
    auto guard = makeGuard(RegisterSaveMode::OtpPremade, 16);
    EXPECT_DEATH_IF_SUPPORTED(guard.save(sampleRegisters(8)),
                              "expected 16 registers");
}

TEST_F(InterruptGuardTest, OddRegisterCountPadsToCipherBlocks)
{
    // 9 registers = 72 bytes: not a multiple of the 8-byte DES
    // block? It is; use 9 regs with AES-sized... DES blocks divide
    // 72, so exercise the padding path with a 1-register file
    // (8 bytes, exactly one block) and a 3-register file (24 bytes).
    for (const uint32_t regs : {1u, 3u, 9u}) {
        auto guard = makeGuard(RegisterSaveMode::OtpPremade, regs);
        const auto values = sampleRegisters(regs);
        const auto saved = guard.save(values);
        EXPECT_EQ(saved.image.size() % 8, 0u);
        const auto restored = guard.restore(saved);
        ASSERT_TRUE(restored.has_value());
        EXPECT_EQ(*restored, values);
    }
}

} // namespace
