/**
 * @file
 * Randomized state-machine tests for the OTP engine: thousands of
 * random interleavings of write-backs, fills, SNC flushes and
 * context operations, across SNC geometries and policies, checking
 * the two invariants everything else rests on:
 *
 *  1. metadata recoverability — a line's sequence number can always
 *     be produced at fill time (SNC, spill table or preset), and it
 *     is exactly the one its last write-back used;
 *  2. functional round trip — applyEvict followed by applyFill with
 *     the corresponding plans restores the original bytes, whatever
 *     the interleaving did to the SNC in between.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "mem/memory_channel.hh"
#include "secure/engines.hh"
#include "util/random.hh"

namespace
{

using namespace secproc;
using namespace secproc::secure;
using secproc::util::Rng;

struct FuzzConfig
{
    uint32_t sector_lines;
    bool allow_replacement;
    uint32_t assoc;
    bool pad_prediction;
};

class EngineFuzz : public ::testing::TestWithParam<FuzzConfig>
{
  protected:
    EngineFuzz()
    {
        std::vector<uint8_t> key(8, 0x5C);
        keys_.install(1, CipherKind::Des, key);
    }

    ProtectionConfig
    makeConfig() const
    {
        const FuzzConfig &fuzz = GetParam();
        ProtectionConfig config;
        config.model = SecurityModel::OtpSnc;
        config.snc.capacity_bytes = 256; // tiny: 128 entries, thrashes
        config.snc.bytes_per_entry = 2;
        config.snc.assoc = fuzz.assoc;
        config.snc.sector_lines = fuzz.sector_lines;
        config.snc.allow_replacement = fuzz.allow_replacement;
        config.snc.l2_line_size = 128;
        config.line_size = 128;
        config.pad_prediction = fuzz.pad_prediction;
        return config;
    }

    KeyTable keys_;
};

TEST_P(EngineFuzz, SeqnumsAlwaysRecoverableAndExact)
{
    mem::MemoryChannel channel;
    OtpEngine engine(makeConfig(), channel, keys_);
    Rng rng(0xF022 + GetParam().sector_lines);

    // Reference model: the seqnum of each line's last write-back.
    std::unordered_map<uint64_t, uint32_t> reference;

    const uint64_t lines = 512; // 4x the SNC's entry count
    for (int op = 0; op < 30'000; ++op) {
        const uint64_t line_va =
            0x100000 + rng.nextRange(lines) * 128;
        const double dice = rng.nextDouble();
        if (dice < 0.45) {
            const EvictPlan plan =
                engine.planEvict(line_va, mem::RegionKind::Protected);
            if (plan.state == LineCipherState::Otp)
                reference[line_va] = plan.seqnum;
            else
                reference.erase(line_va);
        } else if (dice < 0.9) {
            const FillPlan plan =
                engine.planFill(line_va, false,
                                mem::RegionKind::Protected);
            const auto it = reference.find(line_va);
            if (it != reference.end()) {
                ASSERT_EQ(plan.state, LineCipherState::Otp)
                    << "op " << op;
                ASSERT_EQ(plan.seqnum, it->second)
                    << "op " << op << " line " << line_va;
            }
        } else if (dice < 0.95) {
            engine.flushSnc(static_cast<uint64_t>(op));
        } else {
            // Timing traffic interleaved, must not disturb state.
            engine.lineFill(line_va, static_cast<uint64_t>(op), false,
                            mem::RegionKind::Protected);
            const auto it = reference.find(line_va);
            if (it != reference.end())
                reference[line_va] = it->second;
        }
    }
}

TEST_P(EngineFuzz, FunctionalRoundTripUnderThrash)
{
    mem::MemoryChannel channel;
    OtpEngine engine(makeConfig(), channel, keys_);
    Rng rng(0xF0FF + GetParam().assoc);

    // "DRAM": ciphertext images produced by applyEvict, plus the
    // plaintext we expect back.
    std::unordered_map<uint64_t, std::vector<uint8_t>> dram;
    std::unordered_map<uint64_t, std::vector<uint8_t>> expected;

    const uint64_t lines = 256;
    for (int op = 0; op < 8'000; ++op) {
        const uint64_t line_va =
            0x200000 + rng.nextRange(lines) * 128;
        if (rng.chance(0.5)) {
            std::vector<uint8_t> bytes(128);
            rng.fillBytes(bytes.data(), bytes.size());
            expected[line_va] = bytes;
            const EvictPlan plan =
                engine.planEvict(line_va, mem::RegionKind::Protected);
            engine.applyEvict(plan, bytes);
            dram[line_va] = std::move(bytes);
        } else {
            const auto it = dram.find(line_va);
            if (it == dram.end())
                continue;
            const FillPlan plan =
                engine.planFill(line_va, false,
                                mem::RegionKind::Protected);
            std::vector<uint8_t> bytes = it->second;
            engine.applyFill(plan, bytes);
            ASSERT_EQ(bytes, expected[line_va])
                << "op " << op << " line " << line_va;
        }
        if (rng.chance(0.02))
            engine.flushSnc(static_cast<uint64_t>(op));
    }
}

TEST_P(EngineFuzz, CiphertextNeverRepeatsAcrossWritebacks)
{
    // Write the same plaintext back many times: every image must be
    // unique (fresh sequence numbers), even across SNC flushes.
    mem::MemoryChannel channel;
    OtpEngine engine(makeConfig(), channel, keys_);

    std::vector<uint8_t> plaintext(128, 0xA5);
    std::vector<std::vector<uint8_t>> images;
    for (int i = 0; i < 200; ++i) {
        const EvictPlan plan =
            engine.planEvict(0x300000, mem::RegionKind::Protected);
        std::vector<uint8_t> bytes = plaintext;
        engine.applyEvict(plan, bytes);
        images.push_back(std::move(bytes));
        if (i % 37 == 0)
            engine.flushSnc(static_cast<uint64_t>(i));
    }
    for (size_t i = 0; i < images.size(); ++i) {
        for (size_t j = i + 1; j < images.size(); ++j) {
            ASSERT_NE(images[i], images[j])
                << "write-backs " << i << " and " << j
                << " share ciphertext (pad reuse!)";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, EngineFuzz,
    ::testing::Values(FuzzConfig{1, true, 0, false},
                      FuzzConfig{1, true, 8, false},
                      FuzzConfig{1, false, 0, false},
                      FuzzConfig{4, true, 0, false},
                      FuzzConfig{4, true, 8, true},
                      FuzzConfig{8, true, 0, true},
                      FuzzConfig{1, true, 0, true},
                      FuzzConfig{2, false, 0, false}),
    [](const auto &info) {
        return "sector" + std::to_string(info.param.sector_lines) +
               (info.param.allow_replacement ? "_lru" : "_norepl") +
               "_assoc" + std::to_string(info.param.assoc) +
               (info.param.pad_prediction ? "_predict" : "");
    });

} // namespace
