/**
 * @file
 * Interrupted-install power-loss matrix (ROADMAP scenario item).
 *
 * A device can lose power at any point while an update bundle is
 * streaming into the A/B staging slot, and a hijacked OS can damage
 * the slot at will — the staging area lives in untrusted memory. The
 * A/B engine must never boot a torn or tampered image: activation
 * re-verifies everything and a failure leaves the previous image
 * active.
 *
 * The matrix is expressed as an ExperimentSpec so the sweep
 * parallelizes through the standard Runner and reports like any
 * experiment: variants are corruption families (every manifest field
 * mutated without re-signing; a systematic single-byte corruption
 * sweep across the staged bytes; a torn-write truncation sweep),
 * benchmarks are cipher kinds, and each cell's measured value is the
 * percentage of corruptions rejected — anything under 100 is a
 * security hole and fails the test.
 */

#include <gtest/gtest.h>

#include "exp/runner.hh"
#include "update/image_builder.hh"
#include "update/update_engine.hh"
#include "xom/vendor_tool.hh"

namespace
{

using namespace secproc;
using namespace secproc::update;

constexpr uint32_t kLine = 128;
constexpr uint64_t kStagingBase = 0x4000'0000;
constexpr uint64_t kSlotSize = 1ull << 20;

secure::CipherKind
cipherFor(const std::string &bench)
{
    return bench == "aes128" ? secure::CipherKind::Aes128
                             : secure::CipherKind::Des;
}

/** One device under corruption attack (self-contained per cell). */
struct Rig
{
    util::Rng rng{1234};
    ImageBuilder vendor;
    crypto::RsaKeyPair processor;
    secure::KeyTable keys;
    mem::MemoryChannel channel;
    std::unique_ptr<secure::ProtectionEngine> engine;
    mem::MainMemory memory;
    mem::VirtualMemory vm;
    RollbackStore rollback{64};
    std::unique_ptr<UpdateEngine> updater;

    Rig() : vendor(crypto::rsaGenerate(512, rng))
    {
        processor = crypto::rsaGenerate(512, rng);
        secure::ProtectionConfig config;
        config.line_size = kLine;
        config.snc.l2_line_size = kLine;
        engine = secure::makeProtectionEngine(config, channel, keys);
        updater = std::make_unique<UpdateEngine>(
            vendor.publicKey(), processor, keys, rollback,
            StagingConfig{kStagingBase, kSlotSize});
    }

    UpdateBundle
    bundle(uint32_t version, secure::CipherKind cipher)
    {
        xom::PlainProgram program;
        program.title = "fw";
        program.entry_point = 0x400000;
        xom::PlainProgram::PlainSection text;
        text.name = ".text";
        text.vaddr = 0x400000;
        text.bytes.resize(64 * kLine,
                          static_cast<uint8_t>(version));
        program.sections = {text};

        UpdateSpec spec;
        spec.image_version = version;
        spec.rollback_counter = version;
        spec.cipher = cipher;
        return vendor.build(program, spec, processor.pub, rng);
    }

    InstallResult
    activate()
    {
        return updater->activate(1, memory, vm, 1, *engine);
    }

    InstallResult
    install(const UpdateBundle &b)
    {
        return updater->install(b, 1, memory, vm, 1, *engine);
    }
};

/** Running count of attack trials and survived (rejected) ones. */
struct Tally
{
    uint64_t trials = 0;
    uint64_t rejected = 0;

    void
    record(const Rig &rig, const InstallResult &result,
           uint32_t safe_version)
    {
        ++trials;
        if (result.ok())
            return; // accepted a torn image: counted as a breach
        // Rejection must also leave the previous image untouched.
        const UpdateManifest *active = rig.updater->compartmentManifest(1);
        if (active != nullptr && active->image_version == safe_version)
            ++rejected;
    }

    double
    rejectionPct() const
    {
        return trials == 0
                   ? 0.0
                   : 100.0 * static_cast<double>(rejected) /
                         static_cast<double>(trials);
    }
};

/** Mutate every manifest field in turn without re-signing. */
exp::CellOutput
manifestFieldCell(const std::string &bench, const exp::RunOptions &)
{
    Rig rig;
    const secure::CipherKind cipher = cipherFor(bench);
    exp::CellOutput cell;
    const bool setup_ok = rig.install(rig.bundle(1, cipher)).ok();
    cell.extras.emplace_back("setup_ok", setup_ok ? 1.0 : 0.0);
    if (!setup_ok) {
        cell.measured = 0.0;
        return cell;
    }

    const UpdateBundle good = rig.bundle(2, cipher);
    std::vector<UpdateBundle> mutants;
    auto mutate = [&](auto &&edit) {
        UpdateBundle mutant = good;
        edit(mutant.manifest);
        mutants.push_back(std::move(mutant));
    };
    mutate([](UpdateManifest &m) { m.title = "fw2"; });
    mutate([](UpdateManifest &m) { m.image_version += 1; });
    mutate([](UpdateManifest &m) { m.rollback_counter += 10; });
    mutate([](UpdateManifest &m) { m.processor_id[0] ^= 0x01; });
    mutate([](UpdateManifest &m) {
        m.cipher = m.cipher == secure::CipherKind::Des
                       ? secure::CipherKind::Aes128
                       : secure::CipherKind::Des;
    });
    mutate([](UpdateManifest &m) { m.entry_point ^= 0x40; });
    mutate([](UpdateManifest &m) { m.line_size *= 2; });
    mutate([](UpdateManifest &m) { m.image_digest[5] ^= 0x80; });
    mutate([](UpdateManifest &m) { m.capsule_digest[0] ^= 0x80; });
    mutate([](UpdateManifest &m) {
        m.sections.at(0).digest[3] ^= 0x01;
    });
    mutate([](UpdateManifest &m) { m.sections.at(0).vaddr += kLine; });
    mutate([](UpdateManifest &m) { m.sections.at(0).size += 1; });
    mutate([](UpdateManifest &m) { m.sections.at(0).name = "evil"; });

    Tally tally;
    for (const UpdateBundle &mutant : mutants)
        tally.record(rig, rig.install(mutant), 1);

    // A correctly re-signed bundle with a non-advancing counter is
    // the "vendor mistake" flavour of rollback; it must fail too.
    UpdateBundle resigned = good;
    resigned.manifest.rollback_counter = 1;
    resigned = rig.vendor.resign(std::move(resigned));
    tally.record(rig, rig.install(resigned), 1);

    cell.measured = tally.rejectionPct();
    cell.extras.emplace_back("trials",
                             static_cast<double>(tally.trials));
    return cell;
}

/**
 * Stage a valid v2, then corrupt / tear the staged bytes before
 * activation. @p truncate selects torn-write mode (the suffix from
 * the chosen offset was never written) over single-byte flips.
 */
exp::CellOutput
stagedBytesCell(const std::string &bench, bool truncate)
{
    Rig rig;
    const secure::CipherKind cipher = cipherFor(bench);
    exp::CellOutput cell;
    bool setup_ok = rig.install(rig.bundle(1, cipher)).ok();
    const UpdateBundle good = rig.bundle(2, cipher);
    const uint64_t framed_size =
        kSlotHeaderBytes + good.serialize().size();
    const uint64_t slot_base =
        kStagingBase + rig.updater->stagingSlot() * kSlotSize;

    // 33 systematic offsets: both slot-header bytes and every stripe
    // of the bundle body get hit.
    constexpr uint64_t kPoints = 33;
    Tally tally;
    for (uint64_t i = 0; setup_ok && i < kPoints; ++i) {
        const uint64_t offset = i * (framed_size - 1) / (kPoints - 1);
        setup_ok = rig.updater->stage(good, rig.memory).ok();
        if (!setup_ok)
            break;
        if (truncate) {
            // Power loss mid-write: everything from offset on reads
            // as if never written.
            const uint64_t len = framed_size - offset;
            const std::vector<uint8_t> zeros(len, 0);
            rig.memory.write(slot_base + offset, zeros.data(), len);
        } else {
            rig.memory.corruptByte(slot_base + offset, 0x40);
        }
        tally.record(rig, rig.activate(), 1);
    }

    // The slot is not burned: an intact re-stage still activates.
    const bool recovered =
        setup_ok && rig.updater->stage(good, rig.memory).ok() &&
        rig.activate().ok();

    cell.extras.emplace_back("setup_ok", setup_ok ? 1.0 : 0.0);
    cell.extras.emplace_back("recovered", recovered ? 1.0 : 0.0);
    cell.measured = setup_ok ? tally.rejectionPct() : 0.0;
    cell.extras.emplace_back("trials",
                             static_cast<double>(tally.trials));
    return cell;
}

/**
 * Rewrite the staged manifest's cipher-kind field to out-of-range
 * values a hijacked OS could plant in the slot. Regression for the
 * untrusted-u32 cast: pre-fix these parsed "successfully" and blew
 * up inside makeCipher() after the signature check; they must die at
 * activation as a structural rejection, previous image intact.
 */
exp::CellOutput
cipherKindMutantCell(const std::string &bench, const exp::RunOptions &)
{
    Rig rig;
    const secure::CipherKind cipher = cipherFor(bench);
    exp::CellOutput cell;
    bool setup_ok = rig.install(rig.bundle(1, cipher)).ok();
    const UpdateBundle good = rig.bundle(2, cipher);
    const uint64_t slot_base =
        kStagingBase + rig.updater->stagingSlot() * kSlotSize;
    // Slot header | bundle magic u32 | manifest blob len u32 |
    // manifest: magic u32, format u32, title (u32 len + bytes),
    // image_version u32, rollback u64, processor_id[32], cipher u32.
    const uint64_t cipher_off =
        kSlotHeaderBytes + 4 + 4 +
        (4 + 4 + 4 + good.manifest.title.size() + 4 + 8 + 32);

    Tally tally;
    for (const uint32_t evil : {99u, 3u, 0xFFFF'FFFFu}) {
        if (!setup_ok)
            break;
        setup_ok = rig.updater->stage(good, rig.memory).ok();
        if (!setup_ok)
            break;
        uint8_t field[4];
        for (int i = 0; i < 4; ++i)
            field[i] = static_cast<uint8_t>(evil >> (8 * i));
        rig.memory.write(slot_base + cipher_off, field, sizeof field);
        tally.record(rig, rig.activate(), 1);
    }

    const bool recovered =
        setup_ok && rig.updater->stage(good, rig.memory).ok() &&
        rig.activate().ok();
    cell.extras.emplace_back("setup_ok", setup_ok ? 1.0 : 0.0);
    cell.extras.emplace_back("recovered", recovered ? 1.0 : 0.0);
    cell.measured = setup_ok ? tally.rejectionPct() : 0.0;
    cell.extras.emplace_back("trials",
                             static_cast<double>(tally.trials));
    return cell;
}

TEST(PowerLossMatrix, NoTornImageEverBoots)
{
    exp::ExperimentSpec spec;
    spec.name = "power_loss_matrix";
    spec.title = "Interrupted-install power-loss matrix";
    spec.subtitle = "% of corruptions rejected (must be 100)";
    spec.benchmarks = {"des", "aes128"};
    spec.addCustom("manifest-field", manifestFieldCell);
    spec.addCustom("staged-corrupt",
                   [](const std::string &bench,
                      const exp::RunOptions &) {
                       return stagedBytesCell(bench, false);
                   });
    spec.addCustom("staged-truncate",
                   [](const std::string &bench,
                      const exp::RunOptions &) {
                       return stagedBytesCell(bench, true);
                   });
    spec.addCustom("staged-cipher-kind", cipherKindMutantCell);

    exp::RunnerOptions runner_options;
    runner_options.threads = 2;
    const exp::Report report = exp::Runner(runner_options).run(spec);

    size_t checked = 0;
    for (const exp::CellResult &cell : report.cells()) {
        ASSERT_TRUE(cell.measured.has_value());
        EXPECT_DOUBLE_EQ(*cell.measured, 100.0)
            << cell.variant << "/" << cell.bench
            << " accepted a torn or tampered image";
        for (const auto &[key, value] : cell.extras) {
            if (key == "setup_ok" || key == "recovered") {
                EXPECT_EQ(value, 1.0)
                    << cell.variant << "/" << cell.bench << ": "
                    << key;
            }
        }
        ++checked;
    }
    EXPECT_EQ(checked, 8u);
}

} // namespace
