/**
 * @file
 * Unit and property tests for the banked DRAM timing model and its
 * integration into the memory channel (DRAM-sensitivity ablation
 * substrate).
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "mem/memory_channel.hh"
#include "util/random.hh"

namespace
{

using namespace secproc::mem;
using secproc::util::Rng;

DramConfig
testConfig()
{
    DramConfig config;
    config.num_banks = 4;
    config.row_bytes = 1024;
    config.row_hit_latency = 60;
    config.row_miss_latency = 110;
    config.row_conflict_latency = 160;
    config.bank_busy_cycles = 24;
    return config;
}

TEST(Dram, FirstAccessIsRowMiss)
{
    DramModel dram(testConfig());
    EXPECT_EQ(dram.access(0, 0), 110u);
    EXPECT_EQ(dram.rowMisses(), 1u);
    EXPECT_EQ(dram.rowHits(), 0u);
}

TEST(Dram, SecondAccessSameRowHits)
{
    DramModel dram(testConfig());
    dram.access(0, 0);
    const uint64_t done = dram.access(200, 64);
    EXPECT_EQ(done, 200 + 60u);
    EXPECT_EQ(dram.rowHits(), 1u);
}

TEST(Dram, DifferentRowSameBankConflicts)
{
    DramModel dram(testConfig());
    dram.access(0, 0);
    // Same bank = addresses row_bytes * num_banks apart.
    const uint64_t same_bank_other_row = 1024ull * 4;
    const uint64_t done = dram.access(500, same_bank_other_row);
    EXPECT_EQ(done, 500 + 160u);
    EXPECT_EQ(dram.rowConflicts(), 1u);
}

TEST(Dram, DifferentBanksDoNotConflict)
{
    DramModel dram(testConfig());
    dram.access(0, 0);
    const uint64_t other_bank = 1024; // next row rotates banks
    EXPECT_NE(dram.bankIndex(0), dram.bankIndex(other_bank));
    const uint64_t done = dram.access(500, other_bank);
    EXPECT_EQ(done, 500 + 110u) << "fresh bank: plain row miss";
    EXPECT_EQ(dram.rowConflicts(), 0u);
}

TEST(Dram, BankOccupancySerializesBackToBack)
{
    DramModel dram(testConfig());
    dram.access(0, 0); // bank busy until 24
    const uint64_t done = dram.access(1, 64); // same bank, same row
    EXPECT_EQ(done, 24 + 60u)
        << "second access must wait out bank_busy_cycles";
}

TEST(Dram, ClosedPagePolicyNeverHits)
{
    DramConfig config = testConfig();
    config.closed_page = true;
    DramModel dram(config);
    dram.access(0, 0);
    dram.access(100, 64); // same row, but the page was closed
    EXPECT_EQ(dram.rowHits(), 0u);
    EXPECT_EQ(dram.rowMisses(), 2u);
}

TEST(Dram, ResetClosesRowsAndClearsStats)
{
    DramModel dram(testConfig());
    dram.access(0, 0);
    dram.access(100, 64);
    dram.reset();
    EXPECT_EQ(dram.rowHits(), 0u);
    EXPECT_EQ(dram.access(0, 64), 110u) << "row closed by reset";
}

TEST(Dram, MappingCoversAllBanks)
{
    DramModel dram(testConfig());
    std::vector<bool> seen(4, false);
    for (uint64_t row = 0; row < 8; ++row)
        seen[dram.bankIndex(row * 1024)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s) << "consecutive rows must rotate banks";
}

TEST(Dram, LatencyOrderingValidated)
{
    DramConfig config = testConfig();
    config.row_hit_latency = 200; // hit > miss: invalid
    EXPECT_DEATH_IF_SUPPORTED({ DramModel dram(config); (void)dram; },
                              "order");
}

TEST(Dram, CompletionMonotonicInRequestCycle)
{
    // Property: for any fixed access sequence, issuing a request
    // later never completes it earlier.
    Rng rng(42);
    std::vector<uint64_t> addrs;
    for (int i = 0; i < 200; ++i)
        addrs.push_back(rng.nextRange(64 * 1024) & ~63ull);

    DramModel early(testConfig());
    DramModel late(testConfig());
    uint64_t cycle = 0;
    for (const uint64_t addr : addrs) {
        cycle += 10;
        const uint64_t t_early = early.access(cycle, addr);
        const uint64_t t_late = late.access(cycle + 5, addr);
        EXPECT_GE(t_late, t_early);
    }
}

TEST(Dram, HitRateHighForStreaming)
{
    DramModel dram(testConfig());
    uint64_t cycle = 0;
    for (uint64_t addr = 0; addr < 64 * 1024; addr += 128) {
        dram.access(cycle, addr);
        cycle += 200;
    }
    // 1024B rows, 128B lines: 7 of every 8 accesses hit.
    EXPECT_GT(dram.rowHitRate(), 0.8);
}

TEST(Dram, HitRateLowForRandom)
{
    DramModel dram(testConfig());
    Rng rng(7);
    uint64_t cycle = 0;
    for (int i = 0; i < 2000; ++i) {
        dram.access(cycle, rng.nextRange(1ull << 30) & ~127ull);
        cycle += 200;
    }
    EXPECT_LT(dram.rowHitRate(), 0.1);
}

// ------------------------------------------------ channel integration

TEST(DramChannel, FlatModeIgnoresAddress)
{
    ChannelConfig config;
    config.access_latency = 100;
    MemoryChannel channel(config);
    const uint64_t a = channel.scheduleRead(0, Traffic::DataFill,
                                            false, 0);
    const uint64_t b = channel.scheduleRead(
        1000, Traffic::DataFill, false, 0xDEAD'BEEFull);
    EXPECT_EQ(a, 100u);
    EXPECT_EQ(b, 1100u);
    EXPECT_EQ(channel.dram(), nullptr);
}

TEST(DramChannel, DramModeVariesWithLocality)
{
    ChannelConfig config;
    config.use_dram = true;
    config.dram = testConfig();
    MemoryChannel channel(config);

    // Open a row, then hit it: faster than the flat 100-cycle model.
    channel.scheduleRead(0, Traffic::DataFill, false, 0);
    const uint64_t hit =
        channel.scheduleRead(1000, Traffic::DataFill, false, 128);
    EXPECT_EQ(hit, 1000 + 60u);

    // Conflict in the same bank: slower than the flat model.
    const uint64_t conflict = channel.scheduleRead(
        2000, Traffic::DataFill, false, 4096);
    EXPECT_EQ(conflict, 2000 + 160u);
}

TEST(DramChannel, WritesDisturbRowBuffers)
{
    ChannelConfig config;
    config.use_dram = true;
    config.dram = testConfig();
    MemoryChannel channel(config);

    channel.scheduleRead(0, Traffic::DataFill, false, 0); // row 0 open
    // A write to another row of the same bank drains before the next
    // read and closes row 0.
    channel.enqueueWrite(200, Traffic::DataWriteback, false, 4096);
    const uint64_t read = channel.scheduleRead(
        10'000, Traffic::DataFill, false, 0);
    EXPECT_EQ(read, 10'000 + 160u)
        << "the drained write must have switched the open row";
}

TEST(DramChannel, ResetRestoresColdState)
{
    ChannelConfig config;
    config.use_dram = true;
    config.dram = testConfig();
    MemoryChannel channel(config);
    channel.scheduleRead(0, Traffic::DataFill, false, 0);
    channel.reset();
    EXPECT_EQ(channel.scheduleRead(0, Traffic::DataFill, false, 0),
              110u);
    EXPECT_EQ(channel.dram()->rowHits(), 0u);
}

} // namespace
