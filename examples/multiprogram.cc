/**
 * @file
 * Multi-programmed secure processor: two vendor-encrypted programs
 * time-share one CPU in separate XOM compartments (paper Sections
 * 2.3 and 4.3).
 *
 * Demonstrates:
 *  - per-compartment keys: the same plaintext encrypts differently
 *    for each task, so neither can read the other's memory image;
 *  - the SNC context-switch question the paper leaves open, measured
 *    both ways (compartment-ID tagging vs flush-and-spill);
 *  - how the flush policy's cost explodes as the scheduling quantum
 *    shrinks.
 *
 *   $ ./multiprogram [benchA] [benchB] [instructions]
 */

#include <iostream>
#include <string>

#include "sim/multitask.hh"
#include "sim/profiles.hh"
#include "util/strutil.hh"
#include "util/table.hh"

using namespace secproc;

namespace
{

constexpr uint64_t kTaskStride = 1ull << 40;

struct MixResult
{
    uint64_t cycles = 0;
    uint64_t spills = 0;
};

MixResult
runMix(const std::string &bench_a, const std::string &bench_b,
       sim::SncSwitchPolicy policy, uint64_t quantum,
       uint64_t instructions)
{
    sim::WorkloadProfile profile_a = sim::benchmarkProfile(bench_a);
    sim::WorkloadProfile profile_b = sim::benchmarkProfile(bench_b);
    profile_b.va_offset = kTaskStride; // disjoint address spaces

    const auto config = sim::paperConfig(secure::SecurityModel::OtpSnc);
    sim::SyntheticWorkload a(profile_a, config.l2.line_size);
    sim::SyntheticWorkload b(profile_b, config.l2.line_size);

    sim::MultiTaskConfig mt;
    mt.quantum = quantum;
    mt.policy = policy;
    sim::MultiTaskSystem multi(config, {{&a, 1}, {&b, 2}}, mt);
    multi.run(instructions);
    return {multi.system().core().cycles(),
            multi.system().switchFlushSpills()};
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string bench_a = argc > 1 ? argv[1] : "gcc";
    const std::string bench_b = argc > 2 ? argv[2] : "mcf";
    const uint64_t instructions =
        argc > 3 ? std::stoull(argv[3]) : 2'000'000;

    std::cout << "Two compartment-isolated tasks (" << bench_a << " + "
              << bench_b << ") share one secure processor, "
              << instructions << " instructions total.\n\n";

    util::Table table({"quantum", "policy", "cycles", "snc spills",
                       "vs tag %"});
    for (const uint64_t quantum : {500'000ull, 100'000ull, 20'000ull}) {
        const MixResult tag = runMix(bench_a, bench_b,
                                     sim::SncSwitchPolicy::Tag,
                                     quantum, instructions);
        const MixResult flush = runMix(bench_a, bench_b,
                                       sim::SncSwitchPolicy::Flush,
                                       quantum, instructions);
        table.addRow({std::to_string(quantum), "tag",
                      std::to_string(tag.cycles),
                      std::to_string(tag.spills), "0.00"});
        const double penalty =
            100.0 *
            (static_cast<double>(flush.cycles) /
                 static_cast<double>(tag.cycles) -
             1.0);
        table.addRow({std::to_string(quantum), "flush",
                      std::to_string(flush.cycles),
                      std::to_string(flush.spills),
                      util::formatDouble(penalty, 2)});
    }
    table.print(std::cout);

    std::cout
        << "\nReading: 'tag' keeps SNC entries across switches by\n"
           "tagging them with the compartment ID (extra tag bits in\n"
           "hardware); 'flush' encrypts and spills the whole SNC on\n"
           "every switch, as a tag-free design must. The paper\n"
           "(Section 4.3) leaves the choice open; at desktop-like\n"
           "quanta the flush cost is already visible, and it grows\n"
           "sharply as quanta shrink.\n";
    return 0;
}
