/**
 * @file
 * Trace pipeline: record a workload once, then replay the identical
 * instruction stream under every protection model.
 *
 * The paper evaluates fixed SPEC2000 runs; secproc's generators are
 * deterministic, but a recorded trace makes the input *portable* —
 * the same file can be replayed on any machine configuration, and
 * the replay is cycle-identical to the live generator because the
 * trace embeds the profile and warm-up state.
 *
 *   $ ./trace_pipeline [benchmark] [ops]
 */

#include <cstdio>
#include <filesystem>
#include <iostream>

#include "sim/profiles.hh"
#include "sim/system.hh"
#include "sim/trace_io.hh"
#include "util/strutil.hh"
#include "util/table.hh"

using namespace secproc;

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "parser";
    const uint64_t ops = argc > 2 ? std::stoull(argv[2]) : 1'000'000;
    const auto path = std::filesystem::temp_directory_path() /
                      ("secproc_" + bench + ".spt");

    // 1. Record.
    {
        sim::SyntheticWorkload workload(sim::benchmarkProfile(bench),
                                        128);
        sim::recordTrace(path.string(), workload, ops);
    }
    const auto bytes = std::filesystem::file_size(path);
    std::cout << "recorded " << ops << " ops of '" << bench << "' to "
              << path << " (" << util::formatBytes(bytes) << ", "
              << util::formatDouble(
                     static_cast<double>(bytes) /
                         static_cast<double>(ops),
                     2)
              << " bytes/op)\n\n";

    // 2. Replay under each protection model; verify the OTP replay
    //    is cycle-identical to the live generator.
    util::Table table({"model", "cycles", "ipc", "slowdown %"});
    uint64_t base_cycles = 0;
    for (const auto model :
         {secure::SecurityModel::Baseline, secure::SecurityModel::Xom,
          secure::SecurityModel::OtpSnc}) {
        sim::TraceWorkload replay(path.string());
        sim::System system(sim::paperConfig(model), replay);
        system.run(ops);
        const uint64_t cycles = system.core().cycles();
        if (model == secure::SecurityModel::Baseline)
            base_cycles = cycles;
        table.addRow(
            {secure::securityModelName(model), std::to_string(cycles),
             util::formatDouble(static_cast<double>(ops) /
                                    static_cast<double>(cycles),
                                3),
             util::formatDouble(
                 100.0 * (static_cast<double>(cycles) /
                              static_cast<double>(base_cycles) -
                          1.0),
                 2)});
    }
    table.print(std::cout);

    sim::SyntheticWorkload live(sim::benchmarkProfile(bench), 128);
    sim::System live_system(
        sim::paperConfig(secure::SecurityModel::OtpSnc), live);
    live_system.run(ops);

    sim::TraceWorkload replay(path.string());
    sim::System replay_system(
        sim::paperConfig(secure::SecurityModel::OtpSnc), replay);
    replay_system.run(ops);

    std::cout << "\nlive generator vs trace replay (otp-snc): "
              << live_system.core().cycles() << " vs "
              << replay_system.core().cycles() << " cycles -> "
              << (live_system.core().cycles() ==
                          replay_system.core().cycles()
                      ? "cycle-identical"
                      : "MISMATCH (bug!)")
              << "\n";
    std::filesystem::remove(path);
    return 0;
}
