/**
 * @file
 * Quickstart: build the paper's machine in a few lines, run one
 * benchmark under all three protection models and print the
 * slowdown — the 60-second tour of the secproc API.
 *
 *   $ ./quickstart [benchmark] [instructions]
 */

#include <iostream>
#include <string>

#include "sim/profiles.hh"
#include "sim/system.hh"
#include "util/strutil.hh"

using namespace secproc;

namespace
{

uint64_t
simulate(const std::string &bench, secure::SecurityModel model,
         uint64_t instructions)
{
    // 1. A machine: the paper's 4-issue core, 32KB L1s, 256KB L2,
    //    100-cycle memory, 50-cycle crypto, 64KB LRU SNC.
    const sim::SystemConfig config = sim::paperConfig(model);

    // 2. A workload: one of the 11 SPEC2000-like profiles.
    sim::SyntheticWorkload workload(sim::benchmarkProfile(bench),
                                    config.l2.line_size);

    // 3. Wire and run.
    sim::System system(config, workload);
    system.run(instructions / 4); // warm-up
    system.beginMeasurement();
    system.run(instructions);
    return system.stats().cycles;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "mcf";
    const uint64_t instructions =
        argc > 2 ? std::stoull(argv[2]) : 2'000'000;

    std::cout << "secproc quickstart: benchmark '" << bench << "', "
              << instructions << " instructions\n\n";

    const uint64_t base =
        simulate(bench, secure::SecurityModel::Baseline, instructions);
    const uint64_t xom =
        simulate(bench, secure::SecurityModel::Xom, instructions);
    const uint64_t otp =
        simulate(bench, secure::SecurityModel::OtpSnc, instructions);

    auto report = [base](const char *name, uint64_t cycles) {
        const double slowdown =
            (static_cast<double>(cycles) / static_cast<double>(base) -
             1.0) *
            100.0;
        std::cout << "  " << name << cycles << " cycles  ("
                  << util::formatDouble(slowdown, 2)
                  << "% over baseline)\n";
    };

    std::cout << "  baseline (insecure):   " << base << " cycles\n";
    report("XOM (direct crypto):   ", xom);
    report("OTP + SNC (this paper):", otp);

    std::cout << "\nThe one-time-pad scheme overlaps pad generation "
                 "with the memory fetch,\nso the crypto unit leaves "
                 "the critical path: max(memory, crypto) + 1 XOR\n"
                 "cycle instead of memory + crypto.\n";
    return 0;
}
