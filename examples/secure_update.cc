/**
 * @file
 * Secure-update walkthrough: the whole scenario family the update
 * subsystem opens, end to end in one run.
 *
 *  1. vendor builds and signs v1; the device verifies, installs and
 *     runs it;
 *  2. v2 ships and replaces v1 in the other A/B slot;
 *  3. an attacker bit-flips an image section   -> digest-mismatch;
 *  4. an attacker replays the old signed v1    -> rollback;
 *  5. an image built for another processor     -> wrong-processor;
 *  6. an impostor vendor signs for this device -> bad-signature;
 *  7. a staging write is interrupted           -> staging-corrupt,
 *     the previous image stays live, recovery succeeds;
 *  8. a verifier challenges the device         -> attestation quote.
 */

#include <iostream>
#include <string>

#include "secure/engines.hh"
#include "update/attestation.hh"
#include "update/image_builder.hh"
#include "update/update_engine.hh"
#include "util/strutil.hh"
#include "xom/secure_loader.hh"

using namespace secproc;
using namespace secproc::update;

namespace
{

constexpr uint32_t kLine = 128;

xom::PlainProgram
release(uint32_t version, util::Rng &rng)
{
    xom::PlainProgram program;
    program.title = "firmware";
    program.entry_point = 0x400000;
    xom::PlainProgram::PlainSection text;
    text.name = ".text";
    text.vaddr = 0x400000;
    text.bytes.resize(8 * kLine, static_cast<uint8_t>(version));
    rng.fillBytes(text.bytes.data(), 4 * kLine);
    program.sections = {text};
    return program;
}

void
show(const std::string &what, const VerifyResult &result)
{
    std::cout << "  " << what << " -> "
              << updateStatusName(result.status)
              << (result.detail.empty() ? "" : " (" + result.detail +
                                                   ")")
              << "\n";
}

} // namespace

int
main()
{
    util::Rng rng(2026);

    // The cast: a vendor, a fielded device, and a second device the
    // attacker controls.
    ImageBuilder vendor(crypto::rsaGenerate(512, rng));
    const crypto::RsaKeyPair device_key = crypto::rsaGenerate(512, rng);
    const crypto::RsaKeyPair device_attestation_key =
        crypto::rsaGenerate(512, rng);
    const crypto::RsaKeyPair other_key = crypto::rsaGenerate(512, rng);

    secure::KeyTable keys;
    mem::MemoryChannel channel;
    secure::ProtectionConfig config;
    config.line_size = kLine;
    config.snc.l2_line_size = kLine;
    auto engine = secure::makeProtectionEngine(config, channel, keys);
    mem::MainMemory memory;
    mem::VirtualMemory vm;
    RollbackStore rollback;
    UpdateEngine updater(vendor.publicKey(), device_key, keys,
                         rollback);
    updater.setAttestationKey(device_attestation_key);

    std::cout << "secure update walkthrough\n"
              << "device identity: "
              << util::toHex(updater.processorIdentity().data(), 16)
              << "...\n\n";

    // 1. First install.
    UpdateSpec spec;
    spec.image_version = 1;
    spec.rollback_counter = 1;
    const UpdateBundle v1 =
        vendor.build(release(1, rng), spec, device_key.pub, rng);
    auto installed =
        updater.install(v1, 1, memory, vm, 1, *engine);
    std::cout << "1. install v1 -> " << updateStatusName(installed.status)
              << ", slot " << (installed.slot == 0 ? "A" : "B") << "\n";

    xom::SecureLoader loader(device_key.priv, keys);
    auto line = loader.fetchLine(0x400000 + 5 * kLine, memory, vm, 1,
                                 *engine, true);
    std::cout << "   fetched text byte: "
              << util::formatHex(line[0]) << " (vendor wrote "
              << util::formatHex(1) << ")\n";

    // 2. Routine upgrade.
    spec.image_version = 2;
    spec.rollback_counter = 2;
    const UpdateBundle v2 =
        vendor.build(release(2, rng), spec, device_key.pub, rng);
    installed = updater.install(v2, 1, memory, vm, 1, *engine);
    std::cout << "2. install v2 -> " << updateStatusName(installed.status)
              << ", slot " << (installed.slot == 0 ? "A" : "B")
              << " (A/B alternation)\n";

    std::cout << "\nattack family:\n";

    // 3. Tampered image.
    UpdateBundle tampered = v2;
    tampered.manifest.rollback_counter = 3; // pretend v3
    tampered = vendor.resign(tampered);
    tampered.image.sections[0].bytes[0] ^= 0x01;
    show("3. bit-flipped section ", updater.verify(tampered));

    // 4. Downgrade/replay of the genuine, correctly-signed v1.
    show("4. replay signed v1    ", updater.verify(v1));

    // 5. Image keyed and targeted to a different processor.
    spec.image_version = 3;
    spec.rollback_counter = 3;
    const UpdateBundle for_other =
        vendor.build(release(3, rng), spec, other_key.pub, rng);
    show("5. other device's image", updater.verify(for_other));

    // 6. Impostor vendor: right target, wrong signing key.
    ImageBuilder impostor(crypto::rsaGenerate(512, rng));
    const UpdateBundle forged =
        impostor.build(release(3, rng), spec, device_key.pub, rng);
    show("6. impostor signature  ", updater.verify(forged));

    // 7. Interrupted staging write: stage v3, corrupt the staged
    //    copy, try to activate — then recover.
    const UpdateBundle v3 =
        vendor.build(release(3, rng), spec, device_key.pub, rng);
    updater.stage(v3, memory);
    const uint64_t slot_base =
        0x4000'0000 + updater.stagingSlot() * (8ull << 20);
    for (uint64_t off = 100; off < 200; ++off)
        memory.corruptByte(slot_base + off, 0x5A);
    auto activated = updater.activate(1, memory, vm, 1, *engine);
    std::cout << "  7. interrupted staging -> "
              << updateStatusName(activated.status)
              << "; active image still v"
              << updater.activeManifest()->image_version << "\n";
    updater.stage(v3, memory);
    activated = updater.activate(1, memory, vm, 1, *engine);
    std::cout << "     re-staged cleanly   -> "
              << updateStatusName(activated.status) << "; active v"
              << updater.activeManifest()->image_version << "\n";

    // 8. Attestation: a verifier with a fresh nonce learns what runs.
    std::cout << "\nattestation:\n";
    Digest nonce = {};
    rng.fillBytes(nonce.data(), nonce.size());
    const AttestationQuote quote = attest(updater, 1, nonce);
    std::cout << "  quote: '" << quote.report.title << "' v"
              << quote.report.image_version << ", rollback "
              << quote.report.rollback_counter << ", image "
              << util::toHex(quote.report.image_digest.data(), 8)
              << "...\n  verifies under device attestation key: "
              << (verifyQuote(device_attestation_key.pub, quote, nonce)
                      ? "yes"
                      : "NO")
              << "\n  rejected under another device's key: "
              << (verifyQuote(other_key.pub, quote, nonce) ? "NO"
                                                           : "yes")
              << "\n";

    std::cout << "\nrollback bank: firmware counter = "
              << rollback.current("firmware") << "\n";
    return 0;
}
