/**
 * @file
 * The full anti-piracy lifecycle of paper Section 2, end to end with
 * real cryptography:
 *
 *   1. a processor is manufactured with an RSA key pair;
 *   2. a vendor encrypts a program for exactly that processor
 *      (DES one-time pads over the text, key wrapped under the
 *      processor's public key);
 *   3. the target processor loads and decrypts it correctly;
 *   4. a *different* processor cannot (piracy defeated);
 *   5. a tampered image fails to load (tampering defeated).
 */

#include <iostream>

#include "crypto/rsa.hh"
#include "mem/main_memory.hh"
#include "mem/virtual_memory.hh"
#include "secure/engines.hh"
#include "secure/key_table.hh"
#include "util/random.hh"
#include "util/strutil.hh"
#include "xom/program_image.hh"
#include "xom/secure_loader.hh"
#include "xom/vendor_tool.hh"

using namespace secproc;

namespace
{

/** One secure processor: keys, memory, engine, loader. */
struct Processor
{
    crypto::RsaKeyPair identity;
    mem::MainMemory memory;
    mem::VirtualMemory vm;
    secure::KeyTable keys;
    mem::MemoryChannel channel;
    std::unique_ptr<secure::ProtectionEngine> engine;
    std::unique_ptr<xom::SecureLoader> loader;

    explicit Processor(util::Rng &rng)
    {
        identity = crypto::rsaGenerate(512, rng);
        secure::ProtectionConfig config;
        config.model = secure::SecurityModel::OtpSnc;
        engine = secure::makeProtectionEngine(config, channel, keys);
        loader =
            std::make_unique<xom::SecureLoader>(identity.priv, keys);
    }
};

} // namespace

int
main()
{
    util::Rng rng(2026);

    std::cout << "=== secproc software-protection walkthrough ===\n\n";

    std::cout << "[1] Manufacturing two processors with RSA "
                 "identities...\n";
    Processor alice_cpu(rng);
    Processor mallory_cpu(rng);
    std::cout << "    alice's modulus starts  "
              << alice_cpu.identity.pub.n.toHex().substr(0, 16)
              << "...\n"
              << "    mallory's modulus starts "
              << mallory_cpu.identity.pub.n.toHex().substr(0, 16)
              << "...\n\n";

    std::cout << "[2] Vendor builds a protected program for ALICE's "
                 "processor only.\n";
    xom::PlainProgram program;
    program.title = "accounting-suite";
    program.entry_point = 0x400000;
    xom::PlainProgram::PlainSection text;
    text.name = ".text";
    text.vaddr = 0x400000;
    const std::string secret =
        "TOP-SECRET ALGORITHM: if (balance < 0) callTheBank();";
    text.bytes.assign(secret.begin(), secret.end());
    program.sections = {text};

    const xom::ProgramImage image = xom::vendorProtect(
        program, xom::VendorScheme::Otp, secure::CipherKind::Des,
        alice_cpu.identity.pub, rng);
    std::cout << "    shipped image: " << image.totalBytes()
              << " bytes of ciphertext + "
              << image.key_capsule.size() << "-byte key capsule\n";
    std::cout << "    ciphertext preview: "
              << util::toHex(image.sections[0].bytes.data(), 24)
              << "...\n\n";

    std::cout << "[3] Alice's processor loads and runs it.\n";
    const auto ok = alice_cpu.loader->load(image, 1, alice_cpu.memory,
                                           alice_cpu.vm, 1,
                                           *alice_cpu.engine);
    std::cout << "    load: " << (ok.success ? "OK" : ok.error)
              << "\n";
    const auto line = alice_cpu.loader->fetchLine(
        0x400000, alice_cpu.memory, alice_cpu.vm, 1,
        *alice_cpu.engine, /*ifetch=*/true);
    const std::string decoded(line.begin(),
                              line.begin() +
                                  static_cast<long>(secret.size()));
    std::cout << "    decrypted text: \"" << decoded << "\"\n";
    std::cout << "    matches vendor plaintext: "
              << (decoded == secret ? "yes" : "NO") << "\n\n";

    std::cout << "[4] Mallory copies the image to her processor "
                 "(piracy attempt).\n";
    const auto pirated = mallory_cpu.loader->load(
        image, 1, mallory_cpu.memory, mallory_cpu.vm, 1,
        *mallory_cpu.engine);
    std::cout << "    load on mallory's CPU: "
              << (pirated.success ? "UNEXPECTEDLY SUCCEEDED"
                                  : std::string("rejected (") +
                                        pirated.error + ")")
              << "\n\n";

    std::cout << "[5] Mallory tampers with the capsule and retries "
                 "on Alice's CPU.\n";
    xom::ProgramImage tampered = image;
    tampered.key_capsule[3] ^= 0x55;
    const auto bad = alice_cpu.loader->load(tampered, 2,
                                            alice_cpu.memory,
                                            alice_cpu.vm, 2,
                                            *alice_cpu.engine);
    std::cout << "    load of tampered image: "
              << (bad.success ? "UNEXPECTEDLY SUCCEEDED" : "rejected")
              << "\n\n";

    const bool all_good = ok.success && decoded == secret &&
                          !pirated.success && !bad.success;
    std::cout << (all_good ? "All lifecycle properties hold.\n"
                           : "SOMETHING IS WRONG.\n");
    return all_good ? 0 : 1;
}
