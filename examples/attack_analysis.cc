/**
 * @file
 * Adversary's-eye view: run the attack suite against XOM-style
 * direct encryption and against the paper's one-time-pad scheme,
 * then show how the integrity extension closes what privacy alone
 * cannot (spoofing detection, replay detection).
 */

#include <iostream>

#include "mem/main_memory.hh"
#include "mem/virtual_memory.hh"
#include "secure/engines.hh"
#include "secure/integrity.hh"
#include "secure/key_table.hh"
#include "util/strutil.hh"
#include "xom/attack_sim.hh"

using namespace secproc;

namespace
{

struct Victim
{
    mem::MainMemory memory;
    mem::VirtualMemory vm;
    secure::KeyTable keys;
    mem::MemoryChannel channel;
    std::unique_ptr<secure::ProtectionEngine> engine;

    explicit Victim(secure::SecurityModel model)
    {
        keys.install(1, secure::CipherKind::Des,
                     {0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xCD, 0xFF});
        secure::ProtectionConfig config;
        config.model = model;
        engine = secure::makeProtectionEngine(config, channel, keys);
    }
};

void
report(const xom::AttackOutcome &outcome)
{
    std::cout << "    " << outcome.attack << ": "
              << (outcome.succeeded ? "ATTACK SUCCEEDED"
                                    : "defeated")
              << " -- " << outcome.detail << "\n";
}

void
runSuite(const char *title, secure::SecurityModel model)
{
    std::cout << title << "\n";
    Victim victim(model);

    // Pattern analysis: the program stores a memory full of zeroes
    // (the most common value in real memories).
    const std::vector<uint8_t> zeros(128, 0);
    for (uint64_t i = 0; i < 64; ++i) {
        const uint64_t line_va = 0x100000 + i * 128;
        auto bytes = zeros;
        victim.engine->encryptLine(line_va, mem::RegionKind::Protected,
                                   bytes);
        victim.memory.write(victim.vm.translate(1, line_va),
                            bytes.data(), bytes.size());
    }
    uint64_t repeats = 0;
    for (uint64_t i = 0; i < 64; ++i) {
        const uint64_t pa =
            victim.vm.translate(1, 0x100000 + i * 128);
        repeats += xom::patternLeak(victim.memory, pa, 128, 8);
    }
    std::cout << "    pattern analysis: " << repeats
              << " repeated cipher blocks visible in 8KB of "
                 "zero-filled memory\n";

    report(xom::splicingAttack(*victim.engine, victim.memory,
                               victim.vm, 1, 0x200000, 0x240000));
    report(xom::replayAttack(*victim.engine, victim.memory, victim.vm,
                             1, 0x280000));
    report(xom::spoofingAttack(*victim.engine, victim.memory,
                               victim.vm, 1, 0x2C0000));
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "=== secproc attack analysis ===\n\n";
    runSuite("[XOM: direct (ECB) line encryption]",
             secure::SecurityModel::Xom);
    runSuite("[This paper: one-time pad + sequence numbers]",
             secure::SecurityModel::OtpSnc);

    std::cout << "[Integrity extension: per-line MACs over (address, "
                 "seqnum, ciphertext)]\n";
    secure::IntegrityConfig config;
    config.mode = secure::IntegrityMode::MacBlocking;
    secure::IntegrityEngine integrity(config);
    integrity.setMacKey({0xDE, 0xAD, 0xBE, 0xEF});

    std::vector<uint8_t> ciphertext(128, 0x5A);
    integrity.storeMac(0x1000,
                       integrity.computeMac(0x1000, 1, ciphertext));

    auto tampered = ciphertext;
    tampered[64] ^= 0x01;
    std::cout << "    spoof (bit flip):      "
              << (integrity.verifyMac(0x1000, 1, tampered)
                      ? "UNDETECTED"
                      : "detected")
              << "\n";
    std::cout << "    replay (stale seqnum): "
              << (integrity.verifyMac(0x1000, 2, ciphertext)
                      ? "UNDETECTED"
                      : "detected")
              << "\n";
    std::cout << "    splice (wrong line):   "
              << (integrity.verifyMac(0x2000, 1, ciphertext)
                      ? "UNDETECTED"
                      : "detected")
              << "\n\n";

    std::cout << "Summary: OTP seeds bound to (address, sequence "
                 "number) remove the\nciphertext patterns and "
                 "position-independence XOM leaks; MACs (or the\n"
                 "Merkle-tree engine) add detection for spoofing and "
                 "replay, completing\nthe threat model of the paper's "
                 "Section 2.\n";
    return 0;
}
