/**
 * @file
 * Register-file protection against a malicious operating system.
 *
 * The paper's threat model lets the OS itself be hostile: on every
 * interrupt it receives control with the user program's registers
 * architecturally visible. A secure processor therefore encrypts
 * the register file into the save area before the handler runs
 * (paper Section 1), with a per-event mutating seed (Section 3.4).
 * This example plays the adversary: peek at the saved image, tamper
 * with a saved register, and replay yesterday's save — then shows
 * what each attempt gets, and what the one-time-pad trick does to
 * the interrupt path's latency.
 *
 *   $ ./interrupt_protection
 */

#include <iostream>

#include "crypto/aes128.hh"
#include "secure/interrupt_guard.hh"
#include "util/strutil.hh"

using namespace secproc;

namespace
{

std::vector<uint64_t>
programRegisters()
{
    // A few "secrets" in flight: loop counters, a pointer, a key.
    return {0x0000'0000'0000'002A, 0x00007FFF'5A5A'0000,
            0xFEED'FACE'CAFE'BEEF, 0x0123'4567'89AB'CDEF,
            0x1111'1111'1111'1111, 0x2222'2222'2222'2222,
            0x3333'3333'3333'3333, 0x4444'4444'4444'4444};
}

} // namespace

int
main()
{
    const auto key = util::fromHex("000102030405060708090a0b0c0d0e0f");
    crypto::Aes128 cipher(key.data());

    secure::InterruptGuardConfig config;
    config.mode = secure::RegisterSaveMode::OtpPremade;
    config.num_registers = 8;
    secure::InterruptGuard guard(config, cipher);

    const auto regs = programRegisters();
    std::cout << "User program registers before the interrupt:\n  ";
    for (const uint64_t r : regs)
        std::cout << util::formatHex(r, 16) << " ";
    std::cout << "\n\n-- interrupt! the OS gets control --\n\n";

    secure::RegisterSave saved = guard.save(regs);
    std::cout << "1. What the OS sees in the save area (event "
              << saved.event_id << "):\n  "
              << util::toHex(saved.image.data(), 32) << "...\n"
              << "   (ciphertext; the 0x2A loop counter and the key "
                 "are not findable)\n\n";

    std::cout << "2. The OS edits a saved register and resumes:\n";
    secure::RegisterSave tampered = saved;
    tampered.image[8] ^= 0x01;
    const auto tampered_result = guard.restore(tampered);
    std::cout << "   restore -> "
              << (tampered_result.has_value() ? "ACCEPTED (bug!)"
                                              : "REJECTED: tampering "
                                                "detected, program "
                                                "halted")
              << "\n\n";

    std::cout << "3. The OS replays an old (authentic) save:\n";
    const secure::RegisterSave old_save = saved;
    secure::RegisterSave current = guard.save(regs); // new event
    const auto replay_result = guard.restore(old_save);
    std::cout << "   restore(old) -> "
              << (replay_result.has_value() ? "ACCEPTED (bug!)"
                                            : "REJECTED: replay "
                                              "detected")
              << "\n";
    const auto honest = guard.restore(current);
    std::cout << "   restore(current) -> "
              << (honest.has_value() && *honest == regs
                      ? "registers restored exactly"
                      : "FAILED (bug!)")
              << "\n\n";

    std::cout << "4. Same register values, two saves -> two "
                 "ciphertexts (mutating seed):\n   first  "
              << util::toHex(old_save.image.data(), 16) << "...\n   "
              << "second " << util::toHex(current.image.data(), 16)
              << "...\n\n";

    std::cout << "5. Interrupt-path latency (save + restore, 50-cycle "
                 "crypto engine):\n";
    for (const auto mode : {secure::RegisterSaveMode::Direct,
                            secure::RegisterSaveMode::OtpPremade}) {
        secure::InterruptGuardConfig timing_config;
        timing_config.mode = mode;
        secure::InterruptGuard timing_guard(timing_config, cipher);
        const uint64_t os_start = timing_guard.scheduleSave(1000);
        const uint64_t resumed =
            timing_guard.scheduleRestore(os_start + 500);
        std::cout << "   "
                  << (mode == secure::RegisterSaveMode::Direct
                          ? "direct (XOM-style): "
                          : "premade pads:       ")
                  << (os_start - 1000) << " cycles to enter the OS, "
                  << (resumed - os_start - 500)
                  << " cycles to resume the program\n";
    }
    std::cout << "\nDetections counted by hardware: "
              << guard.detections() << "\n";
    return 0;
}
