/**
 * @file
 * Architectural design-space exploration with the public API: sweep
 * SNC capacity and associativity against crypto latency for one
 * memory-bound workload, print the resulting slowdown matrix plus
 * the CactiLite area cost of each SNC — the study an architect
 * would run before committing silicon.
 *
 *   $ ./design_space [benchmark] [instructions]
 */

#include <iostream>
#include <string>
#include <vector>

#include "area/cacti_lite.hh"
#include "sim/profiles.hh"
#include "sim/system.hh"
#include "util/strutil.hh"
#include "util/table.hh"

using namespace secproc;

namespace
{

uint64_t
run(const std::string &bench, const sim::SystemConfig &config,
    uint64_t instructions)
{
    sim::SyntheticWorkload workload(sim::benchmarkProfile(bench),
                                    config.l2.line_size);
    sim::System system(config, workload);
    system.run(instructions / 4);
    system.beginMeasurement();
    system.run(instructions);
    return system.stats().cycles;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "mcf";
    const uint64_t instructions =
        argc > 2 ? std::stoull(argv[2]) : 1'500'000;

    std::cout << "=== secproc design-space exploration ('" << bench
              << "', " << instructions << " instructions) ===\n\n";

    const uint64_t base = run(
        bench, sim::paperConfig(secure::SecurityModel::Baseline),
        instructions);

    const std::vector<uint64_t> capacities = {
        16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024};
    const std::vector<uint32_t> crypto_latencies = {25, 50, 102};

    util::Table table({"SNC size", "area (rel)", "crypto 25c",
                       "crypto 50c", "crypto 102c"});
    for (const uint64_t capacity : capacities) {
        std::vector<std::string> row = {
            util::formatBytes(capacity),
            util::formatDouble(area::sncArea(capacity, 32) / 1e6, 2)};
        for (const uint32_t latency : crypto_latencies) {
            auto config =
                sim::paperConfig(secure::SecurityModel::OtpSnc);
            config.protection.snc.capacity_bytes = capacity;
            config.protection.snc.assoc = 32;
            config.protection.crypto.latency = latency;
            const uint64_t cycles = run(bench, config, instructions);
            const double slowdown =
                (static_cast<double>(cycles) /
                     static_cast<double>(base) -
                 1.0) *
                100.0;
            row.push_back(util::formatDouble(slowdown, 2) + "%");
        }
        table.addRow(row);
    }
    std::cout << "OTP + 32-way SNC slowdown vs insecure baseline:\n";
    table.print(std::cout);

    // XOM reference points at the same crypto latencies.
    std::cout << "\nXOM reference (no SNC, crypto on the critical "
                 "path):\n";
    util::Table xom_table({"config", "crypto 25c", "crypto 50c",
                           "crypto 102c"});
    std::vector<std::string> xom_row = {"XOM"};
    for (const uint32_t latency : crypto_latencies) {
        auto config = sim::paperConfig(secure::SecurityModel::Xom);
        config.protection.crypto.latency = latency;
        const uint64_t cycles = run(bench, config, instructions);
        xom_row.push_back(util::formatDouble(
                              (static_cast<double>(cycles) /
                                   static_cast<double>(base) -
                               1.0) *
                                  100.0,
                              2) +
                          "%");
    }
    xom_table.addRow(xom_row);
    xom_table.print(std::cout);

    std::cout << "\nReading: the OTP scheme is flat across crypto "
                 "latency (the pad is\nprecomputed during the memory "
                 "access) while XOM scales with it; SNC\ncapacity "
                 "buys coverage of the working set's sequence "
                 "numbers.\n";
    return 0;
}
