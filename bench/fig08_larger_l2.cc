/**
 * @file
 * Figure 8: is the SNC's chip area better spent on a larger L2?
 *
 * Following the paper's Section 5.4: CACTI says a 4-way 256KB L2
 * plus a 32-way 64KB SNC occupies area between a 5-way 320KB and a
 * 6-way 384KB L2, so XOM is granted the 6-way 384KB L2 and compared
 * at equal area. Normalized execution time vs the 256KB baseline;
 * paper averages: XOM-256K 1.17, XOM-384K 1.09, SNC-32way-256K 1.02
 * (gcc/mesa/vortex even speed up with the larger L2).
 */

#include <iostream>

#include "area/cacti_lite.hh"
#include "exp/cli.hh"
#include "sim/profiles.hh"
#include "util/strutil.hh"

using namespace secproc;

namespace
{

sim::SystemConfig
withL2(sim::SystemConfig config, uint64_t size, uint32_t assoc)
{
    config.l2.size_bytes = size;
    config.l2.assoc = assoc;
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    const exp::BenchCli cli = exp::parseBenchCli(argc, argv);

    // Area side of the argument.
    const double l2_256 = area::cacheArea(256 * 1024, 4, 128);
    const double snc = area::sncArea(64 * 1024, 32);
    const double l2_320 = area::cacheArea(320 * 1024, 5, 128);
    const double l2_384 = area::cacheArea(384 * 1024, 6, 128);
    std::cout << "== Figure 8: larger L2 vs L2 + SNC at equal area ==\n";
    std::cout << "CactiLite area (relative units):\n"
              << "  256KB 4-way L2 + 64KB 32-way SNC : "
              << util::formatDouble(l2_256 + snc, 0) << "\n"
              << "  320KB 5-way L2                   : "
              << util::formatDouble(l2_320, 0) << "\n"
              << "  384KB 6-way L2                   : "
              << util::formatDouble(l2_384, 0) << "\n"
              << "  ordering holds (paper Section 5.4): "
              << (area::paperAreaOrderingHolds() ? "yes" : "NO")
              << "\n\n";

    exp::ExperimentSpec spec;
    spec.name = "fig08_larger_l2";
    spec.title = "Figure 8: larger L2 vs L2 + SNC at equal area";
    spec.subtitle = "normalized execution time w.r.t. the insecure "
                    "4-way 256KB-L2 baseline";
    spec.options = cli.options;
    spec.addBaseline("baseline", [](const std::string &) {
        return sim::paperConfig(secure::SecurityModel::Baseline);
    });
    spec.add(
        "XOM-256K",
        [](const std::string &) {
            return sim::paperConfig(secure::SecurityModel::Xom);
        },
        [](const std::string &bench) {
            return 1.0 + sim::paperNumbers(bench).xom_slowdown / 100.0;
        });
    spec.add(
        "XOM-384K",
        [](const std::string &) {
            return withL2(sim::paperConfig(secure::SecurityModel::Xom),
                          384 * 1024, 6);
        },
        [](const std::string &bench) {
            return sim::paperNumbers(bench).xom_384k_norm;
        });
    spec.add(
        "SNC-32w",
        [](const std::string &) {
            auto config = sim::paperConfig(secure::SecurityModel::OtpSnc);
            config.protection.snc.assoc = 32;
            return config;
        },
        [](const std::string &bench) {
            return 1.0 + sim::paperNumbers(bench).snc_32way / 100.0;
        });

    const exp::Report report = exp::Runner(cli.runner).run(spec);
    report.printTable(std::cout, exp::TableUnit::NormalizedTime);
    if (cli.write_json)
        report.writeJson(cli.json_path);
    return 0;
}
