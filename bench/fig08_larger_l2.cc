/**
 * @file
 * Figure 8: is the SNC's chip area better spent on a larger L2?
 *
 * Following the paper's Section 5.4: CACTI says a 4-way 256KB L2
 * plus a 32-way 64KB SNC occupies area between a 5-way 320KB and a
 * 6-way 384KB L2, so XOM is granted the 6-way 384KB L2 and compared
 * at equal area. Normalized execution time vs the 256KB baseline;
 * paper averages: XOM-256K 1.17, XOM-384K 1.09, SNC-32way-256K 1.02
 * (gcc/mesa/vortex even speed up with the larger L2).
 */

#include <iostream>

#include "area/cacti_lite.hh"
#include "bench/harness.hh"
#include "util/strutil.hh"
#include "util/table.hh"

using namespace secproc;

namespace
{

sim::SystemConfig
withL2(sim::SystemConfig config, uint64_t size, uint32_t assoc)
{
    config.l2.size_bytes = size;
    config.l2.assoc = assoc;
    return config;
}

} // namespace

int
main()
{
    const auto options = bench::HarnessOptions::fromEnvironment();

    // Area side of the argument.
    const double l2_256 = area::cacheArea(256 * 1024, 4, 128);
    const double snc = area::sncArea(64 * 1024, 32);
    const double l2_320 = area::cacheArea(320 * 1024, 5, 128);
    const double l2_384 = area::cacheArea(384 * 1024, 6, 128);
    std::cout << "== Figure 8: larger L2 vs L2 + SNC at equal area ==\n";
    std::cout << "CactiLite area (relative units):\n"
              << "  256KB 4-way L2 + 64KB 32-way SNC : "
              << util::formatDouble(l2_256 + snc, 0) << "\n"
              << "  320KB 5-way L2                   : "
              << util::formatDouble(l2_320, 0) << "\n"
              << "  384KB 6-way L2                   : "
              << util::formatDouble(l2_384, 0) << "\n"
              << "  ordering holds (paper Section 5.4): "
              << (area::paperAreaOrderingHolds() ? "yes" : "NO")
              << "\n\n";

    util::Table table({"bench", "XOM-256K paper", "XOM-256K meas",
                       "XOM-384K paper", "XOM-384K meas",
                       "SNC-32w paper", "SNC-32w meas"});
    double sums[6] = {};

    for (const std::string &name : sim::benchmarkNames()) {
        const auto paper = sim::paperNumbers(name);

        const auto base = bench::runConfig(
            name, sim::paperConfig(secure::SecurityModel::Baseline),
            options);

        const auto xom256 = bench::runConfig(
            name, sim::paperConfig(secure::SecurityModel::Xom),
            options);

        auto xom384_config =
            withL2(sim::paperConfig(secure::SecurityModel::Xom),
                   384 * 1024, 6);
        const auto xom384 =
            bench::runConfig(name, xom384_config, options);

        auto snc_config =
            sim::paperConfig(secure::SecurityModel::OtpSnc);
        snc_config.protection.snc.assoc = 32;
        const auto snc32 = bench::runConfig(name, snc_config, options);

        const double norm256 = static_cast<double>(xom256.cycles) /
                               static_cast<double>(base.cycles);
        const double norm384 = static_cast<double>(xom384.cycles) /
                               static_cast<double>(base.cycles);
        const double norm_snc = static_cast<double>(snc32.cycles) /
                                static_cast<double>(base.cycles);

        const double paper256 = 1.0 + paper.xom_slowdown / 100.0;
        const double paper_snc = 1.0 + paper.snc_32way / 100.0;
        const double cells[6] = {paper256,          norm256,
                                 paper.xom_384k_norm, norm384,
                                 paper_snc,         norm_snc};
        for (int i = 0; i < 6; ++i)
            sums[i] += cells[i];

        table.addRow({name, util::formatDouble(cells[0], 2),
                      util::formatDouble(cells[1], 2),
                      util::formatDouble(cells[2], 2),
                      util::formatDouble(cells[3], 2),
                      util::formatDouble(cells[4], 2),
                      util::formatDouble(cells[5], 2)});
    }

    const double n = static_cast<double>(sim::benchmarkNames().size());
    table.addRow({"average", util::formatDouble(sums[0] / n, 2),
                  util::formatDouble(sums[1] / n, 2),
                  util::formatDouble(sums[2] / n, 2),
                  util::formatDouble(sums[3] / n, 2),
                  util::formatDouble(sums[4] / n, 2),
                  util::formatDouble(sums[5] / n, 2)});

    std::cout << "(normalized execution time w.r.t. the insecure "
                 "4-way 256KB-L2 baseline)\n";
    table.print(std::cout);
    return 0;
}
