/**
 * @file
 * Ablation A9: does the core model change the story?
 *
 * The paper measures on a 4-issue out-of-order SimpleScalar, which
 * overlaps part of every fill under the instruction window; a simple
 * in-order core (blocking loads) exposes every fill completely. The
 * *absolute* cycles added by XOM's +50 are then larger, but so are
 * the baseline's own stalls, so the relative slowdown can move
 * either way — this bench measures it, because the 2003-era embedded
 * processors most likely to ship a secure mode were in-order. The
 * robust claim is the ordering: OTP+SNC stays far below XOM on both
 * cores.
 */

#include <iostream>

#include "bench/harness.hh"
#include "util/strutil.hh"
#include "util/table.hh"

using namespace secproc;

namespace
{

sim::SystemConfig
coreConfig(secure::SecurityModel model, bool blocking)
{
    sim::SystemConfig config = sim::paperConfig(model);
    config.core.blocking_loads = blocking;
    return config;
}

} // namespace

int
main()
{
    const auto options = bench::HarnessOptions::fromEnvironment();
    const std::vector<std::string> benches = {"ammp", "art",  "gcc",
                                              "mcf",  "mesa", "vpr"};

    util::Table table({"bench", "core", "XOM %", "SNC-LRU %"});
    double xom_avg[2] = {0, 0};
    double otp_avg[2] = {0, 0};
    for (const std::string &name : benches) {
        for (const bool blocking : {false, true}) {
            const auto base = bench::runConfig(
                name, coreConfig(secure::SecurityModel::Baseline,
                                 blocking),
                options);
            const auto xom = bench::runConfig(
                name, coreConfig(secure::SecurityModel::Xom, blocking),
                options);
            const auto otp = bench::runConfig(
                name,
                coreConfig(secure::SecurityModel::OtpSnc, blocking),
                options);
            const double xom_pct =
                bench::slowdownPct(base.cycles, xom.cycles);
            const double otp_pct =
                bench::slowdownPct(base.cycles, otp.cycles);
            xom_avg[blocking] += xom_pct;
            otp_avg[blocking] += otp_pct;
            table.addRow({name, blocking ? "in-order" : "ooo-4",
                          util::formatDouble(xom_pct, 2),
                          util::formatDouble(otp_pct, 2)});
        }
    }
    for (const bool blocking : {false, true}) {
        table.addRow(
            {"average", blocking ? "in-order" : "ooo-4",
             util::formatDouble(
                 xom_avg[blocking] /
                     static_cast<double>(benches.size()),
                 2),
             util::formatDouble(
                 otp_avg[blocking] /
                     static_cast<double>(benches.size()),
                 2)});
    }

    std::cout << "== Ablation A9: out-of-order vs in-order core ==\n"
              << "(slowdown % vs the same core's insecure baseline)\n";
    table.print(std::cout);
    return 0;
}
