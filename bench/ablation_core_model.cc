/**
 * @file
 * Ablation A9: does the core model change the story?
 *
 * The paper measures on a 4-issue out-of-order SimpleScalar, which
 * overlaps part of every fill under the instruction window; a simple
 * in-order core (blocking loads) exposes every fill completely. The
 * *absolute* cycles added by XOM's +50 are then larger, but so are
 * the baseline's own stalls, so the relative slowdown can move
 * either way — this bench measures it, because the 2003-era embedded
 * processors most likely to ship a secure mode were in-order. The
 * robust claim is the ordering: OTP+SNC stays far below XOM on both
 * cores.
 */

#include <iostream>

#include "exp/cli.hh"
#include "sim/profiles.hh"

using namespace secproc;

namespace
{

sim::SystemConfig
coreConfig(secure::SecurityModel model, bool blocking)
{
    sim::SystemConfig config = sim::paperConfig(model);
    config.core.blocking_loads = blocking;
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    const exp::BenchCli cli = exp::parseBenchCli(argc, argv);

    exp::ExperimentSpec spec;
    spec.name = "ablation_core_model";
    spec.title = "Ablation A9: out-of-order vs in-order core";
    spec.subtitle =
        "slowdown % vs the same core's insecure baseline";
    spec.benchmarks = {"ammp", "art", "gcc", "mcf", "mesa", "vpr"};
    spec.options = cli.options;

    for (const bool blocking : {false, true}) {
        const std::string core = blocking ? "in-order" : "ooo-4";
        spec.add("base " + core, [blocking](const std::string &) {
            return coreConfig(secure::SecurityModel::Baseline,
                              blocking);
        });
        spec.add("XOM " + core, [blocking](const std::string &) {
                return coreConfig(secure::SecurityModel::Xom, blocking);
            }).baseline = "base " + core;
        spec.add("SNC-LRU " + core, [blocking](const std::string &) {
                return coreConfig(secure::SecurityModel::OtpSnc,
                                  blocking);
            }).baseline = "base " + core;
    }

    const exp::Report report = exp::Runner(cli.runner).run(spec);
    report.printVariantRows(std::cout);
    if (cli.write_json)
        report.writeJson(cli.json_path);
    return 0;
}
