/**
 * @file
 * Figure 7: fully associative versus 32-way set associative 64KB
 * SNC. Apart from ammp (2.76% -> 9.62%, a set-conflict pathology)
 * the two are equivalent.
 *
 * Paper averages: 1.28% (fully associative) vs 1.90% (32-way).
 */

#include <iostream>

#include "exp/cli.hh"
#include "sim/profiles.hh"

using namespace secproc;

namespace
{

sim::SystemConfig
sncAssocConfig(uint32_t assoc)
{
    auto config = sim::paperConfig(secure::SecurityModel::OtpSnc);
    config.protection.snc.assoc = assoc;
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    const exp::BenchCli cli = exp::parseBenchCli(argc, argv);

    exp::ExperimentSpec spec;
    spec.name = "fig07_snc_assoc";
    spec.title = "Figure 7: fully associative vs 32-way set "
                 "associative SNC (64KB, LRU)";
    spec.subtitle = "program slowdown in % over the insecure baseline";
    spec.options = cli.options;
    spec.addBaseline("baseline", [](const std::string &) {
        return sim::paperConfig(secure::SecurityModel::Baseline);
    });
    spec.add(
        "fully-assoc",
        [](const std::string &) { return sncAssocConfig(0); },
        [](const std::string &bench) {
            return sim::paperNumbers(bench).snc_lru;
        });
    spec.add(
        "32-way",
        [](const std::string &) { return sncAssocConfig(32); },
        [](const std::string &bench) {
            return sim::paperNumbers(bench).snc_32way;
        });

    const exp::Report report = exp::Runner(cli.runner).run(spec);
    report.printTable(std::cout);
    if (cli.write_json)
        report.writeJson(cli.json_path);
    return 0;
}
