/**
 * @file
 * Figure 7: fully associative versus 32-way set associative 64KB
 * SNC. Apart from ammp (2.76% -> 9.62%, a set-conflict pathology)
 * the two are equivalent.
 *
 * Paper averages: 1.28% (fully associative) vs 1.90% (32-way).
 */

#include "bench/harness.hh"

using namespace secproc;

namespace
{

sim::SystemConfig
sncAssocConfig(uint32_t assoc)
{
    auto config = sim::paperConfig(secure::SecurityModel::OtpSnc);
    config.protection.snc.assoc = assoc;
    return config;
}

} // namespace

int
main()
{
    const auto options = bench::HarnessOptions::fromEnvironment();

    auto baseline = [](const std::string &) {
        return sim::paperConfig(secure::SecurityModel::Baseline);
    };

    std::vector<bench::FigureColumn> columns;
    columns.push_back(
        {"fully-assoc",
         [](const std::string &) { return sncAssocConfig(0); },
         [](const std::string &bench) {
             return sim::paperNumbers(bench).snc_lru;
         }});
    columns.push_back(
        {"32-way",
         [](const std::string &) { return sncAssocConfig(32); },
         [](const std::string &bench) {
             return sim::paperNumbers(bench).snc_32way;
         }});

    bench::runSlowdownFigure(
        "Figure 7: fully associative vs 32-way set associative SNC "
        "(64KB, LRU)",
        baseline, columns, options);
    return 0;
}
