/**
 * @file
 * Ablation A10: memory-latency sweep.
 *
 * The OTP fast path costs max(memory, crypto) + 1 cycles, so the
 * scheme's overhead *vanishes* once memory is slower than the crypto
 * engine and only shows when memory gets faster than crypto — the
 * crossover the formula predicts at memory == crypto. XOM's overhead
 * is a constant +crypto per fill regardless. This sweep walks memory
 * latency from 40 to 400 cycles at both of the paper's crypto
 * latencies (50 and 102) and reports where each scheme's slowdown
 * lands, exposing the crossover directly.
 */

#include <iostream>

#include "bench/harness.hh"
#include "util/strutil.hh"
#include "util/table.hh"

using namespace secproc;

namespace
{

sim::SystemConfig
sweepConfig(secure::SecurityModel model, uint32_t mem_latency,
            uint32_t crypto_latency)
{
    sim::SystemConfig config = sim::paperConfig(model);
    config.channel.access_latency = mem_latency;
    config.protection.crypto.latency = crypto_latency;
    return config;
}

} // namespace

int
main()
{
    const auto options = bench::HarnessOptions::fromEnvironment();
    // One memory-bound and one balanced benchmark tell the story.
    const std::vector<std::string> benches = {"mcf", "gcc"};
    const std::vector<uint32_t> memories = {40, 70, 100, 200, 400};

    for (const uint32_t crypto : {50u, 102u}) {
        util::Table table({"bench", "mem latency", "XOM %",
                           "SNC-LRU %", "XOM-OTP gap"});
        for (const std::string &name : benches) {
            for (const uint32_t mem : memories) {
                const auto base = bench::runConfig(
                    name,
                    sweepConfig(secure::SecurityModel::Baseline, mem,
                                crypto),
                    options);
                const auto xom = bench::runConfig(
                    name,
                    sweepConfig(secure::SecurityModel::Xom, mem,
                                crypto),
                    options);
                const auto otp = bench::runConfig(
                    name,
                    sweepConfig(secure::SecurityModel::OtpSnc, mem,
                                crypto),
                    options);
                const double xom_pct =
                    bench::slowdownPct(base.cycles, xom.cycles);
                const double otp_pct =
                    bench::slowdownPct(base.cycles, otp.cycles);
                table.addRow({name, std::to_string(mem),
                              util::formatDouble(xom_pct, 2),
                              util::formatDouble(otp_pct, 2),
                              util::formatDouble(xom_pct - otp_pct,
                                                 2)});
            }
        }
        std::cout << "== Ablation A10: memory-latency sweep, "
                  << crypto << "-cycle crypto ==\n"
                  << "(slowdown % vs baseline at the same memory "
                     "latency)\n";
        table.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
