/**
 * @file
 * Ablation A10: memory-latency sweep.
 *
 * The OTP fast path costs max(memory, crypto) + 1 cycles, so the
 * scheme's overhead *vanishes* once memory is slower than the crypto
 * engine and only shows when memory gets faster than crypto — the
 * crossover the formula predicts at memory == crypto. XOM's overhead
 * is a constant +crypto per fill regardless. This sweep walks memory
 * latency from 40 to 400 cycles at both of the paper's crypto
 * latencies (50 and 102) and reports where each scheme's slowdown
 * lands, exposing the crossover directly.
 */

#include <iostream>

#include "crypto/latency.hh"
#include "exp/cli.hh"
#include "sim/profiles.hh"

using namespace secproc;

namespace
{

sim::SystemConfig
sweepConfig(secure::SecurityModel model, uint32_t mem_latency,
            uint32_t crypto_latency)
{
    sim::SystemConfig config = sim::paperConfig(model);
    config.channel.access_latency = mem_latency;
    config.protection.crypto.latency = crypto_latency;
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    const exp::BenchCli cli = exp::parseBenchCli(argc, argv);
    const exp::Runner runner(cli.runner);

    for (const uint32_t crypto :
         {crypto::kPaperCryptoLatency,
          crypto::kStrongCipherLatency}) {
        exp::ExperimentSpec spec;
        spec.name = "ablation_mem_latency_c" + std::to_string(crypto);
        spec.title = "Ablation A10: memory-latency sweep, " +
                     std::to_string(crypto) + "-cycle crypto";
        spec.subtitle =
            "slowdown % vs baseline at the same memory latency";
        // One memory-bound and one balanced benchmark tell the story.
        spec.benchmarks = {"mcf", "gcc"};
        spec.options = cli.options;

        for (const uint32_t mem : {40u, 70u, 100u, 200u, 400u}) {
            const std::string at = "@" + std::to_string(mem);
            spec.add("base" + at, [mem, crypto](const std::string &) {
                return sweepConfig(secure::SecurityModel::Baseline,
                                   mem, crypto);
            });
            spec.add("XOM" + at, [mem, crypto](const std::string &) {
                    return sweepConfig(secure::SecurityModel::Xom, mem,
                                       crypto);
                }).baseline = "base" + at;
            spec.add("SNC-LRU" + at,
                     [mem, crypto](const std::string &) {
                         return sweepConfig(
                             secure::SecurityModel::OtpSnc, mem,
                             crypto);
                     }).baseline = "base" + at;
        }

        const exp::Report report = runner.run(spec);
        report.printVariantRows(std::cout);
        if (cli.write_json)
            report.writeJson(cli.json_path.empty()
                                 ? ""
                                 : spec.name + "_" + cli.json_path);
    }
    return 0;
}
