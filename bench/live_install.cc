/**
 * @file
 * Unified-plane install cost: one System run, both verdicts.
 *
 * Every cell runs a *real* secure install — signed bundle, lossy OTA
 * transport, functional UpdateEngine — as a background agent of the
 * foreground workload's machine, with the install self-throttling
 * through the channel's foreground-priority arbiter. The measured
 * value is the cycle verdict (percent foreground slowdown vs the
 * same machine with nothing installing); the functional verdict
 * (every completed install's slot bytes, manifest and rollback
 * counter byte-identical to a pure functional install of the same
 * bundle) rides along as the `functional_ok` extra, which must
 * always be 1.
 *
 * `fixed_slowdown` reports the PR-4 fixed-pace replay of the same
 * image on the same machine for comparison; `below_fixed` is 1 when
 * self-throttling undercut it (the ROADMAP acceptance number).
 */

#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <algorithm>
#include <iostream>

#include "crypto/latency.hh"
#include "exp/cell_cache.hh"
#include "exp/cli.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/profiles.hh"
#include "update/image_builder.hh"
#include "update/install_timing.hh"
#include "update/live_install.hh"
#include "update/update_engine.hh"

using namespace secproc;

namespace
{

constexpr uint64_t kStagingBase = 0x4000'0000;
constexpr uint64_t kSlotSize = 8ull << 20;
constexpr uint64_t kImageBase = 0x0800'0000;

struct GridPoint
{
    const char *label;
    uint64_t image_bytes;
    uint32_t crypto_latency;
};

constexpr GridPoint kGrid[] = {
    {"live-256KB-c50", 256ull << 10, crypto::kPaperCryptoLatency},
    {"live-256KB-c102", 256ull << 10, crypto::kStrongCipherLatency},
    {"live-2MB-c50", 2ull << 20, crypto::kPaperCryptoLatency},
    {"live-2MB-c102", 2ull << 20, crypto::kStrongCipherLatency},
};

sim::SystemConfig
machineConfig(uint32_t crypto_latency)
{
    sim::SystemConfig config =
        sim::paperConfig(secure::SecurityModel::OtpSnc);
    config.protection.crypto.latency = crypto_latency;
    return config;
}

/** A modest-bandwidth downlink with mild burst loss. */
ota::TransportConfig
downlink()
{
    ota::TransportConfig transport;
    transport.chunk_bytes = 1024;
    transport.cycles_per_chunk = 128;
    transport.loss_rate = 0.05;
    transport.burst_length = 2.0;
    transport.retransmit_delay = 8192;
    transport.seed = 0x0F0A;
    return transport;
}

update::UpdateBundle
makeBundle(update::ImageBuilder &vendor,
           const crypto::RsaPublicKey &processor, util::Rng &rng,
           uint32_t version, uint64_t image_bytes)
{
    xom::PlainProgram program;
    program.title = "fw";
    program.entry_point = kImageBase;
    xom::PlainProgram::PlainSection text;
    text.name = ".text";
    text.vaddr = kImageBase;
    text.bytes.resize(image_bytes, static_cast<uint8_t>(version));
    program.sections = {text};

    update::UpdateSpec spec;
    spec.image_version = version;
    spec.rollback_counter = version;
    spec.cipher = secure::CipherKind::Des;
    return vendor.build(program, spec, processor, rng);
}

/**
 * Shared vendor identity for every cell with the same (image size,
 * engine latency) pair. Those cells seed their RNG identically, so
 * the vendor/processor keypairs and the whole bundle sequence
 * v1, v2, ... are byte-for-byte the same across benchmarks — one
 * context builds each bundle once and the other benchmarks reuse it
 * instead of re-encrypting and re-signing a multi-hundred-KB image.
 * Bundles are built strictly in version order, so the RNG stream
 * here matches what a solo cell would have drawn.
 */
struct VendorContext
{
    util::Rng rng;
    update::ImageBuilder vendor;
    crypto::RsaKeyPair processor;
    uint64_t image_bytes;
    std::vector<update::UpdateBundle> bundles;
    std::mutex mutex;

    VendorContext(uint64_t bytes, uint32_t crypto_latency)
        : rng(0x11E'0001 ^ bytes ^ crypto_latency),
          vendor(crypto::rsaGenerate(512, rng)),
          processor(crypto::rsaGenerate(512, rng)), image_bytes(bytes)
    {
    }

    const update::UpdateBundle &
    bundle(uint32_t version)
    {
        std::lock_guard<std::mutex> lock(mutex);
        while (bundles.size() < version) {
            bundles.push_back(makeBundle(
                vendor, processor.pub, rng,
                static_cast<uint32_t>(bundles.size()) + 1,
                image_bytes));
        }
        return bundles[version - 1];
    }
};

VendorContext &
vendorContext(uint64_t image_bytes, uint32_t crypto_latency)
{
    static std::mutex registry_mutex;
    static std::map<std::pair<uint64_t, uint32_t>,
                    std::unique_ptr<VendorContext>>
        registry;
    std::lock_guard<std::mutex> lock(registry_mutex);
    auto &slot = registry[{image_bytes, crypto_latency}];
    if (slot == nullptr)
        slot = std::make_unique<VendorContext>(image_bytes,
                                               crypto_latency);
    return *slot;
}

/**
 * Foreground-alone cycles via the process-wide cell cache: cells
 * differing only in image size share one alone run, and workers
 * asking concurrently wait on the first worker's future.
 */
sim::RunStats
measureAlone(const std::string &bench, const sim::SystemConfig &config,
             const exp::RunOptions &options)
{
    return exp::cachedRunCell(bench, config, options);
}

/** PR-4 fixed-pace slowdown of the same image on the same machine. */
double
fixedPaceSlowdown(const std::string &bench, const GridPoint &point,
                  const exp::RunOptions &options, uint64_t alone_cycles)
{
    const sim::SystemConfig config =
        machineConfig(point.crypto_latency);
    const sim::WorkloadProfile profile = sim::benchmarkProfile(bench);
    sim::SyntheticWorkload workload(profile, config.l2.line_size);
    sim::System system(config, workload);

    update::InstallTimingConfig itc;
    itc.line_bytes = config.l2.line_size;
    update::InstallTiming timing(itc, system.channel(),
                                 system.cryptoEngine());
    timing.start(update::InstallPlan::fromImageBytes(
                     point.image_bytes, config.l2.line_size),
                 0, /*repeat=*/true);
    system.attachAgent(&timing);
    system.run(options.warmup_instructions);
    system.beginMeasurement();
    system.run(options.measure_instructions);
    return exp::slowdownPct(alone_cycles, system.stats().cycles);
}

exp::RunFn
makeCell(const GridPoint &point)
{
    return [point](const std::string &bench,
                   const exp::RunOptions &options) {
        const sim::SystemConfig config =
            machineConfig(point.crypto_latency);
        const sim::RunStats alone =
            measureAlone(bench, config, options);

        // The live machine: functional updater + unified-plane agent.
        VendorContext &ctx =
            vendorContext(point.image_bytes, point.crypto_latency);
        update::ImageBuilder &vendor = ctx.vendor;
        const crypto::RsaKeyPair &processor = ctx.processor;
        secure::KeyTable update_keys;
        update::RollbackStore rollback(64);
        update::UpdateEngine updater(
            vendor.publicKey(), processor, update_keys, rollback,
            update::StagingConfig{kStagingBase, kSlotSize});

        const sim::WorkloadProfile profile =
            sim::benchmarkProfile(bench);
        sim::SyntheticWorkload workload(profile, config.l2.line_size);
        sim::System system(config, workload);

        update::LiveInstallConfig live_config;
        live_config.line_bytes = config.l2.line_size;
        live_config.pacing = update::InstallPacing::Arbiter;
        live_config.transport = downlink();
        update::LiveInstall live(live_config, system, updater, 1);
        system.attachAgent(&live);

        // Pure functional reference device for the differential
        // verdict of every completed install.
        secure::KeyTable ref_keys;
        update::RollbackStore ref_rollback(64);
        mem::MemoryChannel ref_channel(config.channel);
        secure::ProtectionConfig ref_protection = config.protection;
        ref_protection.line_size = config.l2.line_size;
        auto ref_engine = secure::makeProtectionEngine(
            ref_protection, ref_channel, ref_keys);
        update::UpdateEngine reference(
            vendor.publicKey(), processor, ref_keys, ref_rollback,
            update::StagingConfig{kStagingBase, kSlotSize});
        mem::MainMemory ref_memory;
        mem::VirtualMemory ref_vm;

        uint32_t version = 1;
        bool functional_ok = true;
        uint64_t completed = 0;
        const update::UpdateBundle *current = &ctx.bundle(version);
        live.start(*current, 0);

        // Steady-state install pressure: the moment an install
        // lands, verify it against the reference device and start
        // the next version.
        auto pump = [&](uint64_t instructions) {
            for (uint64_t ran = 0; ran < instructions;) {
                const uint64_t step =
                    std::min<uint64_t>(10'000, instructions - ran);
                system.run(step);
                ran += step;
                if (!live.done())
                    continue;
                functional_ok &=
                    live.phase() == update::LiveInstallPhase::Done;
                if (!functional_ok)
                    return;
                const bool ref_ok =
                    reference
                        .install(*current, 1, ref_memory, ref_vm, 1,
                                 *ref_engine)
                        .ok();
                // == kSlotHeaderBytes + serialized bundle size,
                // without re-serializing the multi-MB image.
                const uint64_t framed = live.stagedBytesWritten();
                std::vector<uint8_t> want(framed);
                std::vector<uint8_t> got(framed);
                ref_memory.read(
                    reference.slotBase(reference.activeSlot()),
                    want.data(), want.size());
                system.mainMemory().read(
                    updater.slotBase(updater.activeSlot()),
                    got.data(), got.size());
                functional_ok &=
                    ref_ok && want == got &&
                    updater.activeManifest()->serialize() ==
                        reference.activeManifest()->serialize() &&
                    rollback.current("fw") ==
                        ref_rollback.current("fw");
                ++completed;
                current = &ctx.bundle(++version);
                live.start(*current, system.core().cycles());
            }
        };

        pump(options.warmup_instructions);
        system.beginMeasurement();
        const uint64_t update_bytes_before =
            system.channel().updateBytes();
        pump(options.measure_instructions);

        exp::CellOutput cell;
        cell.stats = system.stats();
        cell.measured =
            exp::slowdownPct(alone.cycles, cell.stats.cycles);
        const double fixed = fixedPaceSlowdown(bench, point, options,
                                               alone.cycles);
        cell.extras.emplace_back("functional_ok",
                                 functional_ok ? 1.0 : 0.0);
        cell.extras.emplace_back("installs_completed",
                                 static_cast<double>(completed));
        cell.extras.emplace_back("fixed_slowdown", fixed);
        cell.extras.emplace_back(
            "below_fixed", *cell.measured < fixed ? 1.0 : 0.0);
        cell.extras.emplace_back(
            "stall_mcycles",
            static_cast<double>(
                system.channel().agentStallCycles(live.agent())) /
                1e6);
        cell.extras.emplace_back(
            "update_mbytes",
            static_cast<double>(system.channel().updateBytes() -
                                update_bytes_before) /
                1e6);
        cell.extras.emplace_back(
            "chunks_lost",
            static_cast<double>(live.transport().chunksLost()));
        system.channel().assertFullyAttributed();
        return cell;
    };
}

/**
 * --trace-out mode: run ONE complete traced install (gcc foreground,
 * 256KB image, paper crypto latency) instead of the grid, write the
 * Chrome/Perfetto trace, and dump the full metrics snapshot. One
 * exemplar keeps the CI smoke step fast; the grid's perf numbers
 * come from untraced runs only.
 */
int
runTracedExemplar(const exp::BenchCli &cli)
{
    const GridPoint &point = kGrid[0]; // live-256KB-c50
    const std::string bench = "gcc";
    const sim::SystemConfig config =
        machineConfig(point.crypto_latency);

    util::Rng rng(0x11E'0001 ^ point.image_bytes ^
                  point.crypto_latency);
    update::ImageBuilder vendor(crypto::rsaGenerate(512, rng));
    const crypto::RsaKeyPair processor = crypto::rsaGenerate(512, rng);
    secure::KeyTable update_keys;
    update::RollbackStore rollback(64);
    update::UpdateEngine updater(
        vendor.publicKey(), processor, update_keys, rollback,
        update::StagingConfig{kStagingBase, kSlotSize});

    sim::SyntheticWorkload workload(sim::benchmarkProfile(bench),
                                    config.l2.line_size);
    sim::System system(config, workload);

    update::LiveInstallConfig live_config;
    live_config.line_bytes = config.l2.line_size;
    live_config.pacing = update::InstallPacing::Arbiter;
    live_config.transport = downlink();
    update::LiveInstall live(live_config, system, updater, 1);

    obs::TraceSink trace;
    system.setTraceSink(&trace);
    system.attachAgent(&live);

    const update::UpdateBundle bundle =
        makeBundle(vendor, processor.pub, rng, 1, point.image_bytes);
    live.start(bundle, 0);
    while (!live.done())
        system.run(10'000);

    trace.writeChromeJson(cli.trace_out);
    const bool ok = live.phase() == update::LiveInstallPhase::Done;
    std::cout << "traced exemplar: " << bench << " / " << point.label
              << ", install " << (ok ? "done" : "FAILED")
              << " @ cycle " << system.core().cycles() << "\n"
              << "trace: " << trace.eventCount() << " events on "
              << trace.trackCount() << " tracks -> '" << cli.trace_out
              << "'\n\n-- metrics snapshot --\n";

    obs::MetricsRegistry registry;
    system.registerMetrics(registry);
    live.registerMetrics(registry);
    registry.snapshot().dump(std::cout);
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const exp::BenchCli cli = exp::parseBenchCli(argc, argv);
    if (!cli.trace_out.empty())
        return runTracedExemplar(cli);

    exp::ExperimentSpec spec;
    spec.name = "live_install";
    spec.title = "Unified-plane OTA installs "
                 "(functional engine + arbiter self-throttling)";
    spec.subtitle = "foreground slowdown in % vs the same machine "
                    "with no install running";
    spec.benchmarks = {"gcc", "mcf", "art"};
    spec.options = cli.options;
    for (const GridPoint &point : kGrid)
        spec.addCustom(point.label, makeCell(point));

    const exp::Report report = exp::Runner(cli.runner).run(spec);
    report.printTable(std::cout);
    if (cli.write_json)
        report.writeJson(cli.json_path);
    return 0;
}
