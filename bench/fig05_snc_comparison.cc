/**
 * @file
 * Figure 5: program slowdown of XOM, OTP with no-replacement SNC and
 * OTP with LRU SNC (64KB, fully associative) over the insecure
 * baseline, for the 11 benchmarks.
 *
 * Paper averages: XOM 16.76%, SNC-NoRepl 4.59%, SNC-LRU 1.28%.
 */

#include "bench/harness.hh"

using namespace secproc;

int
main()
{
    const auto options = bench::HarnessOptions::fromEnvironment();

    auto baseline = [](const std::string &) {
        return sim::paperConfig(secure::SecurityModel::Baseline);
    };

    std::vector<bench::FigureColumn> columns;
    columns.push_back(
        {"XOM",
         [](const std::string &) {
             return sim::paperConfig(secure::SecurityModel::Xom);
         },
         [](const std::string &bench) {
             return sim::paperNumbers(bench).xom_slowdown;
         }});
    columns.push_back(
        {"SNC-NoRepl",
         [](const std::string &) {
             auto config =
                 sim::paperConfig(secure::SecurityModel::OtpSnc);
             config.protection.snc.allow_replacement = false;
             return config;
         },
         [](const std::string &bench) {
             return sim::paperNumbers(bench).snc_norepl;
         }});
    columns.push_back(
        {"SNC-LRU",
         [](const std::string &) {
             return sim::paperConfig(secure::SecurityModel::OtpSnc);
         },
         [](const std::string &bench) {
             return sim::paperNumbers(bench).snc_lru;
         }});

    bench::runSlowdownFigure(
        "Figure 5: XOM vs SNC-NoRepl vs SNC-LRU (64KB SNC)", baseline,
        columns, options);
    return 0;
}
