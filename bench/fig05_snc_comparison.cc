/**
 * @file
 * Figure 5: program slowdown of XOM, OTP with no-replacement SNC and
 * OTP with LRU SNC (64KB, fully associative) over the insecure
 * baseline, for the 11 benchmarks.
 *
 * Paper averages: XOM 16.76%, SNC-NoRepl 4.59%, SNC-LRU 1.28%.
 */

#include <iostream>

#include "exp/cli.hh"
#include "sim/profiles.hh"

using namespace secproc;

int
main(int argc, char **argv)
{
    const exp::BenchCli cli = exp::parseBenchCli(argc, argv);

    exp::ExperimentSpec spec;
    spec.name = "fig05_snc_comparison";
    spec.title = "Figure 5: XOM vs SNC-NoRepl vs SNC-LRU (64KB SNC)";
    spec.subtitle = "program slowdown in % over the insecure baseline";
    spec.options = cli.options;
    spec.addBaseline("baseline", [](const std::string &) {
        return sim::paperConfig(secure::SecurityModel::Baseline);
    });
    spec.add(
        "XOM",
        [](const std::string &) {
            return sim::paperConfig(secure::SecurityModel::Xom);
        },
        [](const std::string &bench) {
            return sim::paperNumbers(bench).xom_slowdown;
        });
    spec.add(
        "SNC-NoRepl",
        [](const std::string &) {
            auto config = sim::paperConfig(secure::SecurityModel::OtpSnc);
            config.protection.snc.allow_replacement = false;
            return config;
        },
        [](const std::string &bench) {
            return sim::paperNumbers(bench).snc_norepl;
        });
    spec.add(
        "SNC-LRU",
        [](const std::string &) {
            return sim::paperConfig(secure::SecurityModel::OtpSnc);
        },
        [](const std::string &bench) {
            return sim::paperNumbers(bench).snc_lru;
        });

    const exp::Report report = exp::Runner(cli.runner).run(spec);
    report.printTable(std::cout);
    if (cli.write_json)
        report.writeJson(cli.json_path);
    return 0;
}
