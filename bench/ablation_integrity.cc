/**
 * @file
 * Ablation A3: cost of composing memory integrity verification
 * (paper Section 6 delegates this to Gassend et al.) with the OTP
 * privacy scheme. Compares no verification, blocking per-line MACs,
 * speculative (background) MACs, and a cached Merkle tree, measured
 * as additional fill latency on the OTP fast path.
 *
 * This bench drives the IntegrityEngine directly with a synthetic
 * fill/evict trace derived from one benchmark's miss profile rather
 * than the full system (the integrity engine composes at the same
 * boundary; see DESIGN.md).
 */

#include <iostream>

#include "bench/harness.hh"
#include "secure/integrity.hh"
#include "util/random.hh"
#include "util/strutil.hh"
#include "util/table.hh"

using namespace secproc;

namespace
{

struct Row
{
    const char *label;
    secure::IntegrityMode mode;
};

/** Average added cycles per fill across a synthetic miss stream. */
double
addedLatency(secure::IntegrityMode mode, uint64_t footprint_lines,
             double locality)
{
    secure::IntegrityConfig config;
    config.mode = mode;
    config.hash_latency = 80;
    config.node_cache_bytes = 16 * 1024;
    secure::IntegrityEngine engine(config);
    mem::MemoryChannel channel;

    util::Rng rng(42);
    uint64_t cycle = 0;
    double added = 0;
    const int kFills = 20000;
    for (int i = 0; i < kFills; ++i) {
        cycle += 150 + rng.nextRange(100);
        // Locality: revisit a hot subset with probability `locality`.
        const uint64_t universe = rng.chance(locality)
                                      ? footprint_lines / 64
                                      : footprint_lines;
        const uint64_t line_va = rng.nextRange(universe) * 128;
        const uint64_t arrival =
            channel.scheduleRead(cycle, mem::Traffic::DataFill) + 1;
        const uint64_t committed =
            engine.verifyFill(line_va, cycle, arrival, channel);
        added += static_cast<double>(committed - arrival);
        if (rng.chance(0.4))
            engine.updateEvict(line_va, cycle, channel);
        // Self-pace like a window-stalled core: the next fill cannot
        // issue before this one commits, so backlog never diverges.
        cycle = std::max(cycle, committed);
    }
    return added / kFills;
}

} // namespace

int
main()
{
    const Row rows[] = {
        {"none", secure::IntegrityMode::None},
        {"MAC blocking", secure::IntegrityMode::MacBlocking},
        {"MAC speculative", secure::IntegrityMode::MacSpeculative},
        {"Merkle cached", secure::IntegrityMode::MerkleCached},
    };

    util::Table table({"scheme", "small WS (+cyc/fill)",
                       "large WS (+cyc/fill)"});
    for (const Row &row : rows) {
        const double small_ws = addedLatency(row.mode, 4096, 0.9);
        const double large_ws = addedLatency(row.mode, 512 * 1024, 0.5);
        table.addRow({row.label, util::formatDouble(small_ws, 1),
                      util::formatDouble(large_ws, 1)});
    }

    std::cout << "== Ablation A3: integrity verification cost at the "
                 "fill boundary ==\n"
              << "(added cycles per L2 fill before architectural "
                 "commit; speculative MACs and a warm Merkle node "
                 "cache hide nearly all of it)\n";
    table.print(std::cout);
    return 0;
}
