/**
 * @file
 * Ablation A3: cost of composing memory integrity verification
 * (paper Section 6 delegates this to Gassend et al.) with the OTP
 * privacy scheme. Compares no verification, blocking per-line MACs,
 * speculative (background) MACs, and a cached Merkle tree, measured
 * as additional fill latency on the OTP fast path.
 *
 * This bench drives the IntegrityEngine directly with a synthetic
 * fill/evict trace derived from one benchmark's miss profile rather
 * than the full system (the integrity engine composes at the same
 * boundary; see DESIGN.md). Grid rows are working-set shapes; each
 * cell reports added cycles per fill.
 */

#include <algorithm>
#include <iostream>

#include "exp/cli.hh"
#include "secure/integrity.hh"
#include "util/logging.hh"
#include "util/random.hh"

using namespace secproc;

namespace
{

struct WorkingSet
{
    const char *label;
    uint64_t footprint_lines;
    double locality;
};

const WorkingSet kWorkingSets[] = {
    {"small-ws", 4096, 0.9},
    {"large-ws", 512 * 1024, 0.5},
};

const WorkingSet &
workingSet(const std::string &label)
{
    for (const WorkingSet &ws : kWorkingSets) {
        if (label == ws.label)
            return ws;
    }
    fatal("unknown working set '", label, "'");
}

/** Average added cycles per fill across a synthetic miss stream. */
exp::CellOutput
addedLatency(secure::IntegrityMode mode, const std::string &ws_label)
{
    const WorkingSet &ws = workingSet(ws_label);
    secure::IntegrityConfig config;
    config.mode = mode;
    config.hash_latency = 80;
    config.node_cache_bytes = 16 * 1024;
    secure::IntegrityEngine engine(config);
    mem::MemoryChannel channel;

    util::Rng rng(42);
    uint64_t cycle = 0;
    double added = 0;
    const int kFills = 20000;
    for (int i = 0; i < kFills; ++i) {
        cycle += 150 + rng.nextRange(100);
        // Locality: revisit a hot subset with probability `locality`.
        const uint64_t universe = rng.chance(ws.locality)
                                      ? ws.footprint_lines / 64
                                      : ws.footprint_lines;
        const uint64_t line_va = rng.nextRange(universe) * 128;
        const uint64_t arrival =
            channel.scheduleRead(cycle, mem::Traffic::DataFill) + 1;
        const uint64_t committed =
            engine.verifyFill(line_va, cycle, arrival, channel);
        added += static_cast<double>(committed - arrival);
        if (rng.chance(0.4))
            engine.updateEvict(line_va, cycle, channel);
        // Self-pace like a window-stalled core: the next fill cannot
        // issue before this one commits, so backlog never diverges.
        cycle = std::max(cycle, committed);
    }

    exp::CellOutput output;
    output.measured = added / kFills;
    return output;
}

} // namespace

int
main(int argc, char **argv)
{
    const exp::BenchCli cli = exp::parseBenchCli(argc, argv);

    exp::ExperimentSpec spec;
    spec.name = "ablation_integrity";
    spec.title = "Ablation A3: integrity verification cost at the "
                 "fill boundary";
    spec.subtitle = "added cycles per L2 fill before architectural "
                    "commit; speculative MACs and a warm Merkle node "
                    "cache hide nearly all of it";
    spec.benchmarks = {"small-ws", "large-ws"};
    spec.options = cli.options;

    const std::pair<const char *, secure::IntegrityMode> schemes[] = {
        {"none", secure::IntegrityMode::None},
        {"MAC blocking", secure::IntegrityMode::MacBlocking},
        {"MAC speculative", secure::IntegrityMode::MacSpeculative},
        {"Merkle cached", secure::IntegrityMode::MerkleCached},
    };
    for (const auto &[label, mode] : schemes) {
        const secure::IntegrityMode scheme = mode;
        spec.addCustom(label, [scheme](const std::string &ws,
                                       const exp::RunOptions &) {
            return addedLatency(scheme, ws);
        });
    }

    const exp::Report report = exp::Runner(cli.runner).run(spec);
    report.printVariantRows(std::cout);
    if (cli.write_json)
        report.writeJson(cli.json_path);
    return 0;
}
