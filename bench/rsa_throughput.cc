/**
 * @file
 * RSA throughput grid: key size x operation x engine, on the
 * declarative experiment API. The "fast" engine is the production
 * path (Karatsuba + windowed CIOS Montgomery modExp with the per-key
 * cached MontgomeryCtx); the "schoolbook" engine is the retained
 * pre-optimization reference (schoolbook multiply, bit-at-a-time
 * division, binary square-and-multiply). Cells report operations per
 * second; synthetic "speedup-<bits>" cells carry the fast/schoolbook
 * ratio per operation, which is what the CI perf gate tracks (the
 * ratio transfers across machines, absolute ops/s does not).
 *
 * Emits BENCH_rsa_throughput.json via the standard Report path.
 */

#include <chrono>
#include <iostream>
#include <map>

#include "crypto/rsa.hh"
#include "exp/cli.hh"
#include "util/logging.hh"

using namespace secproc;
using namespace secproc::crypto;

namespace
{

constexpr unsigned kKeyBits[] = {512, 1024, 2048};

/**
 * Time box per cell: every cell runs the full window (no iteration
 * cap) so fast and slow engines get equally stable rates — the CI
 * perf gate consumes the fast/schoolbook ratios.
 */
constexpr double kMinSeconds = 0.2;

/** Deterministic per-key-size fixture, built once before the grid. */
struct Fixture
{
    RsaKeyPair pair;
    std::vector<uint8_t> digest;
    std::vector<uint8_t> signature; ///< fast-path signature of digest
    std::vector<uint8_t> capsule;   ///< wrapped 16-byte payload
    BigInt sign_block;   ///< the padded block rsaSignDigest signs
    BigInt signature_int;
    BigInt capsule_int;

    explicit Fixture(unsigned bits)
    {
        util::Rng rng(0xC0FFEE + bits);
        pair = rsaGenerate(bits, rng);
        digest.assign(32, 0);
        for (size_t i = 0; i < digest.size(); ++i)
            digest[i] = static_cast<uint8_t>(rng.next64());
        signature = rsaSignDigest(pair.priv, digest);
        const std::vector<uint8_t> payload(16, 0x5A);
        capsule = rsaWrap(pair.pub, payload, rng);

        // The big-integer views the schoolbook engine exponentiates
        // (identical inputs to the fast path, minus byte shuffling).
        const size_t modulus_bytes = (pair.pub.n.bitLength() + 7) / 8;
        const std::vector<uint8_t> block =
            rsaType01Block(digest, modulus_bytes);
        sign_block = BigInt::fromBytes(block.data(), block.size());
        signature_int =
            BigInt::fromBytes(signature.data(), signature.size());
        capsule_int =
            BigInt::fromBytes(capsule.data(), capsule.size());

        // Prime the per-key Montgomery caches outside the timed
        // region (and outside the worker pool).
        pair.pub.montCtx();
        pair.priv.montCtx();
    }
};

/** Run @p op repeatedly and report rate + latency. */
exp::CellOutput
timeOp(const std::function<void()> &op)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point start = Clock::now();
    int iters = 0;
    double elapsed = 0.0;
    do {
        op();
        ++iters;
        elapsed = std::chrono::duration<double>(Clock::now() - start)
                      .count();
    } while (elapsed < kMinSeconds);

    exp::CellOutput out;
    out.measured = iters / elapsed;
    out.extras.emplace_back("ms_per_op", 1e3 * elapsed / iters);
    out.extras.emplace_back("iterations", iters);
    return out;
}

exp::CellOutput
runFast(const Fixture &fx, const std::string &op)
{
    if (op == "sign") {
        return timeOp([&fx] {
            const auto sig = rsaSignDigest(fx.pair.priv, fx.digest);
            fatal_if(sig != fx.signature, "fast sign diverged");
        });
    }
    if (op == "verify") {
        return timeOp([&fx] {
            fatal_if(!rsaVerifyDigest(fx.pair.pub, fx.digest,
                                      fx.signature),
                     "fast verify rejected a good signature");
        });
    }
    if (op == "unwrap") {
        return timeOp([&fx] {
            fatal_if(!rsaUnwrap(fx.pair.priv, fx.capsule).has_value(),
                     "fast unwrap rejected a good capsule");
        });
    }
    fatal("unknown rsa_throughput operation '", op, "'");
}

exp::CellOutput
runSchoolbook(const Fixture &fx, const std::string &op)
{
    const BigInt &n = fx.pair.pub.n;
    if (op == "sign") {
        return timeOp([&fx, &n] {
            const BigInt sig =
                fx.sign_block.modExpSchoolbook(fx.pair.priv.d, n);
            fatal_if(sig != fx.signature_int,
                     "schoolbook sign diverged");
        });
    }
    if (op == "verify") {
        return timeOp([&fx, &n] {
            const BigInt block = fx.signature_int.modExpSchoolbook(
                fx.pair.pub.e, n);
            fatal_if(block != fx.sign_block,
                     "schoolbook verify diverged");
        });
    }
    if (op == "unwrap") {
        return timeOp([&fx, &n] {
            const BigInt block = fx.capsule_int.modExpSchoolbook(
                fx.pair.priv.d, n);
            fatal_if(block.isZero(), "schoolbook unwrap diverged");
        });
    }
    fatal("unknown rsa_throughput operation '", op, "'");
}

} // namespace

int
main(int argc, char **argv)
{
    const exp::BenchCli cli = exp::parseBenchCli(argc, argv);

    // Keygen (now Montgomery-accelerated itself) happens up front so
    // the cells time only the operation under test.
    std::map<unsigned, Fixture> fixtures;
    for (unsigned bits : kKeyBits)
        fixtures.emplace(bits, Fixture(bits));

    exp::ExperimentSpec spec;
    spec.name = "rsa_throughput";
    spec.title = "RSA throughput: key size x operation x engine";
    spec.subtitle = "operations per second (higher is better)";
    spec.benchmarks = {"sign", "verify", "unwrap"};
    spec.options = cli.options;

    for (unsigned bits : kKeyBits) {
        const Fixture &fx = fixtures.at(bits);
        spec.addCustom("schoolbook-" + std::to_string(bits),
                       [&fx](const std::string &op,
                             const exp::RunOptions &) {
                           return runSchoolbook(fx, op);
                       });
        spec.addCustom("fast-" + std::to_string(bits),
                       [&fx](const std::string &op,
                             const exp::RunOptions &) {
                           return runFast(fx, op);
                       });
    }

    const exp::Runner runner(cli.runner);
    exp::Report report = runner.run(spec);
    report.printTable(std::cout);

    // Synthesize machine-portable speedup cells (fast over
    // schoolbook, per key size and operation) for the JSON and the
    // CI perf gate.
    std::vector<exp::CellResult> cells = report.cells();
    std::cout << "speedup, fast engine over schoolbook engine:\n";
    for (unsigned bits : kKeyBits) {
        for (const std::string &op : spec.benchmarks) {
            const exp::CellResult *fast = report.find(
                "fast-" + std::to_string(bits), op);
            const exp::CellResult *school = report.find(
                "schoolbook-" + std::to_string(bits), op);
            if (fast == nullptr || school == nullptr ||
                !fast->measured || !school->measured) {
                continue;
            }
            exp::CellResult ratio;
            ratio.variant = "speedup-" + std::to_string(bits);
            ratio.bench = op;
            ratio.measured = *fast->measured / *school->measured;
            std::cout << "  " << bits << "-bit " << op << ": "
                      << *ratio.measured << "x\n";
            cells.push_back(std::move(ratio));
        }
    }
    report.setCells(std::move(cells));

    if (cli.write_json)
        report.writeJson(cli.json_path);
    return 0;
}
