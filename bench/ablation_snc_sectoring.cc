/**
 * @file
 * Ablation A8: sectored SNC directory.
 *
 * The paper's SNC pairs every 2-byte sequence number with its own
 * ~40-bit virtual-address tag, which CactiLite shows would triple
 * the structure (DESIGN.md section 7 notes the area model assumes
 * sectored tags). This bench measures the performance side of that
 * trade: one tag per 1/4/16 consecutive lines. Sectoring acts as a
 * spatial prefetch on sequential working sets (one sector miss
 * brings the neighbours' sequence numbers) but wastes slots and
 * coarsens eviction on scattered ones.
 */

#include <iostream>

#include "exp/cli.hh"
#include "sim/profiles.hh"

using namespace secproc;

namespace
{

sim::SystemConfig
sectoredConfig(uint32_t sector_lines)
{
    sim::SystemConfig config =
        sim::paperConfig(secure::SecurityModel::OtpSnc);
    config.protection.snc.sector_lines = sector_lines;
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    const exp::BenchCli cli = exp::parseBenchCli(argc, argv);

    exp::ExperimentSpec spec;
    spec.name = "ablation_snc_sectoring";
    spec.title = "Ablation A8: sectored SNC (64KB, LRU)";
    spec.subtitle = "slowdown % vs baseline; sector=N shares one "
                    "directory tag across N consecutive lines: 32K "
                    "tags at N=1, 8K at N=4, 2K at N=16";
    spec.benchmarks = {"ammp", "art",    "equake", "gcc",
                       "mcf",  "parser", "vortex"};
    spec.options = cli.options;
    spec.addBaseline("baseline", [](const std::string &) {
        return sim::paperConfig(secure::SecurityModel::Baseline);
    });
    for (const uint32_t sector : {1u, 4u, 16u}) {
        spec.add("sector=" + std::to_string(sector),
                 [sector](const std::string &) {
                     return sectoredConfig(sector);
                 });
    }

    const exp::Report report = exp::Runner(cli.runner).run(spec);
    report.printTable(std::cout);
    if (cli.write_json)
        report.writeJson(cli.json_path);
    return 0;
}
