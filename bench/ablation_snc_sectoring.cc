/**
 * @file
 * Ablation A8: sectored SNC directory.
 *
 * The paper's SNC pairs every 2-byte sequence number with its own
 * ~40-bit virtual-address tag, which CactiLite shows would triple
 * the structure (DESIGN.md section 7 notes the area model assumes
 * sectored tags). This bench measures the performance side of that
 * trade: one tag per 1/4/16 consecutive lines. Sectoring acts as a
 * spatial prefetch on sequential working sets (one sector miss
 * brings the neighbours' sequence numbers) but wastes slots and
 * coarsens eviction on scattered ones.
 */

#include <iostream>

#include "bench/harness.hh"
#include "util/strutil.hh"
#include "util/table.hh"

using namespace secproc;

namespace
{

sim::SystemConfig
sectoredConfig(uint32_t sector_lines)
{
    sim::SystemConfig config =
        sim::paperConfig(secure::SecurityModel::OtpSnc);
    config.protection.snc.sector_lines = sector_lines;
    return config;
}

} // namespace

int
main()
{
    const auto options = bench::HarnessOptions::fromEnvironment();
    const std::vector<std::string> benches = {"ammp", "art",  "equake",
                                              "gcc",  "mcf",  "parser",
                                              "vortex"};
    const std::vector<uint32_t> sectors = {1, 4, 16};

    util::Table table({"bench", "sector=1 %", "sector=4 %",
                       "sector=16 %"});
    std::vector<double> avg(sectors.size(), 0.0);
    for (const std::string &name : benches) {
        const auto base = bench::runConfig(
            name, sim::paperConfig(secure::SecurityModel::Baseline),
            options);
        std::vector<std::string> row = {name};
        for (size_t i = 0; i < sectors.size(); ++i) {
            const auto run = bench::runConfig(
                name, sectoredConfig(sectors[i]), options);
            const double pct =
                bench::slowdownPct(base.cycles, run.cycles);
            avg[i] += pct;
            row.push_back(util::formatDouble(pct, 2));
        }
        table.addRow(row);
    }
    std::vector<std::string> avg_row = {"average"};
    for (size_t i = 0; i < sectors.size(); ++i) {
        avg_row.push_back(util::formatDouble(
            avg[i] / static_cast<double>(benches.size()), 2));
    }
    table.addRow(avg_row);

    std::cout << "== Ablation A8: sectored SNC (64KB, LRU) ==\n"
              << "(slowdown % vs baseline; sector=N shares one "
                 "directory tag across N consecutive lines: 32K tags "
                 "at N=1, 8K at N=4, 2K at N=16)\n";
    table.print(std::cout);
    return 0;
}
