/**
 * @file
 * Ablation A1: on an SNC query miss, the paper's Algorithm 1 fetches
 * the sequence number first and only then reads the line (serial);
 * a memory controller could issue both reads together (parallel).
 * This bench quantifies the difference on the SNC-miss-heavy
 * benchmarks.
 */

#include "bench/harness.hh"

using namespace secproc;

int
main()
{
    const auto options = bench::HarnessOptions::fromEnvironment();

    auto baseline = [](const std::string &) {
        return sim::paperConfig(secure::SecurityModel::Baseline);
    };

    std::vector<bench::FigureColumn> columns;
    columns.push_back(
        {"serial (Alg.1)",
         [](const std::string &) {
             auto config =
                 sim::paperConfig(secure::SecurityModel::OtpSnc);
             config.protection.parallel_seqnum_fetch = false;
             return config;
         },
         [](const std::string &bench) {
             return sim::paperNumbers(bench).snc_lru;
         }});
    columns.push_back(
        {"parallel",
         [](const std::string &) {
             auto config =
                 sim::paperConfig(secure::SecurityModel::OtpSnc);
             config.protection.parallel_seqnum_fetch = true;
             return config;
         },
         [](const std::string &bench) {
             return sim::paperNumbers(bench).snc_lru;
         }});

    bench::runSlowdownFigure(
        "Ablation A1: serial vs parallel seqnum/line fetch on SNC "
        "query misses (paper column = Fig. 5 SNC-LRU)",
        baseline, columns, options);
    return 0;
}
