/**
 * @file
 * Ablation A1: on an SNC query miss, the paper's Algorithm 1 fetches
 * the sequence number first and only then reads the line (serial);
 * a memory controller could issue both reads together (parallel).
 * This bench quantifies the difference on the SNC-miss-heavy
 * benchmarks.
 */

#include <iostream>

#include "exp/cli.hh"
#include "sim/profiles.hh"

using namespace secproc;

namespace
{

sim::SystemConfig
fetchConfig(bool parallel)
{
    auto config = sim::paperConfig(secure::SecurityModel::OtpSnc);
    config.protection.parallel_seqnum_fetch = parallel;
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    const exp::BenchCli cli = exp::parseBenchCli(argc, argv);

    exp::ExperimentSpec spec;
    spec.name = "ablation_seqnum_fetch";
    spec.title = "Ablation A1: serial vs parallel seqnum/line fetch "
                 "on SNC query misses (paper column = Fig. 5 SNC-LRU)";
    spec.subtitle = "program slowdown in % over the insecure baseline";
    spec.options = cli.options;
    spec.addBaseline("baseline", [](const std::string &) {
        return sim::paperConfig(secure::SecurityModel::Baseline);
    });
    spec.add(
        "serial (Alg.1)",
        [](const std::string &) { return fetchConfig(false); },
        [](const std::string &bench) {
            return sim::paperNumbers(bench).snc_lru;
        });
    spec.add(
        "parallel",
        [](const std::string &) { return fetchConfig(true); },
        [](const std::string &bench) {
            return sim::paperNumbers(bench).snc_lru;
        });

    const exp::Report report = exp::Runner(cli.runner).run(spec);
    report.printTable(std::cout);
    if (cli.write_json)
        report.writeJson(cli.json_path);
    return 0;
}
