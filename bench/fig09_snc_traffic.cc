/**
 * @file
 * Figure 9: additional memory traffic induced by SNC LRU
 * replacements (sequence-number fetches and victim spills), as a
 * percentage of the L2-memory data traffic.
 *
 * Paper average: 0.31% (maximum: gzip at 1.03%).
 */

#include <iostream>

#include "bench/harness.hh"
#include "util/strutil.hh"
#include "util/table.hh"

using namespace secproc;

int
main()
{
    const auto options = bench::HarnessOptions::fromEnvironment();

    util::Table table(
        {"bench", "paper %", "measured %", "seqnum bytes", "L2 bytes"});
    double paper_sum = 0.0, measured_sum = 0.0;

    for (const std::string &name : sim::benchmarkNames()) {
        const auto config =
            sim::paperConfig(secure::SecurityModel::OtpSnc);
        const sim::RunStats stats =
            bench::runConfig(name, config, options);
        const double measured =
            stats.data_bytes == 0
                ? 0.0
                : 100.0 * static_cast<double>(stats.seqnum_bytes) /
                      static_cast<double>(stats.data_bytes);
        const double paper = sim::paperNumbers(name).traffic_pct;
        paper_sum += paper;
        measured_sum += measured;
        table.addRow({name, util::formatDouble(paper, 2),
                      util::formatDouble(measured, 2),
                      std::to_string(stats.seqnum_bytes),
                      std::to_string(stats.data_bytes)});
    }
    const double n = static_cast<double>(sim::benchmarkNames().size());
    table.addRow({"average", util::formatDouble(paper_sum / n, 2),
                  util::formatDouble(measured_sum / n, 2), "", ""});

    std::cout << "== Figure 9: SNC-induced additional memory traffic "
                 "(64KB LRU SNC) ==\n";
    table.print(std::cout);
    return 0;
}
