/**
 * @file
 * Figure 9: additional memory traffic induced by SNC LRU
 * replacements (sequence-number fetches and victim spills), as a
 * percentage of the L2-memory data traffic.
 *
 * Paper average: 0.31% (maximum: gzip at 1.03%). Raw byte counts
 * per cell land in the JSON report's stats records.
 */

#include <iostream>

#include "exp/cli.hh"
#include "sim/profiles.hh"

using namespace secproc;

int
main(int argc, char **argv)
{
    const exp::BenchCli cli = exp::parseBenchCli(argc, argv);

    exp::ExperimentSpec spec;
    spec.name = "fig09_snc_traffic";
    spec.title = "Figure 9: SNC-induced additional memory traffic "
                 "(64KB LRU SNC)";
    spec.subtitle = "seqnum bytes as % of L2-memory data traffic";
    spec.options = cli.options;
    exp::ConfigVariant &traffic = spec.add(
        "SNC-LRU",
        [](const std::string &) {
            return sim::paperConfig(secure::SecurityModel::OtpSnc);
        },
        [](const std::string &bench) {
            return sim::paperNumbers(bench).traffic_pct;
        });
    traffic.metric = [](const sim::RunStats &stats) {
        if (stats.data_bytes == 0)
            return 0.0;
        return 100.0 * static_cast<double>(stats.seqnum_bytes) /
               static_cast<double>(stats.data_bytes);
    };

    const exp::Report report = exp::Runner(cli.runner).run(spec);
    report.printTable(std::cout);
    if (cli.write_json)
        report.writeJson(cli.json_path);
    return 0;
}
