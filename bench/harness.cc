/**
 * @file
 * Experiment harness implementation.
 */

#include "bench/harness.hh"

#include <cstdlib>
#include <iostream>

#include "util/strutil.hh"
#include "util/table.hh"

namespace secproc::bench
{

HarnessOptions
HarnessOptions::fromEnvironment()
{
    HarnessOptions options;
    if (const char *value = std::getenv("SECPROC_WARMUP"))
        options.warmup_instructions = std::strtoull(value, nullptr, 10);
    if (const char *value = std::getenv("SECPROC_MEASURE"))
        options.measure_instructions =
            std::strtoull(value, nullptr, 10);
    return options;
}

sim::RunStats
runConfig(const std::string &bench, const sim::SystemConfig &config,
          const HarnessOptions &options)
{
    sim::SyntheticWorkload workload(sim::benchmarkProfile(bench),
                                    config.l2.line_size);
    sim::System system(config, workload);
    system.run(options.warmup_instructions);
    system.beginMeasurement();
    system.run(options.measure_instructions);
    return system.stats();
}

double
slowdownPct(uint64_t base_cycles, uint64_t model_cycles)
{
    if (base_cycles == 0)
        return 0.0;
    return (static_cast<double>(model_cycles) /
                static_cast<double>(base_cycles) -
            1.0) *
           100.0;
}

std::vector<double>
runSlowdownFigure(
    const std::string &figure_title,
    const std::function<sim::SystemConfig(const std::string &)> &
        make_baseline,
    const std::vector<FigureColumn> &columns,
    const HarnessOptions &options)
{
    std::vector<std::string> headers = {"bench"};
    for (const FigureColumn &column : columns) {
        headers.push_back(column.label + " paper");
        headers.push_back(column.label + " measured");
    }
    util::Table table(headers);

    std::vector<double> paper_sums(columns.size(), 0.0);
    std::vector<double> measured_sums(columns.size(), 0.0);

    for (const std::string &bench : sim::benchmarkNames()) {
        const sim::RunStats base =
            runConfig(bench, make_baseline(bench), options);

        std::vector<std::string> row = {bench};
        for (size_t c = 0; c < columns.size(); ++c) {
            const sim::RunStats model =
                runConfig(bench, columns[c].config(bench), options);
            const double measured =
                slowdownPct(base.cycles, model.cycles);
            const double paper = columns[c].paper(bench);
            paper_sums[c] += paper;
            measured_sums[c] += measured;
            row.push_back(util::formatDouble(paper, 2));
            row.push_back(util::formatDouble(measured, 2));
        }
        table.addRow(row);
    }

    const double n = static_cast<double>(sim::benchmarkNames().size());
    std::vector<std::string> avg_row = {"average"};
    std::vector<double> measured_avgs;
    for (size_t c = 0; c < columns.size(); ++c) {
        avg_row.push_back(util::formatDouble(paper_sums[c] / n, 2));
        avg_row.push_back(util::formatDouble(measured_sums[c] / n, 2));
        measured_avgs.push_back(measured_sums[c] / n);
    }
    table.addRow(avg_row);

    std::cout << "== " << figure_title << " ==\n";
    std::cout << "(program slowdown in % over the insecure baseline; "
              << options.measure_instructions
              << " instructions measured after "
              << options.warmup_instructions << " warm-up)\n";
    table.print(std::cout);
    std::cout << std::endl;
    return measured_avgs;
}

} // namespace secproc::bench
