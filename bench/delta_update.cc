/**
 * @file
 * Delta vs full-bundle OTA cost, on the unified install plane.
 *
 * Every cell ships ONE release to a machine already running its
 * predecessor: the base image is installed functionally, then the
 * successor streams in over the OTA downlink and installs as a
 * background agent while the foreground workload runs — once as a
 * signed delta bundle (reconstructed slot-to-slot against the base),
 * once as the full bundle. The measured value is the foreground
 * slowdown of the *delta* install over the measurement window;
 * `full_slowdown` is the same window shipping the full bundle, and
 * `delta_below_full` must be 1 wherever the change fraction is small
 * — the DFU-grade claim that a point release is cheaper to take as a
 * delta. `identical` rides along as the functional verdict: both
 * machines' final slot bytes must match a pure functional
 * full-bundle install byte for byte.
 *
 * Grid: image size x change fraction x downlink class x crypto
 * engine latency, gcc foreground.
 */

#include <algorithm>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "crypto/latency.hh"
#include "exp/cell_cache.hh"
#include "exp/cli.hh"
#include "sim/profiles.hh"
#include "update/delta.hh"
#include "update/image_builder.hh"
#include "update/live_install.hh"
#include "update/update_engine.hh"

using namespace secproc;

namespace
{

constexpr uint32_t kLine = 128;
constexpr uint64_t kStagingBase = 0x4000'0000;
constexpr uint64_t kSlotSize = 8ull << 20;
constexpr uint64_t kImageBase = 0x0800'0000;

struct GridPoint
{
    const char *label;
    uint64_t image_bytes;
    double change_fraction;
    uint32_t crypto_latency;
    bool slow_link;
};

constexpr GridPoint kGrid[] = {
    {"256KB-d2-fast-c50", 256ull << 10, 0.02,
     crypto::kPaperCryptoLatency, false},
    {"256KB-d10-fast-c50", 256ull << 10, 0.10,
     crypto::kPaperCryptoLatency, false},
    {"256KB-d50-fast-c50", 256ull << 10, 0.50,
     crypto::kPaperCryptoLatency, false},
    {"256KB-d10-slow-c50", 256ull << 10, 0.10,
     crypto::kPaperCryptoLatency, true},
    {"256KB-d10-fast-c102", 256ull << 10, 0.10,
     crypto::kStrongCipherLatency, false},
    {"256KB-d10-slow-c102", 256ull << 10, 0.10,
     crypto::kStrongCipherLatency, true},
    {"64KB-d10-fast-c50", 64ull << 10, 0.10,
     crypto::kPaperCryptoLatency, false},
};

sim::SystemConfig
machineConfig(uint32_t crypto_latency)
{
    sim::SystemConfig config =
        sim::paperConfig(secure::SecurityModel::OtpSnc);
    config.protection.crypto.latency = crypto_latency;
    return config;
}

ota::TransportConfig
downlink(bool slow)
{
    ota::TransportConfig transport;
    transport.chunk_bytes = 1024;
    transport.cycles_per_chunk = slow ? 512 : 64;
    if (slow) {
        transport.loss_rate = 0.05;
        transport.burst_length = 2.0;
        transport.retransmit_delay = 8192;
        transport.seed = 0x0D17A;
    }
    return transport;
}

/** Payload generation @p generation: gen 1 fresh random, each later
 *  one rewrites change_fraction of its predecessor's 64B blocks. */
xom::PlainProgram
makeProgram(uint64_t seed, uint64_t image_bytes, uint32_t generation,
            double change_fraction)
{
    constexpr uint64_t kBlock = 64;
    xom::PlainProgram program;
    program.title = "fw";
    program.entry_point = kImageBase;
    xom::PlainProgram::PlainSection text;
    text.name = ".text";
    text.vaddr = kImageBase;
    text.bytes.resize(image_bytes);
    util::Rng fill(seed ^ 0xF111);
    for (auto &byte : text.bytes)
        byte = static_cast<uint8_t>(fill.nextRange(256));
    const uint64_t blocks = (image_bytes + kBlock - 1) / kBlock;
    const auto changed = static_cast<uint64_t>(
        static_cast<double>(blocks) * change_fraction);
    for (uint32_t gen = 2; gen <= generation; ++gen) {
        util::Rng mutate(seed ^ (0xD1FFull + gen));
        for (uint64_t c = 0; c < changed; ++c) {
            const uint64_t block = mutate.nextRange(blocks);
            for (uint64_t i = block * kBlock;
                 i < std::min(block * kBlock + kBlock, image_bytes);
                 ++i)
                text.bytes[i] =
                    static_cast<uint8_t>(mutate.nextRange(256));
        }
    }
    program.sections = {text};
    return program;
}

/**
 * Shared vendor identity per (image size, change fraction): the base
 * and successor releases plus the delta between them are built once
 * and reused by every engine/link variant. Both builds draw the same
 * RNG seed — same symmetric key, so unchanged plaintext lines keep
 * their ciphertext and the delta actually collapses.
 */
struct VendorContext
{
    util::Rng rng;
    update::ImageBuilder vendor;
    crypto::RsaKeyPair processor;
    update::UpdateBundle base;
    update::UpdateBundle next;
    update::DeltaBundle delta;

    VendorContext(uint64_t image_bytes, double change_fraction)
        : rng(0xDE17A'0001 ^ image_bytes ^
              static_cast<uint64_t>(change_fraction * 1000.0)),
          vendor(crypto::rsaGenerate(512, rng)),
          processor(crypto::rsaGenerate(512, rng))
    {
        const uint64_t key_seed = rng.next64();
        update::UpdateSpec spec;
        spec.image_version = 1;
        spec.rollback_counter = 1;
        spec.cipher = secure::CipherKind::Des;
        spec.line_size = kLine;

        util::Rng rng_base(key_seed);
        base = vendor.build(
            makeProgram(key_seed, image_bytes, 1, change_fraction),
            spec, processor.pub, rng_base);

        spec.image_version = 2;
        spec.rollback_counter = 2;
        spec.base_digest = update::sha256DigestOfImage(base.image);
        util::Rng rng_next(key_seed);
        next = vendor.build(
            makeProgram(key_seed, image_bytes, 2, change_fraction),
            spec, processor.pub, rng_next);

        delta = vendor.buildDelta(base, next);
    }
};

VendorContext &
vendorContext(uint64_t image_bytes, double change_fraction)
{
    static std::mutex registry_mutex;
    static std::map<std::pair<uint64_t, uint64_t>,
                    std::unique_ptr<VendorContext>>
        registry;
    const auto key = std::make_pair(
        image_bytes, static_cast<uint64_t>(change_fraction * 1000.0));
    std::lock_guard<std::mutex> lock(registry_mutex);
    auto &slot = registry[key];
    if (slot == nullptr)
        slot = std::make_unique<VendorContext>(image_bytes,
                                               change_fraction);
    return *slot;
}

/** One shipped release on one machine. */
struct ShipResult
{
    uint64_t cycles = 0;       ///< foreground cycles of the window
    uint64_t instructions = 0; ///< foreground instructions it spanned
    bool done = false;         ///< install landed within the window
    bool identical = false;    ///< slot bytes match the reference
};

/**
 * Install the base functionally, then ship the successor through the
 * unified plane (as a delta when @p via_delta) over the measurement
 * window. @p reference_slot is the framed slot a pure functional
 * full-bundle install of the successor produced. @p window is the
 * measured instruction count; 0 probes instead — run until the
 * install lands and report the instructions that took, so the caller
 * can pick one window long enough for every shipping mode.
 */
ShipResult
shipRelease(const std::string &bench, const GridPoint &point,
            const exp::RunOptions &options, VendorContext &ctx,
            const std::vector<uint8_t> &reference_slot, bool via_delta,
            uint64_t window)
{
    const sim::SystemConfig config =
        machineConfig(point.crypto_latency);
    secure::KeyTable update_keys;
    update::RollbackStore rollback(64);
    update::UpdateEngine updater(
        ctx.vendor.publicKey(), ctx.processor, update_keys, rollback,
        update::StagingConfig{kStagingBase, kSlotSize});

    sim::SyntheticWorkload workload(sim::benchmarkProfile(bench),
                                    config.l2.line_size);
    sim::System system(config, workload);

    update::LiveInstallConfig live_config;
    live_config.line_bytes = config.l2.line_size;
    live_config.pacing = update::InstallPacing::Arbiter;
    live_config.transport = downlink(point.slow_link);
    update::LiveInstall live(live_config, system, updater, 1);
    system.attachAgent(&live);

    ShipResult result;
    if (!updater
             .install(ctx.base, 1, system.mainMemory(),
                      system.virtualMemory(), 1, system.engine())
             .ok())
        return result;

    system.run(options.warmup_instructions);
    system.beginMeasurement();
    if (via_delta)
        live.startDelta(ctx.delta, system.core().cycles());
    else
        live.start(ctx.next, system.core().cycles());
    if (window == 0) {
        // Probe: step until the install lands, whatever it takes.
        constexpr uint64_t kStep = 10'000;
        uint64_t ran = 0;
        while (live.phase() != update::LiveInstallPhase::Done &&
               ran < (1ull << 28)) {
            system.run(kStep);
            ran += kStep;
        }
        result.instructions = ran;
        // Exact start-to-done span (the run-step granularity above
        // is too coarse): the phases are contiguous, so their cycle
        // accounts sum to the wall time the install occupied.
        uint64_t span = 0;
        for (const auto phase :
             {update::LiveInstallPhase::Admission,
              update::LiveInstallPhase::Stage,
              update::LiveInstallPhase::Reverify,
              update::LiveInstallPhase::Load,
              update::LiveInstallPhase::Attest})
            span += live.phaseCycles(phase);
        result.cycles = span;
        result.done =
            live.phase() == update::LiveInstallPhase::Done;
        return result;
    } else {
        // The shared window covers the whole install plus an
        // install-free tail in every shipping mode, so the modes are
        // compared over identical instruction counts.
        system.run(window);
        result.instructions = window;
    }
    result.cycles = system.stats().cycles;
    result.done = live.phase() == update::LiveInstallPhase::Done;
    if (!result.done)
        return result;

    std::vector<uint8_t> got(reference_slot.size());
    system.mainMemory().read(updater.slotBase(updater.activeSlot()),
                             got.data(), got.size());
    result.identical = got == reference_slot;
    system.channel().assertFullyAttributed();
    return result;
}

exp::RunFn
makeCell(const GridPoint &point)
{
    return [point](const std::string &bench,
                   const exp::RunOptions &options) {
        const sim::SystemConfig config =
            machineConfig(point.crypto_latency);

        VendorContext &ctx =
            vendorContext(point.image_bytes, point.change_fraction);

        // Pure functional full-bundle install: the byte-identity
        // reference both shipping modes must reproduce.
        std::vector<uint8_t> reference_slot;
        {
            secure::KeyTable keys;
            mem::MemoryChannel channel(config.channel);
            secure::ProtectionConfig protection = config.protection;
            protection.line_size = config.l2.line_size;
            auto engine =
                secure::makeProtectionEngine(protection, channel, keys);
            update::RollbackStore rollback(64);
            update::UpdateEngine reference(
                ctx.vendor.publicKey(), ctx.processor, keys, rollback,
                update::StagingConfig{kStagingBase, kSlotSize});
            mem::MainMemory memory;
            mem::VirtualMemory vm;
            if (!reference
                     .install(ctx.base, 1, memory, vm, 1, *engine)
                     .ok() ||
                !reference
                     .install(ctx.next, 1, memory, vm, 1, *engine)
                     .ok())
                return exp::CellOutput{};
            reference_slot.resize(update::kSlotHeaderBytes +
                                  ctx.next.serializedSize());
            memory.read(
                reference.slotBase(reference.activeSlot()),
                reference_slot.data(), reference_slot.size());
        }

        // Pass 1 — probe each mode to completion, then size ONE
        // window long enough for the slower of the two. A fixed
        // smoke-length window would leave the full install still
        // downloading on slow links, turning the comparison into
        // finished-delta vs half-shipped-full noise.
        const ShipResult probe_delta = shipRelease(
            bench, point, options, ctx, reference_slot, true, 0);
        const ShipResult probe_full = shipRelease(
            bench, point, options, ctx, reference_slot, false, 0);
        const uint64_t window =
            std::max({options.measure_instructions,
                      probe_delta.instructions,
                      probe_full.instructions});

        exp::RunOptions windowed = options;
        windowed.measure_instructions = window;
        const sim::RunStats alone =
            exp::cachedRunCell(bench, config, windowed);

        // Pass 2 — the measured runs, both over the same window.
        const ShipResult delta = shipRelease(
            bench, point, options, ctx, reference_slot, true, window);
        const ShipResult full = shipRelease(
            bench, point, options, ctx, reference_slot, false, window);

        const double delta_slowdown =
            exp::slowdownPct(alone.cycles, delta.cycles);
        const double full_slowdown =
            exp::slowdownPct(alone.cycles, full.cycles);
        const double delta_kb =
            static_cast<double>(update::kSlotHeaderBytes +
                                ctx.delta.serializedSize()) /
            1024.0;
        const double full_kb =
            static_cast<double>(update::kSlotHeaderBytes +
                                ctx.next.serializedSize()) /
            1024.0;

        exp::CellOutput cell;
        cell.measured = delta_slowdown;
        cell.extras.emplace_back("full_slowdown", full_slowdown);
        cell.extras.emplace_back(
            "delta_below_full",
            delta_slowdown < full_slowdown ? 1.0 : 0.0);
        cell.extras.emplace_back("delta_kb", delta_kb);
        cell.extras.emplace_back("full_kb", full_kb);
        cell.extras.emplace_back(
            "bytes_saved_pct",
            100.0 * (1.0 - delta_kb / full_kb));
        cell.extras.emplace_back(
            "installs_done",
            (delta.done ? 1.0 : 0.0) + (full.done ? 1.0 : 0.0));
        cell.extras.emplace_back(
            "identical",
            delta.identical && full.identical ? 1.0 : 0.0);
        // Time-to-completion, from the probe pass: on a trickle
        // link the full bundle hides behind network wait (so its
        // *interference* can dip below the delta's base-readback
        // bandwidth), but the delta still lands much sooner.
        cell.extras.emplace_back(
            "delta_done_cycles",
            static_cast<double>(probe_delta.cycles));
        cell.extras.emplace_back(
            "full_done_cycles",
            static_cast<double>(probe_full.cycles));
        cell.extras.emplace_back(
            "delta_finishes_first",
            probe_delta.cycles < probe_full.cycles ? 1.0 : 0.0);
        return cell;
    };
}

} // namespace

int
main(int argc, char **argv)
{
    const exp::BenchCli cli = exp::parseBenchCli(argc, argv);

    exp::ExperimentSpec spec;
    spec.name = "delta_update";
    spec.title = "Delta vs full-bundle OTA "
                 "(signed deltas, slot-to-slot reconstruction)";
    spec.subtitle = "foreground slowdown in % shipping one release "
                    "as a delta (full_slowdown = same release, full "
                    "bundle)";
    spec.benchmarks = {"gcc"};
    spec.options = cli.options;
    for (const GridPoint &point : kGrid)
        spec.addCustom(point.label, makeCell(point));

    const exp::Report report = exp::Runner(cli.runner).run(spec);
    report.printTable(std::cout);
    if (cli.write_json)
        report.writeJson(cli.json_path);
    return 0;
}
