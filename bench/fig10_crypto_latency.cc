/**
 * @file
 * Figure 10: sensitivity to crypto-engine latency. With a 102-cycle
 * unit (the paper's stronger-cipher estimate) XOM roughly doubles
 * its slowdown while the OTP fast path merely moves from
 * max(100,50)+1 to max(100,102)+1.
 *
 * Paper averages at 102 cycles: XOM 34.20%, SNC-NoRepl 9.21%,
 * SNC-LRU 1.26%.
 */

#include <iostream>

#include "crypto/latency.hh"
#include "exp/cli.hh"
#include "sim/profiles.hh"

using namespace secproc;

namespace
{

constexpr uint32_t kSlowCrypto = crypto::kStrongCipherLatency;

sim::SystemConfig
withCrypto(sim::SystemConfig config)
{
    config.protection.crypto.latency = kSlowCrypto;
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    const exp::BenchCli cli = exp::parseBenchCli(argc, argv);

    exp::ExperimentSpec spec;
    spec.name = "fig10_crypto_latency";
    spec.title = "Figure 10: 102-cycle encryption/decryption unit";
    spec.subtitle = "program slowdown in % over the insecure baseline";
    spec.options = cli.options;
    spec.addBaseline("baseline", [](const std::string &) {
        return sim::paperConfig(secure::SecurityModel::Baseline);
    });
    spec.add(
        "XOM",
        [](const std::string &) {
            return withCrypto(
                sim::paperConfig(secure::SecurityModel::Xom));
        },
        [](const std::string &bench) {
            return sim::paperNumbers(bench).xom_102;
        });
    spec.add(
        "SNC-NoRepl",
        [](const std::string &) {
            auto config = withCrypto(
                sim::paperConfig(secure::SecurityModel::OtpSnc));
            config.protection.snc.allow_replacement = false;
            return config;
        },
        [](const std::string &bench) {
            return sim::paperNumbers(bench).norepl_102;
        });
    spec.add(
        "SNC-LRU",
        [](const std::string &) {
            return withCrypto(
                sim::paperConfig(secure::SecurityModel::OtpSnc));
        },
        [](const std::string &bench) {
            return sim::paperNumbers(bench).lru_102;
        });

    const exp::Report report = exp::Runner(cli.runner).run(spec);
    report.printTable(std::cout);
    if (cli.write_json)
        report.writeJson(cli.json_path);
    return 0;
}
