/**
 * @file
 * Figure 10: sensitivity to crypto-engine latency. With a 102-cycle
 * unit (the paper's stronger-cipher estimate) XOM roughly doubles
 * its slowdown while the OTP fast path merely moves from
 * max(100,50)+1 to max(100,102)+1.
 *
 * Paper averages at 102 cycles: XOM 34.20%, SNC-NoRepl 9.21%,
 * SNC-LRU 1.26%.
 */

#include "bench/harness.hh"

using namespace secproc;

namespace
{

constexpr uint32_t kSlowCrypto = 102;

sim::SystemConfig
withCrypto(sim::SystemConfig config)
{
    config.protection.crypto.latency = kSlowCrypto;
    return config;
}

} // namespace

int
main()
{
    const auto options = bench::HarnessOptions::fromEnvironment();

    auto baseline = [](const std::string &) {
        return sim::paperConfig(secure::SecurityModel::Baseline);
    };

    std::vector<bench::FigureColumn> columns;
    columns.push_back(
        {"XOM",
         [](const std::string &) {
             return withCrypto(
                 sim::paperConfig(secure::SecurityModel::Xom));
         },
         [](const std::string &bench) {
             return sim::paperNumbers(bench).xom_102;
         }});
    columns.push_back(
        {"SNC-NoRepl",
         [](const std::string &) {
             auto config = withCrypto(
                 sim::paperConfig(secure::SecurityModel::OtpSnc));
             config.protection.snc.allow_replacement = false;
             return config;
         },
         [](const std::string &bench) {
             return sim::paperNumbers(bench).norepl_102;
         }});
    columns.push_back(
        {"SNC-LRU",
         [](const std::string &) {
             return withCrypto(
                 sim::paperConfig(secure::SecurityModel::OtpSnc));
         },
         [](const std::string &bench) {
             return sim::paperNumbers(bench).lru_102;
         }});

    bench::runSlowdownFigure(
        "Figure 10: 102-cycle encryption/decryption unit", baseline,
        columns, options);
    return 0;
}
