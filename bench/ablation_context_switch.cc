/**
 * @file
 * Ablation A2: context-switch handling for the SNC (paper Section
 * 4.3 leaves this open). Compares flushing the SNC to the encrypted
 * in-memory table on every switch against an untouched SNC (the
 * tagging design, where entries are compartment-tagged and survive),
 * across context-switch frequencies.
 */

#include <iostream>

#include "bench/harness.hh"
#include "secure/engines.hh"
#include "util/strutil.hh"
#include "util/table.hh"

using namespace secproc;

namespace
{

/** Run one benchmark, flushing the SNC every @p interval ops. */
uint64_t
runWithFlushes(const std::string &bench, uint64_t interval,
               const bench::HarnessOptions &options)
{
    const auto config = sim::paperConfig(secure::SecurityModel::OtpSnc);
    sim::SyntheticWorkload workload(sim::benchmarkProfile(bench),
                                    config.l2.line_size);
    sim::System system(config, workload);
    system.run(options.warmup_instructions);
    system.beginMeasurement();
    uint64_t remaining = options.measure_instructions;
    while (remaining > 0) {
        const uint64_t chunk = std::min(remaining, interval);
        system.run(chunk);
        remaining -= chunk;
        if (remaining > 0) {
            auto *otp = dynamic_cast<secure::OtpEngine *>(
                &system.engine());
            otp->flushSnc(system.core().cycles());
        }
    }
    return system.stats().cycles;
}

} // namespace

int
main()
{
    auto options = bench::HarnessOptions::fromEnvironment();

    // Focus on the SNC-sensitive benchmarks to keep runtime modest.
    const std::vector<std::string> benches = {"ammp", "gcc", "mcf",
                                              "parser"};

    util::Table table({"bench", "tagged (no flush)", "flush @1M ops",
                       "flush @250K ops", "flush @50K ops"});
    for (const std::string &name : benches) {
        const auto base = bench::runConfig(
            name, sim::paperConfig(secure::SecurityModel::Baseline),
            options);
        std::vector<std::string> row = {name};
        const uint64_t intervals[] = {~0ull, 1'000'000, 250'000,
                                      50'000};
        for (const uint64_t interval : intervals) {
            const uint64_t cycles =
                runWithFlushes(name, interval, options);
            row.push_back(util::formatDouble(
                bench::slowdownPct(base.cycles, cycles), 2));
        }
        table.addRow(row);
    }

    std::cout << "== Ablation A2: SNC context-switch policies ==\n"
              << "(slowdown % vs baseline; 'tagged' models "
                 "compartment-ID tags that let entries survive "
                 "switches, 'flush' spills and refetches the SNC)\n";
    table.print(std::cout);
    return 0;
}
