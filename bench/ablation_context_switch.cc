/**
 * @file
 * Ablation A2: context-switch handling for the SNC (paper Section
 * 4.3 leaves this open). Compares flushing the SNC to the encrypted
 * in-memory table on every switch against an untouched SNC (the
 * tagging design, where entries are compartment-tagged and survive),
 * across context-switch frequencies.
 */

#include <algorithm>
#include <iostream>

#include "exp/cli.hh"
#include "secure/engines.hh"
#include "sim/profiles.hh"

using namespace secproc;

namespace
{

/** Run one benchmark, flushing the SNC every @p interval ops. */
exp::CellOutput
runWithFlushes(const std::string &bench, uint64_t interval,
               const exp::RunOptions &options)
{
    const auto config = sim::paperConfig(secure::SecurityModel::OtpSnc);
    sim::SyntheticWorkload workload(sim::benchmarkProfile(bench),
                                    config.l2.line_size);
    sim::System system(config, workload);
    system.run(options.warmup_instructions);
    system.beginMeasurement();
    uint64_t remaining = options.measure_instructions;
    while (remaining > 0) {
        const uint64_t chunk = std::min(remaining, interval);
        system.run(chunk);
        remaining -= chunk;
        if (remaining > 0) {
            auto *otp =
                dynamic_cast<secure::OtpEngine *>(&system.engine());
            otp->flushSnc(system.core().cycles());
        }
    }
    exp::CellOutput output;
    output.stats = system.stats();
    return output;
}

} // namespace

int
main(int argc, char **argv)
{
    const exp::BenchCli cli = exp::parseBenchCli(argc, argv);

    exp::ExperimentSpec spec;
    spec.name = "ablation_context_switch";
    spec.title = "Ablation A2: SNC context-switch policies";
    spec.subtitle = "slowdown % vs baseline; 'tagged' models "
                    "compartment-ID tags that let entries survive "
                    "switches, 'flush' spills and refetches the SNC";
    // Focus on the SNC-sensitive benchmarks to keep runtime modest.
    spec.benchmarks = {"ammp", "gcc", "mcf", "parser"};
    spec.options = cli.options;
    spec.addBaseline("baseline", [](const std::string &) {
        return sim::paperConfig(secure::SecurityModel::Baseline);
    });

    const std::vector<std::pair<std::string, uint64_t>> policies = {
        {"tagged (no flush)", ~0ull},
        {"flush @1M ops", 1'000'000},
        {"flush @250K ops", 250'000},
        {"flush @50K ops", 50'000},
    };
    for (const auto &[label, interval] : policies) {
        const uint64_t flush_interval = interval;
        spec.addCustom(label,
                       [flush_interval](const std::string &bench,
                                        const exp::RunOptions &options) {
                           return runWithFlushes(bench, flush_interval,
                                                 options);
                       });
    }

    const exp::Report report = exp::Runner(cli.runner).run(spec);
    report.printVariantRows(std::cout);
    if (cli.write_json)
        report.writeJson(cli.json_path);
    return 0;
}
