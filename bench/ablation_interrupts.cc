/**
 * @file
 * Ablation A7: register-save protection cost on the interrupt path.
 *
 * XOM encrypts the register file before the OS runs an interrupt
 * handler (paper Section 1; the mutating-seed detail is Section
 * 3.4). With the crypto engine on that path (Direct), every
 * interrupt pays the full engine latency twice (save + restore).
 * Pre-generating the next save's pad in the background (OtpPremade,
 * the paper's one-time-pad idea applied to the interrupt path)
 * reduces each to one XOR unless interrupts arrive faster than the
 * engine can pre-generate.
 *
 * Grid rows are interrupt gaps in cycles; each cell reports the
 * guard's added cycles as a percentage of a gcc-length run, with the
 * raw added-cycle and event counts in the JSON extras.
 */

#include <iostream>

#include "crypto/des.hh"
#include "crypto/latency.hh"
#include "exp/cli.hh"
#include "secure/interrupt_guard.hh"
#include "sim/profiles.hh"
#include "util/strutil.hh"

using namespace secproc;

namespace
{

/** Added cycles for @p events interrupts spaced @p gap cycles. */
uint64_t
guardOverhead(secure::RegisterSaveMode mode, uint64_t events,
              uint64_t gap, uint32_t crypto_latency)
{
    crypto::Des cipher(uint64_t{0x1122334455667788ull});
    secure::InterruptGuardConfig config;
    config.mode = mode;
    config.crypto.latency = crypto_latency;
    secure::InterruptGuard guard(config, cipher);

    uint64_t added = 0;
    uint64_t cycle = 0;
    for (uint64_t i = 0; i < events; ++i) {
        const uint64_t os_start = guard.scheduleSave(cycle);
        added += os_start - cycle;
        // The handler runs for a tenth of the gap, then resumes.
        const uint64_t handler_done = os_start + gap / 10;
        const uint64_t resumed = guard.scheduleRestore(handler_done);
        added += resumed - handler_done;
        cycle = resumed + gap;
    }
    return added;
}

/** One (mode, gap) cell against a gcc-length run of @p run_cycles. */
exp::CellOutput
guardCell(secure::RegisterSaveMode mode, uint64_t gap,
          uint64_t run_cycles)
{
    const uint64_t events = run_cycles / gap;
    const uint64_t added = guardOverhead(
        mode, events, gap, crypto::kPaperCryptoLatency);

    exp::CellOutput output;
    output.measured = run_cycles == 0
                          ? 0.0
                          : 100.0 * static_cast<double>(added) /
                                static_cast<double>(run_cycles);
    output.extras.emplace_back("events",
                               static_cast<double>(events));
    output.extras.emplace_back("added_cycles",
                               static_cast<double>(added));
    return output;
}

} // namespace

int
main(int argc, char **argv)
{
    const exp::BenchCli cli = exp::parseBenchCli(argc, argv);

    // Context: cycles one benchmark takes, to express the interrupt
    // overhead as a fraction of real execution.
    const sim::RunStats base = exp::runCell(
        "gcc", sim::paperConfig(secure::SecurityModel::OtpSnc),
        cli.options);

    exp::ExperimentSpec spec;
    spec.name = "ablation_interrupts";
    spec.title = "Ablation A7: interrupt register-save protection";
    spec.subtitle = "guard overhead as % of a gcc-length run (" +
                    std::to_string(base.cycles) +
                    " cycles); 'direct' = crypto on the interrupt "
                    "path, 'premade' = background-generated one-time "
                    "pads";
    spec.benchmarks = {"gap=100000", "gap=20000", "gap=5000",
                       "gap=1000"};
    spec.options = cli.options;

    const std::pair<const char *, secure::RegisterSaveMode> modes[] = {
        {"direct", secure::RegisterSaveMode::Direct},
        {"premade", secure::RegisterSaveMode::OtpPremade},
    };
    const uint64_t run_cycles = base.cycles;
    for (const auto &[label, mode_c] : modes) {
        const secure::RegisterSaveMode mode = mode_c;
        spec.addCustom(label, [mode, run_cycles](
                                  const std::string &bench,
                                  const exp::RunOptions &) {
            const uint64_t gap =
                util::parseU64(bench.substr(4), "interrupt gap");
            return guardCell(mode, gap, run_cycles);
        });
    }

    const exp::Report report = exp::Runner(cli.runner).run(spec);
    report.printVariantRows(std::cout);
    if (cli.write_json)
        report.writeJson(cli.json_path);
    return 0;
}
