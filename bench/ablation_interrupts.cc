/**
 * @file
 * Ablation A7: register-save protection cost on the interrupt path.
 *
 * XOM encrypts the register file before the OS runs an interrupt
 * handler (paper Section 1; the mutating-seed detail is Section
 * 3.4). With the crypto engine on that path (Direct), every
 * interrupt pays the full engine latency twice (save + restore).
 * Pre-generating the next save's pad in the background (OtpPremade,
 * the paper's one-time-pad idea applied to the interrupt path)
 * reduces each to one XOR unless interrupts arrive faster than the
 * engine can pre-generate.
 */

#include <iostream>

#include "bench/harness.hh"
#include "crypto/des.hh"
#include "secure/interrupt_guard.hh"
#include "util/strutil.hh"
#include "util/table.hh"

using namespace secproc;

namespace
{

/** Added cycles for @p events interrupts spaced @p gap cycles. */
uint64_t
guardOverhead(secure::RegisterSaveMode mode, uint64_t events,
              uint64_t gap, uint32_t crypto_latency)
{
    crypto::Des cipher(uint64_t{0x1122334455667788ull});
    secure::InterruptGuardConfig config;
    config.mode = mode;
    config.crypto.latency = crypto_latency;
    secure::InterruptGuard guard(config, cipher);

    uint64_t added = 0;
    uint64_t cycle = 0;
    for (uint64_t i = 0; i < events; ++i) {
        const uint64_t os_start = guard.scheduleSave(cycle);
        added += os_start - cycle;
        // The handler runs for a tenth of the gap, then resumes.
        const uint64_t handler_done = os_start + gap / 10;
        const uint64_t resumed = guard.scheduleRestore(handler_done);
        added += resumed - handler_done;
        cycle = resumed + gap;
    }
    return added;
}

} // namespace

int
main()
{
    const auto options = bench::HarnessOptions::fromEnvironment();

    // Context: cycles one benchmark takes, to express the interrupt
    // overhead as a fraction of real execution.
    const auto base = bench::runConfig(
        "gcc", sim::paperConfig(secure::SecurityModel::OtpSnc),
        options);

    util::Table table({"interrupt gap (cycles)", "events",
                       "direct added", "premade added",
                       "direct % of gcc run", "premade % of gcc run"});
    for (const uint64_t gap :
         {100'000ull, 20'000ull, 5'000ull, 1'000ull}) {
        const uint64_t events = base.cycles / gap;
        const uint64_t direct = guardOverhead(
            secure::RegisterSaveMode::Direct, events, gap, 50);
        const uint64_t premade = guardOverhead(
            secure::RegisterSaveMode::OtpPremade, events, gap, 50);
        table.addRow(
            {std::to_string(gap), std::to_string(events),
             std::to_string(direct), std::to_string(premade),
             util::formatDouble(100.0 * static_cast<double>(direct) /
                                    static_cast<double>(base.cycles),
                                3),
             util::formatDouble(100.0 * static_cast<double>(premade) /
                                    static_cast<double>(base.cycles),
                                3)});
    }

    std::cout << "== Ablation A7: interrupt register-save protection ==\n"
              << "(added cycles across a gcc-length run; 'direct' = "
                 "crypto on the interrupt path, 'premade' = "
                 "background-generated one-time pads)\n";
    table.print(std::cout);
    return 0;
}
