/**
 * @file
 * Secure-update throughput (google-benchmark): how fast a fleet
 * device chews through signed bundles. Measures the three phases
 * separately — admission verify (signature + digests), full
 * stage+activate install, and attestation quoting — across image
 * sizes, cipher kinds and many concurrent compartments (the
 * multitask scenario: one device hosting N independently-updated
 * programs). Bytes/sec counts image payload bytes.
 */

#include <algorithm>
#include <memory>

#include <benchmark/benchmark.h>

#include "exp/runner.hh"
#include "secure/engines.hh"
#include "update/attestation.hh"
#include "update/image_builder.hh"
#include "update/update_engine.hh"
#include "xom/vendor_tool.hh"

namespace
{

using namespace secproc;
using namespace secproc::update;

constexpr uint32_t kLine = 128;

/** Everything needed to exercise one device under update load. */
struct Rig
{
    util::Rng rng{99};
    ImageBuilder vendor;
    crypto::RsaKeyPair processor;
    secure::KeyTable keys;
    mem::MemoryChannel channel;
    std::unique_ptr<secure::ProtectionEngine> engine;
    mem::MainMemory memory;
    mem::VirtualMemory vm;
    RollbackStore rollback{4096};
    std::unique_ptr<UpdateEngine> updater;

    Rig() : vendor(crypto::rsaGenerate(512, rng))
    {
        processor = crypto::rsaGenerate(512, rng);
        secure::ProtectionConfig config;
        config.line_size = kLine;
        config.snc.l2_line_size = kLine;
        engine = secure::makeProtectionEngine(config, channel, keys);
        updater = std::make_unique<UpdateEngine>(
            vendor.publicKey(), processor, keys, rollback,
            StagingConfig{0x4000'0000, 64ull << 20});
        updater->setAttestationKey(crypto::rsaGenerate(512, rng));
    }

    UpdateBundle
    bundle(const std::string &title, uint32_t version,
           uint64_t counter, size_t lines, secure::CipherKind cipher)
    {
        xom::PlainProgram program;
        program.title = title;
        program.entry_point = 0x400000;
        xom::PlainProgram::PlainSection text;
        text.name = ".text";
        text.vaddr = 0x400000;
        text.bytes.resize(lines * kLine,
                          static_cast<uint8_t>(version));
        program.sections = {text};

        UpdateSpec spec;
        spec.image_version = version;
        spec.rollback_counter = counter;
        spec.cipher = cipher;
        return vendor.build(program, spec, processor.pub, rng);
    }
};

/** Admission verify only: signature + digest + rollback checks. */
void
benchVerify(benchmark::State &state)
{
    Rig rig;
    const UpdateBundle bundle =
        rig.bundle("fw", 1, 1, static_cast<size_t>(state.range(0)),
                   secure::CipherKind::Des);
    for (auto _ : state) {
        const VerifyResult result = rig.updater->verify(bundle);
        benchmark::DoNotOptimize(result);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(
                                bundle.image.totalBytes()));
}

/** Full lifecycle: verify + stage into memory + activate + load. */
void
benchInstall(benchmark::State &state)
{
    Rig rig;
    const size_t lines = static_cast<size_t>(state.range(0));
    uint64_t counter = 0;
    uint64_t bytes = 0;
    for (auto _ : state) {
        state.PauseTiming();
        // Each iteration needs a fresh, higher-counter release.
        const UpdateBundle bundle =
            rig.bundle("fw", static_cast<uint32_t>(counter + 1),
                       counter + 1, lines, secure::CipherKind::Des);
        state.ResumeTiming();

        const InstallResult result = rig.updater->install(
            bundle, 1, rig.memory, rig.vm, 1, *rig.engine);
        benchmark::DoNotOptimize(result);
        ++counter;
        bytes += bundle.image.totalBytes();
    }
    state.SetBytesProcessed(static_cast<int64_t>(bytes));
}

/**
 * Multitask fleet scenario: N compartments, each running its own
 * title, all updated in one sweep. Reported rate is whole sweeps.
 *
 * The sweep is sharded through the experiment Runner: each worker
 * owns one device shard (its own Rig) and installs that shard's
 * compartments. Serial by default; set SECPROC_THREADS to fan the
 * fleet out, e.g. SECPROC_THREADS=4 ./update_throughput.
 */
void
benchMultiCompartmentSweep(benchmark::State &state)
{
    const auto compartments =
        static_cast<secure::CompartmentId>(state.range(0));
    const exp::Runner runner;
    const size_t shards =
        std::min<size_t>(runner.threads(), compartments);

    // One device per shard, built (RSA keygen) outside the timing.
    std::vector<std::unique_ptr<Rig>> rigs;
    for (size_t s = 0; s < shards; ++s)
        rigs.push_back(std::make_unique<Rig>());

    uint64_t round = 0;
    uint64_t bytes = 0;
    for (auto _ : state) {
        state.PauseTiming();
        // Compartment c runs on shard (c-1) % shards; its bundle
        // must come from that shard's vendor.
        std::vector<UpdateBundle> wave;
        for (secure::CompartmentId c = 1; c <= compartments; ++c) {
            wave.push_back(rigs[(c - 1) % shards]->bundle(
                "app-" + std::to_string(c),
                static_cast<uint32_t>(round + 1), round + 1, 8,
                secure::CipherKind::Des));
        }
        state.ResumeTiming();

        runner.forEach(shards, [&](size_t s) {
            Rig &rig = *rigs[s];
            for (secure::CompartmentId c =
                     static_cast<secure::CompartmentId>(s + 1);
                 c <= compartments;
                 c = static_cast<secure::CompartmentId>(c + shards)) {
                const InstallResult result = rig.updater->install(
                    wave[c - 1], c, rig.memory, rig.vm, c,
                    *rig.engine);
                benchmark::DoNotOptimize(result);
            }
        });
        for (const UpdateBundle &bundle : wave)
            bytes += bundle.image.totalBytes();
        ++round;
    }
    state.SetBytesProcessed(static_cast<int64_t>(bytes));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            compartments);
}

/** Verify cost per cipher family (digests dominate; capsule fixed). */
template <secure::CipherKind kKind>
void
benchVerifyCipher(benchmark::State &state)
{
    Rig rig;
    const UpdateBundle bundle = rig.bundle("fw", 1, 1, 64, kKind);
    for (auto _ : state) {
        const VerifyResult result = rig.updater->verify(bundle);
        benchmark::DoNotOptimize(result);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(
                                bundle.image.totalBytes()));
}

/** Attestation quote generation (RSA sign dominates). */
void
benchAttest(benchmark::State &state)
{
    Rig rig;
    const UpdateBundle bundle =
        rig.bundle("fw", 1, 1, 8, secure::CipherKind::Des);
    const InstallResult installed = rig.updater->install(
        bundle, 1, rig.memory, rig.vm, 1, *rig.engine);
    if (!installed.ok())
        state.SkipWithError("install failed");
    Digest nonce = {};
    for (auto _ : state) {
        nonce[0]++;
        const AttestationQuote quote =
            attest(*rig.updater, 1, nonce);
        benchmark::DoNotOptimize(quote);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
benchVerifyDes(benchmark::State &state)
{
    benchVerifyCipher<secure::CipherKind::Des>(state);
}

void
benchVerifyAes(benchmark::State &state)
{
    benchVerifyCipher<secure::CipherKind::Aes128>(state);
}

} // namespace

BENCHMARK(benchVerify)->Arg(8)->Arg(64)->Arg(512);
BENCHMARK(benchInstall)->Arg(8)->Arg(64)->Arg(512);
BENCHMARK(benchMultiCompartmentSweep)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(benchVerifyDes);
BENCHMARK(benchVerifyAes);
BENCHMARK(benchAttest);

BENCHMARK_MAIN();
