/**
 * @file
 * Ablation A4: SNC design-space sweep — sequence number width
 * (1/2/4 bytes at fixed 64KB capacity trades coverage against
 * overflow re-encryption epochs) and replacement policy variants
 * (LRU vs FIFO vs Random), extending the paper's LRU/no-replacement
 * comparison.
 */

#include <iostream>

#include "exp/cli.hh"
#include "sim/profiles.hh"

using namespace secproc;

namespace
{

sim::SystemConfig
widthConfig(uint32_t bytes_per_entry)
{
    auto config = sim::paperConfig(secure::SecurityModel::OtpSnc);
    config.protection.snc.bytes_per_entry = bytes_per_entry;
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    const exp::BenchCli cli = exp::parseBenchCli(argc, argv);

    exp::ExperimentSpec spec;
    spec.name = "ablation_snc_policies";
    spec.title = "Ablation A4: sequence-number width at fixed 64KB SNC";
    spec.subtitle = "narrow entries cover more memory but overflow "
                    "sooner; slowdown % vs baseline";
    spec.options = cli.options;
    spec.addBaseline("baseline", [](const std::string &) {
        return sim::paperConfig(secure::SecurityModel::Baseline);
    });
    spec.add("1B entries (8MB cover)",
             [](const std::string &) { return widthConfig(1); });
    spec.add("2B entries (4MB cover)",
             [](const std::string &) { return widthConfig(2); });
    spec.add("4B entries (2MB cover)",
             [](const std::string &) { return widthConfig(4); });

    const exp::Report report = exp::Runner(cli.runner).run(spec);
    report.printTable(std::cout);
    if (cli.write_json)
        report.writeJson(cli.json_path);
    return 0;
}
