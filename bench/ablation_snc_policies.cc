/**
 * @file
 * Ablation A4: SNC design-space sweep — sequence number width
 * (1/2/4 bytes at fixed 64KB capacity trades coverage against
 * overflow re-encryption epochs) and replacement policy variants
 * (LRU vs FIFO vs Random), extending the paper's LRU/no-replacement
 * comparison.
 */

#include <iostream>

#include "bench/harness.hh"
#include "util/strutil.hh"
#include "util/table.hh"

using namespace secproc;

namespace
{

sim::SystemConfig
widthConfig(uint32_t bytes_per_entry)
{
    auto config = sim::paperConfig(secure::SecurityModel::OtpSnc);
    config.protection.snc.bytes_per_entry = bytes_per_entry;
    return config;
}

} // namespace

int
main()
{
    const auto options = bench::HarnessOptions::fromEnvironment();

    util::Table table({"bench", "1B entries (8MB cover)",
                       "2B entries (4MB cover)",
                       "4B entries (2MB cover)"});
    double sums[3] = {};
    for (const std::string &name : sim::benchmarkNames()) {
        const auto base = bench::runConfig(
            name, sim::paperConfig(secure::SecurityModel::Baseline),
            options);
        std::vector<std::string> row = {name};
        int col = 0;
        for (uint32_t width : {1u, 2u, 4u}) {
            const auto stats =
                bench::runConfig(name, widthConfig(width), options);
            const double slowdown =
                bench::slowdownPct(base.cycles, stats.cycles);
            sums[col++] += slowdown;
            row.push_back(util::formatDouble(slowdown, 2));
        }
        table.addRow(row);
    }
    const double n = static_cast<double>(sim::benchmarkNames().size());
    table.addRow({"average", util::formatDouble(sums[0] / n, 2),
                  util::formatDouble(sums[1] / n, 2),
                  util::formatDouble(sums[2] / n, 2)});

    std::cout << "== Ablation A4: sequence-number width at fixed 64KB "
                 "SNC ==\n"
              << "(narrow entries cover more memory but overflow "
                 "sooner; slowdown % vs baseline)\n";
    table.print(std::cout);
    return 0;
}
