/**
 * @file
 * Crypto primitive micro-benchmarks (google-benchmark): block
 * ciphers, hashes, one-time-pad generation, RSA — the functional
 * substrate's raw software throughput. These numbers justify why
 * the *timing* simulator models crypto as a latency parameter
 * instead of running functional crypto inline.
 */

#include <benchmark/benchmark.h>

#include "crypto/aes128.hh"
#include "crypto/bigint.hh"
#include "crypto/block_cipher.hh"
#include "crypto/des.hh"
#include "crypto/rsa.hh"
#include "crypto/sha.hh"
#include "crypto/triple_des.hh"
#include "util/random.hh"

namespace
{

using namespace secproc;

template <typename Cipher>
void
benchCipherBlock(benchmark::State &state)
{
    util::Rng rng(1);
    std::vector<uint8_t> key(Cipher().keySize());
    rng.fillBytes(key.data(), key.size());
    Cipher cipher;
    cipher.setKey(key.data(), key.size());
    std::vector<uint8_t> block(cipher.blockSize());
    rng.fillBytes(block.data(), block.size());

    for (auto _ : state) {
        cipher.encryptBlock(block.data(), block.data());
        benchmark::DoNotOptimize(block.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(block.size()));
}

void
benchDes(benchmark::State &state)
{
    benchCipherBlock<crypto::Des>(state);
}

void
benchTripleDes(benchmark::State &state)
{
    benchCipherBlock<crypto::TripleDes>(state);
}

void
benchAes128(benchmark::State &state)
{
    benchCipherBlock<crypto::Aes128>(state);
}

void
benchPadGeneration(benchmark::State &state)
{
    crypto::Des des(uint64_t{0x0123456789ABCDEFull});
    std::vector<uint8_t> pad(static_cast<size_t>(state.range(0)));
    uint64_t seed = 0;
    for (auto _ : state) {
        crypto::generatePad(des, seed++, pad.data(), pad.size());
        benchmark::DoNotOptimize(pad.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(pad.size()));
}

void
benchLineEcb(benchmark::State &state)
{
    crypto::Des des(uint64_t{0x0123456789ABCDEFull});
    std::vector<uint8_t> line(128);
    for (auto _ : state) {
        crypto::ecbEncrypt(des, line.data(), line.size());
        benchmark::DoNotOptimize(line.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 128);
}

void
benchSha256(benchmark::State &state)
{
    std::vector<uint8_t> data(static_cast<size_t>(state.range(0)));
    util::Rng rng(2);
    rng.fillBytes(data.data(), data.size());
    for (auto _ : state) {
        auto digest = crypto::Sha256::digest(data.data(), data.size());
        benchmark::DoNotOptimize(digest);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(data.size()));
}

void
benchHmacLine(benchmark::State &state)
{
    const std::vector<uint8_t> key(16, 0x5A);
    std::vector<uint8_t> line(128, 0x3C);
    for (auto _ : state) {
        auto mac = crypto::hmacSha256(key.data(), key.size(),
                                      line.data(), line.size());
        benchmark::DoNotOptimize(mac);
    }
}

void
benchBigIntModExp(benchmark::State &state)
{
    util::Rng rng(3);
    const auto bits = static_cast<unsigned>(state.range(0));
    const crypto::BigInt m = crypto::BigInt::randomBits(bits, rng);
    const crypto::BigInt base = crypto::BigInt::randomBits(bits - 1,
                                                           rng);
    const crypto::BigInt exp = crypto::BigInt::randomBits(17, rng);
    for (auto _ : state) {
        auto r = base.modExp(exp, m);
        benchmark::DoNotOptimize(r);
    }
}

void
benchRsaUnwrap(benchmark::State &state)
{
    util::Rng rng(4);
    const auto pair = crypto::rsaGenerate(384, rng);
    const std::vector<uint8_t> key(8, 0x77);
    const auto capsule = crypto::rsaWrap(pair.pub, key, rng);
    for (auto _ : state) {
        auto opened = crypto::rsaUnwrap(pair.priv, capsule);
        benchmark::DoNotOptimize(opened);
    }
}

BENCHMARK(benchDes);
BENCHMARK(benchTripleDes);
BENCHMARK(benchAes128);
BENCHMARK(benchPadGeneration)->Arg(128)->Arg(4096);
BENCHMARK(benchLineEcb);
BENCHMARK(benchSha256)->Arg(128)->Arg(4096);
BENCHMARK(benchHmacLine);
BENCHMARK(benchBigIntModExp)->Arg(256)->Arg(512);
BENCHMARK(benchRsaUnwrap);

} // namespace

BENCHMARK_MAIN();
