/**
 * @file
 * Ablation A11: sequential pad prediction.
 *
 * A10 showed the OTP fast path's one residual weakness: when memory
 * returns faster than the crypto engine computes (fast row hits, or
 * a strong 102-cycle cipher against sub-100-cycle memory), the pad
 * becomes the critical path and max(mem, crypto) + 1 degrades. The
 * prediction unit pre-generates the pad for line X+1 while line X's
 * fill is in flight (only when X+1's sequence number is already on
 * chip — a guess must never cost a metadata fetch). This bench
 * re-runs the fast-memory corner with prediction on and off.
 */

#include <iostream>

#include "bench/harness.hh"
#include "util/strutil.hh"
#include "util/table.hh"

using namespace secproc;

namespace
{

sim::SystemConfig
predictionConfig(secure::SecurityModel model, uint32_t mem_latency,
                 uint32_t crypto_latency, bool prediction)
{
    sim::SystemConfig config = sim::paperConfig(model);
    config.channel.access_latency = mem_latency;
    config.protection.crypto.latency = crypto_latency;
    config.protection.pad_prediction = prediction;
    return config;
}

} // namespace

int
main()
{
    const auto options = bench::HarnessOptions::fromEnvironment();
    // art streams (best case), gcc mixes, mcf chases pointers
    // (worst case: the next line is rarely the right guess).
    const std::vector<std::string> benches = {"art", "gcc", "mcf"};
    const std::vector<std::pair<uint32_t, uint32_t>> corners = {
        {40, 50},   // fast memory vs the paper's crypto
        {100, 102}, // the paper's Figure 10 cipher
        {40, 102},  // both: the worst corner for plain OTP
    };

    util::Table table({"bench", "mem/crypto", "SNC-LRU %",
                       "+prediction %", "pad-buffer hits"});
    for (const std::string &name : benches) {
        for (const auto &[mem, crypto] : corners) {
            const auto base = bench::runConfig(
                name,
                predictionConfig(secure::SecurityModel::Baseline, mem,
                                 crypto, false),
                options);
            const auto plain = bench::runConfig(
                name,
                predictionConfig(secure::SecurityModel::OtpSnc, mem,
                                 crypto, false),
                options);
            const auto predicted = bench::runConfig(
                name,
                predictionConfig(secure::SecurityModel::OtpSnc, mem,
                                 crypto, true),
                options);

            // Re-run to read the engine's hit counters.
            sim::SyntheticWorkload workload(sim::benchmarkProfile(name),
                                            128);
            sim::System system(
                predictionConfig(secure::SecurityModel::OtpSnc, mem,
                                 crypto, true),
                workload);
            system.run(options.warmup_instructions +
                       options.measure_instructions);
            const auto *otp = dynamic_cast<const secure::OtpEngine *>(
                &system.engine());

            table.addRow(
                {name,
                 std::to_string(mem) + "/" + std::to_string(crypto),
                 util::formatDouble(
                     bench::slowdownPct(base.cycles, plain.cycles), 2),
                 util::formatDouble(
                     bench::slowdownPct(base.cycles, predicted.cycles),
                     2),
                 std::to_string(otp->padPredictionHits())});
        }
    }

    std::cout << "== Ablation A11: sequential pad prediction ==\n"
              << "(slowdown % vs baseline at the same memory "
                 "latency; prediction pre-generates line X+1's pad "
                 "during X's fill)\n";
    table.print(std::cout);
    return 0;
}
