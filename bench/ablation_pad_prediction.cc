/**
 * @file
 * Ablation A11: sequential pad prediction.
 *
 * A10 showed the OTP fast path's one residual weakness: when memory
 * returns faster than the crypto engine computes (fast row hits, or
 * a strong 102-cycle cipher against sub-100-cycle memory), the pad
 * becomes the critical path and max(mem, crypto) + 1 degrades. The
 * prediction unit pre-generates the pad for line X+1 while line X's
 * fill is in flight (only when X+1's sequence number is already on
 * chip — a guess must never cost a metadata fetch). This bench
 * re-runs the fast-memory corner with prediction on and off;
 * pad-buffer hit counts land in the JSON extras.
 */

#include <iostream>

#include "crypto/latency.hh"
#include "exp/cli.hh"
#include "secure/engines.hh"
#include "sim/profiles.hh"

using namespace secproc;

namespace
{

sim::SystemConfig
predictionConfig(secure::SecurityModel model, uint32_t mem_latency,
                 uint32_t crypto_latency, bool prediction)
{
    sim::SystemConfig config = sim::paperConfig(model);
    config.channel.access_latency = mem_latency;
    config.protection.crypto.latency = crypto_latency;
    config.protection.pad_prediction = prediction;
    return config;
}

/** Prediction cell: standard run plus the engine's hit counter. */
exp::CellOutput
runPredicted(const std::string &bench, uint32_t mem, uint32_t crypto,
             const exp::RunOptions &options)
{
    const sim::SystemConfig config = predictionConfig(
        secure::SecurityModel::OtpSnc, mem, crypto, true);
    sim::SyntheticWorkload workload(sim::benchmarkProfile(bench),
                                    config.l2.line_size);
    sim::System system(config, workload);
    system.run(options.warmup_instructions);
    system.beginMeasurement();
    system.run(options.measure_instructions);

    exp::CellOutput output;
    output.stats = system.stats();
    const auto *otp =
        dynamic_cast<const secure::OtpEngine *>(&system.engine());
    output.extras.emplace_back(
        "pad_buffer_hits",
        static_cast<double>(otp->padPredictionHits()));
    return output;
}

} // namespace

int
main(int argc, char **argv)
{
    const exp::BenchCli cli = exp::parseBenchCli(argc, argv);

    exp::ExperimentSpec spec;
    spec.name = "ablation_pad_prediction";
    spec.title = "Ablation A11: sequential pad prediction";
    spec.subtitle = "slowdown % vs baseline at the same memory "
                    "latency; prediction pre-generates line X+1's "
                    "pad during X's fill";
    // art streams (best case), gcc mixes, mcf chases pointers
    // (worst case: the next line is rarely the right guess).
    spec.benchmarks = {"art", "gcc", "mcf"};
    spec.options = cli.options;

    const std::vector<std::pair<uint32_t, uint32_t>> corners = {
        // fast memory vs the paper's crypto
        {40, crypto::kPaperCryptoLatency},
        // the paper's Figure 10 cipher
        {100, crypto::kStrongCipherLatency},
        // both: the worst corner for plain OTP
        {40, crypto::kStrongCipherLatency},
    };
    for (const auto &[mem_c, crypto_c] : corners) {
        const uint32_t mem = mem_c, crypto = crypto_c;
        const std::string at = "@" + std::to_string(mem) + "/" +
                               std::to_string(crypto);
        spec.add("base" + at, [mem, crypto](const std::string &) {
            return predictionConfig(secure::SecurityModel::Baseline,
                                    mem, crypto, false);
        });
        spec.add("SNC-LRU" + at, [mem, crypto](const std::string &) {
                return predictionConfig(secure::SecurityModel::OtpSnc,
                                        mem, crypto, false);
            }).baseline = "base" + at;
        spec.addCustom("+prediction" + at,
                       [mem, crypto](const std::string &bench,
                                     const exp::RunOptions &options) {
                           return runPredicted(bench, mem, crypto,
                                               options);
                       })
            .baseline = "base" + at;
    }

    const exp::Report report = exp::Runner(cli.runner).run(spec);
    report.printVariantRows(std::cout);
    if (cli.write_json)
        report.writeJson(cli.json_path);
    return 0;
}
