/**
 * @file
 * Ablation A6: true multi-programmed context switching (paper
 * Section 4.3).
 *
 * Two SPEC-like tasks share one secure processor, round-robin at a
 * configurable quantum. Compares the two SNC protection policies the
 * paper sketches: compartment-ID tagging (entries survive switches)
 * versus flush-and-spill (every switch encrypts and writes back the
 * whole SNC, and the next quantum re-fetches on demand). The
 * single-program ablation_context_switch isolates the flush cost;
 * this bench adds the real cross-task cache and SNC interference.
 * Grid rows are task mixes ("gcc+mcf"); the flush variants report
 * their penalty over the tag variant at the same quantum, and spills
 * per switch land in the JSON extras.
 */

#include <iostream>

#include "exp/cli.hh"
#include "sim/multitask.hh"
#include "sim/profiles.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

using namespace secproc;

namespace
{

constexpr uint64_t kTaskStride = 1ull << 40;

/** Run a "a+b" mix under one policy and quantum. */
exp::CellOutput
runMix(const std::string &mix, sim::SncSwitchPolicy policy,
       uint64_t quantum, const exp::RunOptions &options)
{
    const std::vector<std::string> names = util::split(mix, '+');
    fatal_if(names.size() != 2, "mix '", mix, "' is not 'a+b'");

    sim::WorkloadProfile profile_a = sim::benchmarkProfile(names[0]);
    sim::WorkloadProfile profile_b = sim::benchmarkProfile(names[1]);
    profile_b.va_offset = kTaskStride;

    const auto config = sim::paperConfig(secure::SecurityModel::OtpSnc);
    sim::SyntheticWorkload a(profile_a, config.l2.line_size);
    sim::SyntheticWorkload b(profile_b, config.l2.line_size);

    sim::MultiTaskConfig mt;
    mt.quantum = quantum;
    mt.policy = policy;
    sim::MultiTaskSystem multi(config, {{&a, 1}, {&b, 2}}, mt);
    const uint64_t total =
        options.warmup_instructions + options.measure_instructions;
    multi.run(total);

    exp::CellOutput output;
    output.stats = multi.system().stats();
    const uint64_t switches = total / quantum;
    if (policy == sim::SncSwitchPolicy::Flush && switches > 0) {
        output.extras.emplace_back(
            "spills_per_switch",
            static_cast<double>(multi.system().switchFlushSpills()) /
                static_cast<double>(switches));
    }
    return output;
}

} // namespace

int
main(int argc, char **argv)
{
    const exp::BenchCli cli = exp::parseBenchCli(argc, argv);

    exp::ExperimentSpec spec;
    spec.name = "ablation_multitask";
    spec.title = "Ablation A6: multi-programmed SNC switch policies";
    spec.subtitle = "flush penalty % over the tag policy at the same "
                    "quantum; two tasks round-robin on one secure "
                    "processor";
    spec.benchmarks = {"gcc+mcf", "ammp+parser", "gzip+vortex"};
    spec.options = cli.options;

    for (const uint64_t quantum : {1'000'000ull, 250'000ull, 50'000ull}) {
        const std::string at = "@" + std::to_string(quantum);
        spec.addCustom("tag" + at,
                       [quantum](const std::string &mix,
                                 const exp::RunOptions &options) {
                           return runMix(mix,
                                         sim::SncSwitchPolicy::Tag,
                                         quantum, options);
                       });
        spec.addCustom("flush" + at,
                       [quantum](const std::string &mix,
                                 const exp::RunOptions &options) {
                           return runMix(mix,
                                         sim::SncSwitchPolicy::Flush,
                                         quantum, options);
                       })
            .baseline = "tag" + at;
    }

    const exp::Report report = exp::Runner(cli.runner).run(spec);
    report.printVariantRows(std::cout);
    if (cli.write_json)
        report.writeJson(cli.json_path);
    return 0;
}
