/**
 * @file
 * Ablation A6: true multi-programmed context switching (paper
 * Section 4.3).
 *
 * Two SPEC-like tasks share one secure processor, round-robin at a
 * configurable quantum. Compares the two SNC protection policies the
 * paper sketches: compartment-ID tagging (entries survive switches)
 * versus flush-and-spill (every switch encrypts and writes back the
 * whole SNC, and the next quantum re-fetches on demand). The
 * single-program ablation_context_switch isolates the flush cost;
 * this bench adds the real cross-task cache and SNC interference.
 */

#include <iostream>

#include "bench/harness.hh"
#include "sim/multitask.hh"
#include "util/strutil.hh"
#include "util/table.hh"

using namespace secproc;

namespace
{

constexpr uint64_t kTaskStride = 1ull << 40;

/** Total cycles for a two-task mix under one policy and quantum. */
uint64_t
runMix(const std::string &bench_a, const std::string &bench_b,
       sim::SncSwitchPolicy policy, uint64_t quantum,
       uint64_t total_instructions, uint64_t *spills)
{
    sim::WorkloadProfile profile_a = sim::benchmarkProfile(bench_a);
    sim::WorkloadProfile profile_b = sim::benchmarkProfile(bench_b);
    profile_b.va_offset = kTaskStride;

    const auto config = sim::paperConfig(secure::SecurityModel::OtpSnc);
    sim::SyntheticWorkload a(profile_a, config.l2.line_size);
    sim::SyntheticWorkload b(profile_b, config.l2.line_size);

    sim::MultiTaskConfig mt;
    mt.quantum = quantum;
    mt.policy = policy;
    sim::MultiTaskSystem multi(config, {{&a, 1}, {&b, 2}}, mt);
    multi.run(total_instructions);
    if (spills != nullptr)
        *spills = multi.system().switchFlushSpills();
    return multi.system().core().cycles();
}

} // namespace

int
main()
{
    const auto options = bench::HarnessOptions::fromEnvironment();
    const uint64_t total = options.warmup_instructions +
                           options.measure_instructions;

    const std::vector<std::pair<std::string, std::string>> mixes = {
        {"gcc", "mcf"},
        {"ammp", "parser"},
        {"gzip", "vortex"},
    };
    const std::vector<uint64_t> quanta = {1'000'000, 250'000, 50'000};

    util::Table table({"mix", "quantum", "tag cycles", "flush cycles",
                       "flush penalty %", "spills/switch"});
    for (const auto &[a, b] : mixes) {
        for (const uint64_t quantum : quanta) {
            const uint64_t tag = runMix(a, b, sim::SncSwitchPolicy::Tag,
                                        quantum, total, nullptr);
            uint64_t spills = 0;
            const uint64_t flush =
                runMix(a, b, sim::SncSwitchPolicy::Flush, quantum,
                       total, &spills);
            const uint64_t switches = total / quantum;
            table.addRow(
                {a + "+" + b, std::to_string(quantum),
                 std::to_string(tag), std::to_string(flush),
                 util::formatDouble(bench::slowdownPct(tag, flush), 2),
                 std::to_string(switches == 0 ? 0 : spills / switches)});
        }
    }

    std::cout
        << "== Ablation A6: multi-programmed SNC switch policies ==\n"
        << "(two tasks round-robin on one secure processor; 'tag' = "
           "compartment-tagged entries survive, 'flush' = spill + "
           "refetch every switch)\n";
    table.print(std::cout);
    return 0;
}
