/**
 * @file
 * Fleet-scale staged rollout: convergence time and p99 device-hours
 * per policy.
 *
 * Every cell pushes one release to a simulated fleet of lightweight
 * secure processors (bench default 50,000 devices; override with
 * --devices=N) under one rollout policy x one scenario:
 *
 *   healthy  clean release, default population
 *   faulty   release that bricks hardware variant 0 — the canary
 *            wave must halt the rollout and push a rollback wave
 *   lossy    clean release into a cellular-heavy, power-cut-prone
 *            population
 *
 * The measured value is the p99 of device-hours-to-healthy-install
 * (util::Histogram::percentile over the sharded per-device
 * completion times); convergence hours, wave/halt/rollback counts
 * and the embedded ground-truth devices' worst relative error ride
 * along as extras. Device populations are sharded over a fixed
 * shard count, so every cell is bit-identical across --threads
 * settings.
 *
 * With --trace-out=PATH the bench runs one traced exemplar (the
 * canary-staged faulty rollout) instead of the grid and writes the
 * per-wave spans and publish/halt instants as a Chrome/Perfetto
 * trace next to a metrics snapshot on stdout.
 */

#include <algorithm>
#include <iostream>

#include "exp/cli.hh"
#include "fleet/rollout.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

using namespace secproc;

namespace
{

constexpr uint64_t kBenchDevices = 50'000;

fleet::FleetConfig
fleetConfig(const fleet::FleetScenario &scenario, uint64_t devices)
{
    fleet::FleetConfig config;
    config.devices = devices;
    config.dist = scenario.dist;
    return config;
}

exp::RunFn
makeCell(const fleet::RolloutPolicy &policy, uint64_t devices)
{
    return [policy, devices](const std::string &bench,
                             const exp::RunOptions &) {
        const fleet::FleetScenario scenario =
            fleet::fleetScenarioByName(bench);

        // Cells already fan out across the bench's worker pool;
        // each rollout runs its shards serially (and is
        // bit-identical to any threaded run regardless).
        exp::RunnerOptions serial;
        serial.threads = 1;
        const exp::Runner runner(serial);

        fleet::FleetSimulator sim(fleetConfig(scenario, devices),
                                  policy, runner);
        const fleet::RolloutResult result = sim.run(
            scenario.defective_variant, scenario.defect_rate);

        double gt_max_rel_error = 0.0;
        bool gt_ok = !result.ground_truth.empty();
        for (const fleet::GroundTruthReport &gt :
             result.ground_truth) {
            gt_max_rel_error =
                std::max(gt_max_rel_error, gt.rel_error);
            gt_ok = gt_ok && gt.within_tolerance &&
                    gt.functional_ok;
        }

        exp::CellOutput out;
        out.stats.cycles = result.convergence_cycle;
        out.measured = result.device_hours.percentile(0.99);
        out.extras = {
            {"converged", result.converged ? 1.0 : 0.0},
            {"convergence_hours", result.convergence_hours},
            {"waves",
             static_cast<double>(result.waves.size())},
            {"halts", static_cast<double>(result.halts)},
            {"rollback_waves",
             static_cast<double>(result.rollback_waves)},
            {"updated", static_cast<double>(result.updated)},
            {"failed_health",
             static_cast<double>(result.failed_health)},
            {"skipped",
             static_cast<double>(result.skipped_no_quirk)},
            {"gt_max_rel_error", gt_max_rel_error},
            {"gt_ok", gt_ok ? 1.0 : 0.0},
        };
        return out;
    };
}

/** One traced rollout instead of the grid (--trace-out=PATH). */
int
runTracedExemplar(const std::string &trace_path, uint64_t devices)
{
    const fleet::FleetScenario scenario =
        fleet::fleetScenarioFaulty();
    exp::RunnerOptions serial;
    serial.threads = 1;
    const exp::Runner runner(serial);

    fleet::FleetSimulator sim(fleetConfig(scenario, devices),
                              fleet::RolloutPolicy::canaryStaged(),
                              runner);
    obs::TraceSink trace;
    sim.setTraceSink(&trace);
    obs::MetricsRegistry metrics;
    sim.registerMetrics(metrics);

    const fleet::RolloutResult result = sim.run(
        scenario.defective_variant, scenario.defect_rate);

    trace.writeChromeJson(trace_path);
    inform("wrote ", trace_path, " (", trace.eventCount(),
           " events)");
    metrics.snapshot().dump(std::cout);
    std::cout << "converged " << (result.converged ? 1 : 0)
              << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t devices = kBenchDevices;
    const exp::BenchCli cli = exp::parseBenchCli(
        argc, argv,
        [&devices](const std::string &arg) {
            return exp::flagU64(arg, "--devices=", &devices);
        },
        "  --devices=N   fleet population per cell "
        "(default 50000)\n");

    if (!cli.trace_out.empty())
        return runTracedExemplar(cli.trace_out, devices);

    exp::ExperimentSpec spec;
    spec.name = "fleet_rollout";
    spec.title = "Fleet rollout: p99 device-hours to updated";
    spec.subtitle =
        "staged release push to " + std::to_string(devices) +
        " lightweight secure processors; measured = p99 hours "
        "from publish to healthy install";
    spec.benchmarks = {"healthy", "faulty", "lossy"};
    spec.options = cli.options;

    for (const fleet::RolloutPolicy &policy :
         {fleet::RolloutPolicy::canaryStaged(),
          fleet::RolloutPolicy::conservative(),
          fleet::RolloutPolicy::bigBang()})
        spec.addCustom(policy.name, makeCell(policy, devices));

    const exp::Report report =
        exp::Runner(cli.runner).run(spec);
    report.printTable(std::cout);
    if (cli.write_json)
        report.writeJson(cli.json_path);
    return 0;
}
