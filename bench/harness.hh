/**
 * @file
 * Shared experiment harness for the figure-reproduction benchmarks.
 *
 * Every bench/fig* binary uses this to run the 11 workload profiles
 * under a set of machine configurations and print a
 * paper-vs-measured table for the corresponding figure.
 */

#ifndef SECPROC_BENCH_HARNESS_HH
#define SECPROC_BENCH_HARNESS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/profiles.hh"
#include "sim/system.hh"

namespace secproc::bench
{

/** Run-length controls (overridable via environment for quick runs). */
struct HarnessOptions
{
    uint64_t warmup_instructions = 1'000'000;
    uint64_t measure_instructions = 4'000'000;

    /** Reads SECPROC_WARMUP / SECPROC_MEASURE when set. */
    static HarnessOptions fromEnvironment();
};

/**
 * Run one benchmark under one machine configuration.
 *
 * @param bench Benchmark name (see sim::benchmarkNames()).
 * @param config Machine description.
 * @param options Run lengths.
 * @return Statistics over the measurement window.
 */
sim::RunStats runConfig(const std::string &bench,
                        const sim::SystemConfig &config,
                        const HarnessOptions &options);

/** Percent slowdown of @p model over @p base cycle counts. */
double slowdownPct(uint64_t base_cycles, uint64_t model_cycles);

/**
 * Standard figure experiment: for each benchmark, run the baseline
 * plus every named configuration and print measured slowdowns next
 * to paper values.
 */
struct FigureColumn
{
    std::string label;
    /** Machine for this column, per benchmark. */
    std::function<sim::SystemConfig(const std::string &bench)> config;
    /** Paper number for this column, per benchmark (percent). */
    std::function<double(const std::string &bench)> paper;
};

/**
 * Run a slowdown-style figure (Figs. 3, 5, 6, 7, 10) and print it.
 *
 * @param figure_title Heading, e.g. "Figure 5".
 * @param columns Configurations to compare against the baseline.
 * @param make_baseline Baseline machine per benchmark.
 * @return measured per-column averages (for assertions/logging).
 */
std::vector<double> runSlowdownFigure(
    const std::string &figure_title,
    const std::function<sim::SystemConfig(const std::string &)> &
        make_baseline,
    const std::vector<FigureColumn> &columns,
    const HarnessOptions &options);

} // namespace secproc::bench

#endif // SECPROC_BENCH_HARNESS_HH
