/**
 * @file
 * Diagnostic: run one benchmark under one model and dump every
 * component statistic. Used for workload calibration; not one of the
 * paper's figures.
 *
 * Usage: debug_stats [bench] [baseline|xom|otp|otp-norepl]
 */

#include <iostream>

#include "exp/spec.hh"
#include "sim/profiles.hh"

using namespace secproc;

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "mesa";
    const std::string model = argc > 2 ? argv[2] : "xom";

    sim::SystemConfig config;
    if (model == "baseline") {
        config = sim::paperConfig(secure::SecurityModel::Baseline);
    } else if (model == "xom") {
        config = sim::paperConfig(secure::SecurityModel::Xom);
    } else if (model == "otp") {
        config = sim::paperConfig(secure::SecurityModel::OtpSnc);
    } else if (model == "otp-norepl") {
        config = sim::paperConfig(secure::SecurityModel::OtpSnc);
        config.protection.snc.allow_replacement = false;
    } else {
        std::cerr << "unknown model " << model << "\n";
        return 1;
    }

    const auto options = exp::RunOptions::fromEnvironment();
    sim::SyntheticWorkload workload(sim::benchmarkProfile(bench),
                                    config.l2.line_size);
    sim::System system(config, workload);
    system.run(options.warmup_instructions);
    system.beginMeasurement();
    system.run(options.measure_instructions);

    const sim::RunStats stats = system.stats();
    std::cout << "bench " << bench << " model " << model << "\n";
    std::cout << "cycles " << stats.cycles << " instr "
              << stats.instructions << " ipc " << stats.ipc << "\n";
    std::cout << "l2_misses(meas) " << stats.l2_misses << " accesses "
              << stats.l2_accesses << "\n";
    system.dumpStats(std::cout);
    return 0;
}
