/**
 * @file
 * Ablation A5: does the paper's conclusion survive realistic DRAM?
 *
 * The paper models memory as a flat 100-cycle latency, so
 * max(mem, crypto) + 1 always resolves in favour of the memory
 * access. Banked DRAM with row buffers returns row hits in fewer
 * cycles than the 50-cycle crypto engine needs only rarely (the
 * transfer still dominates), but conflicts stretch fills well past
 * the flat model. This bench re-runs the Figure 5 comparison on
 * open-page and closed-page DRAM: the XOM gap should stay large (its
 * +50 serial cycles do not depend on the memory model) while the
 * OTP fast path keeps hiding pad generation behind whichever
 * latency the DRAM produces. Each memory model's baseline cell
 * records its DRAM row-hit rate in the JSON extras.
 */

#include <iostream>

#include "exp/cli.hh"
#include "sim/profiles.hh"

using namespace secproc;

namespace
{

enum class MemModel
{
    Flat,
    DramOpen,
    DramClosed,
};

sim::SystemConfig
makeConfig(secure::SecurityModel model, MemModel mem)
{
    sim::SystemConfig config = sim::paperConfig(model);
    if (mem == MemModel::Flat)
        return config;
    config.channel.use_dram = true;
    config.channel.dram.num_banks = 8;
    config.channel.dram.row_bytes = 8 * 1024;
    config.channel.dram.row_hit_latency = 60;
    config.channel.dram.row_miss_latency = 110;
    config.channel.dram.row_conflict_latency = 160;
    config.channel.dram.bank_busy_cycles = 24;
    config.channel.dram.closed_page = mem == MemModel::DramClosed;
    return config;
}

/** Baseline cell that also reports the DRAM row-hit rate. */
exp::CellOutput
runBaseline(const std::string &bench, MemModel mem,
            const exp::RunOptions &options)
{
    const sim::SystemConfig config =
        makeConfig(secure::SecurityModel::Baseline, mem);
    sim::SyntheticWorkload workload(sim::benchmarkProfile(bench),
                                    config.l2.line_size);
    sim::System system(config, workload);
    system.run(options.warmup_instructions);
    system.beginMeasurement();
    system.run(options.measure_instructions);

    exp::CellOutput output;
    output.stats = system.stats();
    if (mem != MemModel::Flat) {
        output.extras.emplace_back(
            "row_hit_pct", system.channel().dram()->rowHitRate() * 100.0);
    }
    return output;
}

} // namespace

int
main(int argc, char **argv)
{
    const exp::BenchCli cli = exp::parseBenchCli(argc, argv);

    exp::ExperimentSpec spec;
    spec.name = "ablation_dram";
    spec.title = "Ablation A5: flat memory vs banked DRAM";
    spec.subtitle = "slowdown % vs the insecure baseline on the "
                    "*same* memory model";
    spec.benchmarks = {"ammp", "art", "gcc", "mcf", "mesa", "vortex"};
    spec.options = cli.options;

    const std::vector<std::pair<std::string, MemModel>> memories = {
        {"flat-100", MemModel::Flat},
        {"dram-open", MemModel::DramOpen},
        {"dram-closed", MemModel::DramClosed},
    };
    for (const auto &[label, mem] : memories) {
        const MemModel memory = mem;
        spec.addCustom("base " + label,
                       [memory](const std::string &bench,
                                const exp::RunOptions &options) {
                           return runBaseline(bench, memory, options);
                       });
        spec.add("XOM " + label, [memory](const std::string &) {
                return makeConfig(secure::SecurityModel::Xom, memory);
            }).baseline = "base " + label;
        spec.add("SNC-LRU " + label, [memory](const std::string &) {
                return makeConfig(secure::SecurityModel::OtpSnc,
                                  memory);
            }).baseline = "base " + label;
    }

    const exp::Report report = exp::Runner(cli.runner).run(spec);
    report.printVariantRows(std::cout);
    if (cli.write_json)
        report.writeJson(cli.json_path);
    return 0;
}
