/**
 * @file
 * Ablation A5: does the paper's conclusion survive realistic DRAM?
 *
 * The paper models memory as a flat 100-cycle latency, so
 * max(mem, crypto) + 1 always resolves in favour of the memory
 * access. Banked DRAM with row buffers returns row hits in fewer
 * cycles than the 50-cycle crypto engine needs only rarely (the
 * transfer still dominates), but conflicts stretch fills well past
 * the flat model. This bench re-runs the Figure 5 comparison on
 * open-page and closed-page DRAM: the XOM gap should stay large (its
 * +50 serial cycles do not depend on the memory model) while the
 * OTP fast path keeps hiding pad generation behind whichever
 * latency the DRAM produces.
 */

#include <iostream>

#include "bench/harness.hh"
#include "util/strutil.hh"
#include "util/table.hh"

using namespace secproc;

namespace
{

enum class MemModel
{
    Flat,
    DramOpen,
    DramClosed,
};

sim::SystemConfig
makeConfig(secure::SecurityModel model, MemModel mem)
{
    sim::SystemConfig config = sim::paperConfig(model);
    if (mem == MemModel::Flat)
        return config;
    config.channel.use_dram = true;
    config.channel.dram.num_banks = 8;
    config.channel.dram.row_bytes = 8 * 1024;
    config.channel.dram.row_hit_latency = 60;
    config.channel.dram.row_miss_latency = 110;
    config.channel.dram.row_conflict_latency = 160;
    config.channel.dram.bank_busy_cycles = 24;
    config.channel.dram.closed_page = mem == MemModel::DramClosed;
    return config;
}

} // namespace

int
main()
{
    const auto options = bench::HarnessOptions::fromEnvironment();
    const std::vector<std::string> benches = {"ammp", "art",  "gcc",
                                              "mcf",  "mesa", "vortex"};
    const std::vector<std::pair<std::string, MemModel>> memories = {
        {"flat-100", MemModel::Flat},
        {"dram-open", MemModel::DramOpen},
        {"dram-closed", MemModel::DramClosed},
    };

    util::Table table({"bench", "memory", "XOM %", "SNC-LRU %",
                       "row-hit rate"});
    std::vector<double> xom_avg(memories.size(), 0.0);
    std::vector<double> otp_avg(memories.size(), 0.0);

    for (const std::string &name : benches) {
        for (size_t m = 0; m < memories.size(); ++m) {
            const auto &[label, mem] = memories[m];
            const auto base = bench::runConfig(
                name, makeConfig(secure::SecurityModel::Baseline, mem),
                options);
            const auto xom = bench::runConfig(
                name, makeConfig(secure::SecurityModel::Xom, mem),
                options);
            const auto otp = bench::runConfig(
                name, makeConfig(secure::SecurityModel::OtpSnc, mem),
                options);

            const double xom_pct =
                bench::slowdownPct(base.cycles, xom.cycles);
            const double otp_pct =
                bench::slowdownPct(base.cycles, otp.cycles);
            xom_avg[m] += xom_pct;
            otp_avg[m] += otp_pct;

            // Re-measure the baseline's row-hit rate for context.
            std::string hit_rate = "-";
            if (mem != MemModel::Flat) {
                sim::SyntheticWorkload workload(
                    sim::benchmarkProfile(name), 128);
                sim::System system(
                    makeConfig(secure::SecurityModel::Baseline, mem),
                    workload);
                system.run(options.warmup_instructions +
                           options.measure_instructions);
                hit_rate = util::formatDouble(
                    system.channel().dram()->rowHitRate() * 100.0, 1);
            }
            table.addRow({name, label, util::formatDouble(xom_pct, 2),
                          util::formatDouble(otp_pct, 2), hit_rate});
        }
    }

    std::cout << "== Ablation A5: flat memory vs banked DRAM ==\n"
              << "(slowdown % vs the insecure baseline on the *same* "
                 "memory model)\n";
    table.print(std::cout);

    util::Table avg({"memory", "XOM avg %", "SNC-LRU avg %"});
    for (size_t m = 0; m < memories.size(); ++m) {
        avg.addRow({memories[m].first,
                    util::formatDouble(
                        xom_avg[m] / static_cast<double>(benches.size()),
                        2),
                    util::formatDouble(
                        otp_avg[m] / static_cast<double>(benches.size()),
                        2)});
    }
    avg.print(std::cout);
    return 0;
}
