/**
 * @file
 * Simulator component micro-benchmarks (google-benchmark): cache
 * and SNC operation costs, workload generation rate, and end-to-end
 * simulated instructions per second — the numbers that determine
 * figure-bench wall time.
 */

#include <benchmark/benchmark.h>

#include <filesystem>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/main_memory.hh"
#include "mem/virtual_memory.hh"
#include "secure/integrity.hh"
#include "secure/snc.hh"
#include "sim/profiles.hh"
#include "sim/system.hh"
#include "sim/trace_io.hh"
#include "util/random.hh"

namespace
{

using namespace secproc;

void
benchCacheAccess(benchmark::State &state)
{
    mem::CacheConfig config;
    config.size_bytes = 256 * 1024;
    config.assoc = static_cast<uint32_t>(state.range(0));
    config.line_size = 128;
    mem::Cache cache(config);
    util::Rng rng(1);

    for (auto _ : state) {
        const uint64_t addr = rng.nextRange(1 << 22);
        if (!cache.access(addr, false))
            benchmark::DoNotOptimize(cache.fill(addr, false, 0));
    }
}

void
benchSncQueryInstall(benchmark::State &state)
{
    secure::SncConfig config;
    config.capacity_bytes = 64 * 1024;
    config.assoc = static_cast<uint32_t>(state.range(0));
    secure::SequenceNumberCache snc(config);
    util::Rng rng(2);

    for (auto _ : state) {
        const uint64_t line_va = rng.nextRange(128 * 1024) * 128;
        if (!snc.query(line_va).has_value())
            benchmark::DoNotOptimize(snc.install(line_va, 1));
    }
}

void
benchWorkloadGeneration(benchmark::State &state)
{
    sim::SyntheticWorkload workload(sim::benchmarkProfile("gcc"));
    for (auto _ : state)
        benchmark::DoNotOptimize(&workload.next());
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
benchFullSystem(benchmark::State &state)
{
    const auto config = sim::paperConfig(secure::SecurityModel::OtpSnc);
    sim::SyntheticWorkload workload(sim::benchmarkProfile("parser"),
                                    config.l2.line_size);
    sim::System system(config, workload);
    for (auto _ : state)
        system.run(10'000);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            10'000);
}

void
benchDramAccess(benchmark::State &state)
{
    mem::DramConfig config;
    config.closed_page = state.range(0) != 0;
    mem::DramModel dram(config);
    util::Rng rng(3);
    uint64_t cycle = 0;
    for (auto _ : state) {
        cycle += 50;
        benchmark::DoNotOptimize(
            dram.access(cycle, rng.nextRange(1ull << 28) & ~127ull));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
benchSectoredSnc(benchmark::State &state)
{
    secure::SncConfig config;
    config.capacity_bytes = 64 * 1024;
    config.assoc = 0;
    config.sector_lines = static_cast<uint32_t>(state.range(0));
    secure::SequenceNumberCache snc(config);
    util::Rng rng(4);
    for (auto _ : state) {
        const uint64_t line_va = rng.nextRange(128 * 1024) * 128;
        if (!snc.query(line_va).has_value())
            benchmark::DoNotOptimize(snc.install(line_va, 1));
    }
}

void
benchMainMemoryLine(benchmark::State &state)
{
    // Page-directory walk cost: line-sized read/write pairs over a
    // pre-touched footprint (arg = footprint in MiB).
    mem::MainMemory memory;
    const uint64_t footprint = static_cast<uint64_t>(state.range(0))
                               << 20;
    std::array<uint8_t, 128> line{};
    for (uint64_t addr = 0; addr < footprint; addr += 4096)
        memory.writeLine(addr, line);

    util::Rng rng(5);
    for (auto _ : state) {
        const uint64_t addr = rng.nextRange(footprint) & ~127ull;
        memory.readLine(addr, line);
        memory.writeLine(addr, line);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
benchVmTranslate(benchmark::State &state)
{
    // Micro-TLB + radix page-table walk mix (arg = footprint pages;
    // 256 fits the TLB, larger values force walk-heavy traffic).
    mem::VirtualMemory vm;
    const uint64_t pages = static_cast<uint64_t>(state.range(0));
    for (uint64_t p = 0; p < pages; ++p)
        vm.translate(1, p * mem::VirtualMemory::kPageSize);

    util::Rng rng(6);
    for (auto _ : state) {
        const uint64_t vaddr =
            rng.nextRange(pages) * mem::VirtualMemory::kPageSize;
        benchmark::DoNotOptimize(vm.translate(1, vaddr));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
benchMacTableLookup(benchmark::State &state)
{
    // Flat MAC-table hit path (storedMac on the verify side).
    secure::IntegrityConfig config;
    config.mode = secure::IntegrityMode::MacBlocking;
    secure::IntegrityEngine engine(config);
    const uint64_t lines = 64 * 1024;
    secure::LineMac mac{};
    for (uint64_t i = 0; i < lines; ++i)
        engine.storeMac(i * config.line_size, mac);

    util::Rng rng(7);
    for (auto _ : state) {
        const uint64_t line_va =
            rng.nextRange(lines) * config.line_size;
        benchmark::DoNotOptimize(engine.storedMac(line_va));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
benchTraceReplay(benchmark::State &state)
{
    const auto path = std::filesystem::temp_directory_path() /
                      "secproc_micro_trace.bin";
    {
        sim::SyntheticWorkload workload(sim::benchmarkProfile("gzip"),
                                        128);
        sim::recordTrace(path.string(), workload, 100'000);
    }
    sim::TraceWorkload replay(path.string());
    for (auto _ : state)
        benchmark::DoNotOptimize(&replay.next());
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
    std::filesystem::remove(path);
}

BENCHMARK(benchCacheAccess)->Arg(4)->Arg(0);
BENCHMARK(benchSncQueryInstall)->Arg(32)->Arg(0);
BENCHMARK(benchWorkloadGeneration);
BENCHMARK(benchFullSystem);
BENCHMARK(benchDramAccess)->Arg(0)->Arg(1);
BENCHMARK(benchSectoredSnc)->Arg(1)->Arg(8);
BENCHMARK(benchMainMemoryLine)->Arg(4)->Arg(64);
BENCHMARK(benchVmTranslate)->Arg(256)->Arg(16384);
BENCHMARK(benchMacTableLookup);
BENCHMARK(benchTraceReplay);

} // namespace

BENCHMARK_MAIN();
