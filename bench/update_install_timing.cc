/**
 * @file
 * Cycle-plane cost of over-the-air installs: what does a background
 * OTA install do to foreground slowdown?
 *
 * The paper's machines hide the crypto engine behind memory access
 * for *demand* traffic; an install is different — it streams every
 * staged line through the channel and holds the engine for bulk
 * digesting, signature checks and the capsule unwrap. The grid
 * crosses install image size with crypto-engine latency (the 50-cycle
 * paper engine vs the 102-cycle stronger-cipher engine of Figure 10)
 * and with install pacing (fixed vs the foreground-priority channel
 * arbiter) and reports the headline number: percent slowdown of the
 * foreground OTP workload while installs stream continuously in the
 * background, against the same machine with the channel and engine
 * to itself.
 *
 * Extras per cell: the idle-machine duration of one install
 * (install_mcycles), installs completed during the measurement
 * window, and the update traffic moved.
 */

#include <iostream>

#include "crypto/latency.hh"
#include "exp/cell_cache.hh"
#include "exp/cli.hh"
#include "sim/profiles.hh"
#include "update/install_timing.hh"

using namespace secproc;

namespace
{

struct GridPoint
{
    const char *label;
    uint64_t image_bytes;
    uint32_t crypto_latency;
    update::InstallPacing pacing;
};

/**
 * The pacing axis: `fixed` is the PR-4 replay (the install takes
 * bandwidth whenever its pipeline is ready); `arbiter` queues every
 * transaction through the channel's foreground-priority arbiter, so
 * the install self-throttles into idle bus time.
 */
constexpr GridPoint kGrid[] = {
    {"install-256KB-c50", 256ull << 10, crypto::kPaperCryptoLatency,
     update::InstallPacing::Fixed},
    {"install-256KB-c102", 256ull << 10, crypto::kStrongCipherLatency,
     update::InstallPacing::Fixed},
    {"install-2MB-c50", 2ull << 20, crypto::kPaperCryptoLatency,
     update::InstallPacing::Fixed},
    {"install-2MB-c102", 2ull << 20, crypto::kStrongCipherLatency,
     update::InstallPacing::Fixed},
    {"install-256KB-c50-arbiter", 256ull << 10,
     crypto::kPaperCryptoLatency, update::InstallPacing::Arbiter},
    {"install-256KB-c102-arbiter", 256ull << 10,
     crypto::kStrongCipherLatency, update::InstallPacing::Arbiter},
    {"install-2MB-c50-arbiter", 2ull << 20,
     crypto::kPaperCryptoLatency, update::InstallPacing::Arbiter},
    {"install-2MB-c102-arbiter", 2ull << 20,
     crypto::kStrongCipherLatency, update::InstallPacing::Arbiter},
};

sim::SystemConfig
machineConfig(uint32_t crypto_latency)
{
    sim::SystemConfig config =
        sim::paperConfig(secure::SecurityModel::OtpSnc);
    config.protection.crypto.latency = crypto_latency;
    return config;
}

/**
 * The foreground workload with the machine to itself, via the
 * process-wide cell cache: cells that differ only in install size
 * share one (bench, config) alone run, and whichever worker claims
 * the key first simulates it while the rest wait on its future.
 */
sim::RunStats
measureAlone(const std::string &bench, const sim::SystemConfig &config,
             const exp::RunOptions &options)
{
    return exp::cachedRunCell(bench, config, options);
}

exp::RunFn
makeCell(const GridPoint &point)
{
    return [point](const std::string &bench,
                   const exp::RunOptions &options) {
        const sim::SystemConfig config =
            machineConfig(point.crypto_latency);
        const update::InstallPlan plan =
            update::InstallPlan::fromImageBytes(point.image_bytes,
                                                config.l2.line_size);

        // Idle-machine install duration: a private channel + engine,
        // nothing contending.
        mem::MemoryChannel idle_channel(config.channel);
        crypto::CryptoEngineModel idle_engine(config.protection.crypto);
        update::InstallTimingConfig itc;
        itc.line_bytes = config.l2.line_size;
        itc.pacing = point.pacing;
        update::InstallTiming idle_replay(itc, idle_channel,
                                          idle_engine);
        idle_replay.start(plan, 0);
        const uint64_t idle_cycles = idle_replay.replay();

        // Foreground alone, then foreground + continuous installs on
        // the same machine configuration and workload seed.
        const sim::RunStats alone =
            measureAlone(bench, config, options);

        const sim::WorkloadProfile profile =
            sim::benchmarkProfile(bench);
        sim::SyntheticWorkload workload(profile, config.l2.line_size);
        sim::System system(config, workload);
        update::InstallTiming timing(itc, system.channel(),
                                     system.cryptoEngine());
        timing.start(plan, 0, /*repeat=*/true);
        system.attachAgent(&timing);
        system.run(options.warmup_instructions);
        system.beginMeasurement();
        const uint64_t update_bytes_before =
            system.channel().updateBytes();
        const uint64_t installs_before = timing.installsCompleted();
        system.run(options.measure_instructions);

        exp::CellOutput cell;
        cell.stats = system.stats();
        cell.measured = exp::slowdownPct(alone.cycles,
                                         cell.stats.cycles);
        cell.extras.emplace_back("install_mcycles",
                                 static_cast<double>(idle_cycles) /
                                     1e6);
        cell.extras.emplace_back(
            "installs_completed",
            static_cast<double>(timing.installsCompleted() -
                                installs_before));
        cell.extras.emplace_back(
            "update_mbytes",
            static_cast<double>(system.channel().updateBytes() -
                                update_bytes_before) /
                1e6);
        if (point.pacing == update::InstallPacing::Arbiter) {
            cell.extras.emplace_back(
                "stall_mcycles",
                static_cast<double>(system.channel().agentStallCycles(
                    timing.agent())) /
                    1e6);
        }
        return cell;
    };
}

} // namespace

int
main(int argc, char **argv)
{
    const exp::BenchCli cli = exp::parseBenchCli(argc, argv);

    exp::ExperimentSpec spec;
    spec.name = "update_install_timing";
    spec.title = "Background OTA install interference "
                 "(shared channel + crypto engine)";
    spec.subtitle = "foreground slowdown in % vs the same machine "
                    "with no install running";
    spec.benchmarks = {"gcc", "mcf", "art"};
    spec.options = cli.options;
    for (const GridPoint &point : kGrid)
        spec.addCustom(point.label, makeCell(point));

    const exp::Report report = exp::Runner(cli.runner).run(spec);
    report.printTable(std::cout);
    if (cli.write_json)
        report.writeJson(cli.json_path);
    return 0;
}
