/**
 * @file
 * Figure 6: sensitivity of the OTP scheme to SNC capacity — 32KB,
 * 64KB and 128KB LRU SNCs (2-byte entries cover 2MB / 4MB / 8MB of
 * memory respectively).
 *
 * Paper averages: 3.25% / 1.28% / 0.51%.
 */

#include <iostream>

#include "exp/cli.hh"
#include "sim/profiles.hh"

using namespace secproc;

namespace
{

sim::SystemConfig
sncConfig(uint64_t capacity_bytes)
{
    auto config = sim::paperConfig(secure::SecurityModel::OtpSnc);
    config.protection.snc.capacity_bytes = capacity_bytes;
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    const exp::BenchCli cli = exp::parseBenchCli(argc, argv);

    exp::ExperimentSpec spec;
    spec.name = "fig06_snc_size";
    spec.title = "Figure 6: slowdown for different SNC sizes (LRU)";
    spec.subtitle = "program slowdown in % over the insecure baseline";
    spec.options = cli.options;
    spec.addBaseline("baseline", [](const std::string &) {
        return sim::paperConfig(secure::SecurityModel::Baseline);
    });
    spec.add(
        "32KB",
        [](const std::string &) { return sncConfig(32 * 1024); },
        [](const std::string &bench) {
            return sim::paperNumbers(bench).snc_lru_32k;
        });
    spec.add(
        "64KB",
        [](const std::string &) { return sncConfig(64 * 1024); },
        [](const std::string &bench) {
            return sim::paperNumbers(bench).snc_lru;
        });
    spec.add(
        "128KB",
        [](const std::string &) { return sncConfig(128 * 1024); },
        [](const std::string &bench) {
            return sim::paperNumbers(bench).snc_lru_128k;
        });

    const exp::Report report = exp::Runner(cli.runner).run(spec);
    report.printTable(std::cout);
    if (cli.write_json)
        report.writeJson(cli.json_path);
    return 0;
}
