/**
 * @file
 * Figure 6: sensitivity of the OTP scheme to SNC capacity — 32KB,
 * 64KB and 128KB LRU SNCs (2-byte entries cover 2MB / 4MB / 8MB of
 * memory respectively).
 *
 * Paper averages: 3.25% / 1.28% / 0.51%.
 */

#include "bench/harness.hh"

using namespace secproc;

namespace
{

sim::SystemConfig
sncConfig(uint64_t capacity_bytes)
{
    auto config = sim::paperConfig(secure::SecurityModel::OtpSnc);
    config.protection.snc.capacity_bytes = capacity_bytes;
    return config;
}

} // namespace

int
main()
{
    const auto options = bench::HarnessOptions::fromEnvironment();

    auto baseline = [](const std::string &) {
        return sim::paperConfig(secure::SecurityModel::Baseline);
    };

    std::vector<bench::FigureColumn> columns;
    columns.push_back(
        {"32KB",
         [](const std::string &) { return sncConfig(32 * 1024); },
         [](const std::string &bench) {
             return sim::paperNumbers(bench).snc_lru_32k;
         }});
    columns.push_back(
        {"64KB",
         [](const std::string &) { return sncConfig(64 * 1024); },
         [](const std::string &bench) {
             return sim::paperNumbers(bench).snc_lru;
         }});
    columns.push_back(
        {"128KB",
         [](const std::string &) { return sncConfig(128 * 1024); },
         [](const std::string &bench) {
             return sim::paperNumbers(bench).snc_lru_128k;
         }});

    bench::runSlowdownFigure(
        "Figure 6: slowdown for different SNC sizes (LRU)", baseline,
        columns, options);
    return 0;
}
