/**
 * @file
 * Figure 3: optimistic estimate of performance loss due to
 * encryption/decryption on the XOM memory path (50-cycle crypto,
 * 100-cycle memory).
 *
 * Paper average: 16.76% slowdown over the insecure baseline.
 */

#include <iostream>

#include "exp/cli.hh"
#include "sim/profiles.hh"

using namespace secproc;

int
main(int argc, char **argv)
{
    const exp::BenchCli cli = exp::parseBenchCli(argc, argv);

    exp::ExperimentSpec spec;
    spec.name = "fig03_xom_slowdown";
    spec.title = "Figure 3: performance loss due to "
                 "encryption/decryption (XOM)";
    spec.subtitle = "program slowdown in % over the insecure baseline";
    spec.options = cli.options;
    spec.addBaseline("baseline", [](const std::string &) {
        return sim::paperConfig(secure::SecurityModel::Baseline);
    });
    spec.add(
        "XOM",
        [](const std::string &) {
            return sim::paperConfig(secure::SecurityModel::Xom);
        },
        [](const std::string &bench) {
            return sim::paperNumbers(bench).xom_slowdown;
        });

    const exp::Report report = exp::Runner(cli.runner).run(spec);
    report.printTable(std::cout);
    if (cli.write_json)
        report.writeJson(cli.json_path);
    return 0;
}
