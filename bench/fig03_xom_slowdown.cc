/**
 * @file
 * Figure 3: optimistic estimate of performance loss due to
 * encryption/decryption on the XOM memory path (50-cycle crypto,
 * 100-cycle memory).
 *
 * Paper average: 16.76% slowdown over the insecure baseline.
 */

#include "bench/harness.hh"

using namespace secproc;

int
main()
{
    const auto options = bench::HarnessOptions::fromEnvironment();

    auto baseline = [](const std::string &) {
        return sim::paperConfig(secure::SecurityModel::Baseline);
    };

    std::vector<bench::FigureColumn> columns;
    columns.push_back(
        {"XOM",
         [](const std::string &) {
             return sim::paperConfig(secure::SecurityModel::Xom);
         },
         [](const std::string &bench) {
             return sim::paperNumbers(bench).xom_slowdown;
         }});

    bench::runSlowdownFigure(
        "Figure 3: performance loss due to encryption/decryption "
        "(XOM)",
        baseline, columns, options);
    return 0;
}
