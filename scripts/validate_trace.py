#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON export (and optionally a flat
metrics snapshot) produced by the observability plane.

Checks the structural invariants Perfetto / chrome://tracing rely on:

* the document is an object with a ``traceEvents`` array;
* every event has ``name``, ``ph``, ``pid`` and an integer ``ts``
  (metadata rows excepted for ``ts``), with ``ph`` limited to the
  phases the exporter emits (``M``, ``X``, ``i``);
* duration events (``X``) carry a non-negative integer ``dur``;
* instant events (``i``) carry a scope ``s``;
* there is a ``process_name`` metadata row and at least one named
  track (a ``thread_name`` metadata row), and every non-metadata
  event's ``tid`` belongs to a named track;
* at least one non-metadata event exists (an empty trace from a
  traced run means the wiring is broken).

With ``--metrics FILE``, also checks the file is one flat JSON object
mapping dotted metric names to numbers.

Exit status: 0 when every check passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ALLOWED_PHASES = {"M", "X", "i"}


def fail(errors, message):
    errors.append(message)


def validate_trace(path: Path, errors: list) -> None:
    try:
        with path.open() as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        fail(errors, f"{path}: cannot parse: {exc}")
        return

    if not isinstance(doc, dict):
        fail(errors, f"{path}: top level is not an object")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(errors, f"{path}: no traceEvents array")
        return

    named_tracks = set()
    has_process_name = False
    payload_events = 0
    for i, event in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(event, dict):
            fail(errors, f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid"):
            if key not in event:
                fail(errors, f"{where}: missing '{key}'")
        ph = event.get("ph")
        if ph not in ALLOWED_PHASES:
            fail(errors, f"{where}: unexpected phase {ph!r}")
            continue
        if ph == "M":
            if event.get("name") == "process_name":
                has_process_name = True
            elif event.get("name") == "thread_name":
                if not isinstance(event.get("tid"), int):
                    fail(errors, f"{where}: thread_name without tid")
                elif not event.get("args", {}).get("name"):
                    fail(errors, f"{where}: unnamed track")
                else:
                    named_tracks.add(event["tid"])
            continue

        payload_events += 1
        ts = event.get("ts")
        if not isinstance(ts, int) or ts < 0:
            fail(errors, f"{where}: bad ts {ts!r}")
        if not isinstance(event.get("tid"), int):
            fail(errors, f"{where}: missing tid")
        elif event["tid"] not in named_tracks:
            fail(errors,
                 f"{where}: tid {event['tid']} has no thread_name row")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, int) or dur < 0:
                fail(errors, f"{where}: duration with bad dur {dur!r}")
        if ph == "i" and "s" not in event:
            fail(errors, f"{where}: instant without scope 's'")

    if not has_process_name:
        fail(errors, f"{path}: no process_name metadata row")
    if not named_tracks:
        fail(errors, f"{path}: no named tracks")
    if payload_events == 0:
        fail(errors, f"{path}: no duration/instant events")
    if not errors:
        print(f"{path}: OK — {payload_events} events on "
              f"{len(named_tracks)} tracks")


def validate_metrics(path: Path, errors: list) -> None:
    try:
        with path.open() as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        fail(errors, f"{path}: cannot parse: {exc}")
        return
    if not isinstance(doc, dict) or not doc:
        fail(errors, f"{path}: not a non-empty flat object")
        return
    for name, value in doc.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            fail(errors, f"{path}: metric {name!r} is not a number")
    if not errors:
        print(f"{path}: OK — {len(doc)} metrics")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("trace", type=Path,
                        help="Chrome trace-event JSON file")
    parser.add_argument("--metrics", type=Path, default=None,
                        help="flat metrics snapshot JSON to validate")
    args = parser.parse_args()

    errors: list = []
    validate_trace(args.trace, errors)
    if args.metrics is not None:
        validate_metrics(args.metrics, errors)

    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
