#!/usr/bin/env python3
"""Summarise and validate a fleet rollout report produced by
``fleet_tool --out`` (a ``RolloutResult::toJson`` document).

Prints a per-wave summary table, then checks the structural
invariants the simulator guarantees:

* ``schema_version`` 1 and ``kind`` ``fleet_rollout``;
* ``fleet``: ``eligible + skipped_no_quirk == devices``, at least
  one shard, every ground-truth device reported;
* waves: indices dense from 0, ``open_cycle`` non-decreasing,
  ``close_cycle >= open_cycle``, ``offered == updated + failed``,
  ``failure_rate`` consistent with the counts, ``p50 <= p99``,
  and a ``halted_after`` wave only where the policy's threshold was
  actually met;
* exactly the halted waves are followed by rollback waves
  (``totals.rollback_waves == totals.halts`` when the policy rolls
  back on halt), and rollback waves fail nobody;
* totals cross-check the per-wave sums, and ``device_hours.samples``
  equals the healthy install count;
* a ``converged`` report's ``convergence_cycle`` is the latest wave
  close, and ground-truth devices are within the stated tolerance.

Exit status: 0 when every check passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def fail(errors, message):
    errors.append(message)


def print_waves(doc) -> None:
    rows = [("wave", "kind", "release", "offered", "updated",
             "failed", "fail%", "p50 h", "p99 h", "halted")]
    for wave in doc.get("waves", []):
        rows.append((
            str(wave.get("index", "?")),
            str(wave.get("kind", "?")),
            str(wave.get("release", "?")),
            str(wave.get("offered", "?")),
            str(wave.get("updated", "?")),
            str(wave.get("failed", "?")),
            f"{100.0 * wave.get('failure_rate', 0.0):.2f}",
            f"{wave.get('p50_device_hours', 0.0):.2f}",
            f"{wave.get('p99_device_hours', 0.0):.2f}",
            "HALT" if wave.get("halted_after") else "",
        ))
    widths = [max(len(row[col]) for row in rows)
              for col in range(len(rows[0]))]
    for row in rows:
        print("  ".join(cell.rjust(width)
                        for cell, width in zip(row, widths)))


def validate(path: Path, doc, errors: list) -> None:
    if doc.get("schema_version") != 1:
        fail(errors, f"{path}: schema_version is not 1")
    if doc.get("kind") != "fleet_rollout":
        fail(errors, f"{path}: kind is not 'fleet_rollout'")

    policy = doc.get("policy", {})
    fleet = doc.get("fleet", {})
    totals = doc.get("totals", {})
    waves = doc.get("waves", [])

    if fleet.get("shards", 0) < 1:
        fail(errors, f"{path}: fleet has no shards")
    if (fleet.get("eligible", 0) + fleet.get("skipped_no_quirk", 0)
            != fleet.get("devices", -1)):
        fail(errors,
             f"{path}: eligible + skipped_no_quirk != devices")

    threshold = policy.get("failure_threshold", 1.0)
    min_sample = policy.get("min_failure_sample", 0)
    rollback_on_halt = policy.get("rollback_on_halt", False)

    halts = 0
    rollback_waves = 0
    sum_updated = 0
    sum_failed = 0
    healthy_updates = 0
    last_open = -1
    last_close = 0
    for i, wave in enumerate(waves):
        where = f"{path}: waves[{i}]"
        if wave.get("index") != i:
            fail(errors, f"{where}: index {wave.get('index')} "
                         f"is not dense")
        if wave.get("kind") not in ("canary", "expansion",
                                    "rollback"):
            fail(errors, f"{where}: unknown kind "
                         f"{wave.get('kind')!r}")
        if wave.get("open_cycle", 0) < last_open:
            fail(errors, f"{where}: waves not ordered by open_cycle")
        last_open = wave.get("open_cycle", 0)
        if wave.get("close_cycle", 0) < wave.get("open_cycle", 0):
            fail(errors, f"{where}: close_cycle before open_cycle")
        last_close = max(last_close, wave.get("close_cycle", 0))

        offered = wave.get("offered", 0)
        updated = wave.get("updated", 0)
        failed = wave.get("failed", 0)
        if offered != updated + failed:
            fail(errors, f"{where}: offered != updated + failed")
        if offered > 0:
            rate = failed / offered
            if abs(rate - wave.get("failure_rate", -1)) > 1e-9:
                fail(errors, f"{where}: failure_rate inconsistent "
                             f"with counts")
        if wave.get("p50_device_hours", 0.0) > \
                wave.get("p99_device_hours", 0.0) + 1e-9:
            fail(errors, f"{where}: p50 above p99")

        if wave.get("halted_after"):
            halts += 1
            if offered < min_sample:
                fail(errors, f"{where}: halted below the policy's "
                             f"min_failure_sample")
            if wave.get("failure_rate", 0.0) < threshold:
                fail(errors, f"{where}: halted below the policy's "
                             f"failure threshold")
        if wave.get("kind") == "rollback":
            rollback_waves += 1
            if failed != 0:
                fail(errors, f"{where}: rollback wave reported "
                             f"failures")
        else:
            healthy_updates += updated
        sum_updated += updated
        sum_failed += failed

    if totals.get("halts") != halts:
        fail(errors, f"{path}: totals.halts != halted waves")
    if totals.get("rollback_waves") != rollback_waves:
        fail(errors,
             f"{path}: totals.rollback_waves != rollback waves")
    if rollback_on_halt and rollback_waves != halts:
        fail(errors, f"{path}: policy rolls back on halt but "
                     f"rollback waves != halts")
    if totals.get("failed_health") != sum_failed:
        fail(errors,
             f"{path}: totals.failed_health != per-wave failures")
    if totals.get("updated", 0) + totals.get("rolled_back", 0) \
            != sum_updated:
        fail(errors, f"{path}: totals.updated + rolled_back != "
                     f"per-wave updated sum")

    hours = doc.get("device_hours", {})
    if hours.get("samples") != totals.get("updated"):
        fail(errors, f"{path}: device_hours.samples != "
                     f"totals.updated")
    if hours.get("p50", 0.0) > hours.get("p99", 0.0) + 1e-9:
        fail(errors, f"{path}: device_hours p50 above p99")

    if doc.get("converged"):
        if doc.get("convergence_cycle") != last_close:
            fail(errors, f"{path}: convergence_cycle is not the "
                         f"latest wave close")

    tolerance = fleet.get("tolerance", 0.0)
    for i, gt in enumerate(doc.get("ground_truth", [])):
        where = f"{path}: ground_truth[{i}]"
        if not gt.get("functional_ok"):
            fail(errors, f"{where}: install did not activate")
        if not gt.get("within_tolerance"):
            fail(errors, f"{where}: rel_error "
                         f"{gt.get('rel_error', -1.0):.3f} exceeds "
                         f"tolerance {tolerance}")
    if len(doc.get("ground_truth", [])) != \
            fleet.get("ground_truth_devices", -1):
        fail(errors,
             f"{path}: ground_truth count != fleet declaration")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("report", type=Path,
                        help="rollout report JSON from fleet_tool "
                             "--out")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary table")
    args = parser.parse_args()

    errors: list = []
    try:
        with args.report.open() as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {args.report}: cannot parse: {exc}",
              file=sys.stderr)
        return 1
    if not isinstance(doc, dict):
        print(f"error: {args.report}: top level is not an object",
              file=sys.stderr)
        return 1

    if not args.quiet:
        fleet = doc.get("fleet", {})
        policy = doc.get("policy", {})
        print(f"fleet rollout: policy {policy.get('name', '?')}, "
              f"{fleet.get('devices', '?')} devices "
              f"({fleet.get('eligible', '?')} eligible)")
        print_waves(doc)
        hours = doc.get("device_hours", {})
        print(f"converged: {doc.get('converged')} at "
              f"{doc.get('convergence_hours', 0.0):.2f} h; "
              f"p99 device-hours "
              f"{hours.get('p99', 0.0):.2f}")

    validate(args.report, doc, errors)
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if not errors:
        print(f"{args.report}: OK — {len(doc.get('waves', []))} "
              f"waves validated")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
