#!/usr/bin/env python3
"""Compare BENCH_*.json experiment reports against committed baselines.

For every ``BENCH_<name>.json`` in the baseline directory, the current
directory must contain a report with the same name; each baseline
cell's ``measured`` value is then compared with the current run's and
the build fails when any cell regresses past the tolerance.

What counts as a regression depends on the experiment:

* Simulation experiments (the default) report percent slowdowns
  derived from deterministic cycle counts, so *higher* measured values
  are regressions.
* Throughput-style experiments listed in ``RULES`` with
  ``higher_is_better`` fail when the value *drops*. For
  ``rsa_throughput`` only the machine-portable ``speedup-*`` cells
  (fast engine over schoolbook engine, measured in the same run on
  the same machine) are gated; absolute ops/s do not transfer between
  machines and are reported for information only.

Improvements never fail the gate.

Raw harness speed is gated separately: when the baseline directory
contains a ``speed_floors.json`` (experiment name -> minimum
``profile.sim_cycles_per_second``), each listed experiment's current
report must clear its floor. The floors are committed deliberately
conservative wall-clock numbers (see bench/baselines/README.md) so
slow CI runners do not flap, while a kernel-scheduling or caching
regression that slows simulation by an order of magnitude still
fails the build.

Re-baselining: rerun the gated benches with the same SECPROC_WARMUP /
SECPROC_MEASURE the CI perf-gate job uses (see
.github/workflows/ci.yml), then copy the fresh reports over
``bench/baselines/`` and commit them. Ratio cells may be committed
with conservative floors instead of measured values; see
bench/baselines/README.md.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

# Per-experiment comparison rules; experiments not listed use the
# defaults (lower-is-better, every cell with a "measured" value,
# run-length options must match the baseline).
RULES = {
    "rsa_throughput": {
        "higher_is_better": True,
        "variant_regex": r"^speedup-",
        # Cells are wall-clock rates/ratios, not instruction-count
        # driven; warmup/measure options are irrelevant to them, and
        # the ratios wobble a little run-to-run, so they get a wider
        # absolute floor than the deterministic simulation cells.
        "check_options": False,
        "abs_floor": 0.5,
    },
}

GATED_OPTIONS = ("warmup_instructions", "measure_instructions")


def load_cells(doc):
    """Map (variant, bench) -> measured for cells that report one.

    Only ``cells[*].measured`` is gated. Everything else in the
    report — per-cell ``stats``/``extras`` and in particular the
    top-level ``profile`` object (wall-clock seconds, cells/s,
    sim-cycles/s; machine-dependent by construction) — is
    informational and exempt from the perf gate.
    """
    return {
        (cell["variant"], cell["bench"]): cell["measured"]
        for cell in doc.get("cells", [])
        if "measured" in cell
    }


def check_report(name, baseline, current, args, failures, rows):
    rule = RULES.get(name, {})
    higher_is_better = rule.get("higher_is_better", False)
    variant_re = re.compile(rule.get("variant_regex", ""))

    if rule.get("check_options", True):
        for key in GATED_OPTIONS:
            base_opt = baseline.get("options", {}).get(key)
            cur_opt = current.get("options", {}).get(key)
            if base_opt != cur_opt:
                failures.append(
                    f"{name}: option {key} is {cur_opt} but the "
                    f"baseline was recorded with {base_opt}; rerun "
                    f"with the baseline's SECPROC_* settings or "
                    f"re-baseline"
                )
                return

    abs_floor = rule.get("abs_floor", args.abs_floor)
    base_cells = load_cells(baseline)
    cur_cells = load_cells(current)
    for key, base in sorted(base_cells.items()):
        variant, bench = key
        if not variant_re.search(variant):
            continue
        if key not in cur_cells:
            failures.append(
                f"{name}: cell ({variant}, {bench}) is in the "
                f"baseline but missing from the current report"
            )
            continue
        cur = cur_cells[key]
        margin = max(args.tolerance * abs(base), abs_floor)
        if higher_is_better:
            regressed = cur < base - margin
            improved = cur > base + margin
        else:
            regressed = cur > base + margin
            improved = cur < base - margin
        status = (
            "REGRESSION" if regressed else
            "improved" if improved else "ok"
        )
        delta = cur - base
        rows.append((name, variant, bench, base, cur, delta, status))
        if regressed:
            failures.append(
                f"{name}: ({variant}, {bench}) regressed: "
                f"baseline {base:g}, current {cur:g} "
                f"(allowed margin {margin:g})"
            )


def check_speed_floors(args, failures):
    """Gate profile.sim_cycles_per_second against committed floors.

    Unlike the per-cell checks, this reads the (otherwise exempt)
    ``profile`` object: the floor file commits to a *minimum host
    simulation rate*, not to an exact value, so it stays meaningful
    across machines while still catching order-of-magnitude harness
    slowdowns.
    """
    floors_path = args.baseline_dir / "speed_floors.json"
    if not floors_path.exists():
        return
    with floors_path.open() as fh:
        floors = json.load(fh)
    for name, floor in sorted(floors.items()):
        current_path = args.current_dir / f"BENCH_{name}.json"
        if not current_path.exists():
            failures.append(
                f"{name}: speed floor is committed but "
                f"{current_path} was not produced"
            )
            continue
        with current_path.open() as fh:
            profile = json.load(fh).get("profile", {})
        rate = profile.get("sim_cycles_per_second", 0.0)
        status = "ok" if rate >= floor else "TOO SLOW"
        print(f"speed floor  {name}: {rate:,.0f} sim cycles/s "
              f"(floor {floor:,.0f})  {status}")
        if rate < floor:
            failures.append(
                f"{name}: simulated {rate:,.0f} cycles/s, below the "
                f"committed floor of {floor:,.0f}; the harness got "
                f"slower (kernel scheduling, crypto, or cache "
                f"regression) or the floor needs re-baselining "
                f"(bench/baselines/README.md)"
            )


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--baseline-dir", type=Path, default=Path("bench/baselines"),
        help="directory with committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--current-dir", type=Path, default=Path("."),
        help="directory with freshly produced BENCH_*.json reports",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="relative regression tolerance (0.25 = 25%%)",
    )
    parser.add_argument(
        "--abs-floor", type=float, default=0.02,
        help="absolute slack in value units for near-zero baselines; "
             "kept tiny because simulation cells are deterministic "
             "(experiments in RULES may override it)",
    )
    args = parser.parse_args()

    baseline_files = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baseline_files:
        print(f"error: no BENCH_*.json baselines under "
              f"{args.baseline_dir}", file=sys.stderr)
        return 2

    failures = []
    rows = []
    for path in baseline_files:
        name = path.stem.removeprefix("BENCH_")
        current_path = args.current_dir / path.name
        if not current_path.exists():
            failures.append(
                f"{name}: {current_path} not found; the gated bench "
                f"did not run or did not emit JSON"
            )
            continue
        with path.open() as fh:
            baseline = json.load(fh)
        with current_path.open() as fh:
            current = json.load(fh)
        check_report(name, baseline, current, args, failures, rows)

    check_speed_floors(args, failures)

    if rows:
        header = ("experiment", "variant", "bench", "baseline",
                  "current", "delta", "status")
        widths = [
            max(len(header[i]),
                max(len(f"{r[i]:.3f}") if isinstance(r[i], float)
                    else len(str(r[i])) for r in rows))
            for i in range(len(header))
        ]
        fmt = "  ".join(f"{{:<{w}}}" for w in widths)
        print(fmt.format(*header))
        for r in rows:
            cols = [f"{c:.3f}" if isinstance(c, float) else str(c)
                    for c in r]
            print(fmt.format(*cols))

    if failures:
        print(f"\nperf gate FAILED ({len(failures)} problem(s)):",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        print("\nIf the change is intentional, re-baseline: rerun the "
              "benches with the CI SECPROC_* settings and copy the "
              "new BENCH_*.json into bench/baselines/ (see "
              "scripts/check_bench_regression.py --help).",
              file=sys.stderr)
        return 1

    print(f"\nperf gate passed: {len(rows)} cell(s) within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
