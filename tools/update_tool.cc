/**
 * @file
 * update_tool — the secure-update lifecycle from the command line.
 *
 * Drives both sides of the update flow over real files: vendor-side
 * key generation and bundle building, device-side verification,
 * install and attestation. State that a fielded device would keep in
 * fuses (the rollback counter bank) persists in a state file, so
 * downgrade protection holds across invocations.
 *
 *   update_tool keygen  --out=vendor --bits=512 --seed=7
 *   update_tool keygen  --out=cpu    --bits=512 --seed=8
 *   update_tool build   --vendor=vendor --processor=cpu.pub \
 *                       --title=firmware --version=2 --counter=2 \
 *                       --out=fw2.bundle [--text=payload.bin]
 *   update_tool info    --bundle=fw2.bundle
 *   update_tool verify  --bundle=fw2.bundle --vendor=vendor.pub \
 *                       --processor=cpu --state=device.state
 *   update_tool install --bundle=fw2.bundle --vendor=vendor.pub \
 *                       --processor=cpu --state=device.state
 *   update_tool attest  --processor=cpu --state=device.state \
 *                       --nonce=deadbeef
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/cli.hh"
#include "obs/trace.hh"
#include "secure/engines.hh"
#include "update/attestation.hh"
#include "update/delta.hh"
#include "update/image_builder.hh"
#include "update/update_engine.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

using namespace secproc;
using namespace secproc::update;

namespace
{

[[noreturn]] void
usage(int code)
{
    std::cout <<
        "usage: update_tool <command> [options]\n"
        "  keygen  --out=PREFIX [--bits=512] [--seed=N]\n"
        "          write PREFIX.pub / PREFIX.priv\n"
        "  build   --vendor=PREFIX --processor=PUBFILE --out=FILE\n"
        "          [--title=NAME] [--version=N] [--counter=N]\n"
        "          [--text=FILE] [--scheme=otp|xom]\n"
        "          [--cipher=des|3des|aes]\n"
        "          [--delta-base=BUNDLE]  cut a signed delta against\n"
        "          that base release instead of a full bundle (use\n"
        "          the same --seed the base was built with, or the\n"
        "          key streams diverge and the delta stops shrinking)\n"
        "  info    --bundle=FILE\n"
        "  verify  --bundle=FILE --vendor=PUBFILE --processor=PREFIX\n"
        "          [--state=FILE]\n"
        "  install --bundle=FILE --vendor=PUBFILE --processor=PREFIX\n"
        "          [--state=FILE]\n"
        "          [--delta-base=BUNDLE]  --bundle names a delta\n"
        "          file: install the base first (the factory image a\n"
        "          fielded device already runs), then reconstruct and\n"
        "          activate the delta slot-to-slot\n"
        "  attest  --processor=PREFIX --vendor=PUBFILE --bundle=FILE\n"
        "          [--state=FILE] [--nonce=HEX]\n"
        "  any verify/install command also accepts --trace-out=FILE:\n"
        "          write the engine's security-decision instants as a\n"
        "          Chrome/Perfetto trace (steps stamped 0,1,... — the\n"
        "          functional engine has no cycle clock)\n";
    std::exit(code);
}

// ------------------------------------------------------------- file I/O

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatal_if(!in, "cannot open '", path, "'");
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    fatal_if(!out, "cannot write '", path, "'");
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

/** Keys persist as hex lines: "n <hex>" then "e <hex>" / "d <hex>". */
void
writeKeyFile(const std::string &path, const std::string &kind,
             const crypto::BigInt &n, const crypto::BigInt &exponent)
{
    std::ofstream out(path, std::ios::trunc);
    fatal_if(!out, "cannot write '", path, "'");
    out << "n " << n.toHex() << "\n"
        << kind << " " << exponent.toHex() << "\n";
}

std::pair<crypto::BigInt, crypto::BigInt>
readKeyFile(const std::string &path, const std::string &kind)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot open key file '", path, "'");
    std::string label_n, hex_n, label_x, hex_x;
    in >> label_n >> hex_n >> label_x >> hex_x;
    fatal_if(label_n != "n" || label_x != kind,
             "'", path, "' is not a ", kind == "e" ? "public" : "private",
             " key file");
    return {crypto::BigInt::fromHex(hex_n),
            crypto::BigInt::fromHex(hex_x)};
}

crypto::RsaPublicKey
readPublicKey(const std::string &path)
{
    const auto [n, e] = readKeyFile(path, "e");
    return {n, e};
}

crypto::RsaPrivateKey
readPrivateKey(const std::string &path)
{
    const auto [n, d] = readKeyFile(path, "d");
    return {n, d};
}

/** "--processor=PREFIX" names PREFIX.pub + PREFIX.priv. */
crypto::RsaKeyPair
readKeyPair(const std::string &prefix)
{
    return {readPublicKey(prefix + ".pub"),
            readPrivateKey(prefix + ".priv")};
}

// ------------------------------------------------------------- options

struct Options
{
    std::string command;
    std::string out;
    std::string vendor;
    std::string processor;
    std::string bundle;
    std::string state;
    std::string title = "firmware";
    std::string text;
    std::string scheme = "otp";
    std::string cipher = "des";
    std::string nonce_hex;
    std::string trace_out;
    std::string delta_base;
    unsigned bits = 512;
    uint64_t seed = 1;
    uint32_t version = 1;
    uint64_t counter = 1;
};

Options
parse(int argc, char **argv)
{
    using exp::flag;
    using exp::flagU64;
    using exp::flagValue;

    if (argc < 2)
        usage(1);
    Options options;
    options.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        uint64_t n = 0;
        if (flag(arg, "--help") || flag(arg, "-h"))
            usage(0);
        else if (flagValue(arg, "--out=", &options.out) ||
                 flagValue(arg, "--vendor=", &options.vendor) ||
                 flagValue(arg, "--processor=",
                           &options.processor) ||
                 flagValue(arg, "--bundle=", &options.bundle) ||
                 flagValue(arg, "--state=", &options.state) ||
                 flagValue(arg, "--title=", &options.title) ||
                 flagValue(arg, "--text=", &options.text) ||
                 flagValue(arg, "--scheme=", &options.scheme) ||
                 flagValue(arg, "--cipher=", &options.cipher) ||
                 flagValue(arg, "--nonce=", &options.nonce_hex) ||
                 flagValue(arg, "--delta-base=",
                           &options.delta_base) ||
                 flagValue(arg, "--trace-out=",
                           &options.trace_out) ||
                 flagU64(arg, "--seed=", &options.seed) ||
                 flagU64(arg, "--counter=", &options.counter)) {
        } else if (flagU64(arg, "--bits=", &n))
            options.bits = static_cast<unsigned>(n);
        else if (flagU64(arg, "--version=", &n))
            options.version = static_cast<uint32_t>(n);
        else
            usage(1);
    }
    return options;
}

secure::CipherKind
cipherKind(const std::string &name)
{
    if (name == "des") return secure::CipherKind::Des;
    if (name == "3des") return secure::CipherKind::TripleDes;
    if (name == "aes") return secure::CipherKind::Aes128;
    fatal("unknown cipher '", name, "' (des | 3des | aes)");
}

// ------------------------------------------------------------ commands

UpdateBundle loadBundle(const std::string &path);

int
cmdKeygen(const Options &options)
{
    fatal_if(options.out.empty(), "keygen needs --out=PREFIX");
    util::Rng rng(options.seed);
    const auto pair = crypto::rsaGenerate(options.bits, rng);
    writeKeyFile(options.out + ".pub", "e", pair.pub.n, pair.pub.e);
    writeKeyFile(options.out + ".priv", "d", pair.priv.n, pair.priv.d);
    // Separate signing identity for attestation quotes — never the
    // capsule-unwrap key (see UpdateEngine::setAttestationKey).
    const auto att = crypto::rsaGenerate(options.bits, rng);
    writeKeyFile(options.out + ".att.pub", "e", att.pub.n, att.pub.e);
    writeKeyFile(options.out + ".att.priv", "d", att.priv.n,
                 att.priv.d);
    std::cout << "wrote " << options.out
              << ".pub / .priv (+ .att.pub / .att.priv) ("
              << options.bits << "-bit RSA)\n"
              << "processor id: "
              << util::toHex(processorId(pair.pub).data(), 16)
              << "...\n";
    return 0;
}

int
cmdBuild(const Options &options)
{
    fatal_if(options.vendor.empty() || options.processor.empty() ||
                 options.out.empty(),
             "build needs --vendor, --processor and --out");

    std::optional<UpdateBundle> base;
    if (!options.delta_base.empty())
        base = loadBundle(options.delta_base);

    xom::PlainProgram program;
    program.title = options.title;
    program.entry_point = 0x400000;
    xom::PlainProgram::PlainSection text;
    text.name = ".text";
    text.vaddr = 0x400000;
    if (!options.text.empty()) {
        text.bytes = readFile(options.text);
    } else if (base.has_value()) {
        // Demo payload for a delta release: the base release's demo
        // payload with ~10% of its 64-byte blocks rewritten — the
        // block-level similarity a delta exploits.
        const uint32_t base_version = base->manifest.image_version;
        util::Rng rng(options.seed + base_version);
        text.bytes.resize(16 * 128);
        rng.fillBytes(text.bytes.data(), text.bytes.size());
        constexpr uint64_t kBlock = 64;
        const uint64_t blocks = text.bytes.size() / kBlock;
        util::Rng mutate(options.seed + options.version);
        for (uint64_t c = 0; c < blocks / 10 + 1; ++c) {
            const uint64_t begin = mutate.nextRange(blocks) * kBlock;
            mutate.fillBytes(text.bytes.data() + begin, kBlock);
        }
    } else {
        // Deterministic demo payload derived from the release.
        util::Rng rng(options.seed + options.version);
        text.bytes.resize(16 * 128);
        rng.fillBytes(text.bytes.data(), text.bytes.size());
    }
    program.sections = {text};

    UpdateSpec spec;
    spec.image_version = options.version;
    spec.rollback_counter = options.counter;
    spec.scheme = options.scheme == "xom" ? xom::VendorScheme::Xom
                                          : xom::VendorScheme::Otp;
    spec.cipher = cipherKind(options.cipher);
    if (base.has_value())
        spec.base_digest = sha256DigestOfImage(base->image);

    util::Rng rng(options.seed);
    const ImageBuilder builder(readKeyPair(options.vendor));
    const UpdateBundle bundle =
        builder.build(program, spec, readPublicKey(options.processor),
                      rng);
    if (base.has_value()) {
        const DeltaBundle delta = builder.buildDelta(*base, bundle);
        const std::vector<uint8_t> delta_bytes = delta.serialize();
        writeFile(options.out, delta_bytes);
        std::cout << "wrote '" << options.out << "': delta "
                  << options.title << " v"
                  << base->manifest.image_version << " -> v"
                  << options.version << ", " << delta_bytes.size()
                  << " delta bytes vs "
                  << bundle.serialize().size() << " full\n";
        return 0;
    }
    writeFile(options.out, bundle.serialize());
    std::cout << "wrote '" << options.out << "': " << options.title
              << " v" << options.version << ", rollback counter "
              << options.counter << ", "
              << bundle.image.totalBytes() << " image bytes\n";
    return 0;
}

UpdateBundle
loadBundle(const std::string &path)
{
    const auto parsed = UpdateBundle::deserialize(readFile(path));
    fatal_if(!parsed.has_value(),
             "'", path, "' is not a well-formed update bundle");
    return *parsed;
}

int
cmdInfo(const Options &options)
{
    fatal_if(options.bundle.empty(), "info needs --bundle");
    const UpdateBundle bundle = loadBundle(options.bundle);
    const UpdateManifest &m = bundle.manifest;
    std::cout << "title:            " << m.title << "\n"
              << "image version:    " << m.image_version << "\n"
              << "rollback counter: " << m.rollback_counter << "\n"
              << "target processor: "
              << util::toHex(m.processor_id.data(), 16) << "...\n"
              << "entry point:      "
              << util::formatHex(m.entry_point) << "\n"
              << "line size:        " << m.line_size << "\n"
              << "image digest:     "
              << util::toHex(m.image_digest.data(), 16) << "...\n"
              << "sections:\n";
    for (const SectionDigest &sd : m.sections) {
        std::cout << "  " << sd.name << " @ "
                  << util::formatHex(sd.vaddr) << ", " << sd.size
                  << " bytes, sha256 "
                  << util::toHex(sd.digest.data(), 8) << "...\n";
    }
    return 0;
}

/** Device state file: rollback store bytes (fuse-bank snapshot). */
RollbackStore
loadState(const std::string &path)
{
    if (path.empty())
        return RollbackStore();
    std::ifstream probe(path, std::ios::binary);
    if (!probe)
        return RollbackStore(); // first boot
    const auto parsed = RollbackStore::deserialize(readFile(path));
    fatal_if(!parsed.has_value(),
             "state file '", path, "' is corrupt");
    return *parsed;
}

/**
 * Delta flow: --bundle names a delta file and --delta-base the full
 * bundle of the release the device already runs. The tool recreates
 * that fielded state (base installed and active), then verifies or
 * installs the delta against the active slot — a BaseMismatch is the
 * signal to go fetch the full bundle instead.
 */
int
cmdDeltaVerifyOrInstall(const Options &options, bool install)
{
    const UpdateBundle base = loadBundle(options.delta_base);
    const auto delta =
        DeltaBundle::deserialize(readFile(options.bundle));
    fatal_if(!delta.has_value(),
             "'", options.bundle,
             "' is not a well-formed delta bundle");

    RollbackStore rollback = loadState(options.state);
    secure::KeyTable keys;
    UpdateEngine updater(readPublicKey(options.vendor),
                         readKeyPair(options.processor), keys,
                         rollback);

    mem::MemoryChannel channel;
    secure::ProtectionConfig config;
    config.line_size = base.manifest.line_size;
    config.snc.l2_line_size = base.manifest.line_size;
    auto engine = secure::makeProtectionEngine(config, channel, keys);
    mem::MainMemory memory;
    mem::VirtualMemory vm;

    const VerifyResult base_admission = updater.verify(base);
    fatal_if(!base_admission.ok(), "base bundle refused: ",
             updateStatusName(base_admission.status),
             " -- ", base_admission.detail);
    const InstallResult base_install =
        updater.install(base, 1, memory, vm, 1, *engine);
    fatal_if(!base_install.ok(), "base bundle did not install: ",
             updateStatusName(base_install.status),
             " -- ", base_install.detail);

    const auto report = [&](const VerifyResult &verdict) {
        std::cout << updateStatusName(verdict.status)
                  << (verdict.detail.empty() ? ""
                                             : ": " + verdict.detail)
                  << "\n";
        if (verdict.status == UpdateStatus::BaseMismatch) {
            std::cout << "base mismatch: request the full bundle "
                         "instead\n";
        }
    };

    if (!install) {
        const auto rec = updater.reconstructDelta(*delta, memory);
        report(rec.result);
        return rec.result.ok() ? 0 : 1;
    }

    const VerifyResult staged = updater.stageDelta(*delta, memory);
    if (!staged.ok()) {
        report(staged);
        return 1;
    }
    const InstallResult result =
        updater.activate(1, memory, vm, 1, *engine);
    std::cout << updateStatusName(result.status)
              << (result.detail.empty() ? "" : ": " + result.detail)
              << "\n";
    if (!result.ok())
        return 1;
    std::cout << "'" << delta->manifest.title << "' v"
              << delta->manifest.image_version << " active in slot "
              << (result.slot == 0 ? "A" : "B") << " via delta ("
              << readFile(options.bundle).size()
              << " delta bytes)\n";
    if (!options.state.empty()) {
        writeFile(options.state, rollback.serialize());
        std::cout << "rollback state saved to '" << options.state
                  << "'\n";
    }
    return 0;
}

int
cmdVerifyOrInstall(const Options &options, bool install)
{
    fatal_if(options.bundle.empty() || options.vendor.empty() ||
                 options.processor.empty(),
             "needs --bundle, --vendor and --processor");
    if (!options.delta_base.empty())
        return cmdDeltaVerifyOrInstall(options, install);

    const UpdateBundle bundle = loadBundle(options.bundle);
    RollbackStore rollback = loadState(options.state);

    secure::KeyTable keys;
    UpdateEngine updater(readPublicKey(options.vendor),
                         readKeyPair(options.processor), keys,
                         rollback);

    // Decision instants land at step numbers 0, 1, ... — the
    // functional engine has no cycle clock of its own.
    obs::TraceSink trace;
    if (!options.trace_out.empty()) {
        updater.setTrace(&trace);
        updater.setTraceCycle(0);
    }

    auto flush_trace = [&] {
        if (options.trace_out.empty())
            return;
        trace.writeChromeJson(options.trace_out);
        std::cout << "wrote trace '" << options.trace_out << "'\n";
    };

    // Admission first: nothing below may depend on unauthenticated
    // manifest fields (e.g. line_size) until verify() passes.
    const VerifyResult admission = updater.verify(bundle);
    updater.setTraceCycle(1);
    if (!install || !admission.ok()) {
        flush_trace();
        std::cout << updateStatusName(admission.status)
                  << (admission.detail.empty() ? ""
                                               : ": " + admission.detail)
                  << "\n";
        return admission.ok() ? 0 : 1;
    }

    mem::MemoryChannel channel;
    secure::ProtectionConfig config;
    config.line_size = bundle.manifest.line_size;
    config.snc.l2_line_size = bundle.manifest.line_size;
    auto engine = secure::makeProtectionEngine(config, channel, keys);
    mem::MainMemory memory;
    mem::VirtualMemory vm;
    const InstallResult result =
        updater.install(bundle, 1, memory, vm, 1, *engine);
    flush_trace();
    std::cout << updateStatusName(result.status)
              << (result.detail.empty() ? "" : ": " + result.detail)
              << "\n";
    if (!result.ok())
        return 1;
    std::cout << "'" << bundle.manifest.title << "' v"
              << bundle.manifest.image_version << " active in slot "
              << (result.slot == 0 ? "A" : "B") << ", entry "
              << util::formatHex(result.entry_point) << "\n";
    if (!options.state.empty()) {
        writeFile(options.state, rollback.serialize());
        std::cout << "rollback state saved to '" << options.state
                  << "'\n";
    }
    return 0;
}

int
cmdAttest(const Options &options)
{
    fatal_if(options.processor.empty() || options.bundle.empty() ||
                 options.vendor.empty(),
             "attest needs --processor, --vendor and --bundle (the "
             "bundle whose install to prove)");

    // Reconstruct the device: re-install the bundle in a scratch
    // engine, then quote. (A long-running device would keep the
    // UpdateEngine alive instead.) The bundle must be *the* release
    // the persisted state records as installed — its counter must
    // equal the stored value, otherwise the quote would claim
    // software this device's fuse bank no longer accepts.
    const UpdateBundle bundle = loadBundle(options.bundle);
    RollbackStore rollback = loadState(options.state);
    const uint64_t recorded = rollback.current(bundle.manifest.title);
    fatal_if(recorded != 0 &&
                 bundle.manifest.rollback_counter != recorded,
             "cannot attest '", bundle.manifest.title,
             "' at rollback counter ",
             bundle.manifest.rollback_counter,
             ": device state records counter ", recorded);

    secure::KeyTable keys;
    const crypto::RsaKeyPair processor =
        readKeyPair(options.processor);
    const crypto::RsaKeyPair attestation =
        readKeyPair(options.processor + ".att");
    RollbackStore fresh(rollback.capacity());
    UpdateEngine updater(readPublicKey(options.vendor), processor,
                         keys, fresh);
    updater.setAttestationKey(attestation);

    // Admission before the engine touches unauthenticated fields.
    const VerifyResult admission = updater.verify(bundle);
    fatal_if(!admission.ok(),
             "cannot attest: ", updateStatusName(admission.status),
             " — ", admission.detail);

    mem::MemoryChannel channel;
    secure::ProtectionConfig config;
    config.line_size = bundle.manifest.line_size;
    config.snc.l2_line_size = bundle.manifest.line_size;
    auto engine = secure::makeProtectionEngine(config, channel, keys);
    mem::MainMemory memory;
    mem::VirtualMemory vm;
    const InstallResult installed =
        updater.install(bundle, 1, memory, vm, 1, *engine);
    fatal_if(!installed.ok(),
             "cannot attest: ", updateStatusName(installed.status),
             " — ", installed.detail);

    Digest nonce = {};
    if (!options.nonce_hex.empty()) {
        const auto bytes = util::fromHex(options.nonce_hex);
        std::copy_n(bytes.begin(),
                    std::min(bytes.size(), nonce.size()),
                    nonce.begin());
    }
    const AttestationQuote quote = attest(updater, 1, nonce);
    std::cout << "report:\n"
              << "  processor: "
              << util::toHex(quote.report.processor_id.data(), 16)
              << "...\n"
              << "  title:     " << quote.report.title << " v"
              << quote.report.image_version << " (rollback "
              << quote.report.rollback_counter << ")\n"
              << "  image:     "
              << util::toHex(quote.report.image_digest.data(), 16)
              << "...\n"
              << "  nonce:     "
              << util::toHex(quote.report.nonce.data(), 8) << "...\n"
              << "signature: "
              << util::toHex(quote.signature.data(),
                             std::min<size_t>(quote.signature.size(),
                                              16))
              << "...\n"
              << "self-check: "
              << (verifyQuote(attestation.pub, quote, nonce)
                      ? "verifies"
                      : "FAILS")
              << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options options = parse(argc, argv);
    if (options.command == "keygen")
        return cmdKeygen(options);
    if (options.command == "build")
        return cmdBuild(options);
    if (options.command == "info")
        return cmdInfo(options);
    if (options.command == "verify")
        return cmdVerifyOrInstall(options, false);
    if (options.command == "install")
        return cmdVerifyOrInstall(options, true);
    if (options.command == "attest")
        return cmdAttest(options);
    usage(1);
}
