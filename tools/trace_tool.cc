/**
 * @file
 * Trace utility: record benchmark profiles to trace files, inspect
 * them, and replay them through the secure-processor timing model.
 *
 *   trace_tool record <bench> <path> [ops]
 *   trace_tool info   <path>
 *   trace_tool replay <path> [model] [instructions]
 *
 * Models: baseline | xom | otp (default otp).
 */

#include <iostream>
#include <string>

#include "sim/profiles.hh"
#include "sim/system.hh"
#include "sim/trace_io.hh"
#include "util/strutil.hh"

using namespace secproc;

namespace
{

int
usage()
{
    std::cerr << "usage:\n"
              << "  trace_tool record <bench> <path> [ops]\n"
              << "  trace_tool info   <path>\n"
              << "  trace_tool replay <path> [baseline|xom|otp] "
                 "[instructions]\n";
    return 2;
}

secure::SecurityModel
parseModel(const std::string &name)
{
    if (name == "baseline")
        return secure::SecurityModel::Baseline;
    if (name == "xom")
        return secure::SecurityModel::Xom;
    if (name == "otp")
        return secure::SecurityModel::OtpSnc;
    std::cerr << "unknown model '" << name << "'\n";
    std::exit(2);
}

int
record(const std::string &bench, const std::string &path, uint64_t ops)
{
    sim::SyntheticWorkload workload(sim::benchmarkProfile(bench), 128);
    sim::recordTrace(path, workload, ops);
    std::cout << "recorded " << ops << " ops of '" << bench << "' to "
              << path << "\n";
    return 0;
}

int
info(const std::string &path)
{
    const sim::TraceImage image = sim::readTrace(path);
    std::cout << "trace: " << path << "\n"
              << "profile: " << image.profile.name << "\n"
              << "ops: " << image.ops.size() << "\n"
              << "regions:\n";
    for (const auto &region : image.profile.regions) {
        std::cout << "  base " << util::formatHex(region.base)
                  << "  footprint "
                  << util::formatBytes(region.footprint)
                  << (region.plaintext ? "  (plaintext)" : "") << "\n";
    }
    uint64_t loads = 0, stores = 0, branches = 0;
    for (const auto &op : image.ops) {
        loads += op.cls == sim::OpClass::Load;
        stores += op.cls == sim::OpClass::Store;
        branches += op.cls == sim::OpClass::Branch;
    }
    const double n = static_cast<double>(image.ops.size());
    std::cout << "loads: " << loads << " ("
              << util::formatDouble(100.0 * loads / n, 1) << "%)\n"
              << "stores: " << stores << " ("
              << util::formatDouble(100.0 * stores / n, 1) << "%)\n"
              << "branches: " << branches << " ("
              << util::formatDouble(100.0 * branches / n, 1) << "%)\n";
    return 0;
}

int
replay(const std::string &path, secure::SecurityModel model,
       uint64_t instructions)
{
    sim::TraceWorkload workload(path);
    sim::System system(sim::paperConfig(model), workload);
    system.run(instructions);
    const auto stats = [&] {
        system.beginMeasurement();
        return system.stats();
    };
    (void)stats;
    std::cout << "model: " << secure::securityModelName(model) << "\n"
              << "instructions: " << instructions << "\n"
              << "cycles: " << system.core().cycles() << "\n"
              << "ipc: "
              << util::formatDouble(
                     static_cast<double>(system.core().instructions()) /
                         static_cast<double>(system.core().cycles()),
                     3)
              << "\n"
              << "trace wraps: " << workload.wraps() << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string command = argv[1];
    if (command == "record") {
        if (argc < 4)
            return usage();
        const uint64_t ops =
            argc > 4 ? util::parseU64(argv[4], "ops") : 1'000'000;
        return record(argv[2], argv[3], ops);
    }
    if (command == "info")
        return info(argv[2]);
    if (command == "replay") {
        const secure::SecurityModel model =
            argc > 3 ? parseModel(argv[3])
                     : secure::SecurityModel::OtpSnc;
        const uint64_t instructions =
            argc > 4 ? util::parseU64(argv[4], "instructions") : 1'000'000;
        return replay(argv[2], model, instructions);
    }
    return usage();
}
