/**
 * @file
 * secproc_run — command-line driver for the simulator.
 *
 * Runs one or more benchmarks under one protection model with every
 * paper parameter overridable from the command line, and prints a
 * summary, a per-benchmark table, or the full component statistics.
 * Multi-benchmark runs go through the experiment Runner, so they
 * parallelize with --threads and can emit the JSON report a
 * downstream user scripts sweeps against.
 *
 *   secproc_run --bench=mcf --model=otp --snc-kb=64 --snc-assoc=0 \
 *               --crypto=50 --l2-kb=256 --instructions=4000000
 *   secproc_run --bench=all --model=xom --threads=4 --json
 *   secproc_run --list
 *   secproc_run --bench=gcc --model=xom --dump-stats
 */

#include <algorithm>
#include <iostream>
#include <map>
#include <string>

#include <cstdlib>
#include <fstream>

#include "crypto/latency.hh"
#include "exp/cli.hh"
#include "exp/runner.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/profiles.hh"
#include "util/logging.hh"
#include "util/strutil.hh"
#include "util/table.hh"

using namespace secproc;

namespace
{

struct Options
{
    std::string bench = "mcf";
    std::string model = "otp";
    uint64_t instructions = 4'000'000;
    uint64_t warmup = 1'000'000;
    uint64_t snc_kb = 64;
    uint32_t snc_assoc = 0;
    bool snc_norepl = false;
    uint32_t crypto_latency = crypto::kPaperCryptoLatency;
    uint64_t l2_kb = 256;
    uint32_t l2_assoc = 4;
    uint32_t mshrs = 8;
    uint32_t snc_sector = 1;
    uint32_t mem_latency = 100;
    std::string dram; // "", "open" or "closed"
    bool in_order = false;
    bool dump_stats = false;
    bool list = false;
    bool parallel_seqnum = false;
    unsigned threads = 1;
    bool write_json = false;
    std::string json_path;
    std::string trace_out;
    std::string metrics_json;
};

[[noreturn]] void
usage(int code)
{
    std::cout <<
        "usage: secproc_run [options]\n"
        "  --list                 list benchmarks and exit\n"
        "  --bench=NAME[,NAME...] benchmark profiles (default mcf);\n"
        "                         'all' runs every profile\n"
        "  --model=M              baseline | xom | otp (default otp)\n"
        "  --instructions=N       measured instructions (default 4M)\n"
        "  --warmup=N             warm-up instructions (default 1M)\n"
        "  --threads=N            parallel benchmarks (0 = all cores;\n"
        "                         also SECPROC_THREADS)\n"
        "  --json[=PATH]          write BENCH_secproc_run.json\n"
        "  --snc-kb=N             SNC capacity in KB (default 64)\n"
        "  --snc-assoc=N          SNC ways, 0 = fully assoc (default)\n"
        "  --snc-norepl           no-replacement SNC policy\n"
        "  --parallel-seqnum      issue line+seqnum fetches together\n"
        "  --crypto=N             crypto latency in cycles (default 50)\n"
        "  --mem-latency=N        flat memory latency (default 100)\n"
        "  --dram=open|closed     banked DRAM instead of flat latency\n"
        "  --snc-sector=N         lines per SNC directory tag (default 1)\n"
        "  --in-order             blocking-loads in-order core\n"
        "  --l2-kb=N --l2-assoc=N L2 geometry (default 256KB 4-way)\n"
        "  --mshrs=N              outstanding misses (default 8)\n"
        "  --dump-stats           print all component statistics\n"
        "                         (single benchmark only)\n"
        "  --trace-out=PATH       write a Chrome/Perfetto trace of\n"
        "                         the run (single benchmark only;\n"
        "                         also SECPROC_TRACE)\n"
        "  --metrics-json=PATH    write the metrics registry snapshot\n"
        "                         as flat JSON (single benchmark only)\n";
    std::exit(code);
}

/** flagU64 into a narrower field. */
template <typename T>
bool
flagNum(const std::string &arg, const char *prefix, T *value)
{
    uint64_t n = 0;
    if (!exp::flagU64(arg, prefix, &n))
        return false;
    *value = static_cast<T>(n);
    return true;
}

Options
parse(int argc, char **argv)
{
    using exp::flag;
    using exp::flagU64;
    using exp::flagValue;

    Options options;
    options.threads = exp::RunnerOptions::fromEnvironment().threads;
    options.trace_out = exp::traceOutFromEnvironment();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (flag(arg, "--help") || flag(arg, "-h"))
            usage(0);
        else if (flag(arg, "--list"))
            options.list = true;
        else if (flagValue(arg, "--bench=", &options.bench) ||
                 flagValue(arg, "--model=", &options.model) ||
                 flagU64(arg, "--instructions=",
                         &options.instructions) ||
                 flagU64(arg, "--warmup=", &options.warmup) ||
                 flagNum(arg, "--threads=", &options.threads) ||
                 flagU64(arg, "--snc-kb=", &options.snc_kb) ||
                 flagNum(arg, "--snc-assoc=", &options.snc_assoc) ||
                 flagNum(arg, "--crypto=",
                         &options.crypto_latency) ||
                 flagNum(arg, "--mem-latency=",
                         &options.mem_latency) ||
                 flagNum(arg, "--snc-sector=",
                         &options.snc_sector) ||
                 flagValue(arg, "--dram=", &options.dram) ||
                 flagU64(arg, "--l2-kb=", &options.l2_kb) ||
                 flagNum(arg, "--l2-assoc=", &options.l2_assoc) ||
                 flagNum(arg, "--mshrs=", &options.mshrs) ||
                 flagValue(arg, "--trace-out=",
                           &options.trace_out) ||
                 flagValue(arg, "--metrics-json=",
                           &options.metrics_json)) {
        } else if (flag(arg, "--json"))
            options.write_json = true;
        else if (flagValue(arg, "--json=", &options.json_path))
            options.write_json = true;
        else if (flag(arg, "--snc-norepl"))
            options.snc_norepl = true;
        else if (flag(arg, "--parallel-seqnum"))
            options.parallel_seqnum = true;
        else if (flag(arg, "--in-order"))
            options.in_order = true;
        else if (flag(arg, "--dump-stats"))
            options.dump_stats = true;
        else {
            std::cerr << "unknown option: " << arg << "\n";
            usage(1);
        }
    }
    return options;
}

std::vector<std::string>
benchList(const std::string &arg)
{
    if (arg == "all")
        return sim::benchmarkNames();
    std::vector<std::string> benches;
    for (const std::string &name : util::split(arg, ',')) {
        if (!name.empty())
            benches.push_back(name);
    }
    if (benches.empty())
        usage(1);
    return benches;
}

double
mpki(const sim::RunStats &stats)
{
    if (stats.instructions == 0)
        return 0.0;
    return 1000.0 * static_cast<double>(stats.l2_misses) /
           static_cast<double>(stats.instructions);
}

void
printSummary(const std::string &bench, const Options &options,
             const sim::RunStats &stats)
{
    std::cout << "bench         " << bench << "\n"
              << "model         " << options.model
              << (options.snc_norepl ? " (no-replacement SNC)" : "")
              << "\n"
              << "instructions  " << stats.instructions << "\n"
              << "cycles        " << stats.cycles << "\n"
              << "ipc           " << util::formatDouble(stats.ipc, 3)
              << "\n"
              << "l2 misses     " << stats.l2_misses << " ("
              << util::formatDouble(mpki(stats), 2) << " MPKI)\n"
              << "fast fills    " << stats.fast_fills << "\n"
              << "slow fills    " << stats.slow_fills << "\n"
              << "snc q-misses  " << stats.snc_query_misses << "\n"
              << "data bytes    " << stats.data_bytes << "\n"
              << "seqnum bytes  " << stats.seqnum_bytes << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const Options options = parse(argc, argv);

    if (options.list) {
        std::cout << "benchmarks:";
        for (const std::string &name : sim::benchmarkNames())
            std::cout << ' ' << name;
        std::cout << "\n";
        return 0;
    }

    const std::map<std::string, secure::SecurityModel> models = {
        {"baseline", secure::SecurityModel::Baseline},
        {"xom", secure::SecurityModel::Xom},
        {"otp", secure::SecurityModel::OtpSnc},
    };
    const auto model_it = models.find(options.model);
    if (model_it == models.end()) {
        std::cerr << "unknown model '" << options.model << "'\n";
        return 1;
    }

    sim::SystemConfig config = sim::paperConfig(model_it->second);
    config.protection.snc.capacity_bytes = options.snc_kb * 1024;
    config.protection.snc.assoc = options.snc_assoc;
    config.protection.snc.allow_replacement = !options.snc_norepl;
    config.protection.parallel_seqnum_fetch = options.parallel_seqnum;
    config.protection.crypto.latency = options.crypto_latency;
    config.protection.snc.sector_lines = options.snc_sector;
    config.channel.access_latency = options.mem_latency;
    if (!options.dram.empty()) {
        if (options.dram != "open" && options.dram != "closed") {
            std::cerr << "--dram must be 'open' or 'closed'\n";
            return 1;
        }
        config.channel.use_dram = true;
        config.channel.dram.closed_page = options.dram == "closed";
    }
    config.core.blocking_loads = options.in_order;
    config.l2.size_bytes = options.l2_kb * 1024;
    config.l2.assoc = options.l2_assoc;
    config.mshrs = options.mshrs;

    const std::vector<std::string> benches = benchList(options.bench);

    const bool direct = options.dump_stats ||
                        !options.trace_out.empty() ||
                        !options.metrics_json.empty();
    if (direct) {
        // Component statistics, traces and metrics snapshots need
        // the live System, so this path runs outside the Runner and
        // stays single-benchmark.
        fatal_if(benches.size() != 1,
                 "--dump-stats/--trace-out/--metrics-json work on a "
                 "single benchmark");
        sim::SyntheticWorkload workload(
            sim::benchmarkProfile(benches[0]), config.l2.line_size);
        sim::System system(config, workload);
        obs::TraceSink trace;
        if (!options.trace_out.empty())
            system.setTraceSink(&trace);
        system.run(options.warmup);
        system.beginMeasurement();
        system.run(options.instructions);
        printSummary(benches[0], options, system.stats());
        if (options.dump_stats) {
            std::cout << "\n-- full component statistics --\n";
            system.dumpStats(std::cout);
        }
        if (!options.trace_out.empty()) {
            trace.writeChromeJson(options.trace_out);
            inform("wrote ", options.trace_out);
        }
        if (!options.metrics_json.empty()) {
            std::ofstream out(options.metrics_json);
            fatal_if(!out, "cannot open '", options.metrics_json,
                     "' for writing");
            out << system.metrics().snapshot().toJson().dump(2)
                << "\n";
            inform("wrote ", options.metrics_json);
        }
        return 0;
    }

    exp::ExperimentSpec spec;
    spec.name = "secproc_run";
    spec.title = "secproc_run: " + options.model;
    spec.benchmarks = benches;
    spec.options.warmup_instructions = options.warmup;
    spec.options.measure_instructions = options.instructions;
    spec.add(options.model,
             [&config](const std::string &) { return config; });

    exp::RunnerOptions runner_options;
    runner_options.threads = options.threads;
    const exp::Report report =
        exp::Runner(runner_options).run(spec);

    if (benches.size() == 1) {
        printSummary(benches[0], options,
                     report.cells()[0].stats);
    } else {
        util::Table table({"bench", "cycles", "ipc", "l2 misses",
                           "MPKI", "fast fills", "slow fills",
                           "seqnum bytes"});
        for (const exp::CellResult &cell : report.cells()) {
            table.addRow({cell.bench,
                          std::to_string(cell.stats.cycles),
                          util::formatDouble(cell.stats.ipc, 3),
                          std::to_string(cell.stats.l2_misses),
                          util::formatDouble(mpki(cell.stats), 2),
                          std::to_string(cell.stats.fast_fills),
                          std::to_string(cell.stats.slow_fills),
                          std::to_string(cell.stats.seqnum_bytes)});
        }
        std::cout << "== secproc_run: " << options.model << " ==\n";
        table.print(std::cout);
    }

    if (options.write_json)
        report.writeJson(options.json_path);
    return 0;
}
