/**
 * @file
 * fleet_tool — run one staged fleet rollout from the command line.
 *
 * Pushes a release to a simulated fleet under a named policy and
 * scenario, prints the per-wave telemetry table and writes the full
 * machine-readable rollout report, a Chrome/Perfetto trace of the
 * waves, or a metrics snapshot on request:
 *
 *   fleet_tool --policy=canary-staged --scenario=faulty \
 *              --devices=100000 --threads=4 --out=rollout.json
 *   fleet_tool --scenario=healthy --trace-out=fleet.trace.json
 *
 * The population is sharded over a fixed shard count, so the same
 * seed produces a bit-identical report at any --threads setting
 * (scripts/fleet_report.py validates the report's invariants).
 */

#include <fstream>
#include <iostream>

#include "exp/cli.hh"
#include "fleet/rollout.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"
#include "util/strutil.hh"
#include "util/table.hh"

using namespace secproc;

namespace
{

struct Options
{
    std::string policy = "canary-staged";
    std::string scenario = "healthy";
    uint64_t devices = 100'000;
    uint64_t seed = 0;       // 0 = the FleetConfig default
    bool deltas = false;
    unsigned threads = 1;
    std::string out;         // rollout JSON path
    std::string trace_out;
    std::string metrics_json;
};

[[noreturn]] void
usage(int code)
{
    std::cout <<
        "usage: fleet_tool [options]\n"
        "  --policy=NAME      canary-staged | conservative | "
        "big-bang\n"
        "                     (default canary-staged)\n"
        "  --scenario=NAME    healthy | faulty | lossy "
        "(default healthy)\n"
        "  --devices=N        fleet population (default 100000)\n"
        "  --seed=N           fleet seed override\n"
        "  --deltas           ship delta bundles to devices that\n"
        "                     run the base release (full-bundle\n"
        "                     fallback on base mismatch)\n"
        "  --threads=N        worker threads (0 = all cores; also\n"
        "                     SECPROC_THREADS); the report is\n"
        "                     bit-identical at any setting\n"
        "  --out=PATH         write the full rollout report JSON\n"
        "  --trace-out=PATH   write per-wave spans as a Chrome/\n"
        "                     Perfetto trace (also SECPROC_TRACE)\n"
        "  --metrics-json=PATH  write the fleet.* metrics snapshot\n";
    std::exit(code);
}

Options
parse(int argc, char **argv)
{
    using exp::flag;
    using exp::flagU64;
    using exp::flagValue;

    Options options;
    options.threads = exp::RunnerOptions::fromEnvironment().threads;
    options.trace_out = exp::traceOutFromEnvironment();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        uint64_t n = 0;
        if (flag(arg, "--help") || flag(arg, "-h"))
            usage(0);
        else if (flagValue(arg, "--policy=", &options.policy) ||
                 flagValue(arg, "--scenario=",
                           &options.scenario) ||
                 flagU64(arg, "--devices=", &options.devices) ||
                 flagU64(arg, "--seed=", &options.seed) ||
                 flagValue(arg, "--out=", &options.out) ||
                 flagValue(arg, "--trace-out=",
                           &options.trace_out) ||
                 flagValue(arg, "--metrics-json=",
                           &options.metrics_json)) {
        } else if (flag(arg, "--deltas"))
            options.deltas = true;
        else if (flagU64(arg, "--threads=", &n))
            options.threads = static_cast<unsigned>(n);
        else {
            std::cerr << "unknown option: " << arg << "\n";
            usage(1);
        }
    }
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options options = parse(argc, argv);

    const fleet::FleetScenario scenario =
        fleet::fleetScenarioByName(options.scenario);
    const fleet::RolloutPolicy policy =
        fleet::rolloutPolicyByName(options.policy);

    fleet::FleetConfig config;
    config.devices = options.devices;
    config.dist = scenario.dist;
    config.ship_deltas = options.deltas;
    if (options.seed != 0)
        config.fleet_seed = options.seed;

    exp::RunnerOptions runner_options;
    runner_options.threads = options.threads;
    const exp::Runner runner(runner_options);

    fleet::FleetSimulator sim(config, policy, runner);
    obs::TraceSink trace;
    if (!options.trace_out.empty())
        sim.setTraceSink(&trace);
    obs::MetricsRegistry metrics;
    sim.registerMetrics(metrics);

    const fleet::RolloutResult result = sim.run(
        scenario.defective_variant, scenario.defect_rate);

    std::cout << "== fleet rollout: " << policy.name << " x "
              << scenario.name << ", " << result.devices
              << " devices ==\n"
              << "eligible " << result.eligible << ", skipped "
              << result.skipped_no_quirk
              << " (no quirk-table match)\n";

    util::Table table({"wave", "kind", "release", "offered",
                       "updated", "failed", "fail%", "p50 h",
                       "p99 h", "halted"});
    for (const fleet::WaveStats &wave : result.waves) {
        table.addRow({std::to_string(wave.index), wave.kind,
                      std::to_string(wave.release),
                      std::to_string(wave.offered),
                      std::to_string(wave.updated),
                      std::to_string(wave.failed),
                      util::formatDouble(wave.failure_rate * 100.0,
                                         2),
                      util::formatDouble(wave.p50_device_hours, 2),
                      util::formatDouble(wave.p99_device_hours, 2),
                      wave.halted_after ? "HALT" : ""});
    }
    table.print(std::cout);

    std::cout << "converged      "
              << (result.converged ? "yes" : "NO") << " ("
              << util::formatDouble(result.convergence_hours, 2)
              << " h)\n"
              << "p99 dev-hours  "
              << util::formatDouble(
                     result.device_hours.percentile(0.99), 2)
              << "\n"
              << "ledger records "
              << sim.vendor().ledger().size() << "\n";
    if (options.deltas || result.delta_installs > 0)
        std::cout << "delta installs "
                  << result.delta_installs << " ("
                  << result.transport_bytes
                  << " transport bytes vs "
                  << result.transport_bytes_full
                  << " if every device took the full bundle)\n";
    for (const fleet::GroundTruthReport &gt : result.ground_truth) {
        std::cout << "ground truth   device " << gt.device << " ("
                  << gt.engine_latency << "c, "
                  << fleet::linkClassName(gt.link) << "): predicted "
                  << gt.predicted_cycles << ", measured "
                  << gt.measured_cycles << ", rel err "
                  << util::formatDouble(gt.rel_error, 3)
                  << (gt.within_tolerance ? "" : " OUT OF TOLERANCE")
                  << (gt.functional_ok ? "" : " FUNCTIONAL FAIL")
                  << "\n";
    }

    if (!options.out.empty()) {
        std::ofstream out(options.out);
        fatal_if(!out, "cannot open '", options.out,
                 "' for writing");
        out << result.toJson().dump(2) << "\n";
        inform("wrote ", options.out);
    }
    if (!options.trace_out.empty()) {
        trace.writeChromeJson(options.trace_out);
        inform("wrote ", options.trace_out);
    }
    if (!options.metrics_json.empty()) {
        std::ofstream out(options.metrics_json);
        fatal_if(!out, "cannot open '", options.metrics_json,
                 "' for writing");
        out << metrics.snapshot().toJson().dump(2) << "\n";
        inform("wrote ", options.metrics_json);
    }
    return 0;
}
