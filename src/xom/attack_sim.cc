/**
 * @file
 * Attack simulations against the functional memory image.
 */

#include "xom/attack_sim.hh"

#include <cstring>

#include "crypto/block_cipher.hh"
#include "util/strutil.hh"

namespace secproc::xom
{

namespace
{

/** Fetch and decrypt a line exactly as the processor would. */
std::vector<uint8_t>
fetchPlaintext(secure::ProtectionEngine &engine, mem::MainMemory &memory,
               mem::VirtualMemory &vm, mem::Asid asid, uint64_t line_va)
{
    const uint32_t line = engine.config().line_size;
    std::vector<uint8_t> bytes(line);
    memory.read(vm.translate(asid, line_va), bytes.data(), line);
    // Build a fill plan without advancing SNC state: we want a pure
    // observation. Use the engine's recorded line state.
    secure::FillPlan plan;
    plan.line_va = line_va;
    plan.state = engine.lineState(line_va);
    plan.seqnum = 0;
    if (plan.state == secure::LineCipherState::Otp) {
        // The engine's planFill would resolve the sequence number;
        // use the real plan path (it is the processor's behaviour).
        plan = engine.planFill(line_va, false,
                               vm.regionKind(asid, line_va));
    }
    engine.applyFill(plan, bytes);
    return bytes;
}

/** Write plaintext through the engine to memory (program store). */
void
storePlaintext(secure::ProtectionEngine &engine, mem::MainMemory &memory,
               mem::VirtualMemory &vm, mem::Asid asid, uint64_t line_va,
               const std::vector<uint8_t> &plain)
{
    auto bytes = plain;
    engine.encryptLine(line_va, vm.regionKind(asid, line_va), bytes);
    memory.write(vm.translate(asid, line_va), bytes.data(),
                 bytes.size());
}

} // namespace

uint64_t
patternLeak(const mem::MainMemory &memory, uint64_t pa_start,
            uint64_t bytes, uint32_t block_size)
{
    std::vector<uint8_t> image(bytes);
    memory.read(pa_start, image.data(), bytes);
    return crypto::countRepeatedBlocks(image.data(), image.size(),
                                       block_size);
}

AttackOutcome
splicingAttack(secure::ProtectionEngine &engine, mem::MainMemory &memory,
               mem::VirtualMemory &vm, mem::Asid asid, uint64_t line_a,
               uint64_t line_b)
{
    AttackOutcome outcome;
    outcome.attack = "splicing";
    const uint32_t line = engine.config().line_size;

    // The victim program wrote known plaintext at A and B.
    const std::vector<uint8_t> plain_a(line, 0xA5);
    const std::vector<uint8_t> plain_b(line, 0x5B);
    storePlaintext(engine, memory, vm, asid, line_a, plain_a);
    storePlaintext(engine, memory, vm, asid, line_b, plain_b);

    // Adversary copies A's ciphertext over B's.
    std::vector<uint8_t> cipher_a(line);
    memory.read(vm.translate(asid, line_a), cipher_a.data(), line);
    memory.write(vm.translate(asid, line_b), cipher_a.data(), line);

    // Processor reads B.
    const auto decoded =
        fetchPlaintext(engine, memory, vm, asid, line_b);
    outcome.succeeded = decoded == plain_a;
    outcome.detail =
        outcome.succeeded
            ? "spliced ciphertext decoded as valid plaintext of A"
            : "address-bound pad turned spliced line into garbage";
    return outcome;
}

AttackOutcome
replayAttack(secure::ProtectionEngine &engine, mem::MainMemory &memory,
             mem::VirtualMemory &vm, mem::Asid asid, uint64_t line_va)
{
    AttackOutcome outcome;
    outcome.attack = "replay";
    const uint32_t line = engine.config().line_size;

    // Program writes v1 (e.g. account balance before spending).
    const std::vector<uint8_t> v1(line, 0x11);
    storePlaintext(engine, memory, vm, asid, line_va, v1);
    std::vector<uint8_t> stale(line);
    memory.read(vm.translate(asid, line_va), stale.data(), line);

    // Program overwrites with v2.
    const std::vector<uint8_t> v2(line, 0x22);
    storePlaintext(engine, memory, vm, asid, line_va, v2);

    // Adversary restores the stale ciphertext.
    memory.write(vm.translate(asid, line_va), stale.data(), line);

    const auto decoded =
        fetchPlaintext(engine, memory, vm, asid, line_va);
    outcome.succeeded = decoded == v1;
    outcome.detail =
        outcome.succeeded
            ? "stale value restored intact (undetected without "
              "integrity verification)"
            : "sequence-number advance garbled the replayed line";
    return outcome;
}

AttackOutcome
spoofingAttack(secure::ProtectionEngine &engine, mem::MainMemory &memory,
               mem::VirtualMemory &vm, mem::Asid asid, uint64_t line_va)
{
    AttackOutcome outcome;
    outcome.attack = "spoofing";
    const uint32_t line = engine.config().line_size;

    const std::vector<uint8_t> plain(line, 0x3C);
    storePlaintext(engine, memory, vm, asid, line_va, plain);

    // Flip one ciphertext bit mid-line.
    memory.corruptByte(vm.translate(asid, line_va) + line / 2, 0x01);

    const auto decoded =
        fetchPlaintext(engine, memory, vm, asid, line_va);
    outcome.succeeded = decoded == plain;
    outcome.detail = outcome.succeeded
                         ? "corruption had no effect (impossible)"
                         : "plaintext corrupted silently; detection "
                           "requires the integrity engine";
    return outcome;
}

} // namespace secproc::xom
