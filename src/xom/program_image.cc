/**
 * @file
 * Program image serialization.
 *
 * Simple length-prefixed binary format:
 *   magic "SPIM" | u32 version | cipher | u64 entry | u32 line |
 *   title | capsule | u32 nsections | sections...
 * Each string/blob is u32 length + bytes.
 */

#include "xom/program_image.hh"

#include "util/logging.hh"
#include "util/serialize.hh"

namespace secproc::xom
{

namespace
{

constexpr uint32_t kMagic = 0x5350494D; // "SPIM"
constexpr uint32_t kVersion = 1;
constexpr uint32_t kMaxSections = 1024;

} // namespace

uint64_t
ProgramImage::totalBytes() const
{
    uint64_t total = 0;
    for (const Section &section : sections)
        total += section.bytes.size();
    return total;
}

void
ProgramImage::serializeTo(util::ByteSink &sink) const
{
    using namespace util;
    putU32(sink, kMagic);
    putU32(sink, kVersion);
    putU32(sink, static_cast<uint32_t>(cipher));
    putU64(sink, entry_point);
    putU32(sink, line_size);
    putString(sink, title);
    putBlob(sink, key_capsule);
    putU32(sink, static_cast<uint32_t>(sections.size()));
    for (const Section &section : sections) {
        putString(sink, section.name);
        putU64(sink, section.vaddr);
        putU32(sink, static_cast<uint32_t>(section.encryption));
        putBlob(sink, section.bytes);
    }
}

uint64_t
ProgramImage::serializedSize() const
{
    util::CountingSink counter;
    serializeTo(counter);
    return counter.total();
}

std::vector<uint8_t>
ProgramImage::serialize() const
{
    std::vector<uint8_t> out;
    out.reserve(serializedSize());
    util::VectorSink sink(out);
    serializeTo(sink);
    return out;
}

std::optional<ProgramImage>
ProgramImage::tryDeserialize(const std::vector<uint8_t> &data)
{
    return tryDeserialize(std::span<const uint8_t>(data));
}

std::optional<ProgramImage>
ProgramImage::tryDeserialize(std::span<const uint8_t> data)
{
    util::ByteReader reader(data);
    if (reader.u32() != kMagic || reader.u32() != kVersion)
        return std::nullopt;
    ProgramImage image;
    // Same trust boundary as the manifest parser: enum fields are
    // attacker bytes until validated, and a raw cast would carry an
    // out-of-range kind into a downstream panic.
    const auto cipher = secure::cipherKindFromU32(reader.u32());
    if (!cipher.has_value())
        return std::nullopt;
    image.cipher = *cipher;
    image.entry_point = reader.u64();
    image.line_size = reader.u32();
    image.title = reader.str();
    image.key_capsule = reader.blob();
    const uint32_t nsections = reader.u32();
    if (!reader.ok() || nsections > kMaxSections)
        return std::nullopt;
    for (uint32_t i = 0; i < nsections; ++i) {
        Section section;
        section.name = reader.str();
        section.vaddr = reader.u64();
        const uint32_t encryption = reader.u32();
        if (encryption >
            static_cast<uint32_t>(SectionEncryption::Plaintext))
            return std::nullopt;
        section.encryption = static_cast<SectionEncryption>(encryption);
        section.bytes = reader.blob();
        image.sections.push_back(std::move(section));
    }
    if (!reader.atEnd())
        return std::nullopt;
    return image;
}

ProgramImage
ProgramImage::deserialize(const std::vector<uint8_t> &data)
{
    auto image = tryDeserialize(data);
    fatal_if(!image.has_value(),
             "malformed program image (", data.size(), " bytes)");
    return std::move(*image);
}

} // namespace secproc::xom
