/**
 * @file
 * Program image serialization.
 *
 * Simple length-prefixed binary format:
 *   magic "SPIM" | u32 version | cipher | u64 entry | u32 line |
 *   title | capsule | u32 nsections | sections...
 * Each string/blob is u32 length + bytes.
 */

#include "xom/program_image.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace secproc::xom
{

namespace
{

constexpr uint32_t kMagic = 0x5350494D; // "SPIM"
constexpr uint32_t kVersion = 1;

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putBlob(std::vector<uint8_t> &out, const std::vector<uint8_t> &blob)
{
    putU32(out, static_cast<uint32_t>(blob.size()));
    out.insert(out.end(), blob.begin(), blob.end());
}

void
putString(std::vector<uint8_t> &out, const std::string &s)
{
    putU32(out, static_cast<uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

/** Bounds-checked reader. */
class Reader
{
  public:
    explicit Reader(const std::vector<uint8_t> &data) : data_(data) {}

    uint32_t
    u32()
    {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    std::vector<uint8_t>
    blob()
    {
        const uint32_t len = u32();
        need(len);
        std::vector<uint8_t> out(data_.begin() + pos_,
                                 data_.begin() + pos_ + len);
        pos_ += len;
        return out;
    }

    std::string
    str()
    {
        const auto bytes = blob();
        return std::string(bytes.begin(), bytes.end());
    }

  private:
    const std::vector<uint8_t> &data_;
    size_t pos_ = 0;

    void
    need(size_t n)
    {
        fatal_if(pos_ + n > data_.size(),
                 "truncated program image (need ", n, " at ", pos_,
                 " of ", data_.size(), ")");
    }
};

} // namespace

uint64_t
ProgramImage::totalBytes() const
{
    uint64_t total = 0;
    for (const Section &section : sections)
        total += section.bytes.size();
    return total;
}

std::vector<uint8_t>
ProgramImage::serialize() const
{
    std::vector<uint8_t> out;
    putU32(out, kMagic);
    putU32(out, kVersion);
    putU32(out, static_cast<uint32_t>(cipher));
    putU64(out, entry_point);
    putU32(out, line_size);
    putString(out, title);
    putBlob(out, key_capsule);
    putU32(out, static_cast<uint32_t>(sections.size()));
    for (const Section &section : sections) {
        putString(out, section.name);
        putU64(out, section.vaddr);
        putU32(out, static_cast<uint32_t>(section.encryption));
        putBlob(out, section.bytes);
    }
    return out;
}

ProgramImage
ProgramImage::deserialize(const std::vector<uint8_t> &data)
{
    Reader reader(data);
    fatal_if(reader.u32() != kMagic, "bad program image magic");
    fatal_if(reader.u32() != kVersion, "unsupported image version");
    ProgramImage image;
    image.cipher = static_cast<secure::CipherKind>(reader.u32());
    image.entry_point = reader.u64();
    image.line_size = reader.u32();
    image.title = reader.str();
    image.key_capsule = reader.blob();
    const uint32_t nsections = reader.u32();
    fatal_if(nsections > 1024, "implausible section count");
    for (uint32_t i = 0; i < nsections; ++i) {
        Section section;
        section.name = reader.str();
        section.vaddr = reader.u64();
        section.encryption =
            static_cast<SectionEncryption>(reader.u32());
        section.bytes = reader.blob();
        image.sections.push_back(std::move(section));
    }
    return image;
}

} // namespace secproc::xom
