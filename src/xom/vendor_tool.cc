/**
 * @file
 * Vendor-side protection tool implementation.
 */

#include "xom/vendor_tool.hh"

#include "crypto/block_cipher.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace secproc::xom
{

uint64_t
vendorSeed(uint64_t line_va, uint32_t seqnum, uint32_t line_size)
{
    // Must mirror ProtectionEngine::makeSeed exactly: the processor
    // regenerates these pads at fetch time.
    const uint64_t line_number = line_va / line_size;
    return ((line_number & util::mask(40)) << 24) |
           ((static_cast<uint64_t>(seqnum) & util::mask(16)) << 8);
}

ProgramImage
vendorProtect(const PlainProgram &program, VendorScheme scheme,
              secure::CipherKind cipher,
              const crypto::RsaPublicKey &processor_key,
              util::Rng &rng, uint32_t line_size)
{
    ProgramImage image;
    image.title = program.title;
    image.cipher = cipher;
    image.entry_point = program.entry_point;
    image.line_size = line_size;

    // Fresh symmetric key per shipped program (paper Section 2.1).
    std::vector<uint8_t> symmetric_key(secure::cipherKeySize(cipher));
    rng.fillBytes(symmetric_key.data(), symmetric_key.size());
    const auto cipher_impl = secure::makeCipher(cipher, symmetric_key);

    for (const PlainProgram::PlainSection &plain : program.sections) {
        fatal_if(plain.vaddr % line_size != 0,
                 "section '", plain.name,
                 "' is not line aligned: ", plain.vaddr);
        Section section;
        section.name = plain.name;
        section.vaddr = plain.vaddr;
        section.bytes = plain.bytes;
        // Pad to whole lines so line-granular crypto applies.
        section.bytes.resize(
            util::alignUp(section.bytes.size(), line_size), 0);

        if (plain.shared) {
            section.encryption = SectionEncryption::Plaintext;
        } else if (scheme == VendorScheme::Otp) {
            section.encryption = SectionEncryption::OtpVaSeed;
            for (uint64_t off = 0; off < section.bytes.size();
                 off += line_size) {
                crypto::otpTransform(
                    *cipher_impl,
                    vendorSeed(plain.vaddr + off, 0, line_size),
                    section.bytes.data() + off, line_size);
            }
        } else {
            section.encryption = SectionEncryption::Direct;
            crypto::ecbEncrypt(*cipher_impl, section.bytes.data(),
                               section.bytes.size());
        }
        image.sections.push_back(std::move(section));
    }

    image.key_capsule = crypto::rsaWrap(processor_key, symmetric_key,
                                        rng);
    return image;
}

} // namespace secproc::xom
