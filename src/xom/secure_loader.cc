/**
 * @file
 * Secure loader implementation.
 */

#include "xom/secure_loader.hh"

#include "util/logging.hh"

namespace secproc::xom
{

LoadResult
SecureLoader::load(const ProgramImage &image,
                   secure::CompartmentId compartment,
                   mem::MainMemory &memory, mem::VirtualMemory &vm,
                   mem::Asid asid, secure::ProtectionEngine &engine)
{
    LoadResult result;

    // Unwrap the symmetric key: only this processor's private key
    // opens the capsule (paper Section 2.1).
    const auto key = crypto::rsaUnwrap(processor_key_,
                                       image.key_capsule);
    if (!key.has_value()) {
        result.error = "key capsule does not open under this "
                       "processor's private key";
        return result;
    }
    if (key->size() != secure::cipherKeySize(image.cipher)) {
        result.error = "capsule payload has wrong key length";
        return result;
    }
    keys_.install(compartment, image.cipher, *key);

    // Place ciphertext sections into untrusted memory and register
    // line states with the engine.
    const uint32_t line = image.line_size;
    for (const Section &section : image.sections) {
        fatal_if(section.vaddr % line != 0,
                 "section '", section.name, "' not line aligned");
        fatal_if(section.bytes.size() % line != 0,
                 "section '", section.name, "' not line padded");
        if (section.encryption == SectionEncryption::Plaintext) {
            vm.addRegion(asid,
                         mem::Region{section.name, section.vaddr,
                                     section.vaddr +
                                         section.bytes.size(),
                                     mem::RegionKind::Plaintext});
        }
        for (uint64_t off = 0; off < section.bytes.size();
             off += line) {
            const uint64_t line_va = section.vaddr + off;
            const uint64_t pa = vm.translate(asid, line_va);
            memory.write(pa, section.bytes.data() + off, line);
            switch (section.encryption) {
              case SectionEncryption::OtpVaSeed:
                engine.setLineState(line_va,
                                    secure::LineCipherState::Otp, 0);
                break;
              case SectionEncryption::Direct:
                engine.setLineState(line_va,
                                    secure::LineCipherState::Direct);
                break;
              case SectionEncryption::Plaintext:
                engine.setLineState(line_va,
                                    secure::LineCipherState::Plain);
                break;
            }
        }
    }

    result.success = true;
    result.compartment = compartment;
    result.entry_point = image.entry_point;
    return result;
}

std::vector<uint8_t>
SecureLoader::fetchLine(uint64_t line_va, mem::MainMemory &memory,
                        mem::VirtualMemory &vm, mem::Asid asid,
                        secure::ProtectionEngine &engine, bool ifetch)
{
    const uint32_t line = engine.config().line_size;
    const uint64_t pa = vm.translate(asid, line_va);
    std::vector<uint8_t> bytes(line);
    memory.read(pa, bytes.data(), line);
    engine.decryptLine(line_va, ifetch, vm.regionKind(asid, line_va),
                       bytes);
    return bytes;
}

} // namespace secproc::xom
