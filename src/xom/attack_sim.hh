/**
 * @file
 * Adversary toolkit: the attacks the XOM threat model defends
 * against (paper Sections 1-2), executed against the functional
 * memory image.
 *
 * The adversary owns everything outside the CPU: it can read and
 * rewrite DRAM, splice ciphertext between addresses, replay stale
 * ciphertext, and analyze ciphertext for patterns. These simulations
 * demonstrate (a) what the OTP scheme prevents by construction
 * (pattern analysis, splicing across addresses, cross-processor
 * execution) and (b) what requires the integrity extension to
 * *detect* (spoofing/replay, cf. Gassend et al., paper Section 6).
 */

#ifndef SECPROC_XOM_ATTACK_SIM_HH
#define SECPROC_XOM_ATTACK_SIM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/main_memory.hh"
#include "mem/virtual_memory.hh"
#include "secure/protection_engine.hh"

namespace secproc::xom
{

/** Outcome of one attack trial. */
struct AttackOutcome
{
    std::string attack;
    /** The adversary obtained plaintext or ran tampered code. */
    bool succeeded = false;
    /** Human-readable explanation for reports. */
    std::string detail;
};

/**
 * Ciphertext pattern analysis: count repeated cipher blocks across
 * a memory range. Under XOM's direct (ECB) encryption, repeated
 * plaintext (zero lines, common constants) yields repeated
 * ciphertext; under OTP every block is unique. The return value is
 * the repeat count an adversary would observe.
 */
uint64_t patternLeak(const mem::MainMemory &memory, uint64_t pa_start,
                     uint64_t bytes, uint32_t block_size);

/**
 * Splicing: move the ciphertext of line A over line B and check
 * whether the processor decodes A's plaintext at B. Defeated by
 * address-bound seeds (OTP) — the pad at B differs — while under
 * direct encryption the spliced line decrypts to valid plaintext.
 *
 * @return outcome; succeeded == the spliced data decoded cleanly.
 */
AttackOutcome splicingAttack(secure::ProtectionEngine &engine,
                             mem::MainMemory &memory,
                             mem::VirtualMemory &vm, mem::Asid asid,
                             uint64_t line_a, uint64_t line_b);

/**
 * Replay: snapshot a line's ciphertext, let the program overwrite
 * it, restore the stale snapshot. Under OTP with incremented
 * sequence numbers the stale ciphertext decodes to garbage under
 * the *new* pad (so the value is corrupted, not restored —
 * detection additionally needs integrity checking).
 *
 * @return outcome; succeeded == the stale plaintext was restored
 *         intact.
 */
AttackOutcome replayAttack(secure::ProtectionEngine &engine,
                           mem::MainMemory &memory,
                           mem::VirtualMemory &vm, mem::Asid asid,
                           uint64_t line_va);

/**
 * Spoofing: flip bits in a line's ciphertext and check whether the
 * decoded plaintext changes (it must — but without integrity
 * verification the corruption is silent).
 */
AttackOutcome spoofingAttack(secure::ProtectionEngine &engine,
                             mem::MainMemory &memory,
                             mem::VirtualMemory &vm, mem::Asid asid,
                             uint64_t line_va);

} // namespace secproc::xom

#endif // SECPROC_XOM_ATTACK_SIM_HH
