/**
 * @file
 * Vendor-side protection tool.
 *
 * Implements the paper's Section 2.1 software encryption flow: the
 * vendor picks a symmetric key K_s, encrypts the program with it
 * (text with virtual-address-seeded one-time pads under the OTP
 * scheme, or directly under XOM), and ships K_s wrapped under the
 * target processor's RSA public key. Software encrypted for
 * processor A cannot run on processor B.
 */

#ifndef SECPROC_XOM_VENDOR_TOOL_HH
#define SECPROC_XOM_VENDOR_TOOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/rsa.hh"
#include "secure/key_table.hh"
#include "xom/program_image.hh"

namespace secproc::xom
{

/** A plaintext program as the build system hands it to the vendor. */
struct PlainProgram
{
    std::string title;
    uint64_t entry_point = 0;
    struct PlainSection
    {
        std::string name;
        uint64_t vaddr = 0;
        std::vector<uint8_t> bytes;
        /** Shared-library / input data stays plaintext. */
        bool shared = false;
    };
    std::vector<PlainSection> sections;
};

/** Encryption scheme the vendor targets. */
enum class VendorScheme
{
    /** One-time pad, virtual-address seeds (this paper). */
    Otp,
    /** Direct encryption (original XOM). */
    Xom,
};

/**
 * Produce a protected image for one target processor.
 *
 * @param program The plaintext program.
 * @param scheme Target encryption scheme.
 * @param cipher Symmetric cipher family.
 * @param processor_key Target processor's public key.
 * @param rng Entropy for the symmetric key and capsule padding.
 * @param line_size Protection granularity (L2 line size).
 */
ProgramImage vendorProtect(const PlainProgram &program,
                           VendorScheme scheme,
                           secure::CipherKind cipher,
                           const crypto::RsaPublicKey &processor_key,
                           util::Rng &rng, uint32_t line_size = 128);

/**
 * Seed for the OTP encryption of the line at @p line_va with
 * sequence number @p seqnum. Must match
 * ProtectionEngine::makeSeed — the vendor encrypts with exactly the
 * pads the processor will regenerate. Exposed for tests.
 */
uint64_t vendorSeed(uint64_t line_va, uint32_t seqnum,
                    uint32_t line_size);

} // namespace secproc::xom

#endif // SECPROC_XOM_VENDOR_TOOL_HH
