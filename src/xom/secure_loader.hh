/**
 * @file
 * Processor-side secure loader.
 *
 * Unwraps the image's key capsule with the processor's RSA private
 * key (only the target processor can), installs the symmetric key in
 * the compartment key table, places the ciphertext image into
 * untrusted memory and registers the line states with the protection
 * engine so demand fetches decrypt correctly. This is the XOM
 * "enter secure execution" flow of paper Section 2.
 */

#ifndef SECPROC_XOM_SECURE_LOADER_HH
#define SECPROC_XOM_SECURE_LOADER_HH

#include <optional>
#include <string>

#include "crypto/rsa.hh"
#include "mem/main_memory.hh"
#include "mem/virtual_memory.hh"
#include "secure/key_table.hh"
#include "secure/protection_engine.hh"
#include "xom/program_image.hh"

namespace secproc::xom
{

/** Outcome of a load attempt. */
struct LoadResult
{
    bool success = false;
    std::string error;
    secure::CompartmentId compartment = 0;
    uint64_t entry_point = 0;
};

/**
 * The loader bound to one processor's identity.
 */
class SecureLoader
{
  public:
    /**
     * @param processor_key This processor's RSA private key (lives
     *        inside the security boundary).
     * @param keys Compartment key table to install into.
     */
    SecureLoader(crypto::RsaPrivateKey processor_key,
                 secure::KeyTable &keys)
        : processor_key_(std::move(processor_key)), keys_(keys)
    {}

    /**
     * Load a protected image.
     *
     * @param image The shipped program.
     * @param compartment Compartment to run it in.
     * @param memory Untrusted memory to place ciphertext into.
     * @param vm Address space to map sections into.
     * @param asid Address space id.
     * @param engine Protection engine to register line states with.
     * @return success/failure; failure leaves no key installed
     *         (wrong processor, tampered capsule).
     */
    LoadResult load(const ProgramImage &image,
                    secure::CompartmentId compartment,
                    mem::MainMemory &memory, mem::VirtualMemory &vm,
                    mem::Asid asid, secure::ProtectionEngine &engine);

    /**
     * Fetch and decrypt one line the way the processor would on an
     * instruction/data fetch (functional check; returns plaintext).
     */
    std::vector<uint8_t> fetchLine(uint64_t line_va,
                                   mem::MainMemory &memory,
                                   mem::VirtualMemory &vm,
                                   mem::Asid asid,
                                   secure::ProtectionEngine &engine,
                                   bool ifetch);

  private:
    crypto::RsaPrivateKey processor_key_;
    secure::KeyTable &keys_;
};

} // namespace secproc::xom

#endif // SECPROC_XOM_SECURE_LOADER_HH
