/**
 * @file
 * Protected program image format.
 *
 * Models the artifact a software vendor ships for a XOM/OTP secure
 * processor (paper Section 2.1): sections of encrypted text and
 * initialized data, optional plaintext sections (shared library
 * code, default inputs), and a key capsule — the program's symmetric
 * key encrypted with the target processor's RSA public key, so the
 * program runs *only* on that processor.
 */

#ifndef SECPROC_XOM_PROGRAM_IMAGE_HH
#define SECPROC_XOM_PROGRAM_IMAGE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "secure/key_table.hh"
#include "util/serialize.hh"

namespace secproc::xom
{

/** How a section's bytes are stored in the image. */
enum class SectionEncryption
{
    /** One-time pad with virtual-address seeds, seqnum 0. */
    OtpVaSeed,
    /** XOM-style direct (ECB) encryption. */
    Direct,
    /** No encryption (shared library code, program inputs). */
    Plaintext,
};

/** One loadable section. */
struct Section
{
    std::string name;
    uint64_t vaddr = 0; ///< load address (line aligned)
    SectionEncryption encryption = SectionEncryption::Plaintext;
    std::vector<uint8_t> bytes; ///< stored (possibly encrypted) image
};

/** The shippable program. */
struct ProgramImage
{
    std::string title;
    secure::CipherKind cipher = secure::CipherKind::Des;
    uint64_t entry_point = 0;
    uint32_t line_size = 128;
    std::vector<Section> sections;
    /** RSA capsule holding the symmetric key. */
    std::vector<uint8_t> key_capsule;

    /** Total stored bytes across sections. */
    uint64_t totalBytes() const;

    /** Serialize to a flat byte vector (checked round trip). */
    std::vector<uint8_t> serialize() const;

    /**
     * Stream the exact serialize() byte sequence into @p sink —
     * digesting or sizing a multi-megabyte image without
     * materializing it.
     */
    void serializeTo(util::ByteSink &sink) const;

    /** Bytes serialize() would produce. */
    uint64_t serializedSize() const;

    /** Parse a serialized image; fatal on malformed input. */
    static ProgramImage deserialize(const std::vector<uint8_t> &data);

    /**
     * Parse bytes that crossed a trust boundary (an update bundle,
     * a staged slot): std::nullopt on malformed input, never fatal.
     * The span form parses in place (e.g. a blob view into a larger
     * framed buffer); section bytes are still copied out, since the
     * parsed image owns its contents. @{
     */
    static std::optional<ProgramImage>
    tryDeserialize(const std::vector<uint8_t> &data);
    static std::optional<ProgramImage>
    tryDeserialize(std::span<const uint8_t> data);
    /** @} */
};

} // namespace secproc::xom

#endif // SECPROC_XOM_PROGRAM_IMAGE_HH
