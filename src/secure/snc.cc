/**
 * @file
 * Sequence Number Cache implementation.
 *
 * Internally reuses the generic set-associative Cache as the tag
 * directory, one "line" per sector of sector_lines consecutive L2
 * lines (span = l2_line_size * sector_lines, so consecutive sectors
 * map to consecutive sets). Per-sector sequence-number slots live in
 * a side table; with the default sector_lines = 1 this reduces to
 * the paper's one-tag-per-entry organization.
 */

#include "secure/snc.hh"

#include <algorithm>

#include "util/logging.hh"

namespace secproc::secure
{

namespace
{

mem::CacheConfig
makeCacheConfig(const SncConfig &config)
{
    fatal_if(config.bytes_per_entry == 0 ||
                 config.capacity_bytes % config.bytes_per_entry != 0,
             "SNC capacity must be a multiple of the entry size");
    fatal_if(config.sector_lines == 0,
             "SNC sectors need at least one line");
    fatal_if(config.entries() % config.sector_lines != 0,
             "SNC entry count must be a multiple of the sector size");
    mem::CacheConfig cache;
    cache.name = "snc";
    // One directory tag per sector; the directory is keyed by L2
    // line address so geometry uses the sector span.
    cache.line_size = static_cast<uint32_t>(config.sectorSpan());
    cache.size_bytes = config.sectors() * config.sectorSpan();
    cache.assoc = config.assoc;
    cache.policy = config.allow_replacement
                       ? mem::ReplacementPolicy::Lru
                       : mem::ReplacementPolicy::NoReplacement;
    return cache;
}

} // namespace

SequenceNumberCache::SequenceNumberCache(const SncConfig &config)
    : config_(config), cache_(makeCacheConfig(config)),
      sector_arena_(config.sector_lines * sizeof(uint32_t))
{}

uint64_t
SequenceNumberCache::sectorBase(uint64_t line_va) const
{
    return line_va / config_.sectorSpan() * config_.sectorSpan();
}

uint64_t
SequenceNumberCache::sectorIndex(uint64_t line_va) const
{
    return line_va / config_.sectorSpan();
}

size_t
SequenceNumberCache::slotIndex(uint64_t line_va) const
{
    return (line_va % config_.sectorSpan()) / config_.l2_line_size;
}

uint32_t *
SequenceNumberCache::slotFor(uint64_t line_va)
{
    uint32_t *const *sector = sectors_.find(sectorIndex(line_va));
    if (sector == nullptr)
        return nullptr;
    return *sector + slotIndex(line_va);
}

std::optional<uint32_t>
SequenceNumberCache::query(uint64_t line_va)
{
    if (!cache_.access(line_va, /*write=*/false)) {
        ++query_misses_;
        return std::nullopt;
    }
    const uint32_t *slot = slotFor(line_va);
    panic_if(slot == nullptr, "SNC directory/slot table divergence");
    if (*slot == kEmptySlot) {
        // Tag present but this line's slot was never populated: the
        // sequence number is not on chip, which is a miss.
        ++query_misses_;
        return std::nullopt;
    }
    ++query_hits_;
    return *slot;
}

bool
SequenceNumberCache::contains(uint64_t line_va) const
{
    return peek(line_va).has_value();
}

std::optional<uint32_t>
SequenceNumberCache::peek(uint64_t line_va) const
{
    if (!cache_.probe(line_va))
        return std::nullopt;
    uint32_t *const *sector = sectors_.find(sectorIndex(line_va));
    if (sector == nullptr)
        return std::nullopt;
    const uint32_t slot = (*sector)[slotIndex(line_va)];
    if (slot == kEmptySlot)
        return std::nullopt;
    return slot;
}

std::optional<uint32_t>
SequenceNumberCache::increment(uint64_t line_va)
{
    if (!cache_.access(line_va, /*write=*/true)) {
        ++update_misses_;
        return std::nullopt;
    }
    uint32_t *slot = slotFor(line_va);
    panic_if(slot == nullptr, "SNC directory/slot table divergence");
    if (*slot == kEmptySlot) {
        ++update_misses_;
        return std::nullopt;
    }
    ++update_hits_;
    if (*slot >= config_.maxSeqnum()) {
        // Pad-reuse hazard: hardware would trigger a re-encryption
        // epoch here. We wrap and count (see DESIGN.md section 7).
        ++overflows_;
        *slot = 1;
    } else {
        ++*slot;
    }
    return *slot;
}

SncInstall
SequenceNumberCache::install(uint64_t line_va, uint32_t seqnum)
{
    SncInstall result;

    // Resident sector: populate the slot in place, no displacement.
    if (cache_.access(line_va, /*write=*/true)) {
        uint32_t *slot = slotFor(line_va);
        panic_if(slot == nullptr, "SNC directory/slot table divergence");
        if (*slot == kEmptySlot)
            ++occupancy_;
        *slot = seqnum;
        result.installed = true;
        return result;
    }

    const auto victim = cache_.fill(line_va, /*dirty=*/false, 0);
    if (!victim.has_value()) {
        ++rejected_;
        return result; // no-replacement policy, set full
    }
    result.installed = true;

    if (victim->valid) {
        const uint64_t victim_index = sectorIndex(victim->line_addr);
        uint32_t *const *sector = sectors_.find(victim_index);
        panic_if(sector == nullptr,
                 "SNC victim sector has no slot table");
        for (size_t i = 0; i < config_.sector_lines; ++i) {
            if ((*sector)[i] == kEmptySlot)
                continue;
            result.victims.push_back(SncEntry{
                victim->line_addr + i * config_.l2_line_size,
                (*sector)[i]});
            --occupancy_;
            ++spills_;
        }
        sector_arena_.release(
            reinterpret_cast<uint8_t *>(*sector));
        sectors_.erase(victim_index);
        if (!result.victims.empty()) {
            result.victim_valid = true;
            result.victim_line = result.victims.front().line_va;
            result.victim_seqnum = result.victims.front().seqnum;
        }
    }

    const uint64_t base = sectorBase(line_va);
    uint32_t *&slots = sectors_.touch(sectorIndex(line_va));
    panic_if(slots != nullptr, "SNC slot table leaked past its tag");
    slots = reinterpret_cast<uint32_t *>(sector_arena_.allocate());
    std::fill_n(slots, config_.sector_lines, kEmptySlot);
    slots[slotIndex(line_va)] = seqnum;
    ++occupancy_;
    for (uint32_t i = 0; i < config_.sector_lines; ++i) {
        const uint64_t other = base + uint64_t{i} * config_.l2_line_size;
        if (other != line_va)
            result.cofetched.push_back(other);
    }
    return result;
}

bool
SequenceNumberCache::setEntry(uint64_t line_va, uint32_t seqnum)
{
    if (!cache_.probe(line_va))
        return false;
    uint32_t *slot = slotFor(line_va);
    panic_if(slot == nullptr, "SNC directory/slot table divergence");
    if (*slot == kEmptySlot)
        ++occupancy_;
    *slot = seqnum;
    return true;
}

std::vector<SncEntry>
SequenceNumberCache::flush()
{
    std::vector<SncEntry> entries;
    for (const mem::Victim &victim : cache_.invalidateAll()) {
        uint32_t *const *sector =
            sectors_.find(sectorIndex(victim.line_addr));
        if (sector == nullptr)
            continue;
        for (size_t i = 0; i < config_.sector_lines; ++i) {
            if ((*sector)[i] == kEmptySlot)
                continue;
            entries.push_back(SncEntry{
                victim.line_addr + i * config_.l2_line_size,
                (*sector)[i]});
        }
    }
    sectors_.clear();
    sector_arena_.clear();
    occupancy_ = 0;
    return entries;
}

void
SequenceNumberCache::resetStats()
{
    query_hits_.reset();
    query_misses_.reset();
    update_hits_.reset();
    update_misses_.reset();
    spills_.reset();
    rejected_.reset();
    overflows_.reset();
    cache_.resetStats();
}

void
SequenceNumberCache::regStats(util::StatGroup &group) const
{
    group.regCounter("query_hits", &query_hits_);
    group.regCounter("query_misses", &query_misses_);
    group.regCounter("update_hits", &update_hits_);
    group.regCounter("update_misses", &update_misses_);
    group.regCounter("spills", &spills_);
    group.regCounter("rejected_installs", &rejected_);
    group.regCounter("seqnum_overflows", &overflows_);
}

} // namespace secproc::secure
