/**
 * @file
 * Insecure baseline engine: the reference machine all slowdown
 * percentages are measured against.
 */

#include "secure/engines.hh"

namespace secproc::secure
{

FillPlan
BaselineEngine::planFill(uint64_t line_va, bool ifetch,
                         mem::RegionKind kind)
{
    (void)kind;
    FillPlan plan;
    plan.line_va = line_va;
    plan.ifetch = ifetch;
    plan.state = ifetch ? LineCipherState::Plain : lineState(line_va);
    return plan;
}

EvictPlan
BaselineEngine::planEvict(uint64_t line_va, mem::RegionKind kind)
{
    (void)kind;
    EvictPlan plan;
    plan.line_va = line_va;
    plan.state = LineCipherState::Plain;
    line_states_.insert(lineIdx(line_va), LineCipherState::Plain);
    return plan;
}

FillResult
BaselineEngine::scheduleFill(const FillPlan &plan, uint64_t cycle)
{
    ++plain_fills_;
    FillResult result;
    result.ready_cycle = channel_.scheduleRead(
        cycle, mem::Traffic::DataFill, /*small=*/false, plan.line_va);
    return result;
}

void
BaselineEngine::scheduleEvict(const EvictPlan &plan, uint64_t cycle)
{
    channel_.enqueueWrite(cycle, mem::Traffic::DataWriteback,
                          /*small=*/false, plan.line_va);
}

void
BaselineEngine::applyFill(const FillPlan &plan,
                          std::span<uint8_t> bytes) const
{
    (void)plan;
    (void)bytes; // memory is plaintext on the baseline machine
}

void
BaselineEngine::applyEvict(const EvictPlan &plan,
                           std::span<uint8_t> bytes) const
{
    (void)plan;
    (void)bytes;
}

} // namespace secproc::secure
