/**
 * @file
 * Compartment key table.
 *
 * XOM isolates concurrently active tasks in "compartments" (paper
 * Section 2.3): each has an ID and the symmetric key its program was
 * encrypted with. The key table lives inside the security boundary;
 * the protection engines look up the active compartment's cipher
 * here. Register/cache tagging with compartment IDs is modelled by
 * the engines and the context-switch ablation.
 */

#ifndef SECPROC_SECURE_KEY_TABLE_HH
#define SECPROC_SECURE_KEY_TABLE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/block_cipher.hh"

namespace secproc::secure
{

/** Compartment (XOM ID). 0 is reserved for the null/shared domain. */
using CompartmentId = uint16_t;

/** Cipher family used for line encryption and pad generation. */
enum class CipherKind
{
    Des,
    TripleDes,
    Aes128,
};

/**
 * Maps compartments to their symmetric ciphers.
 */
class KeyTable
{
  public:
    KeyTable() = default;

    /**
     * Install a compartment's symmetric key (as unwrapped from the
     * vendor's RSA capsule). Replaces any previous key. Fatal when
     * the key length does not match @p kind (DES = 8, 3DES = 24,
     * AES-128 = 16 bytes): a malformed key must never reach cipher
     * construction.
     */
    void install(CompartmentId id, CipherKind kind,
                 const std::vector<uint8_t> &key);

    /** Remove a compartment's key (task exit). */
    void remove(CompartmentId id);

    /** @return the compartment's cipher, or nullptr if absent. */
    const crypto::BlockCipher *cipher(CompartmentId id) const;

    /** Number of installed compartments. */
    size_t size() const { return ciphers_.size(); }

  private:
    std::unordered_map<CompartmentId,
                       std::unique_ptr<crypto::BlockCipher>> ciphers_;
};

/** Construct a cipher of @p kind keyed with @p key. */
std::unique_ptr<crypto::BlockCipher>
makeCipher(CipherKind kind, const std::vector<uint8_t> &key);

/** Key length in bytes expected for @p kind. */
size_t cipherKeySize(CipherKind kind);

/**
 * Validate an untrusted wire value against the known cipher kinds.
 * Parsers MUST route enum fields through this instead of a raw
 * static_cast: an out-of-range kind would otherwise travel as a
 * "valid" CipherKind until cipherKeySize()/makeCipher() panic — a
 * remote DoS from one attacker-controlled u32.
 */
std::optional<CipherKind> cipherKindFromU32(uint32_t v);

} // namespace secproc::secure

#endif // SECPROC_SECURE_KEY_TABLE_HH
