/**
 * @file
 * Key table implementation.
 */

#include "secure/key_table.hh"

#include "crypto/aes128.hh"
#include "crypto/des.hh"
#include "crypto/triple_des.hh"
#include "util/logging.hh"

namespace secproc::secure
{

std::unique_ptr<crypto::BlockCipher>
makeCipher(CipherKind kind, const std::vector<uint8_t> &key)
{
    fatal_if(key.size() != cipherKeySize(kind),
             "key of ", key.size(), " bytes for a cipher that needs ",
             cipherKeySize(kind));
    std::unique_ptr<crypto::BlockCipher> cipher;
    switch (kind) {
      case CipherKind::Des:
        cipher = std::make_unique<crypto::Des>();
        break;
      case CipherKind::TripleDes:
        cipher = std::make_unique<crypto::TripleDes>();
        break;
      case CipherKind::Aes128:
        cipher = std::make_unique<crypto::Aes128>();
        break;
    }
    cipher->setKey(key.data(), key.size());
    return cipher;
}

size_t
cipherKeySize(CipherKind kind)
{
    switch (kind) {
      case CipherKind::Des: return 8;
      case CipherKind::TripleDes: return 24;
      case CipherKind::Aes128: return 16;
    }
    panic("unknown cipher kind");
}

std::optional<CipherKind>
cipherKindFromU32(uint32_t v)
{
    switch (v) {
      case static_cast<uint32_t>(CipherKind::Des):
      case static_cast<uint32_t>(CipherKind::TripleDes):
      case static_cast<uint32_t>(CipherKind::Aes128):
        return static_cast<CipherKind>(v);
      default:
        return std::nullopt;
    }
}

void
KeyTable::install(CompartmentId id, CipherKind kind,
                  const std::vector<uint8_t> &key)
{
    fatal_if(id == 0, "compartment 0 is reserved for the null domain");
    ciphers_[id] = makeCipher(kind, key);
}

void
KeyTable::remove(CompartmentId id)
{
    ciphers_.erase(id);
}

const crypto::BlockCipher *
KeyTable::cipher(CompartmentId id) const
{
    const auto it = ciphers_.find(id);
    return it == ciphers_.end() ? nullptr : it->second.get();
}

} // namespace secproc::secure
