/**
 * @file
 * Register-file protection implementation.
 */

#include "secure/interrupt_guard.hh"

#include <cstring>

#include "crypto/sha.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace secproc::secure
{

InterruptGuard::InterruptGuard(const InterruptGuardConfig &config,
                               const crypto::BlockCipher &cipher)
    : config_(config), cipher_(cipher), engine_(config.crypto)
{
    fatal_if(config_.num_registers == 0,
             "the register file cannot be empty");
}

uint64_t
InterruptGuard::seed(uint64_t event_id) const
{
    // A dedicated namespace far away from line seeds: register saves
    // and memory lines must never share a pad even under the same
    // compartment key. The mutating event id is the paper's "varying
    // the XOM ID" (Section 3.4).
    return (0xE7ull << 56) | event_id;
}

size_t
InterruptGuard::imageBytes() const
{
    const size_t raw = size_t{config_.num_registers} * 8;
    const size_t bs = cipher_.blockSize();
    return (raw + bs - 1) / bs * bs;
}

void
InterruptGuard::setTrace(obs::TraceSink *sink)
{
    trace_ = sink;
    if (sink != nullptr)
        trace_track_ = sink->track("interrupt_guard");
}

uint64_t
InterruptGuard::scheduleSave(uint64_t cycle)
{
    ++events_;
    trace_cycle_ = cycle;
    switch (config_.mode) {
      case RegisterSaveMode::Direct:
        // Serial: the OS cannot run until the register block has
        // passed through the crypto engine.
        return engine_.schedule(cycle + config_.base_cost);
      case RegisterSaveMode::OtpPremade: {
        // The pad was pre-generated after the previous resume; if
        // interrupts arrive faster than the engine can pre-generate,
        // the residual wait is exposed.
        const uint64_t pad_wait =
            pad_ready_ > cycle ? pad_ready_ - cycle : 0;
        return cycle + config_.base_cost + pad_wait + 1; // 1 = XOR
      }
    }
    panic("unhandled register save mode");
}

uint64_t
InterruptGuard::scheduleRestore(uint64_t cycle)
{
    trace_cycle_ = cycle;
    switch (config_.mode) {
      case RegisterSaveMode::Direct:
        return engine_.schedule(cycle + config_.base_cost);
      case RegisterSaveMode::OtpPremade: {
        // The restore pad is the save pad (XOR is an involution), so
        // the restore itself is one XOR; afterwards the engine starts
        // pre-generating the *next* save's pad in the background.
        const uint64_t resumed = cycle + config_.base_cost + 1;
        pad_ready_ = engine_.schedule(resumed);
        return resumed;
      }
    }
    panic("unhandled register save mode");
}

RegisterSave
InterruptGuard::save(const std::vector<uint64_t> &registers)
{
    fatal_if(registers.size() != config_.num_registers,
             "expected ", config_.num_registers, " registers, got ",
             registers.size());
    RegisterSave out;
    out.event_id = next_event_++;
    out.image.assign(imageBytes(), 0);
    for (size_t i = 0; i < registers.size(); ++i)
        util::storeLe64(out.image.data() + i * 8, registers[i]);
    crypto::otpTransform(cipher_, seed(out.event_id), out.image.data(),
                         out.image.size());
    out.mac = computeMac(out.event_id, out.image);
    last_saved_event_ = out.event_id;
    return out;
}

std::optional<std::vector<uint64_t>>
InterruptGuard::restore(const RegisterSave &saved)
{
    // Replay detection: only the most recent save may resume. A
    // malicious OS handing back an older (authentic) save is exactly
    // the replay attack of Section 2.2.
    const bool pass =
        saved.event_id == last_saved_event_ &&
        computeMac(saved.event_id, saved.image) == saved.mac;
    if (trace_ != nullptr) {
        trace_->instant(trace_track_, "decision.interrupt_guard",
                        trace_cycle_,
                        {{"event", saved.event_id}, {"pass", pass}});
    }
    if (!pass) {
        ++detections_;
        return std::nullopt;
    }
    std::vector<uint8_t> image = saved.image;
    crypto::otpTransform(cipher_, seed(saved.event_id), image.data(),
                         image.size());
    std::vector<uint64_t> registers(config_.num_registers);
    for (size_t i = 0; i < registers.size(); ++i)
        registers[i] = util::loadLe64(image.data() + i * 8);
    return registers;
}

std::array<uint8_t, 8>
InterruptGuard::computeMac(uint64_t event_id,
                           const std::vector<uint8_t> &image) const
{
    // MAC key derived from the cipher rather than stored: hash the
    // cipher's encryption of a fixed block (a PRF evaluation only
    // the key holder can compute).
    std::vector<uint8_t> key(cipher_.blockSize(), 0x5A);
    cipher_.encryptBlock(key.data(), key.data());

    std::vector<uint8_t> msg(8 + image.size());
    util::storeLe64(msg.data(), event_id);
    std::memcpy(msg.data() + 8, image.data(), image.size());
    const auto full = crypto::hmacSha256(key.data(), key.size(),
                                         msg.data(), msg.size());
    std::array<uint8_t, 8> mac{};
    std::memcpy(mac.data(), full.data(), mac.size());
    return mac;
}

void
InterruptGuard::regStats(util::StatGroup &group) const
{
    group.regCounter("interrupt_events", &events_);
    group.regCounter("tamper_detections", &detections_);
}

} // namespace secproc::secure
