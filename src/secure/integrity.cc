/**
 * @file
 * Integrity engine implementation.
 */

#include "secure/integrity.hh"

#include <cstring>

#include "crypto/sha.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace secproc::secure
{

namespace
{

mem::CacheConfig
nodeCacheConfig(const IntegrityConfig &config)
{
    mem::CacheConfig cache;
    cache.name = "merkle_nodes";
    cache.line_size = 64; // one hash node per entry
    cache.size_bytes =
        std::max<uint64_t>(config.node_cache_bytes, 64);
    cache.assoc = 8;
    cache.policy = mem::ReplacementPolicy::Lru;
    return cache;
}

} // namespace

IntegrityEngine::IntegrityEngine(const IntegrityConfig &config)
    : config_(config), node_cache_(nodeCacheConfig(config))
{
    fatal_if(config_.tree_arity < 2, "tree arity must be >= 2");
    // Levels needed so that arity^levels covers all leaves.
    const uint64_t leaves =
        std::max<uint64_t>(1, config_.protected_bytes /
                                  config_.line_size);
    uint32_t levels = 0;
    uint64_t covered = 1;
    while (covered < leaves) {
        covered *= config_.tree_arity;
        ++levels;
    }
    tree_levels_ = levels;
}

uint64_t
IntegrityEngine::hashAt(uint64_t start)
{
    // One fully pipelined hash unit: flat latency, unit initiation.
    const uint64_t begin = std::max(start, hash_engine_free_);
    hash_engine_free_ = begin + 1;
    return begin + config_.hash_latency;
}

uint64_t
IntegrityEngine::nodeAddress(uint32_t level, uint64_t index) const
{
    // Synthetic node namespace far above any program address.
    return (0xFACEull << 44) | (static_cast<uint64_t>(level) << 36) |
           (index << 6);
}

uint64_t
IntegrityEngine::macTableAddr(uint64_t line_va) const
{
    constexpr uint64_t kMacTableBase = 0x7800'0000'0000ull;
    return kMacTableBase +
           (line_va / config_.line_size) * config_.mac_bytes;
}

uint64_t
IntegrityEngine::verifyFill(uint64_t line_va, uint64_t request_cycle,
                            uint64_t data_arrival,
                            mem::MemoryChannel &channel)
{
    switch (config_.mode) {
      case IntegrityMode::None:
        return data_arrival;

      case IntegrityMode::MacBlocking:
      case IntegrityMode::MacSpeculative: {
        ++verifications_;
        const uint64_t mac_arrival = channel.scheduleRead(
            request_cycle, mem::Traffic::MacFetch, /*small=*/true,
            macTableAddr(line_va));
        const uint64_t verified =
            hashAt(std::max(mac_arrival, data_arrival));
        return config_.mode == IntegrityMode::MacBlocking
                   ? verified
                   : data_arrival;
      }

      case IntegrityMode::MerkleCached: {
        ++verifications_;
        // Walk leaf-to-root; stop at the first cached (trusted)
        // node. Each uncached level costs a node fetch + hash.
        uint64_t index = (line_va / config_.line_size);
        uint64_t ready = data_arrival;
        for (uint32_t level = 0; level < tree_levels_; ++level) {
            index /= config_.tree_arity;
            const uint64_t addr = nodeAddress(level + 1, index);
            if (node_cache_.access(addr, /*write=*/false)) {
                ++node_hits_;
                ready = hashAt(ready);
                break; // verified against a trusted cached node
            }
            ++node_misses_;
            const uint64_t node_arrival = channel.scheduleRead(
                request_cycle, mem::Traffic::MacFetch, /*small=*/true,
                addr);
            ready = hashAt(std::max(ready, node_arrival));
            const auto victim =
                node_cache_.fill(addr, /*dirty=*/false, 0);
            if (victim.has_value() && victim->valid &&
                victim->dirty) {
                channel.enqueueWrite(ready,
                                     mem::Traffic::MacWriteback,
                                     /*small=*/true, victim->line_addr);
            }
        }
        return ready;
      }
    }
    panic("unhandled integrity mode");
}

void
IntegrityEngine::updateEvict(uint64_t line_va, uint64_t cycle,
                             mem::MemoryChannel &channel)
{
    switch (config_.mode) {
      case IntegrityMode::None:
        return;
      case IntegrityMode::MacBlocking:
      case IntegrityMode::MacSpeculative: {
        const uint64_t mac_ready = hashAt(cycle);
        channel.enqueueWrite(mac_ready, mem::Traffic::MacWriteback,
                             /*small=*/true, macTableAddr(line_va));
        return;
      }
      case IntegrityMode::MerkleCached: {
        // Update the leaf-to-root path in the node cache; dirty
        // nodes spill lazily on replacement.
        uint64_t index = line_va / config_.line_size;
        uint64_t ready = hashAt(cycle);
        for (uint32_t level = 0; level < tree_levels_; ++level) {
            index /= config_.tree_arity;
            const uint64_t addr = nodeAddress(level + 1, index);
            if (!node_cache_.access(addr, /*write=*/true)) {
                const auto victim =
                    node_cache_.fill(addr, /*dirty=*/true, 0);
                if (victim.has_value() && victim->valid &&
                    victim->dirty) {
                    channel.enqueueWrite(ready,
                                         mem::Traffic::MacWriteback,
                                         /*small=*/true,
                                         victim->line_addr);
                }
                // Missing node must be fetched to be updated.
                channel.scheduleRead(cycle, mem::Traffic::MacFetch,
                                     /*small=*/true, addr);
            }
            ready = hashAt(ready);
        }
        return;
      }
    }
}

LineMac
IntegrityEngine::computeMac(uint64_t line_va, uint32_t seqnum,
                            std::span<const uint8_t> ciphertext) const
{
    panic_if(mac_key_.empty(), "MAC key not installed");
    std::vector<uint8_t> message(12 + ciphertext.size());
    util::storeLe64(message.data(), line_va);
    message[8] = static_cast<uint8_t>(seqnum);
    message[9] = static_cast<uint8_t>(seqnum >> 8);
    message[10] = static_cast<uint8_t>(seqnum >> 16);
    message[11] = static_cast<uint8_t>(seqnum >> 24);
    std::memcpy(message.data() + 12, ciphertext.data(),
                ciphertext.size());
    const auto full = crypto::hmacSha256(mac_key_.data(),
                                         mac_key_.size(),
                                         message.data(), message.size());
    LineMac mac;
    std::memcpy(mac.data(), full.data(), mac.size());
    return mac;
}

void
IntegrityEngine::storeMac(uint64_t line_va, const LineMac &mac)
{
    mac_table_.insert(lineIndex(line_va), mac);
}

bool
IntegrityEngine::verifyMac(uint64_t line_va, uint32_t seqnum,
                           std::span<const uint8_t> ciphertext) const
{
    const LineMac *stored = mac_table_.find(lineIndex(line_va));
    if (stored == nullptr)
        return false;
    return computeMac(line_va, seqnum, ciphertext) == *stored;
}

void
IntegrityEngine::corruptStoredMac(uint64_t line_va, const LineMac &mac)
{
    mac_table_.insert(lineIndex(line_va), mac);
}

std::optional<LineMac>
IntegrityEngine::storedMac(uint64_t line_va) const
{
    const LineMac *stored = mac_table_.find(lineIndex(line_va));
    if (stored == nullptr)
        return std::nullopt;
    return *stored;
}

void
IntegrityEngine::regStats(util::StatGroup &group) const
{
    group.regCounter("verifications", &verifications_);
    group.regCounter("node_cache_hits", &node_hits_);
    group.regCounter("node_cache_misses", &node_misses_);
}

} // namespace secproc::secure
