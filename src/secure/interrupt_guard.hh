/**
 * @file
 * Register-file protection across OS interrupts.
 *
 * The paper's threat model (Section 1) includes a hijacked operating
 * system that reads architectural register values when it fields an
 * interrupt, so XOM encrypts the register file into a save area
 * before the OS runs and decrypts it on resume. Section 3.4 recalls
 * the key detail: the seed must *mutate* per event — XOM varies the
 * XOM ID — or the save-area ciphertext of successive interrupts
 * becomes E(r) XOR E(r') analyzable, the same constant-seed weakness
 * as for data lines.
 *
 * This module models that machinery both ways:
 *  - Direct: each save encrypts the register block through the
 *    crypto engine on the critical path (XOM-style);
 *  - OtpPremade: the pad for the *next* interrupt's save is
 *    generated in the background right after the previous resume, so
 *    a save costs only the XOR — the paper's one-time-pad idea
 *    applied to the interrupt path.
 *
 * Functionally, saves bind the register block to an interrupt
 * sequence number and a MAC, so a malicious OS that tampers with the
 * saved image (or replays an old one) is detected on resume.
 */

#ifndef SECPROC_SECURE_INTERRUPT_GUARD_HH
#define SECPROC_SECURE_INTERRUPT_GUARD_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/block_cipher.hh"
#include "crypto/latency.hh"
#include "obs/trace.hh"
#include "util/stats.hh"

namespace secproc::secure
{

/** How register saves are encrypted. */
enum class RegisterSaveMode
{
    /** Serial encryption on the interrupt critical path. */
    Direct,
    /** One-time pad pre-generated in the background after resume. */
    OtpPremade,
};

/** Static configuration. */
struct InterruptGuardConfig
{
    RegisterSaveMode mode = RegisterSaveMode::OtpPremade;

    /** Architectural registers preserved across an interrupt. */
    uint32_t num_registers = 64;

    /** Crypto engine timing shared with the line engines. */
    crypto::CryptoEngineConfig crypto;

    /** Fixed interrupt entry/exit pipeline cost (flush + refill). */
    uint32_t base_cost = 30;
};

/** An encrypted register save area image. */
struct RegisterSave
{
    /** Interrupt sequence number the seed was formed with. */
    uint64_t event_id = 0;
    /** Encrypted register block. */
    std::vector<uint8_t> image;
    /** Truncated MAC over (event_id, image). */
    std::array<uint8_t, 8> mac{};
};

/**
 * Functional + timing model of register save/restore protection.
 */
class InterruptGuard
{
  public:
    /**
     * @param config Options.
     * @param cipher Compartment cipher used for pads/encryption
     *        (not owned; must outlive the guard).
     */
    InterruptGuard(const InterruptGuardConfig &config,
                   const crypto::BlockCipher &cipher);

    // ---------------------------------------------------------- timing

    /**
     * Timing of one interrupt entry (save) at @p cycle.
     * @return cycle the OS may start running.
     */
    uint64_t scheduleSave(uint64_t cycle);

    /**
     * Timing of the matching resume (restore) at @p cycle.
     * @return cycle the user program resumes execution.
     */
    uint64_t scheduleRestore(uint64_t cycle);

    // ------------------------------------------------------ functional

    /**
     * Encrypt @p registers into a save area image. Mutates the event
     * sequence number so no two saves share a pad (Section 3.4).
     */
    RegisterSave save(const std::vector<uint64_t> &registers);

    /**
     * Decrypt and verify a save area image.
     * @return the register values, or std::nullopt when the image
     *         was tampered with or replayed (MAC/event mismatch).
     */
    std::optional<std::vector<uint64_t>>
    restore(const RegisterSave &saved);

    /** Interrupt events so far. */
    uint64_t events() const { return events_.value(); }

    /** Saves rejected on restore (tamper/replay detections). */
    uint64_t detections() const { return detections_.value(); }

    const InterruptGuardConfig &config() const { return config_; }

    void regStats(util::StatGroup &group) const;

    /**
     * Trace restore verdicts onto @p sink (nullptr detaches): the
     * "interrupt_guard" track carries one pass/fail instant per
     * restore, stamped with the cycle of the most recent
     * scheduleSave/scheduleRestore (0 when the functional path runs
     * without the timing one).
     */
    void setTrace(obs::TraceSink *sink);

  private:
    InterruptGuardConfig config_;
    const crypto::BlockCipher &cipher_;
    crypto::CryptoEngineModel engine_;

    /** Next interrupt's sequence number (mutating seed input). */
    uint64_t next_event_ = 1;

    /** Most recent save's event id (replays of older ids fail). */
    uint64_t last_saved_event_ = 0;

    /** OtpPremade: cycle the pre-generated pad becomes available. */
    uint64_t pad_ready_ = 0;

    util::Counter events_;
    util::Counter detections_;

    obs::TraceSink *trace_ = nullptr;
    obs::TrackId trace_track_ = 0;
    /** Cycle of the most recent timing-path call (trace stamp). */
    uint64_t trace_cycle_ = 0;

    /** Pad/encryption seed for @p event_id (never address-derived). */
    uint64_t seed(uint64_t event_id) const;

    /** Register block size in bytes, padded to cipher blocks. */
    size_t imageBytes() const;

    std::array<uint8_t, 8> computeMac(uint64_t event_id,
                                      const std::vector<uint8_t> &image)
        const;
};

} // namespace secproc::secure

#endif // SECPROC_SECURE_INTERRUPT_GUARD_HH
