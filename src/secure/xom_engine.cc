/**
 * @file
 * XOM-style engine: direct line encryption with the crypto unit on
 * the memory access critical path (paper Section 2, Figure 2).
 */

#include "secure/engines.hh"

#include "crypto/block_cipher.hh"

namespace secproc::secure
{

FillPlan
XomEngine::planFill(uint64_t line_va, bool ifetch, mem::RegionKind kind)
{
    FillPlan plan;
    plan.line_va = line_va;
    plan.ifetch = ifetch;
    if (kind == mem::RegionKind::Plaintext) {
        plan.state = LineCipherState::Plain;
    } else if (ifetch) {
        // Vendor-encrypted text: always ciphertext in memory.
        plan.state = LineCipherState::Direct;
    } else {
        plan.state = lineState(line_va);
    }
    return plan;
}

EvictPlan
XomEngine::planEvict(uint64_t line_va, mem::RegionKind kind)
{
    EvictPlan plan;
    plan.line_va = line_va;
    plan.state = kind == mem::RegionKind::Plaintext
                     ? LineCipherState::Plain
                     : LineCipherState::Direct;
    line_states_.insert(lineIdx(line_va), plan.state);
    return plan;
}

FillResult
XomEngine::scheduleFill(const FillPlan &plan, uint64_t cycle)
{
    FillResult result;
    const uint64_t arrival = channel_.scheduleRead(
        cycle, mem::Traffic::DataFill, /*small=*/false, plan.line_va);
    if (plan.state == LineCipherState::Direct) {
        // The defining XOM cost: decryption serializes after the
        // fetch, so the fill takes memory + crypto cycles.
        result.ready_cycle = crypto_engine_.schedule(arrival);
        ++slow_fills_;
    } else {
        result.ready_cycle = arrival;
        ++plain_fills_;
    }
    return result;
}

void
XomEngine::scheduleEvict(const EvictPlan &plan, uint64_t cycle)
{
    if (plan.state == LineCipherState::Direct) {
        // Encrypted in the write buffer, off the critical path.
        const uint64_t encrypted = crypto_engine_.schedule(cycle);
        channel_.enqueueWrite(encrypted, mem::Traffic::DataWriteback,
                              /*small=*/false, plan.line_va);
    } else {
        channel_.enqueueWrite(cycle, mem::Traffic::DataWriteback,
                              /*small=*/false, plan.line_va);
    }
}

void
XomEngine::applyFill(const FillPlan &plan,
                     std::span<uint8_t> bytes) const
{
    if (plan.state == LineCipherState::Direct)
        crypto::ecbDecrypt(activeCipher(), bytes.data(), bytes.size());
}

void
XomEngine::applyEvict(const EvictPlan &plan,
                      std::span<uint8_t> bytes) const
{
    if (plan.state == LineCipherState::Direct)
        crypto::ecbEncrypt(activeCipher(), bytes.data(), bytes.size());
}

} // namespace secproc::secure
