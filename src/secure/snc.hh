/**
 * @file
 * The Sequence Number Cache (SNC) — the paper's central hardware
 * structure (Section 4).
 *
 * The SNC sits inside the security boundary below L2 and remembers,
 * for each L2 line that has gone off chip, the sequence number used
 * to form that line's one-time-pad seed. It is indexed by the line's
 * *virtual* address. Capacity is expressed in bytes with 2-byte
 * entries by default (paper Section 5.1: a 64KB SNC holds 32K
 * sequence numbers and thus covers 4MB of memory).
 *
 * Two operating policies (Section 4.1):
 *  - LRU replacement: evicted sequence numbers spill to an encrypted
 *    in-memory table; misses fetch them back.
 *  - No replacement: once full, lines without entries fall back to
 *    XOM-style direct encryption.
 */

#ifndef SECPROC_SECURE_SNC_HH
#define SECPROC_SECURE_SNC_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/cache.hh"
#include "util/page_arena.hh"
#include "util/radix_array.hh"
#include "util/stats.hh"

namespace secproc::secure
{

/** Static SNC geometry and policy. */
struct SncConfig
{
    /** Total data capacity in bytes (32KB / 64KB / 128KB in Fig. 6). */
    uint64_t capacity_bytes = 64 * 1024;

    /** Bytes per sequence number (paper: 2). */
    uint32_t bytes_per_entry = 2;

    /** Associativity; 0 = fully associative (Fig. 7 compares 32). */
    uint32_t assoc = 0;

    /** true = LRU replacement; false = no-replacement policy. */
    bool allow_replacement = true;

    /** L2 line size; consecutive L2 lines map to consecutive sets. */
    uint32_t l2_line_size = 128;

    /**
     * Consecutive L2 lines sharing one directory tag (1 = the
     * paper's per-line organization). Sectoring cuts the tag
     * overhead CactiLite charges (one tag per sector instead of per
     * entry) and acts as a spatial prefetch — a sector miss brings
     * its neighbours' sequence numbers along — at the cost of
     * coarser eviction (a victim sector spills every valid entry).
     */
    uint32_t sector_lines = 1;

    /** Number of sequence numbers the SNC can hold. */
    uint64_t entries() const { return capacity_bytes / bytes_per_entry; }

    /** Directory tags (sectors) implied by the geometry. */
    uint64_t sectors() const { return entries() / sector_lines; }

    /** Bytes of address space one sector tag covers. */
    uint64_t sectorSpan() const
    {
        return uint64_t{l2_line_size} * sector_lines;
    }

    /** Bytes of memory whose lines are covered when fully resident. */
    uint64_t coverageBytes() const { return entries() * l2_line_size; }

    /** Largest storable sequence number. */
    uint32_t maxSeqnum() const
    {
        return bytes_per_entry >= 4
                   ? 0xFFFFFFFFu
                   : (1u << (8 * bytes_per_entry)) - 1;
    }
};

/** One flushed or spilled entry (context switches, sector victims). */
struct SncEntry
{
    uint64_t line_va = 0;
    uint32_t seqnum = 0;
};

/** Result of installing an entry (query- or update-miss fill). */
struct SncInstall
{
    bool installed = false;     ///< false only under no-replacement
    bool victim_valid = false;  ///< at least one entry was displaced
    uint64_t victim_line = 0;   ///< first displaced line's address
    uint32_t victim_seqnum = 0; ///< its sequence number (to spill)

    /** Every displaced entry (== 1 unless the SNC is sectored). */
    std::vector<SncEntry> victims;

    /**
     * Sectored only: the other L2 lines of the newly allocated
     * sector. The engine populates the ones it has sequence numbers
     * for (the sector fetch brings them from memory together).
     */
    std::vector<uint64_t> cofetched;
};

/**
 * On-chip sequence-number cache.
 */
class SequenceNumberCache
{
  public:
    explicit SequenceNumberCache(const SncConfig &config);

    /** Look up the sequence number for a line; refreshes recency. */
    std::optional<uint32_t> query(uint64_t line_va);

    /** Presence probe without recency or statistics effects. */
    bool contains(uint64_t line_va) const;

    /**
     * Read a resident line's sequence number without recency or
     * statistics effects (pad-prediction probes must not perturb
     * replacement state).
     */
    std::optional<uint32_t> peek(uint64_t line_va) const;

    /**
     * Increment a resident line's sequence number (update hit,
     * Equation 4). @return the new value, or std::nullopt on miss.
     * Wraps to 1 on overflow and counts the event — a wrap would
     * reuse pads, so real hardware must re-encrypt; see DESIGN.md.
     */
    std::optional<uint32_t> increment(uint64_t line_va);

    /**
     * Install a (line, seqnum) pair, displacing a victim sector if
     * needed. Under the no-replacement policy the install is refused
     * when the set is full. Populating a slot of an already-resident
     * sector never displaces anything.
     */
    SncInstall install(uint64_t line_va, uint32_t seqnum);

    /**
     * Populate one slot of an already-resident sector (engine-side
     * sector-fetch completion). @return false if the sector is not
     * resident.
     */
    bool setEntry(uint64_t line_va, uint32_t seqnum);

    /** Remove every entry (flush-style context switch). */
    std::vector<SncEntry> flush();

    /** Currently resident (populated) entries. */
    uint64_t occupancy() const { return occupancy_; }

    /** Currently resident sector tags. */
    uint64_t sectorOccupancy() const { return cache_.occupancy(); }

    const SncConfig &config() const { return config_; }

    /** Statistics. @{ */
    uint64_t queryHits() const { return query_hits_.value(); }
    uint64_t queryMisses() const { return query_misses_.value(); }
    uint64_t updateHits() const { return update_hits_.value(); }
    uint64_t updateMisses() const { return update_misses_.value(); }
    uint64_t spills() const { return spills_.value(); }
    uint64_t rejectedInstalls() const { return rejected_.value(); }
    uint64_t overflows() const { return overflows_.value(); }
    void resetStats();
    void regStats(util::StatGroup &group) const;
    /** @} */

  private:
    /** Sentinel for a sector slot holding no sequence number. */
    static constexpr uint32_t kEmptySlot = ~uint32_t{0};

    SncConfig config_;
    mem::Cache cache_;

    /**
     * Sector index (sector base / sector span) -> per-line slot
     * table (kEmptySlot = none). Slot tables are fixed-size arena
     * blocks behind a radix directory: the install/spill churn of a
     * write-heavy workload used to allocate and free one heap
     * vector per sector.
     */
    util::RadixArray<uint32_t *> sectors_;
    util::PageArena sector_arena_;
    uint64_t occupancy_ = 0;

    /** Sector base address containing @p line_va. */
    uint64_t sectorBase(uint64_t line_va) const;

    /** Radix key of the sector containing @p line_va. */
    uint64_t sectorIndex(uint64_t line_va) const;

    /** Slot index of @p line_va within its sector. */
    size_t slotIndex(uint64_t line_va) const;

    /** The resident slot for @p line_va, or nullptr. */
    uint32_t *slotFor(uint64_t line_va);

    util::Counter query_hits_;
    util::Counter query_misses_;
    util::Counter update_hits_;
    util::Counter update_misses_;
    util::Counter spills_;
    util::Counter rejected_;
    util::Counter overflows_;
};

} // namespace secproc::secure

#endif // SECPROC_SECURE_SNC_HH
