/**
 * @file
 * Protection engine interface: the policy that guards the L2-memory
 * boundary.
 *
 * Three implementations reproduce the paper's three machines:
 *  - BaselineEngine: insecure processor, plain fills and write-backs;
 *  - XomEngine: direct line encryption on the critical path
 *    (fill latency = memory + crypto);
 *  - OtpEngine: one-time-pad encryption with a Sequence Number
 *    Cache (fill latency = max(memory, crypto) + 1 on the fast path).
 *
 * Every boundary event is split into three phases so the timing and
 * functional planes can never diverge:
 *  1. plan (planFill / planEvict): the single point that advances
 *     security state — SNC lookups and installs, sequence-number
 *     increments, spill bookkeeping;
 *  2. schedule (scheduleFill / scheduleEvict): timing against the
 *     shared MemoryChannel and CryptoEngineModel;
 *  3. apply (applyFill / applyEvict): pure byte transforms for
 *     functional runs, parameterized only by the plan.
 * Callers may use any subset: benches run plan+schedule, functional
 * tests run plan+apply, full-system examples run all three.
 */

#ifndef SECPROC_SECURE_PROTECTION_ENGINE_HH
#define SECPROC_SECURE_PROTECTION_ENGINE_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "crypto/latency.hh"
#include "mem/memory_channel.hh"
#include "mem/virtual_memory.hh"
#include "secure/key_table.hh"
#include "secure/snc.hh"
#include "util/radix_array.hh"
#include "util/stats.hh"

namespace secproc::secure
{

/** Which machine guards the memory boundary. */
enum class SecurityModel
{
    Baseline,
    Xom,
    OtpSnc,
};

/** How a line's image in untrusted memory is encrypted. */
enum class LineCipherState : uint8_t
{
    /** Never written back: fills are plain (OS zero-fill). */
    Unwritten,
    /** XOM-style direct (ECB) encryption. */
    Direct,
    /** One-time pad with a per-line sequence number. */
    Otp,
    /** No encryption: plaintext region (inputs, shared libraries). */
    Plain,
};

/** Options shared by all engines. */
struct ProtectionConfig
{
    SecurityModel model = SecurityModel::OtpSnc;

    /** Crypto engine timing (50-cycle default; 102 in Figure 10). */
    crypto::CryptoEngineConfig crypto;

    /** SNC geometry (OtpSnc only). */
    SncConfig snc;

    /**
     * On an SNC query miss, issue the line fetch concurrently with
     * the sequence-number fetch (true) or only after the sequence
     * number is decrypted, as written in the paper's Algorithm 1
     * (false). Ablation A1.
     */
    bool parallel_seqnum_fetch = false;

    /**
     * Sequential pad prediction (extension, ablation A11): after a
     * fast-path fill of line X, pre-generate the pad for line X+1
     * in the (pipelined, mostly idle) crypto engine when X+1's
     * sequence number is already on chip. Pads are deterministic
     * per (line, seqnum), so a speculative pad is *the* pad — the
     * prediction can only waste engine slots, never correctness.
     * Closes the fast path's residual max(mem, crypto) + 1 cost
     * when memory is faster than the crypto engine.
     */
    bool pad_prediction = false;

    /** Predicted pads held on chip (pad buffer entries). */
    uint32_t pad_buffer_entries = 32;

    /** L2 line size in bytes. */
    uint32_t line_size = 128;
};

/** State-advance record for one line fill. */
struct FillPlan
{
    uint64_t line_va = 0;
    /** How the memory image of this line is encrypted. */
    LineCipherState state = LineCipherState::Unwritten;
    /** Sequence number the OTP image was produced with. */
    uint32_t seqnum = 0;
    bool ifetch = false;
    /** OTP only: the sequence number missed in the SNC. */
    bool snc_query_miss = false;
    /** OTP+LRU only: installing the entry spilled an SNC victim. */
    bool victim_spilled = false;
};

/** State-advance record for one dirty eviction. */
struct EvictPlan
{
    uint64_t line_va = 0;
    /** Encryption chosen for the outgoing image. */
    LineCipherState state = LineCipherState::Direct;
    /** Sequence number used (already incremented). */
    uint32_t seqnum = 0;
    /** OTP only: the update missed in the SNC. */
    bool snc_update_miss = false;
    /** OTP+LRU only: an SNC victim entry spills to memory. */
    bool victim_spilled = false;
    /** OTP+LRU only: the old seqnum had to be fetched from memory. */
    bool seqnum_fetched = false;
};

/** Timing outcome of a line fill. */
struct FillResult
{
    /** Cycle the plaintext line is ready for the L2. */
    uint64_t ready_cycle = 0;
    /** The OTP fast path was used (pad overlapped the fetch). */
    bool fast_path = false;
    /** An SNC query miss added a seqnum fetch to the critical path. */
    bool snc_query_miss = false;
};

/**
 * Abstract engine at the L2-memory boundary.
 */
class ProtectionEngine
{
  public:
    /**
     * @param config Engine options.
     * @param channel Shared memory channel (timing + traffic).
     * @param keys Compartment key table (functional plane).
     * @param shared_crypto The machine's crypto engine when it is
     *        shared with other agents (the System owns one that an
     *        OTA install also reserves against); nullptr makes the
     *        protection engine own a private model, which times
     *        identically as long as it is the only client.
     */
    ProtectionEngine(const ProtectionConfig &config,
                     mem::MemoryChannel &channel, const KeyTable &keys,
                     crypto::CryptoEngineModel *shared_crypto = nullptr);
    virtual ~ProtectionEngine() = default;

    ProtectionEngine(const ProtectionEngine &) = delete;
    ProtectionEngine &operator=(const ProtectionEngine &) = delete;

    /** Model name for reports. */
    virtual std::string name() const = 0;

    // ------------------------------------------------------- plan phase

    /**
     * Advance state for an L2 read miss of the line at @p line_va.
     * Must be called exactly once per fill event.
     */
    virtual FillPlan planFill(uint64_t line_va, bool ifetch,
                              mem::RegionKind kind) = 0;

    /**
     * Advance state for a dirty eviction of @p line_va. Must be
     * called exactly once per eviction event.
     */
    virtual EvictPlan planEvict(uint64_t line_va,
                                mem::RegionKind kind) = 0;

    // --------------------------------------------------- schedule phase

    /** Timing for a planned fill; returns the data-ready cycle. */
    virtual FillResult scheduleFill(const FillPlan &plan,
                                    uint64_t cycle) = 0;

    /** Timing for a planned eviction (write buffer, off path). */
    virtual void scheduleEvict(const EvictPlan &plan,
                               uint64_t cycle) = 0;

    // ------------------------------------------------------ apply phase

    /** Decrypt @p bytes (ciphertext image) as described by @p plan. */
    virtual void applyFill(const FillPlan &plan,
                           std::span<uint8_t> bytes) const = 0;

    /** Encrypt @p bytes (plaintext) as described by @p plan. */
    virtual void applyEvict(const EvictPlan &plan,
                            std::span<uint8_t> bytes) const = 0;

    // --------------------------------------------- convenience wrappers

    /** plan + schedule in one call (timing-only simulations). */
    FillResult lineFill(uint64_t line_va, uint64_t cycle, bool ifetch,
                        mem::RegionKind kind);

    /** plan + schedule in one call (timing-only simulations). */
    void lineEvict(uint64_t line_va, uint64_t cycle,
                   mem::RegionKind kind);

    /** plan + apply in one call (functional-only runs). */
    void decryptLine(uint64_t line_va, bool ifetch, mem::RegionKind kind,
                     std::span<uint8_t> bytes);

    /** plan + apply in one call (functional-only runs). */
    void encryptLine(uint64_t line_va, mem::RegionKind kind,
                     std::span<uint8_t> bytes);

    // ------------------------------------------------------------ misc

    /** Select the active compartment (default 1). */
    void setCompartment(CompartmentId id) { compartment_ = id; }
    CompartmentId compartment() const { return compartment_; }

    /**
     * Context-switch hook (paper Section 4.3): the machine is about
     * to run a different task at @p cycle. @p flush asks the engine
     * to purge per-task security state that must not leak across the
     * switch (the OTP engine spills its SNC). @return entries
     * spilled, 0 when the engine keeps no such state.
     */
    virtual size_t onContextSwitch(uint64_t cycle, bool flush)
    {
        (void)cycle;
        (void)flush;
        return 0;
    }

    /** Cipher state of a line as the engine believes it. */
    LineCipherState lineState(uint64_t line_va) const;

    /**
     * Mark a line's image state directly (used by the secure loader
     * when placing a vendor-encrypted program image into memory).
     */
    void setLineState(uint64_t line_va, LineCipherState state,
                      uint32_t seqnum = 0);

    /**
     * Reset timing and per-line state (fresh run). A *shared*
     * crypto engine is deliberately left untouched — it belongs to
     * the machine, and System::reset() is the path that resets it
     * alongside the channel (arbiter queues included) and every
     * background agent's in-flight reservations.
     */
    virtual void reset();

    /** Statistics registration. */
    virtual void regStats(util::StatGroup &group) const;

    /** Fills that paid serial crypto latency. */
    uint64_t slowFills() const { return slow_fills_.value(); }
    /** Fills whose pad generation overlapped the memory fetch. */
    uint64_t fastFills() const { return fast_fills_.value(); }
    /** Fills with no crypto at all (plain / unwritten). */
    uint64_t plainFills() const { return plain_fills_.value(); }

    const ProtectionConfig &config() const { return config_; }

    /** Access to the crypto engine model (occupancy inspection). */
    const crypto::CryptoEngineModel &cryptoEngine() const
    {
        return crypto_engine_;
    }

  protected:
    ProtectionConfig config_;
    mem::MemoryChannel &channel_;
    const KeyTable &keys_;
    /** Backing storage when no shared engine was supplied. */
    std::unique_ptr<crypto::CryptoEngineModel> owned_crypto_;
    /** The crypto engine all timing goes through (shared or owned). */
    crypto::CryptoEngineModel &crypto_engine_;
    CompartmentId compartment_ = 1;

    /**
     * Line index (line_va / line_size) -> how its memory image is
     * currently encrypted. Radix layout: install streams walk lines
     * sequentially, so neighbouring states share a group.
     */
    util::RadixArray<LineCipherState> line_states_;
    /** Line index -> seqnum for lines recorded via setLineState or
     *  tracked outside the SNC (spill table is engine-specific). */
    util::RadixArray<uint32_t> preset_seqnums_;

    /** Key of the per-line flat tables. */
    uint64_t
    lineIdx(uint64_t line_va) const
    {
        return line_va / config_.line_size;
    }

    util::Counter fast_fills_;
    util::Counter slow_fills_;
    util::Counter plain_fills_;

    /** Cipher of the active compartment; panics if missing. */
    const crypto::BlockCipher &activeCipher() const;

    /**
     * Construct the one-time-pad seed for (line, seqnum) under the
     * active compartment. Collision-free across lines, sequence
     * numbers and compartments; intra-line pad blocks are separated
     * by generatePad()'s per-block tweak (see DESIGN.md).
     */
    uint64_t makeSeed(uint64_t line_va, uint32_t seqnum) const;

    /**
     * Proxy address of a line's entry in the in-memory sequence
     * number table (bank/row selection when the channel models
     * DRAM; the flat channel ignores it).
     */
    uint64_t seqnumTableAddr(uint64_t line_va) const;
};

/** Instantiate the engine for @p config.model. */
std::unique_ptr<ProtectionEngine>
makeProtectionEngine(const ProtectionConfig &config,
                     mem::MemoryChannel &channel, const KeyTable &keys,
                     crypto::CryptoEngineModel *shared_crypto = nullptr);

/** Human-readable model name. */
std::string securityModelName(SecurityModel model);

} // namespace secproc::secure

#endif // SECPROC_SECURE_PROTECTION_ENGINE_HH
