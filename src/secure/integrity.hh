/**
 * @file
 * Memory integrity verification engine (extension).
 *
 * The paper deliberately leaves integrity verification to the
 * hash-tree work of Gassend et al. (HPCA 2003) and concentrates on
 * privacy. This module supplies that substrate so the full secure
 * processor can be composed and costed:
 *
 *  - per-line MACs, fetched alongside the line and checked either
 *    *blocking* (data held until verified) or *speculatively* (data
 *    used immediately, verification completes in the background,
 *    which is the Gassend-style latency hiding);
 *  - a cached Merkle tree: interior nodes live in untrusted memory,
 *    a small on-chip node cache truncates verification walks, the
 *    root never leaves the chip (defeats replay of line+MAC pairs).
 *
 * Functionally, MACs bind (line address, sequence number,
 * ciphertext) under a dedicated MAC key, so replaying stale
 * ciphertext or splicing MACs across lines is detected — the attack
 * suite exercises exactly this.
 */

#ifndef SECPROC_SECURE_INTEGRITY_HH
#define SECPROC_SECURE_INTEGRITY_HH

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "mem/cache.hh"
#include "mem/memory_channel.hh"
#include "util/radix_array.hh"
#include "util/stats.hh"

namespace secproc::secure
{

/** Verification policy. */
enum class IntegrityMode
{
    None,
    /** Per-line MAC, data held until the check completes. */
    MacBlocking,
    /** Per-line MAC, data released immediately (background check). */
    MacSpeculative,
    /** Merkle tree with an on-chip node cache, blocking. */
    MerkleCached,
};

/** Static configuration. */
struct IntegrityConfig
{
    IntegrityMode mode = IntegrityMode::None;

    /** Cycles to hash one line / one tree node. */
    uint32_t hash_latency = 80;

    /** On-chip Merkle node cache capacity. */
    uint64_t node_cache_bytes = 16 * 1024;

    /** Tree fan-out (children per interior node). */
    uint32_t tree_arity = 8;

    /** Bytes of protected memory the tree covers. */
    uint64_t protected_bytes = 64ull << 20;

    /** Line size (leaf granularity). */
    uint32_t line_size = 128;

    /** MAC bytes stored per line (truncated HMAC). */
    uint32_t mac_bytes = 8;
};

/** Per-line MAC value (truncated HMAC-SHA256). */
using LineMac = std::array<uint8_t, 8>;

/**
 * Timing and functional integrity engine.
 */
class IntegrityEngine
{
  public:
    explicit IntegrityEngine(const IntegrityConfig &config);

    /**
     * Timing: verification work for a line fill whose data arrives
     * at @p data_arrival.
     *
     * @param line_va Line virtual address.
     * @param request_cycle Cycle the fill request was issued.
     * @param data_arrival Cycle the (decrypted) data is ready.
     * @param channel Channel for MAC/node fetch traffic.
     * @return Cycle the data may architecturally commit (equals
     *         @p data_arrival for None and MacSpeculative).
     */
    uint64_t verifyFill(uint64_t line_va, uint64_t request_cycle,
                        uint64_t data_arrival,
                        mem::MemoryChannel &channel);

    /**
     * Timing: MAC/tree update work for a dirty eviction at
     * @p cycle (off the critical path; traffic + hash occupancy).
     */
    void updateEvict(uint64_t line_va, uint64_t cycle,
                     mem::MemoryChannel &channel);

    // ------------------------------------------------- functional MAC

    /** Install the MAC key (from the compartment's key material). */
    void setMacKey(const std::vector<uint8_t> &key) { mac_key_ = key; }

    /** Compute the MAC binding (line, seqnum, ciphertext). */
    LineMac computeMac(uint64_t line_va, uint32_t seqnum,
                       std::span<const uint8_t> ciphertext) const;

    /** Record the MAC for a line (evict path). */
    void storeMac(uint64_t line_va, const LineMac &mac);

    /**
     * Verify a fetched line. @return true when the stored MAC
     * matches; false = tampering detected (spoof/splice/replay).
     */
    bool verifyMac(uint64_t line_va, uint32_t seqnum,
                   std::span<const uint8_t> ciphertext) const;

    /** Adversary access to the MAC table (replay simulations). */
    void corruptStoredMac(uint64_t line_va, const LineMac &mac);
    std::optional<LineMac> storedMac(uint64_t line_va) const;

    /** Statistics. @{ */
    uint64_t verifications() const { return verifications_.value(); }
    uint64_t nodeCacheHits() const { return node_hits_.value(); }
    uint64_t nodeCacheMisses() const { return node_misses_.value(); }
    void regStats(util::StatGroup &group) const;
    /** @} */

    const IntegrityConfig &config() const { return config_; }

    /** Tree levels above the leaves for the configured coverage. */
    uint32_t treeLevels() const { return tree_levels_; }

  private:
    IntegrityConfig config_;
    uint32_t tree_levels_;
    mem::Cache node_cache_;
    uint64_t hash_engine_free_ = 0;

    std::vector<uint8_t> mac_key_;
    /** Keyed by line index (line_va / line_size); flat radix pages. */
    util::RadixArray<LineMac> mac_table_;

    util::Counter verifications_;
    util::Counter node_hits_;
    util::Counter node_misses_;

    uint64_t hashAt(uint64_t start);

    /** Synthetic address of a tree node (level, index). */
    uint64_t nodeAddress(uint32_t level, uint64_t index) const;

    /** Proxy address of a line's MAC-table entry (DRAM mapping). */
    uint64_t macTableAddr(uint64_t line_va) const;

    /** Flat-table key: line index within the protected space. */
    uint64_t
    lineIndex(uint64_t line_va) const
    {
        return line_va / config_.line_size;
    }
};

} // namespace secproc::secure

#endif // SECPROC_SECURE_INTEGRITY_HH
