/**
 * @file
 * Protection engine shared machinery and factory.
 */

#include "secure/protection_engine.hh"

#include "secure/engines.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace secproc::secure
{

ProtectionEngine::ProtectionEngine(const ProtectionConfig &config,
                                   mem::MemoryChannel &channel,
                                   const KeyTable &keys,
                                   crypto::CryptoEngineModel *shared_crypto)
    : config_(config), channel_(channel), keys_(keys),
      owned_crypto_(shared_crypto
                        ? nullptr
                        : std::make_unique<crypto::CryptoEngineModel>(
                              config.crypto)),
      crypto_engine_(shared_crypto ? *shared_crypto : *owned_crypto_)
{
    fatal_if(!util::isPowerOfTwo(config_.line_size),
             "line size must be a power of two");
}

LineCipherState
ProtectionEngine::lineState(uint64_t line_va) const
{
    const LineCipherState *it = line_states_.find(lineIdx(line_va));
    return it == nullptr ? LineCipherState::Unwritten : *it;
}

void
ProtectionEngine::setLineState(uint64_t line_va, LineCipherState state,
                               uint32_t seqnum)
{
    line_states_.insert(lineIdx(line_va), state);
    if (state == LineCipherState::Otp)
        preset_seqnums_.insert(lineIdx(line_va), seqnum);
}

void
ProtectionEngine::reset()
{
    // Only an owned model is this engine's to wipe: a shared model
    // carries machine-wide occupancy (other agents' reservations)
    // that the machine owner resets, not one of its clients —
    // System::reset() is that owner path, and it also clears the
    // channel's arbiter queues and the agents' in-flight work.
    if (owned_crypto_)
        owned_crypto_->reset();
    line_states_.clear();
    preset_seqnums_.clear();
    fast_fills_.reset();
    slow_fills_.reset();
    plain_fills_.reset();
}

void
ProtectionEngine::regStats(util::StatGroup &group) const
{
    group.regCounter("fast_fills", &fast_fills_);
    group.regCounter("slow_fills", &slow_fills_);
    group.regCounter("plain_fills", &plain_fills_);
}

const crypto::BlockCipher &
ProtectionEngine::activeCipher() const
{
    const crypto::BlockCipher *cipher = keys_.cipher(compartment_);
    panic_if(cipher == nullptr,
             "no key installed for compartment ", compartment_);
    return *cipher;
}

uint64_t
ProtectionEngine::makeSeed(uint64_t line_va, uint32_t seqnum) const
{
    const uint64_t line_number = line_va / config_.line_size;
    // Layout (bits): [63:24] line number, [23:8] seqnum, [7:0] zero.
    // Unlike the paper's literal "seed = VA + seqnum" this is
    // collision-free across fields (see DESIGN.md section 7), and
    // generatePad()'s multiplicative per-block tweak keeps intra-line
    // pad blocks distinct without consuming seed bits. Compartment
    // separation comes from per-compartment keys, exactly as in the
    // paper; the vendor can therefore pre-compute instruction seeds
    // without knowing the compartment ID assigned at load time.
    return ((line_number & util::mask(40)) << 24) |
           ((static_cast<uint64_t>(seqnum) & util::mask(16)) << 8);
}

uint64_t
ProtectionEngine::seqnumTableAddr(uint64_t line_va) const
{
    // The OS reserves a region for the spill table; entries are
    // packed at the SNC's per-entry width. Only the DRAM bank/row
    // mapping consumes this address.
    constexpr uint64_t kTableBase = 0x7000'0000'0000ull;
    const uint64_t index = line_va / config_.line_size;
    return kTableBase + index * config_.snc.bytes_per_entry;
}

FillResult
ProtectionEngine::lineFill(uint64_t line_va, uint64_t cycle, bool ifetch,
                           mem::RegionKind kind)
{
    return scheduleFill(planFill(line_va, ifetch, kind), cycle);
}

void
ProtectionEngine::lineEvict(uint64_t line_va, uint64_t cycle,
                            mem::RegionKind kind)
{
    scheduleEvict(planEvict(line_va, kind), cycle);
}

void
ProtectionEngine::decryptLine(uint64_t line_va, bool ifetch,
                              mem::RegionKind kind,
                              std::span<uint8_t> bytes)
{
    applyFill(planFill(line_va, ifetch, kind), bytes);
}

void
ProtectionEngine::encryptLine(uint64_t line_va, mem::RegionKind kind,
                              std::span<uint8_t> bytes)
{
    applyEvict(planEvict(line_va, kind), bytes);
}

std::unique_ptr<ProtectionEngine>
makeProtectionEngine(const ProtectionConfig &config,
                     mem::MemoryChannel &channel, const KeyTable &keys,
                     crypto::CryptoEngineModel *shared_crypto)
{
    switch (config.model) {
      case SecurityModel::Baseline:
        return std::make_unique<BaselineEngine>(config, channel, keys,
                                                shared_crypto);
      case SecurityModel::Xom:
        return std::make_unique<XomEngine>(config, channel, keys,
                                           shared_crypto);
      case SecurityModel::OtpSnc:
        return std::make_unique<OtpEngine>(config, channel, keys,
                                           shared_crypto);
    }
    panic("unknown security model");
}

std::string
securityModelName(SecurityModel model)
{
    switch (model) {
      case SecurityModel::Baseline: return "baseline";
      case SecurityModel::Xom: return "xom";
      case SecurityModel::OtpSnc: return "otp-snc";
    }
    return "unknown";
}

} // namespace secproc::secure
