/**
 * @file
 * One-time-pad engine with Sequence Number Cache — the paper's
 * contribution (Sections 3 and 4).
 *
 * Fast path (SNC query hit, and all instruction fetches): the pad
 * E_K(seed) is computed while the memory access is in flight, so the
 * fill completes at max(memory, crypto) + 1 instead of
 * memory + crypto.
 *
 * Slow paths follow the paper's Algorithm 1: an SNC query miss under
 * LRU fetches and decrypts the line's sequence number from the
 * encrypted in-memory table before pad generation can start; under
 * the no-replacement policy, lines without SNC entries are
 * direct-encrypted and take the XOM path.
 */

#include "secure/engines.hh"

#include "crypto/block_cipher.hh"
#include "util/logging.hh"

namespace secproc::secure
{

OtpEngine::OtpEngine(const ProtectionConfig &config,
                     mem::MemoryChannel &channel, const KeyTable &keys,
                     crypto::CryptoEngineModel *shared_crypto)
    : ProtectionEngine(config, channel, keys, shared_crypto),
      snc_(config.snc)
{
    fatal_if(config.snc.l2_line_size != config.line_size,
             "SNC line size (", config.snc.l2_line_size,
             ") must match the engine line size (", config.line_size,
             ")");
}

uint32_t
OtpEngine::wrapIncrement(uint32_t seqnum)
{
    // Wrapping would reuse a pad; hardware would trigger a
    // re-encryption epoch (DESIGN.md section 7). We model the wrap
    // and the SNC counts overflows for inspection.
    return seqnum >= snc_.config().maxSeqnum() ? 1 : seqnum + 1;
}

void
OtpEngine::absorbInstall(const SncInstall &install, uint64_t line_va,
                         bool *victim_spilled)
{
    // Authoritative copy is on chip now.
    memory_table_.erase(lineIdx(line_va));
    for (const SncEntry &victim : install.victims)
        memory_table_.insert(lineIdx(victim.line_va), victim.seqnum);
    if (install.victim_valid && victim_spilled != nullptr)
        *victim_spilled = true;

    // Sectored SNC: the sector fetch brought the neighbours'
    // sequence numbers from memory together; populate their slots.
    for (const uint64_t other : install.cofetched) {
        if (lineState(other) != LineCipherState::Otp)
            continue;
        uint32_t seqnum;
        if (const uint32_t *it = memory_table_.find(lineIdx(other))) {
            seqnum = *it;
            memory_table_.erase(lineIdx(other));
        } else if (const uint32_t *preset =
                       preset_seqnums_.find(lineIdx(other))) {
            seqnum = *preset;
        } else {
            continue; // never written back: no sequence number yet
        }
        snc_.setEntry(other, seqnum);
    }
}

void
OtpEngine::installWithSpill(uint64_t line_va, uint32_t seqnum,
                            EvictPlan *plan)
{
    const SncInstall install = snc_.install(line_va, seqnum);
    if (!install.installed)
        return; // no-replacement refusal handled by caller
    absorbInstall(install, line_va,
                  plan != nullptr ? &plan->victim_spilled : nullptr);
}

FillPlan
OtpEngine::planFill(uint64_t line_va, bool ifetch, mem::RegionKind kind)
{
    FillPlan plan;
    plan.line_va = line_va;
    plan.ifetch = ifetch;

    if (kind == mem::RegionKind::Plaintext) {
        plan.state = LineCipherState::Plain;
        return plan;
    }
    if (ifetch) {
        // Instructions are read-only: constant virtual-address seed
        // (sequence number 0), never involving the SNC (Section
        // 3.4.1).
        plan.state = LineCipherState::Otp;
        plan.seqnum = 0;
        return plan;
    }
    if (kind == mem::RegionKind::Shared) {
        // Synonym-aliased data is excluded from OTP (Section 4);
        // it is direct-encrypted as in XOM.
        plan.state = LineCipherState::Direct;
        return plan;
    }

    plan.state = lineState(line_va);
    if (plan.state != LineCipherState::Otp)
        return plan; // Unwritten / Direct / Plain need no seqnum

    if (const auto seqnum = snc_.query(line_va)) {
        plan.seqnum = *seqnum;
        return plan;
    }

    // Query miss. Under LRU the sequence number lives in the
    // encrypted in-memory table; fetch it and install it, possibly
    // spilling a victim (Algorithm 1 lines 1-12).
    plan.snc_query_miss = true;
    const uint32_t *it = memory_table_.find(lineIdx(line_va));
    if (it != nullptr) {
        plan.seqnum = *it;
    } else if (const uint32_t *preset =
                   preset_seqnums_.find(lineIdx(line_va))) {
        plan.seqnum = *preset; // loader-initialized image
    } else {
        panic("OTP line ", line_va,
              " has no sequence number anywhere; state tracking bug");
    }

    if (snc_.config().allow_replacement) {
        const SncInstall install = snc_.install(line_va, plan.seqnum);
        if (install.installed)
            absorbInstall(install, line_va, &plan.victim_spilled);
    }
    return plan;
}

EvictPlan
OtpEngine::planEvict(uint64_t line_va, mem::RegionKind kind)
{
    EvictPlan plan;
    plan.line_va = line_va;

    if (kind == mem::RegionKind::Plaintext) {
        plan.state = LineCipherState::Plain;
        line_states_.insert(lineIdx(line_va), plan.state);
        return plan;
    }
    if (kind == mem::RegionKind::Shared) {
        plan.state = LineCipherState::Direct;
        line_states_.insert(lineIdx(line_va), plan.state);
        return plan;
    }

    // Update: increment the line's sequence number (Equation 4).
    if (const auto seqnum = snc_.increment(line_va)) {
        plan.state = LineCipherState::Otp;
        plan.seqnum = *seqnum;
        line_states_.insert(lineIdx(line_va), plan.state);
        return plan;
    }

    plan.snc_update_miss = true;
    if (snc_.config().allow_replacement) {
        // Algorithm 1 lines 13-25: fetch the old sequence number (if
        // the line ever had one), increment, install, spill victim.
        uint32_t old_seqnum = 0;
        if (lineState(line_va) == LineCipherState::Otp) {
            if (const uint32_t *it =
                    memory_table_.find(lineIdx(line_va))) {
                old_seqnum = *it;
                plan.seqnum_fetched = true;
            } else if (const uint32_t *preset =
                           preset_seqnums_.find(lineIdx(line_va))) {
                old_seqnum = *preset;
                plan.seqnum_fetched = true;
            }
        }
        plan.state = LineCipherState::Otp;
        plan.seqnum = wrapIncrement(old_seqnum);
        installWithSpill(line_va, plan.seqnum, &plan);
    } else {
        // No-replacement policy: take a free slot if one exists,
        // otherwise encrypt directly like XOM (Section 4.1). A slot
        // can be free *after* a context-switch flush spilled the old
        // entry to memory — restarting at 1 would reuse pads, so the
        // spilled value is recovered and incremented.
        uint32_t old_seqnum = 0;
        if (lineState(line_va) == LineCipherState::Otp) {
            if (const uint32_t *it =
                    memory_table_.find(lineIdx(line_va))) {
                old_seqnum = *it;
                plan.seqnum_fetched = true;
            } else if (const uint32_t *preset =
                           preset_seqnums_.find(lineIdx(line_va))) {
                old_seqnum = *preset;
                plan.seqnum_fetched = true;
            }
        }
        const uint32_t fresh = wrapIncrement(old_seqnum);
        const SncInstall install = snc_.install(line_va, fresh);
        if (install.installed) {
            memory_table_.erase(lineIdx(line_va));
            plan.state = LineCipherState::Otp;
            plan.seqnum = fresh;
        } else {
            plan.state = LineCipherState::Direct;
        }
    }
    line_states_.insert(lineIdx(line_va), plan.state);
    return plan;
}

FillResult
OtpEngine::scheduleFill(const FillPlan &plan, uint64_t cycle)
{
    FillResult result;
    result.snc_query_miss = plan.snc_query_miss;

    switch (plan.state) {
      case LineCipherState::Plain:
      case LineCipherState::Unwritten: {
        result.ready_cycle = channel_.scheduleRead(
            cycle, mem::Traffic::DataFill, /*small=*/false,
            plan.line_va);
        ++plain_fills_;
        return result;
      }
      case LineCipherState::Direct: {
        // XOM fallback (shared data; no-replacement overflow lines).
        const uint64_t arrival = channel_.scheduleRead(
            cycle, mem::Traffic::DataFill, /*small=*/false,
            plan.line_va);
        result.ready_cycle = crypto_engine_.schedule(arrival);
        ++slow_fills_;
        ++direct_fallback_fills_;
        return result;
      }
      case LineCipherState::Otp:
        break;
    }

    if (!plan.snc_query_miss) {
        // Fast path: pad generation overlaps the memory fetch;
        // one XOR cycle after both complete (Section 3.2). With the
        // prediction unit (A11) the pad may already be sitting in
        // the pad buffer from a previous sequential fill.
        uint64_t pad_ready;
        const auto predicted =
            takePredictedPad(makeSeed(plan.line_va, plan.seqnum));
        if (predicted.has_value()) {
            pad_ready = std::max(*predicted, cycle);
            ++pad_prediction_hits_;
        } else {
            pad_ready = crypto_engine_.schedule(cycle);
        }
        const uint64_t arrival = channel_.scheduleRead(
            cycle, mem::Traffic::DataFill, /*small=*/false,
            plan.line_va);
        result.ready_cycle = std::max(arrival, pad_ready) + 1;
        result.fast_path = true;
        ++fast_fills_;
        if (config_.pad_prediction)
            predictNextPad(plan.line_va, plan.ifetch, cycle);
        return result;
    }

    // LRU query miss (Algorithm 1 lines 1-12): fetch + decrypt the
    // sequence number, then generate pads; the line fetch overlaps
    // pad generation (serial policy) or both fetches are issued
    // together (parallel policy, ablation A1).
    ++query_miss_fills_;
    const uint64_t sn_arrival = channel_.scheduleRead(
        cycle, mem::Traffic::SeqnumFetch, /*small=*/true,
        seqnumTableAddr(plan.line_va));
    const uint64_t sn_ready = crypto_engine_.schedule(sn_arrival);
    const uint64_t pad_ready = crypto_engine_.schedule(sn_ready);
    const uint64_t line_request =
        config_.parallel_seqnum_fetch ? cycle : sn_ready;
    const uint64_t arrival = channel_.scheduleRead(
        line_request, mem::Traffic::DataFill, /*small=*/false,
        plan.line_va);
    result.ready_cycle = std::max(arrival, pad_ready) + 1;
    ++slow_fills_;

    if (plan.victim_spilled) {
        // Spilled victim is encrypted directly (never OTP — it would
        // itself need a sequence number; Section 4.1) and leaves via
        // the write buffer.
        const uint64_t encrypted = crypto_engine_.schedule(cycle);
        channel_.enqueueWrite(encrypted, mem::Traffic::SeqnumWriteback,
                              /*small=*/true,
                              seqnumTableAddr(plan.line_va));
    }
    return result;
}

void
OtpEngine::scheduleEvict(const EvictPlan &plan, uint64_t cycle)
{
    switch (plan.state) {
      case LineCipherState::Plain:
      case LineCipherState::Unwritten:
        channel_.enqueueWrite(cycle, mem::Traffic::DataWriteback,
                              /*small=*/false, plan.line_va);
        return;
      case LineCipherState::Direct: {
        const uint64_t encrypted = crypto_engine_.schedule(cycle);
        channel_.enqueueWrite(encrypted, mem::Traffic::DataWriteback,
                              /*small=*/false, plan.line_va);
        return;
      }
      case LineCipherState::Otp:
        break;
    }

    uint64_t pad_ready;
    if (plan.snc_update_miss && plan.seqnum_fetched) {
        // Off the critical path (the line waits in the write
        // buffer), but the fetch still occupies the bus and the
        // engine: decrypt the fetched sequence number, then generate
        // the pad from it — one dependent two-block chain.
        const uint64_t sn_arrival = channel_.scheduleRead(
            cycle, mem::Traffic::SeqnumFetch, /*small=*/true,
            seqnumTableAddr(plan.line_va));
        pad_ready = crypto_engine_.scheduleChained(sn_arrival, 2);
    } else {
        pad_ready = crypto_engine_.schedule(cycle);
    }
    channel_.enqueueWrite(pad_ready + 1, mem::Traffic::DataWriteback,
                          /*small=*/false, plan.line_va);

    if (plan.victim_spilled) {
        const uint64_t encrypted = crypto_engine_.schedule(cycle);
        channel_.enqueueWrite(encrypted, mem::Traffic::SeqnumWriteback,
                              /*small=*/true,
                              seqnumTableAddr(plan.line_va));
    }
}

void
OtpEngine::applyFill(const FillPlan &plan,
                     std::span<uint8_t> bytes) const
{
    switch (plan.state) {
      case LineCipherState::Plain:
      case LineCipherState::Unwritten:
        return;
      case LineCipherState::Direct:
        crypto::ecbDecrypt(activeCipher(), bytes.data(), bytes.size());
        return;
      case LineCipherState::Otp: {
        const std::vector<uint8_t> &pad = cachedPad(
            makeSeed(plan.line_va, plan.seqnum), bytes.size());
        crypto::xorPad(bytes.data(), pad.data(), bytes.size());
        return;
      }
    }
}

void
OtpEngine::applyEvict(const EvictPlan &plan,
                      std::span<uint8_t> bytes) const
{
    switch (plan.state) {
      case LineCipherState::Plain:
      case LineCipherState::Unwritten:
        return;
      case LineCipherState::Direct:
        crypto::ecbEncrypt(activeCipher(), bytes.data(), bytes.size());
        return;
      case LineCipherState::Otp: {
        const std::vector<uint8_t> &pad = cachedPad(
            makeSeed(plan.line_va, plan.seqnum), bytes.size());
        crypto::xorPad(bytes.data(), pad.data(), bytes.size());
        return;
      }
    }
}

const std::vector<uint8_t> &
OtpEngine::cachedPad(uint64_t seed, size_t len) const
{
    if (pad_cache_compartment_ != compartment()) {
        pad_cache_.clear();
        pad_cache_compartment_ = compartment();
    }
    if (const std::vector<uint8_t> *hit = pad_cache_.find(seed)) {
        if (hit->size() == len)
            return *hit;
    }
    // Crude bound: drop everything rather than track recency — the
    // memo is a pure-function cache, so eviction cannot change any
    // result, only cost a regeneration.
    if (pad_cache_.size() >= kPadCacheEntries)
        pad_cache_.clear();
    std::vector<uint8_t> pad(len);
    crypto::generatePad(activeCipher(), seed, pad.data(), len);
    return pad_cache_.insert(seed, std::move(pad));
}

std::optional<uint64_t>
OtpEngine::takePredictedPad(uint64_t seed)
{
    const uint64_t *it = pad_buffer_.find(seed);
    if (it == nullptr)
        return std::nullopt;
    const uint64_t ready = *it;
    pad_buffer_.erase(seed);
    return ready;
}

void
OtpEngine::predictNextPad(uint64_t line_va, bool ifetch, uint64_t cycle)
{
    const uint64_t next_va = line_va + config_.line_size;
    uint32_t seqnum = 0;
    if (!ifetch) {
        // Only predict when the neighbour's sequence number is on
        // chip and the line is OTP-encrypted; a wrong guess would
        // waste an engine slot, a metadata fetch would defeat the
        // point.
        if (lineState(next_va) != LineCipherState::Otp)
            return;
        const auto peeked = snc_.peek(next_va);
        if (!peeked.has_value())
            return;
        seqnum = *peeked;
    }
    const uint64_t seed = makeSeed(next_va, seqnum);
    if (pad_buffer_.contains(seed))
        return;
    // FIFO bound: forget the oldest predictions (timing state only).
    // Consumed entries may linger in the queue; skip them.
    while (pad_buffer_.size() >= config_.pad_buffer_entries &&
           !pad_buffer_fifo_.empty()) {
        pad_buffer_.erase(pad_buffer_fifo_.front());
        pad_buffer_fifo_.pop_front();
    }
    pad_buffer_[seed] = crypto_engine_.schedule(cycle);
    pad_buffer_fifo_.push_back(seed);
    ++pad_predictions_;
}

size_t
OtpEngine::flushSnc(uint64_t cycle)
{
    const std::vector<SncEntry> entries = snc_.flush();
    for (const SncEntry &entry : entries) {
        memory_table_.insert(lineIdx(entry.line_va), entry.seqnum);
        const uint64_t encrypted = crypto_engine_.schedule(cycle);
        channel_.enqueueWrite(encrypted, mem::Traffic::SeqnumWriteback,
                              /*small=*/true,
                              seqnumTableAddr(entry.line_va));
    }
    return entries.size();
}

void
OtpEngine::reset()
{
    ProtectionEngine::reset();
    snc_.flush();
    snc_.resetStats();
    memory_table_.clear();
    pad_buffer_.clear();
    pad_buffer_fifo_.clear();
    query_miss_fills_.reset();
    direct_fallback_fills_.reset();
    pad_predictions_.reset();
    pad_prediction_hits_.reset();
}

void
OtpEngine::regStats(util::StatGroup &group) const
{
    ProtectionEngine::regStats(group);
    group.regCounter("query_miss_fills", &query_miss_fills_);
    group.regCounter("direct_fallback_fills", &direct_fallback_fills_);
    group.regCounter("pad_predictions", &pad_predictions_);
    group.regCounter("pad_prediction_hits", &pad_prediction_hits_);
    snc_.regStats(group);
}

} // namespace secproc::secure
