/**
 * @file
 * Background machine agents.
 *
 * The core drives simulated time, but it is not the only client of
 * the machine's shared resources: a background OTA install streams
 * through the same memory channel and crypto engine while the
 * foreground program runs. A BackgroundAgent is anything that wants
 * to issue such self-paced work; the System pumps every attached
 * agent as the core's cycle count advances, so agent transactions
 * interleave deterministically with the core's.
 */

#ifndef SECPROC_SIM_AGENT_HH
#define SECPROC_SIM_AGENT_HH

#include <cstdint>

#include "sim/event_queue.hh"

namespace secproc::obs
{
class TraceSink;
}

namespace secproc::sim
{

/**
 * A self-paced producer of memory-channel transactions and
 * crypto-engine reservations.
 */
class BackgroundAgent
{
  public:
    virtual ~BackgroundAgent() = default;

    /**
     * Issue all work whose start time has been reached. Called with
     * a monotonically non-decreasing @p cycle; must be cheap when
     * there is nothing to do.
     */
    virtual void advance(uint64_t cycle) = 0;

    /** True once the agent has no further work to issue. */
    virtual bool done() const = 0;

    /**
     * Event-kernel contract: a conservative lower bound on the next
     * cycle at which this agent's advance() could change any machine
     * state — its own, the channel's, the crypto engine's or the
     * functional plane's. The System skips pumping agents across
     * [now, bound) and pumps *every* agent, in attach order, at the
     * first core-clock boundary that reaches the earliest bound, so
     * the pump sequence is a subset of the legacy every-step pump
     * containing all of its effectful elements — bit-identical
     * results by construction.
     *
     * Sources of wakeups an implementation must cover: channel-idle
     * windows and starvation-bound deadlines (via
     * MemoryChannel::nextArbiterEventCycle), OTA chunk arrival (via
     * ota::Transport::nextArrivalCycle), crypto reservation expiry /
     * self-paced cursors (the agent's own completion cycle).
     *
     * Returning @p now (or anything <= now) means "pump me at every
     * boundary" — the default, which makes agents that predate the
     * contract behave exactly as under the legacy kernel. Return
     * kNeverCycle when done() and nothing can wake the agent again.
     */
    virtual uint64_t
    nextEventCycle(uint64_t now) const
    {
        return now;
    }

    /**
     * Drop all in-flight work (machine reset / power cycle). Called
     * by System::reset() after the shared channel and crypto engine
     * have been reset, so any transaction the agent still had queued
     * in the channel's arbiter is already gone; the agent must
     * forget it ever issued it.
     */
    virtual void reset() {}

    /**
     * Attach (or with nullptr detach) a trace sink. Called by
     * System::setTraceSink() so agents can emit timeline events;
     * agents without a timeline ignore it. Emitting events must
     * never perturb timing state.
     */
    virtual void setTraceSink(obs::TraceSink *) {}
};

} // namespace secproc::sim

#endif // SECPROC_SIM_AGENT_HH
