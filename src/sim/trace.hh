/**
 * @file
 * Trace record format consumed by the core timing model.
 *
 * Workloads are generated, not recorded: a SyntheticWorkload emits an
 * unbounded deterministic stream of TraceOps whose memory behaviour
 * is calibrated per benchmark profile (DESIGN.md section 6).
 */

#ifndef SECPROC_SIM_TRACE_HH
#define SECPROC_SIM_TRACE_HH

#include <cstdint>
#include <string>

namespace secproc::sim
{

/** Functional-unit class of one instruction. */
enum class OpClass : uint8_t
{
    IntAlu,
    IntMul,
    FpAlu,
    Load,
    Store,
    Branch,
};

/** One instruction of the synthetic dynamic stream. */
struct TraceOp
{
    OpClass cls = OpClass::IntAlu;

    /** Producer distances in ops (0 = no dependence); max 255. */
    uint8_t dep1 = 0;
    uint8_t dep2 = 0;

    /** Branch resolved as mispredicted (fetch redirect). */
    bool mispredict = false;

    /** Effective virtual address for Load/Store. */
    uint64_t addr = 0;

    /**
     * Non-zero when this op's fetch crossed into a new instruction
     * cache line: the line's virtual address.
     */
    uint64_t fetch_line = 0;
};

/** Readable op class name (debugging and stats). */
inline const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return "int_alu";
      case OpClass::IntMul: return "int_mul";
      case OpClass::FpAlu: return "fp_alu";
      case OpClass::Load: return "load";
      case OpClass::Store: return "store";
      case OpClass::Branch: return "branch";
    }
    return "unknown";
}

} // namespace secproc::sim

#endif // SECPROC_SIM_TRACE_HH
