/**
 * @file
 * Deterministic wakeup min-heap for the event-driven simulation
 * kernel.
 *
 * The legacy kernel pumps every BackgroundAgent after every core
 * step; almost all of those pumps discover "nothing to do". The
 * event kernel instead keeps a heap of *wakeups* — conservative
 * lower bounds on the next cycle at which an agent's advance() could
 * change machine state (a transport chunk arriving, an arbiter
 * threshold being reached, a self-paced cursor coming due) — and
 * only pumps when the core clock crosses the earliest one.
 *
 * Determinism matters more than raw heap speed here: two wakeups
 * armed for the same cycle must pop in the order they were armed
 * (token order), so the pump sequence — and therefore every
 * downstream channel/crypto interleaving — is identical run to run
 * and identical to the legacy kernel's attach-order pump.
 *
 * Cancellation is lazy: cancel() marks the token and the entry is
 * discarded when it surfaces, so cancel/re-arm is O(1) amortized.
 */

#ifndef SECPROC_SIM_EVENT_QUEUE_HH
#define SECPROC_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace secproc::sim
{

/** "No event pending" sentinel cycle. */
inline constexpr uint64_t kNeverCycle = UINT64_MAX;

/**
 * Min-heap of (cycle, token) wakeups with deterministic tie-breaking
 * and lazy cancellation.
 */
class EventQueue
{
  public:
    /** Identifies one armed wakeup (monotonically increasing). */
    using Token = uint64_t;

    /** One surfaced wakeup. */
    struct Wakeup
    {
        uint64_t cycle; ///< cycle the wakeup was armed for
        uint64_t tag;   ///< caller payload (e.g. agent index)
        Token token;
    };

    /**
     * Arm a wakeup at @p cycle carrying @p tag. Arming at
     * kNeverCycle is allowed and never surfaces (it still consumes a
     * token so callers can treat "no event" uniformly).
     */
    Token schedule(uint64_t cycle, uint64_t tag = 0);

    /**
     * Cancel a previously armed wakeup. @return true if the token
     * was live (armed and not yet popped or cancelled).
     */
    bool cancel(Token token);

    /**
     * Cancel @p token and arm a replacement at @p cycle with the
     * same tag semantics as schedule() (the caller supplies the tag
     * again — the queue does not remember cancelled payloads).
     */
    Token rearm(Token token, uint64_t cycle, uint64_t tag = 0);

    /** Earliest armed cycle, or kNeverCycle when none is live
     *  (non-const: surfacing lazily discards cancelled entries). */
    uint64_t nextCycle();

    /**
     * Pop the earliest wakeup if it is due at @p now (cycle <= now).
     * Ties pop in token (arming) order.
     */
    std::optional<Wakeup> popDue(uint64_t now);

    /** Live (armed, uncancelled, finite) wakeups. */
    size_t armed() const { return live_; }

    bool empty() const { return live_ == 0; }

    /** Drop every pending wakeup (machine reset). */
    void clear();

  private:
    struct Entry
    {
        uint64_t cycle;
        Token token;
        uint64_t tag;

        /** Max-heap comparator inverted: earliest (cycle, token)
         *  wins, so equal-cycle wakeups surface in arming order. */
        bool
        operator<(const Entry &other) const
        {
            if (cycle != other.cycle)
                return cycle > other.cycle;
            return token > other.token;
        }
    };

    std::vector<Entry> heap_; ///< std::push_heap/pop_heap storage
    std::vector<Token> cancelled_; ///< lazily discarded tokens
    Token next_token_ = 0;
    size_t live_ = 0;

    /** Discard cancelled entries sitting at the heap top. */
    void purge();

    bool isCancelled(Token token) const;
    void dropCancelled(Token token);
};

} // namespace secproc::sim

#endif // SECPROC_SIM_EVENT_QUEUE_HH
