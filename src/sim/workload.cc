/**
 * @file
 * Synthetic workload generator implementation.
 */

#include "sim/workload.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace secproc::sim
{

namespace
{

/** Data regions are laid out from here with generous gaps. */
constexpr uint64_t kDataBase = 0x1000'0000;

} // namespace

SyntheticWorkload::SyntheticWorkload(WorkloadProfile profile,
                                     uint32_t line_size)
    : profile_(std::move(profile)), line_size_(line_size),
      rng_(profile_.rng_seed)
{
    fatal_if(profile_.regions.empty(),
             "workload '", profile_.name, "' needs at least one region");
    layoutRegions();
    buildDepTable();
    pc_ = textBase();

    states_.resize(profile_.regions.size());
    for (size_t i = 0; i < profile_.regions.size(); ++i) {
        const DataRegion &region = profile_.regions[i];
        if (region.behavior == RegionBehavior::Zipf ||
            region.behavior == RegionBehavior::Chase) {
            // Scatter popularity ranks over the region's lines so
            // popular lines are not address-clustered (matches real
            // heap layouts; crucial for the no-replacement SNC
            // behaviour, which keeps the first-written lines).
            const uint64_t lines =
                std::max<uint64_t>(1, region.footprint / line_size_);
            auto &perm = states_[i].perm;
            perm.resize(lines);
            for (uint64_t j = 0; j < lines; ++j)
                perm[j] = static_cast<uint32_t>(j);
            util::Rng perm_rng(profile_.rng_seed ^ (0x9E37 + i));
            for (uint64_t j = lines; j > 1; --j)
                std::swap(perm[j - 1], perm[perm_rng.nextRange(j)]);
        }
    }

    double total = 0.0;
    for (const DataRegion &region : profile_.regions)
        total += region.weight;
    fatal_if(total <= 0.0, "region weights must sum to > 0");
    double cumulative = 0.0;
    for (const DataRegion &region : profile_.regions) {
        cumulative += region.weight / total;
        weight_cdf_.push_back(cumulative);
    }
}

void
SyntheticWorkload::layoutRegions()
{
    uint64_t base = kDataBase + profile_.va_offset;
    for (DataRegion &region : profile_.regions) {
        region.base = base;
        uint64_t extent = region.footprint;
        if (region.behavior == RegionBehavior::ConflictStream) {
            extent = std::max(
                extent, region.conflict_lines * region.conflict_stride);
        }
        base += util::alignUp(extent, 1 << 20) + (16ull << 20);
    }
}

void
SyntheticWorkload::buildDepTable()
{
    // Pre-sample the geometric distance distribution once; the hot
    // path then draws from the table with one rng byte.
    dep_table_.resize(256);
    util::Rng dep_rng(profile_.rng_seed ^ 0xDE9);
    for (auto &entry : dep_table_) {
        const uint64_t distance =
            1 + dep_rng.nextGeometric(profile_.dep_p);
        entry = static_cast<uint8_t>(std::min<uint64_t>(distance, 200));
    }
}

void
SyntheticWorkload::reset()
{
    rng_ = util::Rng(profile_.rng_seed);
    generated_ = 0;
    pc_ = textBase();
    last_fetch_line_ = 0;
    for (RegionState &state : states_) {
        state.cursor = 0;
        state.window_base = 0;
        state.accesses = 0;
        state.last_chase_op = 0;
    }
    burst_region_ = 0;
    burst_remaining_ = 0;
}

size_t
SyntheticWorkload::pickRegion()
{
    const double u = rng_.nextDouble();
    for (size_t i = 0; i < weight_cdf_.size(); ++i) {
        if (u < weight_cdf_[i])
            return i;
    }
    return weight_cdf_.size() - 1;
}

uint8_t
SyntheticWorkload::fastDep()
{
    return dep_table_[rng_.next64() & 0xFF];
}

namespace
{

/**
 * x % m with a power-of-two fast path: region footprints and line
 * counts are almost always powers of two, and this runs several
 * times per generated memory instruction — an actual divide here is
 * one of the hottest single instructions in the simulator.
 */
inline uint64_t
fastMod(uint64_t x, uint64_t m)
{
    if ((m & (m - 1)) == 0)
        return x & (m - 1);
    return x % m;
}

} // namespace

uint64_t
SyntheticWorkload::regionAddress(size_t region_idx, bool *serialize_dep,
                                 bool *is_store)
{
    DataRegion &region = profile_.regions[region_idx];
    RegionState &state = states_[region_idx];
    const uint64_t lines =
        std::max<uint64_t>(1, region.footprint / line_size_);
    *serialize_dep = false;
    *is_store = rng_.chance(region.store_frac);
    ++state.accesses;

    uint64_t offset = 0;
    switch (region.behavior) {
      case RegionBehavior::Hot:
        offset = rng_.nextRange(region.footprint) & ~7ull;
        break;
      case RegionBehavior::Stream:
        offset = fastMod(state.cursor, region.footprint);
        state.cursor += region.stride;
        break;
      case RegionBehavior::Zipf:
      case RegionBehavior::Chase: {
        // Drift the reuse window through the footprint.
        if (region.drift_interval != 0 &&
            state.accesses % region.drift_interval == 0) {
            state.window_base = fastMod(
                state.window_base + region.drift_step_lines, lines);
        }
        const uint64_t universe =
            region.window_lines == 0
                ? lines
                : std::min<uint64_t>(region.window_lines, lines);
        const uint64_t rank = rng_.nextZipf(universe, region.zipf_s);
        const uint64_t windowed =
            fastMod(state.window_base + rank, lines);
        const uint64_t line = state.perm[windowed];
        offset = static_cast<uint64_t>(line) * line_size_ +
                 rng_.nextRange(16) * 8;
        *serialize_dep = region.behavior == RegionBehavior::Chase;
        break;
      }
      case RegionBehavior::ConflictStream: {
        const uint64_t idx =
            fastMod(state.cursor, region.conflict_lines);
        ++state.cursor;
        return region.base + idx * region.conflict_stride;
      }
      case RegionBehavior::WriteOnce: {
        if (*is_store) {
            // Advance to a fresh line every writes_per_line stores.
            const uint64_t line_index =
                state.cursor / std::max<uint32_t>(1,
                                                  region.writes_per_line);
            ++state.cursor;
            offset = fastMod(line_index, lines) * line_size_ +
                     rng_.nextRange(16) * 8;
        } else {
            // Loads touch recently produced lines (cache resident).
            const uint64_t produced =
                state.cursor /
                std::max<uint32_t>(1, region.writes_per_line);
            const uint64_t back = rng_.nextRange(8);
            const uint64_t line_index =
                produced > back ? produced - back : 0;
            offset = fastMod(line_index, lines) * line_size_ +
                     rng_.nextRange(16) * 8;
        }
        break;
      }
    }
    return region.base + fastMod(offset, region.footprint);
}

std::vector<uint64_t>
SyntheticWorkload::liveLines(size_t region_idx) const
{
    const DataRegion &region = profile_.regions[region_idx];
    const RegionState &state = states_[region_idx];
    const uint64_t lines =
        std::max<uint64_t>(1, region.footprint / line_size_);
    std::vector<uint64_t> live;

    switch (region.behavior) {
      case RegionBehavior::WriteOnce:
        break; // fresh lines only; nothing is live
      case RegionBehavior::Hot:
      case RegionBehavior::Stream:
        // Cyclic / uniform: everything is live; for streams the
        // highest addresses were touched most recently (the cursor
        // starts at 0, wrapping from the end).
        live.reserve(lines);
        for (uint64_t i = 0; i < lines; ++i)
            live.push_back(region.base + i * line_size_);
        break;
      case RegionBehavior::ConflictStream:
        live.reserve(region.conflict_lines);
        for (uint64_t i = 0; i < region.conflict_lines; ++i)
            live.push_back(region.base + i * region.conflict_stride);
        break;
      case RegionBehavior::Zipf:
      case RegionBehavior::Chase: {
        const uint64_t universe =
            region.window_lines == 0
                ? lines
                : std::min<uint64_t>(region.window_lines, lines);
        live.reserve(universe);
        // Least popular rank first so the most popular lines end up
        // most recently used.
        for (uint64_t rank = universe; rank-- > 0;) {
            const uint64_t windowed =
                (state.window_base + rank) % lines;
            live.push_back(region.base +
                           static_cast<uint64_t>(state.perm[windowed]) *
                               line_size_);
        }
        break;
      }
    }
    return live;
}

const TraceOp &
SyntheticWorkload::next()
{
    op_ = TraceOp{};

    // Fetch: 4-byte ops; emit fetch_line on line crossing.
    pc_ += 4;
    const uint64_t fetch_line = util::alignDown(pc_, line_size_);
    if (fetch_line != last_fetch_line_) {
        op_.fetch_line = fetch_line;
        last_fetch_line_ = fetch_line;
    }

    const double u = rng_.nextDouble();
    if (u < profile_.mem_frac) {
        size_t region_idx;
        if (burst_remaining_ > 0) {
            region_idx = burst_region_;
            --burst_remaining_;
        } else {
            region_idx = pickRegion();
            const uint32_t burst =
                profile_.regions[region_idx].burst_length;
            if (burst > 1) {
                burst_region_ = region_idx;
                burst_remaining_ = burst - 1;
            }
        }
        bool serialize = false;
        bool is_store = false;
        op_.addr = regionAddress(region_idx, &serialize, &is_store);
        op_.cls = is_store ? OpClass::Store : OpClass::Load;
        if (serialize && !is_store) {
            // Pointer chase: depend on the previous chase load of
            // this region so misses cannot overlap.
            RegionState &state = states_[region_idx];
            const uint64_t since = generated_ - state.last_chase_op;
            if (state.last_chase_op != 0 && since < 200)
                op_.dep1 = static_cast<uint8_t>(since);
            state.last_chase_op = generated_;
        } else {
            op_.dep1 = fastDep();
        }
    } else if (u < profile_.mem_frac + profile_.branch_frac) {
        op_.cls = OpClass::Branch;
        op_.dep1 = fastDep();
        op_.mispredict = rng_.chance(profile_.mispredict_rate);
        if (rng_.chance(profile_.jump_frac)) {
            pc_ = textBase() +
                  (rng_.nextRange(std::max<uint64_t>(
                       1, profile_.code_footprint / 4)) *
                   4);
        }
    } else if (u < profile_.mem_frac + profile_.branch_frac +
                       profile_.mul_frac) {
        op_.cls = OpClass::IntMul;
        op_.dep1 = fastDep();
        op_.dep2 = fastDep();
    } else if (u < profile_.mem_frac + profile_.branch_frac +
                       profile_.mul_frac + profile_.fp_frac) {
        op_.cls = OpClass::FpAlu;
        op_.dep1 = fastDep();
        op_.dep2 = fastDep();
    } else {
        op_.cls = OpClass::IntAlu;
        op_.dep1 = fastDep();
    }

    ++generated_;
    return op_;
}

} // namespace secproc::sim
