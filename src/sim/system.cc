/**
 * @file
 * Full-system implementation.
 */

#include "sim/system.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <ostream>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace secproc::sim
{

KernelMode
kernelModeFromEnvironment()
{
    const char *value = std::getenv("SECPROC_KERNEL");
    if (value == nullptr || *value == '\0' ||
        std::strcmp(value, "event") == 0) {
        return KernelMode::Event;
    }
    if (std::strcmp(value, "legacy") == 0)
        return KernelMode::Legacy;
    fatal("SECPROC_KERNEL=", value, " (expected \"event\" or "
          "\"legacy\")");
}

SystemConfig::SystemConfig()
{
    l1i.name = "l1i";
    l1i.size_bytes = 32 * 1024;
    l1i.assoc = 4;
    l1i.line_size = 64;

    l1d.name = "l1d";
    l1d.size_bytes = 32 * 1024;
    l1d.assoc = 4;
    l1d.line_size = 64;

    l2.name = "l2";
    l2.size_bytes = 256 * 1024;
    l2.assoc = 4;
    l2.line_size = 128;
}

System::System(const SystemConfig &config, Workload &workload)
    : System(config, std::vector<TaskSpec>{{&workload, 1}})
{}

System::System(const SystemConfig &config, std::vector<TaskSpec> tasks)
    : config_(config), tasks_(std::move(tasks)),
      channel_(config.channel), crypto_engine_(config.protection.crypto),
      l1i_(config.l1i), l1d_(config.l1d), l2_(config.l2),
      onchip_(config.l2.line_size), core_(config.core, *this),
      line_scratch_(config.l2.line_size)
{
    kernel_ = kernelModeFromEnvironment();
    fatal_if(config_.protection.line_size != config_.l2.line_size,
             "protection engine line size must match L2");
    fatal_if(tasks_.empty(), "a System needs at least one task");
    for (const TaskSpec &task : tasks_)
        fatal_if(task.workload == nullptr, "task without a workload");
    installKeys();
    engine_ = secure::makeProtectionEngine(config_.protection, channel_,
                                           keys_, &crypto_engine_);
    engine_->setCompartment(tasks_.front().compartment);
    registerPlaintextRegions();
    preinitializeRegions();
    registerMetrics(metrics_);
}

Workload &
System::workload() const
{
    return *tasks_[active_task_].workload;
}

void
System::installKeys()
{
    // Deterministic per-compartment key material: a simulation
    // artifact standing in for each vendor's key unwrapped via RSA
    // (the real flow is exercised by the xom toolchain and its
    // tests).
    for (const TaskSpec &task : tasks_) {
        util::Rng rng(0x5EC0'0001 ^
                      (uint64_t{task.compartment} << 32));
        std::vector<uint8_t> key(secure::cipherKeySize(config_.cipher));
        rng.fillBytes(key.data(), key.size());
        keys_.install(task.compartment, config_.cipher, key);
    }
}

void
System::registerPlaintextRegions()
{
    for (const TaskSpec &task : tasks_) {
        for (const DataRegion &region : task.workload->profile().regions) {
            if (!region.plaintext)
                continue;
            vm_.addRegion(asid_,
                          mem::Region{"input", region.base,
                                      region.base + region.footprint,
                                      mem::RegionKind::Plaintext});
        }
    }
}

void
System::switchToTask(size_t idx, SncSwitchPolicy policy)
{
    fatal_if(idx >= tasks_.size(), "no task ", idx);
    ++context_switches_;
    switch_spills_ += engine_->onContextSwitch(
        core_.cycles(), policy == SncSwitchPolicy::Flush);
    active_task_ = idx;
    engine_->setCompartment(tasks_[idx].compartment);
    if (trace_ != nullptr) {
        trace_->instant(trace_track_, "context_switch", core_.cycles(),
                        {{"task", idx}});
    }
}

void
System::preinitializeRegions()
{
    const uint32_t line = config_.l2.line_size;

    for (const TaskSpec &task : tasks_) {
        engine_->setCompartment(task.compartment);
        const Workload &wl = *task.workload;

        // Text segment: vendor-encrypted image (sequence number 0
        // seeds under OTP, direct encryption under XOM).
        if (config_.functional) {
            const uint64_t text_lines =
                (wl.profile().code_footprint + line - 1) / line;
            for (uint64_t i = 0; i < text_lines; ++i) {
                const uint64_t line_va = wl.textBase() + i * line;
                secure::EvictPlan plan;
                plan.line_va = line_va;
                plan.seqnum = 0;
                plan.state =
                    config_.protection.model == secure::SecurityModel::Xom
                        ? secure::LineCipherState::Direct
                        : secure::LineCipherState::Otp;
                if (config_.protection.model ==
                    secure::SecurityModel::Baseline) {
                    plan.state = secure::LineCipherState::Plain;
                }
                std::vector<uint8_t> bytes(line, 0);
                engine_->applyEvict(plan, bytes);
                memory_.writeLine(vm_.translate(asid_, line_va), bytes);
            }
        }

        // Data regions the program "wrote before the measurement
        // window": replay those writes through planEvict so line
        // states, SNC contents and sequence numbers are warm — under
        // every policy (LRU installs in order and wraps;
        // no-replacement claims slots until full, exactly like the
        // real first writes).
        for (const DataRegion &region : wl.profile().regions) {
            if (!region.preinitialized || region.plaintext ||
                region.behavior == RegionBehavior::WriteOnce)
                continue;
            uint64_t count;
            uint64_t stride;
            if (region.behavior == RegionBehavior::ConflictStream) {
                count = region.conflict_lines;
                stride = region.conflict_stride;
            } else {
                count = region.footprint / line;
                stride = line;
            }
            for (uint64_t i = 0; i < count; ++i) {
                const uint64_t line_va = region.base + i * stride;
                const secure::EvictPlan plan = engine_->planEvict(
                    line_va, mem::RegionKind::Protected);
                if (config_.functional) {
                    std::vector<uint8_t> bytes(line, 0);
                    util::storeLe64(bytes.data(), line_va); // content tag
                    engine_->applyEvict(plan, bytes);
                    memory_.writeLine(vm_.translate(asid_, line_va),
                                      bytes);
                }
            }
        }
    }

    // History fill: a program that has run for billions of
    // instructions (the paper fast-forwards 10 billion) has touched
    // far more memory than the live set, so an LRU SNC is *full*;
    // replacement traffic (Figure 9) only exists in that regime.
    // Model the history as filler entries that real lines then
    // displace. No-replacement SNCs are per-program structures that
    // start empty, so skip them (their slots belong to the program's
    // own first writes, replayed below).
    if (config_.protection.model == secure::SecurityModel::OtpSnc &&
        config_.protection.snc.allow_replacement) {
        auto *otp = static_cast<secure::OtpEngine *>(engine_.get());
        const uint64_t entries = config_.protection.snc.entries();
        uint64_t filler = 0x7F00'0000'0000ull;
        while (otp->snc().occupancy() < entries) {
            engine_->planEvict(filler, mem::RegionKind::Protected);
            filler += line;
        }
    }

    // Recency priming: replay each region's live set in access
    // order so SNC residency matches what a long-running program
    // would have established. Under no-replacement the installs are
    // rejected — slot ownership stays with the first writers, as it
    // should.
    for (const TaskSpec &task : tasks_) {
        engine_->setCompartment(task.compartment);
        const auto &regions = task.workload->profile().regions;
        for (size_t i = 0; i < regions.size(); ++i) {
            if (!regions[i].preinitialized || regions[i].plaintext)
                continue;
            for (const uint64_t line_va : task.workload->liveLines(i)) {
                const secure::EvictPlan plan = engine_->planEvict(
                    line_va, mem::RegionKind::Protected);
                if (config_.functional) {
                    std::vector<uint8_t> bytes(line, 0);
                    util::storeLe64(bytes.data(), line_va);
                    engine_->applyEvict(plan, bytes);
                    memory_.writeLine(vm_.translate(asid_, line_va),
                                      bytes);
                }
            }
        }
    }
    engine_->setCompartment(tasks_.front().compartment);
}

uint64_t
System::lineAlign(uint64_t addr) const
{
    return util::alignDown(addr, config_.l2.line_size);
}

uint64_t
System::dataAccess(uint64_t vaddr, uint64_t cycle, bool store)
{
    constexpr uint32_t l1_latency = 2;
    if (l1d_.access(vaddr, store)) {
        if (config_.functional && store)
            functionalStore(vaddr);
        return cycle + l1_latency;
    }

    const uint64_t completion =
        accessL2(vaddr, cycle + l1_latency, false, store);

    const auto victim = l1d_.fill(vaddr, store, 0);
    if (victim.has_value() && victim->valid && victim->dirty) {
        // Write-back into the inclusive L2.
        if (!l2_.setDirty(victim->line_addr)) {
            // Inclusion was broken by a same-cycle L2 fill chain;
            // treat as a direct write-back to memory.
            handleL2Victim(mem::Victim{true, true, victim->line_addr, 0},
                           cycle);
        }
    }
    if (config_.functional && store)
        functionalStore(vaddr);
    return completion;
}

uint64_t
System::ifetch(uint64_t line_va, uint64_t cycle)
{
    constexpr uint32_t l1_latency = 1;
    if (l1i_.access(line_va, false))
        return cycle + l1_latency;
    const uint64_t completion =
        accessL2(line_va, cycle + l1_latency, true, false);
    l1i_.fill(line_va, false, 0);
    return completion;
}

uint64_t
System::accessL2(uint64_t vaddr, uint64_t cycle, bool ifetch, bool store)
{
    constexpr uint32_t l2_latency = 12;
    const uint64_t line_va = lineAlign(vaddr);
    if (l2_.access(line_va, false)) {
        // Hit — but the line may still be in flight from an earlier
        // miss (MSHR secondary access).
        const auto it = std::lower_bound(
            outstanding_.begin(), outstanding_.end(), line_va,
            [](const auto &entry, uint64_t line) {
                return entry.first < line;
            });
        if (it != outstanding_.end() && it->first == line_va &&
            it->second > cycle + l2_latency) {
            return it->second;
        }
        return cycle + l2_latency;
    }
    return handleL2Miss(line_va, cycle + l2_latency, ifetch, store);
}

uint64_t
System::handleL2Miss(uint64_t line_va, uint64_t cycle, bool ifetch,
                     bool store)
{
    (void)store;
    // Retire completed outstanding misses.
    std::erase_if(outstanding_, [cycle](const auto &entry) {
        return entry.second <= cycle;
    });
    // MSHR capacity limits miss-level parallelism: a new primary
    // miss waits for the oldest outstanding fill to complete.
    while (outstanding_.size() >= config_.mshrs) {
        auto earliest = outstanding_.begin();
        for (auto it = outstanding_.begin(); it != outstanding_.end();
             ++it) {
            if (it->second < earliest->second)
                earliest = it;
        }
        cycle = std::max(cycle, earliest->second);
        outstanding_.erase(earliest);
    }

    const mem::RegionKind kind = vm_.regionKind(asid_, line_va);
    const secure::FillPlan plan =
        engine_->planFill(line_va, ifetch, kind);
    const secure::FillResult result =
        engine_->scheduleFill(plan, cycle);
    if (config_.functional)
        functionalFill(plan);

    // Install; the stored metadata is the line's virtual address —
    // the paper's Section 4 requirement that L2 remember VAs so the
    // SNC can be indexed on write-back.
    const auto victim = l2_.fill(line_va, false, line_va);
    if (victim.has_value() && victim->valid)
        handleL2Victim(*victim, cycle);

    const auto slot = std::lower_bound(
        outstanding_.begin(), outstanding_.end(), line_va,
        [](const auto &entry, uint64_t line) {
            return entry.first < line;
        });
    if (slot != outstanding_.end() && slot->first == line_va)
        slot->second = result.ready_cycle;
    else
        outstanding_.insert(slot, {line_va, result.ready_cycle});
    return result.ready_cycle;
}

void
System::handleL2Victim(const mem::Victim &victim, uint64_t cycle)
{
    // Back-invalidate L1 copies to preserve inclusion; a dirty L1
    // copy makes the outgoing line dirty.
    bool dirty = victim.dirty;
    for (uint64_t sub = victim.line_addr;
         sub < victim.line_addr + config_.l2.line_size;
         sub += config_.l1d.line_size) {
        dirty |= l1d_.invalidate(sub).dirty;
        l1i_.invalidate(sub);
    }

    bool have_bytes = false;
    if (config_.functional)
        have_bytes = onchip_.removeInto(victim.line_addr, line_scratch_);

    if (!dirty)
        return; // clean: memory image is already current

    const mem::RegionKind kind =
        vm_.regionKind(asid_, victim.line_addr);
    const secure::EvictPlan plan =
        engine_->planEvict(victim.line_addr, kind);
    engine_->scheduleEvict(plan, cycle);

    if (config_.functional) {
        if (!have_bytes)
            std::fill(line_scratch_.begin(), line_scratch_.end(), 0);
        engine_->applyEvict(plan, line_scratch_);
        memory_.writeLine(vm_.translate(asid_, victim.line_addr),
                          line_scratch_);
    }
}

void
System::functionalFill(const secure::FillPlan &plan)
{
    const uint64_t pa = vm_.translate(asid_, plan.line_va);
    memory_.readLine(pa, line_scratch_);
    engine_->applyFill(plan, line_scratch_);
    onchip_.install(plan.line_va, line_scratch_);
}

void
System::functionalEvict(uint64_t line_va, mem::RegionKind kind)
{
    const secure::EvictPlan plan = engine_->planEvict(line_va, kind);
    if (!onchip_.removeInto(line_va, line_scratch_))
        std::fill(line_scratch_.begin(), line_scratch_.end(), 0);
    engine_->applyEvict(plan, line_scratch_);
    memory_.writeLine(vm_.translate(asid_, line_va), line_scratch_);
}

void
System::functionalStore(uint64_t vaddr)
{
    const uint64_t line_va = lineAlign(vaddr);
    uint8_t *bytes = onchip_.peekMutable(line_va);
    if (bytes == nullptr)
        return; // line bypassed the functional fill path
    const uint64_t offset =
        util::alignDown(vaddr - line_va, 8) % config_.l2.line_size;
    // Deterministic store content: mixes address and store count so
    // repeated writes change the data. Per-instance so concurrent
    // systems neither race nor perturb each other's data stream.
    util::storeLe64(bytes + offset, vaddr ^ (++store_salt_));
}

void
System::attachAgent(BackgroundAgent *agent)
{
    fatal_if(agent == nullptr, "cannot attach a null agent");
    if (trace_ != nullptr)
        agent->setTraceSink(trace_);
    agents_.push_back(agent);
}

void
System::setTraceSink(obs::TraceSink *sink)
{
    trace_ = sink;
    if (sink != nullptr)
        trace_track_ = sink->track("system");
    channel_.setTraceSink(sink);
    crypto_engine_.setTraceSink(sink);
    for (BackgroundAgent *agent : agents_)
        agent->setTraceSink(sink);
}

void
System::detachAgent(BackgroundAgent *agent)
{
    std::erase(agents_, agent);
}

void
System::reset()
{
    // Shared resources first, then the agents: an agent's request
    // still queued in the channel's arbiter is dropped by the
    // channel reset, so by the time BackgroundAgent::reset() runs
    // there is nothing left for the agent to be waiting on. The
    // shared crypto engine is the machine's to reset (the protection
    // engine deliberately leaves it alone — see
    // ProtectionEngine::reset), and the MSHR ledger belongs to the
    // run being abandoned. Security state (line states, SNC, keys)
    // and cache contents survive: they are the device, not the run.
    channel_.reset();
    crypto_engine_.reset();
    outstanding_.clear();
    for (BackgroundAgent *agent : agents_)
        agent->reset();
    // Any wakeup armed for the abandoned work is meaningless now;
    // the next run() re-arms from the agents' post-reset state.
    wakeups_.clear();
    if (trace_ != nullptr)
        trace_->instant(trace_track_, "machine_reset", core_.cycles());
}

uint64_t
System::armWakeups()
{
    wakeups_.clear();
    const uint64_t now = core_.cycles();
    for (size_t i = 0; i < agents_.size(); ++i)
        wakeups_.schedule(agents_[i]->nextEventCycle(now), i);
    return wakeups_.nextCycle();
}

void
System::run(uint64_t instructions)
{
    Workload &active = workload();
    if (agents_.empty()) {
        for (uint64_t i = 0; i < instructions; ++i)
            core_.step(active.next());
        return;
    }
    if (kernel_ == KernelMode::Legacy) {
        for (uint64_t i = 0; i < instructions; ++i) {
            core_.step(active.next());
            for (BackgroundAgent *agent : agents_)
                agent->advance(core_.cycles());
        }
        return;
    }
    // Event kernel. Wakeups are conservative lower bounds on each
    // agent's next effectful advance (see
    // BackgroundAgent::nextEventCycle), so skipping the pump until
    // the core clock reaches the earliest one drops only provable
    // no-op pumps. At a reached wakeup *every* agent is advanced in
    // attach order — the exact sub-sequence of the legacy every-step
    // pump that contains all its effectful elements — and every
    // wakeup is re-armed against the post-pump state.
    //
    // The parked-grant check closes the one gap wakeups cannot see:
    // the foreground's own channel accesses run the arbiter at the
    // access cycle, which leads the boundary clock (the core's memory
    // ops run ahead of retire), so a grant can land while every armed
    // wakeup is still in the future. Legacy collects such grants at
    // the very next boundary; so must we. Results are bit-identical
    // to KernelMode::Legacy; only wall-clock differs.
    uint64_t next_wake = armWakeups();
    for (uint64_t i = 0; i < instructions; ++i) {
        core_.step(active.next());
        if (core_.cycles() >= next_wake ||
            channel_.backgroundGrantParked()) {
            const uint64_t now = core_.cycles();
            for (BackgroundAgent *agent : agents_)
                agent->advance(now);
            next_wake = armWakeups();
        }
    }
}

void
System::beginMeasurement()
{
    measure_base_ = metrics_.snapshot();
    // Mark the window on the timeline; also guarantees a traced run
    // is never event-free (core demand traffic is untraced by
    // design, so a quiet foreground-only run would otherwise be).
    if (trace_ != nullptr)
        trace_->instant(trace_track_, "measure_begin", core_.cycles());
}

RunStats
System::stats() const
{
    // Counters delta against the beginMeasurement() snapshot; before
    // it measure_base_ is empty and delta() subtracts zero, so the
    // window is the whole run — the same semantics the hand-kept
    // base_* fields used to have.
    const obs::MetricsSnapshot now = metrics_.snapshot();
    const obs::MetricsSnapshot window = now.delta(measure_base_);
    RunStats stats;
    stats.instructions = window.u64("core.instructions");
    stats.cycles = window.u64("core.cycles");
    stats.l2_misses = window.u64("l2.misses");
    stats.l2_accesses = window.u64("l2.accesses");
    stats.ipc = stats.cycles == 0
                    ? 0.0
                    : static_cast<double>(stats.instructions) /
                          static_cast<double>(stats.cycles);
    stats.data_bytes = window.u64("channel.data_bytes");
    stats.seqnum_bytes = window.u64("channel.seqnum_bytes");
    // Fill and SNC counts report whole-run absolutes, not window
    // deltas (Figure 5/9 consumers want totals).
    stats.fast_fills = now.u64("engine.fast_fills");
    stats.slow_fills = now.u64("engine.slow_fills");
    stats.snc_query_misses = now.u64("snc.query_misses");
    return stats;
}

void
System::registerMetrics(obs::MetricsRegistry &reg) const
{
    // Component StatGroups, bridged under their existing prefixes.
    util::StatGroup l1i_group("l1i"), l1d_group("l1d"), l2_group("l2");
    l1i_.regStats(l1i_group);
    l1d_.regStats(l1d_group);
    l2_.regStats(l2_group);
    reg.group(l1i_group);
    reg.group(l1d_group);
    reg.group(l2_group);

    util::StatGroup core_group("core");
    core_.regStats(core_group);
    reg.group(core_group);

    util::StatGroup engine_group(engine_->name());
    engine_->regStats(engine_group);
    reg.group(engine_group);

    // Canonical anchors the measurement window is defined over. The
    // core's StatGroup registers event mixes, not cycles, so these
    // cannot collide with the bridged names above.
    const OooCore *core = &core_;
    reg.counterFn("core.cycles", [core] { return core->cycles(); });
    reg.counterFn("core.instructions",
                  [core] { return core->instructions(); });
    const mem::Cache *l2 = &l2_;
    reg.counterFn("l2.accesses",
                  [l2] { return l2->hits() + l2->misses(); });

    // Channel traffic: grouped, per category, per agent.
    const mem::MemoryChannel *ch = &channel_;
    reg.counterFn("channel.data_bytes",
                  [ch] { return ch->dataBytes(); });
    reg.counterFn("channel.seqnum_bytes",
                  [ch] { return ch->seqnumBytes(); });
    reg.counterFn("channel.mac_bytes", [ch] { return ch->macBytes(); });
    reg.counterFn("channel.update_bytes",
                  [ch] { return ch->updateBytes(); });
    reg.counterFn("channel.total_bytes",
                  [ch] { return ch->totalBytes(); });
    reg.counterFn("channel.busy_cycles",
                  [ch] { return ch->busyCycles(); });
    for (size_t i = 0;
         i < static_cast<size_t>(mem::Traffic::NumCategories); ++i) {
        const auto category = static_cast<mem::Traffic>(i);
        const std::string name = mem::trafficName(category);
        reg.counterFn("channel." + name + "_bytes",
                      [ch, category] { return ch->bytes(category); });
        reg.counterFn("channel." + name + "_transactions",
                      [ch, category] {
                          return ch->transactions(category);
                      });
    }
    for (size_t i = 0; i < channel_.agentCount(); ++i) {
        const auto agent = static_cast<mem::AgentId>(i);
        const std::string prefix =
            "channel.agent." + channel_.agentName(agent);
        reg.counterFn(prefix + ".bytes",
                      [ch, agent] { return ch->agentBytes(agent); });
        reg.counterFn(prefix + ".transactions", [ch, agent] {
            return ch->agentTransactions(agent);
        });
        reg.counterFn(prefix + ".stall_cycles", [ch, agent] {
            return ch->agentStallCycles(agent);
        });
        reg.gaugeFn(prefix + ".max_stall_cycles", [ch, agent] {
            return static_cast<double>(ch->agentMaxStallCycles(agent));
        });
    }
    reg.counterFn("channel.bg.grants",
                  [ch] { return ch->backgroundGrants(); });
    reg.counterFn("channel.bg.forced_grants",
                  [ch] { return ch->backgroundForcedGrants(); });

    // Shared crypto engine occupancy.
    const crypto::CryptoEngineModel *crypto = &crypto_engine_;
    reg.counterFn("crypto.operations",
                  [crypto] { return crypto->operations(); });
    reg.counterFn("crypto.reserved_operations",
                  [crypto] { return crypto->reservedOperations(); });
    reg.gaugeFn("crypto.busy_until", [crypto] {
        return static_cast<double>(crypto->busyUntil());
    });

    // Model-independent protection-engine anchors (the bridged group
    // above is prefixed with the model's own name).
    const secure::ProtectionEngine *eng = engine_.get();
    reg.counterFn("engine.fast_fills",
                  [eng] { return eng->fastFills(); });
    reg.counterFn("engine.slow_fills",
                  [eng] { return eng->slowFills(); });
    reg.counterFn("snc.query_misses", [eng]() -> uint64_t {
        const auto *otp =
            dynamic_cast<const secure::OtpEngine *>(eng);
        return otp == nullptr ? 0 : otp->snc().queryMisses();
    });

    reg.counterFn("sys.context_switches",
                  [this] { return context_switches_; });
    reg.counterFn("sys.switch_flush_spills",
                  [this] { return switch_spills_; });

    // Memory plane: micro-TLB effectiveness and flat-store footprint.
    const mem::VirtualMemory *vm = &vm_;
    reg.counterFn("mem.tlb.hits", [vm] { return vm->tlbHits(); });
    reg.counterFn("mem.tlb.misses", [vm] { return vm->tlbMisses(); });
    const mem::MainMemory *memory = &memory_;
    reg.counterFn("mem.pages_resident", [memory] {
        return static_cast<uint64_t>(memory->residentPages());
    });
    reg.gaugeFn("mem.arena_bytes", [memory] {
        return static_cast<double>(memory->arenaBytesReserved());
    });
}

void
System::dumpStats(std::ostream &os) const
{
    channel_.assertFullyAttributed();
    // A fresh registry, not metrics_: channel agents registered after
    // construction (a live installer, an OTA DMA master) must show up
    // in the dump.
    obs::MetricsRegistry registry;
    registerMetrics(registry);
    registry.snapshot().dump(os);
}

SystemConfig
paperConfig(secure::SecurityModel model)
{
    SystemConfig config;
    config.protection.model = model;
    config.protection.crypto.latency = crypto::kPaperCryptoLatency;
    config.protection.line_size = config.l2.line_size;
    config.protection.snc.l2_line_size = config.l2.line_size;
    config.protection.snc.capacity_bytes = 64 * 1024;
    config.protection.snc.bytes_per_entry = 2;
    config.protection.snc.assoc = 0; // fully associative
    config.protection.snc.allow_replacement = true;
    config.channel.access_latency = 100;
    config.channel.transfer_cycles = 16;
    config.channel.line_bytes = config.l2.line_size;
    return config;
}

} // namespace secproc::sim
