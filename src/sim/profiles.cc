/**
 * @file
 * Benchmark profile definitions.
 *
 * Calibration rationale per benchmark (targets in parentheses are
 * the paper's numbers; see DESIGN.md section 6 and EXPERIMENTS.md
 * for measured results):
 *
 *  - ammp: skewed reuse over ~6MB (so the 128KB SNC wins, Fig. 6)
 *    plus a 64-line ring at a stride that collapses into one set of
 *    a 32-way SNC (9.6% at 32-way vs 2.8% fully associative,
 *    Fig. 7).
 *  - art: intense streaming over ~1.5MB that thrashes the 256KB L2
 *    (34.9% XOM) but fits even a 32KB SNC's 2MB coverage (0.23%
 *    everywhere).
 *  - bzip2: windowed reuse over ~2.5MB (LRU-32KB 1.6% vs 64KB
 *    0.56%).
 *  - equake: streaming ~3.2MB: covered by a 64KB SNC (0.06%) but
 *    not by 32KB (7.6%).
 *  - gcc: working set drifts through a huge footprint, so a
 *    no-replacement SNC fills with dead entries and degenerates to
 *    XOM (18.1% vs XOM 18.3%) while LRU tracks the live window
 *    (1.4%).
 *  - gzip: cache-resident hot set (1.1% XOM) plus a write-once
 *    output stream that churns sequence numbers: highest SNC
 *    traffic share (1.03%, Fig. 9) with negligible slowdown.
 *  - mcf: dependent pointer chasing over ~7MB with skewed reuse:
 *    worst XOM case (34.8%), SNC-LRU residual 6.4% at 64KB, 1.5%
 *    at 128KB.
 *  - mesa: mostly cache resident (0.63% XOM) with a write-once
 *    frame buffer (0.90% traffic).
 *  - parser: zipf reuse over ~8MB; no-replacement covers only the
 *    first-written half of the popularity mass (6.9%), LRU keeps
 *    the hot lines (0.95%).
 *  - vortex: a ~320KB hot structure that fits a 384KB L2 but not
 *    256KB (Fig. 8 shows XOM-384K *faster* than the 256K baseline)
 *    plus a large zipf tail for the SNC columns.
 *  - vpr: ~1.2MB flat working set thrashing L2 (21.2% XOM) yet
 *    fully SNC-covered at every size (0.24%).
 */

#include "sim/profiles.hh"

#include <map>

#include "util/logging.hh"

namespace secproc::sim
{

namespace
{

WorkloadProfile
makeAmmp()
{
    WorkloadProfile p;
    p.name = "ammp";
    p.mem_frac = 0.36;
    p.fp_frac = 0.20;
    p.code_footprint = 24 * 1024;
    p.rng_seed = 0xA33F;
    DataRegion zipf;
    zipf.behavior = RegionBehavior::Zipf;
    zipf.footprint = 6ull << 20;
    zipf.weight = 0.19;
    zipf.store_frac = 0.30;
    zipf.zipf_s = 1.20;
    DataRegion conflict;
    conflict.behavior = RegionBehavior::ConflictStream;
    conflict.footprint = 1 << 20;
    conflict.weight = 0.004;
    conflict.store_frac = 0.30;
    // 64 lines spaced 1024 L2-lines apart: one set of a 1024-set
    // (64KB 32-way) SNC and one set of the 512-set L2.
    conflict.conflict_stride = 1024 * 128;
    conflict.conflict_lines = 64;
    DataRegion hot;
    hot.behavior = RegionBehavior::Hot;
    hot.footprint = 112 * 1024;
    hot.weight = 0.678;
    hot.store_frac = 0.30;
    p.regions = {conflict, zipf, hot};
    return p;
}

WorkloadProfile
makeArt()
{
    WorkloadProfile p;
    p.name = "art";
    p.mem_frac = 0.42;
    p.fp_frac = 0.22;
    p.code_footprint = 8 * 1024;
    p.dep_p = 0.5; // short dependence chains: high MLP streaming
    p.rng_seed = 0xA57;
    DataRegion stream;
    stream.behavior = RegionBehavior::Stream;
    stream.footprint = 1536 * 1024;
    stream.weight = 0.615;
    stream.store_frac = 0.12;
    stream.stride = 32;
    stream.burst_length = 8;
    DataRegion hot;
    hot.behavior = RegionBehavior::Hot;
    hot.footprint = 48 * 1024;
    hot.weight = 0.34;
    hot.store_frac = 0.25;
    p.regions = {stream, hot};
    return p;
}

WorkloadProfile
makeBzip2()
{
    WorkloadProfile p;
    p.name = "bzip2";
    p.mem_frac = 0.34;
    p.code_footprint = 12 * 1024;
    p.rng_seed = 0xB21;
    DataRegion zipf;
    zipf.behavior = RegionBehavior::Zipf;
    zipf.footprint = 2080 * 1024; // 16.25K lines
    zipf.weight = 0.06;
    zipf.store_frac = 0.35;
    zipf.zipf_s = 0.70;
    zipf.window_lines = 3 * 1024;
    zipf.drift_interval = 512;
    zipf.drift_step_lines = 64;
    DataRegion hot;
    hot.behavior = RegionBehavior::Hot;
    hot.footprint = 96 * 1024;
    hot.weight = 0.925;
    hot.store_frac = 0.30;
    p.regions = {zipf, hot};
    return p;
}

WorkloadProfile
makeEquake()
{
    WorkloadProfile p;
    p.name = "equake";
    p.mem_frac = 0.38;
    p.fp_frac = 0.24;
    p.code_footprint = 10 * 1024;
    p.dep_p = 0.45;
    p.rng_seed = 0xE03;
    DataRegion stream;
    stream.behavior = RegionBehavior::Zipf;
    stream.footprint = 2560 * 1024; // 20K lines
    stream.weight = 0.04;
    stream.store_frac = 0.18;
    stream.zipf_s = 1.05;
    stream.burst_length = 8;
    DataRegion hot;
    hot.behavior = RegionBehavior::Hot;
    hot.footprint = 64 * 1024;
    hot.weight = 0.97;
    hot.store_frac = 0.30;
    p.regions = {stream, hot};
    return p;
}

WorkloadProfile
makeGcc()
{
    WorkloadProfile p;
    p.name = "gcc";
    p.mem_frac = 0.36;
    p.branch_frac = 0.18;
    p.mispredict_rate = 0.06;
    p.code_footprint = 64 * 1024;
    p.jump_frac = 0.20;
    p.rng_seed = 0x6CC;
    // A ~340KB live window drifting through a 32MB footprint: the
    // no-replacement SNC fills with dead entries.
    DataRegion zipf;
    zipf.behavior = RegionBehavior::Zipf;
    zipf.footprint = 32ull << 20; // 262K lines
    zipf.weight = 0.07;
    zipf.store_frac = 0.35;
    zipf.zipf_s = 0.45;
    zipf.window_lines = 2720; // ~340KB
    zipf.drift_interval = 4000;
    zipf.drift_step_lines = 32;
    DataRegion hot;
    hot.behavior = RegionBehavior::Hot;
    hot.footprint = 48 * 1024;
    hot.weight = 0.89;
    hot.store_frac = 0.30;
    p.regions = {zipf, hot};
    return p;
}

WorkloadProfile
makeGzip()
{
    WorkloadProfile p;
    p.name = "gzip";
    p.mem_frac = 0.30;
    p.code_footprint = 8 * 1024;
    p.rng_seed = 0x621F;
    DataRegion hot;
    hot.behavior = RegionBehavior::Hot;
    hot.footprint = 96 * 1024;
    hot.weight = 0.94;
    hot.store_frac = 0.30;
    DataRegion once;
    once.behavior = RegionBehavior::WriteOnce;
    once.footprint = 32ull << 20;
    once.weight = 0.06;
    once.store_frac = 0.55;
    once.writes_per_line = 8;
    once.preinitialized = false;
    p.regions = {hot, once};
    return p;
}

WorkloadProfile
makeMcf()
{
    WorkloadProfile p;
    p.name = "mcf";
    p.mem_frac = 0.40;
    p.code_footprint = 6 * 1024;
    p.dep_p = 0.30;
    p.rng_seed = 0x3CF;
    DataRegion chase;
    chase.behavior = RegionBehavior::Chase;
    chase.footprint = 5632ull << 10; // 5.5MB, 44K lines
    chase.weight = 0.80;
    chase.store_frac = 0.12;
    chase.zipf_s = 1.40;
    DataRegion hot;
    hot.behavior = RegionBehavior::Hot;
    hot.footprint = 64 * 1024;
    hot.weight = 0.25;
    hot.store_frac = 0.25;
    p.regions = {chase, hot};
    return p;
}

WorkloadProfile
makeMesa()
{
    WorkloadProfile p;
    p.name = "mesa";
    p.mem_frac = 0.30;
    p.fp_frac = 0.20;
    p.code_footprint = 24 * 1024;
    p.rng_seed = 0x3E5A;
    DataRegion hot;
    hot.behavior = RegionBehavior::Hot;
    hot.footprint = 120 * 1024;
    hot.weight = 0.98;
    hot.store_frac = 0.30;
    DataRegion once;
    once.behavior = RegionBehavior::WriteOnce;
    once.footprint = 32ull << 20;
    once.weight = 0.02;
    once.store_frac = 0.60;
    once.writes_per_line = 10;
    once.preinitialized = false;
    p.regions = {hot, once};
    return p;
}

WorkloadProfile
makeParser()
{
    WorkloadProfile p;
    p.name = "parser";
    p.mem_frac = 0.35;
    p.branch_frac = 0.16;
    p.code_footprint = 48 * 1024;
    p.rng_seed = 0x9A25;
    DataRegion zipf;
    zipf.behavior = RegionBehavior::Zipf;
    zipf.footprint = 8ull << 20; // 64K lines
    zipf.weight = 0.028;
    zipf.store_frac = 0.25;
    zipf.zipf_s = 0.70;
    zipf.window_lines = 18 * 1024;
    DataRegion hot;
    hot.behavior = RegionBehavior::Hot;
    hot.footprint = 96 * 1024;
    hot.weight = 0.962;
    hot.store_frac = 0.30;
    p.regions = {zipf, hot};
    return p;
}

WorkloadProfile
makeVortex()
{
    WorkloadProfile p;
    p.name = "vortex";
    p.mem_frac = 0.36;
    p.branch_frac = 0.15;
    p.code_footprint = 56 * 1024;
    p.rng_seed = 0x0E7;
    // The hot structure drives the Figure 8 crossover: it misses in
    // a 256KB L2 but fits a 384KB one.
    DataRegion warm;
    warm.behavior = RegionBehavior::Stream;
    warm.footprint = 272 * 1024;
    warm.weight = 0.03;
    warm.stride = 32;
    warm.store_frac = 0.30;
    DataRegion zipf;
    zipf.behavior = RegionBehavior::Zipf;
    zipf.footprint = 12ull << 20; // 96K lines
    zipf.weight = 0.0025;
    zipf.store_frac = 0.30;
    zipf.zipf_s = 1.05;
    DataRegion hot;
    hot.behavior = RegionBehavior::Hot;
    hot.footprint = 48 * 1024;
    hot.weight = 0.9665;
    hot.store_frac = 0.30;
    p.regions = {zipf, warm, hot};
    return p;
}

WorkloadProfile
makeVpr()
{
    WorkloadProfile p;
    p.name = "vpr";
    p.mem_frac = 0.36;
    p.code_footprint = 20 * 1024;
    p.rng_seed = 0x09B;
    DataRegion zipf;
    zipf.behavior = RegionBehavior::Zipf;
    zipf.footprint = 1200 * 1024;
    zipf.weight = 0.062;
    zipf.store_frac = 0.35;
    zipf.zipf_s = 0.40;
    DataRegion hot;
    hot.behavior = RegionBehavior::Hot;
    hot.footprint = 56 * 1024;
    hot.weight = 0.938;
    hot.store_frac = 0.30;
    p.regions = {zipf, hot};
    return p;
}

const std::map<std::string, WorkloadProfile (*)()> &
profileFactories()
{
    static const std::map<std::string, WorkloadProfile (*)()> factories =
        {
            {"ammp", makeAmmp},     {"art", makeArt},
            {"bzip2", makeBzip2},   {"equake", makeEquake},
            {"gcc", makeGcc},       {"gzip", makeGzip},
            {"mcf", makeMcf},       {"mesa", makeMesa},
            {"parser", makeParser}, {"vortex", makeVortex},
            {"vpr", makeVpr},
        };
    return factories;
}

} // namespace

const std::vector<std::string> &
benchmarkNames()
{
    static const std::vector<std::string> names = {
        "ammp", "art",  "bzip2",  "equake", "gcc", "gzip",
        "mcf",  "mesa", "parser", "vortex", "vpr",
    };
    return names;
}

WorkloadProfile
benchmarkProfile(const std::string &name)
{
    const auto &factories = profileFactories();
    const auto it = factories.find(name);
    fatal_if(it == factories.end(), "unknown benchmark '", name, "'");
    return it->second();
}

PaperNumbers
paperNumbers(const std::string &name)
{
    // Columns: xom, norepl, lru, lru32k, lru128k, 32way, traffic,
    // xom102, norepl102, lru102, xom384k_norm.
    static const std::map<std::string, PaperNumbers> numbers = {
        {"ammp",
         {23.02, 4.57, 2.76, 4.36, 0.41, 9.62, 0.32, 46.95, 8.95, 2.72,
          1.20}},
        {"art",
         {34.91, 0.23, 0.23, 0.23, 0.23, 0.23, 0.00, 71.21, 0.23, 0.23,
          1.35}},
        {"bzip2",
         {15.82, 1.04, 0.56, 1.61, 0.34, 0.55, 0.09, 32.27, 1.82, 0.56,
          1.03}},
        {"equake",
         {14.27, 0.06, 0.06, 7.58, 0.06, 0.18, 0.00, 29.10, 0.06, 0.06,
          1.14}},
        {"gcc",
         {18.30, 18.07, 1.40, 1.44, 1.29, 1.38, 0.05, 37.36, 36.89,
          1.38, 0.96}},
        {"gzip",
         {1.08, 0.51, 0.31, 0.33, 0.30, 0.31, 1.03, 2.21, 1.04, 0.30,
          1.00}},
        {"mcf",
         {34.76, 13.51, 6.44, 15.23, 1.45, 6.34, 0.47, 70.91, 27.30,
          6.32, 1.32}},
        {"mesa",
         {0.63, 0.24, 0.07, 0.14, 0.01, 0.07, 0.90, 1.28, 0.48, 0.07,
          0.99}},
        {"parser",
         {13.39, 6.94, 0.95, 2.70, 0.57, 0.94, 0.18, 27.32, 14.02, 0.94,
          1.02}},
        {"vortex",
         {7.05, 5.02, 1.03, 1.86, 0.70, 1.03, 0.39, 14.42, 10.23, 1.01,
          0.93}},
        {"vpr",
         {21.16, 0.24, 0.24, 0.24, 0.24, 0.24, 0.00, 43.16, 0.24, 0.24,
          1.04}},
    };
    const auto it = numbers.find(name);
    fatal_if(it == numbers.end(), "unknown benchmark '", name, "'");
    return it->second;
}

} // namespace secproc::sim
