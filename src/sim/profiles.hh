/**
 * @file
 * The 11 SPEC CPU2000-like workload profiles evaluated in the paper
 * (ammp, art, bzip2, equake, gcc, gzip, mcf, mesa, parser, vortex,
 * vpr), each calibrated to reproduce that benchmark's role in the
 * paper's figures. See DESIGN.md section 6 for the calibration
 * targets and EXPERIMENTS.md for measured-vs-paper results.
 */

#ifndef SECPROC_SIM_PROFILES_HH
#define SECPROC_SIM_PROFILES_HH

#include <string>
#include <vector>

#include "sim/workload.hh"

namespace secproc::sim
{

/** Names of the paper's benchmarks, in figure order. */
const std::vector<std::string> &benchmarkNames();

/** Profile for one named benchmark; fatal on unknown names. */
WorkloadProfile benchmarkProfile(const std::string &name);

/** Paper-reported numbers for comparison tables (percent). */
struct PaperNumbers
{
    double xom_slowdown;       ///< Fig. 3 (50-cycle crypto)
    double snc_norepl;         ///< Fig. 5
    double snc_lru;            ///< Fig. 5 (64KB)
    double snc_lru_32k;        ///< Fig. 6
    double snc_lru_128k;       ///< Fig. 6
    double snc_32way;          ///< Fig. 7
    double traffic_pct;        ///< Fig. 9
    double xom_102;            ///< Fig. 10
    double norepl_102;         ///< Fig. 10
    double lru_102;            ///< Fig. 10
    double xom_384k_norm;      ///< Fig. 8 (normalized time)
};

/** Paper numbers for @p name; fatal on unknown names. */
PaperNumbers paperNumbers(const std::string &name);

} // namespace secproc::sim

#endif // SECPROC_SIM_PROFILES_HH
