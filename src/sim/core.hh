/**
 * @file
 * Windowed out-of-order core timing model.
 *
 * A one-pass approximation of a 4-issue out-of-order processor in
 * the spirit of the paper's SimpleScalar baseline: instructions
 * dispatch at up to `width` per cycle into a reorder buffer;
 * completion times are limited by operand dataflow, functional-unit
 * latency and the memory system; retirement is in order, so a
 * long-latency load at the ROB head stalls dispatch when the window
 * fills — which is exactly how off-chip decryption latency turns
 * into slowdown. Branch mispredictions redirect fetch after the
 * branch resolves.
 *
 * Known simplifications (DESIGN.md section 7): no wrong-path memory
 * traffic, stores retire without stalling (write-buffer semantics),
 * fetch is charged only at instruction-cache line boundaries.
 */

#ifndef SECPROC_SIM_CORE_HH
#define SECPROC_SIM_CORE_HH

#include <cstdint>
#include <vector>

#include "sim/trace.hh"
#include "util/stats.hh"

namespace secproc::sim
{

/** Core pipeline parameters (defaults match the paper Section 5). */
struct CoreConfig
{
    uint32_t rob_size = 128;
    uint32_t width = 4; ///< dispatch/commit width (paper: 4-issue)
    uint32_t redirect_penalty = 12;
    uint32_t int_latency = 1;
    uint32_t mul_latency = 3;
    uint32_t fp_latency = 4;

    /**
     * Loads block dispatch until their data returns (simple in-order
     * core). The paper's win comes partly from out-of-order cores
     * hiding part of the fill latency; this flag measures how much
     * larger the crypto penalty is when nothing overlaps
     * (ablation_core_model).
     */
    bool blocking_loads = false;
};

/**
 * Memory-system interface the core issues accesses through.
 * Implemented by sim::System.
 */
class MemorySystem
{
  public:
    virtual ~MemorySystem() = default;

    /**
     * Data access.
     * @param vaddr Effective address.
     * @param cycle Issue cycle.
     * @param store True for stores.
     * @return Completion cycle (data available / store accepted).
     */
    virtual uint64_t dataAccess(uint64_t vaddr, uint64_t cycle,
                                bool store) = 0;

    /**
     * Instruction line fetch.
     * @return Cycle the fetched line can feed dispatch.
     */
    virtual uint64_t ifetch(uint64_t line_va, uint64_t cycle) = 0;
};

/**
 * The core model. Feed ops in program order via step(); read cycles()
 * at the end.
 */
class OooCore
{
  public:
    OooCore(const CoreConfig &config, MemorySystem &memory);

    /** Account one instruction. */
    void step(const TraceOp &op);

    /** Cycles consumed so far (in-order retirement horizon). */
    uint64_t cycles() const;

    /** Instructions stepped so far. */
    uint64_t instructions() const { return instructions_; }

    /** Loads / stores / branches / mispredicts seen (sanity stats). */
    uint64_t loads() const { return loads_.value(); }
    uint64_t stores() const { return stores_.value(); }
    uint64_t branches() const { return branches_.value(); }
    uint64_t mispredicts() const { return mispredicts_.value(); }

    /** Restart timing (fresh run; memory system reset separately). */
    void reset();

    void regStats(util::StatGroup &group) const;

  private:
    CoreConfig config_;
    MemorySystem &memory_;

    uint64_t dispatch_cycle_ = 0;
    uint32_t dispatched_this_cycle_ = 0;
    uint64_t fetch_ready_ = 0;
    uint64_t instructions_ = 0;

    /** In-order retirement horizon (monotonic). */
    uint64_t retire_horizon_ = 0;

    /** ROB occupancy ring: monotonicized completion cycles. */
    std::vector<uint64_t> rob_;
    size_t rob_head_ = 0;
    size_t rob_count_ = 0;

    /** Recent dataflow completion times for dependence lookup. */
    static constexpr size_t kRecentWindow = 256;
    std::vector<uint64_t> recent_;
    size_t recent_pos_ = 0;

    util::Counter loads_;
    util::Counter stores_;
    util::Counter branches_;
    util::Counter mispredicts_;

    uint64_t producerReady(const TraceOp &op) const;
    uint64_t takeDispatchSlot(uint64_t earliest);
};

} // namespace secproc::sim

#endif // SECPROC_SIM_CORE_HH
