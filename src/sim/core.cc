/**
 * @file
 * Windowed out-of-order core implementation.
 */

#include "sim/core.hh"

#include <algorithm>

#include "util/logging.hh"

namespace secproc::sim
{

OooCore::OooCore(const CoreConfig &config, MemorySystem &memory)
    : config_(config), memory_(memory)
{
    fatal_if(config_.rob_size == 0, "ROB needs at least one entry");
    fatal_if(config_.width == 0, "dispatch width must be >= 1");
    rob_.assign(config_.rob_size, 0);
    recent_.assign(kRecentWindow, 0);
}

uint64_t
OooCore::producerReady(const TraceOp &op) const
{
    uint64_t ready = 0;
    for (const uint8_t dep : {op.dep1, op.dep2}) {
        if (dep == 0 || dep > instructions_)
            continue;
        // recent_pos_ holds the completion of the previous op
        // (distance 1), so distance d lives d-1 slots behind it.
        const size_t idx =
            (recent_pos_ + kRecentWindow - (dep - 1)) &
            (kRecentWindow - 1);
        ready = std::max(ready, recent_[idx]);
    }
    return ready;
}

uint64_t
OooCore::takeDispatchSlot(uint64_t earliest)
{
    if (earliest > dispatch_cycle_) {
        dispatch_cycle_ = earliest;
        dispatched_this_cycle_ = 0;
    }
    if (dispatched_this_cycle_ >= config_.width) {
        ++dispatch_cycle_;
        dispatched_this_cycle_ = 0;
    }
    ++dispatched_this_cycle_;
    return dispatch_cycle_;
}

void
OooCore::step(const TraceOp &op)
{
    uint64_t earliest = fetch_ready_;

    // Instruction fetch: charged when the stream enters a new line.
    if (op.fetch_line != 0) {
        const uint64_t base = std::max(dispatch_cycle_, fetch_ready_);
        fetch_ready_ = memory_.ifetch(op.fetch_line, base);
        earliest = std::max(earliest, fetch_ready_);
    }

    // Window stall: the oldest entry must retire to free a slot.
    if (rob_count_ == config_.rob_size) {
        earliest = std::max(earliest, rob_[rob_head_]);
        // Branch-free-enough wrap; rob_size is not a compile-time
        // constant, so % here would be a hardware divide per step.
        if (++rob_head_ == config_.rob_size)
            rob_head_ = 0;
        --rob_count_;
    }

    const uint64_t dispatch = takeDispatchSlot(earliest);
    const uint64_t ready = std::max(dispatch, producerReady(op));

    uint64_t completion;
    switch (op.cls) {
      case OpClass::IntAlu:
        completion = ready + config_.int_latency;
        break;
      case OpClass::IntMul:
        completion = ready + config_.mul_latency;
        break;
      case OpClass::FpAlu:
        completion = ready + config_.fp_latency;
        break;
      case OpClass::Load:
        completion = memory_.dataAccess(op.addr, ready, false);
        ++loads_;
        if (config_.blocking_loads && completion > dispatch_cycle_) {
            // In-order core: nothing issues under the miss.
            dispatch_cycle_ = completion;
            dispatched_this_cycle_ = 0;
        }
        break;
      case OpClass::Store:
        // Stores retire through the store buffer without stalling
        // the window; the access still updates cache and memory
        // state (and may trigger a write-allocate fill).
        memory_.dataAccess(op.addr, ready, true);
        completion = ready + 1;
        ++stores_;
        break;
      case OpClass::Branch:
        completion = ready + config_.int_latency;
        ++branches_;
        if (op.mispredict) {
            fetch_ready_ =
                std::max(fetch_ready_,
                         completion + config_.redirect_penalty);
            ++mispredicts_;
        }
        break;
      default:
        panic("unhandled op class");
    }

    // In-order retirement: the ROB sees monotonic completion.
    retire_horizon_ = std::max(retire_horizon_, completion);
    size_t tail = rob_head_ + rob_count_;
    if (tail >= config_.rob_size)
        tail -= config_.rob_size;
    rob_[tail] = retire_horizon_;
    ++rob_count_;

    // Dataflow completion feeds dependents (not monotonicized).
    recent_pos_ = (recent_pos_ + 1) & (kRecentWindow - 1);
    recent_[recent_pos_] = completion;

    ++instructions_;
}

uint64_t
OooCore::cycles() const
{
    return std::max(dispatch_cycle_, retire_horizon_);
}

void
OooCore::reset()
{
    dispatch_cycle_ = 0;
    dispatched_this_cycle_ = 0;
    fetch_ready_ = 0;
    instructions_ = 0;
    retire_horizon_ = 0;
    rob_head_ = 0;
    rob_count_ = 0;
    std::fill(rob_.begin(), rob_.end(), 0);
    std::fill(recent_.begin(), recent_.end(), 0);
    recent_pos_ = 0;
    loads_.reset();
    stores_.reset();
    branches_.reset();
    mispredicts_.reset();
}

void
OooCore::regStats(util::StatGroup &group) const
{
    group.regCounter("loads", &loads_);
    group.regCounter("stores", &stores_);
    group.regCounter("branches", &branches_);
    group.regCounter("mispredicts", &mispredicts_);
}

} // namespace secproc::sim
