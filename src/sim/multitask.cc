/**
 * @file
 * Round-robin multi-programming implementation.
 */

#include "sim/multitask.hh"

#include "util/logging.hh"

namespace secproc::sim
{

MultiTaskSystem::MultiTaskSystem(const SystemConfig &system_config,
                                 std::vector<TaskSpec> tasks,
                                 const MultiTaskConfig &config)
    : config_(config), system_(system_config, std::move(tasks)),
      stats_(system_.taskCount())
{
    fatal_if(config_.quantum == 0, "quantum must be non-zero");
}

void
MultiTaskSystem::run(uint64_t total_instructions)
{
    uint64_t remaining = total_instructions;
    size_t task = system_.activeTask();
    while (remaining > 0) {
        const uint64_t slice = std::min(remaining, config_.quantum);
        const uint64_t before = system_.core().cycles();
        system_.run(slice);
        stats_[task].instructions += slice;
        stats_[task].active_cycles +=
            system_.core().cycles() - before;
        remaining -= slice;
        total_instructions_ += slice;
        if (remaining > 0) {
            task = (task + 1) % system_.taskCount();
            system_.switchToTask(task, config_.policy);
        }
    }
}

} // namespace secproc::sim
