/**
 * @file
 * Wakeup heap implementation.
 */

#include "sim/event_queue.hh"

#include <algorithm>

namespace secproc::sim
{

EventQueue::Token
EventQueue::schedule(uint64_t cycle, uint64_t tag)
{
    const Token token = next_token_++;
    if (cycle == kNeverCycle)
        return token; // never surfaces; not even worth heap space
    heap_.push_back(Entry{cycle, token, tag});
    std::push_heap(heap_.begin(), heap_.end());
    ++live_;
    return token;
}

bool
EventQueue::isCancelled(Token token) const
{
    return std::find(cancelled_.begin(), cancelled_.end(), token) !=
           cancelled_.end();
}

void
EventQueue::dropCancelled(Token token)
{
    cancelled_.erase(
        std::remove(cancelled_.begin(), cancelled_.end(), token),
        cancelled_.end());
}

bool
EventQueue::cancel(Token token)
{
    if (token >= next_token_ || isCancelled(token))
        return false;
    // Live iff it is still somewhere in the heap. kNeverCycle arms
    // were never stored, so they report not-live here.
    const bool armed =
        std::any_of(heap_.begin(), heap_.end(),
                    [token](const Entry &e) { return e.token == token; });
    if (!armed)
        return false;
    cancelled_.push_back(token);
    --live_;
    return true;
}

EventQueue::Token
EventQueue::rearm(Token token, uint64_t cycle, uint64_t tag)
{
    cancel(token);
    return schedule(cycle, tag);
}

void
EventQueue::purge()
{
    while (!heap_.empty() && isCancelled(heap_.front().token)) {
        dropCancelled(heap_.front().token);
        std::pop_heap(heap_.begin(), heap_.end());
        heap_.pop_back();
    }
}

uint64_t
EventQueue::nextCycle()
{
    purge();
    return heap_.empty() ? kNeverCycle : heap_.front().cycle;
}

std::optional<EventQueue::Wakeup>
EventQueue::popDue(uint64_t now)
{
    purge();
    if (heap_.empty() || heap_.front().cycle > now)
        return std::nullopt;
    const Entry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
    --live_;
    return Wakeup{top.cycle, top.tag, top.token};
}

void
EventQueue::clear()
{
    heap_.clear();
    cancelled_.clear();
    live_ = 0;
}

} // namespace secproc::sim
