/**
 * @file
 * Full-system wiring: core + L1I/L1D + unified L2 + memory channel +
 * protection engine + (optionally) functional byte movement.
 *
 * Reproduces the paper's simulated machine (Section 5): 4-issue
 * out-of-order core, 32KB split 4-way L1s, 256KB 4-way unified L2
 * with 128B lines, 100-cycle memory, 50-cycle crypto engine, with
 * the protection engine selecting baseline / XOM / OTP+SNC.
 */

#ifndef SECPROC_SIM_SYSTEM_HH
#define SECPROC_SIM_SYSTEM_HH

#include <utility>
#include <memory>
#include <optional>
#include <string>

#include "crypto/latency.hh"
#include "mem/cache.hh"
#include "mem/main_memory.hh"
#include "mem/memory_channel.hh"
#include "mem/on_chip_store.hh"
#include "mem/virtual_memory.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "secure/engines.hh"
#include "secure/protection_engine.hh"
#include "sim/agent.hh"
#include "sim/core.hh"
#include "sim/event_queue.hh"
#include "sim/workload.hh"

namespace secproc::sim
{

/**
 * Which cycle-plane scheduler run() uses when agents are attached.
 * Results are bit-identical; only wall-clock differs. Selected per
 * System from the SECPROC_KERNEL environment variable ("event" —
 * the default — or "legacy"), overridable via setKernelMode().
 */
enum class KernelMode
{
    /**
     * Event-driven: agents register conservative wakeups
     * (BackgroundAgent::nextEventCycle) in a deterministic min-heap
     * and the pump only runs at boundaries that reach the earliest
     * one — idle spans cost O(1).
     */
    Event,
    /** Pump every agent after every core step (pre-event kernel). */
    Legacy,
};

/** Kernel selected by SECPROC_KERNEL (unset means Event). */
KernelMode kernelModeFromEnvironment();

/** One task of a multi-programmed run. */
struct TaskSpec
{
    /** Instruction stream (not owned; must outlive the System). */
    Workload *workload = nullptr;

    /** XOM compartment the task's software was encrypted for. */
    secure::CompartmentId compartment = 1;
};

/**
 * How the SNC is protected across context switches (paper Section
 * 4.3 poses the question and leaves it open; the multitask bench
 * answers it).
 */
enum class SncSwitchPolicy
{
    /** Entries are compartment-tagged and survive switches. */
    Tag,
    /** The SNC is flushed (encrypted spill) on every switch. */
    Flush,
};

/** Complete machine description. */
struct SystemConfig
{
    CoreConfig core;
    mem::CacheConfig l1i;
    mem::CacheConfig l1d;
    mem::CacheConfig l2;
    mem::ChannelConfig channel;
    secure::ProtectionConfig protection;
    secure::CipherKind cipher = secure::CipherKind::Des;

    /** Outstanding L2 misses allowed (miss-level parallelism). */
    uint32_t mshrs = 8;

    /** Move and verify real bytes through real crypto. */
    bool functional = false;

    SystemConfig();
};

/** End-of-run summary. */
struct RunStats
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    uint64_t l2_misses = 0;
    uint64_t l2_accesses = 0;
    double ipc = 0.0;
    uint64_t data_bytes = 0;    ///< line traffic on the bus
    uint64_t seqnum_bytes = 0;  ///< SNC-induced traffic
    uint64_t fast_fills = 0;
    uint64_t slow_fills = 0;
    uint64_t snc_query_misses = 0;
};

/**
 * One simulated machine instance running one workload.
 */
class System : public MemorySystem
{
  public:
    /**
     * @param config Machine description.
     * @param workload Instruction stream source (not owned).
     */
    System(const SystemConfig &config, Workload &workload);

    /**
     * Multi-programmed machine: every task's image is loaded (and
     * its regions pre-initialized) up front; task 0 starts active.
     * Tasks must use disjoint va_offset ranges.
     */
    System(const SystemConfig &config, std::vector<TaskSpec> tasks);

    /** Run @p instructions more instructions of the active task. */
    void run(uint64_t instructions);

    /**
     * Attach a background agent (not owned; must outlive the runs it
     * is attached for). The agent is advanced after every core step,
     * so its channel transactions and crypto-engine reservations
     * contend with the foreground workload deterministically.
     */
    void attachAgent(BackgroundAgent *agent);

    /** Detach a previously attached agent (no-op if absent). */
    void detachAgent(BackgroundAgent *agent);

    /** Scheduler run() drives attached agents with. */
    KernelMode kernelMode() const { return kernel_; }

    /** Override the environment-selected kernel (tests, tools). */
    void setKernelMode(KernelMode mode) { kernel_ = mode; }

    /**
     * Wakeups currently armed in the event kernel's heap (armed by
     * the most recent run(); reset() drains them).
     */
    size_t pendingWakeups() const { return wakeups_.armed(); }

    /**
     * Machine reset (power cycle mid-run): quiesce the shared timing
     * resources and every attached agent's in-flight work — the
     * memory channel (write buffer, arbiter queues, counters), the
     * shared crypto engine's occupancy, the MSHR ledger, and each
     * BackgroundAgent (a half-finished install is abandoned; its
     * functional side effects, like a partially written staging
     * slot, stay in memory exactly as a real power cut would leave
     * them). Security state and cache contents are untouched.
     */
    void reset();

    /**
     * Context-switch to task @p idx (paper Section 4.3): selects its
     * compartment and applies the SNC protection policy. Counts a
     * switch even when idx is the active task.
     */
    void switchToTask(size_t idx, SncSwitchPolicy policy);

    /** Tasks on this machine. */
    size_t taskCount() const { return tasks_.size(); }

    /** Index of the task currently executing. */
    size_t activeTask() const { return active_task_; }

    /** Context switches performed so far. */
    uint64_t contextSwitches() const { return context_switches_; }

    /** SNC entries spilled by Flush-policy switches so far. */
    uint64_t switchFlushSpills() const { return switch_spills_; }

    /**
     * Mark stats measured from this point (call after warm-up).
     * Cycle and instruction counts in stats() become deltas.
     */
    void beginMeasurement();

    /** Summary over the measurement window. */
    RunStats stats() const;

    // MemorySystem interface (called by the core).
    uint64_t dataAccess(uint64_t vaddr, uint64_t cycle,
                        bool store) override;
    uint64_t ifetch(uint64_t line_va, uint64_t cycle) override;

    /** Component access for tests and reports. @{ */
    const mem::Cache &l2() const { return l2_; }
    const mem::MemoryChannel &channel() const { return channel_; }
    mem::MemoryChannel &channel() { return channel_; }
    crypto::CryptoEngineModel &cryptoEngine() { return crypto_engine_; }
    const crypto::CryptoEngineModel &cryptoEngine() const
    {
        return crypto_engine_;
    }
    secure::ProtectionEngine &engine() { return *engine_; }
    const secure::ProtectionEngine &engine() const { return *engine_; }
    OooCore &core() { return core_; }
    mem::MainMemory &mainMemory() { return memory_; }
    mem::VirtualMemory &virtualMemory() { return vm_; }
    /** @} */

    /**
     * Register every machine metric with @p reg under its canonical
     * hierarchical name: the cache/core/engine StatGroups bridged
     * verbatim, plus channel traffic (total, per category, per
     * agent), arbiter grants and stalls, crypto-engine occupancy and
     * measurement anchors ("core.cycles", "l2.accesses", ...). The
     * registry binds live sources, so one registration serves any
     * number of later snapshots. Agents registered with the channel
     * *after* this call are absent — build a fresh registry (as
     * dumpStats does) to pick them up.
     */
    void registerMetrics(obs::MetricsRegistry &reg) const;

    /** The system-lifetime registry backing stats(). */
    const obs::MetricsRegistry &metrics() const { return metrics_; }

    /**
     * Attach @p sink (nullptr detaches) to every traced component:
     * the memory channel's arbiter, the shared crypto engine's
     * reservations, and every attached agent (agents attached later
     * inherit the sink). The System's own "system" track carries
     * context-switch and machine-reset instants. Tracing only
     * records what already happened — timing is bit-identical with
     * or without a sink.
     */
    void setTraceSink(obs::TraceSink *sink);

    /** Dump all component statistics (a fresh-registry snapshot). */
    void dumpStats(std::ostream &os) const;

  private:
    SystemConfig config_;
    std::vector<TaskSpec> tasks_;
    size_t active_task_ = 0;
    uint64_t context_switches_ = 0;
    uint64_t switch_spills_ = 0;

    mem::VirtualMemory vm_;
    secure::KeyTable keys_;
    mem::MemoryChannel channel_;
    /** The machine's one crypto engine, shared by every agent. */
    crypto::CryptoEngineModel crypto_engine_;
    std::unique_ptr<secure::ProtectionEngine> engine_;
    /** Attached background agents (not owned). */
    std::vector<BackgroundAgent *> agents_;
    /** Scheduler for run()'s agent pump. */
    KernelMode kernel_ = KernelMode::Event;
    /** Event kernel: pending agent wakeups (tag = attach index). */
    EventQueue wakeups_;
    mem::Cache l1i_;
    mem::Cache l1d_;
    mem::Cache l2_;
    mem::MainMemory memory_;
    mem::OnChipStore onchip_;
    OooCore core_;

    mem::Asid asid_ = 1;

    /**
     * Outstanding L2 misses: (line, completion cycle), kept sorted
     * by line address. The ledger is bounded by the MSHR count, so a
     * flat sorted vector beats a node-based map on the L2 hit path
     * (probed on every hit for in-flight secondaries) while keeping
     * the same key-ordered iteration a std::map gave: the capacity
     * loop's earliest-completion scan still breaks completion-cycle
     * ties toward the lowest line address.
     */
    std::vector<std::pair<uint64_t, uint64_t>> outstanding_;

    /** Functional-store content counter (see functionalStore). */
    uint64_t store_salt_ = 0;

    /**
     * One line-sized scratch buffer reused by every functional fill
     * and evict, so the per-miss byte movement never allocates.
     */
    std::vector<uint8_t> line_scratch_;

    /** System-lifetime metrics (bound once, in the constructor). */
    obs::MetricsRegistry metrics_;
    /** Snapshot taken by beginMeasurement(); empty before it. */
    obs::MetricsSnapshot measure_base_;

    obs::TraceSink *trace_ = nullptr;
    obs::TrackId trace_track_ = 0;

    /** The active task's workload. */
    Workload &workload() const;

    /**
     * Re-arm every agent's wakeup at the current core clock and
     * return the earliest one (kNeverCycle when all agents are
     * done).
     */
    uint64_t armWakeups();

    uint64_t lineAlign(uint64_t addr) const;
    uint64_t accessL2(uint64_t vaddr, uint64_t cycle, bool ifetch,
                      bool store);
    uint64_t handleL2Miss(uint64_t line_va, uint64_t cycle, bool ifetch,
                          bool store);
    void handleL2Victim(const mem::Victim &victim, uint64_t cycle);
    void installKeys();
    void registerPlaintextRegions();
    void preinitializeRegions();

    // Functional plane helpers.
    void functionalFill(const secure::FillPlan &plan);
    void functionalEvict(uint64_t line_va, mem::RegionKind kind);
    void functionalStore(uint64_t vaddr);
};

/** The paper's Section 5 baseline machine for a given model. */
SystemConfig paperConfig(secure::SecurityModel model);

} // namespace secproc::sim

#endif // SECPROC_SIM_SYSTEM_HH
