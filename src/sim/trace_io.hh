/**
 * @file
 * Trace recording and replay.
 *
 * The paper drives SimpleScalar with SPEC2000 binaries; secproc
 * drives its timing model with synthetic generators. This module
 * closes the loop for users who want *fixed* inputs: a generated (or
 * externally converted) instruction stream can be serialized to a
 * compact binary file and replayed bit-exactly, producing the same
 * cycle counts as the live generator. The file embeds the workload
 * profile (region layout, footprints) so a replaying System can
 * pre-initialize encryption state exactly as it does for a
 * generator.
 *
 * Format (little-endian):
 *   magic "SPTR", u32 version,
 *   profile block (scalars + regions),
 *   live-lines block (per region, for SNC priming),
 *   u64 op count, then per op:
 *     u8  [2:0] OpClass, [3] mispredict, [4] has addr,
 *         [5] has fetch_line, [6] has dep1, [7] has dep2
 *     varint zigzag delta addr      (if has addr)
 *     varint zigzag delta fetch     (if has fetch_line)
 *     u8 dep1 / u8 dep2             (if present)
 * Deltas are against the previous op's value of the same field,
 * which makes streaming accesses cost one or two bytes each.
 */

#ifndef SECPROC_SIM_TRACE_IO_HH
#define SECPROC_SIM_TRACE_IO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/workload.hh"

namespace secproc::sim
{

/** In-memory image of a recorded trace. */
struct TraceImage
{
    WorkloadProfile profile;
    /** Per-region live-line lists (Workload::liveLines). */
    std::vector<std::vector<uint64_t>> live_lines;
    std::vector<TraceOp> ops;
};

/**
 * Record @p count ops from @p workload into @p path.
 * fatal() on I/O errors. The workload is advanced (not reset).
 */
void recordTrace(const std::string &path, Workload &workload,
                 uint64_t count);

/** Serialize an in-memory image (testing and converters). */
void writeTrace(const std::string &path, const TraceImage &image);

/** Load a trace file; fatal() on malformed input. */
TraceImage readTrace(const std::string &path);

/**
 * A Workload replaying a recorded trace. Replays loop: when the
 * recorded ops are exhausted the stream restarts from op 0 (the
 * wrap count is exposed for callers that care).
 */
class TraceWorkload : public Workload
{
  public:
    /** Load from @p path. */
    explicit TraceWorkload(const std::string &path);

    /** Adopt an in-memory image. */
    explicit TraceWorkload(TraceImage image);

    const TraceOp &next() override;
    const WorkloadProfile &profile() const override
    {
        return image_.profile;
    }
    void reset() override;
    std::vector<uint64_t> liveLines(size_t region_idx) const override;

    /** Recorded ops in the file. */
    uint64_t length() const { return image_.ops.size(); }

    /** Times the replay wrapped back to op 0. */
    uint64_t wraps() const { return wraps_; }

  private:
    TraceImage image_;
    size_t position_ = 0;
    uint64_t wraps_ = 0;
};

} // namespace secproc::sim

#endif // SECPROC_SIM_TRACE_IO_HH
