/**
 * @file
 * Synthetic workload generation.
 *
 * The paper evaluates 11 SPEC CPU2000 benchmarks. SPEC binaries and
 * reference inputs cannot ship with this repository, so each
 * benchmark is replaced by a deterministic synthetic generator whose
 * memory behaviour is calibrated to reproduce the figures' shapes:
 * baseline L2 miss pressure (XOM slowdown, Fig. 3), encrypted
 * working-set footprint versus SNC coverage (Figs. 5-6), SNC set
 * conflicts (Fig. 7, ammp), working-set drift (gcc's no-replacement
 * pathology, Fig. 5) and write-once streams (seqnum spill traffic,
 * Fig. 9). See DESIGN.md section 6.
 */

#ifndef SECPROC_SIM_WORKLOAD_HH
#define SECPROC_SIM_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/trace.hh"
#include "util/random.hh"

namespace secproc::sim
{

/** Access pattern of one data region. */
enum class RegionBehavior
{
    /** Small, heavily reused set (mostly cache resident). */
    Hot,
    /** Cyclic sequential sweep over the footprint. */
    Stream,
    /**
     * Zipf-skewed line popularity. Popularity ranks are mapped to
     * lines through a random permutation (popular lines scattered in
     * the address space, as in real heaps), optionally restricted to
     * a window that drifts through the footprint (LRU-friendly
     * temporal locality and working-set migration).
     */
    Zipf,
    /** Zipf reuse with dependent loads: each access serializes on
     *  the previous one (pointer chasing, mcf). */
    Chase,
    /**
     * Accesses cycling over lines spaced a fixed stride apart so
     * that many hot lines map to a single SNC set (the ammp 32-way
     * pathology of Figure 7).
     */
    ConflictStream,
    /** Monotonically advancing writes, revisited only briefly
     *  (gzip/mesa output buffers: seqnum churn without reuse). */
    WriteOnce,
};

/** One data region of a workload profile. */
struct DataRegion
{
    RegionBehavior behavior = RegionBehavior::Hot;
    uint64_t footprint = 64 * 1024; ///< bytes
    double weight = 1.0;            ///< share of data accesses
    double store_frac = 0.3;        ///< stores among its accesses
    double zipf_s = 0.9;            ///< skew for Zipf/Chase
    uint64_t stride = 8;            ///< bytes per Stream step
    /**
     * Consecutive memory accesses issued to this region once it is
     * selected (models array-processing inner loops; bursts create
     * overlapping misses).
     */
    uint32_t burst_length = 1;

    /**
     * Zipf/Chase: restrict reuse to a window of this many lines
     * (0 = the whole footprint).
     */
    uint64_t window_lines = 0;
    /** Window drift: advance every this many region accesses
     *  (0 = static window). */
    uint64_t drift_interval = 0;
    /** Lines the window advances per drift step (wraps). */
    uint64_t drift_step_lines = 0;

    uint64_t conflict_stride = 0; ///< bytes between conflict lines
    uint64_t conflict_lines = 64; ///< lines in the conflict ring
    /** WriteOnce: stores to a line before moving to the next. */
    uint32_t writes_per_line = 2;

    bool plaintext = false; ///< program input (no crypto)
    /**
     * Pretend the program wrote the region before the measurement
     * window: lines start OTP/Direct-encrypted with warm SNC state
     * rather than Unwritten.
     */
    bool preinitialized = true;

    /** Resolved at layout time. */
    uint64_t base = 0;
};

/** Full description of one synthetic benchmark. */
struct WorkloadProfile
{
    std::string name = "workload";
    double mem_frac = 0.35;    ///< loads+stores among all ops
    double branch_frac = 0.12;
    double mispredict_rate = 0.04;
    double mul_frac = 0.04;
    double fp_frac = 0.08;
    uint64_t code_footprint = 16 * 1024;
    double jump_frac = 0.25;   ///< taken branches that leave the line
    double dep_p = 0.35;       ///< geometric parameter for distances
    std::vector<DataRegion> regions;
    uint64_t rng_seed = 1;

    /**
     * Base offset added to the text segment and every region
     * (multi-tasking: each task gets a disjoint virtual address
     * range, modelling XOM's compartment-tagged caches — a line of
     * one compartment can never hit on another's).
     */
    uint64_t va_offset = 0;
};

/**
 * Instruction-stream source consumed by the System: either generated
 * on the fly (SyntheticWorkload) or replayed from a recorded trace
 * file (TraceWorkload in trace_io.hh).
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Produce the next instruction in program order. */
    virtual const TraceOp &next() = 0;

    /** The profile with resolved region bases. */
    virtual const WorkloadProfile &profile() const = 0;

    /** Restart the stream from the beginning. */
    virtual void reset() = 0;

    /**
     * The region's steady-state live set in access-recency order
     * (least recently used first). Used by the system to prime
     * protection-engine state as a long-running program would have
     * left it — the paper measures after a 10-billion-instruction
     * fast-forward. Empty for WriteOnce regions.
     */
    virtual std::vector<uint64_t> liveLines(size_t region_idx) const = 0;

    /** Text segment base address (before any va_offset). */
    static constexpr uint64_t kTextBase = 0x0040'0000;

    /** This workload's text base (kTextBase + profile va_offset). */
    uint64_t textBase() const
    {
        return kTextBase + profile().va_offset;
    }
};

/**
 * Deterministic generator implementing a WorkloadProfile.
 */
class SyntheticWorkload : public Workload
{
  public:
    /**
     * @param profile Behaviour description; region base addresses
     *        are resolved here.
     * @param line_size L2 line size (address alignment granularity).
     */
    explicit SyntheticWorkload(WorkloadProfile profile,
                               uint32_t line_size = 128);

    /** Generate the next instruction in program order. */
    const TraceOp &next() override;

    /** The profile with resolved region bases. */
    const WorkloadProfile &profile() const override { return profile_; }

    /** Restart the stream from the beginning (same seed). */
    void reset() override;

    /** Ops generated since construction/reset. */
    uint64_t generated() const { return generated_; }

    /** @copydoc Workload::liveLines */
    std::vector<uint64_t> liveLines(size_t region_idx) const override;

  private:
    /** Mutable per-region generator state. */
    struct RegionState
    {
        uint64_t cursor = 0;        ///< stream/write-once position
        uint64_t window_base = 0;   ///< drifting window origin
        uint64_t accesses = 0;      ///< accesses to this region
        uint64_t last_chase_op = 0; ///< for dependence serialization
        std::vector<uint32_t> perm; ///< rank -> line permutation
    };

    WorkloadProfile profile_;
    uint32_t line_size_;
    util::Rng rng_;
    TraceOp op_;
    uint64_t generated_ = 0;

    // Fetch state (pc_ is (re)set from textBase() in the
    // constructor's reset() path).
    uint64_t pc_ = kTextBase;
    uint64_t last_fetch_line_ = 0;

    std::vector<RegionState> states_;
    std::vector<double> weight_cdf_;

    // Active burst: remaining accesses pinned to one region.
    size_t burst_region_ = 0;
    uint32_t burst_remaining_ = 0;

    /** 256-entry pre-sampled geometric distances (speed). */
    std::vector<uint8_t> dep_table_;

    void layoutRegions();
    void buildDepTable();
    size_t pickRegion();
    uint64_t regionAddress(size_t region_idx, bool *serialize_dep,
                           bool *is_store);
    uint8_t fastDep();
};

} // namespace secproc::sim

#endif // SECPROC_SIM_WORKLOAD_HH
