/**
 * @file
 * Trace file serialization implementation.
 */

#include "sim/trace_io.hh"

#include <cstdio>
#include <cstring>
#include <memory>

#include "util/logging.hh"

namespace secproc::sim
{

namespace
{

constexpr char kMagic[4] = {'S', 'P', 'T', 'R'};
constexpr uint32_t kVersion = 1;

/** Growable byte sink / cursor-based source. */
class Writer
{
  public:
    void
    u8(uint8_t v)
    {
        bytes_.push_back(v);
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            u8(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            u8(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    f64(double v)
    {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    varint(uint64_t v)
    {
        while (v >= 0x80) {
            u8(static_cast<uint8_t>(v) | 0x80);
            v >>= 7;
        }
        u8(static_cast<uint8_t>(v));
    }

    void
    zigzag(int64_t v)
    {
        varint((static_cast<uint64_t>(v) << 1) ^
               static_cast<uint64_t>(v >> 63));
    }

    void
    str(const std::string &s)
    {
        varint(s.size());
        bytes_.insert(bytes_.end(), s.begin(), s.end());
    }

    const std::vector<uint8_t> &bytes() const { return bytes_; }

  private:
    std::vector<uint8_t> bytes_;
};

class Reader
{
  public:
    explicit Reader(std::vector<uint8_t> bytes)
        : bytes_(std::move(bytes))
    {}

    uint8_t
    u8()
    {
        fatal_if(pos_ >= bytes_.size(), "trace file truncated");
        return bytes_[pos_++];
    }

    uint32_t
    u32()
    {
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= uint32_t{u8()} << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= uint64_t{u8()} << (8 * i);
        return v;
    }

    double
    f64()
    {
        const uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    uint64_t
    varint()
    {
        uint64_t v = 0;
        unsigned shift = 0;
        while (true) {
            fatal_if(shift > 63, "trace varint overflows 64 bits");
            const uint8_t byte = u8();
            v |= (uint64_t{byte} & 0x7F) << shift;
            if ((byte & 0x80) == 0)
                return v;
            shift += 7;
        }
    }

    int64_t
    zigzag()
    {
        const uint64_t raw = varint();
        return static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
    }

    std::string
    str()
    {
        const uint64_t len = varint();
        fatal_if(pos_ + len > bytes_.size(), "trace string truncated");
        std::string s(bytes_.begin() + static_cast<ptrdiff_t>(pos_),
                      bytes_.begin() + static_cast<ptrdiff_t>(pos_ + len));
        pos_ += len;
        return s;
    }

    bool done() const { return pos_ == bytes_.size(); }

  private:
    std::vector<uint8_t> bytes_;
    size_t pos_ = 0;
};

void
putRegion(Writer &w, const DataRegion &region)
{
    w.u8(static_cast<uint8_t>(region.behavior));
    w.u64(region.footprint);
    w.f64(region.weight);
    w.f64(region.store_frac);
    w.f64(region.zipf_s);
    w.u64(region.stride);
    w.u32(region.burst_length);
    w.u64(region.window_lines);
    w.u64(region.drift_interval);
    w.u64(region.drift_step_lines);
    w.u64(region.conflict_stride);
    w.u64(region.conflict_lines);
    w.u32(region.writes_per_line);
    w.u8(region.plaintext ? 1 : 0);
    w.u8(region.preinitialized ? 1 : 0);
    w.u64(region.base);
}

DataRegion
getRegion(Reader &r)
{
    DataRegion region;
    region.behavior = static_cast<RegionBehavior>(r.u8());
    region.footprint = r.u64();
    region.weight = r.f64();
    region.store_frac = r.f64();
    region.zipf_s = r.f64();
    region.stride = r.u64();
    region.burst_length = r.u32();
    region.window_lines = r.u64();
    region.drift_interval = r.u64();
    region.drift_step_lines = r.u64();
    region.conflict_stride = r.u64();
    region.conflict_lines = r.u64();
    region.writes_per_line = r.u32();
    region.plaintext = r.u8() != 0;
    region.preinitialized = r.u8() != 0;
    region.base = r.u64();
    return region;
}

void
putProfile(Writer &w, const WorkloadProfile &profile)
{
    w.str(profile.name);
    w.f64(profile.mem_frac);
    w.f64(profile.branch_frac);
    w.f64(profile.mispredict_rate);
    w.f64(profile.mul_frac);
    w.f64(profile.fp_frac);
    w.u64(profile.code_footprint);
    w.f64(profile.jump_frac);
    w.f64(profile.dep_p);
    w.u64(profile.rng_seed);
    w.u64(profile.va_offset);
    w.varint(profile.regions.size());
    for (const DataRegion &region : profile.regions)
        putRegion(w, region);
}

WorkloadProfile
getProfile(Reader &r)
{
    WorkloadProfile profile;
    profile.name = r.str();
    profile.mem_frac = r.f64();
    profile.branch_frac = r.f64();
    profile.mispredict_rate = r.f64();
    profile.mul_frac = r.f64();
    profile.fp_frac = r.f64();
    profile.code_footprint = r.u64();
    profile.jump_frac = r.f64();
    profile.dep_p = r.f64();
    profile.rng_seed = r.u64();
    profile.va_offset = r.u64();
    const uint64_t regions = r.varint();
    fatal_if(regions > 1024, "implausible region count in trace");
    for (uint64_t i = 0; i < regions; ++i)
        profile.regions.push_back(getRegion(r));
    return profile;
}

} // namespace

void
writeTrace(const std::string &path, const TraceImage &image)
{
    Writer w;
    for (const char c : kMagic)
        w.u8(static_cast<uint8_t>(c));
    w.u32(kVersion);
    putProfile(w, image.profile);

    w.varint(image.live_lines.size());
    for (const auto &lines : image.live_lines) {
        w.varint(lines.size());
        uint64_t prev = 0;
        for (const uint64_t line : lines) {
            w.zigzag(static_cast<int64_t>(line - prev));
            prev = line;
        }
    }

    w.u64(image.ops.size());
    uint64_t prev_addr = 0;
    uint64_t prev_fetch = 0;
    for (const TraceOp &op : image.ops) {
        const bool has_addr = op.addr != 0;
        const bool has_fetch = op.fetch_line != 0;
        const bool has_dep1 = op.dep1 != 0;
        const bool has_dep2 = op.dep2 != 0;
        uint8_t header = static_cast<uint8_t>(op.cls) & 0x07;
        header |= op.mispredict ? 0x08 : 0;
        header |= has_addr ? 0x10 : 0;
        header |= has_fetch ? 0x20 : 0;
        header |= has_dep1 ? 0x40 : 0;
        header |= has_dep2 ? 0x80 : 0;
        w.u8(header);
        if (has_addr) {
            w.zigzag(static_cast<int64_t>(op.addr - prev_addr));
            prev_addr = op.addr;
        }
        if (has_fetch) {
            w.zigzag(static_cast<int64_t>(op.fetch_line - prev_fetch));
            prev_fetch = op.fetch_line;
        }
        if (has_dep1)
            w.u8(op.dep1);
        if (has_dep2)
            w.u8(op.dep2);
    }

    FILE *file = std::fopen(path.c_str(), "wb");
    fatal_if(file == nullptr, "cannot open trace file ", path,
             " for writing");
    const size_t written = std::fwrite(w.bytes().data(), 1,
                                       w.bytes().size(), file);
    std::fclose(file);
    fatal_if(written != w.bytes().size(), "short write to ", path);
}

void
recordTrace(const std::string &path, Workload &workload, uint64_t count)
{
    TraceImage image;
    image.profile = workload.profile();
    for (size_t i = 0; i < image.profile.regions.size(); ++i)
        image.live_lines.push_back(workload.liveLines(i));
    image.ops.reserve(count);
    for (uint64_t i = 0; i < count; ++i)
        image.ops.push_back(workload.next());
    writeTrace(path, image);
}

TraceImage
readTrace(const std::string &path)
{
    FILE *file = std::fopen(path.c_str(), "rb");
    fatal_if(file == nullptr, "cannot open trace file ", path);
    std::fseek(file, 0, SEEK_END);
    const long size = std::ftell(file);
    std::fseek(file, 0, SEEK_SET);
    std::vector<uint8_t> bytes(static_cast<size_t>(size));
    const size_t read = std::fread(bytes.data(), 1, bytes.size(), file);
    std::fclose(file);
    fatal_if(read != bytes.size(), "short read from ", path);

    Reader r(std::move(bytes));
    for (const char c : kMagic) {
        fatal_if(r.u8() != static_cast<uint8_t>(c),
                 "not a secproc trace file: ", path);
    }
    fatal_if(r.u32() != kVersion, "unsupported trace version in ",
             path);

    TraceImage image;
    image.profile = getProfile(r);

    const uint64_t region_lists = r.varint();
    fatal_if(region_lists != image.profile.regions.size(),
             "trace live-line lists do not match regions");
    for (uint64_t i = 0; i < region_lists; ++i) {
        const uint64_t count = r.varint();
        std::vector<uint64_t> lines;
        lines.reserve(count);
        uint64_t prev = 0;
        for (uint64_t j = 0; j < count; ++j) {
            prev += static_cast<uint64_t>(r.zigzag());
            lines.push_back(prev);
        }
        image.live_lines.push_back(std::move(lines));
    }

    const uint64_t ops = r.u64();
    image.ops.reserve(ops);
    uint64_t prev_addr = 0;
    uint64_t prev_fetch = 0;
    for (uint64_t i = 0; i < ops; ++i) {
        const uint8_t header = r.u8();
        TraceOp op;
        op.cls = static_cast<OpClass>(header & 0x07);
        fatal_if(static_cast<uint8_t>(op.cls) >
                     static_cast<uint8_t>(OpClass::Branch),
                 "corrupt op class in trace");
        op.mispredict = (header & 0x08) != 0;
        if ((header & 0x10) != 0) {
            prev_addr += static_cast<uint64_t>(r.zigzag());
            op.addr = prev_addr;
        }
        if ((header & 0x20) != 0) {
            prev_fetch += static_cast<uint64_t>(r.zigzag());
            op.fetch_line = prev_fetch;
        }
        if ((header & 0x40) != 0)
            op.dep1 = r.u8();
        if ((header & 0x80) != 0)
            op.dep2 = r.u8();
        image.ops.push_back(op);
    }
    fatal_if(!r.done(), "trailing bytes in trace file ", path);
    return image;
}

TraceWorkload::TraceWorkload(const std::string &path)
    : image_(readTrace(path))
{
    fatal_if(image_.ops.empty(), "trace has no ops");
}

TraceWorkload::TraceWorkload(TraceImage image)
    : image_(std::move(image))
{
    fatal_if(image_.ops.empty(), "trace has no ops");
}

const TraceOp &
TraceWorkload::next()
{
    const TraceOp &op = image_.ops[position_];
    if (++position_ == image_.ops.size()) {
        position_ = 0;
        ++wraps_;
    }
    return op;
}

void
TraceWorkload::reset()
{
    position_ = 0;
    wraps_ = 0;
}

std::vector<uint64_t>
TraceWorkload::liveLines(size_t region_idx) const
{
    fatal_if(region_idx >= image_.live_lines.size(),
             "no live-line list for region ", region_idx);
    return image_.live_lines[region_idx];
}

} // namespace secproc::sim
