/**
 * @file
 * Multi-programmed execution: a round-robin scheduler over several
 * compartment-isolated tasks on one secure processor.
 *
 * The paper's Section 4.3 identifies context switching as the open
 * problem of the SNC design: the new task must not read the previous
 * task's sequence numbers, so the SNC is either flushed (encrypt and
 * spill every entry to the in-memory table) or its entries are tagged
 * with compartment IDs (extra tag bits, entries survive). This module
 * runs real multi-programmed mixes under both policies so the
 * trade-off can be measured rather than argued.
 *
 * Task isolation model: each task's virtual address range is offset
 * to be disjoint (WorkloadProfile::va_offset), which is exactly how
 * XOM's compartment-tagged caches behave — a cached line of one
 * compartment can never hit for another.
 */

#ifndef SECPROC_SIM_MULTITASK_HH
#define SECPROC_SIM_MULTITASK_HH

#include <cstdint>
#include <vector>

#include "sim/system.hh"

namespace secproc::sim
{

/** Scheduler parameters. */
struct MultiTaskConfig
{
    /** Instructions per scheduling quantum. */
    uint64_t quantum = 250'000;

    /** SNC protection across switches. */
    SncSwitchPolicy policy = SncSwitchPolicy::Tag;
};

/** Per-task accounting. */
struct TaskStats
{
    uint64_t instructions = 0;
    /** Cycles the machine spent while this task was active. */
    uint64_t active_cycles = 0;
};

/**
 * Round-robin multi-programming on one System.
 */
class MultiTaskSystem
{
  public:
    /**
     * @param system_config Machine description (shared by all tasks).
     * @param tasks Task set; each workload must carry a disjoint
     *        va_offset.
     * @param config Scheduler parameters.
     */
    MultiTaskSystem(const SystemConfig &system_config,
                    std::vector<TaskSpec> tasks,
                    const MultiTaskConfig &config);

    /**
     * Execute @p total_instructions across all tasks, switching
     * round-robin every quantum.
     */
    void run(uint64_t total_instructions);

    /** The underlying machine. */
    System &system() { return system_; }
    const System &system() const { return system_; }

    /** Per-task accounting, indexed like the task set. */
    const std::vector<TaskStats> &taskStats() const { return stats_; }

    /** Scheduler parameters. */
    const MultiTaskConfig &config() const { return config_; }

    /** Instructions executed so far across all tasks. */
    uint64_t totalInstructions() const { return total_instructions_; }

  private:
    MultiTaskConfig config_;
    System system_;
    std::vector<TaskStats> stats_;
    uint64_t total_instructions_ = 0;
};

} // namespace secproc::sim

#endif // SECPROC_SIM_MULTITASK_HH
