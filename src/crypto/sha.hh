/**
 * @file
 * SHA-1 and SHA-256 (FIPS 180-4) from scratch.
 *
 * The paper delegates memory integrity verification to hash/MAC
 * machinery (Gassend et al., HPCA 2003); secproc implements that
 * substrate so the IntegrityEngine extension and the attack detectors
 * are functional end to end.
 */

#ifndef SECPROC_CRYPTO_SHA_HH
#define SECPROC_CRYPTO_SHA_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/serialize.hh"

namespace secproc::crypto
{

/** Incremental SHA-1; 20-byte digest. */
class Sha1
{
  public:
    static constexpr size_t kDigestSize = 20;

    Sha1();

    /** Absorb @p len bytes. */
    void update(const uint8_t *data, size_t len);

    /** Finalize and write the digest; the object is then reusable. */
    void final(uint8_t digest[kDigestSize]);

    /** One-shot convenience. */
    static std::array<uint8_t, kDigestSize> digest(const uint8_t *data,
                                                   size_t len);

  private:
    uint32_t h_[5];
    uint64_t total_bits_;
    uint8_t buffer_[64];
    size_t buffered_;

    void reset();
    void processBlock(const uint8_t block[64]);
};

/** Incremental SHA-256; 32-byte digest. */
class Sha256
{
  public:
    static constexpr size_t kDigestSize = 32;

    Sha256();

    /** Absorb @p len bytes. */
    void update(const uint8_t *data, size_t len);

    /** Finalize and write the digest; the object is then reusable. */
    void final(uint8_t digest[kDigestSize]);

    /** One-shot convenience. */
    static std::array<uint8_t, kDigestSize> digest(const uint8_t *data,
                                                   size_t len);

  private:
    uint32_t h_[8];
    uint64_t total_bits_;
    uint8_t buffer_[64];
    size_t buffered_;

    void reset();
};

/**
 * ByteSink that digests what is written to it: serializers stream
 * straight into SHA-256, so hashing a serialized artifact does not
 * materialize the bytes.
 */
class Sha256Sink final : public util::ByteSink
{
  public:
    void
    write(const uint8_t *data, size_t len) override
    {
        hasher_.update(data, len);
    }

    /** Finalize; the sink is then reusable from a fresh state. */
    std::array<uint8_t, Sha256::kDigestSize>
    digest()
    {
        std::array<uint8_t, Sha256::kDigestSize> out;
        hasher_.final(out.data());
        return out;
    }

  private:
    Sha256 hasher_;
};

/**
 * True when SHA-256 compression runs on the CPU's SHA extensions
 * (x86 SHA-NI) rather than the portable implementation. Set
 * `SECPROC_SHA256=scalar` in the environment to force the portable
 * path; both produce identical digests (pinned by a differential
 * test).
 */
bool sha256HardwareAvailable();

namespace detail
{

/** Compress @p blocks 64-byte blocks into @p state — portable. */
void sha256CompressScalar(uint32_t state[8], const uint8_t *data,
                          size_t blocks);

/**
 * Compress via x86 SHA-NI. Only callable when sha256CpuHasShaNi()
 * returns true; exposed so tests can differential-check it against
 * the scalar path.
 */
void sha256CompressHw(uint32_t state[8], const uint8_t *data,
                      size_t blocks);

/** CPUID probe for the x86 SHA extensions (false off-x86). */
bool sha256CpuHasShaNi();

} // namespace detail

/**
 * HMAC-SHA256 (RFC 2104).
 *
 * @param key Key bytes (any length; hashed down if > 64).
 * @param key_len Key length.
 * @param data Message bytes.
 * @param data_len Message length.
 * @return 32-byte MAC.
 */
std::array<uint8_t, Sha256::kDigestSize>
hmacSha256(const uint8_t *key, size_t key_len, const uint8_t *data,
           size_t data_len);

} // namespace secproc::crypto

#endif // SECPROC_CRYPTO_SHA_HH
