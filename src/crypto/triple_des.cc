/**
 * @file
 * Triple-DES implementation.
 */

#include "crypto/triple_des.hh"

#include "util/logging.hh"

namespace secproc::crypto
{

void
TripleDes::setKey(const uint8_t *key, size_t len)
{
    fatal_if(len != 24, "3DES key must be 24 bytes, got ", len);
    k1_.setKey(key, 8);
    k2_.setKey(key + 8, 8);
    k3_.setKey(key + 16, 8);
}

void
TripleDes::encryptBlock(const uint8_t *in, uint8_t *out) const
{
    uint8_t tmp[8];
    k1_.encryptBlock(in, tmp);
    k2_.decryptBlock(tmp, tmp);
    k3_.encryptBlock(tmp, out);
}

void
TripleDes::decryptBlock(const uint8_t *in, uint8_t *out) const
{
    uint8_t tmp[8];
    k3_.decryptBlock(in, tmp);
    k2_.encryptBlock(tmp, tmp);
    k1_.decryptBlock(tmp, out);
}

void
TripleDes::encryptBlocks(const uint8_t *in, uint8_t *out,
                         size_t count) const
{
    k1_.encryptBlocks(in, out, count);
    k2_.decryptBlocks(out, out, count);
    k3_.encryptBlocks(out, out, count);
}

void
TripleDes::decryptBlocks(const uint8_t *in, uint8_t *out,
                         size_t count) const
{
    k3_.decryptBlocks(in, out, count);
    k2_.encryptBlocks(out, out, count);
    k1_.decryptBlocks(out, out, count);
}

} // namespace secproc::crypto
