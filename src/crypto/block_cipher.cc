/**
 * @file
 * Mode-of-operation helpers shared by all block ciphers.
 */

#include "crypto/block_cipher.hh"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace secproc::crypto
{

void
ecbEncrypt(const BlockCipher &cipher, uint8_t *data, size_t len)
{
    const size_t bs = cipher.blockSize();
    panic_if(len % bs != 0, "ECB length ", len, " not a multiple of ", bs);
    cipher.encryptBlocks(data, data, len / bs);
}

void
ecbDecrypt(const BlockCipher &cipher, uint8_t *data, size_t len)
{
    const size_t bs = cipher.blockSize();
    panic_if(len % bs != 0, "ECB length ", len, " not a multiple of ", bs);
    cipher.decryptBlocks(data, data, len / bs);
}

void
generatePad(const BlockCipher &cipher, uint64_t seed, uint8_t *pad,
            size_t len)
{
    const size_t bs = cipher.blockSize();
    panic_if(bs < 8, "pad generation needs a >= 64-bit block cipher");
    panic_if(len % bs != 0, "pad length ", len, " not a multiple of ", bs);

    // Per-block tweak: a plain "seed + i" counter would make the pads
    // of adjacent seeds shift-aligned copies of each other (pad block
    // i+1 of seed s equals pad block i of seed s+1), re-creating the
    // correlation the paper's Section 3.4 rules out. Multiplying the
    // block index by an odd constant before XORing makes alignment
    // between any two distinct seeds impossible.
    constexpr uint64_t kBlockTweak = 0x9E3779B97F4A7C15ull;
    // Stage the tweaked counter blocks for a whole chunk, then run
    // one batched encrypt: the cipher's interleaved path overlaps
    // what the one-block-per-call loop serialized.
    uint8_t blocks[512];
    panic_if(bs > sizeof(blocks), "unexpected block size ", bs);
    const size_t chunk_blocks = sizeof(blocks) / bs;
    uint64_t index = 0;
    for (size_t off = 0; off < len;) {
        const size_t n =
            std::min(chunk_blocks, (len - off) / bs);
        std::memset(blocks, 0, n * bs);
        for (size_t b = 0; b < n; ++b, ++index)
            util::storeBe64(blocks + b * bs,
                            seed ^ (index * kBlockTweak));
        cipher.encryptBlocks(blocks, pad + off, n);
        off += n * bs;
    }
}

void
xorPad(uint8_t *data, const uint8_t *pad, size_t len)
{
    for (size_t i = 0; i < len; ++i)
        data[i] ^= pad[i];
}

void
otpTransform(const BlockCipher &cipher, uint64_t seed, uint8_t *data,
             size_t len)
{
    // Lines are the common unit here; avoid the heap for them.
    uint8_t small[256];
    if (len <= sizeof(small)) {
        generatePad(cipher, seed, small, len);
        xorPad(data, small, len);
        return;
    }
    std::vector<uint8_t> pad(len);
    generatePad(cipher, seed, pad.data(), len);
    xorPad(data, pad.data(), len);
}

uint64_t
countRepeatedBlocks(const uint8_t *data, size_t len, size_t block_size)
{
    panic_if(block_size == 0, "block size must be non-zero");
    std::unordered_map<std::string, uint64_t> seen;
    uint64_t repeats = 0;
    for (size_t off = 0; off + block_size <= len; off += block_size) {
        std::string key(reinterpret_cast<const char *>(data + off),
                        block_size);
        auto [it, inserted] = seen.try_emplace(std::move(key), 0);
        if (!inserted)
            ++repeats;
        ++it->second;
    }
    return repeats;
}

} // namespace secproc::crypto
