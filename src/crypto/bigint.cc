/**
 * @file
 * BigInt implementation.
 *
 * Multiplication dispatches between a schoolbook inner loop and
 * Karatsuba recursion; division is Knuth Algorithm D (TAOCP vol. 2,
 * 4.3.1) over 64-bit limbs; modular exponentiation uses CIOS
 * Montgomery multiplication with a 4-bit window for odd moduli. The
 * pre-optimization algorithms survive as the *Schoolbook reference
 * methods used by the differential tests and the rsa_throughput
 * bench's "schoolbook" engine.
 */

#include "crypto/bigint.hh"

#include <algorithm>
#include <array>

#include "util/logging.hh"

namespace secproc::crypto
{

namespace
{

using Limbs = std::vector<uint64_t>;

/** Drop trailing zero limbs (the normalized representation). */
void
trimLimbs(Limbs &v)
{
    while (!v.empty() && v.back() == 0)
        v.pop_back();
}

/** Compare limb vectors as integers. */
int
compareLimbs(const Limbs &a, const Limbs &b)
{
    if (a.size() != b.size())
        return a.size() < b.size() ? -1 : 1;
    for (size_t i = a.size(); i-- > 0;) {
        if (a[i] != b[i])
            return a[i] < b[i] ? -1 : 1;
    }
    return 0;
}

/** In place: a -= b. Requires a >= b. */
void
subInPlace(Limbs &a, const Limbs &b)
{
    uint64_t borrow = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        const uint64_t bi = i < b.size() ? b[i] : 0;
        const uint64_t before = a[i];
        const uint64_t mid = before - bi;
        const uint64_t after = mid - borrow;
        borrow = (before < bi) || (mid < borrow) ? 1 : 0;
        a[i] = after;
    }
    panic_if(borrow != 0, "BigInt subtraction underflow");
    trimLimbs(a);
}

/** In place: a = (a << 1) | carry_in_bit. */
void
shl1InPlace(Limbs &a, bool carry_in)
{
    uint64_t carry = carry_in ? 1 : 0;
    for (auto &limb : a) {
        const uint64_t next_carry = limb >> 63;
        limb = (limb << 1) | carry;
        carry = next_carry;
    }
    if (carry)
        a.push_back(1);
}

/** dst += src * 2^(64*offset); dst must be large enough. */
void
addShifted(Limbs &dst, const Limbs &src, size_t offset)
{
    uint64_t carry = 0;
    size_t i = 0;
    for (; i < src.size(); ++i) {
        const __uint128_t sum =
            static_cast<__uint128_t>(dst[offset + i]) + src[i] + carry;
        dst[offset + i] = static_cast<uint64_t>(sum);
        carry = static_cast<uint64_t>(sum >> 64);
    }
    for (; carry != 0; ++i) {
        const __uint128_t sum =
            static_cast<__uint128_t>(dst[offset + i]) + carry;
        dst[offset + i] = static_cast<uint64_t>(sum);
        carry = static_cast<uint64_t>(sum >> 64);
    }
}

/** Schoolbook product; inputs need not be normalized. */
Limbs
mulSchoolbookLimbs(const Limbs &a, const Limbs &b)
{
    if (a.empty() || b.empty())
        return {};
    Limbs out(a.size() + b.size(), 0);
    for (size_t i = 0; i < a.size(); ++i) {
        uint64_t carry = 0;
        for (size_t j = 0; j < b.size(); ++j) {
            const __uint128_t prod =
                static_cast<__uint128_t>(a[i]) * b[j] + out[i + j] +
                carry;
            out[i + j] = static_cast<uint64_t>(prod);
            carry = static_cast<uint64_t>(prod >> 64);
        }
        out[i + b.size()] += carry;
    }
    trimLimbs(out);
    return out;
}

/** Sum as a fresh vector (never underflows). */
Limbs
addLimbs(const Limbs &a, const Limbs &b)
{
    Limbs out(std::max(a.size(), b.size()) + 1, 0);
    std::copy(a.begin(), a.end(), out.begin());
    addShifted(out, b, 0);
    trimLimbs(out);
    return out;
}

/**
 * Karatsuba recursion: split both operands at `half` limbs so
 * a = a1*B + a0, b = b1*B + b0 (B = 2^(64*half)) and combine three
 * half-size products. z1 = (a0+a1)(b0+b1) - z0 - z2 can never
 * underflow, so the subInPlace panic path is unreachable here.
 */
Limbs
mulLimbs(const Limbs &a, const Limbs &b)
{
    if (std::min(a.size(), b.size()) <
        BigInt::kKaratsubaThresholdLimbs) {
        return mulSchoolbookLimbs(a, b);
    }

    const size_t half = (std::max(a.size(), b.size()) + 1) / 2;
    const auto low = [half](const Limbs &v) {
        Limbs out(v.begin(),
                  v.begin() + static_cast<long>(
                                  std::min(half, v.size())));
        trimLimbs(out);
        return out;
    };
    const auto high = [half](const Limbs &v) {
        if (v.size() <= half)
            return Limbs{};
        return Limbs(v.begin() + static_cast<long>(half), v.end());
    };

    const Limbs a0 = low(a), a1 = high(a);
    const Limbs b0 = low(b), b1 = high(b);

    const Limbs z0 = mulLimbs(a0, b0);
    const Limbs z2 = mulLimbs(a1, b1);
    Limbs z1 = mulLimbs(addLimbs(a0, a1), addLimbs(b0, b1));
    subInPlace(z1, z0);
    subInPlace(z1, z2);

    Limbs out(a.size() + b.size() + 1, 0);
    addShifted(out, z0, 0);
    addShifted(out, z1, half);
    addShifted(out, z2, 2 * half);
    trimLimbs(out);
    return out;
}

/** v << shift (shift < 64) into a vector of exactly @p len limbs. */
Limbs
shiftLeftBits(const Limbs &v, unsigned shift, size_t len)
{
    Limbs out(len, 0);
    for (size_t i = 0; i < v.size(); ++i) {
        out[i] |= v[i] << shift;
        if (shift != 0 && i + 1 < len)
            out[i + 1] = v[i] >> (64 - shift);
    }
    return out;
}

/** Multiplicative inverse of odd @p x modulo 2^64 (Newton lifting). */
uint64_t
inverse64(uint64_t x)
{
    uint64_t inv = x; // correct modulo 2^3 for odd x
    for (int i = 0; i < 5; ++i)
        inv *= 2 - x * inv; // doubles the correct low bits
    return inv;
}

} // namespace

BigInt::BigInt(uint64_t v)
{
    if (v != 0)
        limbs_.push_back(v);
}

void
BigInt::trim()
{
    trimLimbs(limbs_);
}

BigInt
BigInt::fromHex(const std::string &hex)
{
    BigInt out;
    for (char c : hex) {
        uint64_t digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<uint64_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            digit = static_cast<uint64_t>(c - 'A' + 10);
        else
            fatal("invalid hex digit '", c, "' in BigInt literal");
        out = (out << 4) + BigInt(digit);
    }
    return out;
}

BigInt
BigInt::fromBytes(const uint8_t *data, size_t len)
{
    BigInt out;
    for (size_t i = 0; i < len; ++i)
        out = (out << 8) + BigInt(data[i]);
    return out;
}

BigInt
BigInt::randomBits(unsigned bits, util::Rng &rng)
{
    fatal_if(bits == 0, "randomBits needs at least one bit");
    BigInt out;
    out.limbs_.resize((bits + 63) / 64);
    for (auto &limb : out.limbs_)
        limb = rng.next64();
    const unsigned top_bits = ((bits - 1) % 64) + 1;
    uint64_t &top = out.limbs_.back();
    if (top_bits < 64)
        top &= (uint64_t{1} << top_bits) - 1;
    top |= uint64_t{1} << (top_bits - 1); // force exact bit length
    out.trim();
    return out;
}

BigInt
BigInt::randomBelow(const BigInt &bound, util::Rng &rng)
{
    panic_if(bound.isZero(), "randomBelow(0) is empty");
    const unsigned bits = bound.bitLength();
    // Rejection sampling; expected < 2 iterations.
    while (true) {
        BigInt candidate;
        candidate.limbs_.resize((bits + 63) / 64);
        for (auto &limb : candidate.limbs_)
            limb = rng.next64();
        const unsigned top_bits = ((bits - 1) % 64) + 1;
        if (top_bits < 64)
            candidate.limbs_.back() &= (uint64_t{1} << top_bits) - 1;
        candidate.trim();
        if (candidate < bound)
            return candidate;
    }
}

unsigned
BigInt::bitLength() const
{
    if (limbs_.empty())
        return 0;
    unsigned high_bits = 64;
    uint64_t top = limbs_.back();
    while ((top & (uint64_t{1} << 63)) == 0) {
        top <<= 1;
        --high_bits;
    }
    return static_cast<unsigned>(64 * (limbs_.size() - 1)) + high_bits;
}

bool
BigInt::bit(unsigned i) const
{
    const size_t limb = i / 64;
    if (limb >= limbs_.size())
        return false;
    return (limbs_[limb] >> (i % 64)) & 1;
}

std::vector<uint8_t>
BigInt::toBytes(size_t min_len) const
{
    std::vector<uint8_t> out;
    const unsigned bytes = (bitLength() + 7) / 8;
    out.resize(std::max<size_t>(bytes, min_len), 0);
    for (unsigned i = 0; i < bytes; ++i) {
        const uint64_t limb = limbs_[i / 8];
        out[out.size() - 1 - i] =
            static_cast<uint8_t>(limb >> (8 * (i % 8)));
    }
    return out;
}

std::string
BigInt::toHex() const
{
    if (isZero())
        return "0";
    static const char digits[] = "0123456789abcdef";
    std::string out;
    bool leading = true;
    for (size_t i = limbs_.size(); i-- > 0;) {
        for (int shift = 60; shift >= 0; shift -= 4) {
            const auto nibble =
                static_cast<unsigned>((limbs_[i] >> shift) & 0xF);
            if (leading && nibble == 0)
                continue;
            leading = false;
            out.push_back(digits[nibble]);
        }
    }
    return out;
}

uint64_t
BigInt::toUint64() const
{
    panic_if(limbs_.size() > 1, "BigInt does not fit in uint64_t");
    return limbs_.empty() ? 0 : limbs_[0];
}

int
BigInt::compare(const BigInt &other) const
{
    return compareLimbs(limbs_, other.limbs_);
}

BigInt
BigInt::operator+(const BigInt &o) const
{
    BigInt out;
    const size_t n = std::max(limbs_.size(), o.limbs_.size());
    out.limbs_.resize(n, 0);
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
        const uint64_t a = i < limbs_.size() ? limbs_[i] : 0;
        const uint64_t b = i < o.limbs_.size() ? o.limbs_[i] : 0;
        const uint64_t sum = a + b;
        const uint64_t total = sum + carry;
        carry = (sum < a) || (total < sum) ? 1 : 0;
        out.limbs_[i] = total;
    }
    if (carry)
        out.limbs_.push_back(1);
    return out;
}

BigInt
BigInt::operator-(const BigInt &o) const
{
    panic_if(*this < o, "BigInt subtraction underflow");
    BigInt out = *this;
    subInPlace(out.limbs_, o.limbs_);
    return out;
}

BigInt
BigInt::operator*(const BigInt &o) const
{
    if (isZero() || o.isZero())
        return BigInt();
    BigInt out;
    out.limbs_ = mulLimbs(limbs_, o.limbs_);
    return out;
}

BigInt
BigInt::mulSchoolbook(const BigInt &a, const BigInt &b)
{
    BigInt out;
    out.limbs_ = mulSchoolbookLimbs(a.limbs_, b.limbs_);
    return out;
}

BigInt
BigInt::operator<<(unsigned bits) const
{
    if (isZero() || bits == 0)
        return *this;
    const size_t limb_shift = bits / 64;
    const unsigned bit_shift = bits % 64;
    BigInt out;
    out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
    for (size_t i = 0; i < limbs_.size(); ++i) {
        out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
        if (bit_shift != 0) {
            out.limbs_[i + limb_shift + 1] |=
                limbs_[i] >> (64 - bit_shift);
        }
    }
    out.trim();
    return out;
}

BigInt
BigInt::operator>>(unsigned bits) const
{
    const size_t limb_shift = bits / 64;
    const unsigned bit_shift = bits % 64;
    if (limb_shift >= limbs_.size())
        return BigInt();
    BigInt out;
    out.limbs_.assign(limbs_.size() - limb_shift, 0);
    for (size_t i = 0; i < out.limbs_.size(); ++i) {
        out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
        if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
            out.limbs_[i] |=
                limbs_[i + limb_shift + 1] << (64 - bit_shift);
        }
    }
    out.trim();
    return out;
}

std::pair<BigInt, BigInt>
BigInt::divmod(const BigInt &div) const
{
    panic_if(div.isZero(), "BigInt division by zero");
    std::pair<BigInt, BigInt> result;
    if (*this < div) {
        result.second = *this;
        return result;
    }

    // Single-limb divisor: one 128/64 division per limb.
    if (div.limbs_.size() == 1) {
        const uint64_t d = div.limbs_[0];
        Limbs quot(limbs_.size(), 0);
        uint64_t rem = 0;
        for (size_t i = limbs_.size(); i-- > 0;) {
            const __uint128_t cur =
                (static_cast<__uint128_t>(rem) << 64) | limbs_[i];
            quot[i] = static_cast<uint64_t>(cur / d);
            rem = static_cast<uint64_t>(cur % d);
        }
        result.first.limbs_ = std::move(quot);
        result.first.trim();
        result.second = BigInt(rem);
        return result;
    }

    // Knuth Algorithm D. Normalize so the divisor's top bit is set:
    // the two-limb trial quotient is then off by at most 2, and the
    // add-back correction below runs with probability ~2/2^64.
    const size_t n = div.limbs_.size();
    const size_t m = limbs_.size() - n;
    const unsigned shift = static_cast<unsigned>(
        __builtin_clzll(div.limbs_.back()));
    const Limbs v = shiftLeftBits(div.limbs_, shift, n);
    Limbs u = shiftLeftBits(limbs_, shift, limbs_.size() + 1);

    Limbs quot(m + 1, 0);
    for (size_t j = m + 1; j-- > 0;) {
        // Trial quotient from the top two limbs of u / top of v.
        const __uint128_t num =
            (static_cast<__uint128_t>(u[j + n]) << 64) | u[j + n - 1];
        __uint128_t qhat = num / v[n - 1];
        __uint128_t rhat = num % v[n - 1];
        while (qhat > UINT64_MAX ||
               static_cast<__uint128_t>(static_cast<uint64_t>(qhat)) *
                       v[n - 2] >
                   ((rhat << 64) | u[j + n - 2])) {
            --qhat;
            rhat += v[n - 1];
            if (rhat > UINT64_MAX)
                break;
        }
        uint64_t q = static_cast<uint64_t>(qhat);

        // u[j .. j+n] -= q * v. The subtraction is two's-complement
        // on purpose: when q is one too large the window wraps and
        // the add-back below restores it — no underflow panic is
        // involved (and none of its machinery runs) on this path.
        uint64_t mul_carry = 0;
        uint64_t borrow = 0;
        for (size_t i = 0; i < n; ++i) {
            const __uint128_t prod =
                static_cast<__uint128_t>(q) * v[i] + mul_carry;
            mul_carry = static_cast<uint64_t>(prod >> 64);
            const uint64_t sub = static_cast<uint64_t>(prod);
            const uint64_t before = u[j + i];
            const uint64_t mid = before - sub;
            const uint64_t after = mid - borrow;
            borrow = (before < sub) || (mid < borrow) ? 1 : 0;
            u[j + i] = after;
        }
        const uint64_t top_before = u[j + n];
        const uint64_t top_mid = top_before - mul_carry;
        const uint64_t top_after = top_mid - borrow;
        const bool overshot =
            (top_before < mul_carry) || (top_mid < borrow);
        u[j + n] = top_after;

        if (overshot) {
            // Quotient correction: q was one too large; add v back.
            --q;
            uint64_t carry = 0;
            for (size_t i = 0; i < n; ++i) {
                const __uint128_t sum =
                    static_cast<__uint128_t>(u[j + i]) + v[i] + carry;
                u[j + i] = static_cast<uint64_t>(sum);
                carry = static_cast<uint64_t>(sum >> 64);
            }
            u[j + n] += carry; // wraps, cancelling the borrowed bit
        }
        quot[j] = q;
    }

    result.first.limbs_ = std::move(quot);
    result.first.trim();
    u.resize(n);
    BigInt rem;
    rem.limbs_ = std::move(u);
    rem.trim();
    result.second = rem >> shift;
    return result;
}

std::pair<BigInt, BigInt>
BigInt::divmodSchoolbook(const BigInt &div) const
{
    panic_if(div.isZero(), "BigInt division by zero");
    std::pair<BigInt, BigInt> result;
    if (*this < div) {
        result.second = *this;
        return result;
    }

    const unsigned total_bits = bitLength();
    Limbs rem;
    Limbs quot((total_bits + 63) / 64, 0);
    for (unsigned i = total_bits; i-- > 0;) {
        shl1InPlace(rem, bit(i));
        if (compareLimbs(rem, div.limbs_) >= 0) {
            subInPlace(rem, div.limbs_);
            quot[i / 64] |= uint64_t{1} << (i % 64);
        }
    }
    result.first.limbs_ = std::move(quot);
    result.first.trim();
    result.second.limbs_ = std::move(rem);
    result.second.trim();
    return result;
}

// --------------------------------------------------------- MontgomeryCtx

MontgomeryCtx::MontgomeryCtx(const BigInt &modulus) : n_(modulus)
{
    panic_if(!modulus.isOdd() || modulus <= BigInt(1),
             "MontgomeryCtx modulus must be odd and > 1");
    k_ = n_.limbs_.size();
    n0inv_ = ~inverse64(n_.limbs_[0]) + 1; // -n^{-1} mod 2^64
    rr_ = (BigInt(1) << static_cast<unsigned>(128 * k_)) % n_;
    one_ = toMont(BigInt(1));
}

MontgomeryCtx::Limbs
MontgomeryCtx::montMul(const Limbs &a, const Limbs &b) const
{
    // CIOS: interleave the multiply pass with the reduction pass so
    // the accumulator never exceeds k+2 limbs.
    const Limbs &nl = n_.limbs_;
    Limbs t(k_ + 2, 0);
    for (size_t i = 0; i < k_; ++i) {
        const uint64_t ai = i < a.size() ? a[i] : 0;
        uint64_t carry = 0;
        for (size_t j = 0; j < k_; ++j) {
            const __uint128_t sum =
                static_cast<__uint128_t>(ai) *
                    (j < b.size() ? b[j] : 0) +
                t[j] + carry;
            t[j] = static_cast<uint64_t>(sum);
            carry = static_cast<uint64_t>(sum >> 64);
        }
        __uint128_t top = static_cast<__uint128_t>(t[k_]) + carry;
        t[k_] = static_cast<uint64_t>(top);
        t[k_ + 1] = static_cast<uint64_t>(top >> 64);

        const uint64_t mfactor = t[0] * n0inv_;
        __uint128_t sum =
            static_cast<__uint128_t>(mfactor) * nl[0] + t[0];
        carry = static_cast<uint64_t>(sum >> 64);
        for (size_t j = 1; j < k_; ++j) {
            sum = static_cast<__uint128_t>(mfactor) * nl[j] + t[j] +
                  carry;
            t[j - 1] = static_cast<uint64_t>(sum);
            carry = static_cast<uint64_t>(sum >> 64);
        }
        top = static_cast<__uint128_t>(t[k_]) + carry;
        t[k_ - 1] = static_cast<uint64_t>(top);
        t[k_] = t[k_ + 1] + static_cast<uint64_t>(top >> 64);
    }

    t.pop_back(); // t[k_+1] is spent; result is t[0 .. k_]
    trimLimbs(t);
    if (compareLimbs(t, nl) >= 0)
        subInPlace(t, nl);
    return t;
}

BigInt
MontgomeryCtx::toMont(const BigInt &x) const
{
    const BigInt reduced = x >= n_ ? x % n_ : x;
    BigInt out;
    out.limbs_ = montMul(reduced.limbs_, rr_.limbs_);
    return out;
}

BigInt
MontgomeryCtx::fromMont(const BigInt &x) const
{
    BigInt out;
    out.limbs_ = montMul(x.limbs_, Limbs{1});
    return out;
}

BigInt
MontgomeryCtx::mul(const BigInt &a, const BigInt &b) const
{
    BigInt out;
    out.limbs_ = montMul(a.limbs_, b.limbs_);
    return out;
}

namespace
{

/**
 * Left-to-right exponentiation over an abstract multiply (shared by
 * the Montgomery and even-modulus paths): plain square-and-multiply
 * for short exponents, where building the window table would
 * dominate (RSA's e = 65537 public exponent is the important case),
 * 4-bit fixed window otherwise. @p base is the base in mul's domain,
 * @p one the domain's multiplicative identity; @p exp must be
 * non-zero.
 */
template <typename MulFn>
BigInt
expLeftToRight(const BigInt &base, const BigInt &exp,
               const BigInt &one, const MulFn &mul)
{
    const unsigned bits = exp.bitLength();
    if (bits <= 32) {
        BigInt acc = base; // consumes the top bit
        for (unsigned i = bits - 1; i-- > 0;) {
            acc = mul(acc, acc);
            if (exp.bit(i))
                acc = mul(acc, base);
        }
        return acc;
    }

    // table[i] = base^i in mul's domain.
    std::array<BigInt, 16> table;
    table[0] = one;
    table[1] = base;
    for (size_t i = 2; i < table.size(); ++i)
        table[i] = mul(table[i - 1], table[1]);

    const auto window = [&exp](unsigned w) {
        unsigned value = 0;
        for (unsigned b = 0; b < 4; ++b)
            value |= static_cast<unsigned>(exp.bit(4 * w + b)) << b;
        return value;
    };

    unsigned w = (bits - 1) / 4;
    BigInt acc = table[window(w)]; // top window is non-zero
    while (w-- > 0) {
        for (int s = 0; s < 4; ++s)
            acc = mul(acc, acc);
        const unsigned value = window(w);
        if (value != 0)
            acc = mul(acc, table[value]);
    }
    return acc;
}

} // namespace

BigInt
MontgomeryCtx::modExp(const BigInt &base, const BigInt &exp) const
{
    if (exp.isZero())
        return BigInt(1); // n > 1, so 1 mod n == 1
    const BigInt acc = expLeftToRight(
        toMont(base), exp, one_,
        [this](const BigInt &a, const BigInt &b) { return mul(a, b); });
    return fromMont(acc);
}

// ---------------------------------------------------------------- modExp

BigInt
BigInt::modExp(const BigInt &exp, const BigInt &m) const
{
    panic_if(m.isZero(), "modExp modulus must be non-zero");
    if (m == BigInt(1))
        return BigInt(); // everything is 0 mod 1
    if (m.isOdd())
        return MontgomeryCtx(m).modExp(*this, exp);

    // Even modulus (never hit by RSA): same exponentiation ladder
    // with division-based reduction.
    if (exp.isZero())
        return BigInt(1);
    return expLeftToRight(
        *this % m, exp, BigInt(1),
        [&m](const BigInt &a, const BigInt &b) { return (a * b) % m; });
}

BigInt
BigInt::modExpSchoolbook(const BigInt &exp, const BigInt &m) const
{
    panic_if(m.isZero(), "modExp modulus must be non-zero");
    BigInt base = divmodSchoolbook(m).second;
    BigInt result = BigInt(1).divmodSchoolbook(m).second; // m == 1
    const unsigned bits = exp.bitLength();
    for (unsigned i = bits; i-- > 0;) {
        result = mulSchoolbook(result, result).divmodSchoolbook(m)
                     .second;
        if (exp.bit(i))
            result = mulSchoolbook(result, base).divmodSchoolbook(m)
                         .second;
    }
    return result;
}

BigInt
BigInt::modInverse(const BigInt &m) const
{
    // Extended Euclid over non-negative values, tracking signs
    // explicitly: old_s may go "negative", represented as (mag, neg).
    panic_if(m.isZero(), "modInverse modulus must be non-zero");
    BigInt r0 = m;
    BigInt r1 = *this % m;
    BigInt s0(0), s1(1);
    bool s0_neg = false, s1_neg = false;

    while (!r1.isZero()) {
        const auto [q, r2] = r0.divmod(r1);
        // s2 = s0 - q * s1 with explicit sign arithmetic.
        const BigInt qs1 = q * s1;
        BigInt s2;
        bool s2_neg;
        if (s0_neg == s1_neg) {
            // Same sign: result sign depends on magnitudes.
            if (s0 >= qs1) {
                s2 = s0 - qs1;
                s2_neg = s0_neg;
            } else {
                s2 = qs1 - s0;
                s2_neg = !s0_neg;
            }
        } else {
            s2 = s0 + qs1;
            s2_neg = s0_neg;
        }
        r0 = r1;
        r1 = r2;
        s0 = s1;
        s0_neg = s1_neg;
        s1 = s2;
        s1_neg = s2_neg;
    }
    panic_if(r0 != BigInt(1), "modInverse: arguments not coprime");
    if (s0_neg)
        return m - (s0 % m);
    return s0 % m;
}

BigInt
BigInt::gcd(BigInt a, BigInt b)
{
    while (!b.isZero()) {
        BigInt r = a % b;
        a = std::move(b);
        b = std::move(r);
    }
    return a;
}

bool
BigInt::isProbablePrime(util::Rng &rng, int rounds) const
{
    static const uint64_t small_primes[] = {
        2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53,
        59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113,
    };
    if (limbs_.size() == 1) {
        for (uint64_t p : small_primes)
            if (limbs_[0] == p)
                return true;
    }
    // 0 and 1 are not prime (and 1 would make n-1 = 0 loop forever
    // in the d-extraction below); even numbers are composite.
    if (*this <= BigInt(1) || !isOdd())
        return false;
    for (uint64_t p : small_primes) {
        if ((*this % BigInt(p)).isZero())
            return false;
    }

    // Write n-1 = d * 2^r.
    const BigInt n_minus_1 = *this - BigInt(1);
    BigInt d = n_minus_1;
    unsigned r = 0;
    while (!d.isOdd()) {
        d = d >> 1;
        ++r;
    }

    // The candidate is odd and > 113 here, so the witness loop can
    // run entirely in the Montgomery domain (squarings compare
    // against the Montgomery form of n-1; the map is a bijection).
    const MontgomeryCtx ctx(*this);
    const BigInt minus_one_m = ctx.toMont(n_minus_1);

    const BigInt n_minus_3 = *this - BigInt(3);
    for (int round = 0; round < rounds; ++round) {
        const BigInt a = BigInt(2) + randomBelow(n_minus_3, rng);
        const BigInt x = ctx.modExp(a, d);
        if (x == BigInt(1) || x == n_minus_1)
            continue;
        BigInt xm = ctx.toMont(x);
        bool witness = true;
        for (unsigned i = 1; i < r; ++i) {
            xm = ctx.mul(xm, xm);
            if (xm == minus_one_m) {
                witness = false;
                break;
            }
        }
        if (witness)
            return false;
    }
    return true;
}

BigInt
BigInt::randomPrime(unsigned bits, util::Rng &rng)
{
    fatal_if(bits < 8, "randomPrime needs >= 8 bits");
    while (true) {
        BigInt candidate = randomBits(bits, rng);
        if (!candidate.isOdd())
            candidate = candidate + BigInt(1);
        if (candidate.isProbablePrime(rng))
            return candidate;
    }
}

} // namespace secproc::crypto
