/**
 * @file
 * BigInt implementation. Schoolbook multiplication and binary long
 * division: simple, allocation-conscious, and fast enough for the
 * 384..1024-bit RSA moduli used in the simulation.
 */

#include "crypto/bigint.hh"

#include <algorithm>

#include "util/logging.hh"

namespace secproc::crypto
{

namespace
{

using Limbs = std::vector<uint64_t>;

/** Compare limb vectors as integers. */
int
compareLimbs(const Limbs &a, const Limbs &b)
{
    if (a.size() != b.size())
        return a.size() < b.size() ? -1 : 1;
    for (size_t i = a.size(); i-- > 0;) {
        if (a[i] != b[i])
            return a[i] < b[i] ? -1 : 1;
    }
    return 0;
}

/** In place: a -= b. Requires a >= b. */
void
subInPlace(Limbs &a, const Limbs &b)
{
    uint64_t borrow = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        const uint64_t bi = i < b.size() ? b[i] : 0;
        const uint64_t before = a[i];
        const uint64_t mid = before - bi;
        const uint64_t after = mid - borrow;
        borrow = (before < bi) || (mid < borrow) ? 1 : 0;
        a[i] = after;
    }
    panic_if(borrow != 0, "BigInt subtraction underflow");
    while (!a.empty() && a.back() == 0)
        a.pop_back();
}

/** In place: a = (a << 1) | carry_in_bit. */
void
shl1InPlace(Limbs &a, bool carry_in)
{
    uint64_t carry = carry_in ? 1 : 0;
    for (auto &limb : a) {
        const uint64_t next_carry = limb >> 63;
        limb = (limb << 1) | carry;
        carry = next_carry;
    }
    if (carry)
        a.push_back(1);
}

} // namespace

BigInt::BigInt(uint64_t v)
{
    if (v != 0)
        limbs_.push_back(v);
}

void
BigInt::trim()
{
    while (!limbs_.empty() && limbs_.back() == 0)
        limbs_.pop_back();
}

BigInt
BigInt::fromHex(const std::string &hex)
{
    BigInt out;
    for (char c : hex) {
        uint64_t digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<uint64_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            digit = static_cast<uint64_t>(c - 'A' + 10);
        else
            fatal("invalid hex digit '", c, "' in BigInt literal");
        out = (out << 4) + BigInt(digit);
    }
    return out;
}

BigInt
BigInt::fromBytes(const uint8_t *data, size_t len)
{
    BigInt out;
    for (size_t i = 0; i < len; ++i)
        out = (out << 8) + BigInt(data[i]);
    return out;
}

BigInt
BigInt::randomBits(unsigned bits, util::Rng &rng)
{
    fatal_if(bits == 0, "randomBits needs at least one bit");
    BigInt out;
    out.limbs_.resize((bits + 63) / 64);
    for (auto &limb : out.limbs_)
        limb = rng.next64();
    const unsigned top_bits = ((bits - 1) % 64) + 1;
    uint64_t &top = out.limbs_.back();
    if (top_bits < 64)
        top &= (uint64_t{1} << top_bits) - 1;
    top |= uint64_t{1} << (top_bits - 1); // force exact bit length
    out.trim();
    return out;
}

BigInt
BigInt::randomBelow(const BigInt &bound, util::Rng &rng)
{
    panic_if(bound.isZero(), "randomBelow(0) is empty");
    const unsigned bits = bound.bitLength();
    // Rejection sampling; expected < 2 iterations.
    while (true) {
        BigInt candidate;
        candidate.limbs_.resize((bits + 63) / 64);
        for (auto &limb : candidate.limbs_)
            limb = rng.next64();
        const unsigned top_bits = ((bits - 1) % 64) + 1;
        if (top_bits < 64)
            candidate.limbs_.back() &= (uint64_t{1} << top_bits) - 1;
        candidate.trim();
        if (candidate < bound)
            return candidate;
    }
}

unsigned
BigInt::bitLength() const
{
    if (limbs_.empty())
        return 0;
    unsigned high_bits = 64;
    uint64_t top = limbs_.back();
    while ((top & (uint64_t{1} << 63)) == 0) {
        top <<= 1;
        --high_bits;
    }
    return static_cast<unsigned>(64 * (limbs_.size() - 1)) + high_bits;
}

bool
BigInt::bit(unsigned i) const
{
    const size_t limb = i / 64;
    if (limb >= limbs_.size())
        return false;
    return (limbs_[limb] >> (i % 64)) & 1;
}

std::vector<uint8_t>
BigInt::toBytes(size_t min_len) const
{
    std::vector<uint8_t> out;
    const unsigned bytes = (bitLength() + 7) / 8;
    out.resize(std::max<size_t>(bytes, min_len), 0);
    for (unsigned i = 0; i < bytes; ++i) {
        const uint64_t limb = limbs_[i / 8];
        out[out.size() - 1 - i] =
            static_cast<uint8_t>(limb >> (8 * (i % 8)));
    }
    return out;
}

std::string
BigInt::toHex() const
{
    if (isZero())
        return "0";
    static const char digits[] = "0123456789abcdef";
    std::string out;
    bool leading = true;
    for (size_t i = limbs_.size(); i-- > 0;) {
        for (int shift = 60; shift >= 0; shift -= 4) {
            const auto nibble =
                static_cast<unsigned>((limbs_[i] >> shift) & 0xF);
            if (leading && nibble == 0)
                continue;
            leading = false;
            out.push_back(digits[nibble]);
        }
    }
    return out;
}

uint64_t
BigInt::toUint64() const
{
    panic_if(limbs_.size() > 1, "BigInt does not fit in uint64_t");
    return limbs_.empty() ? 0 : limbs_[0];
}

int
BigInt::compare(const BigInt &other) const
{
    return compareLimbs(limbs_, other.limbs_);
}

BigInt
BigInt::operator+(const BigInt &o) const
{
    BigInt out;
    const size_t n = std::max(limbs_.size(), o.limbs_.size());
    out.limbs_.resize(n, 0);
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
        const uint64_t a = i < limbs_.size() ? limbs_[i] : 0;
        const uint64_t b = i < o.limbs_.size() ? o.limbs_[i] : 0;
        const uint64_t sum = a + b;
        const uint64_t total = sum + carry;
        carry = (sum < a) || (total < sum) ? 1 : 0;
        out.limbs_[i] = total;
    }
    if (carry)
        out.limbs_.push_back(1);
    return out;
}

BigInt
BigInt::operator-(const BigInt &o) const
{
    panic_if(*this < o, "BigInt subtraction underflow");
    BigInt out = *this;
    subInPlace(out.limbs_, o.limbs_);
    return out;
}

BigInt
BigInt::operator*(const BigInt &o) const
{
    if (isZero() || o.isZero())
        return BigInt();
    BigInt out;
    out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
    for (size_t i = 0; i < limbs_.size(); ++i) {
        uint64_t carry = 0;
        for (size_t j = 0; j < o.limbs_.size(); ++j) {
            const __uint128_t prod =
                static_cast<__uint128_t>(limbs_[i]) * o.limbs_[j] +
                out.limbs_[i + j] + carry;
            out.limbs_[i + j] = static_cast<uint64_t>(prod);
            carry = static_cast<uint64_t>(prod >> 64);
        }
        out.limbs_[i + o.limbs_.size()] += carry;
    }
    out.trim();
    return out;
}

BigInt
BigInt::operator<<(unsigned bits) const
{
    if (isZero() || bits == 0)
        return *this;
    const size_t limb_shift = bits / 64;
    const unsigned bit_shift = bits % 64;
    BigInt out;
    out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
    for (size_t i = 0; i < limbs_.size(); ++i) {
        out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
        if (bit_shift != 0) {
            out.limbs_[i + limb_shift + 1] |=
                limbs_[i] >> (64 - bit_shift);
        }
    }
    out.trim();
    return out;
}

BigInt
BigInt::operator>>(unsigned bits) const
{
    const size_t limb_shift = bits / 64;
    const unsigned bit_shift = bits % 64;
    if (limb_shift >= limbs_.size())
        return BigInt();
    BigInt out;
    out.limbs_.assign(limbs_.size() - limb_shift, 0);
    for (size_t i = 0; i < out.limbs_.size(); ++i) {
        out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
        if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
            out.limbs_[i] |=
                limbs_[i + limb_shift + 1] << (64 - bit_shift);
        }
    }
    out.trim();
    return out;
}

std::pair<BigInt, BigInt>
BigInt::divmod(const BigInt &div) const
{
    panic_if(div.isZero(), "BigInt division by zero");
    std::pair<BigInt, BigInt> result;
    if (*this < div) {
        result.second = *this;
        return result;
    }

    const unsigned total_bits = bitLength();
    Limbs rem;
    Limbs quot((total_bits + 63) / 64, 0);
    for (unsigned i = total_bits; i-- > 0;) {
        shl1InPlace(rem, bit(i));
        if (compareLimbs(rem, div.limbs_) >= 0) {
            subInPlace(rem, div.limbs_);
            quot[i / 64] |= uint64_t{1} << (i % 64);
        }
    }
    result.first.limbs_ = std::move(quot);
    result.first.trim();
    result.second.limbs_ = std::move(rem);
    result.second.trim();
    return result;
}

BigInt
BigInt::modExp(const BigInt &exp, const BigInt &m) const
{
    panic_if(m.isZero(), "modExp modulus must be non-zero");
    BigInt base = *this % m;
    BigInt result(1);
    result = result % m; // handles m == 1
    const unsigned bits = exp.bitLength();
    for (unsigned i = bits; i-- > 0;) {
        result = (result * result) % m;
        if (exp.bit(i))
            result = (result * base) % m;
    }
    return result;
}

BigInt
BigInt::modInverse(const BigInt &m) const
{
    // Extended Euclid over non-negative values, tracking signs
    // explicitly: old_s may go "negative", represented as (mag, neg).
    panic_if(m.isZero(), "modInverse modulus must be non-zero");
    BigInt r0 = m;
    BigInt r1 = *this % m;
    BigInt s0(0), s1(1);
    bool s0_neg = false, s1_neg = false;

    while (!r1.isZero()) {
        const auto [q, r2] = r0.divmod(r1);
        // s2 = s0 - q * s1 with explicit sign arithmetic.
        const BigInt qs1 = q * s1;
        BigInt s2;
        bool s2_neg;
        if (s0_neg == s1_neg) {
            // Same sign: result sign depends on magnitudes.
            if (s0 >= qs1) {
                s2 = s0 - qs1;
                s2_neg = s0_neg;
            } else {
                s2 = qs1 - s0;
                s2_neg = !s0_neg;
            }
        } else {
            s2 = s0 + qs1;
            s2_neg = s0_neg;
        }
        r0 = r1;
        r1 = r2;
        s0 = s1;
        s0_neg = s1_neg;
        s1 = s2;
        s1_neg = s2_neg;
    }
    panic_if(r0 != BigInt(1), "modInverse: arguments not coprime");
    if (s0_neg)
        return m - (s0 % m);
    return s0 % m;
}

BigInt
BigInt::gcd(BigInt a, BigInt b)
{
    while (!b.isZero()) {
        BigInt r = a % b;
        a = std::move(b);
        b = std::move(r);
    }
    return a;
}

bool
BigInt::isProbablePrime(util::Rng &rng, int rounds) const
{
    static const uint64_t small_primes[] = {
        2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53,
        59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113,
    };
    if (limbs_.size() == 1) {
        for (uint64_t p : small_primes)
            if (limbs_[0] == p)
                return true;
    }
    // 0 and 1 are not prime (and 1 would make n-1 = 0 loop forever
    // in the d-extraction below); even numbers are composite.
    if (*this <= BigInt(1) || !isOdd())
        return false;
    for (uint64_t p : small_primes) {
        if ((*this % BigInt(p)).isZero())
            return false;
    }

    // Write n-1 = d * 2^r.
    const BigInt n_minus_1 = *this - BigInt(1);
    BigInt d = n_minus_1;
    unsigned r = 0;
    while (!d.isOdd()) {
        d = d >> 1;
        ++r;
    }

    const BigInt n_minus_3 = *this - BigInt(3);
    for (int round = 0; round < rounds; ++round) {
        const BigInt a = BigInt(2) + randomBelow(n_minus_3, rng);
        BigInt x = a.modExp(d, *this);
        if (x == BigInt(1) || x == n_minus_1)
            continue;
        bool witness = true;
        for (unsigned i = 1; i < r; ++i) {
            x = (x * x) % *this;
            if (x == n_minus_1) {
                witness = false;
                break;
            }
        }
        if (witness)
            return false;
    }
    return true;
}

BigInt
BigInt::randomPrime(unsigned bits, util::Rng &rng)
{
    fatal_if(bits < 8, "randomPrime needs >= 8 bits");
    while (true) {
        BigInt candidate = randomBits(bits, rng);
        if (!candidate.isOdd())
            candidate = candidate + BigInt(1);
        if (candidate.isProbablePrime(rng))
            return candidate;
    }
}

} // namespace secproc::crypto
