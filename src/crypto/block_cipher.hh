/**
 * @file
 * Abstract block-cipher interface plus ECB/CTR helpers over whole
 * cache lines.
 *
 * Two usage modes exist in secproc:
 *  - functional: real ciphers transform real line bytes (tests,
 *    examples, attack analysis);
 *  - timing: the ciphers are replaced by a latency model and only the
 *    control path runs (figure benchmarks).
 */

#ifndef SECPROC_CRYPTO_BLOCK_CIPHER_HH
#define SECPROC_CRYPTO_BLOCK_CIPHER_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace secproc::crypto
{

/**
 * Interface for a symmetric block cipher.
 *
 * Implementations must be deterministic and side-effect-free after
 * setKey(); encryptBlock()/decryptBlock() may be called concurrently
 * from multiple readers once the key is set.
 */
class BlockCipher
{
  public:
    virtual ~BlockCipher() = default;

    /** Cipher block size in bytes (8 for DES, 16 for AES-128). */
    virtual size_t blockSize() const = 0;

    /** Expected key length in bytes. */
    virtual size_t keySize() const = 0;

    /** Human-readable cipher name for reports. */
    virtual std::string name() const = 0;

    /**
     * Install a key. @p len must equal keySize().
     * Calls fatal() on length mismatch (user configuration error).
     */
    virtual void setKey(const uint8_t *key, size_t len) = 0;

    /** Encrypt exactly one block; in/out may alias. */
    virtual void encryptBlock(const uint8_t *in, uint8_t *out) const = 0;

    /** Decrypt exactly one block; in/out may alias. */
    virtual void decryptBlock(const uint8_t *in, uint8_t *out) const = 0;

    /**
     * Encrypt @p count consecutive blocks; in/out may alias.
     * Identical results to @p count encryptBlock() calls — a batch
     * hook so latency-bound ciphers (DES's 16 dependent rounds) can
     * interleave independent blocks. Pad generation feeds whole
     * lines through here.
     */
    virtual void
    encryptBlocks(const uint8_t *in, uint8_t *out, size_t count) const
    {
        const size_t bs = blockSize();
        for (size_t i = 0; i < count; ++i)
            encryptBlock(in + i * bs, out + i * bs);
    }

    /** Batched decryptBlock(); same contract as encryptBlocks(). */
    virtual void
    decryptBlocks(const uint8_t *in, uint8_t *out, size_t count) const
    {
        const size_t bs = blockSize();
        for (size_t i = 0; i < count; ++i)
            decryptBlock(in + i * bs, out + i * bs);
    }
};

/**
 * Encrypt @p len bytes in place in ECB mode.
 *
 * This is the XOM-style "direct" line encryption: identical plaintext
 * blocks produce identical ciphertext blocks, which is exactly the
 * information leak the paper's Section 3.4 discusses; the attack
 * analysis example measures it. @p len must be a multiple of the
 * cipher block size.
 */
void ecbEncrypt(const BlockCipher &cipher, uint8_t *data, size_t len);

/** Inverse of ecbEncrypt(). */
void ecbDecrypt(const BlockCipher &cipher, uint8_t *data, size_t len);

/**
 * Generate a one-time pad of @p len bytes from a 64-bit seed.
 *
 * Pad block i is E_K(seed ^ (i * C)) for an odd mixing constant C
 * (the tweaked seed is encoded into the first 8 bytes of the cipher
 * input block; remaining input bytes, if the block is wider than 8
 * bytes, are zero). The multiplicative tweak guarantees the pads of
 * two different seeds are never shifted copies of each other, which
 * a plain "seed + i" counter would not (paper Section 3.4). @p len
 * must be a multiple of the cipher block size.
 */
void generatePad(const BlockCipher &cipher, uint64_t seed,
                 uint8_t *pad, size_t len);

/** XOR @p len bytes of @p pad into @p data (OTP encrypt == decrypt). */
void xorPad(uint8_t *data, const uint8_t *pad, size_t len);

/** Convenience: OTP-transform data in place with a generated pad. */
void otpTransform(const BlockCipher &cipher, uint64_t seed,
                  uint8_t *data, size_t len);

/** Count pairwise-identical ciphertext blocks (leak metric). */
uint64_t countRepeatedBlocks(const uint8_t *data, size_t len,
                             size_t block_size);

} // namespace secproc::crypto

#endif // SECPROC_CRYPTO_BLOCK_CIPHER_HH
