/**
 * @file
 * DES implementation. Permutation tables follow FIPS 46-3 numbering:
 * entries are 1-based bit positions counted from the most significant
 * bit of the input.
 *
 * The block path is table-driven: the per-bit FIPS permutations are
 * folded, at compile time, into byte-indexed contribution tables (IP,
 * FP) and combined S-box/P tables (the classic SP tables), and the E
 * expansion becomes eight rotate-and-mask windows. Every table is
 * derived from the FIPS tables below by the same permute() the
 * original per-bit path used, so the transform is the identical
 * function — the crypto tests pin known-answer vectors to keep it
 * that way. This is what turns ~1.6us/block into tens of ns: OTP pad
 * generation over every protected line dominated whole-grid
 * wall-clock before it.
 */

#include "crypto/des.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace secproc::crypto
{

namespace
{

/** Initial permutation. */
constexpr uint8_t kIp[64] = {
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17,  9, 1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
};

/** Final permutation (inverse of kIp). */
constexpr uint8_t kFp[64] = {
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41,  9, 49, 17, 57, 25,
};

/** Expansion of the 32-bit half block to 48 bits. */
constexpr uint8_t kE[48] = {
    32,  1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,
     8,  9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
    16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
    24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32,  1,
};

/** Permutation applied to the S-box output. */
constexpr uint8_t kP[32] = {
    16,  7, 20, 21, 29, 12, 28, 17,  1, 15, 23, 26,  5, 18, 31, 10,
     2,  8, 24, 14, 32, 27,  3,  9, 19, 13, 30,  6, 22, 11,  4, 25,
};

/** The eight S-boxes; [box][row*16+col]. */
constexpr uint8_t kSbox[8][64] = {
    {14,  4, 13,  1,  2, 15, 11,  8,  3, 10,  6, 12,  5,  9,  0,  7,
      0, 15,  7,  4, 14,  2, 13,  1, 10,  6, 12, 11,  9,  5,  3,  8,
      4,  1, 14,  8, 13,  6,  2, 11, 15, 12,  9,  7,  3, 10,  5,  0,
     15, 12,  8,  2,  4,  9,  1,  7,  5, 11,  3, 14, 10,  0,  6, 13},
    {15,  1,  8, 14,  6, 11,  3,  4,  9,  7,  2, 13, 12,  0,  5, 10,
      3, 13,  4,  7, 15,  2,  8, 14, 12,  0,  1, 10,  6,  9, 11,  5,
      0, 14,  7, 11, 10,  4, 13,  1,  5,  8, 12,  6,  9,  3,  2, 15,
     13,  8, 10,  1,  3, 15,  4,  2, 11,  6,  7, 12,  0,  5, 14,  9},
    {10,  0,  9, 14,  6,  3, 15,  5,  1, 13, 12,  7, 11,  4,  2,  8,
     13,  7,  0,  9,  3,  4,  6, 10,  2,  8,  5, 14, 12, 11, 15,  1,
     13,  6,  4,  9,  8, 15,  3,  0, 11,  1,  2, 12,  5, 10, 14,  7,
      1, 10, 13,  0,  6,  9,  8,  7,  4, 15, 14,  3, 11,  5,  2, 12},
    { 7, 13, 14,  3,  0,  6,  9, 10,  1,  2,  8,  5, 11, 12,  4, 15,
     13,  8, 11,  5,  6, 15,  0,  3,  4,  7,  2, 12,  1, 10, 14,  9,
     10,  6,  9,  0, 12, 11,  7, 13, 15,  1,  3, 14,  5,  2,  8,  4,
      3, 15,  0,  6, 10,  1, 13,  8,  9,  4,  5, 11, 12,  7,  2, 14},
    { 2, 12,  4,  1,  7, 10, 11,  6,  8,  5,  3, 15, 13,  0, 14,  9,
     14, 11,  2, 12,  4,  7, 13,  1,  5,  0, 15, 10,  3,  9,  8,  6,
      4,  2,  1, 11, 10, 13,  7,  8, 15,  9, 12,  5,  6,  3,  0, 14,
     11,  8, 12,  7,  1, 14,  2, 13,  6, 15,  0,  9, 10,  4,  5,  3},
    {12,  1, 10, 15,  9,  2,  6,  8,  0, 13,  3,  4, 14,  7,  5, 11,
     10, 15,  4,  2,  7, 12,  9,  5,  6,  1, 13, 14,  0, 11,  3,  8,
      9, 14, 15,  5,  2,  8, 12,  3,  7,  0,  4, 10,  1, 13, 11,  6,
      4,  3,  2, 12,  9,  5, 15, 10, 11, 14,  1,  7,  6,  0,  8, 13},
    { 4, 11,  2, 14, 15,  0,  8, 13,  3, 12,  9,  7,  5, 10,  6,  1,
     13,  0, 11,  7,  4,  9,  1, 10, 14,  3,  5, 12,  2, 15,  8,  6,
      1,  4, 11, 13, 12,  3,  7, 14, 10, 15,  6,  8,  0,  5,  9,  2,
      6, 11, 13,  8,  1,  4, 10,  7,  9,  5,  0, 15, 14,  2,  3, 12},
    {13,  2,  8,  4,  6, 15, 11,  1, 10,  9,  3, 14,  5,  0, 12,  7,
      1, 15, 13,  8, 10,  3,  7,  4, 12,  5,  6, 11,  0, 14,  9,  2,
      7, 11,  4,  1,  9, 12, 14,  2,  0,  6, 10, 13, 15,  3,  5,  8,
      2,  1, 14,  7,  4, 10,  8, 13, 15, 12,  9,  0,  3,  5,  6, 11},
};

/** Permuted choice 1: 64-bit key to 56 bits (drops parity). */
constexpr uint8_t kPc1[56] = {
    57, 49, 41, 33, 25, 17,  9,  1, 58, 50, 42, 34, 26, 18,
    10,  2, 59, 51, 43, 35, 27, 19, 11,  3, 60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15,  7, 62, 54, 46, 38, 30, 22,
    14,  6, 61, 53, 45, 37, 29, 21, 13,  5, 28, 20, 12,  4,
};

/** Permuted choice 2: 56-bit CD to a 48-bit round key. */
constexpr uint8_t kPc2[48] = {
    14, 17, 11, 24,  1,  5,  3, 28, 15,  6, 21, 10,
    23, 19, 12,  4, 26,  8, 16,  7, 27, 20, 13,  2,
    41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
    44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
};

/** Per-round left-rotation amounts for the key schedule. */
constexpr uint8_t kShifts[16] = {
    1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1,
};

/**
 * Apply a FIPS-style permutation: table entries select bits of the
 * @p in_width-bit input (1 = MSB); output bit 0 of the result is the
 * last table entry (i.e. the output is built MSB-first).
 */
constexpr uint64_t
permute(uint64_t value, const uint8_t *table, unsigned out_width,
        unsigned in_width)
{
    uint64_t out = 0;
    for (unsigned i = 0; i < out_width; ++i) {
        out <<= 1;
        out |= (value >> (in_width - table[i])) & 1;
    }
    return out;
}

constexpr uint32_t
rotl32(uint32_t value, unsigned amount)
{
    return (value << amount) | (value >> ((32 - amount) & 31));
}

/**
 * Compile-time folded lookup tables:
 *  - sp[b][v]: the P-permuted output of S-box b for the six-bit
 *    group value v (row/column decode included) — the classic
 *    combined SP tables. The eight boxes feed disjoint P-output
 *    bits, so the round function is the OR of eight lookups.
 *  - ip/fp[i][v]: the contribution of input byte i (byte 0 = the
 *    most significant) holding value v to the permuted 64-bit
 *    output; a permutation distributes over disjoint inputs, so
 *    IP/FP are the OR of eight lookups each.
 */
struct DesTables
{
    uint32_t sp[8][64] = {};
    uint64_t ip[8][256] = {};
    uint64_t fp[8][256] = {};
};

constexpr DesTables
buildTables()
{
    DesTables t;
    for (int box = 0; box < 8; ++box) {
        for (uint32_t six = 0; six < 64; ++six) {
            const uint32_t row = ((six & 0x20) >> 4) | (six & 1);
            const uint32_t col = (six >> 1) & 0xF;
            const uint32_t s = kSbox[box][row * 16 + col];
            // Box b produced nibble 7-b of the pre-P word.
            const auto placed =
                static_cast<uint32_t>(s) << (28 - 4 * box);
            t.sp[box][six] =
                static_cast<uint32_t>(permute(placed, kP, 32, 32));
        }
    }
    for (int byte = 0; byte < 8; ++byte) {
        for (uint32_t v = 0; v < 256; ++v) {
            const uint64_t placed = uint64_t{v} << (56 - 8 * byte);
            t.ip[byte][v] = permute(placed, kIp, 64, 64);
            t.fp[byte][v] = permute(placed, kFp, 64, 64);
        }
    }
    return t;
}

constexpr DesTables kTables = buildTables();

constexpr uint64_t
byteLookup(const uint64_t (&table)[8][256], uint64_t value)
{
    uint64_t out = 0;
    for (int byte = 0; byte < 8; ++byte)
        out |= table[byte][(value >> (56 - 8 * byte)) & 0xFF];
    return out;
}

/**
 * The DES round function f(R, K). The E expansion's six-bit group b
 * is the cyclic window of R starting at 1-based MSB position
 * kE[6b] — i.e. (rotl32(R, kE[6b]-1) >> 26) — XORed with the
 * matching round-key chunk; each XORed group indexes its SP table.
 */
inline uint32_t
feistel(uint32_t right, uint64_t round_key)
{
    const auto rk = [round_key](int box) {
        return static_cast<uint32_t>(round_key >> (42 - 6 * box));
    };
    uint32_t out = 0;
    out |= kTables.sp[0][((rotl32(right, 31) >> 26) ^ rk(0)) & 0x3F];
    out |= kTables.sp[1][((rotl32(right, 3) >> 26) ^ rk(1)) & 0x3F];
    out |= kTables.sp[2][((rotl32(right, 7) >> 26) ^ rk(2)) & 0x3F];
    out |= kTables.sp[3][((rotl32(right, 11) >> 26) ^ rk(3)) & 0x3F];
    out |= kTables.sp[4][((rotl32(right, 15) >> 26) ^ rk(4)) & 0x3F];
    out |= kTables.sp[5][((rotl32(right, 19) >> 26) ^ rk(5)) & 0x3F];
    out |= kTables.sp[6][((rotl32(right, 23) >> 26) ^ rk(6)) & 0x3F];
    out |= kTables.sp[7][((rotl32(right, 27) >> 26) ^ rk(7)) & 0x3F];
    return out;
}

} // namespace

Des::Des(uint64_t key)
{
    uint8_t key_bytes[8];
    util::storeBe64(key_bytes, key);
    setKey(key_bytes, 8);
}

void
Des::setKey(const uint8_t *key, size_t len)
{
    fatal_if(len != 8, "DES key must be 8 bytes, got ", len);
    const uint64_t key64 = util::loadBe64(key);
    const uint64_t cd = permute(key64, kPc1, 56, 64);
    uint32_t c = static_cast<uint32_t>((cd >> 28) & 0x0FFFFFFF);
    uint32_t d = static_cast<uint32_t>(cd & 0x0FFFFFFF);
    for (int round = 0; round < 16; ++round) {
        c = util::rotl28(c, kShifts[round]);
        d = util::rotl28(d, kShifts[round]);
        const uint64_t merged = (uint64_t{c} << 28) | d;
        round_keys_[round] = permute(merged, kPc2, 48, 56);
    }
    key_set_ = true;
}

uint64_t
Des::processBlock(uint64_t block, bool decrypt) const
{
    panic_if(!key_set_, "DES used before setKey");
    const uint64_t permuted = byteLookup(kTables.ip, block);
    uint32_t left = static_cast<uint32_t>(permuted >> 32);
    uint32_t right = static_cast<uint32_t>(permuted);
    for (int round = 0; round < 16; ++round) {
        const uint64_t rk =
            decrypt ? round_keys_[15 - round] : round_keys_[round];
        const uint32_t next_right = left ^ feistel(right, rk);
        left = right;
        right = next_right;
    }
    // Note the halves are swapped (R16 L16) before the final permutation.
    const uint64_t preoutput = (uint64_t{right} << 32) | left;
    return byteLookup(kTables.fp, preoutput);
}

void
Des::processBlocks(const uint8_t *in, uint8_t *out, size_t count,
                   bool decrypt) const
{
    panic_if(!key_set_, "DES used before setKey");
    constexpr int kLanes = 8;
    size_t i = 0;
    for (; i + kLanes <= count; i += kLanes) {
        uint32_t left[kLanes];
        uint32_t right[kLanes];
        for (int j = 0; j < kLanes; ++j) {
            const uint64_t permuted = byteLookup(
                kTables.ip, util::loadBe64(in + 8 * (i + j)));
            left[j] = static_cast<uint32_t>(permuted >> 32);
            right[j] = static_cast<uint32_t>(permuted);
        }
        for (int round = 0; round < 16; ++round) {
            const uint64_t rk =
                decrypt ? round_keys_[15 - round] : round_keys_[round];
            for (int j = 0; j < kLanes; ++j) {
                const uint32_t next_right =
                    left[j] ^ feistel(right[j], rk);
                left[j] = right[j];
                right[j] = next_right;
            }
        }
        for (int j = 0; j < kLanes; ++j) {
            const uint64_t preoutput =
                (uint64_t{right[j]} << 32) | left[j];
            util::storeBe64(out + 8 * (i + j),
                            byteLookup(kTables.fp, preoutput));
        }
    }
    for (; i < count; ++i) {
        util::storeBe64(
            out + 8 * i,
            processBlock(util::loadBe64(in + 8 * i), decrypt));
    }
}

void
Des::encryptBlocks(const uint8_t *in, uint8_t *out, size_t count) const
{
    processBlocks(in, out, count, false);
}

void
Des::decryptBlocks(const uint8_t *in, uint8_t *out, size_t count) const
{
    processBlocks(in, out, count, true);
}

void
Des::encryptBlock(const uint8_t *in, uint8_t *out) const
{
    util::storeBe64(out, processBlock(util::loadBe64(in), false));
}

void
Des::decryptBlock(const uint8_t *in, uint8_t *out) const
{
    util::storeBe64(out, processBlock(util::loadBe64(in), true));
}

uint64_t
Des::encrypt64(uint64_t block) const
{
    return processBlock(block, false);
}

uint64_t
Des::decrypt64(uint64_t block) const
{
    return processBlock(block, true);
}

} // namespace secproc::crypto
