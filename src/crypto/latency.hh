/**
 * @file
 * Timing model of the on-chip crypto engine.
 *
 * The paper assumes a fully pipelined engine that encrypts or
 * decrypts one L2 line in a flat 50 cycles (102 cycles for the
 * stronger-cipher study of Figure 10). This class models that — a
 * flat per-operation latency plus an optional initiation interval so
 * back-to-back line operations can be serialized when the engine is
 * configured as less than fully pipelined — and, beyond the paper,
 * lets *multiple agents* share the one physical engine: the
 * protection engines issue pipelined per-line operations while bulk
 * consumers (software-visible hashing, signature checks and capsule
 * unwraps during an OTA install) take exclusive reservations that
 * occupy the engine for the whole operation.
 */

#ifndef SECPROC_CRYPTO_LATENCY_HH
#define SECPROC_CRYPTO_LATENCY_HH

#include <cstdint>

#include "obs/trace.hh"

namespace secproc::crypto
{

/**
 * The paper's Section 5 machine: one L2 line through the engine in a
 * flat 50 cycles. Every place that needs "the default crypto
 * latency" must use this constant, not a literal.
 */
inline constexpr uint32_t kPaperCryptoLatency = 50;

/**
 * The paper's stronger-cipher estimate (Figure 10): a 102-cycle
 * engine standing in for a wider-block, more serial cipher.
 */
inline constexpr uint32_t kStrongCipherLatency = 102;

/** Static description of the crypto engine hardware. */
struct CryptoEngineConfig
{
    /** Cycles from first input block to last output block. */
    uint32_t latency = kPaperCryptoLatency;

    /**
     * Cycles between accepting successive whole-line operations.
     * 0 or 1 models the paper's fully pipelined assumption.
     */
    uint32_t initiation_interval = 1;
};

/**
 * Occupancy model of the shared crypto engine: answers "when would
 * this crypto operation complete?" while tracking how busy the
 * engine already is.
 *
 * Two kinds of work contend for the engine:
 *  - schedule(): a pipelined per-line operation (pad generation,
 *    line decryption on a fill). Successive operations only pay the
 *    initiation interval, matching the paper's fully pipelined
 *    assumption.
 *  - reserve(): an exclusive bulk reservation (digesting or
 *    re-encrypting a whole image line during an install, an RSA
 *    operation). The engine is held for the full operation latency,
 *    so concurrent pipelined work queues behind it.
 */
class CryptoEngineModel
{
  public:
    explicit CryptoEngineModel(CryptoEngineConfig cfg = {})
        : cfg_(cfg)
    {}

    /**
     * Schedule one pipelined whole-line operation.
     *
     * @param request_cycle Cycle the operands are available.
     * @return Cycle the output is available.
     */
    uint64_t
    schedule(uint64_t request_cycle)
    {
        const uint64_t start =
            request_cycle > busy_until_ ? request_cycle : busy_until_;
        busy_until_ = start + (cfg_.initiation_interval
                               ? cfg_.initiation_interval : 1);
        ++operations_;
        return start + cfg_.latency;
    }

    /**
     * Schedule a *dependent chain* of @p ops pipelined operations in
     * one call: operation k's operands are operation k-1's output
     * (pad generation feeding a seed into the next block, multi-block
     * digests). Occupancy, operation count and the returned
     * completion are exactly what @p ops successive schedule() calls
     * — each requesting at its predecessor's completion — would
     * produce, computed in closed form instead of call-by-call:
     * successive starts are spaced by max(latency,
     * initiation_interval), so the chain completes at
     * start + (ops-1)*max(latency, ii) + latency.
     *
     * @param request_cycle Cycle the first operation's operands are
     *        available.
     * @param ops Chain length (0 returns @p request_cycle untouched).
     * @return Completion cycle of the last operation.
     */
    uint64_t
    scheduleChained(uint64_t request_cycle, uint32_t ops)
    {
        if (ops == 0)
            return request_cycle;
        const uint64_t ii =
            cfg_.initiation_interval ? cfg_.initiation_interval : 1;
        const uint64_t step = ii > cfg_.latency ? ii : cfg_.latency;
        const uint64_t first_start =
            request_cycle > busy_until_ ? request_cycle : busy_until_;
        const uint64_t last_start =
            first_start + (uint64_t{ops} - 1) * step;
        busy_until_ = last_start + ii;
        operations_ += ops;
        return last_start + cfg_.latency;
    }

    /**
     * Take an exclusive reservation of @p ops back-to-back whole-line
     * operations: the engine is occupied until the last one drains,
     * so pipelined work issued meanwhile queues behind the
     * reservation.
     *
     * @param request_cycle Cycle the operands are available.
     * @param ops Number of line-sized operations reserved.
     * @return Cycle the reservation completes (== busyUntil()).
     */
    uint64_t
    reserve(uint64_t request_cycle, uint32_t ops = 1)
    {
        const uint64_t start =
            request_cycle > busy_until_ ? request_cycle : busy_until_;
        busy_until_ = start + static_cast<uint64_t>(ops) * cfg_.latency;
        operations_ += ops;
        reserved_ops_ += ops;
        if (trace_ != nullptr) {
            trace_->duration(trace_track_, "reserve", start,
                             busy_until_, {{"ops", ops}});
        }
        return busy_until_;
    }

    /** First cycle a new operation could start unobstructed. */
    uint64_t busyUntil() const { return busy_until_; }

    /** Flat operation latency in cycles. */
    uint32_t latency() const { return cfg_.latency; }

    /** Total operations scheduled (statistics). */
    uint64_t operations() const { return operations_; }

    /** Operations issued through exclusive reservations. */
    uint64_t reservedOperations() const { return reserved_ops_; }

    /**
     * Trace exclusive reservations onto @p sink (nullptr detaches).
     * The pipelined schedule() path is deliberately not traced: it
     * is the per-line hot path, and bulk reservations are what a
     * timeline viewer needs to see. Emitting never touches
     * occupancy state, so traced and untraced runs are
     * bit-identical.
     */
    void
    setTraceSink(obs::TraceSink *sink)
    {
        trace_ = sink;
        if (sink != nullptr)
            trace_track_ = sink->track("crypto");
    }

    /** Forget all occupancy state (new simulation run). */
    void
    reset()
    {
        busy_until_ = 0;
        operations_ = 0;
        reserved_ops_ = 0;
    }

  private:
    CryptoEngineConfig cfg_;
    uint64_t busy_until_ = 0;
    uint64_t operations_ = 0;
    uint64_t reserved_ops_ = 0;
    obs::TraceSink *trace_ = nullptr;
    obs::TrackId trace_track_ = 0;
};

} // namespace secproc::crypto

#endif // SECPROC_CRYPTO_LATENCY_HH
