/**
 * @file
 * Timing model of the on-chip crypto engine.
 *
 * The paper assumes a fully pipelined engine that encrypts or
 * decrypts one L2 line in a flat 50 cycles (102 cycles for the
 * stronger-cipher study of Figure 10). This class models that: a
 * flat per-operation latency plus an optional initiation interval so
 * back-to-back line operations can be serialized when the engine is
 * configured as less than fully pipelined.
 */

#ifndef SECPROC_CRYPTO_LATENCY_HH
#define SECPROC_CRYPTO_LATENCY_HH

#include <cstdint>

namespace secproc::crypto
{

/** Static description of the crypto engine hardware. */
struct CryptoEngineConfig
{
    /** Cycles from first input block to last output block. */
    uint32_t latency = 50;

    /**
     * Cycles between accepting successive whole-line operations.
     * 0 or 1 models the paper's fully pipelined assumption.
     */
    uint32_t initiation_interval = 1;
};

/**
 * Tracks engine occupancy and answers "when would this line-sized
 * crypto operation complete?".
 */
class CryptoLatencyModel
{
  public:
    explicit CryptoLatencyModel(CryptoEngineConfig cfg = {})
        : cfg_(cfg)
    {}

    /**
     * Schedule one whole-line operation.
     *
     * @param request_cycle Cycle the operands are available.
     * @return Cycle the output is available.
     */
    uint64_t
    schedule(uint64_t request_cycle)
    {
        const uint64_t start =
            request_cycle > next_issue_ ? request_cycle : next_issue_;
        next_issue_ = start + (cfg_.initiation_interval
                               ? cfg_.initiation_interval : 1);
        ++operations_;
        return start + cfg_.latency;
    }

    /** Flat operation latency in cycles. */
    uint32_t latency() const { return cfg_.latency; }

    /** Total operations scheduled (statistics). */
    uint64_t operations() const { return operations_; }

    /** Forget all occupancy state (new simulation run). */
    void
    reset()
    {
        next_issue_ = 0;
        operations_ = 0;
    }

  private:
    CryptoEngineConfig cfg_;
    uint64_t next_issue_ = 0;
    uint64_t operations_ = 0;
};

} // namespace secproc::crypto

#endif // SECPROC_CRYPTO_LATENCY_HH
