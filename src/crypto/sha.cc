/**
 * @file
 * SHA-1 / SHA-256 / HMAC implementations.
 *
 * SHA-256 compression is multi-block and dispatches once, at first
 * use, between a portable implementation and an x86 SHA-NI one
 * (runtime CPUID probe; `SECPROC_SHA256=scalar` forces portable).
 * update() feeds whole blocks straight from the caller's buffer —
 * no per-block memcpy — which matters because OTA image digests push
 * megabytes through here per simulated install.
 */

#include "crypto/sha.hh"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#include <immintrin.h>
#endif

#include "util/bitops.hh"

namespace secproc::crypto
{

// --------------------------------------------------------------------
// SHA-1
// --------------------------------------------------------------------

Sha1::Sha1()
{
    reset();
}

void
Sha1::reset()
{
    h_[0] = 0x67452301u;
    h_[1] = 0xEFCDAB89u;
    h_[2] = 0x98BADCFEu;
    h_[3] = 0x10325476u;
    h_[4] = 0xC3D2E1F0u;
    total_bits_ = 0;
    buffered_ = 0;
}

void
Sha1::processBlock(const uint8_t block[64])
{
    uint32_t w[80];
    for (int t = 0; t < 16; ++t)
        w[t] = util::loadBe32(block + 4 * t);
    for (int t = 16; t < 80; ++t)
        w[t] = util::rotl32(w[t-3] ^ w[t-8] ^ w[t-14] ^ w[t-16], 1);

    uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
    for (int t = 0; t < 80; ++t) {
        uint32_t f, k;
        if (t < 20) {
            f = (b & c) | (~b & d);
            k = 0x5A827999u;
        } else if (t < 40) {
            f = b ^ c ^ d;
            k = 0x6ED9EBA1u;
        } else if (t < 60) {
            f = (b & c) | (b & d) | (c & d);
            k = 0x8F1BBCDCu;
        } else {
            f = b ^ c ^ d;
            k = 0xCA62C1D6u;
        }
        const uint32_t temp = util::rotl32(a, 5) + f + e + k + w[t];
        e = d;
        d = c;
        c = util::rotl32(b, 30);
        b = a;
        a = temp;
    }
    h_[0] += a;
    h_[1] += b;
    h_[2] += c;
    h_[3] += d;
    h_[4] += e;
}

void
Sha1::update(const uint8_t *data, size_t len)
{
    total_bits_ += static_cast<uint64_t>(len) * 8;
    if (buffered_ > 0) {
        const size_t take = std::min(len, sizeof(buffer_) - buffered_);
        std::memcpy(buffer_ + buffered_, data, take);
        buffered_ += take;
        data += take;
        len -= take;
        if (buffered_ == sizeof(buffer_)) {
            processBlock(buffer_);
            buffered_ = 0;
        }
    }
    while (len >= sizeof(buffer_)) {
        processBlock(data);
        data += sizeof(buffer_);
        len -= sizeof(buffer_);
    }
    if (len > 0) {
        std::memcpy(buffer_, data, len);
        buffered_ = len;
    }
}

void
Sha1::final(uint8_t digest[kDigestSize])
{
    const uint64_t bits = total_bits_;
    const uint8_t pad = 0x80;
    update(&pad, 1);
    const uint8_t zero = 0x00;
    while (buffered_ != 56)
        update(&zero, 1);
    uint8_t len_be[8];
    util::storeBe64(len_be, bits);
    update(len_be, 8);
    for (int i = 0; i < 5; ++i)
        util::storeBe32(digest + 4 * i, h_[i]);
    reset();
}

std::array<uint8_t, Sha1::kDigestSize>
Sha1::digest(const uint8_t *data, size_t len)
{
    Sha1 hasher;
    hasher.update(data, len);
    std::array<uint8_t, kDigestSize> out;
    hasher.final(out.data());
    return out;
}

// --------------------------------------------------------------------
// SHA-256
// --------------------------------------------------------------------

namespace
{

constexpr uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5,
    0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3,
    0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5,
    0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

/**
 * Pick the SHA-256 compression function once per process: the
 * hardware path when the CPU has it and the environment doesn't
 * override, the portable path otherwise.
 */
using CompressFn = void (*)(uint32_t[8], const uint8_t *, size_t);

CompressFn
selectCompress()
{
    const char *env = std::getenv("SECPROC_SHA256");
    const bool force_scalar =
        env != nullptr && std::strcmp(env, "scalar") == 0;
    if (!force_scalar && detail::sha256CpuHasShaNi())
        return detail::sha256CompressHw;
    return detail::sha256CompressScalar;
}

CompressFn
compress()
{
    static const CompressFn fn = selectCompress();
    return fn;
}

} // namespace

namespace detail
{

void
sha256CompressScalar(uint32_t state[8], const uint8_t *data,
                     size_t blocks)
{
    for (; blocks > 0; --blocks, data += 64) {
        uint32_t w[64];
        for (int t = 0; t < 16; ++t)
            w[t] = util::loadBe32(data + 4 * t);
        for (int t = 16; t < 64; ++t) {
            const uint32_t s0 = util::rotr32(w[t-15], 7) ^
                                util::rotr32(w[t-15], 18) ^
                                (w[t-15] >> 3);
            const uint32_t s1 = util::rotr32(w[t-2], 17) ^
                                util::rotr32(w[t-2], 19) ^
                                (w[t-2] >> 10);
            w[t] = w[t-16] + s0 + w[t-7] + s1;
        }

        uint32_t a = state[0], b = state[1], c = state[2];
        uint32_t d = state[3], e = state[4], f = state[5];
        uint32_t g = state[6], h = state[7];
        for (int t = 0; t < 64; ++t) {
            const uint32_t s1 = util::rotr32(e, 6) ^
                                util::rotr32(e, 11) ^
                                util::rotr32(e, 25);
            const uint32_t ch = (e & f) ^ (~e & g);
            const uint32_t temp1 = h + s1 + ch + kSha256K[t] + w[t];
            const uint32_t s0 = util::rotr32(a, 2) ^
                                util::rotr32(a, 13) ^
                                util::rotr32(a, 22);
            const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
            const uint32_t temp2 = s0 + maj;
            h = g;
            g = f;
            f = e;
            e = d + temp1;
            d = c;
            c = b;
            b = a;
            a = temp1 + temp2;
        }
        state[0] += a;
        state[1] += b;
        state[2] += c;
        state[3] += d;
        state[4] += e;
        state[5] += f;
        state[6] += g;
        state[7] += h;
    }
}

#if defined(__x86_64__) || defined(__i386__)

bool
sha256CpuHasShaNi()
{
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0)
        return false;
    const bool ssse3 = (ecx & (1u << 9)) != 0;
    const bool sse41 = (ecx & (1u << 19)) != 0;
    if (!ssse3 || !sse41)
        return false;
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0)
        return false;
    return (ebx & (1u << 29)) != 0;
}

/**
 * SHA-256 via the x86 SHA extensions. One sha256rnds2 does two
 * rounds on the (ABEF, CDGH) register split; the message schedule
 * advances four lanes at a time through sha256msg1/msg2 plus an
 * explicit w[t-7] alignr term — the same recurrence the scalar
 * loop computes, grouped by four.
 */
__attribute__((target("sha,ssse3,sse4.1"))) void
sha256CompressHw(uint32_t state[8], const uint8_t *data,
                 size_t blocks)
{
    const __m128i swap = _mm_set_epi64x(
        0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);
    const auto kvec = [](int round) {
        return _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(&kSha256K[round]));
    };

    // state[] holds ABCD EFGH; the instructions want ABEF / CDGH.
    __m128i tmp = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(&state[0]));
    __m128i s1 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(&state[4]));
    tmp = _mm_shuffle_epi32(tmp, 0xB1);
    s1 = _mm_shuffle_epi32(s1, 0x1B);
    __m128i s0 = _mm_alignr_epi8(tmp, s1, 8);
    s1 = _mm_blend_epi16(s1, tmp, 0xF0);

    for (; blocks > 0; --blocks, data += 64) {
        const __m128i abef_save = s0;
        const __m128i cdgh_save = s1;

        __m128i m[4];
        for (int g = 0; g < 4; ++g) {
            m[g] = _mm_shuffle_epi8(
                _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(data + 16 * g)),
                swap);
            const __m128i msg = _mm_add_epi32(m[g], kvec(4 * g));
            s1 = _mm_sha256rnds2_epu32(s1, s0, msg);
            s0 = _mm_sha256rnds2_epu32(
                s0, s1, _mm_shuffle_epi32(msg, 0x0E));
        }
        for (int g = 4; g < 16; ++g) {
            // w[t] = w[t-16] + sigma0(w[t-15]) + w[t-7] +
            //        sigma1(w[t-2]), four lanes at a time.
            __m128i next =
                _mm_sha256msg1_epu32(m[(g - 4) & 3], m[(g - 3) & 3]);
            next = _mm_add_epi32(
                next, _mm_alignr_epi8(m[(g - 1) & 3],
                                      m[(g - 2) & 3], 4));
            next = _mm_sha256msg2_epu32(next, m[(g - 1) & 3]);
            m[g & 3] = next;
            const __m128i msg = _mm_add_epi32(next, kvec(4 * g));
            s1 = _mm_sha256rnds2_epu32(s1, s0, msg);
            s0 = _mm_sha256rnds2_epu32(
                s0, s1, _mm_shuffle_epi32(msg, 0x0E));
        }

        s0 = _mm_add_epi32(s0, abef_save);
        s1 = _mm_add_epi32(s1, cdgh_save);
    }

    tmp = _mm_shuffle_epi32(s0, 0x1B);
    s1 = _mm_shuffle_epi32(s1, 0xB1);
    s0 = _mm_blend_epi16(tmp, s1, 0xF0);
    s1 = _mm_alignr_epi8(s1, tmp, 8);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(&state[0]), s0);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(&state[4]), s1);
}

#else // !x86

bool
sha256CpuHasShaNi()
{
    return false;
}

void
sha256CompressHw(uint32_t state[8], const uint8_t *data, size_t blocks)
{
    sha256CompressScalar(state, data, blocks);
}

#endif

} // namespace detail

bool
sha256HardwareAvailable()
{
    return compress() == detail::sha256CompressHw;
}

Sha256::Sha256()
{
    reset();
}

void
Sha256::reset()
{
    h_[0] = 0x6a09e667u;
    h_[1] = 0xbb67ae85u;
    h_[2] = 0x3c6ef372u;
    h_[3] = 0xa54ff53au;
    h_[4] = 0x510e527fu;
    h_[5] = 0x9b05688cu;
    h_[6] = 0x1f83d9abu;
    h_[7] = 0x5be0cd19u;
    total_bits_ = 0;
    buffered_ = 0;
}

void
Sha256::update(const uint8_t *data, size_t len)
{
    total_bits_ += static_cast<uint64_t>(len) * 8;
    if (buffered_ > 0) {
        const size_t take = std::min(len, sizeof(buffer_) - buffered_);
        std::memcpy(buffer_ + buffered_, data, take);
        buffered_ += take;
        data += take;
        len -= take;
        if (buffered_ == sizeof(buffer_)) {
            compress()(h_, buffer_, 1);
            buffered_ = 0;
        }
    }
    if (len >= sizeof(buffer_)) {
        const size_t blocks = len / sizeof(buffer_);
        compress()(h_, data, blocks);
        data += blocks * sizeof(buffer_);
        len -= blocks * sizeof(buffer_);
    }
    if (len > 0) {
        std::memcpy(buffer_, data, len);
        buffered_ = len;
    }
}

void
Sha256::final(uint8_t digest[kDigestSize])
{
    const uint64_t bits = total_bits_;
    const uint8_t pad = 0x80;
    update(&pad, 1);
    const uint8_t zero = 0x00;
    while (buffered_ != 56)
        update(&zero, 1);
    uint8_t len_be[8];
    util::storeBe64(len_be, bits);
    update(len_be, 8);
    for (int i = 0; i < 8; ++i)
        util::storeBe32(digest + 4 * i, h_[i]);
    reset();
}

std::array<uint8_t, Sha256::kDigestSize>
Sha256::digest(const uint8_t *data, size_t len)
{
    Sha256 hasher;
    hasher.update(data, len);
    std::array<uint8_t, kDigestSize> out;
    hasher.final(out.data());
    return out;
}

// --------------------------------------------------------------------
// HMAC-SHA256
// --------------------------------------------------------------------

std::array<uint8_t, Sha256::kDigestSize>
hmacSha256(const uint8_t *key, size_t key_len, const uint8_t *data,
           size_t data_len)
{
    uint8_t key_block[64] = {};
    if (key_len > 64) {
        const auto hashed = Sha256::digest(key, key_len);
        std::memcpy(key_block, hashed.data(), hashed.size());
    } else {
        std::memcpy(key_block, key, key_len);
    }

    uint8_t ipad[64], opad[64];
    for (int i = 0; i < 64; ++i) {
        ipad[i] = static_cast<uint8_t>(key_block[i] ^ 0x36);
        opad[i] = static_cast<uint8_t>(key_block[i] ^ 0x5c);
    }

    Sha256 inner;
    inner.update(ipad, 64);
    inner.update(data, data_len);
    std::array<uint8_t, Sha256::kDigestSize> inner_digest;
    inner.final(inner_digest.data());

    Sha256 outer;
    outer.update(opad, 64);
    outer.update(inner_digest.data(), inner_digest.size());
    std::array<uint8_t, Sha256::kDigestSize> out;
    outer.final(out.data());
    return out;
}

} // namespace secproc::crypto
