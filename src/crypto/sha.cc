/**
 * @file
 * SHA-1 / SHA-256 / HMAC implementations.
 */

#include "crypto/sha.hh"

#include <cstring>

#include "util/bitops.hh"

namespace secproc::crypto
{

// --------------------------------------------------------------------
// SHA-1
// --------------------------------------------------------------------

Sha1::Sha1()
{
    reset();
}

void
Sha1::reset()
{
    h_[0] = 0x67452301u;
    h_[1] = 0xEFCDAB89u;
    h_[2] = 0x98BADCFEu;
    h_[3] = 0x10325476u;
    h_[4] = 0xC3D2E1F0u;
    total_bits_ = 0;
    buffered_ = 0;
}

void
Sha1::processBlock(const uint8_t block[64])
{
    uint32_t w[80];
    for (int t = 0; t < 16; ++t)
        w[t] = util::loadBe32(block + 4 * t);
    for (int t = 16; t < 80; ++t)
        w[t] = util::rotl32(w[t-3] ^ w[t-8] ^ w[t-14] ^ w[t-16], 1);

    uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
    for (int t = 0; t < 80; ++t) {
        uint32_t f, k;
        if (t < 20) {
            f = (b & c) | (~b & d);
            k = 0x5A827999u;
        } else if (t < 40) {
            f = b ^ c ^ d;
            k = 0x6ED9EBA1u;
        } else if (t < 60) {
            f = (b & c) | (b & d) | (c & d);
            k = 0x8F1BBCDCu;
        } else {
            f = b ^ c ^ d;
            k = 0xCA62C1D6u;
        }
        const uint32_t temp = util::rotl32(a, 5) + f + e + k + w[t];
        e = d;
        d = c;
        c = util::rotl32(b, 30);
        b = a;
        a = temp;
    }
    h_[0] += a;
    h_[1] += b;
    h_[2] += c;
    h_[3] += d;
    h_[4] += e;
}

void
Sha1::update(const uint8_t *data, size_t len)
{
    total_bits_ += static_cast<uint64_t>(len) * 8;
    while (len > 0) {
        const size_t take = std::min(len, sizeof(buffer_) - buffered_);
        std::memcpy(buffer_ + buffered_, data, take);
        buffered_ += take;
        data += take;
        len -= take;
        if (buffered_ == sizeof(buffer_)) {
            processBlock(buffer_);
            buffered_ = 0;
        }
    }
}

void
Sha1::final(uint8_t digest[kDigestSize])
{
    const uint64_t bits = total_bits_;
    const uint8_t pad = 0x80;
    update(&pad, 1);
    const uint8_t zero = 0x00;
    while (buffered_ != 56)
        update(&zero, 1);
    uint8_t len_be[8];
    util::storeBe64(len_be, bits);
    update(len_be, 8);
    for (int i = 0; i < 5; ++i)
        util::storeBe32(digest + 4 * i, h_[i]);
    reset();
}

std::array<uint8_t, Sha1::kDigestSize>
Sha1::digest(const uint8_t *data, size_t len)
{
    Sha1 hasher;
    hasher.update(data, len);
    std::array<uint8_t, kDigestSize> out;
    hasher.final(out.data());
    return out;
}

// --------------------------------------------------------------------
// SHA-256
// --------------------------------------------------------------------

namespace
{

constexpr uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5,
    0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3,
    0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5,
    0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

} // namespace

Sha256::Sha256()
{
    reset();
}

void
Sha256::reset()
{
    h_[0] = 0x6a09e667u;
    h_[1] = 0xbb67ae85u;
    h_[2] = 0x3c6ef372u;
    h_[3] = 0xa54ff53au;
    h_[4] = 0x510e527fu;
    h_[5] = 0x9b05688cu;
    h_[6] = 0x1f83d9abu;
    h_[7] = 0x5be0cd19u;
    total_bits_ = 0;
    buffered_ = 0;
}

void
Sha256::processBlock(const uint8_t block[64])
{
    uint32_t w[64];
    for (int t = 0; t < 16; ++t)
        w[t] = util::loadBe32(block + 4 * t);
    for (int t = 16; t < 64; ++t) {
        const uint32_t s0 = util::rotr32(w[t-15], 7) ^
                            util::rotr32(w[t-15], 18) ^ (w[t-15] >> 3);
        const uint32_t s1 = util::rotr32(w[t-2], 17) ^
                            util::rotr32(w[t-2], 19) ^ (w[t-2] >> 10);
        w[t] = w[t-16] + s0 + w[t-7] + s1;
    }

    uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
    uint32_t e = h_[4], f = h_[5], g = h_[6], h = h_[7];
    for (int t = 0; t < 64; ++t) {
        const uint32_t s1 = util::rotr32(e, 6) ^ util::rotr32(e, 11) ^
                            util::rotr32(e, 25);
        const uint32_t ch = (e & f) ^ (~e & g);
        const uint32_t temp1 = h + s1 + ch + kSha256K[t] + w[t];
        const uint32_t s0 = util::rotr32(a, 2) ^ util::rotr32(a, 13) ^
                            util::rotr32(a, 22);
        const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        const uint32_t temp2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + temp1;
        d = c;
        c = b;
        b = a;
        a = temp1 + temp2;
    }
    h_[0] += a;
    h_[1] += b;
    h_[2] += c;
    h_[3] += d;
    h_[4] += e;
    h_[5] += f;
    h_[6] += g;
    h_[7] += h;
}

void
Sha256::update(const uint8_t *data, size_t len)
{
    total_bits_ += static_cast<uint64_t>(len) * 8;
    while (len > 0) {
        const size_t take = std::min(len, sizeof(buffer_) - buffered_);
        std::memcpy(buffer_ + buffered_, data, take);
        buffered_ += take;
        data += take;
        len -= take;
        if (buffered_ == sizeof(buffer_)) {
            processBlock(buffer_);
            buffered_ = 0;
        }
    }
}

void
Sha256::final(uint8_t digest[kDigestSize])
{
    const uint64_t bits = total_bits_;
    const uint8_t pad = 0x80;
    update(&pad, 1);
    const uint8_t zero = 0x00;
    while (buffered_ != 56)
        update(&zero, 1);
    uint8_t len_be[8];
    util::storeBe64(len_be, bits);
    update(len_be, 8);
    for (int i = 0; i < 8; ++i)
        util::storeBe32(digest + 4 * i, h_[i]);
    reset();
}

std::array<uint8_t, Sha256::kDigestSize>
Sha256::digest(const uint8_t *data, size_t len)
{
    Sha256 hasher;
    hasher.update(data, len);
    std::array<uint8_t, kDigestSize> out;
    hasher.final(out.data());
    return out;
}

// --------------------------------------------------------------------
// HMAC-SHA256
// --------------------------------------------------------------------

std::array<uint8_t, Sha256::kDigestSize>
hmacSha256(const uint8_t *key, size_t key_len, const uint8_t *data,
           size_t data_len)
{
    uint8_t key_block[64] = {};
    if (key_len > 64) {
        const auto hashed = Sha256::digest(key, key_len);
        std::memcpy(key_block, hashed.data(), hashed.size());
    } else {
        std::memcpy(key_block, key, key_len);
    }

    uint8_t ipad[64], opad[64];
    for (int i = 0; i < 64; ++i) {
        ipad[i] = static_cast<uint8_t>(key_block[i] ^ 0x36);
        opad[i] = static_cast<uint8_t>(key_block[i] ^ 0x5c);
    }

    Sha256 inner;
    inner.update(ipad, 64);
    inner.update(data, data_len);
    std::array<uint8_t, Sha256::kDigestSize> inner_digest;
    inner.final(inner_digest.data());

    Sha256 outer;
    outer.update(opad, 64);
    outer.update(inner_digest.data(), inner_digest.size());
    std::array<uint8_t, Sha256::kDigestSize> out;
    outer.final(out.data());
    return out;
}

} // namespace secproc::crypto
