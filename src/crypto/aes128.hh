/**
 * @file
 * AES-128 (FIPS-197) implemented from scratch.
 *
 * The paper names AES as the stronger alternative cipher whose longer
 * hardware latency (about 102 cycles in their Sandia reference)
 * drives the Figure 10 sensitivity experiment. This is the functional
 * implementation used when a 16-byte-block pad generator or direct
 * line cipher is wanted.
 */

#ifndef SECPROC_CRYPTO_AES128_HH
#define SECPROC_CRYPTO_AES128_HH

#include <array>
#include <cstdint>

#include "crypto/block_cipher.hh"

namespace secproc::crypto
{

/** AES with a 128-bit key and 128-bit block (10 rounds). */
class Aes128 : public BlockCipher
{
  public:
    Aes128() = default;

    /** Construct with a 16-byte key. */
    explicit Aes128(const uint8_t *key16) { setKey(key16, 16); }

    size_t blockSize() const override { return 16; }
    size_t keySize() const override { return 16; }
    std::string name() const override { return "AES-128"; }

    void setKey(const uint8_t *key, size_t len) override;
    void encryptBlock(const uint8_t *in, uint8_t *out) const override;
    void decryptBlock(const uint8_t *in, uint8_t *out) const override;

  private:
    /** Expanded round keys: 11 round keys of 16 bytes. */
    std::array<uint8_t, 176> round_keys_{};
    bool key_set_ = false;
};

} // namespace secproc::crypto

#endif // SECPROC_CRYPTO_AES128_HH
