/**
 * @file
 * Arbitrary-precision unsigned integers sized for RSA key exchange.
 *
 * Implements exactly the operation set RSA needs: add/sub/mul,
 * divmod, modular exponentiation, modular inverse, gcd and
 * Miller-Rabin primality. Little-endian 64-bit limbs.
 *
 * The hot paths are tuned for RSA-sized operands: multiplication
 * switches to Karatsuba above kKaratsubaThresholdLimbs, division is
 * limb-based Knuth Algorithm D, and modExp runs 4-bit-windowed CIOS
 * Montgomery multiplication for odd moduli (see MontgomeryCtx). The
 * pre-optimization schoolbook/binary algorithms are retained as
 * *Schoolbook reference methods so differential tests can prove the
 * fast paths bit-identical.
 */

#ifndef SECPROC_CRYPTO_BIGINT_HH
#define SECPROC_CRYPTO_BIGINT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/random.hh"

namespace secproc::crypto
{

class MontgomeryCtx;

/** Unsigned big integer. All operations are value-semantic. */
class BigInt
{
  public:
    /**
     * Limb count at or above which operator* recurses via Karatsuba
     * instead of running the schoolbook inner loop. Tuned by sweeping
     * 16..128-limb products on x86-64 (__uint128_t schoolbook inner
     * loop): below ~48 limbs the O(n^2) loop's constant factors win;
     * at 64 limbs Karatsuba is ~1.3x and at 128 limbs ~1.4x faster.
     */
    static constexpr size_t kKaratsubaThresholdLimbs = 48;

    /** Zero. */
    BigInt() = default;

    /** From a machine word. */
    BigInt(uint64_t v); // NOLINT: implicit by design for literals

    /** From a hex string without 0x prefix (most significant first). */
    static BigInt fromHex(const std::string &hex);

    /** From big-endian bytes. */
    static BigInt fromBytes(const uint8_t *data, size_t len);

    /** Uniform random value with exactly @p bits bits (MSB set). */
    static BigInt randomBits(unsigned bits, util::Rng &rng);

    /** Uniform random value in [0, bound). bound must be > 0. */
    static BigInt randomBelow(const BigInt &bound, util::Rng &rng);

    bool isZero() const { return limbs_.empty(); }
    bool isOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }

    /** Number of significant bits (0 for zero). */
    unsigned bitLength() const;

    /** Value of bit @p i (0 = LSB). */
    bool bit(unsigned i) const;

    /** Big-endian byte serialization, optionally left-padded. */
    std::vector<uint8_t> toBytes(size_t min_len = 0) const;

    /** Lower-case hex string, "0" for zero. */
    std::string toHex() const;

    /** Convert to uint64_t; panics if the value does not fit. */
    uint64_t toUint64() const;

    // Comparisons.
    int compare(const BigInt &other) const;
    bool operator==(const BigInt &o) const { return compare(o) == 0; }
    bool operator!=(const BigInt &o) const { return compare(o) != 0; }
    bool operator<(const BigInt &o) const { return compare(o) < 0; }
    bool operator<=(const BigInt &o) const { return compare(o) <= 0; }
    bool operator>(const BigInt &o) const { return compare(o) > 0; }
    bool operator>=(const BigInt &o) const { return compare(o) >= 0; }

    // Arithmetic.
    BigInt operator+(const BigInt &o) const;
    BigInt operator-(const BigInt &o) const; ///< panics on underflow
    BigInt operator*(const BigInt &o) const; ///< Karatsuba above threshold
    BigInt operator<<(unsigned bits) const;
    BigInt operator>>(unsigned bits) const;

    /**
     * Quotient and remainder in one pass (Knuth Algorithm D);
     * panics if @p div is zero.
     * @return {quotient, remainder}.
     */
    std::pair<BigInt, BigInt> divmod(const BigInt &div) const;

    BigInt operator/(const BigInt &o) const { return divmod(o).first; }
    BigInt operator%(const BigInt &o) const { return divmod(o).second; }

    /**
     * (this ^ exp) mod m; panics if m is zero. Odd moduli > 1 run in
     * the Montgomery domain with a 4-bit window; even moduli fall
     * back to a windowed square-and-multiply with division-based
     * reduction. exp == 0 yields 1 mod m; m == 1 yields 0.
     */
    BigInt modExp(const BigInt &exp, const BigInt &m) const;

    /** Modular inverse; panics unless gcd(this, m) == 1. */
    BigInt modInverse(const BigInt &m) const;

    /** Greatest common divisor. */
    static BigInt gcd(BigInt a, BigInt b);

    /** Miller-Rabin probabilistic primality test. */
    bool isProbablePrime(util::Rng &rng, int rounds = 24) const;

    /** Random prime with exactly @p bits bits. */
    static BigInt randomPrime(unsigned bits, util::Rng &rng);

    /**
     * Reference implementations preserving the pre-optimization
     * algorithms (schoolbook multiplication, bit-at-a-time restoring
     * division, binary square-and-multiply). They exist so the fast
     * paths can be differentially tested against them and so the
     * rsa_throughput bench can report an honest speedup; production
     * code should use operator*, divmod and modExp.
     * @{
     */
    static BigInt mulSchoolbook(const BigInt &a, const BigInt &b);
    std::pair<BigInt, BigInt>
    divmodSchoolbook(const BigInt &div) const;
    BigInt modExpSchoolbook(const BigInt &exp, const BigInt &m) const;
    /** @} */

  private:
    friend class MontgomeryCtx;

    /** Little-endian limbs; normalized (no trailing zero limbs). */
    std::vector<uint64_t> limbs_;

    void trim();
};

/**
 * Precomputed Montgomery-multiplication context for one odd modulus
 * n > 1: n' = -n^{-1} mod 2^64 and R^2 mod n for R = 2^(64k), where
 * k is the limb count of n. Montgomery products use the CIOS
 * (coarsely integrated operand scanning) method, so a modular
 * multiplication costs two limb-level passes and no division.
 *
 * RSA keys cache one of these per modulus (RsaPublicKey::montCtx())
 * so sign/verify/attest reuse the precomputation. A context is
 * immutable after construction and safe to share across threads.
 */
class MontgomeryCtx
{
  public:
    /** Panics unless @p modulus is odd and > 1. */
    explicit MontgomeryCtx(const BigInt &modulus);

    const BigInt &modulus() const { return n_; }

    /** x * R mod n (enters the Montgomery domain; x reduced first). */
    BigInt toMont(const BigInt &x) const;

    /** x * R^{-1} mod n (leaves the Montgomery domain). */
    BigInt fromMont(const BigInt &x) const;

    /**
     * Montgomery product a * b * R^{-1} mod n. Operands must be in
     * the Montgomery domain (and < n) for a domain result.
     */
    BigInt mul(const BigInt &a, const BigInt &b) const;

    /**
     * (base ^ exp) mod n over plain-domain values: 4-bit fixed
     * window, squarings and multiplies in the Montgomery domain.
     */
    BigInt modExp(const BigInt &base, const BigInt &exp) const;

  private:
    using Limbs = std::vector<uint64_t>;

    /** CIOS core over k-limb little-endian vectors. */
    Limbs montMul(const Limbs &a, const Limbs &b) const;

    BigInt n_;
    BigInt rr_;     ///< R^2 mod n
    BigInt one_;    ///< R mod n (the Montgomery form of 1)
    uint64_t n0inv_ = 0; ///< -n^{-1} mod 2^64
    size_t k_ = 0;       ///< limb count of n
};

} // namespace secproc::crypto

#endif // SECPROC_CRYPTO_BIGINT_HH
