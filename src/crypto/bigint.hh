/**
 * @file
 * Arbitrary-precision unsigned integers sized for RSA key exchange.
 *
 * Implements exactly the operation set RSA needs: add/sub/mul,
 * divmod, modular exponentiation, modular inverse, gcd and
 * Miller-Rabin primality. Little-endian 64-bit limbs.
 */

#ifndef SECPROC_CRYPTO_BIGINT_HH
#define SECPROC_CRYPTO_BIGINT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/random.hh"

namespace secproc::crypto
{

/** Unsigned big integer. All operations are value-semantic. */
class BigInt
{
  public:
    /** Zero. */
    BigInt() = default;

    /** From a machine word. */
    BigInt(uint64_t v); // NOLINT: implicit by design for literals

    /** From a hex string without 0x prefix (most significant first). */
    static BigInt fromHex(const std::string &hex);

    /** From big-endian bytes. */
    static BigInt fromBytes(const uint8_t *data, size_t len);

    /** Uniform random value with exactly @p bits bits (MSB set). */
    static BigInt randomBits(unsigned bits, util::Rng &rng);

    /** Uniform random value in [0, bound). bound must be > 0. */
    static BigInt randomBelow(const BigInt &bound, util::Rng &rng);

    bool isZero() const { return limbs_.empty(); }
    bool isOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }

    /** Number of significant bits (0 for zero). */
    unsigned bitLength() const;

    /** Value of bit @p i (0 = LSB). */
    bool bit(unsigned i) const;

    /** Big-endian byte serialization, optionally left-padded. */
    std::vector<uint8_t> toBytes(size_t min_len = 0) const;

    /** Lower-case hex string, "0" for zero. */
    std::string toHex() const;

    /** Convert to uint64_t; panics if the value does not fit. */
    uint64_t toUint64() const;

    // Comparisons.
    int compare(const BigInt &other) const;
    bool operator==(const BigInt &o) const { return compare(o) == 0; }
    bool operator!=(const BigInt &o) const { return compare(o) != 0; }
    bool operator<(const BigInt &o) const { return compare(o) < 0; }
    bool operator<=(const BigInt &o) const { return compare(o) <= 0; }
    bool operator>(const BigInt &o) const { return compare(o) > 0; }
    bool operator>=(const BigInt &o) const { return compare(o) >= 0; }

    // Arithmetic.
    BigInt operator+(const BigInt &o) const;
    BigInt operator-(const BigInt &o) const; ///< panics on underflow
    BigInt operator*(const BigInt &o) const;
    BigInt operator<<(unsigned bits) const;
    BigInt operator>>(unsigned bits) const;

    /**
     * Quotient and remainder in one pass; @p div must be non-zero.
     * @return {quotient, remainder}.
     */
    std::pair<BigInt, BigInt> divmod(const BigInt &div) const;

    BigInt operator/(const BigInt &o) const { return divmod(o).first; }
    BigInt operator%(const BigInt &o) const { return divmod(o).second; }

    /** (this ^ exp) mod m; m must be non-zero. */
    BigInt modExp(const BigInt &exp, const BigInt &m) const;

    /** Modular inverse; panics unless gcd(this, m) == 1. */
    BigInt modInverse(const BigInt &m) const;

    /** Greatest common divisor. */
    static BigInt gcd(BigInt a, BigInt b);

    /** Miller-Rabin probabilistic primality test. */
    bool isProbablePrime(util::Rng &rng, int rounds = 24) const;

    /** Random prime with exactly @p bits bits. */
    static BigInt randomPrime(unsigned bits, util::Rng &rng);

  private:
    /** Little-endian limbs; normalized (no trailing zero limbs). */
    std::vector<uint64_t> limbs_;

    void trim();
    static BigInt shiftLeftLimbs(const BigInt &v, size_t limbs);
};

} // namespace secproc::crypto

#endif // SECPROC_CRYPTO_BIGINT_HH
